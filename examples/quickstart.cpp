// Quickstart: serve a small ShareGPT-style workload with MuxWise and
// with chunked prefill on a simulated 8xA100 server, and compare the
// latency metrics the paper reports (P99 TTFT / TBT).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "baselines/chunked_prefill.h"
#include "core/estimator.h"
#include "core/muxwise_engine.h"
#include "serve/deployment.h"
#include "serve/frontend.h"
#include "serve/metrics.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace {

using namespace muxwise;

void Report(const char* name, const serve::MetricsCollector& metrics,
            const serve::Frontend& frontend) {
  const serve::LatencySummary ttft = metrics.Ttft();
  const serve::LatencySummary tbt = metrics.Tbt();
  std::printf("%-10s completed=%zu  P99 TTFT=%8.1f ms  P99 TBT=%6.1f ms  "
              "mean TTFT=%7.1f ms  mean TBT=%5.1f ms\n",
              name, frontend.completed(), ttft.p99_ms, tbt.p99_ms,
              ttft.mean_ms, tbt.mean_ms);
}

}  // namespace

int main() {
  // 1. Describe the deployment: Llama-70B, tensor-parallel over 8 A100s.
  const serve::Deployment deployment = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100(), /*num_gpus=*/8);

  // 2. Generate a workload trace (ShareGPT statistics, Poisson arrivals).
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kShareGpt, /*num_requests=*/300,
      /*rate_per_second=*/6.0, /*seed=*/42);
  std::printf("workload: %s, %zu requests, mean input %.0f tok, "
              "mean output %.0f tok\n\n",
              trace.name.c_str(), trace.requests.size(),
              trace.InputStats().mean, trace.OutputStats().mean);

  // 3. One-time offline profiling for MuxWise's estimator.
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);

  // 4. Serve the trace with MuxWise.
  {
    sim::Simulator simulator;
    core::MuxWiseEngine engine(&simulator, deployment, estimator,
                               core::MuxWiseEngine::Options());
    serve::MetricsCollector metrics;
    serve::Frontend frontend(&simulator, &engine, &trace, &metrics);
    frontend.Start();
    simulator.Run();
    Report("MuxWise", metrics, frontend);
  }

  // 5. Serve the same trace with chunked prefill (SARATHI token budget
  //    tuned offline for the TBT target, as in the paper).
  {
    sim::Simulator simulator;
    baselines::ChunkedPrefillEngine::Options options;
    options.token_budget = baselines::ChunkedPrefillEngine::TuneTokenBudget(
        deployment, deployment.slo.tbt);
    baselines::ChunkedPrefillEngine engine(&simulator, deployment, options);
    serve::MetricsCollector metrics;
    serve::Frontend frontend(&simulator, &engine, &trace, &metrics);
    frontend.Start();
    simulator.Run();
    std::printf("(chunked token budget: %d)\n", options.token_budget);
    Report("Chunked", metrics, frontend);
  }
  return 0;
}
