// Mixed long-context + chat serving with preemptive scheduling: the
// paper's §4.4.3 scenario. LooGLE-style 30K-token documents share the
// server with short ShareGPT chats; without preemption, chats queue
// behind multi-second prefills. MuxWise's layer-wise prefill execution
// makes preemption cheap (pause at any layer boundary), so short
// requests keep their TTFT while long ones still finish on time.
//
// Run: ./build/examples/long_context_mix

#include <cstdio>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "serve/metrics.h"
#include "workload/datasets.h"

using namespace muxwise;

int main() {
  const serve::Deployment deployment = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);

  // 50/50 mix at 0.5 req/s total, as in the paper's preemption study.
  const workload::Trace mixed = workload::MergeTraces(
      "chat+documents",
      {workload::GenerateTrace(workload::Dataset::kShareGpt, 80, 0.10, 11),
       workload::GenerateTrace(workload::Dataset::kLoogle, 80, 0.10, 12)});
  std::printf("Mixed workload: %zu requests (short chats + ~30K-token "
              "documents)\n\n",
              mixed.requests.size());

  for (bool preemption : {true, false}) {
    harness::RunConfig config;
    core::MuxWiseEngine::Options options;
    options.dispatch.preemption = preemption;
    config.muxwise_options = options;
    const harness::RunOutcome o = harness::RunWorkload(
        harness::EngineKind::kMuxWise, deployment, mixed, &estimator,
        config);
    std::printf("preemption %-3s: %4zu preemptions | TTFT p50 %7.0f ms "
                "p99 %7.0f ms | TTFT/token p99 %.2f ms\n",
                preemption ? "ON" : "off", o.preemptions, o.ttft.p50_ms,
                o.ttft.p99_ms,
                o.ttft_per_token_sketch.Quantile(0.99));
  }

  std::printf(
      "\nWith preemption, a short chat arriving mid-way through a long\n"
      "document prefill pauses it at the next layer boundary, runs, and\n"
      "lets the document resume — no recursive preemption, and only when\n"
      "the document still meets its own (length-scaled) TTFT target.\n");
  return 0;
}
