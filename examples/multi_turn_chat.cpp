// Multi-turn chatbot serving: the scenario that motivates PD
// multiplexing (paper §1). A Conversation-style workload with long
// reused histories is served by MuxWise and by every baseline on the
// same simulated 8xA100 server, showing where each design pays:
// chunked prefill's fused iterations inflate TBT with long reused
// context, LoongServe recomputes whole histories, SGLang-PD splits the
// KV pool, and MuxWise multiplexes prefill beside a protected decode
// partition while sharing one radix cache.
//
// Run: ./build/examples/multi_turn_chat

#include <cstdio>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

using namespace muxwise;

int main() {
  const serve::Deployment deployment = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());

  // A 120-second bursty multi-turn trace, Mooncake-style statistics.
  const workload::Trace trace = workload::GenerateBurstyTrace(
      workload::Dataset::kConversation, /*base_rate=*/1.0,
      /*duration_seconds=*/120.0, /*max_spike=*/10.0, /*seed=*/7);
  std::printf("Serving %zu requests (%zu sessions worth of turns), mean "
              "input %.0f tokens of which %.0f reused\n\n",
              trace.requests.size(), trace.requests.size(),
              trace.InputStats().mean, trace.ReusedStats().mean);

  std::printf("One-time offline profiling (solo-run predictor + "
              "contention guard)...\n");
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  std::printf("  guard grid: %zu cells, max slowdown factor %.2fx\n\n",
              estimator.guard_cells(), estimator.MaxGuard());

  std::printf("%-11s | %9s | %9s | %7s | %8s | %s\n", "engine", "TTFT-p99",
              "TBT-p99", "attain", "hit rate", "notes");
  for (harness::EngineKind kind :
       {harness::EngineKind::kMuxWise, harness::EngineKind::kChunked,
        harness::EngineKind::kNanoFlow, harness::EngineKind::kLoongServe,
        harness::EngineKind::kSglangPd}) {
    const harness::RunOutcome o =
        harness::RunWorkload(kind, deployment, trace, &estimator);
    const char* note = "";
    switch (kind) {
      case harness::EngineKind::kMuxWise:
        note = "layer-wise prefill beside reserved decode SMs";
        break;
      case harness::EngineKind::kChunked:
        note = "chunks re-read the reused KV every iteration";
        break;
      case harness::EngineKind::kNanoFlow:
        note = "nano-batches re-stream weights";
        break;
      case harness::EngineKind::kLoongServe:
        note = "recomputes session history every turn";
        break;
      case harness::EngineKind::kSglangPd:
        note = "half-size KV pools, P->D migration";
        break;
      default:
        break;
    }
    std::printf("%-11s | %7.0f ms | %6.1f ms | %6.1f%% | %7.1f%% | %s%s\n",
                o.engine.c_str(), o.ttft.p99_ms, o.tbt.p99_ms,
                100.0 * o.tbt_attainment, 100.0 * o.cache_hit_rate, note,
                o.stable ? "" : " [UNSTABLE]");
  }
  std::printf("\nTBT SLO: %.0f ms at the 99th percentile.\n",
              sim::ToMilliseconds(deployment.slo.tbt));
  return 0;
}
