// Goodput explorer: a small CLI over the harness for exploring any
// (engine, model, GPU, workload) combination — the tool you reach for
// when sizing a deployment against an SLO.
//
// Usage:
//   goodput_explorer [engine] [model] [gpu] [dataset] [max_rate]
//     engine:  muxwise | chunked | nanoflow | sglang-pd | loongserve
//              | windserve | temporal        (default muxwise)
//     model:   Llama-8B | Llama-70B | Qwen-235B | CodeLlama-34B
//     gpu:     A100 | H100 | H200
//     dataset: sharegpt | loogle | openthoughts | conversation | toolagent
//     max_rate: top of the sweep in req/s (default 16)
//
// Also demonstrates trace recording: the swept base trace is written to
// goodput_explorer_trace.jsonl so a run can be replayed elsewhere.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"
#include "workload/trace_io.h"

using namespace muxwise;

namespace {

harness::EngineKind ParseEngine(const std::string& name) {
  if (name == "muxwise") return harness::EngineKind::kMuxWise;
  if (name == "chunked") return harness::EngineKind::kChunked;
  if (name == "nanoflow") return harness::EngineKind::kNanoFlow;
  if (name == "sglang-pd") return harness::EngineKind::kSglangPd;
  if (name == "loongserve") return harness::EngineKind::kLoongServe;
  if (name == "windserve") return harness::EngineKind::kWindServe;
  if (name == "temporal") return harness::EngineKind::kTemporal;
  std::fprintf(stderr, "unknown engine '%s'\n", name.c_str());
  std::exit(1);
}

workload::Dataset ParseDataset(const std::string& name) {
  if (name == "sharegpt") return workload::Dataset::kShareGpt;
  if (name == "loogle") return workload::Dataset::kLoogle;
  if (name == "openthoughts") return workload::Dataset::kOpenThoughts;
  if (name == "conversation") return workload::Dataset::kConversation;
  if (name == "toolagent") return workload::Dataset::kToolAgent;
  std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const harness::EngineKind engine =
      ParseEngine(argc > 1 ? argv[1] : "muxwise");
  const llm::ModelConfig model =
      llm::ModelConfig::ByName(argc > 2 ? argv[2] : "Llama-70B");
  const gpu::GpuSpec gpu = gpu::GpuSpec::ByName(argc > 3 ? argv[3] : "A100");
  const workload::Dataset dataset =
      ParseDataset(argc > 4 ? argv[4] : "toolagent");
  const double max_rate = argc > 5 ? std::atof(argv[5]) : 16.0;

  const serve::Deployment deployment = serve::Deployment::Make(model, gpu);
  std::printf("deployment: %s on %dx %s | TBT SLO %.0f ms @ P%.0f\n",
              model.name.c_str(), deployment.num_gpus, gpu.name.c_str(),
              sim::ToMilliseconds(deployment.slo.tbt),
              100 * deployment.slo.percentile);

  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace base = workload::GenerateTrace(
      dataset, /*num_requests=*/2000, /*rate=*/1.0, /*seed=*/99);
  workload::WriteTraceFile(base, "goodput_explorer_trace.jsonl");
  std::printf("workload: %s (base trace saved to "
              "goodput_explorer_trace.jsonl)\n\n",
              workload::DatasetName(dataset));

  std::vector<double> rates;
  for (double r = max_rate / 16.0; r <= max_rate * 1.0001;
       r *= 1.4142135623730951) {
    rates.push_back(r);
  }

  std::printf("%8s | %7s | %8s | %8s | %7s\n", "rate", "stable", "TBT-p99",
              "TTFT-p99", "attain");
  const harness::GoodputResult result = harness::SweepGoodput(
      engine, deployment, base, rates, &estimator);
  for (const harness::SweepPoint& point : result.points) {
    std::printf("%6.2f/s | %7s | %6.1fms | %6.0fms | %5.1f%%\n",
                point.rate_rps, point.outcome.stable ? "yes" : "NO",
                point.outcome.tbt.p99_ms, point.outcome.ttft.p99_ms,
                100.0 * point.outcome.tbt_attainment);
  }
  std::printf("\n%s goodput: %.2f req/s", harness::EngineKindName(engine),
              result.goodput_rps);
  if (result.at_goodput.has_value()) {
    std::printf("  (%.0f tokens/s)", result.at_goodput->token_throughput);
  }
  std::printf("\n");
  return 0;
}
