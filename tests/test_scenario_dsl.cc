#include "harness/scenario.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "harness/streaming.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

namespace muxwise::harness {
namespace {

std::string RepoPath(const std::string& relative) {
  return std::string(MUXWISE_SOURCE_DIR) + "/" + relative;
}

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

TEST(ScenarioDslTest, AcceptanceScenarioMatchesHandCodedRun) {
  // The DSL path (parse -> build deployment/trace -> run) must be
  // bit-identical to assembling the same scenario in C++ by hand.
  ScenarioParseResult parsed =
      LoadScenarioFile(RepoPath("scenarios/acceptance_sharegpt.json"));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const RunOutcome dsl = RunScenario(*parsed.spec);

  const serve::Deployment deployment = Llama70bA100();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);
  const RunOutcome hand =
      RunWorkload(EngineKind::kMuxWise, deployment, trace, &estimator);

  EXPECT_EQ(OutcomeDigest(dsl), OutcomeDigest(hand));
  EXPECT_EQ(dsl.completed, hand.completed);
  EXPECT_EQ(dsl.stable, hand.stable);
}

TEST(ScenarioDslTest, MmppScenarioMatchesHandCodedRun) {
  ScenarioParseResult parsed =
      LoadScenarioFile(RepoPath("scenarios/overload_mmpp_burst.json"));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.spec->mmpp.has_value());
  const RunOutcome dsl = RunScenario(*parsed.spec);

  const serve::Deployment deployment = Llama70bA100();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace =
      workload::GenerateMmppTrace(*parsed.spec->mmpp, parsed.spec->mmpp_seed);
  RunConfig config;
  config.overload = parsed.spec->config.overload;
  const RunOutcome hand =
      RunWorkload(EngineKind::kMuxWise, deployment, trace, &estimator, config);

  EXPECT_EQ(OutcomeDigest(dsl), OutcomeDigest(hand));
}

TEST(ScenarioDslTest, EveryCheckedInScenarioParses) {
  std::size_t seen = 0;
  for (const std::string dir : {"scenarios", "scenarios/nightly"}) {
    for (const auto& entry :
         std::filesystem::directory_iterator(RepoPath(dir))) {
      if (entry.path().extension() != ".json") continue;
      ++seen;
      const ScenarioParseResult parsed =
          LoadScenarioFile(entry.path().string());
      EXPECT_TRUE(parsed.ok())
          << entry.path().string() << ": " << parsed.error;
    }
  }
  EXPECT_GE(seen, 8u);  // 6 matrix scenarios + 2 nightly streaming ones.
}

TEST(ScenarioDslTest, ThreadCountDoesNotChangeTheDigest) {
  ScenarioParseResult base =
      LoadScenarioFile(RepoPath("scenarios/acceptance_sharegpt.json"));
  ASSERT_TRUE(base.ok()) << base.error;
  const RunOutcome single = RunScenario(*base.spec);
  base.spec->config.threads = 4;
  const RunOutcome sharded = RunScenario(*base.spec);
  EXPECT_EQ(OutcomeDigest(single), OutcomeDigest(sharded));
  EXPECT_EQ(single.event_digest, sharded.event_digest);
}

TEST(ScenarioDslTest, StreamingSmokeIsDeterministicAndAccurate) {
  const std::string text = R"json({
    "name": "stream-smoke",
    "engine": "muxwise",
    "deployment": {"model": "Llama-70B", "gpu": "A100", "num_gpus": 8},
    "trace": {
      "streaming": {
        "requests": 5000,
        "rate_per_second": 50.0,
        "seed": 9,
        "exact_subsample_period": 10
      }
    }
  })json";
  ScenarioParseResult parsed = ParseScenarioJson(text, "inline");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.spec->IsStreaming());

  const StreamingOutcome first = RunStreamingScenario(*parsed.spec);
  EXPECT_TRUE(first.stable) << first.diagnostic;
  EXPECT_EQ(first.completed, 5000u);
  EXPECT_FALSE(first.ttft_subsample_ms.empty());

  // The 1-in-10 exact subsample and the sketch describe the same
  // population, so their medians must agree to sketch accuracy.
  std::vector<double> subsample = first.ttft_subsample_ms;
  std::sort(subsample.begin(), subsample.end());
  const double exact_p50 = serve::PercentileSorted(subsample, 0.5);
  const double sketch_p50 = first.ttft_sketch.Quantile(0.5);
  EXPECT_NEAR(sketch_p50, exact_p50, exact_p50 * 0.10);

  const StreamingOutcome second = RunStreamingScenario(*parsed.spec);
  EXPECT_EQ(first.event_digest, second.event_digest);
  EXPECT_EQ(first.metrics_state_digest, second.metrics_state_digest);
}

TEST(ScenarioDslTest, RejectsUnknownKeysWithQualifiedPath) {
  const ScenarioParseResult parsed = ParseScenarioJson(
      R"({"name": "x", "engine": "muxwise",
          "trace": {"mix": [{"dataset": "sharegpt", "requests": 1,
                             "rate_per_second": 1.0, "tpyo": 3}]}})",
      "inline");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("trace.mix"), std::string::npos)
      << parsed.error;
  EXPECT_NE(parsed.error.find("tpyo"), std::string::npos) << parsed.error;
}

TEST(ScenarioDslTest, RejectsMissingName) {
  const ScenarioParseResult parsed = ParseScenarioJson(
      R"({"engine": "muxwise",
          "trace": {"mix": [{"dataset": "sharegpt", "requests": 1,
                             "rate_per_second": 1.0}]}})",
      "inline");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("name"), std::string::npos) << parsed.error;
}

TEST(ScenarioDslTest, RejectsTwoTraceShapes) {
  const ScenarioParseResult parsed = ParseScenarioJson(
      R"({"name": "x",
          "trace": {
            "mix": [{"dataset": "sharegpt", "requests": 1,
                     "rate_per_second": 1.0}],
            "streaming": {"requests": 10, "rate_per_second": 1.0}}})",
      "inline");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("exactly one"), std::string::npos)
      << parsed.error;
}

TEST(ScenarioDslTest, RejectsUnknownEngine) {
  const ScenarioParseResult parsed = ParseScenarioJson(
      R"({"name": "x", "engine": "warp-drive",
          "trace": {"mix": [{"dataset": "sharegpt", "requests": 1,
                             "rate_per_second": 1.0}]}})",
      "inline");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("engine"), std::string::npos) << parsed.error;
}

TEST(ScenarioDslTest, RejectsMalformedJsonWithSourceLabel) {
  const ScenarioParseResult parsed =
      ParseScenarioJson("{\"name\": ", "broken.json");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("broken.json"), std::string::npos)
      << parsed.error;
}

}  // namespace
}  // namespace muxwise::harness
