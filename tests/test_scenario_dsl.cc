#include "harness/scenario.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "harness/streaming.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

namespace muxwise::harness {
namespace {

std::string RepoPath(const std::string& relative) {
  return std::string(MUXWISE_SOURCE_DIR) + "/" + relative;
}

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

TEST(ScenarioDslTest, AcceptanceScenarioMatchesHandCodedRun) {
  // The DSL path (parse -> build deployment/trace -> run) must be
  // bit-identical to assembling the same scenario in C++ by hand.
  ScenarioParseResult parsed =
      LoadScenarioFile(RepoPath("scenarios/acceptance_sharegpt.json"));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const RunOutcome dsl = RunScenario(*parsed.spec);

  const serve::Deployment deployment = Llama70bA100();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);
  const RunOutcome hand =
      RunWorkload(EngineKind::kMuxWise, deployment, trace, &estimator);

  EXPECT_EQ(OutcomeDigest(dsl), OutcomeDigest(hand));
  EXPECT_EQ(dsl.completed, hand.completed);
  EXPECT_EQ(dsl.stable, hand.stable);
}

TEST(ScenarioDslTest, MmppScenarioMatchesHandCodedRun) {
  ScenarioParseResult parsed =
      LoadScenarioFile(RepoPath("scenarios/overload_mmpp_burst.json"));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.spec->mmpp.has_value());
  const RunOutcome dsl = RunScenario(*parsed.spec);

  const serve::Deployment deployment = Llama70bA100();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace =
      workload::GenerateMmppTrace(*parsed.spec->mmpp, parsed.spec->mmpp_seed);
  RunConfig config;
  config.overload = parsed.spec->config.overload;
  const RunOutcome hand =
      RunWorkload(EngineKind::kMuxWise, deployment, trace, &estimator, config);

  EXPECT_EQ(OutcomeDigest(dsl), OutcomeDigest(hand));
}

TEST(ScenarioDslTest, EveryCheckedInScenarioParses) {
  std::size_t seen = 0;
  for (const std::string dir : {"scenarios", "scenarios/nightly"}) {
    for (const auto& entry :
         std::filesystem::directory_iterator(RepoPath(dir))) {
      if (entry.path().extension() != ".json") continue;
      ++seen;
      const ScenarioParseResult parsed =
          LoadScenarioFile(entry.path().string());
      EXPECT_TRUE(parsed.ok())
          << entry.path().string() << ": " << parsed.error;
    }
  }
  EXPECT_GE(seen, 8u);  // 6 matrix scenarios + 2 nightly streaming ones.
}

TEST(ScenarioDslTest, ThreadCountDoesNotChangeTheDigest) {
  ScenarioParseResult base =
      LoadScenarioFile(RepoPath("scenarios/acceptance_sharegpt.json"));
  ASSERT_TRUE(base.ok()) << base.error;
  const RunOutcome single = RunScenario(*base.spec);
  base.spec->config.threads = 4;
  const RunOutcome sharded = RunScenario(*base.spec);
  EXPECT_EQ(OutcomeDigest(single), OutcomeDigest(sharded));
  EXPECT_EQ(single.event_digest, sharded.event_digest);
}

TEST(ScenarioDslTest, StreamingSmokeIsDeterministicAndAccurate) {
  const std::string text = R"json({
    "name": "stream-smoke",
    "engine": "muxwise",
    "deployment": {"model": "Llama-70B", "gpu": "A100", "num_gpus": 8},
    "trace": {
      "streaming": {
        "requests": 5000,
        "rate_per_second": 50.0,
        "seed": 9,
        "exact_subsample_period": 10
      }
    }
  })json";
  ScenarioParseResult parsed = ParseScenarioJson(text, "inline");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.spec->IsStreaming());

  const StreamingOutcome first = RunStreamingScenario(*parsed.spec);
  EXPECT_TRUE(first.stable) << first.diagnostic;
  EXPECT_EQ(first.completed, 5000u);
  EXPECT_FALSE(first.ttft_subsample_ms.empty());

  // The 1-in-10 exact subsample and the sketch describe the same
  // population, so their medians must agree to sketch accuracy.
  std::vector<double> subsample = first.ttft_subsample_ms;
  std::sort(subsample.begin(), subsample.end());
  const double exact_p50 = serve::PercentileSorted(subsample, 0.5);
  const double sketch_p50 = first.ttft_sketch.Quantile(0.5);
  EXPECT_NEAR(sketch_p50, exact_p50, exact_p50 * 0.10);

  const StreamingOutcome second = RunStreamingScenario(*parsed.spec);
  EXPECT_EQ(first.event_digest, second.event_digest);
  EXPECT_EQ(first.metrics_state_digest, second.metrics_state_digest);
}

TEST(ScenarioDslTest, RejectsUnknownKeysWithQualifiedPath) {
  const ScenarioParseResult parsed = ParseScenarioJson(
      R"({"name": "x", "engine": "muxwise",
          "trace": {"mix": [{"dataset": "sharegpt", "requests": 1,
                             "rate_per_second": 1.0, "tpyo": 3}]}})",
      "inline");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("trace.mix"), std::string::npos)
      << parsed.error;
  EXPECT_NE(parsed.error.find("tpyo"), std::string::npos) << parsed.error;
}

TEST(ScenarioDslTest, RejectsMissingName) {
  const ScenarioParseResult parsed = ParseScenarioJson(
      R"({"engine": "muxwise",
          "trace": {"mix": [{"dataset": "sharegpt", "requests": 1,
                             "rate_per_second": 1.0}]}})",
      "inline");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("name"), std::string::npos) << parsed.error;
}

TEST(ScenarioDslTest, RejectsTwoTraceShapes) {
  const ScenarioParseResult parsed = ParseScenarioJson(
      R"({"name": "x",
          "trace": {
            "mix": [{"dataset": "sharegpt", "requests": 1,
                     "rate_per_second": 1.0}],
            "streaming": {"requests": 10, "rate_per_second": 1.0}}})",
      "inline");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("exactly one"), std::string::npos)
      << parsed.error;
}

TEST(ScenarioDslTest, RejectsUnknownEngine) {
  const ScenarioParseResult parsed = ParseScenarioJson(
      R"({"name": "x", "engine": "warp-drive",
          "trace": {"mix": [{"dataset": "sharegpt", "requests": 1,
                             "rate_per_second": 1.0}]}})",
      "inline");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("engine"), std::string::npos) << parsed.error;
}

TEST(ScenarioDslTest, RejectsMalformedJsonWithSourceLabel) {
  const ScenarioParseResult parsed =
      ParseScenarioJson("{\"name\": ", "broken.json");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("broken.json"), std::string::npos)
      << parsed.error;
}

// ---------------------------------------------------------------------------
// Grey-failure surface: fleet health knobs and fault arrays are parsed
// strictly — every rejection names the qualified path, so a typo in a
// chaos repro fails loudly instead of silently running a softer plan.
// ---------------------------------------------------------------------------

std::string WithFleet(const std::string& fleet_body) {
  return R"({"name": "x",
             "trace": {"mix": [{"dataset": "sharegpt", "requests": 1,
                                "rate_per_second": 1.0}]},
             "fleet": {"enabled": true, )" +
         fleet_body + "}}";
}

std::string WithFaults(const std::string& faults_body) {
  return R"({"name": "x",
             "trace": {"mix": [{"dataset": "sharegpt", "requests": 1,
                                "rate_per_second": 1.0}]},
             "faults": {)" +
         faults_body + "}}";
}

void ExpectRejects(const std::string& text, const std::string& path_needle,
                   const std::string& reason_needle) {
  const ScenarioParseResult parsed = ParseScenarioJson(text, "inline");
  EXPECT_FALSE(parsed.ok()) << "parsed despite: " << reason_needle;
  EXPECT_NE(parsed.error.find(path_needle), std::string::npos)
      << parsed.error;
  EXPECT_NE(parsed.error.find(reason_needle), std::string::npos)
      << parsed.error;
}

TEST(ScenarioDslTest, RejectsNonPositiveHeartbeat) {
  ExpectRejects(WithFleet(R"("heartbeat_ms": 0)"), "fleet.heartbeat_ms",
                "must be > 0");
}

TEST(ScenarioDslTest, RejectsDownThresholdBelowSuspect) {
  ExpectRejects(
      WithFleet(R"("suspect_after_misses": 3, "down_after_misses": 2)"),
      "fleet.down_after_misses", "must be >= suspect_after_misses");
}

TEST(ScenarioDslTest, RejectsZeroSuspectExitBeats) {
  ExpectRejects(WithFleet(R"("suspect_exit_beats": 0)"),
                "fleet.suspect_exit_beats", "must be >= 1");
}

TEST(ScenarioDslTest, RejectsZombieDownBelowZombieAfter) {
  ExpectRejects(
      WithFleet(R"("zombie_after_beats": 4, "zombie_down_beats": 2)"),
      "fleet.zombie_down_beats", "must be >= zombie_after_beats");
}

TEST(ScenarioDslTest, RejectsUnknownFleetHealthKey) {
  ExpectRejects(WithFleet(R"("heartbeta_ms": 250)"), "fleet",
                "heartbeta_ms");
}

TEST(ScenarioDslTest, RejectsEmptyZombieWindow) {
  ExpectRejects(
      WithFaults(
          R"("zombies": [{"instance": 0, "from_seconds": 5, "to_seconds": 5}])"),
      "faults.zombies[0]", "from < to");
}

TEST(ScenarioDslTest, RejectsFlapWithUnitDutyCycle) {
  // duty_up == 1.0 never goes down (a no-op masquerading as a fault).
  ExpectRejects(
      WithFaults(
          R"("flaps": [{"instance": 0, "from_seconds": 1, "to_seconds": 5,
                        "period_seconds": 1.0, "duty_up": 1.0}])"),
      "faults.flaps[0]", "duty_up");
}

TEST(ScenarioDslTest, RejectsFlapWithZeroPeriod) {
  ExpectRejects(
      WithFaults(
          R"("flaps": [{"instance": 0, "from_seconds": 1, "to_seconds": 5,
                        "period_seconds": 0.0, "duty_up": 0.5}])"),
      "faults.flaps[0]", "period > 0");
}

TEST(ScenarioDslTest, RejectsDegradeFactorAboveOne) {
  ExpectRejects(
      WithFaults(
          R"("degrades": [{"instance": 0, "from_seconds": 1,
                           "to_seconds": 5, "flops_factor": 1.5}])"),
      "faults.degrades[0]", "factors in (0, 1]");
}

TEST(ScenarioDslTest, RejectsLinkDegradeWithFlopsFactor) {
  // A link has no FLOPs; only its bandwidth can degrade.
  ExpectRejects(
      WithFaults(
          R"("degrades": [{"link": true, "from_seconds": 1,
                           "to_seconds": 5, "flops_factor": 0.5,
                           "bandwidth_factor": 0.5}])"),
      "faults.degrades[0]", "link degrade cannot carry a flops_factor");
}

TEST(ScenarioDslTest, RejectsPartitionDroppingBothDirections) {
  ExpectRejects(
      WithFaults(
          R"("partitions": [{"instance": 0, "from_seconds": 1,
                             "to_seconds": 5, "drop_to_replica": true,
                             "drop_from_replica": true}])"),
      "faults.partitions[0]", "dropping both directions is a crash");
}

TEST(ScenarioDslTest, RejectsPartitionDroppingNeitherDirection) {
  ExpectRejects(
      WithFaults(
          R"("partitions": [{"instance": 0, "from_seconds": 1,
                             "to_seconds": 5}])"),
      "faults.partitions[0]", "must drop at least one direction");
}

TEST(ScenarioDslTest, RejectsUnknownFaultEntryKey) {
  ExpectRejects(
      WithFaults(
          R"("zombies": [{"instance": 0, "from_seconds": 1,
                          "til_seconds": 5}])"),
      "faults.zombies[0]", "til_seconds");
}

TEST(ScenarioDslTest, AcceptsAFullGreyFaultBlock) {
  const ScenarioParseResult parsed = ParseScenarioJson(
      WithFaults(
          R"("seed": 7,
             "zombies": [{"instance": 1, "from_seconds": 2,
                          "to_seconds": 4}],
             "flaps": [{"link": true, "from_seconds": 1, "to_seconds": 3,
                        "period_seconds": 0.5, "duty_up": 0.5}],
             "degrades": [{"instance": 0, "from_seconds": 5,
                           "to_seconds": 6, "flops_factor": 0.8,
                           "bandwidth_factor": 0.9}],
             "partitions": [{"instance": 2, "from_seconds": 7,
                             "to_seconds": 8, "drop_from_replica": true}])"),
      "inline");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.spec->config.fault_plan.has_value());
  const fault::FaultPlan& plan = *parsed.spec->config.fault_plan;
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.zombies.size(), 1u);
  ASSERT_EQ(plan.flaps.size(), 1u);
  EXPECT_TRUE(plan.flaps[0].link);
  ASSERT_EQ(plan.degrades.size(), 1u);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_TRUE(plan.partitions[0].drop_from_replica);
  EXPECT_EQ(plan.Check(), "");
}

}  // namespace
}  // namespace muxwise::harness
