#include "serve/deployment.h"

#include <gtest/gtest.h>

#include "gpu/gpu_spec.h"
#include "llm/model_config.h"

namespace muxwise::serve {
namespace {

TEST(DeploymentTest, MakeDerivesSloFromModel) {
  const Deployment d8 = Deployment::Make(llm::ModelConfig::Llama8B(),
                                         gpu::GpuSpec::A100());
  EXPECT_EQ(d8.slo.tbt, sim::Milliseconds(50));
  const Deployment d70 = Deployment::Make(llm::ModelConfig::Llama70B(),
                                          gpu::GpuSpec::A100());
  EXPECT_EQ(d70.slo.tbt, sim::Milliseconds(100));
  EXPECT_EQ(d70.num_gpus, 8);
}

TEST(DeploymentTest, PoolTokensAccountForWeightsAndOverheads) {
  const Deployment d = Deployment::Make(llm::ModelConfig::Llama70B(),
                                        gpu::GpuSpec::A100());
  const std::int64_t tokens = d.PoolTokens(8);
  // 640 GB * 0.92 - 140 GB weights - 3% graphs ~= 429 GB / 320 KiB.
  EXPECT_GT(tokens, 1000000);
  EXPECT_LT(tokens, 1500000);
  // Half the GPUs, same weights: much smaller pool (disaggregation tax).
  const std::int64_t half = d.PoolTokens(4);
  EXPECT_LT(half, tokens / 2);
}

TEST(DeploymentTest, DisaggregatedPoolsLoseCapacity) {
  const Deployment d = Deployment::Make(llm::ModelConfig::Llama70B(),
                                        gpu::GpuSpec::A100());
  // Two TP4 instances hold less total cache than one TP8 instance
  // because weights are duplicated (paper §2.3.1).
  EXPECT_LT(2 * d.PoolTokens(4), d.PoolTokens(8));
}

TEST(DeploymentDeathTest, ModelMustFit) {
  const Deployment d = Deployment::Make(llm::ModelConfig::Llama70B(),
                                        gpu::GpuSpec::A100());
  EXPECT_EXIT(d.PoolTokens(1), ::testing::ExitedWithCode(1),
              "does not fit");
}

TEST(DeploymentTest, ExtraGraphFractionShrinksPool) {
  const Deployment d = Deployment::Make(llm::ModelConfig::Llama70B(),
                                        gpu::GpuSpec::A100());
  EXPECT_LT(d.PoolTokens(8, 0.032), d.PoolTokens(8));
}

TEST(DeploymentTest, PartitionOptionsMatchPaperCounts) {
  // Paper §3.3.2: 16-SM granularity yields 6 partition configurations
  // on A100 (108 SMs) and 7 on H100 (132 SMs), plus the full device.
  const Deployment a100 = Deployment::Make(llm::ModelConfig::Llama70B(),
                                           gpu::GpuSpec::A100());
  const std::vector<int> options = a100.SmPartitionOptions();
  ASSERT_EQ(options.size(), 7u);  // 6 multiplexed + full device.
  EXPECT_EQ(options.front(), 16);
  EXPECT_EQ(options[5], 96);
  EXPECT_EQ(options.back(), 108);

  const Deployment h100 = Deployment::Make(llm::ModelConfig::Llama70B(),
                                           gpu::GpuSpec::H100());
  const std::vector<int> h_options = h100.SmPartitionOptions();
  ASSERT_EQ(h_options.size(), 8u);  // 7 multiplexed + full device.
  EXPECT_EQ(h_options[6], 112);
  EXPECT_EQ(h_options.back(), 132);
}

TEST(DeploymentTest, MoeOnH200Fits) {
  const Deployment d = Deployment::Make(llm::ModelConfig::Qwen235B(),
                                        gpu::GpuSpec::H200());
  // 1128 GB total, 470 GB weights: plenty of pool left.
  EXPECT_GT(d.PoolTokens(8), 1000000);
}

}  // namespace
}  // namespace muxwise::serve
