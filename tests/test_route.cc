#include "route/fleet_router.h"

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "route/affinity.h"
#include "route/health.h"
#include "serve/deployment.h"
#include "sim/time.h"
#include "workload/datasets.h"
#include "workload/slo.h"

namespace muxwise::route {
namespace {

// ------------------------------------------------------------ affinity

kv::TokenSeq Span(std::int64_t stream, std::int64_t begin, std::int64_t end) {
  return {{stream, begin, end}};
}

TEST(AffinityKeyTest, EqualPrefixesHashEqual) {
  EXPECT_EQ(PrefixAffinityKey(Span(7, 0, 500), 256),
            PrefixAffinityKey(Span(7, 0, 500), 256));
  // Prompts differing only past the hashed prefix share the key: both
  // truncate to the same first 256 tokens of stream 7.
  EXPECT_EQ(PrefixAffinityKey(Span(7, 0, 500), 256),
            PrefixAffinityKey(Span(7, 0, 300), 256));
}

TEST(AffinityKeyTest, DifferentStreamsOrOffsetsHashDifferent) {
  EXPECT_NE(PrefixAffinityKey(Span(7, 0, 256), 256),
            PrefixAffinityKey(Span(8, 0, 256), 256));
  EXPECT_NE(PrefixAffinityKey(Span(7, 0, 256), 256),
            PrefixAffinityKey(Span(7, 1, 257), 256));
}

TEST(AffinityKeyTest, ShortPromptsHashTheirFullLength) {
  EXPECT_EQ(PrefixAffinityKey(Span(7, 0, 100), 256),
            PrefixAffinityKey(Span(7, 0, 100), 256));
  EXPECT_NE(PrefixAffinityKey(Span(7, 0, 100), 256),
            PrefixAffinityKey(Span(7, 0, 101), 256));
}

TEST(AffinityTableTest, RecordsLooksUpAndEvictsPerReplica) {
  AffinityTable table;
  table.Record(1, 0);
  table.Record(2, 1);
  table.Record(3, 1);
  ASSERT_TRUE(table.Lookup(1).has_value());
  EXPECT_EQ(*table.Lookup(1), 0u);
  EXPECT_EQ(*table.Lookup(2), 1u);
  EXPECT_FALSE(table.Lookup(99).has_value());
  table.EvictReplica(1);
  EXPECT_FALSE(table.Lookup(2).has_value());
  EXPECT_FALSE(table.Lookup(3).has_value());
  EXPECT_TRUE(table.Lookup(1).has_value());  // Replica 0 untouched.
  EXPECT_EQ(table.size(), 1u);
}

// ---------------------------------------------------------- health FSM

HealthPolicy TestPolicy() {
  HealthPolicy policy;
  policy.suspect_after_misses = 1;
  policy.down_after_misses = 2;
  policy.recovery_probation_beats = 2;
  return policy;
}

TEST(HealthTrackerTest, CrashWalksSuspectThenDown) {
  HealthTracker tracker(TestPolicy(), 2);
  EXPECT_EQ(tracker.state(0), ReplicaHealth::kHealthy);
  EXPECT_TRUE(tracker.Stable(0));
  tracker.OnCrashSignal(0, sim::Seconds(30));
  EXPECT_FALSE(tracker.Stable(0));

  auto t = tracker.Beat(0, sim::Seconds(30) + sim::Milliseconds(500));
  EXPECT_TRUE(t.changed);
  EXPECT_EQ(t.to, ReplicaHealth::kSuspect);

  t = tracker.Beat(0, sim::Seconds(31));
  EXPECT_TRUE(t.changed);
  EXPECT_EQ(t.to, ReplicaHealth::kDown);
  EXPECT_EQ(tracker.crash_signal_at(0), sim::Seconds(30));

  // Down is absorbing while the replica stays dead.
  t = tracker.Beat(0, sim::Seconds(32));
  EXPECT_FALSE(t.changed);
  EXPECT_TRUE(tracker.Stable(0));
  // The sibling replica never moved.
  EXPECT_EQ(tracker.state(1), ReplicaHealth::kHealthy);
}

TEST(HealthTrackerTest, RecoveryServesProbationBeforeHealthy) {
  HealthTracker tracker(TestPolicy(), 1);
  tracker.OnCrashSignal(0, sim::Seconds(10));
  tracker.Beat(0, sim::Seconds(10));
  tracker.Beat(0, sim::Seconds(11));
  ASSERT_EQ(tracker.state(0), ReplicaHealth::kDown);

  tracker.OnRecoverySignal(0);
  EXPECT_FALSE(tracker.Stable(0));
  auto t = tracker.Beat(0, sim::Seconds(12));
  EXPECT_EQ(t.to, ReplicaHealth::kRecovering);
  t = tracker.Beat(0, sim::Seconds(13));  // Probation beat 1 of 2.
  EXPECT_FALSE(t.changed);
  t = tracker.Beat(0, sim::Seconds(14));  // Probation served.
  EXPECT_TRUE(t.changed);
  EXPECT_EQ(t.to, ReplicaHealth::kHealthy);
  EXPECT_TRUE(tracker.Stable(0));
}

TEST(HealthTrackerTest, StragglerMarksSuspectAndClearanceRestores) {
  HealthTracker tracker(TestPolicy(), 1);
  EXPECT_TRUE(tracker.OnStragglerSignal(0, 2.0));
  EXPECT_EQ(tracker.state(0), ReplicaHealth::kSuspect);
  EXPECT_TRUE(tracker.straggling(0));
  // A straggling suspect is a fixed point: heartbeats answer (slowly).
  EXPECT_TRUE(tracker.Stable(0));
  tracker.Beat(0, sim::Seconds(1));
  EXPECT_EQ(tracker.state(0), ReplicaHealth::kSuspect);

  EXPECT_TRUE(tracker.OnStragglerSignal(0, 1.0));
  EXPECT_EQ(tracker.state(0), ReplicaHealth::kHealthy);
}

TEST(HealthTrackerTest, TransientMissClearsOnTheNextGoodBeat) {
  // Crash signal followed by recovery before the Down threshold: the
  // suspect clears instead of failing over.
  HealthTracker tracker(TestPolicy(), 1);
  tracker.OnCrashSignal(0, sim::Seconds(5));
  auto t = tracker.Beat(0, sim::Seconds(5) + sim::Milliseconds(500));
  ASSERT_EQ(t.to, ReplicaHealth::kSuspect);
  tracker.OnRecoverySignal(0);
  t = tracker.Beat(0, sim::Seconds(6));
  EXPECT_TRUE(t.changed);
  EXPECT_EQ(t.to, ReplicaHealth::kHealthy);
}

// ------------------------------------------------------- fleet routing

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

class FleetRouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
    trace_ = new workload::Trace(
        workload::GenerateTrace(workload::Dataset::kShareGpt, 80, 1.0, 777));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
    delete trace_;
    trace_ = nullptr;
  }
  static core::ContentionEstimator* estimator_;
  static workload::Trace* trace_;
};

core::ContentionEstimator* FleetRouterTest::estimator_ = nullptr;
workload::Trace* FleetRouterTest::trace_ = nullptr;

TEST_F(FleetRouterTest, DisabledFleetKeepsTheBaselineDigest) {
  // Fleet knobs without enabled=true must be inert: bit-identical
  // digests, no router constructed (single-replica seed invariant).
  harness::RunConfig baseline;
  harness::RunConfig knobs;
  knobs.fleet.replicas = 4;
  knobs.fleet.failover = false;
  knobs.fleet.autoscale = true;
  const harness::RunOutcome a = harness::RunWorkload(
      harness::EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      baseline);
  const harness::RunOutcome b = harness::RunWorkload(
      harness::EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      knobs);
  EXPECT_EQ(harness::OutcomeDigest(a), harness::OutcomeDigest(b));
  EXPECT_EQ(a.event_digest, b.event_digest);
  EXPECT_FALSE(a.fleet_active);
  EXPECT_FALSE(b.fleet_active);
}

TEST_F(FleetRouterTest, SingleReplicaFleetCompletesEveryRequest) {
  harness::RunConfig config;
  config.fleet.enabled = true;
  config.fleet.replicas = 1;
  const harness::RunOutcome outcome = harness::RunWorkload(
      harness::EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      config);
  EXPECT_TRUE(outcome.diagnostic.empty()) << outcome.diagnostic;
  EXPECT_TRUE(outcome.fleet_active);
  EXPECT_EQ(outcome.fleet.replicas, 1u);
  EXPECT_EQ(outcome.completed, outcome.total);
  ASSERT_EQ(outcome.fleet.routed_per_replica.size(), 1u);
  EXPECT_EQ(outcome.fleet.routed_per_replica[0], outcome.total);
}

TEST_F(FleetRouterTest, FleetSpreadsLoadAndKeepsSessionsAffine) {
  // Conversation is the multi-turn dataset (ShareGPT is single-turn
  // here): later turns must find their session's KV.
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 60, 1.0, 4242);
  harness::RunConfig config;
  config.fleet.enabled = true;
  config.fleet.replicas = 4;
  const harness::RunOutcome outcome = harness::RunWorkload(
      harness::EngineKind::kMuxWise, Llama70bA100(), trace, estimator_,
      config);
  EXPECT_TRUE(outcome.diagnostic.empty()) << outcome.diagnostic;
  EXPECT_EQ(outcome.completed, outcome.total);
  ASSERT_EQ(outcome.fleet.routed_per_replica.size(), 4u);
  std::size_t used = 0;
  std::size_t routed = 0;
  for (std::size_t n : outcome.fleet.routed_per_replica) {
    if (n > 0) ++used;
    routed += n;
  }
  EXPECT_GT(used, 1u);  // Least-loaded fallback spreads fresh sessions.
  EXPECT_EQ(routed, outcome.total);
  // Later turns of a session must ride the affinity table or the
  // session-home map, never round-robin away from their KV.
  EXPECT_GT(outcome.fleet.affinity_hits + outcome.fleet.session_hits, 0u);
}

TEST_F(FleetRouterTest, ReplicaCrashFailsOverAndRehomesOrphans) {
  harness::RunConfig config;
  config.fleet.enabled = true;
  config.fleet.replicas = 4;
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Crash(1, sim::Seconds(20));  // Never recovers.
  const harness::RunOutcome outcome = harness::RunWorkload(
      harness::EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      config);
  EXPECT_TRUE(outcome.diagnostic.empty()) << outcome.diagnostic;
  EXPECT_EQ(outcome.split.total(), outcome.total);  // All accounted.
  EXPECT_EQ(outcome.fleet.failovers, 1u);
  EXPECT_GT(outcome.fleet.failover_latency.count, 0u);
  // Detection is bounded by the heartbeat FSM: with 500 ms beats and
  // down_after_misses = 2, Down is declared exactly one second after
  // the crash signal.
  EXPECT_NEAR(outcome.fleet.failover_latency.mean_ms, 1000.0, 1e-6);
  EXPECT_GT(outcome.split.attained, 0u);
}

TEST_F(FleetRouterTest, RehomedSessionsMigrateDurableKvWhenWireIsCheaper) {
  // Multi-turn sessions carry durable prior-turn KV (reused_tokens);
  // for those orphans the cost model prefers re-migrating the prefix
  // over the fleet host link to recomputing it. (ShareGPT orphans have
  // no reuse and always take the recompute row.)
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 120, 2.0, 31337);
  harness::RunConfig config;
  config.fleet.enabled = true;
  config.fleet.replicas = 4;
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Crash(1, sim::Seconds(25));
  const harness::RunOutcome outcome = harness::RunWorkload(
      harness::EngineKind::kMuxWise, Llama70bA100(), trace, estimator_,
      config);
  EXPECT_TRUE(outcome.diagnostic.empty()) << outcome.diagnostic;
  EXPECT_EQ(outcome.split.total(), outcome.total);
  EXPECT_GT(outcome.fleet.rehomed, 0u);
  EXPECT_GT(outcome.fleet.rehome_migrations, 0u);
  EXPECT_EQ(outcome.fleet.rehomed, outcome.fleet.rehome_migrations +
                                       outcome.fleet.rehome_recomputes);
}

TEST_F(FleetRouterTest, RecoveredReplicaRejoinsTheRotation) {
  harness::RunConfig config;
  config.fleet.enabled = true;
  config.fleet.replicas = 2;
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Crash(1, sim::Seconds(10), sim::Seconds(20));
  const harness::RunOutcome outcome = harness::RunWorkload(
      harness::EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      config);
  EXPECT_TRUE(outcome.diagnostic.empty()) << outcome.diagnostic;
  EXPECT_EQ(outcome.split.total(), outcome.total);
  // Down -> Recovering -> Healthy transitions all happened.
  EXPECT_GE(outcome.fleet.health_transitions, 4u);
  // The degradation ladder visited a degraded mode and came back.
  EXPECT_GE(outcome.fleet.mode_transitions, 2u);
}

TEST_F(FleetRouterTest, AutoscaleDrainsIdleReplicasDeterministically) {
  harness::RunConfig config;
  config.fleet.enabled = true;
  config.fleet.replicas = 4;
  config.fleet.autoscale = true;
  config.fleet.min_replicas = 1;
  config.fleet.scale_dwell_beats = 2;
  const harness::RunOutcome outcome = harness::RunWorkload(
      harness::EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      config);
  EXPECT_TRUE(outcome.diagnostic.empty()) << outcome.diagnostic;
  EXPECT_EQ(outcome.completed, outcome.total);
  // 80 requests at 1 rps never fill four 70B pools: the dwell counter
  // trips and high-index replicas drain and park.
  EXPECT_GT(outcome.fleet.scale_downs, 0u);

  const harness::DeterminismReport report = harness::VerifyDeterminism(
      harness::EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      config);
  EXPECT_TRUE(report.deterministic) << report.mismatch;
}

TEST_F(FleetRouterTest, RouterAuditsRunAtQuiescence) {
  // RunWorkload aborts on any audit violation; a clean pass means the
  // router's quiescence audit (zero in-flight, empty re-home buffer,
  // dormant heartbeat, drained per-replica demand) held, including the
  // per-replica engine audits it forwards.
  harness::RunConfig config;
  config.fleet.enabled = true;
  config.fleet.replicas = 3;
  const harness::RunOutcome outcome = harness::RunWorkload(
      harness::EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      config);
  EXPECT_TRUE(outcome.diagnostic.empty()) << outcome.diagnostic;
}

}  // namespace
}  // namespace muxwise::route
