#include "benchrun/report.h"

#include <gtest/gtest.h>

#include <string>

#include "benchrun/simcore.h"

namespace muxwise::benchrun {
namespace {

BenchResult MakeBench(const std::string& name, double wall_ms,
                      std::uint64_t events, std::uint64_t digest) {
  BenchResult b;
  b.name = name;
  b.wall_ms = {wall_ms, wall_ms, wall_ms};
  b.wall_ms_median = wall_ms;
  b.sim_events = events;
  b.events_per_sec = events / (wall_ms / 1e3);
  b.digest = digest;
  return b;
}

BenchReport MakeReport(std::vector<BenchResult> benches) {
  BenchReport report;
  report.suite = "smoke";
  report.repeat = 3;
  report.machine.host = "test";
  report.machine.compiler = "test 1.0";
  report.machine.build_type = "release";
  report.machine.cpus = 1;
  report.machine.hw_threads = 8;
  report.benches = std::move(benches);
  return report;
}

TEST(BenchDiffTest, IdenticalReportsPass) {
  const BenchReport base =
      MakeReport({MakeBench("a", 10.0, 1000, 0x1111), MakeBench("b", 20.0, 2000, 0x2222)});
  const DiffResult diff = DiffReports(base, base);
  EXPECT_TRUE(diff.ok()) << (diff.failures.empty() ? "" : diff.failures[0]);
}

TEST(BenchDiffTest, DigestChangeFailsEvenWhenFaster) {
  const BenchReport base = MakeReport({MakeBench("a", 10.0, 1000, 0x1111)});
  const BenchReport cand = MakeReport({MakeBench("a", 5.0, 1000, 0xdead)});
  const DiffResult diff = DiffReports(base, cand);
  ASSERT_FALSE(diff.ok());
  EXPECT_NE(diff.failures[0].find("digest"), std::string::npos)
      << diff.failures[0];
}

TEST(BenchDiffTest, SimEventCountChangeFails) {
  const BenchReport base = MakeReport({MakeBench("a", 10.0, 1000, 0x1111)});
  const BenchReport cand = MakeReport({MakeBench("a", 10.0, 1001, 0x1111)});
  EXPECT_FALSE(DiffReports(base, cand).ok());
}

TEST(BenchDiffTest, TenPercentSlowdownFailsTheGate) {
  // The synthetic regression the CI gate must catch: same work, same
  // digest, 12% more wall time (> the 10% threshold).
  const BenchReport base = MakeReport({MakeBench("a", 100.0, 1000, 0x1111)});
  const BenchReport cand = MakeReport({MakeBench("a", 112.0, 1000, 0x1111)});
  const DiffResult diff = DiffReports(base, cand);
  ASSERT_FALSE(diff.ok());
  EXPECT_NE(diff.failures[0].find("wall"), std::string::npos)
      << diff.failures[0];
}

TEST(BenchDiffTest, SlowdownWithinThresholdPasses) {
  const BenchReport base = MakeReport({MakeBench("a", 100.0, 1000, 0x1111)});
  const BenchReport cand = MakeReport({MakeBench("a", 108.0, 1000, 0x1111)});
  EXPECT_TRUE(DiffReports(base, cand).ok());
}

TEST(BenchDiffTest, WallCheckCanBeDisabledButDigestsStillGate) {
  DiffOptions options;
  options.check_wall = false;
  const BenchReport base = MakeReport({MakeBench("a", 100.0, 1000, 0x1111)});
  EXPECT_TRUE(
      DiffReports(base, MakeReport({MakeBench("a", 250.0, 1000, 0x1111)}),
                  options)
          .ok());
  EXPECT_FALSE(
      DiffReports(base, MakeReport({MakeBench("a", 100.0, 1000, 0x2222)}),
                  options)
          .ok());
}

TEST(BenchDiffTest, MissingBaselineBenchFailsCoverage) {
  const BenchReport base =
      MakeReport({MakeBench("a", 10.0, 1000, 0x1), MakeBench("b", 10.0, 1000, 0x2)});
  const BenchReport cand = MakeReport({MakeBench("a", 10.0, 1000, 0x1)});
  EXPECT_FALSE(DiffReports(base, cand).ok());

  DiffOptions lax;
  lax.require_coverage = false;
  EXPECT_TRUE(DiffReports(base, cand, lax).ok());
}

TEST(BenchDiffTest, NewCandidateBenchIsNotedNotFailed) {
  const BenchReport base = MakeReport({MakeBench("a", 10.0, 1000, 0x1)});
  const BenchReport cand =
      MakeReport({MakeBench("a", 10.0, 1000, 0x1), MakeBench("z", 1.0, 10, 0x9)});
  const DiffResult diff = DiffReports(base, cand);
  EXPECT_TRUE(diff.ok());
  EXPECT_FALSE(diff.notes.empty());
}

TEST(BenchReportTest, JsonRoundTripsLossllessly) {
  const BenchReport report = MakeReport(
      {MakeBench("simcore.events", 42.5, 200063, 0x684f4e7c0c05b620ULL)});
  BenchReport parsed;
  std::string error;
  ASSERT_TRUE(FromJson(ToJson(report), parsed, error)) << error;
  ASSERT_EQ(parsed.benches.size(), 1u);
  EXPECT_EQ(parsed.suite, "smoke");
  EXPECT_EQ(parsed.repeat, 3);
  EXPECT_EQ(parsed.machine.compiler, "test 1.0");
  EXPECT_EQ(parsed.machine.cpus, 1);
  EXPECT_EQ(parsed.machine.hw_threads, 8);
  EXPECT_EQ(parsed.benches[0].name, "simcore.events");
  EXPECT_EQ(parsed.benches[0].sim_events, 200063u);
  EXPECT_EQ(parsed.benches[0].digest, 0x684f4e7c0c05b620ULL);
  EXPECT_DOUBLE_EQ(parsed.benches[0].wall_ms_median, 42.5);
  EXPECT_EQ(parsed.benches[0].wall_ms.size(), 3u);
}

TEST(BenchReportTest, ReportWithoutHwThreadsStillParses) {
  // hw_threads joined the machine schema with the parallel kernel;
  // reports recorded before it must stay readable (field defaults 0).
  BenchReport report = MakeReport({MakeBench("a", 1.0, 10, 0x1)});
  std::string json = ToJson(report);
  const std::string needle = ",\n    \"hw_threads\": 8";
  const auto pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos) << json;
  json.erase(pos, needle.size());
  BenchReport parsed;
  std::string error;
  ASSERT_TRUE(FromJson(json, parsed, error)) << error;
  EXPECT_EQ(parsed.machine.cpus, 1);
  EXPECT_EQ(parsed.machine.hw_threads, 0);
}

TEST(BenchReportTest, DetectedMachineReportsUsableCpuCounts) {
  // The threads=N scaling numbers are only interpretable when the
  // report records a real CPU count — never the hardcoded 1 the
  // pre-parallel schema shipped on every machine.
  const MachineInfo machine = MachineInfo::Detect();
  EXPECT_GE(machine.cpus, 1);
  EXPECT_GE(machine.hw_threads, 1);
  // Affinity can only restrict below the hardware thread count.
  EXPECT_LE(machine.cpus, machine.hw_threads);
}

TEST(BenchReportTest, SchemaVersionMismatchIsRejected) {
  BenchReport report = MakeReport({MakeBench("a", 1.0, 10, 0x1)});
  std::string json = ToJson(report);
  const std::string needle = "\"schema_version\": 1";
  const auto pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, needle.size(), "\"schema_version\": 999");
  BenchReport parsed;
  std::string error;
  EXPECT_FALSE(FromJson(json, parsed, error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(BenchReportTest, MalformedJsonIsRejected) {
  BenchReport parsed;
  std::string error;
  EXPECT_FALSE(FromJson("{\"schema_version\": 1,", parsed, error));
  EXPECT_FALSE(FromJson("not json at all", parsed, error));
}

TEST(MedianTest, HandlesOddEvenAndEmpty) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

TEST(SimcoreBenchTest, SmokeRepetitionsAreEventIdenticalAndDigestStable) {
  // The bench_simcore self-check: repetitions of the storm bench redo
  // identical simulated work, so event counts and digests must agree
  // rep to rep (RunSimcoreBench flags any drift via ok/note).
  SimcoreOptions options;
  options.smoke = true;
  options.repeat = 2;
  const BenchResult first = RunSimcoreBench("simcore.storm", options);
  EXPECT_TRUE(first.ok) << first.note;
  EXPECT_GT(first.sim_events, 0u);
  EXPECT_NE(first.digest, 0u);
  EXPECT_EQ(first.wall_ms.size(), 2u);

  // And a fresh measurement reproduces the same witnesses.
  const BenchResult second = RunSimcoreBench("simcore.storm", options);
  EXPECT_TRUE(second.ok) << second.note;
  EXPECT_EQ(first.sim_events, second.sim_events);
  EXPECT_EQ(first.digest, second.digest);
}

TEST(SimcoreBenchTest, ParallelBenchDigestIsThreadCountInvariant) {
  // The simcore.parallel.tN family runs one fixed sharded workload at
  // different thread counts; benchdiff gates on its digest, so t2 must
  // redo bit-identical work to the t1 reference interleaving.
  SimcoreOptions options;
  options.smoke = true;
  options.repeat = 1;
  const BenchResult t1 = RunSimcoreBench("simcore.parallel.t1", options);
  const BenchResult t2 = RunSimcoreBench("simcore.parallel.t2", options);
  EXPECT_TRUE(t1.ok) << t1.note;
  EXPECT_TRUE(t2.ok) << t2.note;
  EXPECT_GT(t1.sim_events, 0u);
  EXPECT_EQ(t1.sim_events, t2.sim_events);
  EXPECT_EQ(t1.digest, t2.digest);
}

TEST(SimcoreBenchTest, UnknownBenchNameReportsFailure) {
  const BenchResult result = RunSimcoreBench("simcore.nope", SimcoreOptions{});
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace muxwise::benchrun
