#include "baselines/static_disagg.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace muxwise::baselines {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

TEST(StaticDisaggTest, CompletesShareGptTrace) {
  sim::Simulator simulator;
  StaticDisaggEngine engine(&simulator, Llama70bA100(),
                            StaticDisaggEngine::Options());
  EXPECT_STREQ(engine.name(), "SGLang-PD");
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 100, 2.0, 5);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(engine.InFlight(), 0u);
}

TEST(StaticDisaggTest, DecodeSideStaysWithinSloAtLowLoad) {
  sim::Simulator simulator;
  StaticDisaggEngine engine(&simulator, Llama70bA100(),
                            StaticDisaggEngine::Options());
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 60, 0.5, 7);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  ASSERT_TRUE(result.all_completed);
  // Disaggregation's selling point: decode never contends with prefill.
  EXPECT_LE(result.metrics.Tbt().p99_ms, 100.0);
}

TEST(StaticDisaggTest, MigratesKvOverTheLink) {
  sim::Simulator simulator;
  StaticDisaggEngine engine(&simulator, Llama70bA100(),
                            StaticDisaggEngine::Options());
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 1.0, 9);
  testutil::RunTrace(simulator, engine, trace);
  // Forward prompt-KV migration plus generated-KV copy-back.
  EXPECT_GE(engine.prefill_pool().lookups(), 30);
  EXPECT_GT(engine.decode_pool().cached_tokens(), 0);
}

TEST(StaticDisaggTest, SplitPoolsReduceHitRateVersusAggregated) {
  // Paper Fig. 5 / §2.3.1: halving the pool lowers the multi-turn
  // cache hit rate. Use a memory-pressured setup: long conversations.
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 150, 2.0, 13);
  sim::Simulator simulator;
  StaticDisaggEngine engine(&simulator, Llama70bA100(),
                            StaticDisaggEngine::Options());
  const auto result = testutil::RunTrace(simulator, engine, trace);
  ASSERT_TRUE(result.all_completed);
  // Multi-turn reuse does work (prefill pool serves histories)...
  EXPECT_GT(engine.prefill_pool().HitRate(), 0.2);
  // ...but the prefill pool only holds roughly half of what an
  // aggregated deployment would.
  const serve::Deployment d = Llama70bA100();
  EXPECT_LT(engine.prefill_pool().capacity_tokens(), d.PoolTokens(8) / 2);
}

TEST(StaticDisaggTest, SingleTokenOutputsFinishOnPrefillSide) {
  sim::Simulator simulator;
  StaticDisaggEngine engine(&simulator, Llama70bA100(),
                            StaticDisaggEngine::Options());
  // LooGLE outputs can be as short as 2 tokens; build a trace where
  // many finish quickly.
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kLoogle, 15, 0.3, 15);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
}

TEST(StaticDisaggTest, PrefillBurstLeavesDecodeIdle) {
  // Paper Fig. 4-a: with static disaggregation the decode GPUs idle
  // while a burst of prefills queues on the prefill instance.
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  StaticDisaggEngine engine(&simulator, d, StaticDisaggEngine::Options());
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kLoogle, 20, 2.0, 17);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  ASSERT_TRUE(result.all_completed);
  const double prefill_busy = engine.prefill_device().BusyTimeIntegral();
  const double decode_busy = engine.decode_device().BusyTimeIntegral();
  EXPECT_LT(decode_busy, 0.35 * prefill_busy);
}

}  // namespace
}  // namespace muxwise::baselines
