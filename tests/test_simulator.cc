#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace muxwise::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.Now(), kTimeZero);
  EXPECT_TRUE(simulator.Empty());
}

TEST(SimulatorTest, ExecutesEventAtScheduledTime) {
  Simulator simulator;
  Time fired_at = -1;
  simulator.ScheduleAt(Milliseconds(5),
                       [&] { fired_at = simulator.Now(); });
  simulator.Run();
  EXPECT_EQ(fired_at, Milliseconds(5));
  EXPECT_EQ(simulator.Now(), Milliseconds(5));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator simulator;
  Time fired_at = -1;
  simulator.ScheduleAt(Milliseconds(10), [&] {
    simulator.ScheduleAfter(Milliseconds(3),
                            [&] { fired_at = simulator.Now(); });
  });
  simulator.Run();
  EXPECT_EQ(fired_at, Milliseconds(13));
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(Milliseconds(30), [&] { order.push_back(3); });
  simulator.ScheduleAt(Milliseconds(10), [&] { order.push_back(1); });
  simulator.ScheduleAt(Milliseconds(20), [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimeEventsRunInInsertionOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    simulator.ScheduleAt(Milliseconds(1), [&order, i] { order.push_back(i); });
  }
  simulator.Run();
  ASSERT_EQ(order.size(), 16u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(SimulatorTest, SameTickStormKeepsFifoUnderCancellationChurn) {
  // A same-tick storm with interleaved cancellations: FIFO-within-tick
  // (ascending schedule order) must survive heap sifts, arena slot
  // recycling and lazy tombstone discards.
  Simulator simulator;
  std::vector<int> order;
  std::vector<int> expected;
  for (int round = 0; round < 40; ++round) {
    const Time tick = Milliseconds(round + 1);
    std::vector<EventId> ids;
    for (int i = 0; i < 64; ++i) {
      ids.push_back(simulator.ScheduleAt(
          tick, [&order, round, i] { order.push_back(round * 64 + i); }));
    }
    // Cancel every third event; their recycled slots are immediately
    // reused by a second wave scheduled on the same tick.
    for (int i = 0; i < 64; i += 3) {
      ASSERT_TRUE(simulator.Cancel(ids[i]));
    }
    for (int i = 0; i < 64; ++i) {
      if (i % 3 != 0) expected.push_back(round * 64 + i);
    }
    for (int i = 0; i < 8; ++i) {
      simulator.ScheduleAt(tick, [&order, round, i] {
        order.push_back(round * 64 + 64 + i);
      });
      expected.push_back(round * 64 + 64 + i);
    }
  }
  simulator.Run();
  EXPECT_EQ(order, expected);
}

TEST(SimulatorTest, SameTickStormDigestIsFrozen) {
  // The storm schedule is integer-only, so its digest is identical on
  // every platform; freezing it pins the (when, id) execution-order
  // contract — FIFO tie-breaks and id assignment — across refactors.
  auto run = [] {
    Simulator simulator;
    std::vector<EventId> ids;
    for (int round = 0; round < 16; ++round) {
      const Time tick = Microseconds(10 * (round + 1));
      ids.clear();
      for (int i = 0; i < 32; ++i) {
        ids.push_back(simulator.ScheduleAt(tick, [] {}));
      }
      for (int i = 1; i < 32; i += 4) simulator.Cancel(ids[i]);
      for (int i = 0; i < 4; ++i) simulator.ScheduleAt(tick, [] {});
    }
    simulator.Run();
    return simulator.EventDigest();
  };
  const std::uint64_t digest = run();
  EXPECT_EQ(digest, run());
  EXPECT_EQ(digest, 0x3a2d5d1435052199ULL)
      << "digest drifted to " << std::hex << digest;
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id =
      simulator.ScheduleAt(Milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(simulator.Cancel(id));
  simulator.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.ExecutedEvents(), 0u);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator simulator;
  const EventId id = simulator.ScheduleAt(Milliseconds(1), [] {});
  EXPECT_TRUE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(id));
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator simulator;
  const EventId id = simulator.ScheduleAt(Milliseconds(1), [] {});
  simulator.Run();
  EXPECT_FALSE(simulator.Cancel(id));
}

TEST(SimulatorTest, CancelUnknownIdReturnsFalse) {
  Simulator simulator;
  EXPECT_FALSE(simulator.Cancel(12345));
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator simulator;
  simulator.ScheduleAt(Milliseconds(1), [] {});
  const EventId id = simulator.ScheduleAt(Milliseconds(2), [] {});
  EXPECT_EQ(simulator.PendingEvents(), 2u);
  simulator.Cancel(id);
  EXPECT_EQ(simulator.PendingEvents(), 1u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator simulator;
  std::vector<Time> fired;
  simulator.ScheduleAt(Milliseconds(5), [&] { fired.push_back(5); });
  simulator.ScheduleAt(Milliseconds(15), [&] { fired.push_back(15); });
  simulator.RunUntil(Milliseconds(10));
  EXPECT_EQ(fired, (std::vector<Time>{5}));
  EXPECT_EQ(simulator.Now(), Milliseconds(10));
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<Time>{5, 15}));
}

TEST(SimulatorTest, RunUntilBoundaryIsInclusive) {
  Simulator simulator;
  bool fired = false;
  simulator.ScheduleAt(Milliseconds(10), [&] { fired = true; });
  simulator.RunUntil(Milliseconds(10));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StepExecutesExactlyOneEvent) {
  Simulator simulator;
  int count = 0;
  simulator.ScheduleAt(Milliseconds(1), [&] { ++count; });
  simulator.ScheduleAt(Milliseconds(2), [&] { ++count; });
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(simulator.Step());
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) simulator.ScheduleAfter(Microseconds(1), recurse);
  };
  simulator.ScheduleAt(0, recurse);
  simulator.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(simulator.ExecutedEvents(), 100u);
}

TEST(SimulatorTest, CancellingFromWithinEventWorks) {
  Simulator simulator;
  bool second_fired = false;
  EventId second = kInvalidEventId;
  simulator.ScheduleAt(Milliseconds(1),
                       [&] { EXPECT_TRUE(simulator.Cancel(second)); });
  second = simulator.ScheduleAt(Milliseconds(2), [&] { second_fired = true; });
  simulator.Run();
  EXPECT_FALSE(second_fired);
}

/**
 * Property test: a random schedule/cancel workload matches a reference
 * model executed with stable sorting.
 */
TEST(SimulatorPropertyTest, MatchesReferenceModelUnderRandomWorkload) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Simulator simulator;
    struct Ref {
      Time when;
      int tag;
      bool cancelled = false;
    };
    std::vector<Ref> reference;
    std::vector<EventId> ids;
    std::vector<int> executed;

    for (int i = 0; i < 200; ++i) {
      const Time when = Milliseconds(rng.UniformInt(0, 50));
      reference.push_back(Ref{when, i});
      ids.push_back(
          simulator.ScheduleAt(when, [&executed, i] { executed.push_back(i); }));
    }
    // Cancel a random 25%.
    for (int i = 0; i < 200; ++i) {
      if (rng.Bernoulli(0.25)) {
        simulator.Cancel(ids[static_cast<std::size_t>(i)]);
        reference[static_cast<std::size_t>(i)].cancelled = true;
      }
    }
    simulator.Run();

    std::vector<int> expected;
    std::vector<Ref> live;
    for (const Ref& r : reference) {
      if (!r.cancelled) live.push_back(r);
    }
    std::stable_sort(live.begin(), live.end(),
                     [](const Ref& a, const Ref& b) { return a.when < b.when; });
    for (const Ref& r : live) expected.push_back(r.tag);
    EXPECT_EQ(executed, expected) << "seed " << seed;
  }
}

TEST(TimeTest, ConversionRoundTrips) {
  EXPECT_EQ(Milliseconds(1.5), Nanoseconds(1500000));
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(12.25)), 12.25);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3.5)), 3.5);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(7)), 7.0);
}

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(Nanoseconds(500)), "500ns");
  EXPECT_EQ(FormatDuration(Microseconds(12)), "12.000us");
  EXPECT_EQ(FormatDuration(Milliseconds(3.5)), "3.500ms");
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000s");
}

}  // namespace
}  // namespace muxwise::sim
