#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "kv/token_seq.h"
#include "workload/datasets.h"

namespace muxwise::workload {
namespace {

void ExpectTracesEqual(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  EXPECT_EQ(a.name, b.name);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const RequestSpec& x = a.requests[i];
    const RequestSpec& y = b.requests[i];
    EXPECT_EQ(x.id, y.id) << i;
    EXPECT_NEAR(x.arrival_seconds, y.arrival_seconds, 1e-9) << i;
    EXPECT_EQ(x.session, y.session) << i;
    EXPECT_EQ(x.session_seq, y.session_seq) << i;
    EXPECT_EQ(x.input_tokens, y.input_tokens) << i;
    EXPECT_EQ(x.output_tokens, y.output_tokens) << i;
    EXPECT_EQ(x.reused_tokens, y.reused_tokens) << i;
    EXPECT_EQ(x.prompt, y.prompt) << i;
    EXPECT_EQ(x.full_seq, y.full_seq) << i;
    EXPECT_EQ(x.slo_class, y.slo_class) << i;
  }
}

TEST(TraceIoTest, RoundTripsSingleTurnTrace) {
  const Trace original = GenerateTrace(Dataset::kShareGpt, 50, 3.0, 71);
  std::stringstream stream;
  WriteTrace(original, stream);
  const Trace loaded = ReadTrace(stream);
  ExpectTracesEqual(original, loaded);
}

TEST(TraceIoTest, RoundTripsMultiTurnTrace) {
  // Multi-turn prompts have multi-span sequences (history + new) and
  // generated continuations on the session stream.
  const Trace original = GenerateTrace(Dataset::kConversation, 80, 2.0, 72);
  std::stringstream stream;
  WriteTrace(original, stream);
  const Trace loaded = ReadTrace(stream);
  ExpectTracesEqual(original, loaded);
}

TEST(TraceIoTest, RoundTripsSharedSystemPrompt) {
  const Trace original = GenerateTrace(Dataset::kOpenThoughts, 40, 2.0, 73);
  std::stringstream stream;
  WriteTrace(original, stream);
  const Trace loaded = ReadTrace(stream);
  ExpectTracesEqual(original, loaded);
  // Shared prefix structure preserved: stream 0 spans survive.
  EXPECT_EQ(loaded.requests.front().prompt.front().stream, 0);
}

TEST(TraceIoTest, HeaderCarriesName) {
  Trace trace = GenerateTrace(Dataset::kLoogle, 5, 1.0, 74);
  trace.name = "my-trace";
  std::stringstream stream;
  WriteTrace(trace, stream);
  EXPECT_EQ(ReadTrace(stream).name, "my-trace");
}

TEST(TraceIoTest, EmptyLinesAreIgnored) {
  const Trace original = GenerateTrace(Dataset::kShareGpt, 3, 1.0, 75);
  std::stringstream stream;
  WriteTrace(original, stream);
  std::string text = stream.str() + "\n\n";
  std::stringstream padded(text);
  EXPECT_EQ(ReadTrace(padded).requests.size(), 3u);
}

TEST(TraceIoDeathTest, MissingHeaderIsFatal) {
  std::stringstream stream("{\"id\":0}\n");
  EXPECT_EXIT(ReadTrace(stream), ::testing::ExitedWithCode(1),
              "missing header");
}

TEST(TraceIoDeathTest, MissingKeyIsFatal) {
  std::stringstream stream(
      "{\"trace\":\"x\",\"requests\":1}\n{\"id\":0,\"arrival_s\":0}\n");
  EXPECT_EXIT(ReadTrace(stream), ::testing::ExitedWithCode(1),
              "missing key");
}

TEST(TraceIoTest, RoundTripsSloClasses) {
  MmppOptions options;
  options.duration_seconds = 60.0;
  options.calm_rate_per_second = 3.0;
  const Trace original = GenerateMmppTrace(options, 81);
  std::stringstream stream;
  WriteTrace(original, stream);
  const Trace loaded = ReadTrace(stream);
  ExpectTracesEqual(original, loaded);
  bool non_standard = false;
  for (const RequestSpec& spec : loaded.requests) {
    non_standard |= spec.slo_class != SloClass::kStandard;
  }
  EXPECT_TRUE(non_standard);  // The optional key was actually exercised.
}

TEST(TraceIoTest, ClasslessTracesOmitTheClassKey) {
  // Traces written before SLO classes existed parse unchanged, and
  // all-standard traces keep emitting the legacy byte-identical form.
  const Trace original = GenerateTrace(Dataset::kShareGpt, 5, 1.0, 82);
  std::stringstream stream;
  WriteTrace(original, stream);
  EXPECT_EQ(stream.str().find("\"class\""), std::string::npos);
  const Trace loaded = ReadTrace(stream);
  for (const RequestSpec& spec : loaded.requests) {
    EXPECT_EQ(spec.slo_class, SloClass::kStandard);
  }
}

TEST(TraceIoDeathTest, BadSloClassIsFatal) {
  Trace trace = GenerateTrace(Dataset::kShareGpt, 1, 1.0, 83);
  std::stringstream stream;
  WriteTrace(trace, stream);
  std::string text = stream.str();
  const std::size_t at = text.find(",\"prompt\"");
  ASSERT_NE(at, std::string::npos);
  text.insert(at, ",\"class\":7");
  std::stringstream bad(text);
  EXPECT_EXIT(ReadTrace(bad), ::testing::ExitedWithCode(1),
              "bad SLO class");
}

TEST(TraceIoTest, FileRoundTrip) {
  const Trace original = GenerateTrace(Dataset::kToolAgent, 20, 2.0, 76);
  const std::string path = ::testing::TempDir() + "/muxwise_trace_io.jsonl";
  WriteTraceFile(original, path);
  const Trace loaded = ReadTraceFile(path);
  ExpectTracesEqual(original, loaded);
}

}  // namespace
}  // namespace muxwise::workload
