#include "chaosfuzz/fuzz.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fault/fault_plan.h"
#include "harness/json.h"
#include "harness/scenario.h"
#include "sim/time.h"

namespace muxwise::chaosfuzz {
namespace {

std::string PlanFingerprint(const fault::FaultPlan& plan) {
  return harness::json::Dump(PlanToJson(plan));
}

// A compact but complete scenario document the repro tests graft fault
// plans onto — small trace, fleet routing on, an existing plan that
// MakeReproText must *replace*, not merge with.
constexpr char kBaseScenario[] = R"({
  "name": "fuzz-base",
  "engine": "muxwise",
  "deployment": {"model": "Llama-70B", "gpu": "A100", "num_gpus": 8},
  "trace": {
    "mix": [
      {"dataset": "sharegpt", "requests": 20, "rate_per_second": 2.0,
       "seed": 7}
    ]
  },
  "fleet": {"enabled": true, "replicas": 3, "failover": true,
            "migration": true, "heartbeat_ms": 250},
  "faults": {
    "seed": 1,
    "zombies": [{"instance": 0, "from_seconds": 1, "to_seconds": 2}]
  }
})";

harness::json::Value ParseBaseDoc() {
  harness::json::Value doc;
  std::string error;
  EXPECT_TRUE(harness::json::Parse(kBaseScenario, doc, error)) << error;
  return doc;
}

// ---------------------------------------------------------------------------
// Generation.
// ---------------------------------------------------------------------------

TEST(GeneratePlanTest, SameSeedYieldsTheSamePlan) {
  const PlanShape shape;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const fault::FaultPlan a = GeneratePlan(seed, shape);
    const fault::FaultPlan b = GeneratePlan(seed, shape);
    EXPECT_EQ(PlanFingerprint(a), PlanFingerprint(b)) << "seed " << seed;
  }
}

TEST(GeneratePlanTest, DistinctSeedsExploreDistinctPlans) {
  const PlanShape shape;
  std::set<std::string> fingerprints;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    fingerprints.insert(PlanFingerprint(GeneratePlan(seed, shape)));
  }
  // Sixteen seeds collapsing onto a handful of plans would mean the
  // campaign barely explores; demand real diversity.
  EXPECT_GE(fingerprints.size(), 12u);
}

TEST(GeneratePlanTest, PlansAreValidateCleanAndNonEmpty) {
  PlanShape shape;
  shape.max_faults = 6;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const fault::FaultPlan plan = GeneratePlan(seed, shape);
    EXPECT_FALSE(plan.Empty()) << "seed " << seed;
    EXPECT_EQ(plan.Check(), "") << "seed " << seed;
  }
}

TEST(GeneratePlanTest, WindowsRespectTheShapeBounds) {
  PlanShape shape;
  shape.horizon_seconds = 20.0;
  shape.instances = 2;
  shape.max_faults = 5;
  const sim::Time horizon = sim::Seconds(shape.horizon_seconds);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const fault::FaultPlan plan = GeneratePlan(seed, shape);
    const auto in_bounds = [&](sim::Time from, sim::Time to,
                               std::size_t instance) {
      EXPECT_GE(from, sim::Seconds(1)) << "seed " << seed;
      EXPECT_LE(to, horizon) << "seed " << seed;
      EXPECT_LT(from, to) << "seed " << seed;
      EXPECT_LT(instance, shape.instances) << "seed " << seed;
      // The millisecond grid is what makes the DSL round-trip exact.
      EXPECT_EQ(from % sim::Milliseconds(1), 0) << "seed " << seed;
      EXPECT_EQ(to % sim::Milliseconds(1), 0) << "seed " << seed;
    };
    for (const auto& w : plan.stragglers) in_bounds(w.from, w.to, w.instance);
    for (const auto& w : plan.zombies) in_bounds(w.from, w.to, w.instance);
    for (const auto& w : plan.flaps) in_bounds(w.from, w.to, w.instance);
    for (const auto& w : plan.degrades) in_bounds(w.from, w.to, w.instance);
    for (const auto& w : plan.partitions) in_bounds(w.from, w.to, w.instance);
    for (const auto& c : plan.crashes) {
      EXPECT_GE(c.at, sim::Seconds(1)) << "seed " << seed;
      EXPECT_LT(c.instance, shape.instances) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Repro serialization: the scenario-DSL round trip.
// ---------------------------------------------------------------------------

fault::FaultPlan AllKindsPlan() {
  fault::FaultPlan plan;
  plan.seed = 424242;
  plan.Crash(0, sim::Seconds(9), sim::Seconds(11))
      .Straggle(1, sim::Seconds(2), sim::Seconds(4), 2.5)
      .DropTransfers(sim::Seconds(1), sim::Seconds(20), 0.05)
      .Zombie(1, sim::Seconds(5), sim::Seconds(8))
      .Flap(2, sim::Seconds(12), sim::Seconds(15), sim::Milliseconds(750),
            0.6)
      .FlapLink(sim::Seconds(3), sim::Seconds(5), sim::Milliseconds(500),
                0.5)
      .Degrade(0, sim::Seconds(2), sim::Seconds(6), 0.7, 0.8)
      .DegradeLink(sim::Seconds(13), sim::Seconds(16), 0.5)
      .Partition(2, sim::Seconds(16), sim::Seconds(18), false, true);
  return plan;
}

TEST(ReproTest, MakeReproTextIsByteDeterministic) {
  const harness::json::Value doc = ParseBaseDoc();
  const fault::FaultPlan plan = AllKindsPlan();
  const std::string a = MakeReproText(doc, plan, "repro-bytes");
  const std::string b = MakeReproText(doc, plan, "repro-bytes");
  EXPECT_EQ(a, b);
}

TEST(ReproTest, AllSevenKindsRoundTripThroughTheScenarioDsl) {
  const harness::json::Value doc = ParseBaseDoc();
  const fault::FaultPlan plan = AllKindsPlan();
  const std::string text = MakeReproText(doc, plan, "repro-roundtrip");

  const harness::ScenarioParseResult parsed =
      harness::ParseScenarioJson(text, "repro-roundtrip");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.spec->name, "repro-roundtrip");
  ASSERT_TRUE(parsed.spec->config.fault_plan.has_value());
  // The repro's plan replaces the base document's (no merge with the
  // zombie the base carried), and survives serialization exactly.
  EXPECT_EQ(PlanFingerprint(*parsed.spec->config.fault_plan),
            PlanFingerprint(plan));
}

TEST(ReproTest, GeneratedPlansSurviveTheRoundTripExactly) {
  const harness::json::Value doc = ParseBaseDoc();
  PlanShape shape;
  shape.max_faults = 6;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const fault::FaultPlan plan = GeneratePlan(seed, shape);
    const std::string text = MakeReproText(doc, plan, "repro-gen");
    const harness::ScenarioParseResult parsed =
        harness::ParseScenarioJson(text, "repro-gen");
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": " << parsed.error;
    ASSERT_TRUE(parsed.spec->config.fault_plan.has_value());
    EXPECT_EQ(PlanFingerprint(*parsed.spec->config.fault_plan),
              PlanFingerprint(plan))
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Shrinking, against synthetic predicates (no simulation runs — the
// predicate *is* the oracle, so minimality and determinism are exact).
// ---------------------------------------------------------------------------

fault::FaultPlan NoisyPlan() {
  fault::FaultPlan plan;
  plan.Zombie(1, sim::Seconds(5), sim::Seconds(40))
      .Flap(2, sim::Seconds(3), sim::Seconds(9), sim::Seconds(1), 0.5)
      .Degrade(0, sim::Seconds(10), sim::Seconds(20), 0.3, 0.4)
      .Partition(0, sim::Seconds(25), sim::Seconds(30), true, false)
      .Straggle(2, sim::Seconds(12), sim::Seconds(18), 3.0);
  return plan;
}

TEST(ShrinkTest, DropsEveryIrrelevantFaultAndNarrowsTheWindow) {
  const auto fails = [](const fault::FaultPlan& p) {
    for (const auto& w : p.zombies) {
      if (w.instance == 1) return true;
    }
    return false;
  };
  const ShrinkResult r = ShrinkWith(NoisyPlan(), fails);
  ASSERT_EQ(r.plan.zombies.size(), 1u);
  EXPECT_EQ(r.plan.zombies[0].instance, 1u);
  EXPECT_TRUE(r.plan.flaps.empty());
  EXPECT_TRUE(r.plan.degrades.empty());
  EXPECT_TRUE(r.plan.partitions.empty());
  EXPECT_TRUE(r.plan.stragglers.empty());
  // 35 s of window collapses to tens of milliseconds: halving runs to
  // the 10 ms floor and the onset binary search closes within 20 ms.
  const sim::Duration len = r.plan.zombies[0].to - r.plan.zombies[0].from;
  EXPECT_LE(len, sim::Milliseconds(50));
  EXPECT_GE(len, sim::Milliseconds(10));
  EXPECT_EQ(r.plan.Check(), "");
}

TEST(ShrinkTest, IsDeterministicAndAFixpoint) {
  const auto fails = [](const fault::FaultPlan& p) {
    for (const auto& w : p.zombies) {
      if (w.instance == 1) return true;
    }
    return false;
  };
  const ShrinkResult a = ShrinkWith(NoisyPlan(), fails);
  const ShrinkResult b = ShrinkWith(NoisyPlan(), fails);
  EXPECT_EQ(PlanFingerprint(a.plan), PlanFingerprint(b.plan));
  EXPECT_EQ(a.attempts, b.attempts);
  // Shrinking the minimum again must change nothing (and spend only
  // the probing attempts, not find further cuts).
  const ShrinkResult again = ShrinkWith(a.plan, fails);
  EXPECT_EQ(PlanFingerprint(again.plan), PlanFingerprint(a.plan));
}

TEST(ShrinkTest, SoftensMagnitudesTowardIdentity) {
  fault::FaultPlan plan;
  plan.Degrade(0, sim::Seconds(2), sim::Seconds(30), 0.3, 0.4);
  // The predicate only cares that *a* degrade exists, so softening is
  // free to walk both factors toward 1.0 (the last candidate the
  // 2-decimal rounding can distinguish from identity still fails).
  const auto fails = [](const fault::FaultPlan& p) {
    return !p.degrades.empty();
  };
  const ShrinkResult r = ShrinkWith(plan, fails);
  ASSERT_EQ(r.plan.degrades.size(), 1u);
  EXPECT_GE(r.plan.degrades[0].flops_factor, 0.9);
  EXPECT_GE(r.plan.degrades[0].bandwidth_factor, 0.9);
  EXPECT_EQ(r.plan.Check(), "");
}

TEST(ShrinkTest, NeverShrinksToAnEmptyPlan) {
  fault::FaultPlan plan;
  plan.Zombie(0, sim::Seconds(2), sim::Seconds(4));
  // A predicate that fails for every plan (e.g. a scenario-level bug
  // independent of the faults) must still leave one entry standing —
  // an empty repro reproduces nothing.
  const auto fails = [](const fault::FaultPlan&) { return true; };
  const ShrinkResult r = ShrinkWith(plan, fails);
  EXPECT_FALSE(r.plan.Empty());
}

TEST(ShrinkTest, KeepsOnlyTheFailingMemberOfAnInteractingPair) {
  // The flap matters, the zombie rides along; the minimized plan keeps
  // exactly the flap and narrows it.
  fault::FaultPlan plan;
  plan.Zombie(0, sim::Seconds(2), sim::Seconds(10))
      .FlapLink(sim::Seconds(4), sim::Seconds(30), sim::Milliseconds(500),
                0.5);
  const auto fails = [](const fault::FaultPlan& p) {
    return !p.flaps.empty() && p.flaps[0].link;
  };
  const ShrinkResult r = ShrinkWith(plan, fails);
  EXPECT_TRUE(r.plan.zombies.empty());
  ASSERT_EQ(r.plan.flaps.size(), 1u);
  EXPECT_TRUE(r.plan.flaps[0].link);
  EXPECT_LT(r.plan.flaps[0].to - r.plan.flaps[0].from, sim::Seconds(26));
  // Duty softens toward mostly-up (0.9), the mildest flap that fails.
  EXPECT_GE(r.plan.flaps[0].duty_up, 0.5);
}

}  // namespace
}  // namespace muxwise::chaosfuzz
