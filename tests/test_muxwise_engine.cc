#include "core/muxwise_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "engine_test_util.h"
#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace muxwise::core {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

class MuxWiseEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new ContentionEstimator(
        ContentionEstimator::BuildOffline(Llama70bA100()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }

  testutil::RunResult Run(const workload::Trace& trace,
                          MuxWiseEngine::Options options,
                          MuxWiseEngine** engine_out = nullptr) {
    simulator_ = std::make_unique<sim::Simulator>();
    engine_ = std::make_unique<MuxWiseEngine>(simulator_.get(),
                                              Llama70bA100(), *estimator_,
                                              options);
    if (engine_out != nullptr) *engine_out = engine_.get();
    return testutil::RunTrace(*simulator_, *engine_, trace);
  }

  static ContentionEstimator* estimator_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<MuxWiseEngine> engine_;
};

ContentionEstimator* MuxWiseEngineTest::estimator_ = nullptr;

TEST_F(MuxWiseEngineTest, CompletesShareGptTrace) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 100, 3.0, 5);
  MuxWiseEngine* engine = nullptr;
  const auto result = Run(trace, MuxWiseEngine::Options(), &engine);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(engine->InFlight(), 0u);
  EXPECT_GT(engine->decode_iterations(), 100u);
  EXPECT_STREQ(engine->name(), "MuxWise");
}

TEST_F(MuxWiseEngineTest, MeetsDecodeSloWhileMultiplexing) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 120, 2.0, 7);
  const auto result = Run(trace, MuxWiseEngine::Options());
  ASSERT_TRUE(result.all_completed);
  // The dispatcher reserves best-fit SMs from worst-case estimates:
  // P99 TBT stays within the 100 ms target.
  EXPECT_LE(result.metrics.Tbt().p99_ms, 100.0);
}

TEST_F(MuxWiseEngineTest, ReusesMultiTurnContext) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 100, 1.5, 9);
  MuxWiseEngine* engine = nullptr;
  const auto result = Run(trace, MuxWiseEngine::Options(), &engine);
  ASSERT_TRUE(result.all_completed);
  EXPECT_GT(engine->pool().HitRate(), 0.4);
}

TEST_F(MuxWiseEngineTest, PartitionAdaptsToWorkload) {
  // Paper Fig. 18: prefill-heavy workloads shift SMs to prefill;
  // decode-heavy ones shift to decode.
  const workload::Trace loogle =
      workload::GenerateTrace(workload::Dataset::kLoogle, 30, 0.8, 11);
  MuxWiseEngine* engine = nullptr;
  auto result = Run(loogle, MuxWiseEngine::Options(), &engine);
  ASSERT_TRUE(result.all_completed);
  double prefill_share_loogle = 0.0;
  int samples = 0;
  for (const auto& s : engine->partition_trace()) {
    if (s.prefill_active) {
      prefill_share_loogle += static_cast<double>(s.prefill_sms) /
                              (s.prefill_sms + s.decode_sms);
      ++samples;
    }
  }
  ASSERT_GT(samples, 0);
  prefill_share_loogle /= samples;
  EXPECT_GT(prefill_share_loogle, 0.5);

  const workload::Trace thoughts = workload::GenerateTrace(
      workload::Dataset::kOpenThoughts, 40, 1.0, 13);
  result = Run(thoughts, MuxWiseEngine::Options(), &engine);
  ASSERT_TRUE(result.all_completed);
  std::set<int> decode_sms_seen;
  for (const auto& s : engine->partition_trace()) {
    decode_sms_seen.insert(s.decode_sms);
  }
  EXPECT_GE(decode_sms_seen.size(), 2u);  // Reconfigures dynamically.
  EXPECT_GT(engine->mux().reconfigurations(), 0u);
}

TEST_F(MuxWiseEngineTest, DisablingLayerwiseIncreasesDecodeLatency) {
  // Paper Fig. 19 variant 1: whole-phase launches block the host ~10 ms
  // (Llama-70B piecewise graph total), inflating decode tail latency.
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kToolAgent, 80, 2.0, 15);
  MuxWiseEngine::Options with;
  const auto base = Run(trace, with);
  MuxWiseEngine::Options without;
  without.layerwise = false;
  const auto ablated = Run(trace, without);
  ASSERT_TRUE(base.all_completed);
  ASSERT_TRUE(ablated.all_completed);
  EXPECT_GT(ablated.metrics.Tbt().p99_ms, base.metrics.Tbt().p99_ms);
}

TEST_F(MuxWiseEngineTest, DisablingQuerySyncStallsDecode) {
  // Paper Fig. 19 variant 2 (cumulative with variant 1): with
  // whole-phase prefill launches and blocking merges, the decode loop
  // stalls for the remaining prefill execution — a large TBT
  // degradation (314/672 ms in the paper).
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kToolAgent, 80, 2.0, 15);
  MuxWiseEngine::Options variant1;
  variant1.layerwise = false;
  const auto base = Run(trace, variant1);
  MuxWiseEngine::Options variant2;
  variant2.layerwise = false;
  variant2.query_sync = false;
  const auto ablated = Run(trace, variant2);
  ASSERT_TRUE(base.all_completed);
  ASSERT_TRUE(ablated.all_completed);
  EXPECT_GT(ablated.metrics.Tbt().p99_ms,
            2.0 * base.metrics.Tbt().p99_ms);
}

TEST_F(MuxWiseEngineTest, PreemptionImprovesShortRequestTtft) {
  // Paper Fig. 20: 50/50 ShareGPT + LooGLE; preemption lets short
  // requests jump long prefills.
  workload::Trace mixed = workload::MergeTraces(
      "mixed",
      {workload::GenerateTrace(workload::Dataset::kShareGpt, 40, 0.15, 17),
       workload::GenerateTrace(workload::Dataset::kLoogle, 40, 0.15, 18)});
  MuxWiseEngine::Options with;
  MuxWiseEngine* engine = nullptr;
  const auto on = Run(mixed, with, &engine);
  const std::size_t preemptions = engine->preemptions();
  MuxWiseEngine::Options off;
  off.dispatch.preemption = false;
  const auto no = Run(mixed, off, &engine);
  ASSERT_TRUE(on.all_completed);
  ASSERT_TRUE(no.all_completed);
  EXPECT_GT(preemptions, 0u);
  EXPECT_EQ(engine->preemptions(), 0u);
  EXPECT_LT(on.metrics.TtftPerToken().p99_ms,
            no.metrics.TtftPerToken().p99_ms);
}

TEST_F(MuxWiseEngineTest, OnlineRefinementObservesContention) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 80, 2.0, 19);
  MuxWiseEngine* engine = nullptr;
  const auto result = Run(trace, MuxWiseEngine::Options(), &engine);
  ASSERT_TRUE(result.all_completed);
  EXPECT_GT(engine->estimator().observations(), 0u);
}

TEST_F(MuxWiseEngineTest, UnmanagedModeRunsButContendsMore) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 120, 3.0, 21);
  MuxWiseEngine::Options unmanaged;
  unmanaged.mux.mode = MultiplexEngine::Mode::kUnmanaged;
  MuxWiseEngine* engine = nullptr;
  const auto wind = Run(trace, unmanaged, &engine);
  EXPECT_STREQ(engine->name(), "WindServe*");
  const auto spatial = Run(trace, MuxWiseEngine::Options());
  ASSERT_TRUE(wind.all_completed);
  ASSERT_TRUE(spatial.all_completed);
  // Oversubscribed streams thrash: prefill loses the dedicated SMs a
  // managed partition would give it, so tail TTFT suffers — the
  // goodput-limiting direction behind the paper's 1.61x gap (§6).
  EXPECT_GT(wind.metrics.Ttft().p99_ms, spatial.metrics.Ttft().p99_ms);
}

TEST_F(MuxWiseEngineTest, TemporalModeCompletesButUnderperforms) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kShareGpt, 60, 2.0, 23);
  MuxWiseEngine::Options temporal;
  temporal.mux.mode = MultiplexEngine::Mode::kTemporal;
  MuxWiseEngine* engine = nullptr;
  const auto t = Run(trace, temporal, &engine);
  EXPECT_STREQ(engine->name(), "Temporal*");
  const auto s = Run(trace, MuxWiseEngine::Options());
  ASSERT_TRUE(t.all_completed);
  ASSERT_TRUE(s.all_completed);
  // Temporal-only multiplexing cannot exploit leftover SMs during
  // decode: prefill waits, TTFT suffers (paper §6: >= 20% worse).
  EXPECT_GT(t.metrics.Ttft().p99_ms, s.metrics.Ttft().p99_ms);
}

TEST_F(MuxWiseEngineTest, BubbleRatioStaysModest) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kToolAgent, 100, 2.0, 25);
  MuxWiseEngine* engine = nullptr;
  const auto result = Run(trace, MuxWiseEngine::Options(), &engine);
  ASSERT_TRUE(result.all_completed);
  // Paper §4.4.2 reports ~7.7% under goodput-level load; at this more
  // moderate load the prefill stream idles between batches, so allow a
  // generous envelope (the Fig. 19 bench measures the loaded case).
  EXPECT_LT(engine->mux().AverageBubbleRatio(), 0.55);
}

}  // namespace
}  // namespace muxwise::core
