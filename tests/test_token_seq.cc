#include "kv/token_seq.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace muxwise::kv {
namespace {

TEST(TokenSeqTest, SeqLengthSumsSpans) {
  TokenSeq seq = {{1, 0, 100}, {2, 50, 80}};
  EXPECT_EQ(SeqLength(seq), 130);
  EXPECT_EQ(SeqLength({}), 0);
}

TEST(TokenSeqTest, AppendMergesContiguousSpans) {
  TokenSeq seq;
  AppendSpan(seq, {1, 0, 50});
  AppendSpan(seq, {1, 50, 100});
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq[0], (TokenSpan{1, 0, 100}));
}

TEST(TokenSeqTest, AppendKeepsDistinctStreamsSeparate) {
  TokenSeq seq;
  AppendSpan(seq, {1, 0, 50});
  AppendSpan(seq, {2, 50, 100});
  EXPECT_EQ(seq.size(), 2u);
}

TEST(TokenSeqTest, AppendSkipsEmptySpans) {
  TokenSeq seq;
  AppendSpan(seq, {1, 10, 10});
  EXPECT_TRUE(seq.empty());
}

TEST(TokenSeqTest, AppendNonContiguousSameStreamStaysSeparate) {
  TokenSeq seq;
  AppendSpan(seq, {1, 0, 50});
  AppendSpan(seq, {1, 60, 100});
  EXPECT_EQ(seq.size(), 2u);
}

TEST(TokenSeqTest, PrefixSplitsInsideSpan) {
  const TokenSeq seq = {{1, 0, 100}, {2, 0, 100}};
  const TokenSeq p = SeqPrefix(seq, 130);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], (TokenSpan{1, 0, 100}));
  EXPECT_EQ(p[1], (TokenSpan{2, 0, 30}));
  EXPECT_EQ(SeqLength(p), 130);
}

TEST(TokenSeqTest, PrefixZeroIsEmpty) {
  const TokenSeq seq = {{1, 0, 100}};
  EXPECT_TRUE(SeqPrefix(seq, 0).empty());
}

TEST(TokenSeqTest, SuffixSkipsAcrossSpans) {
  const TokenSeq seq = {{1, 0, 100}, {2, 0, 100}};
  const TokenSeq s = SeqSuffix(seq, 130);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (TokenSpan{2, 30, 100}));
}

TEST(TokenSeqTest, PrefixPlusSuffixReconstructs) {
  const TokenSeq seq = {{1, 0, 37}, {5, 10, 90}, {1, 37, 64}};
  for (std::int64_t cut = 0; cut <= SeqLength(seq); ++cut) {
    TokenSeq joined = SeqPrefix(seq, cut);
    for (const TokenSpan& span : SeqSuffix(seq, cut)) {
      AppendSpan(joined, span);
    }
    EXPECT_EQ(joined, seq) << "cut=" << cut;
  }
}

TEST(TokenSeqTest, CommonPrefixIdenticalSequences) {
  const TokenSeq seq = {{1, 0, 100}, {2, 0, 50}};
  EXPECT_EQ(CommonPrefixLength(seq, seq), 150);
}

TEST(TokenSeqTest, CommonPrefixRespectsStreamIdentity) {
  const TokenSeq a = {{1, 0, 100}};
  const TokenSeq b = {{2, 0, 100}};
  EXPECT_EQ(CommonPrefixLength(a, b), 0);
}

TEST(TokenSeqTest, CommonPrefixRespectsOffsets) {
  const TokenSeq a = {{1, 0, 100}};
  const TokenSeq b = {{1, 10, 100}};  // Same stream, shifted content.
  EXPECT_EQ(CommonPrefixLength(a, b), 0);
}

TEST(TokenSeqTest, CommonPrefixPartialOverlap) {
  const TokenSeq a = {{1, 0, 100}};
  const TokenSeq b = {{1, 0, 60}, {2, 0, 40}};
  EXPECT_EQ(CommonPrefixLength(a, b), 60);
}

TEST(TokenSeqTest, CommonPrefixSpanBoundariesDiffer) {
  // Same logical content, different span fragmentation.
  const TokenSeq a = {{1, 0, 100}};
  const TokenSeq b = {{1, 0, 30}, {1, 30, 100}};
  // AppendSpan would have merged b, but hand-built fragmentation must
  // still match fully.
  EXPECT_EQ(CommonPrefixLength(a, b), 100);
}

/** Property: common prefix against a random extension == original len. */
TEST(TokenSeqPropertyTest, ExtensionSharesFullPrefix) {
  sim::Rng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    TokenSeq base;
    const int spans = static_cast<int>(rng.UniformInt(1, 4));
    for (int s = 0; s < spans; ++s) {
      const std::int64_t stream = rng.UniformInt(1, 3);
      const std::int64_t begin = rng.UniformInt(0, 100);
      AppendSpan(base, {stream, begin, begin + rng.UniformInt(1, 50)});
    }
    TokenSeq extended = base;
    AppendSpan(extended, {7, 0, rng.UniformInt(1, 40)});
    EXPECT_EQ(CommonPrefixLength(base, extended), SeqLength(base));
    EXPECT_EQ(CommonPrefixLength(extended, base), SeqLength(base));
  }
}

}  // namespace
}  // namespace muxwise::kv
