#include "sim/parallel_simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "harness/runner.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "sim/time.h"

#include "frozen_digests.h"

namespace muxwise::sim {
namespace {

// ===========================================================================
// Thread-count digest matrix: the tentpole's acceptance criterion.
//
// The parallel kernel's merged event stream must be bit-identical to the
// sequential simulator's at ANY thread count. The strongest witnesses
// this repo owns are the frozen seven-engine digests (recorded before
// the channel refactor, tests/frozen_digests.h) and the frozen same-tick
// storm digest 0x3a2d5d1435052199 (tests/test_simulator.cc) — so the
// matrix replays both through the kernel at threads = 1/2/4/8 and
// demands the exact sequential constants.
// ===========================================================================

constexpr int kThreadMatrix[] = {1, 2, 4, 8};

TEST(ParallelSimTest, SevenEngineDigestMatrixMatchesFrozenSequentialSeeds) {
  const serve::Deployment deployment = tests::FrozenDeployment();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace = tests::FrozenTrace();

  for (const int threads : kThreadMatrix) {
    harness::RunConfig config;
    config.threads = threads;
    for (const tests::FrozenDigest& expect : tests::kFrozenEngineDigests) {
      const harness::RunOutcome outcome = harness::RunWorkload(
          expect.kind, deployment, trace, &estimator, config);
      EXPECT_EQ(outcome.event_digest, expect.event_digest)
          << harness::EngineKindName(expect.kind) << " at threads="
          << threads;
      EXPECT_EQ(outcome.executed_events, expect.executed_events)
          << harness::EngineKindName(expect.kind) << " at threads="
          << threads;
      EXPECT_EQ(harness::OutcomeDigest(outcome), expect.outcome_digest)
          << harness::EngineKindName(expect.kind) << " at threads="
          << threads;
    }
  }
}

TEST(ParallelSimTest, DoubleRunIdentityAtEachThreadCount) {
  const serve::Deployment deployment = tests::FrozenDeployment();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace = tests::FrozenTrace();

  for (const int threads : kThreadMatrix) {
    harness::RunConfig config;
    config.threads = threads;
    const harness::DeterminismReport report = harness::VerifyDeterminism(
        harness::EngineKind::kMuxWise, deployment, trace, &estimator, config);
    EXPECT_TRUE(report.deterministic)
        << "threads=" << threads << ": " << report.mismatch;
  }
}

/** The exact storm schedule test_simulator.cc froze, hosted on `psim`. */
std::uint64_t RunFrozenStorm(ParallelSimulator& psim) {
  Simulator& simulator = psim.shard(0);
  std::vector<EventId> ids;
  for (int round = 0; round < 16; ++round) {
    const Time tick = Microseconds(10 * (round + 1));
    ids.clear();
    for (int i = 0; i < 32; ++i) {
      ids.push_back(simulator.ScheduleAt(tick, [] {}));
    }
    for (int i = 1; i < 32; i += 4) simulator.Cancel(ids[i]);
    for (int i = 0; i < 4; ++i) simulator.ScheduleAt(tick, [] {});
  }
  psim.Run();
  return psim.EventDigest();
}

TEST(ParallelSimTest, FrozenStormDigestReproducedAtEveryThreadCount) {
  for (const int threads : kThreadMatrix) {
    ParallelSimulator::Options options;
    options.shards = 1;
    options.threads = threads;
    ParallelSimulator psim(options);
    EXPECT_EQ(RunFrozenStorm(psim), 0x3a2d5d1435052199ULL)
        << "threads=" << threads;
    EXPECT_TRUE(psim.Empty());
  }
}

// ===========================================================================
// Cross-shard torture: seeded same-tick storms of channel sends between
// shards over adversarial latencies — several crossings pinned exactly
// AT the lookahead bound, others one nanosecond past it — swept over
// shard counts and thread counts. Determinism is asserted on three
// surfaces at once: the merged digest, the executed-event count, and
// the per-destination delivery logs (payload arrival order), which pin
// the mailbox-drain (when, sender shard, send serial) contract and the
// destination heap's FIFO tie-break.
// ===========================================================================

struct TortureResult {
  std::uint64_t digest = 0;
  std::size_t events = 0;
  std::size_t posts = 0;
  std::vector<std::vector<int>> deliveries;  // Per dst shard, in order.
};

TortureResult RunTorture(std::size_t num_shards, int threads,
                         bool drive_by_steps) {
  ParallelSimulator::Options options;
  options.shards = num_shards;
  options.threads = threads;
  ParallelSimulator psim(options);

  // Ring crossings sit exactly at the lookahead (10 us); skip crossings
  // land one nanosecond past it — deliveries that *just* miss a window
  // and must wait for the next barrier.
  std::vector<std::unique_ptr<ShardChannel>> channels;
  std::vector<ShardChannel*> out(num_shards * 2, nullptr);
  for (std::size_t s = 0; s < num_shards; ++s) {
    channels.push_back(std::make_unique<ShardChannel>(
        &psim, "torture/ring" + std::to_string(s),
        static_cast<ShardId>(s), static_cast<ShardId>((s + 1) % num_shards),
        Microseconds(10)));
    out[s * 2] = channels.back().get();
    if (num_shards > 2) {
      channels.push_back(std::make_unique<ShardChannel>(
          &psim, "torture/skip" + std::to_string(s),
          static_cast<ShardId>(s), static_cast<ShardId>((s + 2) % num_shards),
          Microseconds(10) + Nanoseconds(1)));
      out[s * 2 + 1] = channels.back().get();
    }
  }

  TortureResult result;
  result.deliveries.resize(num_shards);
  std::vector<std::vector<int>>& log = result.deliveries;

  // Every shard fires storm rounds at the SAME ticks (5 us apart): each
  // round schedules eight same-tick events, every one posting a payload
  // on alternating crossings with a tiny seeded extra delay (0-3 ns) so
  // arrivals collide at equal timestamps across senders and rounds.
  for (std::size_t s = 0; s < num_shards; ++s) {
    Simulator& shard = psim.shard(static_cast<ShardId>(s));
    for (int round = 0; round < 24; ++round) {
      const Time tick = Microseconds(5 * (round + 1));
      for (int burst = 0; burst < 8; ++burst) {
        const int payload = static_cast<int>(s) * 100000 + round * 100 + burst;
        // Seeded per-event mix: which crossing, how much extra delay.
        const std::uint64_t mix =
            (s * 2654435761ULL + static_cast<std::uint64_t>(round) * 40503ULL +
             static_cast<std::uint64_t>(burst) * 9973ULL);
        ShardChannel* channel = out[s * 2 + (num_shards > 2 ? mix % 2 : 0)];
        const Duration extra = static_cast<Duration>(mix % 4);
        shard.ScheduleAt(tick, [&psim, &log, channel, extra, payload] {
          channel->Post(extra, [&log, channel, payload] {
            log[channel->dst()].push_back(payload);
          });
        });
      }
    }
  }

  if (drive_by_steps) {
    while (psim.Step()) {
    }
  } else {
    psim.Run();
  }
  EXPECT_TRUE(psim.Empty());
  result.digest = psim.EventDigest();
  result.events = psim.ExecutedEvents();
  result.posts = psim.cross_shard_posts();
  return result;
}

TEST(ParallelSimTest, TortureDigestsInvariantAcrossThreadAndShardSweeps) {
  for (const std::size_t shards : {2u, 3u, 5u, 8u}) {
    const TortureResult base = RunTorture(shards, 1, false);
    ASSERT_GT(base.posts, 0u) << shards << " shards";
    ASSERT_EQ(base.posts, shards * 24 * 8) << shards << " shards";
    for (const int threads : {2, 4, 8}) {
      const TortureResult run = RunTorture(shards, threads, false);
      EXPECT_EQ(run.digest, base.digest)
          << shards << " shards at threads=" << threads;
      EXPECT_EQ(run.events, base.events)
          << shards << " shards at threads=" << threads;
      EXPECT_EQ(run.deliveries, base.deliveries)
          << shards << " shards at threads=" << threads;
    }
  }
}

TEST(ParallelSimTest, TortureDoubleRunIsBitIdentical) {
  const TortureResult first = RunTorture(5, 4, false);
  const TortureResult second = RunTorture(5, 4, false);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.deliveries, second.deliveries);
}

TEST(ParallelSimTest, StepDrainMatchesWindowedRun) {
  // Step() is a degenerate window; draining the torture scenario one
  // global-minimum event at a time must merge the identical stream.
  const TortureResult windowed = RunTorture(3, 2, false);
  const TortureResult stepped = RunTorture(3, 2, true);
  EXPECT_EQ(stepped.digest, windowed.digest);
  EXPECT_EQ(stepped.events, windowed.events);
  EXPECT_EQ(stepped.deliveries, windowed.deliveries);
}

TEST(ParallelSimTest, MailboxDrainOrdersSameTickArrivalsBySenderThenSerial) {
  // Two senders, one destination, equal latencies, coordinator-staged
  // sends: all four arrivals share one timestamp, so delivery order is
  // decided purely by the documented (when, sender shard, send serial)
  // drain contract — and the destination's FIFO tie-break preserves it.
  ParallelSimulator::Options options;
  options.shards = 3;
  options.threads = 2;
  ParallelSimulator psim(options);
  ShardChannel a(&psim, "torture/a", 0, 2, Microseconds(10));
  ShardChannel b(&psim, "torture/b", 1, 2, Microseconds(10));

  std::vector<std::string> order;
  b.Post([&order] { order.push_back("b0"); });  // Staged first...
  a.Post([&order] { order.push_back("a0"); });
  b.Post([&order] { order.push_back("b1"); });
  a.Post([&order] { order.push_back("a1"); });
  psim.Run();
  // ...but shard 0's sends outrank shard 1's: the serial embeds the
  // sender shard in its high bits.
  EXPECT_EQ(order,
            (std::vector<std::string>{"a0", "a1", "b0", "b1"}));
  EXPECT_EQ(psim.cross_shard_posts(), 4u);
}

// ===========================================================================
// Lookahead unit tests.
// ===========================================================================

TEST(ParallelSimTest, LookaheadIsMinimumRegisteredChannelLatency) {
  ParallelSimulator::Options options;
  options.shards = 3;
  ParallelSimulator psim(options);
  ShardChannel slow(&psim, "look/slow", 0, 1, Microseconds(80));
  EXPECT_EQ(psim.Lookahead(), Microseconds(80));
  ShardChannel fast(&psim, "look/fast", 1, 2, Microseconds(20));
  EXPECT_EQ(psim.Lookahead(), Microseconds(20));
  ShardChannel mid(&psim, "look/mid", 2, 0, Microseconds(50));
  EXPECT_EQ(psim.Lookahead(), Microseconds(20));
}

TEST(ParallelSimTest, DeclaredLookaheadPinsTheWindowBound) {
  ParallelSimulator::Options options;
  options.shards = 2;
  options.lookahead = Microseconds(5);
  ParallelSimulator psim(options);
  ShardChannel link(&psim, "look/link", 0, 1, Microseconds(50));
  EXPECT_EQ(psim.Lookahead(), Microseconds(5));
}

TEST(ParallelSimTest, IndependentShardsRunInOneUnboundedWindow) {
  // No channels: the lookahead is infinite, so the whole run is a
  // single window regardless of how much work each shard holds.
  ParallelSimulator::Options options;
  options.shards = 4;
  ParallelSimulator psim(options);
  EXPECT_EQ(psim.Lookahead(), kTimeNever);
  int fired = 0;
  for (ShardId s = 0; s < 4; ++s) {
    for (int i = 0; i < 10; ++i) {
      psim.shard(s).ScheduleAfter(Microseconds(i + 1), [&fired] { ++fired; });
    }
  }
  psim.Run();
  EXPECT_EQ(fired, 40);
  EXPECT_EQ(psim.ExecutedEvents(), 40u);
  EXPECT_EQ(psim.windows_executed(), 1u);
}

TEST(ParallelSimTest, SingleShardCollapsesToSequentialFastPath) {
  ParallelSimulator::Options options;
  options.shards = 1;
  ParallelSimulator psim(options);
  EXPECT_TRUE(psim.sequential_fast_path());

  Simulator reference;
  auto schedule = [](Simulator& simulator) {
    for (int i = 0; i < 100; ++i) {
      simulator.ScheduleAfter(Nanoseconds(7 * (i % 13) + 1), [] {});
    }
  };
  schedule(psim.shard(0));
  schedule(reference);
  psim.Run();
  reference.Run();
  // No windows, no merge: the kernel's digest IS the shard's digest,
  // which is the plain sequential simulator's digest.
  EXPECT_EQ(psim.windows_executed(), 0u);
  EXPECT_EQ(psim.EventDigest(), reference.EventDigest());
  EXPECT_EQ(psim.ExecutedEvents(), reference.ExecutedEvents());
  EXPECT_EQ(psim.Now(), reference.Now());
}

TEST(ParallelSimTest, MultiShardRunUntilAlignsEveryShardClock) {
  ParallelSimulator::Options options;
  options.shards = 2;
  ParallelSimulator psim(options);
  ShardChannel link(&psim, "look/link", 0, 1, Microseconds(10));
  psim.shard(0).ScheduleAfter(Microseconds(1), [] {});
  psim.RunUntil(Milliseconds(3));
  EXPECT_EQ(psim.Now(), Milliseconds(3));
  EXPECT_EQ(psim.shard(0).Now(), Milliseconds(3));
  EXPECT_EQ(psim.shard(1).Now(), Milliseconds(3));
}

// ===========================================================================
// Configuration death tests: misdeclared crossings must fail fast, not
// silently corrupt the window protocol.
// ===========================================================================

TEST(ParallelSimDeathTest, ChannelLatencyBelowDeclaredLookaheadIsFatal) {
  ParallelSimulator::Options options;
  options.shards = 2;
  options.lookahead = Microseconds(10);
  ParallelSimulator psim(options);
  EXPECT_EXIT(ShardChannel(&psim, "death/fast", 0, 1, Microseconds(9)),
              ::testing::ExitedWithCode(1), "");
}

TEST(ParallelSimDeathTest, ZeroLatencyChannelIsFatal) {
  ParallelSimulator::Options options;
  options.shards = 2;
  ParallelSimulator psim(options);
  EXPECT_EXIT(ShardChannel(&psim, "death/zero", 0, 1, 0),
              ::testing::ExitedWithCode(1), "");
}

TEST(ParallelSimDeathTest, SameShardChannelIsFatal) {
  ParallelSimulator::Options options;
  options.shards = 2;
  ParallelSimulator psim(options);
  EXPECT_EXIT(ShardChannel(&psim, "death/loop", 1, 1, Microseconds(10)),
              ::testing::ExitedWithCode(1), "");
}

TEST(ParallelSimDeathTest, ChannelOnSingleShardKernelIsFatal) {
  ParallelSimulator::Options options;
  options.shards = 1;
  ParallelSimulator psim(options);
  EXPECT_EXIT(ShardChannel(&psim, "death/solo", 0, 0, Microseconds(10)),
              ::testing::ExitedWithCode(1), "");
}

TEST(ParallelSimDeathTest, EndpointOutOfRangeIsFatal) {
  ParallelSimulator::Options options;
  options.shards = 2;
  ParallelSimulator psim(options);
  EXPECT_EXIT(ShardChannel(&psim, "death/range", 0, 7, Microseconds(10)),
              ::testing::ExitedWithCode(1), "");
}

}  // namespace
}  // namespace muxwise::sim
