#include "baselines/chunked_prefill.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace muxwise::baselines {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

TEST(ChunkedTuningTest, BudgetGrowsWithLooserTarget) {
  const serve::Deployment d = Llama70bA100();
  const int strict = ChunkedPrefillEngine::TuneTokenBudget(
      d, sim::Milliseconds(100));
  const int loose = ChunkedPrefillEngine::TuneTokenBudget(
      d, sim::Milliseconds(500));
  EXPECT_LT(strict, loose);
  // Paper §1: ~256 budget for a 100 ms TBT on 70B / 8xA100, while
  // saturation needs ~4K.
  EXPECT_GE(strict, 128);
  EXPECT_LE(strict, 512);
  EXPECT_GE(loose, 2048);
}

TEST(ChunkedTuningTest, SmallerModelAffordsBiggerBudget) {
  const serve::Deployment d8 = serve::Deployment::Make(
      llm::ModelConfig::Llama8B(), gpu::GpuSpec::A100());
  const int b8 = ChunkedPrefillEngine::TuneTokenBudget(
      d8, sim::Milliseconds(50));
  const int b70 = ChunkedPrefillEngine::TuneTokenBudget(
      Llama70bA100(), sim::Milliseconds(100));
  EXPECT_GT(b8, b70);
}

TEST(ChunkedEngineTest, CompletesShareGptTrace) {
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  ChunkedPrefillEngine::Options options;
  options.token_budget = 256;
  ChunkedPrefillEngine engine(&simulator, d, options);
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 100, 2.0, 5);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(engine.InFlight(), 0u);
  EXPECT_GT(engine.iterations(), 100u);
  // Every request produced every token.
  EXPECT_EQ(result.metrics.output_tokens(),
            [&] {
              std::int64_t total = 0;
              for (const auto& r : trace.requests) total += r.output_tokens;
              return total;
            }());
}

TEST(ChunkedEngineTest, LowLoadMeetsTbtSlo) {
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  ChunkedPrefillEngine::Options options;
  options.token_budget = ChunkedPrefillEngine::TuneTokenBudget(d, d.slo.tbt);
  ChunkedPrefillEngine engine(&simulator, d, options);
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 60, 0.5, 7);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  ASSERT_TRUE(result.all_completed);
  EXPECT_LE(result.metrics.Tbt().p99_ms, 100.0);
}

TEST(ChunkedEngineTest, SmallerBudgetLowersTbtButRaisesTtft) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kLoogle, 20, 0.4, 11);
  auto run = [&](int budget) {
    sim::Simulator simulator;
    ChunkedPrefillEngine::Options options;
    options.token_budget = budget;
    ChunkedPrefillEngine engine(&simulator, Llama70bA100(), options);
    return testutil::RunTrace(simulator, engine, trace);
  };
  const auto small = run(256);
  const auto large = run(4096);
  ASSERT_TRUE(small.all_completed);
  ASSERT_TRUE(large.all_completed);
  // The chunked-prefill dilemma (paper §2.3.2): small budgets protect
  // TBT but stretch prefill completion; large budgets invert it.
  EXPECT_LT(small.metrics.Tbt().p99_ms, large.metrics.Tbt().p99_ms);
  EXPECT_GT(small.metrics.Ttft().p99_ms, large.metrics.Ttft().p99_ms);
}

TEST(ChunkedEngineTest, LongReusedContextInflatesTbt) {
  // Paper Fig. 6-b: with the budget fixed, growing reused context in
  // the fused chunk inflates decode TBT.
  auto run = [&](workload::Dataset dataset) {
    const workload::Trace trace = workload::GenerateTrace(dataset, 40, 1.0, 13);
    sim::Simulator simulator;
    ChunkedPrefillEngine::Options options;
    options.token_budget = 512;
    ChunkedPrefillEngine engine(&simulator, Llama70bA100(), options);
    return testutil::RunTrace(simulator, engine, trace);
  };
  const auto short_ctx = run(workload::Dataset::kShareGpt);
  const auto long_ctx = run(workload::Dataset::kLoogle);
  ASSERT_TRUE(short_ctx.all_completed);
  ASSERT_TRUE(long_ctx.all_completed);
  EXPECT_GT(long_ctx.metrics.Tbt().p99_ms,
            1.5 * short_ctx.metrics.Tbt().p99_ms);
}

TEST(ChunkedEngineTest, CacheReuseAcrossTurns) {
  sim::Simulator simulator;
  ChunkedPrefillEngine::Options options;
  options.token_budget = 512;
  ChunkedPrefillEngine engine(&simulator, Llama70bA100(), options);
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 80, 1.0, 17);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  ASSERT_TRUE(result.all_completed);
  // Aggregated serving reuses multi-turn history: hit rate well over 0.
  EXPECT_GT(engine.pool().HitRate(), 0.3);
}

TEST(NanoFlowEngineTest, CompletesAndReportsName) {
  sim::Simulator simulator;
  ChunkedPrefillEngine::Options options;
  options.token_budget = 256;
  options.nano_overlap = true;
  ChunkedPrefillEngine engine(&simulator, Llama70bA100(), options);
  EXPECT_STREQ(engine.name(), "NanoFlow");
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 60, 1.0, 19);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
}

TEST(NanoFlowEngineTest, WeightReloadHurtsMemoryBoundDecode) {
  // Paper §4.2.1 / §4.3: NanoFlow splits iterations into nano-batches
  // that re-stream weights; on decode-heavy workloads this inflates TBT
  // relative to plain chunked prefill.
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kOpenThoughts, 24, 0.6, 23);
  auto run = [&](bool nano) {
    sim::Simulator simulator;
    ChunkedPrefillEngine::Options options;
    options.token_budget = 256;
    options.nano_overlap = nano;
    ChunkedPrefillEngine engine(&simulator, Llama70bA100(), options);
    return testutil::RunTrace(simulator, engine, trace);
  };
  const auto chunked = run(false);
  const auto nano = run(true);
  ASSERT_TRUE(chunked.all_completed);
  ASSERT_TRUE(nano.all_completed);
  EXPECT_GT(nano.metrics.Tbt().mean_ms, chunked.metrics.Tbt().mean_ms);
}

}  // namespace
}  // namespace muxwise::baselines
