#include "harness/runner.h"

#include <gtest/gtest.h>

#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

namespace muxwise::harness {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }
  static core::ContentionEstimator* estimator_;
};

core::ContentionEstimator* HarnessTest::estimator_ = nullptr;

TEST_F(HarnessTest, EngineKindNamesAreDistinct) {
  EXPECT_STREQ(EngineKindName(EngineKind::kMuxWise), "MuxWise");
  EXPECT_STREQ(EngineKindName(EngineKind::kChunked), "Chunked");
  EXPECT_STREQ(EngineKindName(EngineKind::kNanoFlow), "NanoFlow");
  EXPECT_STREQ(EngineKindName(EngineKind::kSglangPd), "SGLang-PD");
  EXPECT_STREQ(EngineKindName(EngineKind::kLoongServe), "LoongServe");
  EXPECT_STREQ(EngineKindName(EngineKind::kWindServe), "WindServe*");
  EXPECT_STREQ(EngineKindName(EngineKind::kTemporal), "Temporal*");
}

TEST_F(HarnessTest, RunWorkloadCompletesAndPopulatesOutcome) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 40, 2.0, 301);
  const RunOutcome o = RunWorkload(EngineKind::kMuxWise, Llama70bA100(),
                                   trace, estimator_);
  EXPECT_TRUE(o.stable);
  EXPECT_EQ(o.completed, 40u);
  EXPECT_EQ(o.total, 40u);
  EXPECT_GT(o.ttft.p99_ms, 0.0);
  EXPECT_GT(o.tbt.count, 0u);
  EXPECT_GT(o.token_throughput, 0.0);
  ASSERT_EQ(o.gpu_utilization.size(), 1u);
  EXPECT_GT(o.gpu_utilization[0], 0.0);
  EXPECT_LE(o.gpu_utilization[0], 100.0);
  EXPECT_FALSE(o.partition_trace.empty());
}

TEST_F(HarnessTest, DisaggregatedEngineReportsTwoUtilizations) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 20, 1.0, 302);
  const RunOutcome o = RunWorkload(EngineKind::kSglangPd, Llama70bA100(),
                                   trace, estimator_);
  EXPECT_TRUE(o.stable);
  EXPECT_EQ(o.gpu_utilization.size(), 2u);  // P and D instances.
}

TEST_F(HarnessTest, SteadyStateFlagsQueueDraining) {
  // A grossly overloaded run must be reported unstable under
  // steady-state accounting (its queue drains long after arrivals).
  workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kLoogle, 60, 1.0, 303);
  workload::ResampleArrivalsPoisson(trace, 5.0, 303);  // >> capacity.
  RunConfig config;
  config.steady_state = true;
  const RunOutcome o = RunWorkload(EngineKind::kChunked, Llama70bA100(),
                                   trace, estimator_, config);
  EXPECT_FALSE(o.stable);
  EXPECT_FALSE(o.meets_slo);
}

TEST_F(HarnessTest, MuxwiseOptionsOverrideApplies) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 20, 1.0, 304);
  RunConfig config;
  core::MuxWiseEngine::Options options;
  options.dispatch.preemption = false;
  config.muxwise_options = options;
  const RunOutcome o = RunWorkload(EngineKind::kMuxWise, Llama70bA100(),
                                   trace, estimator_, config);
  EXPECT_EQ(o.preemptions, 0u);
}

TEST_F(HarnessTest, SweepStopsAtFirstFailureAndReportsGoodput) {
  const workload::Trace base =
      workload::GenerateTrace(workload::Dataset::kToolAgent, 300, 1.0, 305);
  const GoodputResult result = SweepGoodput(
      EngineKind::kMuxWise, Llama70bA100(), base,
      {0.5, 1.0, 20.0, 40.0}, estimator_);
  ASSERT_GE(result.points.size(), 2u);
  // Points are tested in ascending order; all but possibly the last met
  // the SLO (the sweep stops after the first failure).
  for (std::size_t i = 0; i + 1 < result.points.size(); ++i) {
    EXPECT_TRUE(result.points[i].outcome.meets_slo);
  }
  EXPECT_GT(result.goodput_rps, 0.0);
  EXPECT_LT(result.points.size(), 5u);  // 40 req/s is past capacity.
  ASSERT_TRUE(result.at_goodput.has_value());
  EXPECT_TRUE(result.at_goodput->meets_slo);
}

TEST_F(HarnessTest, SweepNormalizesTraceDuration) {
  // At a high rate the sweep truncates the trace to ~90 s of load
  // rather than compressing all requests into a short burst.
  const workload::Trace base =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 2000, 1.0, 306);
  const GoodputResult result = SweepGoodput(
      EngineKind::kMuxWise, Llama70bA100(), base, {10.0}, estimator_);
  ASSERT_EQ(result.points.size(), 1u);
  const RunOutcome& o = result.points[0].outcome;
  // ~10 req/s * 90 s = ~900 requests offered, not all 2000.
  EXPECT_LE(o.total, 950u);
  EXPECT_GE(o.total, 850u);
}

TEST_F(HarnessTest, DeterministicAcrossCalls) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 40, 1.0, 307);
  const RunOutcome a = RunWorkload(EngineKind::kLoongServe, Llama70bA100(),
                                   trace, estimator_);
  const RunOutcome b = RunWorkload(EngineKind::kLoongServe, Llama70bA100(),
                                   trace, estimator_);
  EXPECT_DOUBLE_EQ(a.ttft.p99_ms, b.ttft.p99_ms);
  EXPECT_DOUBLE_EQ(a.tbt.p99_ms, b.tbt.p99_ms);
}

}  // namespace
}  // namespace muxwise::harness
