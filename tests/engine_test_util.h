#ifndef MUXWISE_TESTS_ENGINE_TEST_UTIL_H_
#define MUXWISE_TESTS_ENGINE_TEST_UTIL_H_

#include <memory>
#include <utility>

#include "serve/deployment.h"
#include "serve/engine.h"
#include "serve/frontend.h"
#include "serve/metrics.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace muxwise::testutil {

struct RunResult {
  serve::MetricsCollector metrics;
  std::size_t completed = 0;
  bool all_completed = false;
  sim::Time end_time = 0;
};

/**
 * Replays `trace` through `engine` to completion and returns the
 * collected metrics. The engine must already be wired to `simulator`.
 */
inline RunResult RunTrace(sim::Simulator& simulator, serve::Engine& engine,
                          const workload::Trace& trace) {
  RunResult result;
  serve::Frontend frontend(&simulator, &engine, &trace, &result.metrics);
  frontend.Start();
  simulator.Run();
  result.completed = frontend.completed();
  result.all_completed = frontend.AllCompleted();
  result.end_time = simulator.Now();
  return result;
}

}  // namespace muxwise::testutil

#endif  // MUXWISE_TESTS_ENGINE_TEST_UTIL_H_
