#ifndef MUXWISE_TESTS_ENGINE_TEST_UTIL_H_
#define MUXWISE_TESTS_ENGINE_TEST_UTIL_H_

#include <memory>
#include <utility>
#include <vector>

#include "check/invariant_registry.h"
#include "serve/deployment.h"
#include "serve/engine.h"
#include "serve/frontend.h"
#include "serve/metrics.h"
#include "sim/logging.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace muxwise::testutil {

struct RunResult {
  serve::MetricsCollector metrics;
  std::size_t completed = 0;
  bool all_completed = false;
  sim::Time end_time = 0;
  std::uint64_t event_digest = 0;
  std::vector<check::Violation> audit_violations;
};

/**
 * Replays `trace` through `engine` to completion and returns the
 * collected metrics. The engine must already be wired to `simulator`.
 * At scenario end every invariant audit registered by the simulator,
 * engine, and metrics runs; violations abort the test unless
 * `enforce_audits` is false (they are still returned in the result).
 */
inline RunResult RunTrace(sim::Simulator& simulator, serve::Engine& engine,
                          const workload::Trace& trace,
                          bool enforce_audits = true) {
  RunResult result;
  serve::Frontend frontend(&simulator, &engine, &trace, &result.metrics);
  frontend.Start();
  simulator.Run();
  result.completed = frontend.completed();
  result.all_completed = frontend.AllCompleted();
  result.end_time = simulator.Now();
  result.event_digest = simulator.EventDigest();

  check::InvariantRegistry registry;
  simulator.RegisterAudits(registry);
  engine.RegisterAudits(registry);
  result.metrics.RegisterAudits(registry);
  result.audit_violations = registry.RunAll();
  if (enforce_audits && !result.audit_violations.empty()) {
    sim::Panic("invariant audit failed at scenario end:\n" +
               check::FormatViolations(result.audit_violations));
  }
  return result;
}

}  // namespace muxwise::testutil

#endif  // MUXWISE_TESTS_ENGINE_TEST_UTIL_H_
