#include "kv/kv_pool.h"

#include <gtest/gtest.h>

namespace muxwise::kv {
namespace {

TokenSeq Session(std::int64_t stream, std::int64_t len) {
  return {{stream, 0, len}};
}

TEST(KvPoolTest, StartsEmpty) {
  KvPool pool(1000);
  EXPECT_EQ(pool.capacity_tokens(), 1000);
  EXPECT_EQ(pool.used_tokens(), 0);
  EXPECT_EQ(pool.free_tokens(), 1000);
  EXPECT_DOUBLE_EQ(pool.HitRate(), 0.0);
}

TEST(KvPoolTest, ReserveAndRelease) {
  KvPool pool(1000);
  EXPECT_TRUE(pool.TryReserve(400));
  EXPECT_EQ(pool.reserved_tokens(), 400);
  EXPECT_EQ(pool.free_tokens(), 600);
  pool.ReleaseReserved(400);
  EXPECT_EQ(pool.free_tokens(), 1000);
}

TEST(KvPoolTest, ReserveFailsBeyondCapacity) {
  KvPool pool(1000);
  EXPECT_FALSE(pool.TryReserve(1001));
  EXPECT_EQ(pool.reserved_tokens(), 0);  // Nothing partially reserved.
  EXPECT_TRUE(pool.TryReserve(1000));
}

TEST(KvPoolTest, CommitCachesSequenceForReuse) {
  KvPool pool(1000);
  pool.CommitSequence(Session(1, 300), 1);
  EXPECT_EQ(pool.cached_tokens(), 300);
  KvPool::PrefixLease lease = pool.AcquirePrefix(Session(1, 500), 2);
  EXPECT_EQ(lease.matched_tokens, 300);
  pool.ReleasePrefix(lease);
}

TEST(KvPoolTest, ReserveEvictsUnpinnedCacheLru) {
  KvPool pool(1000);
  pool.CommitSequence(Session(1, 600), /*now=*/1);
  pool.CommitSequence(Session(2, 300), /*now=*/2);
  EXPECT_EQ(pool.cached_tokens(), 900);
  // Need 500: evicts session 1 (LRU) entirely.
  EXPECT_TRUE(pool.TryReserve(500));
  EXPECT_EQ(pool.cached_tokens(), 300);
  KvPool::PrefixLease lease = pool.AcquirePrefix(Session(2, 300), 3);
  EXPECT_EQ(lease.matched_tokens, 300);
  pool.ReleasePrefix(lease);
}

TEST(KvPoolTest, PinnedPrefixSurvivesEvictionPressure) {
  KvPool pool(1000);
  pool.CommitSequence(Session(1, 600), 1);
  KvPool::PrefixLease lease = pool.AcquirePrefix(Session(1, 600), 2);
  EXPECT_EQ(lease.matched_tokens, 600);
  // Only 400 free and the 600 cached are pinned: cannot reserve 500.
  EXPECT_FALSE(pool.TryReserve(500));
  pool.ReleasePrefix(lease);
  EXPECT_TRUE(pool.TryReserve(500));
}

TEST(KvPoolTest, HitRateIsTokenWeighted) {
  KvPool pool(10000);
  pool.CommitSequence(Session(1, 900), 1);
  KvPool::PrefixLease a = pool.AcquirePrefix(Session(1, 1000), 2);
  KvPool::PrefixLease b = pool.AcquirePrefix(Session(2, 1000), 3);
  EXPECT_DOUBLE_EQ(pool.HitRate(), 900.0 / 2000.0);
  EXPECT_EQ(pool.lookups(), 2);
  pool.ReleasePrefix(a);
  pool.ReleasePrefix(b);
}

TEST(KvPoolTest, CommitOverCapacityEvictsBack) {
  KvPool pool(1000);
  pool.CommitSequence(Session(1, 800), 1);
  pool.CommitSequence(Session(2, 800), 2);
  EXPECT_LE(pool.used_tokens(), 1000);
  // The most recent commit survives.
  KvPool::PrefixLease lease = pool.AcquirePrefix(Session(2, 800), 3);
  EXPECT_EQ(lease.matched_tokens, 800);
  pool.ReleasePrefix(lease);
}

TEST(KvPoolTest, ReleasePrefixIsIdempotentAfterMove) {
  KvPool pool(1000);
  pool.CommitSequence(Session(1, 100), 1);
  KvPool::PrefixLease lease = pool.AcquirePrefix(Session(1, 100), 2);
  pool.ReleasePrefix(lease);
  pool.ReleasePrefix(lease);  // No-op.
  EXPECT_EQ(pool.tree().LockedTokens(), 0);
}

TEST(KvPoolTest, ClearDropsEverything) {
  KvPool pool(1000);
  pool.CommitSequence(Session(1, 100), 1);
  pool.CommitSequence(Session(2, 200), 2);
  pool.Clear();
  EXPECT_EQ(pool.cached_tokens(), 0);
}

TEST(KvPoolTest, SessionTurnsAccumulateInCache) {
  // Multi-turn flow: commit turn 1, turn 2's prompt extends it.
  KvPool pool(100000);
  pool.CommitSequence(Session(7, 1200), 1);  // Turn 1: prompt+output.
  KvPool::PrefixLease lease = pool.AcquirePrefix(Session(7, 2000), 2);
  EXPECT_EQ(lease.matched_tokens, 1200);
  pool.ReleasePrefix(lease);
  pool.CommitSequence(Session(7, 2400), 3);
  EXPECT_EQ(pool.cached_tokens(), 2400);
}

}  // namespace
}  // namespace muxwise::kv
