#include "sim/channel.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <string>
#include <vector>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "workload/datasets.h"

#include "frozen_digests.h"

namespace muxwise::sim {
namespace {

TEST(ChannelTest, TypedSendDeliversPayloadAfterWireTime) {
  Simulator simulator;
  Channel channel(&simulator, "test/typed", 600e9, Microseconds(10));
  std::int64_t received = -1;
  Time when = -1;
  channel.Send<std::int64_t>(600e6, 42, [&](std::int64_t id) {
    received = id;
    when = simulator.Now();
  });
  simulator.Run();
  EXPECT_EQ(received, 42);
  EXPECT_NEAR(ToMilliseconds(when), 1.01, 0.001);  // 1 ms wire + 10 us.
  EXPECT_EQ(channel.transfers_completed(), 1u);
}

TEST(ChannelTest, TypedSendCarriesOwnedMoveOnlyishPayloads) {
  // A Send must own its payload for the duration of the flight: the
  // caller's copy can die before delivery.
  Simulator simulator;
  Channel channel(&simulator, "test/typed", 600e9, 0);
  std::string received;
  {
    std::string payload = "kv-block-7";
    channel.Send<std::string>(1e6, payload,
                              [&](std::string p) { received = p; });
  }
  simulator.Run();
  EXPECT_EQ(received, "kv-block-7");
}

TEST(ChannelTest, TypedSendFailurePathCarriesPayloadToo) {
  Simulator simulator;
  Channel channel(&simulator, "test/typed", 600e9, 0);
  Channel::FaultModel model;
  model.failure_probability = 0.999999;  // Practically always lost.
  model.max_attempts = 1;
  channel.EnableFaults(model, Rng(7));
  std::int64_t failed_id = -1;
  bool delivered = false;
  channel.Send<std::int64_t>(
      1e6, 99, [&](std::int64_t) { delivered = true; },
      [&](std::int64_t id) { failed_id = id; });
  simulator.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(failed_id, 99);
  EXPECT_EQ(channel.transfers_failed(), 1u);
}

TEST(ChannelTest, ControlChannelDeliversInlineWithoutScheduling) {
  // Deliver() is the same-tick control crossing: it runs the callback
  // immediately, schedules nothing, and therefore cannot perturb the
  // event stream — only the delivery counter observes it.
  Simulator simulator;
  Channel control(&simulator, "test/control");
  int ran_at_events = -1;
  const std::uint64_t digest_before = simulator.EventDigest();
  control.Deliver([&] { ran_at_events = 0; });
  EXPECT_EQ(ran_at_events, 0);
  EXPECT_EQ(control.deliveries(), 1u);
  EXPECT_EQ(simulator.EventDigest(), digest_before);
  simulator.Run();
  EXPECT_EQ(simulator.EventDigest(), digest_before);
}

TEST(ChannelTest, ChannelsAreNamed) {
  Simulator simulator;
  Channel link(&simulator, "cluster/nvlink", 600e9, 0);
  Channel control(&simulator, "cluster/control");
  EXPECT_EQ(link.name(), "cluster/nvlink");
  EXPECT_EQ(control.name(), "cluster/control");
}

// --- The refactor's acceptance criterion, frozen as a regression. ---
//
// Routing every cross-instance interaction through sim::Channel (the
// Interconnect alias, typed Send payloads, control-channel deliveries)
// must be invisible to the simulation: the per-engine event digests of
// the acceptance scenario are bit-identical to the pre-refactor seed.
// The constants live in tests/frozen_digests.h (recorded from the seed
// BEFORE the refactor), shared with the parallel-kernel suite; any
// drift means a structural change altered scheduling behaviour.

TEST(ChannelTest, SevenEngineDigestsMatchPreRefactorSeed) {
  const serve::Deployment deployment = tests::FrozenDeployment();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace = tests::FrozenTrace();

  for (const tests::FrozenDigest& expect : tests::kFrozenEngineDigests) {
    const harness::RunOutcome outcome =
        harness::RunWorkload(expect.kind, deployment, trace, &estimator);
    EXPECT_EQ(outcome.event_digest, expect.event_digest)
        << harness::EngineKindName(expect.kind);
    EXPECT_EQ(outcome.executed_events, expect.executed_events)
        << harness::EngineKindName(expect.kind);
    EXPECT_EQ(harness::OutcomeDigest(outcome), expect.outcome_digest)
        << harness::EngineKindName(expect.kind);
  }
}

}  // namespace
}  // namespace muxwise::sim
