#include "llm/cost_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "gpu/gpu_spec.h"
#include "llm/model_config.h"

namespace muxwise::llm {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModel cm_{ModelConfig::Llama70B(), 8, gpu::GpuSpec::A100()};
};

TEST_F(CostModelTest, PrefillFlopsLinearInNewTokensWithoutReuse) {
  const double f1 = cm_.PrefillFlopsTotal({SeqWork{1000, 0}});
  const double f2 = cm_.PrefillFlopsTotal({SeqWork{2000, 0}});
  // GEMM term dominates at small n: close to 2x plus the quadratic
  // attention term.
  EXPECT_GT(f2, 1.99 * f1);
  EXPECT_LT(f2, 2.2 * f1);
}

TEST_F(CostModelTest, PrefillFlopsIncludeReusedContextAttention) {
  const double no_reuse = cm_.PrefillFlopsTotal({SeqWork{512, 0}});
  const double with_reuse = cm_.PrefillFlopsTotal({SeqWork{512, 65536}});
  // Table 2 "Prefill w/ cache": O(L n d) attention over the cache.
  const double expected_extra = 4.0 * 80 * 8192 * 512.0 * 65536.0;
  EXPECT_NEAR(with_reuse - no_reuse, expected_extra, expected_extra * 1e-9);
}

TEST_F(CostModelTest, PrefillFlopsBatchIsSumOfRequests) {
  const double a = cm_.PrefillFlopsTotal({SeqWork{700, 100}});
  const double b = cm_.PrefillFlopsTotal({SeqWork{1300, 4000}});
  const double both =
      cm_.PrefillFlopsTotal({SeqWork{700, 100}, SeqWork{1300, 4000}});
  EXPECT_DOUBLE_EQ(both, a + b);
}

TEST_F(CostModelTest, LayerSplittingIsExact) {
  const std::vector<SeqWork> batch = {SeqWork{4096, 8192}};
  const gpu::Kernel whole = cm_.PrefillPhase(batch);
  double flops = 0.0, bytes = 0.0;
  for (int i = 0; i < 80; ++i) {
    const gpu::Kernel layer = cm_.PrefillLayers(batch, 1);
    flops += layer.flops;
    bytes += layer.bytes;
  }
  EXPECT_NEAR(flops, whole.flops, whole.flops * 1e-9);
  EXPECT_NEAR(bytes, whole.bytes, whole.bytes * 1e-9);
}

TEST_F(CostModelTest, PrefillKernelIsPerGpuWork) {
  CostModel tp1(ModelConfig::Llama70B(), 1, gpu::GpuSpec::A100());
  const std::vector<SeqWork> batch = {SeqWork{2048, 0}};
  const gpu::Kernel k8 = cm_.PrefillPhase(batch);
  const gpu::Kernel k1 = tp1.PrefillPhase(batch);
  EXPECT_NEAR(k1.flops / k8.flops, 8.0, 1e-6);
}

TEST_F(CostModelTest, TensorParallelAddsAllReduceTime) {
  CostModel tp1(ModelConfig::Llama70B(), 1, gpu::GpuSpec::A100());
  const std::vector<SeqWork> batch = {SeqWork{2048, 0}};
  EXPECT_EQ(tp1.PrefillPhase(batch).fixed_time, 0);
  EXPECT_GT(cm_.PrefillPhase(batch).fixed_time, 0);
  // 80 layers x 2 all-reduces x >=10us latency each.
  EXPECT_GE(cm_.PrefillPhase(batch).fixed_time, sim::Microseconds(1600));
}

TEST_F(CostModelTest, DecodeIterationStreamsWeightShardAndKv) {
  const std::vector<std::int64_t> ctx(32, 1024);
  const gpu::Kernel k = cm_.DecodeIteration(ctx);
  const double weights_per_gpu = 140e9 / 8;
  EXPECT_GT(k.bytes, weights_per_gpu);
  // KV read: 32 seqs * 1024 tokens * (327680 / 8) bytes per GPU.
  const double kv_read = 32.0 * 1024 * 327680 / 8;
  EXPECT_NEAR(k.bytes, weights_per_gpu + kv_read + 32.0 * 327680 / 8, 1e7);
  EXPECT_EQ(k.kind, gpu::KernelKind::kDecode);
}

TEST_F(CostModelTest, DecodeFlopsScaleWithBatchAndContext) {
  const std::vector<std::int64_t> small(8, 512);
  const std::vector<std::int64_t> large(64, 512);
  EXPECT_NEAR(cm_.DecodeFlopsTotal(large) / cm_.DecodeFlopsTotal(small), 8.0,
              0.01);
  const std::vector<std::int64_t> long_ctx(8, 65536);
  EXPECT_GT(cm_.DecodeFlopsTotal(long_ctx), cm_.DecodeFlopsTotal(small));
}

TEST_F(CostModelTest, FusedChunkStreamsWeightsOnce) {
  const std::vector<std::int64_t> ctx(32, 1024);
  const std::vector<SeqWork> chunk = {SeqWork{512, 1024}};
  const gpu::Kernel fused = cm_.FusedChunk(chunk, ctx);
  const gpu::Kernel prefill_only = cm_.PrefillPhase(chunk);
  const gpu::Kernel decode_only = cm_.DecodeIteration(ctx);
  EXPECT_NEAR(fused.bytes,
              prefill_only.bytes + decode_only.bytes - 140e9 / 8, 1.0);
  EXPECT_DOUBLE_EQ(fused.flops, prefill_only.flops + decode_only.flops);
  EXPECT_EQ(fused.kind, gpu::KernelKind::kFused);
}

TEST_F(CostModelTest, FusedChunkDegeneratesGracefully) {
  const gpu::Kernel decode_only = cm_.FusedChunk({}, {1024, 1024});
  EXPECT_GT(decode_only.flops, 0.0);
  const gpu::Kernel prefill_only = cm_.FusedChunk({SeqWork{256, 0}}, {});
  EXPECT_GT(prefill_only.flops, 0.0);
}

TEST_F(CostModelTest, MoeDecodeBytesUseExpectedExperts) {
  CostModel moe(ModelConfig::Qwen235B(), 8, gpu::GpuSpec::H200());
  const gpu::Kernel small = moe.DecodeIteration({1024});
  const std::vector<std::int64_t> big_ctx(128, 1024);
  const gpu::Kernel big = moe.DecodeIteration(big_ctx);
  // Weight traffic grows strongly with batch for MoE.
  EXPECT_GT(big.bytes, 2.0 * small.bytes);
}

TEST_F(CostModelTest, KvShardingDividesByKvHeadsAtMost) {
  // 8 KV heads: TP8 shards each head to one GPU.
  EXPECT_DOUBLE_EQ(cm_.KvBytesPerTokenPerGpu(), 327680.0 / 8);
  // TP8 with only 4 KV heads (Qwen): sharding limited to 4.
  CostModel moe(ModelConfig::Qwen235B(), 8, gpu::GpuSpec::H200());
  EXPECT_DOUBLE_EQ(moe.KvBytesPerTokenPerGpu(),
                   ModelConfig::Qwen235B().KvBytesPerToken() / 4);
}

TEST_F(CostModelTest, LaunchModelMatchesPaperScales) {
  // Decode graph launch ~0.5 ms (paper §3.2.2).
  EXPECT_EQ(cm_.DecodeGraphLaunch(), sim::Microseconds(500));
  // Piecewise layer graphs: ~10 ms total for Llama-70B's 80 layers.
  EXPECT_EQ(cm_.PrefillLayerLaunch() * 80, sim::Milliseconds(10));
  // Launching the whole phase raw: tens of milliseconds.
  EXPECT_GE(cm_.PrefillFullLaunch(), sim::Milliseconds(15));
}

}  // namespace
}  // namespace muxwise::llm
