#include "baselines/loongserve.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace muxwise::baselines {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

TEST(LoongServeTest, CompletesShareGptTrace) {
  sim::Simulator simulator;
  LoongServeEngine engine(&simulator, Llama70bA100(),
                          LoongServeEngine::Options());
  EXPECT_STREQ(engine.name(), "LoongServe");
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 100, 2.0, 5);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(engine.InFlight(), 0u);
}

TEST(LoongServeTest, MeetsTbtByScalingDecodeGpus) {
  sim::Simulator simulator;
  LoongServeEngine engine(&simulator, Llama70bA100(),
                          LoongServeEngine::Options());
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 80, 1.0, 7);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  ASSERT_TRUE(result.all_completed);
  EXPECT_LE(result.metrics.Tbt().p99_ms, 110.0);
}

TEST(LoongServeTest, HandlesLongContextWorkload) {
  // LoongServe's home turf: long-context single-turn requests.
  sim::Simulator simulator;
  LoongServeEngine engine(&simulator, Llama70bA100(),
                          LoongServeEngine::Options());
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kLoogle, 20, 0.4, 9);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
}

TEST(LoongServeTest, RecomputesMultiTurnHistory) {
  // The paper's key criticism (§2.3.1): no cross-request KV reuse, so
  // multi-turn sessions pay full-input prefills every turn. We verify
  // by comparing total prefilled work against the reuse-aware optimum.
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 60, 1.0, 11);
  std::int64_t total_input = 0;
  std::int64_t new_only = 0;
  for (const auto& spec : trace.requests) {
    total_input += spec.input_tokens;
    new_only += spec.NewTokens();
  }
  ASSERT_GT(total_input, new_only);  // Reuse exists to be lost.

  sim::Simulator simulator;
  LoongServeEngine engine(&simulator, Llama70bA100(),
                          LoongServeEngine::Options());
  const auto result = testutil::RunTrace(simulator, engine, trace);
  ASSERT_TRUE(result.all_completed);
  // LoongServe prefilled the full inputs (its engine sets
  // prefill_tokens = input_tokens): E2E input accounting equals
  // total_input, so the recomputation tax is total_input - new_only.
  EXPECT_EQ(result.metrics.input_tokens(), total_input);
}

TEST(LoongServeTest, SlowerThanReuseAwareEngineOnMultiTurn) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 60, 1.2, 13);
  sim::Simulator sim_a;
  LoongServeEngine loong(&sim_a, Llama70bA100(), LoongServeEngine::Options());
  const auto loong_result = testutil::RunTrace(sim_a, loong, trace);
  ASSERT_TRUE(loong_result.all_completed);
  // Mean TTFT suffers from recomputation of long histories: on this
  // workload reused context averages ~4.5K tokens per turn.
  EXPECT_GT(loong_result.metrics.Ttft().mean_ms, 150.0);
}

}  // namespace
}  // namespace muxwise::baselines
