#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <memory>

#include "serve/request.h"
#include "sim/time.h"
#include "workload/request_spec.h"

namespace muxwise::serve {
namespace {

using sim::Milliseconds;

TEST(PercentileTest, BasicProperties) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_NEAR(Percentile({1.0, 2.0}, 0.5), 1.5, 1e-12);
}

class MetricsTest : public ::testing::Test {
 protected:
  /** A request with TTFT 100 ms and three 50 ms decode gaps. */
  std::unique_ptr<Request> MakeRequest(std::int64_t id,
                                       sim::Duration ttft = Milliseconds(100),
                                       sim::Duration gap = Milliseconds(50),
                                       int extra_tokens = 3) {
    specs_.push_back(std::make_unique<workload::RequestSpec>());
    workload::RequestSpec* spec = specs_.back().get();
    spec->id = id;
    spec->input_tokens = 200;
    spec->output_tokens = 1 + extra_tokens;
    auto request = std::make_unique<Request>(spec);
    request->arrival = 0;
    sim::Time t = ttft;
    request->EmitToken(t);
    for (int i = 0; i < extra_tokens; ++i) {
      t += gap;
      request->EmitToken(t);
    }
    request->completion = t;
    return request;
  }

  std::vector<std::unique_ptr<workload::RequestSpec>> specs_;
  MetricsCollector metrics_;
};

TEST_F(MetricsTest, TtftAndTbtSummaries) {
  metrics_.OnRequestComplete(*MakeRequest(1));
  EXPECT_EQ(metrics_.completed(), 1u);
  EXPECT_DOUBLE_EQ(metrics_.Ttft().mean_ms, 100.0);
  EXPECT_DOUBLE_EQ(metrics_.Tbt().mean_ms, 50.0);
  EXPECT_EQ(metrics_.Tbt().count, 3u);  // Gaps, not tokens.
  EXPECT_DOUBLE_EQ(metrics_.Tpot().mean_ms, 50.0);
  EXPECT_DOUBLE_EQ(metrics_.E2e().mean_ms, 250.0);
}

TEST_F(MetricsTest, TtftPerTokenNormalizesByInput) {
  metrics_.OnRequestComplete(*MakeRequest(1));
  EXPECT_DOUBLE_EQ(metrics_.TtftPerToken().mean_ms, 100.0 / 200.0);
}

TEST_F(MetricsTest, P99CapturesTail) {
  for (int i = 0; i < 99; ++i) {
    metrics_.OnRequestComplete(*MakeRequest(i));
  }
  // One straggler contributing ~9% of all gaps at 500 ms.
  metrics_.OnRequestComplete(
      *MakeRequest(99, Milliseconds(100), Milliseconds(500), 30));
  EXPECT_GT(metrics_.Tbt().p99_ms, 100.0);
  EXPECT_DOUBLE_EQ(metrics_.Tbt().p50_ms, 50.0);
}

TEST_F(MetricsTest, TbtAttainmentCountsGapsWithinTarget) {
  metrics_.OnRequestComplete(*MakeRequest(1, Milliseconds(100),
                                          Milliseconds(40)));
  metrics_.OnRequestComplete(*MakeRequest(2, Milliseconds(100),
                                          Milliseconds(120)));
  EXPECT_DOUBLE_EQ(metrics_.TbtAttainment(Milliseconds(100)), 0.5);
  EXPECT_DOUBLE_EQ(metrics_.TbtAttainment(Milliseconds(200)), 1.0);
}

TEST_F(MetricsTest, MeetsSloUsesPercentileThreshold) {
  workload::SloTargets slo;
  slo.tbt = Milliseconds(100);
  slo.percentile = 0.99;
  for (int i = 0; i < 100; ++i) {
    metrics_.OnRequestComplete(*MakeRequest(i, Milliseconds(100),
                                            Milliseconds(40), 99));
  }
  EXPECT_TRUE(metrics_.MeetsSlo(slo));
  // Add a request whose gaps all violate: attainment drops below 99%.
  for (int i = 0; i < 3; ++i) {
    metrics_.OnRequestComplete(*MakeRequest(1000 + i, Milliseconds(100),
                                            Milliseconds(300), 99));
  }
  EXPECT_FALSE(metrics_.MeetsSlo(slo));
}

TEST_F(MetricsTest, ThroughputOverWindow) {
  metrics_.OnRequestComplete(*MakeRequest(1));  // 4 output tokens.
  metrics_.OnRequestComplete(*MakeRequest(2));
  const double tokens =
      metrics_.TokenThroughput(0, sim::Seconds(2));  // (400 in + 8 out)/2s.
  EXPECT_DOUBLE_EQ(tokens, 204.0);
  EXPECT_DOUBLE_EQ(metrics_.RequestThroughput(0, sim::Seconds(2)), 1.0);
}

TEST_F(MetricsTest, SingleTokenOutputHasNoTbtSamples) {
  metrics_.OnRequestComplete(*MakeRequest(1, Milliseconds(80),
                                          Milliseconds(50), 0));
  EXPECT_EQ(metrics_.Tbt().count, 0u);
  EXPECT_EQ(metrics_.Tpot().count, 0u);
  EXPECT_EQ(metrics_.Ttft().count, 1u);
}

}  // namespace
}  // namespace muxwise::serve
