#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <memory>

#include "serve/request.h"
#include "sim/time.h"
#include "workload/request_spec.h"

namespace muxwise::serve {
namespace {

using sim::Milliseconds;

TEST(PercentileTest, BasicProperties) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_NEAR(Percentile({1.0, 2.0}, 0.5), 1.5, 1e-12);
}

// Hand-computed fixtures for the small sample counts where naive
// nearest-rank rounding visibly diverges from linear interpolation.
// Rank is p * (n - 1); the value blends the floor/ceil neighbours of
// the sorted samples by the fractional part.

TEST(PercentileTest, SmallSampleP50Fixtures) {
  // n=1: the only sample is every percentile.
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.50), 7.0);
  // n=2: rank 0.5 -> midpoint.
  EXPECT_NEAR(Percentile({10.0, 20.0}, 0.50), 15.0, 1e-12);
  // n=3: rank 1.0 -> exact middle sample, no interpolation.
  EXPECT_DOUBLE_EQ(Percentile({10.0, 20.0, 40.0}, 0.50), 20.0);
  // n=4: rank 1.5 -> halfway between 2nd and 3rd sorted samples.
  EXPECT_NEAR(Percentile({40.0, 10.0, 20.0, 30.0}, 0.50), 25.0, 1e-12);
  // n=5: rank 2.0 -> exact middle sample.
  EXPECT_DOUBLE_EQ(Percentile({5.0, 1.0, 4.0, 2.0, 3.0}, 0.50), 3.0);
}

TEST(PercentileTest, SmallSampleP99Fixtures) {
  // n=2: rank 0.99 -> 10 * 0.01 + 20 * 0.99 = 19.9.
  EXPECT_NEAR(Percentile({10.0, 20.0}, 0.99), 19.9, 1e-12);
  // n=4: rank 2.97 -> 30 * 0.03 + 40 * 0.97 = 39.7.
  EXPECT_NEAR(Percentile({10.0, 20.0, 30.0, 40.0}, 0.99), 39.7, 1e-12);
  // n=5: rank 3.96 -> 40 * 0.04 + 50 * 0.96 = 49.6.
  EXPECT_NEAR(Percentile({10.0, 20.0, 30.0, 40.0, 50.0}, 0.99), 49.6, 1e-12);
  // n=9: rank 7.92 -> 80 * 0.08 + 90 * 0.92 = 89.2.
  EXPECT_NEAR(Percentile({90.0, 10.0, 30.0, 20.0, 50.0, 40.0, 70.0, 60.0,
                          80.0},
                         0.99),
              89.2, 1e-12);
}

TEST(PercentileTest, SortedVariantMatchesSortingForm) {
  const std::vector<double> sorted = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(PercentileSorted(sorted, p), Percentile(sorted, p));
  }
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 0.5), 0.0);
}

class MetricsTest : public ::testing::Test {
 protected:
  /** A request with TTFT 100 ms and three 50 ms decode gaps. */
  std::unique_ptr<Request> MakeRequest(std::int64_t id,
                                       sim::Duration ttft = Milliseconds(100),
                                       sim::Duration gap = Milliseconds(50),
                                       int extra_tokens = 3) {
    specs_.push_back(std::make_unique<workload::RequestSpec>());
    workload::RequestSpec* spec = specs_.back().get();
    spec->id = id;
    spec->input_tokens = 200;
    spec->output_tokens = 1 + extra_tokens;
    auto request = std::make_unique<Request>(spec);
    request->arrival = 0;
    sim::Time t = ttft;
    request->EmitToken(t);
    for (int i = 0; i < extra_tokens; ++i) {
      t += gap;
      request->EmitToken(t);
    }
    request->completion = t;
    return request;
  }

  std::vector<std::unique_ptr<workload::RequestSpec>> specs_;
  MetricsCollector metrics_;
};

TEST_F(MetricsTest, TtftAndTbtSummaries) {
  metrics_.OnRequestComplete(*MakeRequest(1));
  EXPECT_EQ(metrics_.completed(), 1u);
  EXPECT_DOUBLE_EQ(metrics_.Ttft().mean_ms, 100.0);
  EXPECT_DOUBLE_EQ(metrics_.Tbt().mean_ms, 50.0);
  EXPECT_EQ(metrics_.Tbt().count, 3u);  // Gaps, not tokens.
  EXPECT_DOUBLE_EQ(metrics_.Tpot().mean_ms, 50.0);
  EXPECT_DOUBLE_EQ(metrics_.E2e().mean_ms, 250.0);
}

TEST_F(MetricsTest, TtftPerTokenNormalizesByInput) {
  metrics_.OnRequestComplete(*MakeRequest(1));
  EXPECT_DOUBLE_EQ(metrics_.TtftPerToken().mean_ms, 100.0 / 200.0);
}

TEST_F(MetricsTest, P99CapturesTail) {
  for (int i = 0; i < 99; ++i) {
    metrics_.OnRequestComplete(*MakeRequest(i));
  }
  // One straggler contributing ~9% of all gaps at 500 ms.
  metrics_.OnRequestComplete(
      *MakeRequest(99, Milliseconds(100), Milliseconds(500), 30));
  EXPECT_GT(metrics_.Tbt().p99_ms, 100.0);
  EXPECT_DOUBLE_EQ(metrics_.Tbt().p50_ms, 50.0);
}

TEST_F(MetricsTest, TbtAttainmentCountsGapsWithinTarget) {
  metrics_.OnRequestComplete(*MakeRequest(1, Milliseconds(100),
                                          Milliseconds(40)));
  metrics_.OnRequestComplete(*MakeRequest(2, Milliseconds(100),
                                          Milliseconds(120)));
  EXPECT_DOUBLE_EQ(metrics_.TbtAttainment(Milliseconds(100)), 0.5);
  EXPECT_DOUBLE_EQ(metrics_.TbtAttainment(Milliseconds(200)), 1.0);
}

TEST_F(MetricsTest, MeetsSloUsesPercentileThreshold) {
  workload::SloTargets slo;
  slo.tbt = Milliseconds(100);
  slo.percentile = 0.99;
  for (int i = 0; i < 100; ++i) {
    metrics_.OnRequestComplete(*MakeRequest(i, Milliseconds(100),
                                            Milliseconds(40), 99));
  }
  EXPECT_TRUE(metrics_.MeetsSlo(slo));
  // Add a request whose gaps all violate: attainment drops below 99%.
  for (int i = 0; i < 3; ++i) {
    metrics_.OnRequestComplete(*MakeRequest(1000 + i, Milliseconds(100),
                                            Milliseconds(300), 99));
  }
  EXPECT_FALSE(metrics_.MeetsSlo(slo));
}

TEST_F(MetricsTest, ThroughputOverWindow) {
  metrics_.OnRequestComplete(*MakeRequest(1));  // 4 output tokens.
  metrics_.OnRequestComplete(*MakeRequest(2));
  const double tokens =
      metrics_.TokenThroughput(0, sim::Seconds(2));  // (400 in + 8 out)/2s.
  EXPECT_DOUBLE_EQ(tokens, 204.0);
  EXPECT_DOUBLE_EQ(metrics_.RequestThroughput(0, sim::Seconds(2)), 1.0);
}

TEST_F(MetricsTest, SingleTokenOutputHasNoTbtSamples) {
  metrics_.OnRequestComplete(*MakeRequest(1, Milliseconds(80),
                                          Milliseconds(50), 0));
  EXPECT_EQ(metrics_.Tbt().count, 0u);
  EXPECT_EQ(metrics_.Tpot().count, 0u);
  EXPECT_EQ(metrics_.Ttft().count, 1u);
}

class ClassMetricsTest : public MetricsTest {
 protected:
  /** MakeRequest, then stamps the SLO class and prefill start. */
  std::unique_ptr<Request> MakeClassed(std::int64_t id,
                                       workload::SloClass slo_class,
                                       sim::Duration queue_delay,
                                       sim::Duration ttft = Milliseconds(100)) {
    auto request = MakeRequest(id, ttft);
    specs_.back()->slo_class = slo_class;
    request->prefill_start = request->arrival + queue_delay;
    return request;
  }
};

TEST_F(ClassMetricsTest, PerClassSplitPartitionsOutcomes) {
  using workload::SloClass;
  metrics_.OnRequestComplete(
      *MakeClassed(1, SloClass::kInteractive, Milliseconds(5)));
  metrics_.OnRequestComplete(
      *MakeClassed(2, SloClass::kStandard, Milliseconds(5)));
  auto shed = MakeClassed(3, SloClass::kBatch, Milliseconds(5));
  shed->outcome = Outcome::kShed;
  metrics_.OnRequestComplete(*shed);
  auto timed_out = MakeClassed(4, SloClass::kInteractive, Milliseconds(5));
  timed_out->outcome = Outcome::kTimedOut;
  metrics_.OnRequestComplete(*timed_out);

  EXPECT_EQ(metrics_.ClassSlice(SloClass::kInteractive).split.attained, 1u);
  EXPECT_EQ(metrics_.ClassSlice(SloClass::kInteractive).split.timed_out, 1u);
  EXPECT_EQ(metrics_.ClassSlice(SloClass::kStandard).split.attained, 1u);
  EXPECT_EQ(metrics_.ClassSlice(SloClass::kBatch).split.shed, 1u);
  EXPECT_EQ(metrics_.ClassSlice(SloClass::kBatch).split.attained, 0u);
  // The slices partition the aggregate exactly.
  std::size_t total = 0;
  for (auto c : {SloClass::kInteractive, SloClass::kStandard,
                 SloClass::kBatch}) {
    total += metrics_.ClassSlice(c).split.total();
  }
  EXPECT_EQ(total, metrics_.notified());
  EXPECT_TRUE(metrics_.HasClassMix());
}

TEST_F(ClassMetricsTest, HasClassMixIsFalseForAllStandardTraffic) {
  metrics_.OnRequestComplete(
      *MakeClassed(1, workload::SloClass::kStandard, Milliseconds(5)));
  EXPECT_FALSE(metrics_.HasClassMix());
}

TEST_F(ClassMetricsTest, QueueDelayP99HandComputedFixture) {
  using workload::SloClass;
  // Four attained interactive requests with queue delays 10/20/30/40 ms.
  // p99 rank is 0.99 * 3 = 2.97: 30 * 0.03 + 40 * 0.97 = 39.7 ms.
  for (int i = 0; i < 4; ++i) {
    metrics_.OnRequestComplete(*MakeClassed(
        i, SloClass::kInteractive, Milliseconds(10 * (i + 1))));
  }
  const ClassMetrics& slice = metrics_.ClassSlice(SloClass::kInteractive);
  ASSERT_EQ(slice.queue_delay.Count(), 4u);
  EXPECT_NEAR(slice.QueueDelayP99(), 39.7, 1e-9);
  // Degraded requests contribute no queue-delay samples.
  auto shed = MakeClassed(9, SloClass::kInteractive, Milliseconds(999));
  shed->outcome = Outcome::kShed;
  metrics_.OnRequestComplete(*shed);
  EXPECT_EQ(slice.queue_delay.Count(), 4u);
  EXPECT_NEAR(slice.QueueDelayP99(), 39.7, 1e-9);
}

TEST_F(ClassMetricsTest, TtftAttainmentUsesPerTokenTarget) {
  using workload::SloClass;
  // Default SLO bound at construction: 500 ms + 400 us/token; the
  // 200-token fixture prompts put the target at 580 ms.
  metrics_.OnRequestComplete(*MakeClassed(
      1, SloClass::kStandard, Milliseconds(5), Milliseconds(100)));
  metrics_.OnRequestComplete(*MakeClassed(
      2, SloClass::kStandard, Milliseconds(5), Milliseconds(579)));
  metrics_.OnRequestComplete(*MakeClassed(
      3, SloClass::kStandard, Milliseconds(5), Milliseconds(581)));
  auto shed = MakeClassed(4, SloClass::kStandard, Milliseconds(5));
  shed->outcome = Outcome::kShed;
  metrics_.OnRequestComplete(*shed);

  const ClassMetrics& slice = metrics_.ClassSlice(SloClass::kStandard);
  EXPECT_EQ(slice.TtftAttained(), 2u);
  // Attainment is over all arrivals of the class, shed ones included:
  // 2 within target / 4 total.
  EXPECT_DOUBLE_EQ(slice.Attainment(), 0.5);
  // An empty slice reports perfect attainment, not 0/0.
  EXPECT_DOUBLE_EQ(metrics_.ClassSlice(SloClass::kBatch).Attainment(), 1.0);
}

TEST_F(ClassMetricsTest, AttainmentJudgedAgainstBoundSlo) {
  using workload::SloClass;
  // A collector bound to a tighter SLO counts attainment against it at
  // ingest; the same timings then attain under the default targets but
  // not the tight ones.
  workload::SloTargets tight;
  tight.ttft = Milliseconds(50);
  tight.ttft_per_token = sim::Microseconds(100);  // 200 tokens -> 70 ms.
  MetricsCollector strict(tight);
  strict.OnRequestComplete(*MakeClassed(
      1, SloClass::kStandard, Milliseconds(5), Milliseconds(100)));
  metrics_.OnRequestComplete(*MakeClassed(
      2, SloClass::kStandard, Milliseconds(5), Milliseconds(100)));
  EXPECT_EQ(strict.ClassSlice(SloClass::kStandard).TtftAttained(), 0u);
  EXPECT_EQ(metrics_.ClassSlice(SloClass::kStandard).TtftAttained(), 1u);
}

}  // namespace
}  // namespace muxwise::serve
