#include "harness/runner.h"

#include <gtest/gtest.h>

#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace muxwise::harness {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

/**
 * Back-to-back determinism for every integration scenario (one per
 * serving engine): the reproducibility claim in src/sim/simulator.h,
 * enforced in ctest via the harness's event-stream digest.
 */
class DeterminismTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }
  static core::ContentionEstimator* estimator_;
};

core::ContentionEstimator* DeterminismTest::estimator_ = nullptr;

TEST_P(DeterminismTest, BackToBackRunsProduceIdenticalEventStreams) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);
  const DeterminismReport report = VerifyDeterminism(
      GetParam(), Llama70bA100(), trace, estimator_);
  EXPECT_TRUE(report.deterministic) << report.mismatch;
  EXPECT_EQ(report.first_digest, report.second_digest);
  EXPECT_EQ(report.first_events, report.second_events);
  EXPECT_GT(report.first_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, DeterminismTest,
    ::testing::Values(EngineKind::kMuxWise, EngineKind::kChunked,
                      EngineKind::kNanoFlow, EngineKind::kSglangPd,
                      EngineKind::kLoongServe, EngineKind::kWindServe,
                      EngineKind::kTemporal),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      switch (info.param) {
        case EngineKind::kMuxWise: return "MuxWise";
        case EngineKind::kChunked: return "Chunked";
        case EngineKind::kNanoFlow: return "NanoFlow";
        case EngineKind::kSglangPd: return "SglangPd";
        case EngineKind::kLoongServe: return "LoongServe";
        case EngineKind::kWindServe: return "WindServe";
        case EngineKind::kTemporal: return "Temporal";
      }
      return "Unknown";
    });

TEST(EventDigestTest, IdenticalSchedulesAgree) {
  auto run = [] {
    sim::Simulator simulator;
    simulator.ScheduleAt(10, [] {});
    simulator.ScheduleAt(20, [] {});
    simulator.ScheduleAt(20, [] {});  // Same-time tie broken by id.
    simulator.Run();
    return simulator.EventDigest();
  };
  EXPECT_EQ(run(), run());
}

TEST(EventDigestTest, DetectsPerturbedEventTime) {
  auto run = [](sim::Time third) {
    sim::Simulator simulator;
    simulator.ScheduleAt(10, [] {});
    simulator.ScheduleAt(20, [] {});
    simulator.ScheduleAt(third, [] {});
    simulator.Run();
    return simulator.EventDigest();
  };
  EXPECT_NE(run(30), run(31));  // A 1 ns shift perturbs the digest.
}

TEST(EventDigestTest, DetectsInjectedEvent) {
  auto run = [](bool extra) {
    sim::Simulator simulator;
    simulator.ScheduleAt(10, [] {});
    simulator.ScheduleAt(20, [] {});
    if (extra) simulator.ScheduleAt(15, [] {});
    simulator.Run();
    return simulator.EventDigest();
  };
  EXPECT_NE(run(false), run(true));
}

TEST(EventDigestTest, DetectsReorderedSameTimeEvents) {
  // Two same-time events whose callbacks each schedule a follow-up.
  // Swapping their scheduling order swaps which callback owns which
  // event id, so the follow-ups' (time, id) pairs cross — the cascade
  // any real scheduling nondeterminism produces, and what the digest
  // must observe.
  auto run = [](bool swapped) {
    sim::Simulator simulator;
    auto a = [&simulator] { simulator.ScheduleAfter(5, [] {}); };
    auto b = [&simulator] { simulator.ScheduleAfter(7, [] {}); };
    if (swapped) {
      simulator.ScheduleAt(10, b);
      simulator.ScheduleAt(10, a);
    } else {
      simulator.ScheduleAt(10, a);
      simulator.ScheduleAt(10, b);
    }
    simulator.Run();
    return simulator.EventDigest();
  };
  EXPECT_NE(run(false), run(true));
}

TEST(DeterminismVerifierTest, DetectsPerturbedScenario) {
  // A deliberately perturbed trace (one arrival nudged by 1 ms) must
  // produce a different event stream than the original — the digest is
  // sensitive enough to catch single-event drift at harness level.
  const serve::Deployment deployment = Llama70bA100();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);

  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 20, 2.0, 902);
  workload::Trace perturbed = trace;
  perturbed.requests[10].arrival_seconds += 0.001;

  const RunOutcome a =
      RunWorkload(EngineKind::kChunked, deployment, trace, &estimator);
  const RunOutcome b =
      RunWorkload(EngineKind::kChunked, deployment, perturbed, &estimator);
  EXPECT_NE(a.event_digest, b.event_digest);
  EXPECT_NE(OutcomeDigest(a), OutcomeDigest(b));
}

}  // namespace
}  // namespace muxwise::harness
