#include "check/invariant_registry.h"

#include <gtest/gtest.h>

#include <string>

#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "kv/kv_pool.h"
#include "serve/metrics.h"
#include "sim/simulator.h"

namespace muxwise {
namespace {

bool HasViolation(const std::vector<check::Violation>& violations,
                  const std::string& component, const std::string& audit) {
  for (const check::Violation& v : violations) {
    if (v.component == component && v.audit == audit) return true;
  }
  return false;
}

TEST(InvariantRegistryTest, PassingChecksReportNothing) {
  check::InvariantRegistry registry;
  registry.Register("Demo", "always-fine", [](check::AuditContext& ctx) {
    EXPECT_TRUE(ctx.Check(true, "should not be recorded"));
  });
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.RunAll().empty());
}

TEST(InvariantRegistryTest, FailingChecksAreCollectedNotFatal) {
  check::InvariantRegistry registry;
  registry.Register("Demo", "broken", [](check::AuditContext& ctx) {
    EXPECT_FALSE(ctx.Check(false, "first"));
    ctx.Violate("second");
  });
  registry.Register("Demo", "fine",
                    [](check::AuditContext& ctx) { ctx.Check(true, "ok"); });
  const auto violations = registry.RunAll();
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].Format(), "Demo/broken: first");
  EXPECT_EQ(violations[1].Format(), "Demo/broken: second");
}

TEST(InvariantRegistryTest, FormatViolationsJoinsLines) {
  std::vector<check::Violation> violations = {
      {"A", "x", "one"}, {"B", "y", "two"}};
  EXPECT_EQ(check::FormatViolations(violations), "A/x: one\nB/y: two");
}

TEST(KvPoolAuditTest, HealthyPoolPassesAllAudits) {
  kv::KvPool pool(1000);
  const kv::TokenSeq seq = {{1, 0, 100}};
  ASSERT_TRUE(pool.TryReserve(100));
  pool.ReleaseReserved(100);
  pool.CommitSequence(seq, 10);

  check::InvariantRegistry registry;
  pool.RegisterAudits(registry);
  EXPECT_TRUE(registry.RunAll().empty());
}

TEST(KvPoolAuditTest, LeakedReservationIsDetected) {
  kv::KvPool pool(1000);
  ASSERT_TRUE(pool.TryReserve(64));  // Never released: a working-set leak.

  check::InvariantRegistry registry;
  pool.RegisterAudits(registry);
  const auto violations = registry.RunAll();
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(HasViolation(violations, "KvPool", "quiescent-working-set"));
}

TEST(KvPoolAuditTest, LeakedPrefixPinIsDetected) {
  kv::KvPool pool(1000);
  const kv::TokenSeq seq = {{1, 0, 100}};
  pool.CommitSequence(seq, 5);
  kv::KvPool::PrefixLease lease = pool.AcquirePrefix(seq, 6);
  ASSERT_EQ(lease.matched_tokens, 100);
  // The lease is never released: eviction is now permanently blocked.

  check::InvariantRegistry registry;
  pool.RegisterAudits(registry);
  const auto violations = registry.RunAll();
  EXPECT_TRUE(HasViolation(violations, "KvPool", "quiescent-working-set"));

  pool.ReleasePrefix(lease);  // Clean up so the pool destructs sane.
}

TEST(SimulatorAuditTest, IdleAndMidRunSimulatorPasses) {
  sim::Simulator simulator;
  check::InvariantRegistry registry;
  simulator.RegisterAudits(registry);
  EXPECT_TRUE(registry.RunAll().empty());

  simulator.ScheduleAt(100, [] {});
  simulator.ScheduleAt(200, [] {});
  EXPECT_TRUE(registry.RunAll().empty());  // Pending events are consistent.

  simulator.Run();
  EXPECT_TRUE(registry.RunAll().empty());
}

TEST(GpuAuditTest, FreshDeviceWithStreamsPasses) {
  sim::Simulator simulator;
  gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
  device.CreateStream(32);
  device.CreateStream(64);

  check::InvariantRegistry registry;
  device.RegisterAudits(registry);
  EXPECT_TRUE(registry.RunAll().empty());
}

TEST(MetricsAuditTest, EmptyCollectorPasses) {
  serve::MetricsCollector metrics;
  check::InvariantRegistry registry;
  metrics.RegisterAudits(registry);
  EXPECT_TRUE(registry.RunAll().empty());
}

}  // namespace
}  // namespace muxwise
