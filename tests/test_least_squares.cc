#include "llm/least_squares.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace muxwise::llm {
namespace {

TEST(LeastSquaresTest, RecoversExactLinearModel) {
  // y = 3x1 - 2x2 + 5.
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (double x1 = 0; x1 < 5; ++x1) {
    for (double x2 = 0; x2 < 5; ++x2) {
      rows.push_back({x1, x2, 1.0});
      targets.push_back(3.0 * x1 - 2.0 * x2 + 5.0);
    }
  }
  const std::vector<double> theta = SolveLeastSquares(rows, targets);
  ASSERT_EQ(theta.size(), 3u);
  EXPECT_NEAR(theta[0], 3.0, 1e-9);
  EXPECT_NEAR(theta[1], -2.0, 1e-9);
  EXPECT_NEAR(theta[2], 5.0, 1e-9);
}

TEST(LeastSquaresTest, MinimizesResidualUnderNoise) {
  sim::Rng rng(17);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    rows.push_back({x, 1.0});
    targets.push_back(2.0 * x + 1.0 + rng.Normal(0.0, 0.1));
  }
  const std::vector<double> theta = SolveLeastSquares(rows, targets);
  EXPECT_NEAR(theta[0], 2.0, 0.02);
  EXPECT_NEAR(theta[1], 1.0, 0.1);
}

TEST(LeastSquaresTest, WeightsBiasTheFit) {
  // Two inconsistent points; the heavier one wins.
  const std::vector<std::vector<double>> rows = {{1.0}, {1.0}};
  const std::vector<double> targets = {10.0, 20.0};
  const std::vector<double> theta =
      SolveLeastSquares(rows, targets, {10.0, 1.0});
  EXPECT_GT(theta[0], 9.0);
  EXPECT_LT(theta[0], 11.0);
}

TEST(LeastSquaresTest, HandlesSingleColumn) {
  const std::vector<std::vector<double>> rows = {{2.0}, {4.0}};
  const std::vector<double> targets = {6.0, 12.0};
  const std::vector<double> theta = SolveLeastSquares(rows, targets);
  EXPECT_NEAR(theta[0], 3.0, 1e-9);
}

TEST(LeastSquaresTest, DampingSurvivesDuplicatedColumns) {
  // x2 == x1 exactly: rank-deficient without damping.
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (double x = 1; x <= 8; ++x) {
    rows.push_back({x, x, 1.0});
    targets.push_back(4.0 * x + 2.0);
  }
  const std::vector<double> theta = SolveLeastSquares(rows, targets);
  // Any split between the duplicate columns is fine; the prediction
  // must still be right.
  for (double x = 1; x <= 8; ++x) {
    const double pred = theta[0] * x + theta[1] * x + theta[2];
    EXPECT_NEAR(pred, 4.0 * x + 2.0, 1e-3);
  }
}

TEST(LeastSquaresTest, QuadraticFeaturesFitParabola) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (double x = 0; x <= 20; ++x) {
    rows.push_back({x * x, x, 1.0});
    targets.push_back(0.5 * x * x - 3.0 * x + 7.0);
  }
  const std::vector<double> theta = SolveLeastSquares(rows, targets);
  EXPECT_NEAR(theta[0], 0.5, 1e-8);
  EXPECT_NEAR(theta[1], -3.0, 1e-7);
  EXPECT_NEAR(theta[2], 7.0, 1e-6);
}

}  // namespace
}  // namespace muxwise::llm
