#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_export.h"
#include "sim/simulator.h"

namespace muxwise::obs {
namespace {

TEST(TraceRecorderTest, InternsStringsInFirstSeenOrder) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.InternTrack("gpu/s0"), 0u);
  EXPECT_EQ(recorder.InternTrack("gpu/s1"), 1u);
  EXPECT_EQ(recorder.InternTrack("gpu/s0"), 0u);  // Idempotent.
  EXPECT_EQ(recorder.InternName("kernel"), 0u);
  EXPECT_EQ(recorder.InternName("hbm-share"), 1u);
  EXPECT_EQ(recorder.InternName("kernel"), 0u);
  ASSERT_EQ(recorder.tracks().size(), 2u);
  ASSERT_EQ(recorder.names().size(), 2u);
  EXPECT_EQ(recorder.tracks()[1], "gpu/s1");
  EXPECT_EQ(recorder.names()[1], "hbm-share");
}

TEST(TraceRecorderTest, UnboundedRecorderKeepsEverything) {
  TraceRecorder recorder;
  const std::uint32_t track = recorder.InternTrack("t");
  const std::uint32_t name = recorder.InternName("n");
  for (int i = 0; i < 1000; ++i) {
    recorder.Record({EventKind::kInstant, track, name, i, i, 0.0});
  }
  EXPECT_EQ(recorder.size(), 1000u);
  EXPECT_EQ(recorder.dropped(), 0u);
  const std::vector<TraceEvent> events = recorder.Events();
  EXPECT_EQ(events.front().time, 0);
  EXPECT_EQ(events.back().time, 999);
}

TEST(TraceRecorderTest, BoundedRingDropsOldestFirst) {
  TraceRecorder recorder(TraceRecorder::Options{.ring_capacity = 4});
  const std::uint32_t track = recorder.InternTrack("t");
  const std::uint32_t name = recorder.InternName("n");
  for (int i = 0; i < 10; ++i) {
    recorder.Record({EventKind::kInstant, track, name, i, i, 0.0});
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Survivors are the newest four, still reported oldest-first.
  EXPECT_EQ(events[0].time, 6);
  EXPECT_EQ(events[1].time, 7);
  EXPECT_EQ(events[2].time, 8);
  EXPECT_EQ(events[3].time, 9);
}

TEST(TraceRecorderTest, SpanSamplingKeepsBeginEndPairsTogether) {
  // 1-in-4 sampling keyed by (track, name, id): both ends of a span
  // share the key, so whichever spans survive, they survive whole.
  TraceRecorder recorder(TraceRecorder::Options{.span_sample_period = 4});
  const std::uint32_t track = recorder.InternTrack("t");
  const std::uint32_t name = recorder.InternName("span");
  constexpr int kSpans = 256;
  for (int id = 0; id < kSpans; ++id) {
    recorder.Record({EventKind::kSpanBegin, track, name, id, id, 0.0});
    recorder.Record({EventKind::kSpanEnd, track, name, id + 1, id, 0.0});
  }
  EXPECT_GT(recorder.sampled_out(), 0u);
  EXPECT_LT(recorder.size(), 2u * kSpans);
  EXPECT_EQ(recorder.size() + recorder.sampled_out(), 2u * kSpans);
  std::map<std::int64_t, int> begins;
  std::map<std::int64_t, int> ends;
  for (const TraceEvent& event : recorder.Events()) {
    (event.kind == EventKind::kSpanBegin ? begins : ends)[event.id]++;
  }
  EXPECT_EQ(begins, ends);  // No orphaned Begin or End survives.
}

TEST(TraceRecorderTest, SpanSamplingNeverDropsInstantsOrCounters) {
  TraceRecorder recorder(TraceRecorder::Options{.span_sample_period = 1000});
  const std::uint32_t track = recorder.InternTrack("t");
  const std::uint32_t name = recorder.InternName("n");
  for (int i = 0; i < 100; ++i) {
    recorder.Record({EventKind::kInstant, track, name, i, i, 0.0});
    recorder.Record({EventKind::kCounter, track, name, i, 0, 1.0 * i});
  }
  EXPECT_EQ(recorder.size(), 200u);
  EXPECT_EQ(recorder.sampled_out(), 0u);
}

TEST(TraceRecorderTest, SpanSamplingIsIdentityAtPeriodOne) {
  TraceRecorder sampled(TraceRecorder::Options{.span_sample_period = 1});
  TraceRecorder plain;
  for (TraceRecorder* recorder : {&sampled, &plain}) {
    const std::uint32_t track = recorder->InternTrack("t");
    const std::uint32_t name = recorder->InternName("n");
    for (int id = 0; id < 64; ++id) {
      recorder->Record({EventKind::kSpanBegin, track, name, id, id, 0.0});
      recorder->Record({EventKind::kComplete, track, name, id, id, 5.0});
      recorder->Record({EventKind::kSpanEnd, track, name, id + 1, id, 0.0});
    }
  }
  EXPECT_EQ(sampled.sampled_out(), 0u);
  EXPECT_EQ(sampled.Events(), plain.Events());
  EXPECT_EQ(TraceDigest(sampled), TraceDigest(plain));
}

TEST(TraceRecorderTest, SpanSamplingDecisionIsAPureFunctionOfIdentity) {
  // Same stream recorded twice (and once with events interleaved
  // differently in time): identical survivor sets, because the keep
  // decision never looks at timestamps or arrival order.
  auto record = [](sim::Time skew) {
    TraceRecorder recorder(
        TraceRecorder::Options{.span_sample_period = 3});
    const std::uint32_t track = recorder.InternTrack("t");
    const std::uint32_t name = recorder.InternName("n");
    std::vector<std::int64_t> kept;
    for (int id = 0; id < 128; ++id) {
      recorder.Record(
          {EventKind::kComplete, track, name, id + skew, id, 1.0});
    }
    for (const TraceEvent& event : recorder.Events()) {
      kept.push_back(event.id);
    }
    return kept;
  };
  const auto baseline = record(0);
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(record(0), baseline);
  EXPECT_EQ(record(1000), baseline);  // Time shift changes nothing.
}

TEST(TraceRecorderTest, ClearResetsEventsAndTables) {
  TraceRecorder recorder;
  const std::uint32_t track = recorder.InternTrack("t");
  const std::uint32_t name = recorder.InternName("n");
  recorder.Record({EventKind::kInstant, track, name, 1, 0, 0.0});
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.tracks().empty());
  EXPECT_TRUE(recorder.names().empty());
  EXPECT_EQ(recorder.InternTrack("other"), 0u);  // Tables restart at 0.
}

TEST(TracerTest, DisabledTracerIsANoOpWithoutASimulator) {
  // A default-constructed Tracer has neither recorder nor simulator;
  // every emit path must bail before dereferencing either.
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.SpanBegin("t", "n", 1);
  tracer.SpanEnd("t", "n", 1);
  tracer.Complete("t", "n", 1, 0, 10);
  tracer.Instant("t", "n");
  tracer.Counter("t", "n", 1.0);
  EXPECT_EQ(tracer.recorder(), nullptr);
}

TEST(TracerTest, EnabledTracerStampsSimulatedTime) {
  sim::Simulator simulator;
  TraceRecorder recorder;
  const Tracer tracer(&recorder, &simulator);
  ASSERT_TRUE(tracer.enabled());

  simulator.ScheduleAt(5, [&] { tracer.SpanBegin("work", "step", 7, 3.0); });
  simulator.ScheduleAt(12, [&] { tracer.SpanEnd("work", "step", 7); });
  simulator.ScheduleAt(12, [&] { tracer.Counter("work", "load", 2.5); });
  simulator.Run();

  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kSpanBegin);
  EXPECT_EQ(events[0].time, 5);
  EXPECT_EQ(events[0].id, 7);
  EXPECT_EQ(events[0].value, 3.0);
  EXPECT_EQ(events[1].kind, EventKind::kSpanEnd);
  EXPECT_EQ(events[1].time, 12);
  EXPECT_EQ(events[2].kind, EventKind::kCounter);
  EXPECT_EQ(events[2].value, 2.5);
}

TEST(TracerTest, CompleteStoresRetroactiveBeginAndDuration) {
  sim::Simulator simulator;
  TraceRecorder recorder;
  const Tracer tracer(&recorder, &simulator);
  simulator.ScheduleAt(100, [&] { tracer.Complete("p", "reconfig", 3, 40, 25); });
  simulator.Run();
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kComplete);
  EXPECT_EQ(events[0].time, 40);  // Retroactive begin, not Now().
  EXPECT_EQ(events[0].value, 25.0);
}

TEST(TraceBinaryTest, RoundTripsLosslessly) {
  TraceRecorder recorder;
  const std::uint32_t t0 = recorder.InternTrack("gpu/s0");
  const std::uint32_t t1 = recorder.InternTrack("kv");
  const std::uint32_t n0 = recorder.InternName("kernel");
  const std::uint32_t n1 = recorder.InternName("used-tokens");
  recorder.Record({EventKind::kSpanBegin, t0, n0, 10, 1, 108.0});
  recorder.Record({EventKind::kCounter, t1, n1, 11, 0, 4096.5});
  recorder.Record({EventKind::kSpanEnd, t0, n0, 20, 1, 0.0});
  recorder.Record({EventKind::kComplete, t1, n1, 5, -3, 15.0});

  const std::vector<std::uint8_t> bytes = EncodeBinary(recorder);
  DecodedTrace decoded;
  ASSERT_TRUE(DecodeBinary(bytes, decoded));
  EXPECT_EQ(decoded.tracks, recorder.tracks());
  EXPECT_EQ(decoded.names, recorder.names());
  EXPECT_EQ(decoded.dropped, recorder.dropped());
  EXPECT_EQ(decoded.events, recorder.Events());
}

TEST(TraceBinaryTest, RejectsCorruptInput) {
  TraceRecorder recorder;
  recorder.Record({EventKind::kInstant, recorder.InternTrack("t"),
                   recorder.InternName("n"), 1, 0, 0.0});
  std::vector<std::uint8_t> bytes = EncodeBinary(recorder);

  DecodedTrace decoded;
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeBinary(bad_magic, decoded));

  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(DecodeBinary(truncated, decoded));

  EXPECT_FALSE(DecodeBinary({}, decoded));
}

TEST(TraceBinaryTest, DigestIsStableAndSensitive) {
  auto build = [](sim::Time shift) {
    auto recorder = std::make_unique<TraceRecorder>();
    const std::uint32_t t = recorder->InternTrack("t");
    const std::uint32_t n = recorder->InternName("n");
    recorder->Record({EventKind::kInstant, t, n, 10 + shift, 0, 0.0});
    return recorder;
  };
  EXPECT_EQ(TraceDigest(*build(0)), TraceDigest(*build(0)));
  EXPECT_NE(TraceDigest(*build(0)), TraceDigest(*build(1)));
}

TEST(TraceJsonTest, ExportsChromeTraceEventPhases) {
  TraceRecorder recorder;
  const std::uint32_t t = recorder.InternTrack("engine/decode");
  const std::uint32_t n = recorder.InternName("decode-step");
  const std::uint32_t c = recorder.InternName("decode-pending");
  recorder.Record({EventKind::kSpanBegin, t, n, 1000, 1, 8.0});
  recorder.Record({EventKind::kSpanEnd, t, n, 3500, 1, 0.0});
  recorder.Record({EventKind::kCounter, t, c, 3500, 0, 7.0});
  recorder.Record({EventKind::kInstant, t, n, 4000, 2, 0.0});
  recorder.Record({EventKind::kComplete, t, n, 5000, 3, 1500.0});

  const std::string json = ExportChromeJson(recorder);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"engine/decode\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // ns -> microsecond timestamps keep sub-us precision: 3500 ns = 3.500.
  EXPECT_NE(json.find("\"ts\":3.500"), std::string::npos);

  // Decoded traces export byte-identically to the live recorder.
  DecodedTrace decoded;
  ASSERT_TRUE(DecodeBinary(EncodeBinary(recorder), decoded));
  EXPECT_EQ(ExportChromeJson(decoded), json);
}

}  // namespace
}  // namespace muxwise::obs
