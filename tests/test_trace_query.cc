#include "obs/trace_query.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/trace.h"

namespace muxwise::obs {
namespace {

/** Shorthand for hand-building event streams in tests. */
class Builder {
 public:
  void Span(std::string_view track, std::string_view name, std::int64_t id,
            sim::Time begin, sim::Time end, double value = 0.0) {
    recorder_.Record({EventKind::kSpanBegin, recorder_.InternTrack(track),
                      recorder_.InternName(name), begin, id, value});
    recorder_.Record({EventKind::kSpanEnd, recorder_.InternTrack(track),
                      recorder_.InternName(name), end, id, 0.0});
  }
  void Begin(std::string_view track, std::string_view name, std::int64_t id,
             sim::Time at) {
    recorder_.Record({EventKind::kSpanBegin, recorder_.InternTrack(track),
                      recorder_.InternName(name), at, id, 0.0});
  }
  void Complete(std::string_view track, std::string_view name,
                std::int64_t id, sim::Time begin, sim::Duration span) {
    recorder_.Record({EventKind::kComplete, recorder_.InternTrack(track),
                      recorder_.InternName(name), begin, id,
                      static_cast<double>(span)});
  }
  void Instant(std::string_view track, std::string_view name, sim::Time at,
               std::int64_t id = 0) {
    recorder_.Record({EventKind::kInstant, recorder_.InternTrack(track),
                      recorder_.InternName(name), at, id, 0.0});
  }
  void Counter(std::string_view track, std::string_view name, sim::Time at,
               double value) {
    recorder_.Record({EventKind::kCounter, recorder_.InternTrack(track),
                      recorder_.InternName(name), at, 0, value});
  }
  const TraceRecorder& recorder() const { return recorder_; }

 private:
  TraceRecorder recorder_;
};

TEST(ExtractSpansTest, PairsBeginEndByTrackNameAndId) {
  Builder b;
  b.Span("gpu/s0", "kernel", 1, 10, 30, 108.0);
  b.Span("gpu/s0", "kernel", 2, 20, 25);
  b.Span("gpu/s1", "kernel", 1, 5, 15);  // Same id, different track.

  const std::vector<Span> all = ExtractSpans(b.recorder());
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].track, "gpu/s1");
  EXPECT_EQ(all[0].begin, 5);

  const std::vector<Span> s0 = ExtractSpans(b.recorder(), "gpu/s0");
  ASSERT_EQ(s0.size(), 2u);
  EXPECT_EQ(s0[0].id, 1);
  EXPECT_EQ(s0[0].value, 108.0);  // Begin-side payload survives pairing.
  EXPECT_EQ(s0[0].duration(), 20);
  EXPECT_EQ(s0[1].id, 2);
}

TEST(ExtractSpansTest, DropsUnmatchedBegins) {
  Builder b;
  b.Span("t", "ok", 1, 0, 10);
  b.Begin("t", "cut-off-by-crash", 2, 5);
  const std::vector<Span> spans = ExtractSpans(b.recorder(), "t");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "ok");
}

TEST(ExtractSpansTest, CompleteEventsBecomeSpansDirectly) {
  Builder b;
  b.Complete("request", "prefill", 42, 100, 50);
  const std::vector<Span> spans = ExtractSpans(b.recorder());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 100);
  EXPECT_EQ(spans[0].end, 150);
  EXPECT_EQ(spans[0].id, 42);
}

TEST(OverlapTest, HalfOpenIntervalSemantics) {
  const Span a{.track = "t", .name = "n", .begin = 0, .end = 10};
  const Span b{.track = "t", .name = "n", .begin = 10, .end = 20};
  const Span c{.track = "t", .name = "n", .begin = 9, .end = 11};
  EXPECT_FALSE(Overlaps(a, b));  // Touching endpoints do not overlap.
  EXPECT_TRUE(Overlaps(a, c));
  EXPECT_TRUE(Overlaps(c, b));
}

TEST(ExtractGapsTest, ReportsUncoveredIntervalsOnly) {
  Builder b;
  b.Span("t", "n", 1, 0, 10);
  b.Span("t", "n", 2, 5, 12);   // Overlaps the first: merged.
  b.Span("t", "n", 3, 20, 30);  // Gap [12, 20).
  b.Span("t", "n", 4, 30, 35);  // Adjacent: no gap.
  b.Span("t", "n", 5, 50, 60);  // Gap [35, 50).

  const std::vector<Gap> gaps = ExtractGaps(ExtractSpans(b.recorder()));
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0].begin, 12);
  EXPECT_EQ(gaps[0].end, 20);
  EXPECT_EQ(gaps[1].duration(), 15);
  EXPECT_EQ(MaxGap(ExtractSpans(b.recorder())), 15);
}

TEST(ExtractGapsTest, FewerThanTwoSpansHaveNoGaps) {
  EXPECT_TRUE(ExtractGaps({}).empty());
  Builder b;
  b.Span("t", "n", 1, 3, 9);
  EXPECT_TRUE(ExtractGaps(ExtractSpans(b.recorder())).empty());
  EXPECT_EQ(MaxGap(ExtractSpans(b.recorder())), 0);
}

TEST(CounterQueryTest, ValueAtUsesLastSampleAtOrBefore) {
  Builder b;
  b.Counter("kv", "used-tokens", 10, 100.0);
  b.Counter("kv", "used-tokens", 20, 250.0);
  b.Counter("kv", "used-tokens", 30, 50.0);
  const TraceRecorder& r = b.recorder();
  EXPECT_EQ(CounterValueAt(r, "kv", "used-tokens", 5, -1.0), -1.0);
  EXPECT_EQ(CounterValueAt(r, "kv", "used-tokens", 10), 100.0);
  EXPECT_EQ(CounterValueAt(r, "kv", "used-tokens", 29), 250.0);
  EXPECT_EQ(CounterValueAt(r, "kv", "used-tokens", 1000), 50.0);
  EXPECT_EQ(CounterValueAt(r, "kv", "missing", 10, 7.0), 7.0);
}

TEST(CounterQueryTest, StepIntegralInValueSeconds) {
  Builder b;
  // 100 for 1 s, then 300 for 1 s: integral over [1e9, 3e9] = 400 v*s.
  b.Counter("gpu", "hbm-share", 1'000'000'000, 100.0);
  b.Counter("gpu", "hbm-share", 2'000'000'000, 300.0);
  const double integral = CounterIntegral(b.recorder(), "gpu", "hbm-share",
                                          1'000'000'000, 3'000'000'000);
  EXPECT_DOUBLE_EQ(integral, 400.0);
  // A window seeded by an earlier sample: level is 300 throughout.
  EXPECT_DOUBLE_EQ(CounterIntegral(b.recorder(), "gpu", "hbm-share",
                                   4'000'000'000, 6'000'000'000),
                   600.0);
}

TEST(CounterQueryTest, MaxOverSamples) {
  Builder b;
  b.Counter("kv", "used-tokens", 1, 10.0);
  b.Counter("kv", "used-tokens", 2, 90.0);
  b.Counter("kv", "used-tokens", 3, 40.0);
  EXPECT_EQ(CounterMax(b.recorder(), "kv", "used-tokens"), 90.0);
  EXPECT_EQ(CounterMax(b.recorder(), "kv", "missing", -5.0), -5.0);
}

TEST(InstantQueryTest, FiltersByTrackAndName) {
  Builder b;
  b.Complete("request", "decode", 1, 0, 5);
  b.Instant("fault", "crash", 50);
  b.Instant("fault", "recovery", 80);
  const TraceRecorder& r = b.recorder();
  EXPECT_EQ(ExtractInstants(r).size(), 2u);
  EXPECT_EQ(ExtractInstants(r, "fault", "crash").size(), 1u);
  EXPECT_TRUE(ExtractInstants(r, "fault", "missing").empty());
}

TEST(CriticalPathTest, DecomposesLifecycleSpans) {
  Builder b;
  b.Complete("request", "queued", 7, 0, 30);
  b.Complete("request", "prefill", 7, 30, 120);
  b.Complete("request", "decode", 7, 150, 850);
  b.Complete("request", "queued", 8, 10, 5);  // Another request.

  ASSERT_EQ(RequestSpans(b.recorder(), 7).size(), 3u);
  const CriticalPath path = RequestCriticalPath(b.recorder(), 7);
  EXPECT_EQ(path.queued, 30);
  EXPECT_EQ(path.prefill, 120);
  EXPECT_EQ(path.decode, 850);
  EXPECT_EQ(path.total(), 1000);

  // Request 8 was shed before prefill: missing phases stay zero.
  const CriticalPath shed = RequestCriticalPath(b.recorder(), 8);
  EXPECT_EQ(shed.queued, 5);
  EXPECT_EQ(shed.prefill, 0);
  EXPECT_EQ(shed.total(), 5);
}

}  // namespace
}  // namespace muxwise::obs
