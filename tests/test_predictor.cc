#include "llm/predictor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "llm/cost_model.h"
#include "llm/model_config.h"
#include "sim/simulator.h"

namespace muxwise::llm {
namespace {

class PredictorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    predictor_ = SoloRunPredictor::Train(device_, cost_, {16, 48, 96, 108});
  }

  sim::Simulator simulator_;
  gpu::Gpu device_{&simulator_, gpu::GpuSpec::A100()};
  CostModel cost_{ModelConfig::Llama70B(), 8, gpu::GpuSpec::A100()};
  SoloRunPredictor predictor_;
};

TEST_F(PredictorTest, TrainedOptionsAreRecorded) {
  EXPECT_EQ(predictor_.TrainedSmOptions(),
            (std::vector<int>{16, 48, 96, 108}));
}

TEST_F(PredictorTest, FitErrorWithinPaperBallpark) {
  // Paper §3.3.2: max deviation 8.16% (prefill) / 8.84% (decode). Our
  // analytic ground truth has the same roofline nonlinearity; allow a
  // slightly wider envelope.
  for (int sms : predictor_.TrainedSmOptions()) {
    EXPECT_LT(predictor_.PrefillMaxError(sms), 0.20) << "sms=" << sms;
    EXPECT_LT(predictor_.DecodeMaxError(sms), 0.20) << "sms=" << sms;
  }
}

TEST_F(PredictorTest, PrefillPredictionTracksGroundTruth) {
  const std::vector<SeqWork> batch = {SeqWork{3000, 6000}};
  for (int sms : {16, 48, 96}) {
    const double truth =
        device_.SoloDurationSeconds(cost_.PrefillPhase(batch), sms);
    const double pred = sim::ToSeconds(predictor_.PredictPrefill(batch, sms));
    EXPECT_NEAR(pred / truth, 1.0, 0.25) << "sms=" << sms;
  }
}

TEST_F(PredictorTest, DecodePredictionTracksGroundTruth) {
  const std::vector<std::int64_t> ctx(24, 3000);
  for (int sms : {16, 48, 96}) {
    const double truth =
        device_.SoloDurationSeconds(cost_.DecodeIteration(ctx), sms);
    const double pred = sim::ToSeconds(predictor_.PredictDecode(ctx, sms));
    EXPECT_NEAR(pred / truth, 1.0, 0.25) << "sms=" << sms;
  }
}

TEST_F(PredictorTest, MoreSmsNeverSlowerForPrefill) {
  const std::vector<SeqWork> batch = {SeqWork{8192, 0}};
  const sim::Duration t16 = predictor_.PredictPrefill(batch, 16);
  const sim::Duration t96 = predictor_.PredictPrefill(batch, 96);
  EXPECT_GT(t16, t96);
}

TEST_F(PredictorTest, LongerContextSlowerDecode) {
  const std::vector<std::int64_t> short_ctx(32, 1024);
  const std::vector<std::int64_t> long_ctx(32, 65536);
  EXPECT_GT(predictor_.PredictDecode(long_ctx, 48),
            predictor_.PredictDecode(short_ctx, 48));
}

TEST_F(PredictorTest, UnknownSmsFallsBackToNearestLowerFit) {
  const std::vector<std::int64_t> ctx(8, 2048);
  // 64 is untrained; should use the 48-SM fit.
  EXPECT_EQ(predictor_.PredictDecode(ctx, 64),
            predictor_.PredictDecode(ctx, 48));
  // Below the smallest option: clamps to the smallest.
  EXPECT_EQ(predictor_.PredictDecode(ctx, 8),
            predictor_.PredictDecode(ctx, 16));
}

TEST_F(PredictorTest, PredictionsAreNonNegative) {
  EXPECT_GE(predictor_.PredictPrefill({SeqWork{1, 0}}, 16), 0);
  EXPECT_GE(predictor_.PredictDecode({1}, 16), 0);
}

/**
 * Paper Eq. 1/2 sanity across every model configuration: predicted
 * prefill latency is monotone in the new-token count and predicted
 * decode latency is monotone in the batch size, at each trained SM
 * allocation. The fits are per-(phase, SM) least squares, so nothing
 * guarantees this by construction — it must hold for the dispatcher's
 * budget search to be well-founded.
 */
class PredictorMonotoneTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    cost_ = std::make_unique<CostModel>(ModelConfig::ByName(GetParam()), 8,
                                        gpu::GpuSpec::A100());
    predictor_ =
        SoloRunPredictor::Train(device_, *cost_, {16, 48, 96, 108});
  }

  sim::Simulator simulator_;
  gpu::Gpu device_{&simulator_, gpu::GpuSpec::A100()};
  std::unique_ptr<CostModel> cost_;
  SoloRunPredictor predictor_;
};

TEST_P(PredictorMonotoneTest, PrefillLatencyMonotoneInNewTokens) {
  for (int sms : predictor_.TrainedSmOptions()) {
    sim::Duration prev = 0;
    for (std::int64_t tokens = 128; tokens <= 16384; tokens *= 2) {
      const sim::Duration t =
          predictor_.PredictPrefill({SeqWork{tokens, 0}}, sms);
      EXPECT_GE(t, prev) << GetParam() << " sms=" << sms
                         << " tokens=" << tokens;
      prev = t;
    }
    // And strictly: 128x the work is not free.
    EXPECT_GT(predictor_.PredictPrefill({SeqWork{16384, 0}}, sms),
              predictor_.PredictPrefill({SeqWork{128, 0}}, sms))
        << GetParam() << " sms=" << sms;
  }
}

TEST_P(PredictorMonotoneTest, DecodeLatencyMonotoneInBatchSize) {
  for (int sms : predictor_.TrainedSmOptions()) {
    sim::Duration prev = 0;
    for (int batch = 1; batch <= 256; batch *= 2) {
      const std::vector<std::int64_t> ctx(batch, 2048);
      const sim::Duration t = predictor_.PredictDecode(ctx, sms);
      EXPECT_GE(t, prev) << GetParam() << " sms=" << sms
                         << " batch=" << batch;
      prev = t;
    }
    EXPECT_GT(predictor_.PredictDecode(std::vector<std::int64_t>(256, 2048),
                                       sms),
              predictor_.PredictDecode(std::vector<std::int64_t>(1, 2048),
                                       sms))
        << GetParam() << " sms=" << sms;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, PredictorMonotoneTest,
                         ::testing::Values("Llama-8B", "Llama-70B",
                                           "Qwen-235B", "CodeLlama-34B"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace muxwise::llm
