#include "kv/radix_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/rng.h"

namespace muxwise::kv {
namespace {

TokenSeq Session(std::int64_t stream, std::int64_t len) {
  return {{stream, 0, len}};
}

TEST(RadixTreeTest, EmptyTreeMatchesNothing) {
  RadixTree tree;
  EXPECT_EQ(tree.MatchedPrefix(Session(1, 100), 0), 0);
  EXPECT_EQ(tree.total_tokens(), 0);
}

TEST(RadixTreeTest, InsertThenMatchFull) {
  RadixTree tree;
  auto [added, lock] = tree.InsertAndLock(Session(1, 100), 1);
  EXPECT_EQ(added, 100);
  EXPECT_EQ(tree.total_tokens(), 100);
  tree.Unlock(lock);
  EXPECT_EQ(tree.MatchedPrefix(Session(1, 100), 2), 100);
  tree.CheckInvariants();
}

TEST(RadixTreeTest, MatchShorterPrefix) {
  RadixTree tree;
  auto [added, lock] = tree.InsertAndLock(Session(1, 100), 1);
  tree.Unlock(lock);
  EXPECT_EQ(tree.MatchedPrefix(Session(1, 40), 2), 40);
}

TEST(RadixTreeTest, MatchLongerQueryStopsAtCachedLength) {
  RadixTree tree;
  auto [added, lock] = tree.InsertAndLock(Session(1, 100), 1);
  tree.Unlock(lock);
  EXPECT_EQ(tree.MatchedPrefix(Session(1, 250), 2), 100);
}

TEST(RadixTreeTest, ExtensionAddsOnlyNewTokens) {
  RadixTree tree;
  auto [a1, l1] = tree.InsertAndLock(Session(1, 100), 1);
  tree.Unlock(l1);
  auto [a2, l2] = tree.InsertAndLock(Session(1, 300), 2);
  tree.Unlock(l2);
  EXPECT_EQ(a1, 100);
  EXPECT_EQ(a2, 200);
  EXPECT_EQ(tree.total_tokens(), 300);
  tree.CheckInvariants();
}

TEST(RadixTreeTest, ShorterInsertSplitsNode) {
  RadixTree tree;
  auto [a1, l1] = tree.InsertAndLock(Session(1, 300), 1);
  tree.Unlock(l1);
  auto [a2, l2] = tree.InsertAndLock(Session(1, 100), 2);
  tree.Unlock(l2);
  EXPECT_EQ(a2, 0);  // Fully cached already.
  EXPECT_EQ(tree.total_tokens(), 300);
  EXPECT_EQ(tree.node_count(), 2u);  // Split into 100 + 200.
  tree.CheckInvariants();
}

TEST(RadixTreeTest, SharedSystemPromptSharesOneNode) {
  RadixTree tree;
  // Two sessions with the same 50-token system prompt.
  TokenSeq a = {{0, 0, 50}, {1, 0, 100}};
  TokenSeq b = {{0, 0, 50}, {2, 0, 100}};
  auto [a1, l1] = tree.InsertAndLock(a, 1);
  tree.Unlock(l1);
  auto [a2, l2] = tree.InsertAndLock(b, 2);
  tree.Unlock(l2);
  EXPECT_EQ(a1, 150);
  EXPECT_EQ(a2, 100);  // System prompt reused.
  EXPECT_EQ(tree.total_tokens(), 250);
  EXPECT_EQ(tree.MatchedPrefix({{0, 0, 50}, {3, 0, 10}}, 3), 50);
  tree.CheckInvariants();
}

TEST(RadixTreeTest, LockPreventsEviction) {
  RadixTree tree;
  auto [added, lock] = tree.InsertAndLock(Session(1, 100), 1);
  EXPECT_EQ(tree.EvictLru(100), 0);  // Pinned: nothing evictable.
  tree.Unlock(lock);
  EXPECT_EQ(tree.EvictLru(100), 100);
  EXPECT_EQ(tree.total_tokens(), 0);
  tree.CheckInvariants();
}

TEST(RadixTreeTest, LockOnPrefixPinsWholePath) {
  RadixTree tree;
  auto [a1, l1] = tree.InsertAndLock(Session(1, 300), 1);
  tree.Unlock(l1);
  // Lock only the first 100 tokens (splits or partially covers nodes).
  RadixTree::MatchResult match = tree.MatchAndLock(Session(1, 100), 2);
  EXPECT_EQ(match.matched_tokens, 100);
  // The partially-covered 300-token node is pinned entirely, so nothing
  // can be evicted.
  EXPECT_EQ(tree.EvictLru(1000), 0);
  tree.Unlock(match.lock);
  EXPECT_EQ(tree.EvictLru(1000), 300);
}

TEST(RadixTreeTest, EvictsLeastRecentlyUsedFirst) {
  RadixTree tree;
  auto [a1, l1] = tree.InsertAndLock(Session(1, 100), /*now=*/10);
  tree.Unlock(l1);
  auto [a2, l2] = tree.InsertAndLock(Session(2, 100), /*now=*/20);
  tree.Unlock(l2);
  // Touch session 1 so session 2 becomes LRU.
  tree.MatchedPrefix(Session(1, 100), /*now=*/30);
  EXPECT_EQ(tree.EvictLru(50), 100);  // Whole leaf evicted.
  EXPECT_EQ(tree.MatchedPrefix(Session(2, 100), 40), 0);
  EXPECT_EQ(tree.MatchedPrefix(Session(1, 100), 41), 100);
  tree.CheckInvariants();
}

TEST(RadixTreeTest, EvictionCascadesToParents) {
  RadixTree tree;
  auto [a1, l1] = tree.InsertAndLock(Session(1, 100), 1);
  tree.Unlock(l1);
  auto [a2, l2] = tree.InsertAndLock(Session(1, 200), 2);
  tree.Unlock(l2);
  // Two nodes (100 + 100 extension); evicting 200 requires both.
  EXPECT_EQ(tree.EvictLru(200), 200);
  EXPECT_EQ(tree.node_count(), 0u);
  tree.CheckInvariants();
}

TEST(RadixTreeTest, SplitPreservesLocks) {
  RadixTree tree;
  auto [a1, lock] = tree.InsertAndLock(Session(1, 300), 1);
  // While locked, a shorter insert splits the node.
  auto [a2, l2] = tree.InsertAndLock(Session(1, 100), 2);
  tree.Unlock(l2);
  tree.CheckInvariants();
  EXPECT_EQ(tree.EvictLru(1000), 0);  // Still fully pinned.
  tree.Unlock(lock);
  tree.CheckInvariants();
  EXPECT_EQ(tree.EvictLru(1000), 300);
}

TEST(RadixTreeTest, LockedTokensReportsPinnedAmount) {
  RadixTree tree;
  auto [a1, lock] = tree.InsertAndLock(Session(1, 120), 1);
  EXPECT_EQ(tree.LockedTokens(), 120);
  tree.Unlock(lock);
  EXPECT_EQ(tree.LockedTokens(), 0);
}

TEST(RadixTreeTest, DivergentSessionsDontCrossMatch) {
  RadixTree tree;
  auto [a1, l1] = tree.InsertAndLock(Session(1, 100), 1);
  tree.Unlock(l1);
  auto [a2, l2] = tree.InsertAndLock(Session(2, 150), 2);
  tree.Unlock(l2);
  EXPECT_EQ(tree.total_tokens(), 250);
  EXPECT_EQ(tree.MatchedPrefix(Session(1, 100), 3), 100);
  EXPECT_EQ(tree.MatchedPrefix(Session(2, 100), 4), 100);
}

/**
 * Property test: random insert/match/evict against a reference model
 * that stores whole sequences. The tree's matched prefix must equal the
 * reference's best (when nothing was evicted), and totals stay
 * consistent with CheckInvariants throughout.
 */
TEST(RadixTreePropertyTest, MatchesReferenceWithoutEviction) {
  sim::Rng rng(7);
  RadixTree tree;
  // Reference: per (stream), the longest inserted length; plus shared
  // prefix streams handled by construction below.
  std::map<std::int64_t, std::int64_t> longest;
  sim::Time now = 0;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t stream = rng.UniformInt(1, 20);
    const std::int64_t len = rng.UniformInt(1, 400);
    ++now;
    if (rng.Bernoulli(0.6)) {
      auto [added, lock] = tree.InsertAndLock(Session(stream, len), now);
      tree.Unlock(lock);
      longest[stream] = std::max(longest[stream], len);
    } else {
      const std::int64_t matched =
          tree.MatchedPrefix(Session(stream, len), now);
      const std::int64_t expected = std::min(len, longest[stream]);
      ASSERT_EQ(matched, expected) << "iter " << i;
    }
    if (i % 50 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  std::int64_t expected_total = 0;
  for (const auto& [stream, len] : longest) expected_total += len;
  EXPECT_EQ(tree.total_tokens(), expected_total);
}

TEST(RadixTreePropertyTest, EvictionNeverBreaksInvariants) {
  sim::Rng rng(13);
  RadixTree tree;
  std::vector<RadixTree::Lock> locks;
  sim::Time now = 0;
  for (int i = 0; i < 300; ++i) {
    ++now;
    const double action = rng.Uniform();
    if (action < 0.5) {
      auto [added, lock] = tree.InsertAndLock(
          Session(rng.UniformInt(1, 10), rng.UniformInt(1, 300)), now);
      if (rng.Bernoulli(0.3) && locks.size() < 5) {
        locks.push_back(lock);
      } else {
        tree.Unlock(lock);
      }
    } else if (action < 0.8) {
      tree.EvictLru(rng.UniformInt(1, 500));
    } else if (!locks.empty()) {
      tree.Unlock(locks.back());
      locks.pop_back();
    }
    tree.CheckInvariants();
  }
  for (RadixTree::Lock& lock : locks) tree.Unlock(lock);
  // Everything unpinned: full eviction must be possible.
  tree.EvictLru(tree.total_tokens());
  EXPECT_EQ(tree.total_tokens(), 0);
  tree.CheckInvariants();
}

/**
 * Heavier churn with exact accounting against a naive reference: every
 * insert's `added` feeds a token ledger, every eviction's `freed`
 * drains it, and after each operation the tree's total must equal the
 * ledger exactly. Pinned paths are re-matched after every eviction —
 * a live (referenced) node must never be evicted, so the full locked
 * prefix stays matchable until its lock is released.
 */
TEST(RadixTreePropertyTest, ChurnMatchesNaiveAccountingAndSparesLiveNodes) {
  sim::Rng rng(4242);
  RadixTree tree;
  struct Held {
    RadixTree::Lock lock;
    std::int64_t stream = 0;
    std::int64_t pinned_tokens = 0;  // Length of the pinned prefix.
  };
  std::vector<Held> held;
  std::int64_t ledger = 0;  // Naive reference: inserted minus evicted.
  sim::Time now = 0;

  const auto verify = [&] {
    tree.CheckInvariants();
    ASSERT_EQ(tree.total_tokens(), ledger);
    ASSERT_LE(tree.LockedTokens(), tree.total_tokens());
  };

  for (int i = 0; i < 3000; ++i) {
    ++now;
    const double action = rng.Uniform();
    if (action < 0.35) {
      // Insert (often extending an existing session) and maybe pin.
      const std::int64_t stream = rng.UniformInt(1, 8);
      const std::int64_t len = 16 * rng.UniformInt(1, 128);
      auto [added, lock] = tree.InsertAndLock(Session(stream, len), now);
      ASSERT_GE(added, 0);
      ASSERT_LE(added, len);
      ledger += added;
      if (held.size() < 12 && rng.Bernoulli(0.5)) {
        held.push_back({lock, stream, len});
      } else {
        tree.Unlock(lock);
      }
    } else if (action < 0.55) {
      // Match-and-lock an arbitrary prefix; the pin covers the match.
      const std::int64_t stream = rng.UniformInt(1, 8);
      const std::int64_t len = 16 * rng.UniformInt(1, 128);
      RadixTree::MatchResult match =
          tree.MatchAndLock(Session(stream, len), now);
      ASSERT_LE(match.matched_tokens, len);
      if (match.lock.node != nullptr && held.size() < 12) {
        held.push_back({match.lock, stream, match.matched_tokens});
      } else if (match.lock.node != nullptr) {
        tree.Unlock(match.lock);
      }
    } else if (action < 0.75) {
      // Release a random pin.
      if (!held.empty()) {
        const std::size_t victim = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(held.size()) - 1));
        tree.Unlock(held[victim].lock);
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    } else {
      // Evict under pressure; pinned tokens are off limits.
      const std::int64_t before = tree.total_tokens();
      const std::int64_t locked = tree.LockedTokens();
      const std::int64_t freed = tree.EvictLru(rng.UniformInt(1, 8192));
      ASSERT_GE(freed, 0);
      ASSERT_LE(freed, before - locked);
      ledger -= freed;
      // No live-node eviction: every pinned prefix is still fully
      // cached (recency bump via MatchedPrefix is fine here).
      for (const Held& h : held) {
        ASSERT_GE(tree.MatchedPrefix(Session(h.stream, h.pinned_tokens), now),
                  h.pinned_tokens)
            << "evicted a pinned path (stream " << h.stream << ")";
      }
    }
    verify();
  }

  for (Held& h : held) tree.Unlock(h.lock);
  const std::int64_t drained = tree.EvictLru(tree.total_tokens());
  EXPECT_EQ(drained, ledger);
  EXPECT_EQ(tree.total_tokens(), 0);
  EXPECT_EQ(tree.node_count(), 0u);
  tree.CheckInvariants();
}

}  // namespace
}  // namespace muxwise::kv
