#include "serve/frontend.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "serve/engine.h"
#include "sim/simulator.h"
#include "workload/datasets.h"
#include "workload/request_spec.h"

namespace muxwise::serve {
namespace {

/**
 * Test double: completes every request a fixed delay after dispatch,
 * emitting one token at dispatch+delay/2 and finishing at +delay.
 */
class FakeEngine : public Engine {
 public:
  FakeEngine(sim::Simulator* simulator, sim::Duration delay)
      : sim_(simulator), delay_(delay) {}

  const char* name() const override { return "fake"; }
  std::size_t InFlight() const override { return in_flight_; }

  void Enqueue(std::unique_ptr<Request> request) override {
    ++in_flight_;
    dispatch_times.push_back({request->spec->id, sim_->Now()});
    Request* raw = request.release();
    sim_->ScheduleAfter(delay_ / 2, [raw, this] { raw->EmitToken(sim_->Now()); });
    sim_->ScheduleAfter(delay_, [raw, this] {
      raw->EmitToken(sim_->Now());
      raw->completion = sim_->Now();
      --in_flight_;
      NotifyComplete(std::unique_ptr<Request>(raw));
    });
  }

  std::vector<std::pair<std::int64_t, sim::Time>> dispatch_times;

 private:
  sim::Simulator* sim_;
  sim::Duration delay_;
  std::size_t in_flight_ = 0;
};

workload::Trace TwoTurnTrace() {
  workload::Trace trace;
  trace.name = "two-turn";
  workload::RequestSpec turn0;
  turn0.id = 0;
  turn0.arrival_seconds = 0.0;
  turn0.session = 1;
  turn0.session_seq = 0;
  turn0.prompt = {{1, 0, 100}};
  turn0.full_seq = {{1, 0, 110}};
  turn0.input_tokens = 100;
  turn0.output_tokens = 10;
  workload::RequestSpec turn1 = turn0;
  turn1.id = 1;
  turn1.arrival_seconds = 0.001;  // Arrives before turn 0 completes.
  turn1.session_seq = 1;
  turn1.prompt = {{1, 0, 150}};
  turn1.full_seq = {{1, 0, 160}};
  turn1.reused_tokens = 110;
  trace.requests = {turn0, turn1};
  return trace;
}

TEST(FrontendTest, DispatchesAtArrivalTime) {
  sim::Simulator simulator;
  FakeEngine engine(&simulator, sim::Milliseconds(10));
  workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kShareGpt, 20, 5.0, 3);
  MetricsCollector metrics;
  Frontend frontend(&simulator, &engine, &trace, &metrics);
  frontend.Start();
  simulator.Run();
  EXPECT_TRUE(frontend.AllCompleted());
  EXPECT_EQ(metrics.completed(), 20u);
  ASSERT_EQ(engine.dispatch_times.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto& [id, when] = engine.dispatch_times[i];
    // Single-turn requests dispatch exactly at their arrival.
    EXPECT_EQ(when, sim::Seconds(trace.requests[static_cast<std::size_t>(id)]
                                     .arrival_seconds));
  }
}

TEST(FrontendTest, HoldsNextTurnUntilPredecessorCompletes) {
  sim::Simulator simulator;
  FakeEngine engine(&simulator, sim::Milliseconds(50));
  workload::Trace trace = TwoTurnTrace();
  MetricsCollector metrics;
  Frontend frontend(&simulator, &engine, &trace, &metrics);
  frontend.Start();
  simulator.Run();
  ASSERT_EQ(engine.dispatch_times.size(), 2u);
  EXPECT_EQ(engine.dispatch_times[0].first, 0);
  EXPECT_EQ(engine.dispatch_times[1].first, 1);
  // Turn 1 arrived at 1 ms but waits for turn 0's completion at 50 ms.
  EXPECT_EQ(engine.dispatch_times[1].second, sim::Milliseconds(50));
  EXPECT_TRUE(frontend.AllCompleted());
}

TEST(FrontendTest, MultiTurnTraceNeverReordersWithinSession) {
  sim::Simulator simulator;
  FakeEngine engine(&simulator, sim::Milliseconds(20));
  workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 300, 20.0, 5);
  MetricsCollector metrics;
  Frontend frontend(&simulator, &engine, &trace, &metrics);
  frontend.Start();
  simulator.Run();
  EXPECT_TRUE(frontend.AllCompleted());
  // Per session, dispatch order must follow session_seq.
  std::map<std::int64_t, int> last_seq;
  for (const auto& [id, when] : engine.dispatch_times) {
    const workload::RequestSpec& spec =
        trace.requests[static_cast<std::size_t>(id)];
    auto it = last_seq.find(spec.session);
    if (it != last_seq.end()) {
      EXPECT_EQ(spec.session_seq, it->second + 1);
    } else {
      EXPECT_EQ(spec.session_seq, 0);
    }
    last_seq[spec.session] = spec.session_seq;
  }
}

TEST(FrontendTest, TracksCompletionCountsAndLastCompletion) {
  sim::Simulator simulator;
  FakeEngine engine(&simulator, sim::Milliseconds(10));
  workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kShareGpt, 5, 50.0, 9);
  MetricsCollector metrics;
  Frontend frontend(&simulator, &engine, &trace, &metrics);
  frontend.Start();
  EXPECT_EQ(frontend.completed(), 0u);
  simulator.Run();
  EXPECT_EQ(frontend.dispatched(), 5u);
  EXPECT_EQ(frontend.completed(), 5u);
  EXPECT_GT(frontend.last_completion(), 0);
  EXPECT_EQ(frontend.last_completion(), simulator.Now());
}

}  // namespace
}  // namespace muxwise::serve
