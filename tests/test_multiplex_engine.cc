#include "core/multiplex_engine.h"

#include <gtest/gtest.h>

#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"

namespace muxwise::core {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

TEST(MultiplexEngineTest, SpatialPartitionReconfigures) {
  sim::Simulator simulator;
  MultiplexEngine mux(&simulator, Llama70bA100(),
                      MultiplexEngine::Options());
  mux.SetPartition(32, 76);
  EXPECT_EQ(mux.decode_sms(), 32);
  EXPECT_EQ(mux.prefill_sms(), 76);
  EXPECT_EQ(mux.reconfigurations(), 1u);
  // Idempotent: same partition costs nothing.
  mux.SetPartition(32, 76);
  EXPECT_EQ(mux.reconfigurations(), 1u);
  mux.SetPartition(16, 92);
  EXPECT_EQ(mux.reconfigurations(), 2u);
}

TEST(MultiplexEngineTest, ReconfigurationChargesHostTime) {
  sim::Simulator simulator;
  MultiplexEngine mux(&simulator, Llama70bA100(),
                      MultiplexEngine::Options());
  const sim::Time before = mux.host().busy_until();
  mux.SetPartition(32, 76);
  EXPECT_GT(mux.host().busy_until(), before);
}

TEST(MultiplexEngineTest, UnmanagedModeIgnoresPartitioning) {
  sim::Simulator simulator;
  MultiplexEngine::Options options;
  options.mode = MultiplexEngine::Mode::kUnmanaged;
  MultiplexEngine mux(&simulator, Llama70bA100(), options);
  const int before = mux.decode_sms();
  mux.SetPartition(16, 92);
  EXPECT_EQ(mux.decode_sms(), before);
  EXPECT_EQ(mux.reconfigurations(), 0u);
}

TEST(MultiplexEngineTest, LaunchesRespectLaunchCost) {
  sim::Simulator simulator;
  MultiplexEngine mux(&simulator, Llama70bA100(),
                      MultiplexEngine::Options());
  sim::Time done = -1;
  gpu::Kernel kernel = gpu::Kernel::Memcpy(2.039e9);  // ~1 ms.
  mux.LaunchDecode(kernel, sim::Milliseconds(2),
                   [&] { done = simulator.Now(); });
  simulator.Run();
  // 2 ms launch on the host + ~1 ms kernel.
  EXPECT_GE(done, sim::Milliseconds(3));
  EXPECT_LE(done, sim::Milliseconds(3.5));
}

TEST(MultiplexEngineTest, DecodeAndPrefillRunConcurrentlyInSpatialMode) {
  sim::Simulator simulator;
  MultiplexEngine mux(&simulator, Llama70bA100(),
                      MultiplexEngine::Options());
  mux.SetPartition(48, 60);
  sim::Time decode_done = -1, prefill_done = -1;
  // Two compute-bound kernels that would serialize on one stream.
  mux.LaunchDecode(gpu::Kernel::Decode(1e12, 1e9), 0,
                   [&] { decode_done = simulator.Now(); });
  mux.LaunchPrefillGroup(gpu::Kernel::Prefill(5e12, 1e9), 0,
                         [&] { prefill_done = simulator.Now(); });
  simulator.Run();
  ASSERT_GT(decode_done, 0);
  ASSERT_GT(prefill_done, 0);
  // Concurrent: the decode finishes before the longer prefill, well
  // before a serialized schedule would allow.
  EXPECT_LT(decode_done, prefill_done);
}

TEST(MultiplexEngineTest, TemporalModeSerializesOnOneStream) {
  sim::Simulator simulator;
  MultiplexEngine::Options options;
  options.mode = MultiplexEngine::Mode::kTemporal;
  MultiplexEngine mux(&simulator, Llama70bA100(), options);
  sim::Time decode_done = -1, prefill_done = -1;
  mux.LaunchDecode(gpu::Kernel::Memcpy(2.039e9), 0,
                   [&] { decode_done = simulator.Now(); });
  mux.LaunchPrefillGroup(gpu::Kernel::Memcpy(2.039e9), 0,
                         [&] { prefill_done = simulator.Now(); });
  simulator.Run();
  // Serialized: the prefill starts only after the decode finishes, so
  // the two take ~2 ms total rather than contending concurrently.
  EXPECT_NEAR(sim::ToMilliseconds(prefill_done - decode_done), 1.0, 0.1);
}

TEST(MultiplexEngineTest, BubbleRatioAveragesActiveStreams) {
  sim::Simulator simulator;
  MultiplexEngine mux(&simulator, Llama70bA100(),
                      MultiplexEngine::Options());
  mux.LaunchDecode(gpu::Kernel::Memcpy(2.039e9), 0, nullptr);
  mux.LaunchPrefillGroup(gpu::Kernel::Memcpy(2.039e9), 0, nullptr);
  simulator.Run();
  // Single back-to-back kernel per stream: no internal gaps.
  EXPECT_LT(mux.AverageBubbleRatio(), 0.05);
}

}  // namespace
}  // namespace muxwise::core
