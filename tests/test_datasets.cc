#include "workload/datasets.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>

#include "kv/token_seq.h"
#include "workload/request_spec.h"

namespace muxwise::workload {
namespace {

struct Table1Row {
  Dataset dataset;
  double in_min, in_mean, in_max;
  double out_min, out_mean, out_max;
  bool multi_turn;
};

class DatasetCalibrationTest : public ::testing::TestWithParam<Table1Row> {};

TEST_P(DatasetCalibrationTest, MatchesTable1Statistics) {
  const Table1Row row = GetParam();
  const Trace trace = GenerateTrace(row.dataset, 2000, 10.0, 1234);
  ASSERT_EQ(trace.requests.size(), 2000u);

  const LengthStats in = trace.InputStats();
  const LengthStats out = trace.OutputStats();
  // Means within 25% of the paper's Table 1 (synthetic reconstruction
  // from min/mean/max can't be exact, especially for multi-turn
  // accumulation).
  EXPECT_NEAR(in.mean / row.in_mean, 1.0, 0.25)
      << DatasetName(row.dataset) << " input mean " << in.mean;
  EXPECT_NEAR(out.mean / row.out_mean, 1.0, 0.25)
      << DatasetName(row.dataset) << " output mean " << out.mean;
  // Hard bounds are never exceeded.
  EXPECT_LE(in.max, static_cast<std::int64_t>(row.in_max * 1.05));
  EXPECT_LE(out.max, static_cast<std::int64_t>(row.out_max));
  EXPECT_GE(out.min, static_cast<std::int64_t>(row.out_min));
}

INSTANTIATE_TEST_SUITE_P(
    Table1, DatasetCalibrationTest,
    ::testing::Values(
        Table1Row{Dataset::kShareGpt, 4, 226, 1024, 4, 195, 1838, false},
        Table1Row{Dataset::kLoogle, 3380, 30000, 81000, 2, 15, 326, false},
        Table1Row{Dataset::kOpenThoughts, 311, 709, 4633, 684, 8374, 32000,
                  false},
        Table1Row{Dataset::kConversation, 891, 7538, 123000, 1, 342, 2000,
                  true},
        Table1Row{Dataset::kToolAgent, 891, 8596, 123000, 1, 182, 2000,
                  true}),
    [](const ::testing::TestParamInfo<Table1Row>& info) {
      std::string name = DatasetName(info.param.dataset);
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](char c) { return !std::isalnum(c); }),
                 name.end());
      return name;
    });

TEST(DatasetsTest, GenerationIsDeterministic) {
  const Trace a = GenerateTrace(Dataset::kConversation, 200, 5.0, 99);
  const Trace b = GenerateTrace(Dataset::kConversation, 200, 5.0, 99);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].input_tokens, b.requests[i].input_tokens);
    EXPECT_EQ(a.requests[i].output_tokens, b.requests[i].output_tokens);
    EXPECT_DOUBLE_EQ(a.requests[i].arrival_seconds,
                     b.requests[i].arrival_seconds);
  }
}

TEST(DatasetsTest, DifferentSeedsDiffer) {
  const Trace a = GenerateTrace(Dataset::kShareGpt, 100, 5.0, 1);
  const Trace b = GenerateTrace(Dataset::kShareGpt, 100, 5.0, 2);
  int differing = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (a.requests[i].input_tokens != b.requests[i].input_tokens) ++differing;
  }
  EXPECT_GT(differing, 50);
}

TEST(DatasetsTest, ArrivalsAreSortedAndIdsSequential) {
  const Trace trace = GenerateTrace(Dataset::kToolAgent, 500, 8.0, 7);
  for (std::size_t i = 1; i < trace.requests.size(); ++i) {
    EXPECT_LE(trace.requests[i - 1].arrival_seconds,
              trace.requests[i].arrival_seconds);
    EXPECT_EQ(trace.requests[i].id, static_cast<std::int64_t>(i));
  }
}

TEST(DatasetsTest, MultiTurnPromptsExtendSessionHistory) {
  const Trace trace = GenerateTrace(Dataset::kConversation, 1000, 5.0, 11);
  std::map<std::int64_t, const RequestSpec*> last_turn;
  int multi_turn_sessions = 0;
  for (const RequestSpec& spec : trace.requests) {
    auto it = last_turn.find(spec.session);
    if (it != last_turn.end()) {
      const RequestSpec& prev = *it->second;
      EXPECT_EQ(spec.session_seq, prev.session_seq + 1);
      // The new prompt starts with the previous full sequence.
      EXPECT_EQ(kv::CommonPrefixLength(spec.prompt, prev.full_seq),
                kv::SeqLength(prev.full_seq));
      EXPECT_EQ(spec.reused_tokens, kv::SeqLength(prev.full_seq));
      ++multi_turn_sessions;
    } else {
      EXPECT_EQ(spec.session_seq, 0);
      EXPECT_EQ(spec.reused_tokens, 0);
    }
    last_turn[spec.session] = &spec;
  }
  EXPECT_GT(multi_turn_sessions, 300);  // Mean ~3.7 turns per session.
}

TEST(DatasetsTest, ConversationReusedMeanNearTable1) {
  const Trace trace = GenerateTrace(Dataset::kConversation, 3000, 10.0, 21);
  EXPECT_NEAR(trace.ReusedStats().mean / 4496.0, 1.0, 0.35);
}

TEST(DatasetsTest, OpenThoughtsSharesSystemPrompt) {
  const Trace trace = GenerateTrace(Dataset::kOpenThoughts, 100, 5.0, 3);
  for (const RequestSpec& spec : trace.requests) {
    ASSERT_FALSE(spec.prompt.empty());
    EXPECT_EQ(spec.prompt.front().stream, 0);  // Shared system stream.
    EXPECT_EQ(spec.prompt.front().length(), 243);
    EXPECT_EQ(spec.reused_tokens, 243);
  }
}

TEST(DatasetsTest, SingleTurnDatasetsHaveUniqueSessions) {
  const Trace trace = GenerateTrace(Dataset::kLoogle, 200, 2.0, 5);
  std::set<std::int64_t> sessions;
  for (const RequestSpec& spec : trace.requests) {
    EXPECT_TRUE(sessions.insert(spec.session).second);
    EXPECT_EQ(spec.session_seq, 0);
  }
}

TEST(DatasetsTest, FullSeqIsPromptPlusOutput) {
  const Trace trace = GenerateTrace(Dataset::kToolAgent, 200, 5.0, 17);
  for (const RequestSpec& spec : trace.requests) {
    EXPECT_EQ(kv::SeqLength(spec.full_seq),
              spec.input_tokens + spec.output_tokens);
    EXPECT_EQ(kv::CommonPrefixLength(spec.full_seq, spec.prompt),
              spec.input_tokens);
  }
}

TEST(DatasetsTest, BurstyTraceHasSpikes) {
  const Trace trace =
      GenerateBurstyTrace(Dataset::kConversation, 4.0, 600.0, 13.0, 77);
  EXPECT_GT(trace.requests.size(), 500u);
  const std::vector<double> curve = trace.RateCurve(10.0);
  double max_rate = 0.0, sum = 0.0;
  for (double r : curve) {
    max_rate = std::max(max_rate, r);
    sum += r;
  }
  const double mean_rate = sum / curve.size();
  // Bursty: peak well above the mean (paper reports up to 13x spikes).
  EXPECT_GT(max_rate, 2.5 * mean_rate);
}

TEST(DatasetsTest, MergeTracesInterleavesAndRemapsSessions) {
  Trace a = GenerateTrace(Dataset::kShareGpt, 50, 1.0, 31);
  Trace b = GenerateTrace(Dataset::kLoogle, 50, 1.0, 32);
  const Trace merged = MergeTraces("mixed", {a, b});
  EXPECT_EQ(merged.requests.size(), 100u);
  std::set<std::int64_t> sessions;
  for (const RequestSpec& spec : merged.requests) {
    sessions.insert(spec.session);
  }
  EXPECT_EQ(sessions.size(), 100u);  // No collisions after remap.
  for (std::size_t i = 1; i < merged.requests.size(); ++i) {
    EXPECT_LE(merged.requests[i - 1].arrival_seconds,
              merged.requests[i].arrival_seconds);
  }
}

TEST(DatasetsTest, ResampleArrivalsMatchesTargetRate) {
  Trace trace = GenerateTrace(Dataset::kToolAgent, 1000, 3.0, 51);
  ResampleArrivalsPoisson(trace, 12.0, 99);
  EXPECT_NEAR(trace.MeanRate(), 12.0, 1.5);
  for (std::size_t i = 1; i < trace.requests.size(); ++i) {
    EXPECT_LE(trace.requests[i - 1].arrival_seconds,
              trace.requests[i].arrival_seconds);
  }
}

// FNV-1a over the arrival process and class labels: the pinned witness
// that the MMPP generator's output never drifts across refactors.
std::uint64_t ArrivalDigest(const Trace& trace) {
  std::uint64_t h = 1469598103934665603ull;
  auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const RequestSpec& spec : trace.requests) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(spec.arrival_seconds));
    std::memcpy(&bits, &spec.arrival_seconds, sizeof(bits));
    fold(bits);
    fold(static_cast<std::uint64_t>(spec.session));
    fold(static_cast<std::uint64_t>(SloClassRank(spec.slo_class)));
  }
  return h;
}

TEST(DatasetsTest, MmppTraceArrivalDigestIsPinned) {
  MmppOptions options;
  options.dataset = Dataset::kShareGpt;
  options.calm_rate_per_second = 4.0;
  options.burst_multiplier = 4.0;
  options.mean_calm_seconds = 20.0;
  options.mean_burst_seconds = 6.0;
  options.duration_seconds = 300.0;
  const Trace a = GenerateMmppTrace(options, 4242);
  const Trace b = GenerateMmppTrace(options, 4242);
  EXPECT_EQ(ArrivalDigest(a), ArrivalDigest(b));
  EXPECT_GT(a.requests.size(), 500u);
  // Pinned: any change to the generator's sampling order shows up here.
  EXPECT_EQ(ArrivalDigest(a), 5228807621818457263ull);
  EXPECT_EQ(a.name, "ShareGPT-mmpp");
}

TEST(DatasetsTest, MmppBurstPhasesRaiseTheRate) {
  MmppOptions options;
  options.calm_rate_per_second = 3.0;
  options.burst_multiplier = 5.0;
  options.mean_calm_seconds = 30.0;
  options.mean_burst_seconds = 10.0;
  options.duration_seconds = 600.0;
  const Trace trace = GenerateMmppTrace(options, 7);
  const std::vector<double> curve = trace.RateCurve(5.0);
  double max_rate = 0.0, sum = 0.0;
  for (double r : curve) {
    max_rate = std::max(max_rate, r);
    sum += r;
  }
  const double mean_rate = sum / curve.size();
  // Sustained burst phases must push the peak well above the mean.
  EXPECT_GT(max_rate, 2.0 * mean_rate);
}

TEST(DatasetsTest, MmppAssignsOneClassPerSession) {
  MmppOptions options;
  options.dataset = Dataset::kConversation;  // Multi-turn sessions.
  options.calm_rate_per_second = 4.0;
  options.duration_seconds = 400.0;
  const Trace trace = GenerateMmppTrace(options, 11);
  std::map<std::int64_t, SloClass> session_class;
  std::array<int, kNumSloClasses> seen{};
  bool multi_turn_session = false;
  for (const RequestSpec& spec : trace.requests) {
    auto [it, inserted] = session_class.emplace(spec.session, spec.slo_class);
    if (!inserted) {
      EXPECT_EQ(it->second, spec.slo_class)
          << "session " << spec.session << " changed class mid-stream";
      multi_turn_session = true;
    }
    ++seen[SloClassRank(spec.slo_class)];
  }
  EXPECT_TRUE(multi_turn_session);
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(DatasetsTest, RateCurveIntegratesToRequestCount) {
  const Trace trace = GenerateTrace(Dataset::kShareGpt, 300, 5.0, 61);
  const std::vector<double> curve = trace.RateCurve(10.0);
  double total = 0.0;
  for (double r : curve) total += r * 10.0;
  EXPECT_NEAR(total, 300.0, 1.0);
}

}  // namespace
}  // namespace muxwise::workload
