#include "llm/model_config.h"

#include <gtest/gtest.h>

namespace muxwise::llm {
namespace {

TEST(ModelConfigTest, Llama70bGeometry) {
  const ModelConfig m = ModelConfig::Llama70B();
  EXPECT_EQ(m.num_layers, 80);
  EXPECT_EQ(m.hidden_dim, 8192);
  EXPECT_EQ(m.num_kv_heads, 8);
  // 2 (K,V) * 80 layers * 8 heads * 128 dim * 2 bytes = 320 KiB/token.
  EXPECT_DOUBLE_EQ(m.KvBytesPerToken(), 327680.0);
  EXPECT_DOUBLE_EQ(m.WeightBytes(), 140e9);
  EXPECT_FALSE(m.IsMoe());
}

TEST(ModelConfigTest, Llama8bGeometry) {
  const ModelConfig m = ModelConfig::Llama8B();
  EXPECT_EQ(m.num_layers, 32);
  EXPECT_DOUBLE_EQ(m.KvBytesPerToken(), 131072.0);
  EXPECT_DOUBLE_EQ(m.WeightBytes(), 16e9);
}

TEST(ModelConfigTest, DenseDecodeStreamsAllWeights) {
  const ModelConfig m = ModelConfig::Llama70B();
  EXPECT_DOUBLE_EQ(m.DecodeWeightBytes(1), m.WeightBytes());
  EXPECT_DOUBLE_EQ(m.DecodeWeightBytes(256), m.WeightBytes());
}

TEST(ModelConfigTest, MoeGeometry) {
  const ModelConfig m = ModelConfig::Qwen235B();
  EXPECT_TRUE(m.IsMoe());
  EXPECT_EQ(m.num_experts, 128);
  EXPECT_EQ(m.experts_per_token, 8);
  EXPECT_DOUBLE_EQ(m.total_params, 235e9);
  EXPECT_DOUBLE_EQ(m.active_params, 22e9);
}

TEST(ModelConfigTest, MoeDecodeBytesGrowWithBatch) {
  const ModelConfig m = ModelConfig::Qwen235B();
  const double b1 = m.DecodeWeightBytes(1);
  const double b8 = m.DecodeWeightBytes(8);
  const double b64 = m.DecodeWeightBytes(64);
  EXPECT_LT(b1, b8);
  EXPECT_LT(b8, b64);
  // Batch 1 touches at most 8 experts plus shared weights — far less
  // than the full 470 GB footprint.
  EXPECT_LT(b1, 0.25 * m.WeightBytes());
  // Large batches asymptote to the full footprint.
  EXPECT_LE(b64, m.WeightBytes() * 1.0001);
  EXPECT_GT(m.DecodeWeightBytes(256), 0.9 * m.WeightBytes());
}

TEST(ModelConfigTest, MoeActiveWeightBytesUseActivatedParams) {
  const ModelConfig m = ModelConfig::Qwen235B();
  EXPECT_DOUBLE_EQ(m.ActiveWeightBytes(), 44e9);
}

TEST(ModelConfigTest, ByNameRoundTrips) {
  EXPECT_EQ(ModelConfig::ByName("Llama-8B").name, "Llama-8B");
  EXPECT_EQ(ModelConfig::ByName("Llama-70B").name, "Llama-70B");
  EXPECT_EQ(ModelConfig::ByName("Qwen-235B").name, "Qwen3-235B-A22B");
  EXPECT_EQ(ModelConfig::ByName("CodeLlama-34B").num_layers, 48);
}

TEST(ModelConfigDeathTest, ByNameUnknownIsFatal) {
  EXPECT_EXIT(ModelConfig::ByName("GPT-5"), ::testing::ExitedWithCode(1),
              "unknown model");
}

}  // namespace
}  // namespace muxwise::llm
