#include "serve/admission.h"

#include <gtest/gtest.h>

#include "kv/kv_pool.h"
#include "serve/request.h"
#include "workload/request_spec.h"

namespace muxwise::serve {
namespace {

workload::RequestSpec MakeSpec(std::int64_t session, std::int64_t input,
                               std::int64_t output,
                               std::int64_t history = 0) {
  workload::RequestSpec spec;
  spec.session = session;
  spec.prompt = {{session, 0, input}};
  spec.full_seq = {{session, 0, input + output}};
  spec.input_tokens = input;
  spec.output_tokens = output;
  spec.reused_tokens = history;
  return spec;
}

TEST(AdmissionTest, ReservesUncachedInputPlusOutput) {
  kv::KvPool pool(10000);
  const workload::RequestSpec spec = MakeSpec(1, 500, 100);
  Request request(&spec);
  ASSERT_TRUE(AdmitToPool(pool, request, 1));
  EXPECT_EQ(request.cached_tokens, 0);
  EXPECT_EQ(request.prefill_tokens, 500);
  EXPECT_EQ(request.reserved_tokens, 600);
  EXPECT_EQ(pool.reserved_tokens(), 600);
  FinishInPool(pool, request, 2);
  EXPECT_EQ(pool.reserved_tokens(), 0);
  EXPECT_EQ(pool.cached_tokens(), 600);  // full_seq committed.
}

TEST(AdmissionTest, CachedPrefixReducesPrefillWork) {
  kv::KvPool pool(10000);
  pool.CommitSequence({{1, 0, 300}}, 1);
  const workload::RequestSpec spec = MakeSpec(1, 500, 100);
  Request request(&spec);
  ASSERT_TRUE(AdmitToPool(pool, request, 2));
  EXPECT_EQ(request.cached_tokens, 300);
  EXPECT_EQ(request.prefill_tokens, 200);
  EXPECT_EQ(request.reserved_tokens, 300);
  FinishInPool(pool, request, 3);
}

TEST(AdmissionTest, FullyCachedPromptStillPrefillsLastToken) {
  kv::KvPool pool(10000);
  pool.CommitSequence({{1, 0, 500}}, 1);
  const workload::RequestSpec spec = MakeSpec(1, 500, 50);
  Request request(&spec);
  ASSERT_TRUE(AdmitToPool(pool, request, 2));
  EXPECT_EQ(request.cached_tokens, 499);
  EXPECT_EQ(request.prefill_tokens, 1);
  FinishInPool(pool, request, 3);
}

TEST(AdmissionTest, FailsCleanlyWhenPoolFull) {
  kv::KvPool pool(500);
  const workload::RequestSpec spec = MakeSpec(1, 450, 100);
  Request request(&spec);
  EXPECT_FALSE(AdmitToPool(pool, request, 1));
  EXPECT_EQ(request.reserved_tokens, 0);
  EXPECT_EQ(pool.reserved_tokens(), 0);
  EXPECT_EQ(pool.tree().LockedTokens(), 0);  // Lease released on failure.
}

TEST(AdmissionTest, AdmissionEvictsColdCache) {
  kv::KvPool pool(1000);
  pool.CommitSequence({{9, 0, 800}}, 1);  // Cold cache fills the pool.
  const workload::RequestSpec spec = MakeSpec(1, 500, 100);
  Request request(&spec);
  ASSERT_TRUE(AdmitToPool(pool, request, 2));
  EXPECT_LE(pool.used_tokens(), 1000);
  FinishInPool(pool, request, 3);
}

TEST(AdmissionTest, AbandonReleasesWithoutCaching) {
  kv::KvPool pool(10000);
  const workload::RequestSpec spec = MakeSpec(1, 500, 100);
  Request request(&spec);
  ASSERT_TRUE(AdmitToPool(pool, request, 1));
  AbandonInPool(pool, request);
  EXPECT_EQ(pool.reserved_tokens(), 0);
  EXPECT_EQ(pool.cached_tokens(), 0);
}

TEST(AdmissionTest, AbortAfterPartialPrefillReleasesEverything) {
  // A crash can abort a request halfway through prefill; abandoning it
  // must return the pool to a pristine state — no reservation, no
  // cached residue of the partial computation, no leaked prefix lock.
  kv::KvPool pool(10000);
  const workload::RequestSpec spec = MakeSpec(1, 500, 100);
  Request request(&spec);
  ASSERT_TRUE(AdmitToPool(pool, request, 1));
  request.progress = 250;  // Mid-prefill when the instance dies.
  AbandonInPool(pool, request);
  EXPECT_EQ(pool.reserved_tokens(), 0);
  EXPECT_EQ(pool.cached_tokens(), 0);
  EXPECT_EQ(pool.tree().LockedTokens(), 0);
}

TEST(AdmissionTest, AbortWithSharedPrefixKeepsSurvivorsLease) {
  // Two requests pin the same cached radix prefix; aborting one must
  // decrement the shared lock without freeing the survivor's lease.
  kv::KvPool pool(10000);
  pool.CommitSequence({{1, 0, 300}}, 1);
  const workload::RequestSpec spec_a = MakeSpec(1, 500, 100);
  const workload::RequestSpec spec_b = MakeSpec(1, 400, 50);
  Request a(&spec_a);
  Request b(&spec_b);
  ASSERT_TRUE(AdmitToPool(pool, a, 2));
  ASSERT_TRUE(AdmitToPool(pool, b, 2));
  EXPECT_EQ(a.cached_tokens, 300);
  EXPECT_EQ(b.cached_tokens, 300);
  AbandonInPool(pool, a);
  // b still holds the prefix; the shared lock survives a's abort.
  EXPECT_EQ(pool.tree().LockedTokens(), 300);
  FinishInPool(pool, b, 3);
  EXPECT_EQ(pool.tree().LockedTokens(), 0);
}

TEST(AdmissionTest, CrashReadmissionRecomputesGeneratedTokens) {
  // A request re-admitted after losing its KV to a crash has already
  // streamed `generated` tokens; its new prefill span must cover them
  // (they get recomputed) while the reservation bound is unchanged.
  kv::KvPool pool(10000);
  const workload::RequestSpec spec = MakeSpec(1, 500, 100);
  Request request(&spec);
  ASSERT_TRUE(AdmitToPool(pool, request, 1));
  request.generated = 40;  // Tokens streamed before the crash.
  AbandonInPool(pool, request);
  request.progress = 0;
  request.cached_tokens = 0;
  request.prefill_tokens = 0;
  request.reserved_tokens = 0;
  ASSERT_TRUE(AdmitToPool(pool, request, 2));
  EXPECT_EQ(request.prefill_tokens, 540);   // uncached input + generated.
  EXPECT_EQ(request.reserved_tokens, 600);  // Same working-set bound.
  FinishInPool(pool, request, 3);
}

TEST(AdmissionTest, PinnedPrefixSurvivesConcurrentPressure) {
  kv::KvPool pool(2000);
  pool.CommitSequence({{1, 0, 1000}}, 1);
  const workload::RequestSpec spec_a = MakeSpec(1, 1000, 100);
  Request a(&spec_a);
  ASSERT_TRUE(AdmitToPool(pool, a, 2));  // Pins the 1000-token prefix.
  // A second large request cannot evict the pinned prefix.
  const workload::RequestSpec spec_b = MakeSpec(2, 1500, 400);
  Request b(&spec_b);
  EXPECT_FALSE(AdmitToPool(pool, b, 3));
  FinishInPool(pool, a, 4);
}

}  // namespace
}  // namespace muxwise::serve
