// Grey-failure fault model: a zombie answers heartbeats while its
// kernels stall, a flapper winks in and out of reach, a degraded part
// silently loses capacity, an asymmetric partition cuts one direction.
// Covered bottom-up — device freeze/degrade, channel flap/degrade, the
// widened health FSM — and end-to-end through the fleet router, each
// detection behavior paired with its detection-disabled blind twin.

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "route/health.h"
#include "serve/deployment.h"
#include "sim/channel.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "workload/datasets.h"

namespace muxwise {
namespace {

// ------------------------------------------------------ device hooks

TEST(GpuGreyTest, FreezeStallsCompletionsAndThawRetainsProgress) {
  sim::Simulator simulator;
  gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
  const gpu::StreamId stream = device.CreateStream(108);
  sim::Time done = -1;
  // ~1 ms memcpy at full speed (see test_cluster.cc).
  device.Launch(stream, gpu::Kernel::Memcpy(2.039e9),
                [&] { done = simulator.Now(); });
  simulator.ScheduleAt(sim::Microseconds(500),
                       [&] { device.SetFrozen(true); });
  simulator.ScheduleAt(sim::Milliseconds(10),
                       [&] { device.SetFrozen(false); });
  simulator.Run();
  EXPECT_FALSE(device.frozen());
  // Froze halfway through: the retained 0.5 ms of progress leaves
  // ~0.5 ms to run after the thaw at 10 ms.
  EXPECT_NEAR(sim::ToMilliseconds(done), 10.5, 0.05);
  EXPECT_EQ(device.kernels_completed(), 1u);
}

TEST(GpuGreyTest, FrozenDeviceAcceptsLaunchesWithoutCompletingThem) {
  // What makes a zombie convincing: it takes work (so the router sees a
  // busy, responsive instance) and simply never finishes any.
  sim::Simulator simulator;
  gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
  const gpu::StreamId stream = device.CreateStream(108);
  device.SetFrozen(true);
  bool fired = false;
  device.Launch(stream, gpu::Kernel::Memcpy(2.039e9), [&] { fired = true; });
  simulator.ScheduleAt(sim::Milliseconds(5), [&] {
    EXPECT_FALSE(fired);  // Frozen: nothing completes.
    device.SetFrozen(false);
  });
  simulator.Run();
  EXPECT_TRUE(fired);  // Thawed: the queued kernel finishes.
}

TEST(GpuGreyTest, BandwidthDegradeStretchesMemcpyByTheFactor) {
  sim::Simulator simulator;
  gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
  const gpu::StreamId stream = device.CreateStream(108);
  device.SetDegrade(1.0, 0.5);
  sim::Time done = -1;
  device.Launch(stream, gpu::Kernel::Memcpy(2.039e9),
                [&] { done = simulator.Now(); });
  simulator.Run();
  // Half the HBM bandwidth: the ~1 ms memcpy takes ~2 ms.
  EXPECT_NEAR(sim::ToMilliseconds(done), 2.0, 0.05);
  device.SetDegrade(1.0, 1.0);
  EXPECT_DOUBLE_EQ(device.degrade_flops_factor(), 1.0);
  EXPECT_DOUBLE_EQ(device.degrade_bandwidth_factor(), 1.0);
}

TEST(GpuGreyTest, FlopsDegradeStretchesComputeBoundKernels) {
  // The same compute-heavy kernel on a pristine device and on one
  // degraded to half its FLOPs: the degraded run takes ~2x. The
  // prediction path (SoloDurationSeconds) must not move — silent
  // degradation is precisely a model/reality gap.
  const gpu::Kernel kernel = gpu::Kernel::Prefill(1e12, 1e6);
  sim::Time full = -1, degraded = -1;
  {
    sim::Simulator simulator;
    gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
    const gpu::StreamId stream = device.CreateStream(108);
    device.Launch(stream, kernel, [&] { full = simulator.Now(); });
    simulator.Run();
  }
  {
    sim::Simulator simulator;
    gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
    const gpu::StreamId stream = device.CreateStream(108);
    const double predicted = device.SoloDurationSeconds(kernel, 108);
    device.SetDegrade(0.5, 1.0);
    EXPECT_DOUBLE_EQ(device.SoloDurationSeconds(kernel, 108), predicted);
    device.Launch(stream, kernel, [&] { degraded = simulator.Now(); });
    simulator.Run();
  }
  ASSERT_GT(full, 0);
  ASSERT_GT(degraded, 0);
  EXPECT_NEAR(static_cast<double>(degraded) / static_cast<double>(full), 2.0,
              0.1);
}

// ----------------------------------------------------- channel hooks

TEST(ChannelGreyTest, BandwidthScaleStretchesWireTimeAndRestoresExactly) {
  sim::Simulator simulator;
  sim::Channel link(&simulator, "test/link", 600e9, 0);
  link.SetBandwidthScale(0.5);
  sim::Time done = -1;
  link.Transfer(600e6, [&] { done = simulator.Now(); });
  simulator.Run();
  // 600 MB over a 600 GB/s wire at half scale: 2 ms instead of 1.
  EXPECT_NEAR(sim::ToMilliseconds(done), 2.0, 0.001);
  link.SetBandwidthScale(1.0);
  EXPECT_DOUBLE_EQ(link.bandwidth_scale(), 1.0);
}

TEST(ChannelGreyTest, DownLinkLosesAttemptsUntilTheLinkReturns) {
  // Unarmed channel (no randomness anywhere): a down link loses the
  // first attempt deterministically after occupying the wire; the
  // backoff retry lands after the link comes back and succeeds.
  sim::Simulator simulator;
  sim::Channel link(&simulator, "test/link", 600e9, 0);
  link.SetLinkUp(false);
  simulator.ScheduleAt(sim::Microseconds(2500),
                       [&] { link.SetLinkUp(true); });
  sim::Time done = -1;
  bool failed = false;
  link.Transfer(600e6, [&] { done = simulator.Now(); },
                [&] { failed = true; });
  simulator.Run();
  EXPECT_FALSE(failed);
  // Attempt 1 occupies [0, 1 ms) and is lost, backs off 2 ms; attempt 2
  // starts at 3 ms against a restored link and lands at 4 ms.
  EXPECT_NEAR(sim::ToMilliseconds(done), 4.0, 0.001);
  EXPECT_EQ(link.attempts_failed(), 1u);
  EXPECT_EQ(link.transfers_completed(), 1u);
}

TEST(ChannelGreyTest, PermanentlyDownLinkFailsTransfersAfterAllAttempts) {
  sim::Simulator simulator;
  sim::Channel link(&simulator, "test/link", 600e9, 0);
  link.SetLinkUp(false);
  bool done = false, failed = false;
  link.Transfer(600e6, [&] { done = true; }, [&] { failed = true; });
  simulator.Run();
  EXPECT_FALSE(done);
  EXPECT_TRUE(failed);
  EXPECT_EQ(link.transfers_failed(), 1u);
}

// --------------------------------------------------- health FSM edges

route::HealthPolicy ZombiePolicy() {
  route::HealthPolicy policy;
  policy.zombie_after_beats = 2;
  policy.zombie_down_beats = 4;
  return policy;
}

TEST(HealthTrackerGreyTest, FrozenWatermarkMarksLyingThenDownAndHolds) {
  route::HealthTracker health(ZombiePolicy(), 1);
  sim::Time now = 0;
  const auto tick = [&](std::uint64_t watermark, std::size_t in_flight) {
    now += sim::Milliseconds(250);
    health.ObserveProgress(0, watermark, in_flight, now);
    health.Beat(0, now);
  };
  tick(7, 3);  // First sample records the watermark; no stall yet.
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kHealthy);
  tick(7, 3);  // Stalled beat 1.
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kHealthy);
  tick(7, 3);  // Stalled beat 2: Suspect, and the reason is the lie.
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kSuspect);
  EXPECT_EQ(health.reason(0), route::SuspectReason::kLying);
  // Good heartbeats are the lie: they must not clear a lying Suspect.
  health.Beat(0, now);
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kSuspect);
  tick(7, 3);  // Stalled beat 3.
  tick(7, 3);  // Stalled beat 4: Down — the zombie failover edge.
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kDown);
  // Held Down: beats alone cannot start recovery while the watermark
  // stays frozen, and the state is deliberately not a fixed point.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(health.Beat(0, now).changed);
  }
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kDown);
  EXPECT_FALSE(health.Stable(0));
  // The watermark moves: the verdict lifts and ordinary beats walk the
  // replica Down -> Recovering -> (probation) -> Healthy.
  tick(8, 3);
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kRecovering);
  tick(9, 3);
  tick(10, 3);
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kHealthy);
  EXPECT_EQ(health.reason(0), route::SuspectReason::kNone);
}

TEST(HealthTrackerGreyTest, IdleReplicaWithFrozenWatermarkStaysHealthy) {
  // No work in flight means nothing is being lost: an idle replica is
  // indistinguishable from a healthy one and must never be suspected.
  route::HealthTracker health(ZombiePolicy(), 1);
  sim::Time now = 0;
  for (int i = 0; i < 10; ++i) {
    now += sim::Milliseconds(250);
    health.ObserveProgress(0, 7, /*in_flight=*/0, now);
    health.Beat(0, now);
  }
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kHealthy);
  EXPECT_TRUE(health.Stable(0));
}

TEST(HealthTrackerGreyTest, ZombieDetectionDisabledIsBlindToTheStall) {
  // The negative twin: identical frozen-watermark evidence, detection
  // off. The tracker must not move — this is the baseline the zombie
  // end-to-end test's failover is compared against.
  route::HealthPolicy policy = ZombiePolicy();
  policy.zombie_detection = false;
  route::HealthTracker health(policy, 1);
  sim::Time now = 0;
  for (int i = 0; i < 10; ++i) {
    now += sim::Milliseconds(250);
    EXPECT_FALSE(health.ObserveProgress(0, 7, 3, now).changed);
    health.Beat(0, now);
  }
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kHealthy);
  EXPECT_EQ(health.reason(0), route::SuspectReason::kNone);
}

TEST(HealthTrackerGreyTest, SuspectExitTakesConsecutiveGoodBeats) {
  route::HealthPolicy policy;
  policy.suspect_exit_beats = 3;
  route::HealthTracker health(policy, 1);
  sim::Time now = sim::Seconds(1);
  // One silenced beat: Suspect via the miss path.
  health.OnPartitionSignal(0, false, true, now);
  health.Beat(0, now);
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kSuspect);
  EXPECT_EQ(health.reason(0), route::SuspectReason::kMisses);
  health.OnPartitionSignal(0, false, false, now);  // Heal.
  // Hysteresis: two good beats are not enough, the third clears.
  health.Beat(0, now);
  health.Beat(0, now);
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kSuspect);
  health.Beat(0, now);
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kHealthy);
}

TEST(HealthTrackerGreyTest, AlternatingFlapDwellsInSuspectWithoutDown) {
  // A replica flapping faster than either threshold: never two
  // consecutive misses (no Down, no spurious failover) and never
  // suspect_exit_beats consecutive good beats (no premature Healthy) —
  // it dwells in Suspect, which is exactly where a flapper belongs.
  route::HealthPolicy policy;
  policy.suspect_exit_beats = 2;
  route::HealthTracker health(policy, 1);
  sim::Time now = 0;
  bool suspect_seen = false;
  for (int cycle = 0; cycle < 20; ++cycle) {
    now += sim::Milliseconds(250);
    health.OnPartitionSignal(0, false, true, now);  // Down phase.
    const auto miss = health.Beat(0, now);
    EXPECT_NE(health.state(0), route::ReplicaHealth::kDown);
    if (miss.changed) suspect_seen = true;
    now += sim::Milliseconds(250);
    health.OnPartitionSignal(0, false, false, now);  // Up phase.
    health.Beat(0, now);
    if (cycle > 0) {
      EXPECT_EQ(health.state(0), route::ReplicaHealth::kSuspect);
    }
  }
  EXPECT_TRUE(suspect_seen);
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kSuspect);
}

TEST(HealthTrackerGreyTest, UnreachablePinsSuspectUntilThePartitionHeals) {
  route::HealthPolicy policy;
  route::HealthTracker health(policy, 1);
  const auto cut =
      health.OnPartitionSignal(0, /*drop_to=*/true, false, sim::Seconds(2));
  EXPECT_TRUE(cut.changed);
  EXPECT_EQ(cut.to, route::ReplicaHealth::kSuspect);
  EXPECT_EQ(health.reason(0), route::SuspectReason::kUnreachable);
  EXPECT_TRUE(health.unreachable(0));
  // Its heartbeats still arrive, so beats are good — but an unhealed
  // router->replica cut pins Suspect: not routable, never failed over.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(health.Beat(0, sim::Seconds(3)).changed);
  }
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kSuspect);
  EXPECT_TRUE(health.Stable(0));  // A pinned Suspect is a fixed point.
  health.OnPartitionSignal(0, false, false, sim::Seconds(4));
  health.Beat(0, sim::Seconds(4));
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kHealthy);
}

TEST(HealthTrackerGreyTest, SilencedReplicaAccumulatesMissesTowardDown) {
  // drop_from: the replica is alive and serving but its heartbeats
  // vanish — the router correctly reads silence as an outage, and the
  // silence onset timestamps the failover latency.
  route::HealthPolicy policy;  // suspect after 1 miss, down after 2.
  route::HealthTracker health(policy, 1);
  health.OnPartitionSignal(0, false, /*drop_from=*/true, sim::Seconds(5));
  EXPECT_TRUE(health.silenced(0));
  EXPECT_TRUE(health.alive(0));
  health.Beat(0, sim::Seconds(5) + sim::Milliseconds(500));
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kSuspect);
  const auto down = health.Beat(0, sim::Seconds(6));
  EXPECT_TRUE(down.changed);
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kDown);
  EXPECT_EQ(health.crash_signal_at(0), sim::Seconds(5));
  EXPECT_TRUE(health.Stable(0));  // Stays Down until the heal signal.
  health.OnPartitionSignal(0, false, false, sim::Seconds(7));
  health.Beat(0, sim::Seconds(7));  // Down -> Recovering.
  health.Beat(0, sim::Seconds(7) + sim::Milliseconds(500));
  health.Beat(0, sim::Seconds(8));  // Probation served.
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kHealthy);
}

TEST(HealthTrackerGreyTest, PartitionDetectionDisabledIgnoresSignals) {
  route::HealthPolicy policy;
  policy.partition_detection = false;
  route::HealthTracker health(policy, 1);
  EXPECT_FALSE(
      health.OnPartitionSignal(0, true, false, sim::Seconds(1)).changed);
  EXPECT_FALSE(
      health.OnPartitionSignal(0, false, true, sim::Seconds(1)).changed);
  EXPECT_FALSE(health.silenced(0));
  EXPECT_FALSE(health.unreachable(0));
  health.Beat(0, sim::Seconds(2));
  EXPECT_EQ(health.state(0), route::ReplicaHealth::kHealthy);
}

// ------------------------------------------- fleet router end-to-end

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

class FleetGreyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
    trace_ = new workload::Trace(workload::GenerateTrace(
        workload::Dataset::kShareGpt, 40, 2.5, 20261));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
    delete trace_;
    trace_ = nullptr;
  }

  static harness::RunConfig GreyConfig() {
    harness::RunConfig config;
    config.fleet.enabled = true;
    config.fleet.replicas = 3;
    config.fleet.health.heartbeat_interval = sim::Milliseconds(250);
    return config;
  }

  static core::ContentionEstimator* estimator_;
  static workload::Trace* trace_;
};

core::ContentionEstimator* FleetGreyTest::estimator_ = nullptr;
workload::Trace* FleetGreyTest::trace_ = nullptr;

TEST_F(FleetGreyTest, ZombieIsDetectedByWatermarkAndFailedOverOnce) {
  harness::RunConfig config = GreyConfig();
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Zombie(1, sim::Seconds(4), sim::Seconds(16));
  const harness::RunOutcome o =
      harness::RunWorkload(harness::EngineKind::kMuxWise, Llama70bA100(),
                           *trace_, estimator_, config);
  EXPECT_TRUE(o.diagnostic.empty()) << o.diagnostic;
  ASSERT_TRUE(o.fleet_active);
  EXPECT_EQ(o.split.total(), o.total);
  // The frozen replica answered every heartbeat; only the watermark
  // betrayed it. One Down verdict, via the zombie path.
  EXPECT_EQ(o.fleet.zombie_downs, 1u);
  EXPECT_EQ(o.fleet.failovers, 1u);
  // Detection latency is beat-counted from the stall onset: Down lands
  // within zombie_down_beats heartbeats (+1 beat of sampling phase).
  ASSERT_EQ(o.fleet.failover_latency.count, 1u);
  const double bound_ms =
      250.0 * (config.fleet.health.zombie_down_beats + 1);
  EXPECT_LE(o.fleet.failover_latency.p99_ms, bound_ms);
}

TEST_F(FleetGreyTest, ZombieDetectionDisabledNeverFailsOver) {
  // The blind twin: same freeze, watermark detection off. No verdict is
  // ever reached, so the fleet rides out the whole 12 s stall on the
  // zombie. Note the trade the detecting run makes is *latency*, not
  // raw completions: failing the zombie over drops live capacity to 2/3
  // and the mode ladder browns out standard arrivals, so the blind run
  // can finish more requests — at a catastrophic TTFT tail.
  harness::RunConfig config = GreyConfig();
  config.fleet.health.zombie_detection = false;
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Zombie(1, sim::Seconds(4), sim::Seconds(16));
  const harness::RunOutcome blind =
      harness::RunWorkload(harness::EngineKind::kMuxWise, Llama70bA100(),
                           *trace_, estimator_, config);
  EXPECT_TRUE(blind.diagnostic.empty()) << blind.diagnostic;
  EXPECT_EQ(blind.split.total(), blind.total);  // Still never strands.
  EXPECT_EQ(blind.fleet.zombie_downs, 0u);
  EXPECT_EQ(blind.fleet.failovers, 0u);

  harness::RunConfig detecting = GreyConfig();
  detecting.fault_plan = config.fault_plan;
  const harness::RunOutcome o =
      harness::RunWorkload(harness::EngineKind::kMuxWise, Llama70bA100(),
                           *trace_, estimator_, detecting);
  EXPECT_EQ(o.fleet.zombie_downs, 1u);
  // Detection buys the tail: blind completions queue behind the frozen
  // replica for up to 12 s, so its p99 TTFT must dwarf the detecting
  // run's (which shed or re-homed that work instead).
  EXPECT_GT(blind.ttft.p99_ms, o.ttft.p99_ms);
}

TEST_F(FleetGreyTest, FlappingReplicaDwellsInSuspectWithoutFailover) {
  // Heartbeat flap: 200 ms down phases against a 250 ms beat and a
  // 2-beat exit hysteresis. The replica oscillates around Suspect but
  // never posts two consecutive misses — no Down, no failover thrash.
  harness::RunConfig config = GreyConfig();
  config.fleet.health.suspect_exit_beats = 2;
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Flap(1, sim::Seconds(4), sim::Seconds(14),
                          sim::Seconds(1), /*duty_up=*/0.8);
  const harness::RunOutcome o =
      harness::RunWorkload(harness::EngineKind::kMuxWise, Llama70bA100(),
                           *trace_, estimator_, config);
  EXPECT_TRUE(o.diagnostic.empty()) << o.diagnostic;
  ASSERT_TRUE(o.fleet_active);
  EXPECT_EQ(o.split.total(), o.total);
  EXPECT_GT(o.fleet.health_transitions, 0u);  // The FSM saw the flap...
  EXPECT_EQ(o.fleet.failovers, 0u);           // ...and absorbed it.
  EXPECT_EQ(o.fleet.rehome_shed, 0u);
}

TEST_F(FleetGreyTest, FlapDetectionDisabledIsInvisibleToTheRouter) {
  harness::RunConfig config = GreyConfig();
  config.fleet.health.partition_detection = false;
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Flap(1, sim::Seconds(4), sim::Seconds(14),
                          sim::Seconds(1), /*duty_up=*/0.8);
  const harness::RunOutcome o =
      harness::RunWorkload(harness::EngineKind::kMuxWise, Llama70bA100(),
                           *trace_, estimator_, config);
  EXPECT_TRUE(o.diagnostic.empty()) << o.diagnostic;
  EXPECT_EQ(o.split.total(), o.total);
  EXPECT_EQ(o.fleet.failovers, 0u);
}

TEST_F(FleetGreyTest, AsymmetricSilenceFailsOverExactlyOnce) {
  // replica->router cut: the replica keeps serving but its heartbeats
  // vanish, so deadline detection fires against a live instance —
  // exactly one failover, and after the heal it rejoins with no second
  // Down edge.
  harness::RunConfig config = GreyConfig();
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Partition(1, sim::Seconds(4), sim::Seconds(16),
                               /*drop_to=*/false, /*drop_from=*/true);
  const harness::RunOutcome o =
      harness::RunWorkload(harness::EngineKind::kMuxWise, Llama70bA100(),
                           *trace_, estimator_, config);
  EXPECT_TRUE(o.diagnostic.empty()) << o.diagnostic;
  ASSERT_TRUE(o.fleet_active);
  EXPECT_EQ(o.split.total(), o.total);
  EXPECT_EQ(o.fleet.failovers, 1u);
  EXPECT_EQ(o.fleet.zombie_downs, 0u);  // The deadline path, not the lie.
  ASSERT_EQ(o.fleet.failover_latency.count, 1u);
  // Silence onset -> Down takes down_after_misses beats (+1 of phase).
  const double bound_ms =
      250.0 * (config.fleet.health.down_after_misses + 1);
  EXPECT_LE(o.fleet.failover_latency.p99_ms, bound_ms);
}

TEST_F(FleetGreyTest, PartitionDetectionDisabledNeverFailsOver) {
  harness::RunConfig config = GreyConfig();
  config.fleet.health.partition_detection = false;
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Partition(1, sim::Seconds(4), sim::Seconds(16),
                               /*drop_to=*/false, /*drop_from=*/true);
  const harness::RunOutcome o =
      harness::RunWorkload(harness::EngineKind::kMuxWise, Llama70bA100(),
                           *trace_, estimator_, config);
  EXPECT_TRUE(o.diagnostic.empty()) << o.diagnostic;
  EXPECT_EQ(o.split.total(), o.total);
  EXPECT_EQ(o.fleet.failovers, 0u);
}

TEST_F(FleetGreyTest, GreyChaosRunsAreBitReproducible) {
  harness::RunConfig config = GreyConfig();
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Zombie(1, sim::Seconds(4), sim::Seconds(12))
      .Flap(2, sim::Seconds(6), sim::Seconds(12), sim::Seconds(1), 0.8)
      .Degrade(0, sim::Seconds(2), sim::Seconds(8), 0.7, 0.8)
      .Partition(2, sim::Seconds(13), sim::Seconds(16), false, true);
  const harness::DeterminismReport report = harness::VerifyDeterminism(
      harness::EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      config);
  EXPECT_TRUE(report.deterministic) << report.mismatch;
}

}  // namespace
}  // namespace muxwise
