#include "core/dispatcher.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/estimator.h"
#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"

namespace muxwise::core {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

class DispatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new ContentionEstimator(
        ContentionEstimator::BuildOffline(Llama70bA100()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }

  SloAwareDispatcher MakeDispatcher(
      SloAwareDispatcher::Options options = SloAwareDispatcher::Options()) {
    return SloAwareDispatcher(Llama70bA100(), estimator_, options);
  }

  static ContentionEstimator* estimator_;
};

ContentionEstimator* DispatcherTest::estimator_ = nullptr;

TEST_F(DispatcherTest, NoPrefillGivesDecodeTheFullDevice) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const std::vector<std::int64_t> ctx(32, 2048);
  EXPECT_EQ(dispatcher.ChooseDecodeSms(ctx, false, PrefillDesc{}), 108);
}

TEST_F(DispatcherTest, EmptyDecodeKeepsMinimalReservation) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  EXPECT_EQ(dispatcher.ChooseDecodeSms({}, true, PrefillDesc{4096, 0}), 16);
}

TEST_F(DispatcherTest, PicksSmallestPartitionMeetingSlo) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const PrefillDesc prefill{8192, 8192};
  const std::vector<std::int64_t> small(4, 1024);
  const std::vector<std::int64_t> large(128, 16384);
  const int sms_small = dispatcher.ChooseDecodeSms(small, true, prefill);
  const int sms_large = dispatcher.ChooseDecodeSms(large, true, prefill);
  EXPECT_LT(sms_small, 108);
  EXPECT_LE(sms_small, sms_large);
  // Best-fit: the chosen partition meets the SLO, the next smaller
  // option does not (or the chosen one is the smallest).
  const sim::Duration budget =
      Llama70bA100().slo.tbt - dispatcher.options().tbt_margin;
  EXPECT_LE(estimator_->WorstCaseDecode(small, sms_small, prefill), budget);
  if (sms_small > 16) {
    EXPECT_GT(estimator_->WorstCaseDecode(small, sms_small - 16, prefill),
              budget);
  }
}

TEST_F(DispatcherTest, HeavierDecodeNeedsMoreSms) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const PrefillDesc prefill{8192, 0};
  const std::vector<std::int64_t> light(8, 1024);
  const std::vector<std::int64_t> heavy(192, 8192);
  EXPECT_LT(dispatcher.ChooseDecodeSms(light, true, prefill),
            dispatcher.ChooseDecodeSms(heavy, true, prefill));
}

TEST_F(DispatcherTest, ImpossibleSloFallsBackToLargestMultiplexedOption) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  // A decode batch so heavy no partition can meet 100 ms.
  const std::vector<std::int64_t> monster(256, 131072);
  const int sms =
      dispatcher.ChooseDecodeSms(monster, true, PrefillDesc{8192, 0});
  EXPECT_EQ(sms, 96);  // Largest sub-device option on A100.
}

TEST_F(DispatcherTest, PrefillLayerCountCoversDecodeIteration) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const std::vector<llm::SeqWork> batch = {llm::SeqWork{8192, 0}};
  const sim::Duration phase = estimator_->PredictPrefill(batch, 60);
  const sim::Duration decode_estimate = phase / 10;  // A tenth of a phase.
  const int layers =
      dispatcher.PrefillLayersToLaunch(decode_estimate, batch, 60, 80);
  EXPECT_EQ(layers, 8);  // ceil(80/10).
}

TEST_F(DispatcherTest, PrefillLayersClampedToRemaining) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const std::vector<llm::SeqWork> batch = {llm::SeqWork{512, 0}};
  const int layers = dispatcher.PrefillLayersToLaunch(
      sim::Seconds(10), batch, 92, 5);  // Huge decode estimate.
  EXPECT_EQ(layers, 5);
}

TEST_F(DispatcherTest, IdleDecodeUsesIdleGroupSize) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const std::vector<llm::SeqWork> batch = {llm::SeqWork{4096, 0}};
  EXPECT_EQ(dispatcher.PrefillLayersToLaunch(0, batch, 92, 80),
            dispatcher.options().idle_layer_group);
}

TEST_F(DispatcherTest, PreemptionRequiresIncomingDeadlinePressure) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const sim::Time now = sim::Seconds(10);
  // Active prefill finishes quickly: incoming meets TTFT by waiting.
  EXPECT_FALSE(dispatcher.ShouldPreempt(
      now, /*active_remaining=*/sim::Milliseconds(50), false,
      /*active_deadline=*/now + sim::Seconds(5),
      /*incoming_duration=*/sim::Milliseconds(100),
      /*incoming_deadline=*/now + sim::Milliseconds(500)));
}

TEST_F(DispatcherTest, PreemptsLongPrefillForShortRequest) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const sim::Time now = sim::Seconds(10);
  // A long LooGLE-style prefill (2 s left, generous length-scaled
  // deadline) blocks a short chat request whose 500 ms deadline would
  // be missed by waiting but met by preempting.
  EXPECT_TRUE(dispatcher.ShouldPreempt(
      now, /*active_remaining=*/sim::Seconds(2), false,
      /*active_deadline=*/now + sim::Seconds(10),
      /*incoming_duration=*/sim::Milliseconds(100),
      /*incoming_deadline=*/now + sim::Milliseconds(500)));
}

TEST_F(DispatcherTest, NoRecursivePreemption) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const sim::Time now = sim::Seconds(10);
  EXPECT_FALSE(dispatcher.ShouldPreempt(
      now, sim::Seconds(2), /*active_is_preemptor=*/true,
      now + sim::Seconds(10), sim::Milliseconds(100),
      now + sim::Milliseconds(500)));
}

TEST_F(DispatcherTest, NoPreemptionIfActiveWouldMissItsDeadline) {
  SloAwareDispatcher dispatcher = MakeDispatcher();
  const sim::Time now = sim::Seconds(10);
  // Active batch already near its TTFT deadline: preempting dooms it.
  EXPECT_FALSE(dispatcher.ShouldPreempt(
      now, sim::Milliseconds(300), false,
      /*active_deadline=*/now + sim::Milliseconds(400),
      /*incoming_duration=*/sim::Milliseconds(250),
      /*incoming_deadline=*/now + sim::Milliseconds(500)));
}

TEST_F(DispatcherTest, PreemptionDisabledByOption) {
  SloAwareDispatcher::Options options;
  options.preemption = false;
  SloAwareDispatcher dispatcher = MakeDispatcher(options);
  const sim::Time now = sim::Seconds(10);
  EXPECT_FALSE(dispatcher.ShouldPreempt(
      now, sim::Seconds(2), false, now + sim::Seconds(10),
      sim::Milliseconds(100), now + sim::Milliseconds(500)));
}

}  // namespace
}  // namespace muxwise::core
