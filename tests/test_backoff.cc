#include "sim/backoff.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace muxwise::sim {
namespace {

TEST(BackoffTest, FirstAttemptPaysTheInitialDelay) {
  const ExponentialBackoff policy{Milliseconds(2), 2.0, kTimeNever};
  EXPECT_EQ(BackoffDelay(policy, 1), Milliseconds(2));
}

TEST(BackoffTest, DoublesPerAttemptLikeTheLegacyChannelLoop) {
  // The exact series the Interconnect retry path computed inline
  // before the helper existed: initial * 2^(attempt-1).
  const ExponentialBackoff policy{Milliseconds(2), 2.0, kTimeNever};
  EXPECT_EQ(BackoffDelay(policy, 2), Milliseconds(4));
  EXPECT_EQ(BackoffDelay(policy, 3), Milliseconds(8));
  EXPECT_EQ(BackoffDelay(policy, 4), Milliseconds(16));
  EXPECT_EQ(BackoffDelay(policy, 10), Milliseconds(1024));
}

TEST(BackoffTest, CapClampsAndStaysClamped) {
  const ExponentialBackoff policy{Milliseconds(10), 2.0, Milliseconds(80)};
  EXPECT_EQ(BackoffDelay(policy, 1), Milliseconds(10));
  EXPECT_EQ(BackoffDelay(policy, 2), Milliseconds(20));
  EXPECT_EQ(BackoffDelay(policy, 3), Milliseconds(40));
  EXPECT_EQ(BackoffDelay(policy, 4), Milliseconds(80));
  EXPECT_EQ(BackoffDelay(policy, 5), Milliseconds(80));
  EXPECT_EQ(BackoffDelay(policy, 50), Milliseconds(80));
}

TEST(BackoffTest, CapBelowInitialWinsImmediately) {
  const ExponentialBackoff policy{Milliseconds(100), 2.0, Milliseconds(30)};
  EXPECT_EQ(BackoffDelay(policy, 1), Milliseconds(30));
  EXPECT_EQ(BackoffDelay(policy, 3), Milliseconds(30));
}

TEST(BackoffTest, NonDoublingMultiplierScalesGeometrically) {
  const ExponentialBackoff policy{Milliseconds(100), 1.5, kTimeNever};
  EXPECT_EQ(BackoffDelay(policy, 1), Milliseconds(100));
  EXPECT_EQ(BackoffDelay(policy, 2), Milliseconds(150));
  EXPECT_EQ(BackoffDelay(policy, 3), Milliseconds(225));
}

TEST(BackoffTest, UnitMultiplierIsAConstantDelay) {
  const ExponentialBackoff policy{Milliseconds(7), 1.0, kTimeNever};
  EXPECT_EQ(BackoffDelay(policy, 1), Milliseconds(7));
  EXPECT_EQ(BackoffDelay(policy, 100), Milliseconds(7));
}

TEST(BackoffTest, OverflowSaturatesAtTheCapInsteadOfWrapping) {
  // 2^62 ns doublings overflow int64 within ~70 attempts; the helper
  // must saturate at the cap, never wrap negative.
  const ExponentialBackoff policy{Seconds(1), 2.0, kTimeNever};
  const Duration huge = BackoffDelay(policy, 200);
  EXPECT_EQ(huge, kTimeNever);
  const ExponentialBackoff capped{Seconds(1), 2.0, Seconds(30)};
  EXPECT_EQ(BackoffDelay(capped, 200), Seconds(30));
}

TEST(BackoffTest, DelaysAreMonotonicallyNonDecreasing) {
  const ExponentialBackoff policy{Milliseconds(3), 1.7, Seconds(2)};
  Duration previous = 0;
  for (int attempt = 1; attempt <= 64; ++attempt) {
    const Duration delay = BackoffDelay(policy, attempt);
    EXPECT_GE(delay, previous) << "attempt " << attempt;
    EXPECT_LE(delay, Seconds(2));
    previous = delay;
  }
}

}  // namespace
}  // namespace muxwise::sim
