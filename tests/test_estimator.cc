#include "core/estimator.h"

#include <gtest/gtest.h>

#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"

namespace muxwise::core {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

class EstimatorTest : public ::testing::Test {
 protected:
  // Offline profiling is deterministic; share one instance per suite.
  static void SetUpTestSuite() {
    estimator_ = new ContentionEstimator(
        ContentionEstimator::BuildOffline(Llama70bA100()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }

  static ContentionEstimator* estimator_;
};

ContentionEstimator* EstimatorTest::estimator_ = nullptr;

TEST_F(EstimatorTest, OfflineProfilingPopulatesGuardGrid) {
  // Partitions x prefill grid x batch x context cells.
  EXPECT_GT(estimator_->guard_cells(), 500u);
}

TEST_F(EstimatorTest, GuardFactorsWithinPaperRange) {
  // Paper §3.3.2: measured slowdown stays within ~20% on A100 (we allow
  // the interference + bandwidth-sharing envelope of the simulator).
  EXPECT_GE(estimator_->MaxGuard(), 1.0);
  EXPECT_LE(estimator_->MaxGuard(), 1.60);
}

TEST_F(EstimatorTest, WorstCaseIsAtLeastSolo) {
  const std::vector<std::int64_t> ctx(32, 4096);
  for (int sms : {16, 48, 96}) {
    const sim::Duration solo = estimator_->PredictDecodeSolo(ctx, sms);
    const sim::Duration worst = estimator_->WorstCaseDecode(
        ctx, sms, PrefillDesc{8192, 8192});
    EXPECT_GE(worst, solo) << "sms=" << sms;
    EXPECT_LE(worst, static_cast<sim::Duration>(1.8 * solo)) << "sms=" << sms;
  }
}

TEST_F(EstimatorTest, NoPrefillMeansNoGuardInflationBeyondFitError) {
  const std::vector<std::int64_t> ctx(16, 2048);
  const sim::Duration solo = estimator_->PredictDecodeSolo(ctx, 96);
  const sim::Duration worst =
      estimator_->WorstCaseDecode(ctx, 96, PrefillDesc{0, 0});
  EXPECT_LE(worst, static_cast<sim::Duration>(1.25 * solo));
}

TEST_F(EstimatorTest, CellKeyBucketsArePowersOfFour) {
  const ContentionEstimator::CellKey a =
      estimator_->CellFor(PrefillDesc{2048, 0}, 32, 4096, 48);
  const ContentionEstimator::CellKey b =
      estimator_->CellFor(PrefillDesc{4000, 0}, 32, 4096, 48);
  EXPECT_EQ(a, b);  // Same power-of-4 bucket.
  const ContentionEstimator::CellKey c =
      estimator_->CellFor(PrefillDesc{16384, 0}, 32, 4096, 48);
  EXPECT_NE(a, c);
  const ContentionEstimator::CellKey d =
      estimator_->CellFor(PrefillDesc{2048, 0}, 32, 4096, 64);
  EXPECT_NE(a, d);  // Partition is part of the key.
}

TEST(EstimatorOnlineTest, ObservationsRaiseTheGuard) {
  ContentionEstimator estimator =
      ContentionEstimator::BuildOffline(Llama70bA100());
  const ContentionEstimator::CellKey cell =
      estimator.CellFor(PrefillDesc{2048, 2048}, 8, 2048, 48);
  const double before = estimator.GuardFor(cell);
  EXPECT_FALSE(estimator.ObserveDecode(cell, before - 0.01));
  EXPECT_DOUBLE_EQ(estimator.GuardFor(cell), before);
  EXPECT_TRUE(estimator.ObserveDecode(cell, before + 0.25));
  EXPECT_DOUBLE_EQ(estimator.GuardFor(cell), before + 0.25);
  EXPECT_EQ(estimator.observations(), 2u);
  EXPECT_EQ(estimator.guard_raises(), 1u);
}

TEST(EstimatorOnlineTest, UnprofiledCellUsesDefaultGuard) {
  ContentionEstimator::Options options;
  options.default_guard = 1.42;
  ContentionEstimator estimator =
      ContentionEstimator::BuildOffline(Llama70bA100(), options);
  // A cell far outside the profiling grid (tiny prefill, tiny context).
  const ContentionEstimator::CellKey cell =
      estimator.CellFor(PrefillDesc{4, 0}, 1, 4, 16);
  EXPECT_DOUBLE_EQ(estimator.GuardFor(cell), 1.42);
}

TEST(EstimatorOnlineTest, PrefillPredictionUsable) {
  ContentionEstimator estimator =
      ContentionEstimator::BuildOffline(Llama70bA100());
  const std::vector<llm::SeqWork> batch = {llm::SeqWork{4096, 0}};
  const sim::Duration t16 = estimator.PredictPrefill(batch, 16);
  const sim::Duration t92 = estimator.PredictPrefill(batch, 92);
  EXPECT_GT(t16, t92);
  EXPECT_GT(t92, 0);
}

}  // namespace
}  // namespace muxwise::core
