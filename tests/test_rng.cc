#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace muxwise::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent(42);
  Rng c1 = parent.Fork("workload");
  Rng c2 = Rng(42).Fork("workload");
  Rng other = parent.Fork("arrivals");
  EXPECT_DOUBLE_EQ(c1.Uniform(), c2.Uniform());
  EXPECT_NE(c1.Uniform(), other.Uniform());
}

TEST(RngTest, ForkLabelsAvalanche) {
  Rng parent(42);
  Rng a = parent.Fork("a");
  Rng b = parent.Fork("b");
  EXPECT_NE(a.seed(), b.seed());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.UniformInt(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(3);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.15);
}

TEST(RngTest, BernoulliProbabilityApproximatelyCorrect) {
  Rng rng(5);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(9);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

class BoundedLogNormalTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(BoundedLogNormalTest, CalibratedMeanAndBounds) {
  const auto [min, mean, max] = GetParam();
  BoundedLogNormal dist(min, mean, max);
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    const double x = dist.Sample(rng);
    ASSERT_GE(x, min);
    ASSERT_LE(x, max);
    sum += x;
  }
  const double realized = sum / kN;
  // Calibration targets the clamped mean within a few percent.
  EXPECT_NEAR(realized / mean, 1.0, 0.06)
      << "min=" << min << " mean=" << mean << " max=" << max;
}

// Parameters straight from the paper's Table 1 length columns.
INSTANTIATE_TEST_SUITE_P(
    Table1Distributions, BoundedLogNormalTest,
    ::testing::Values(
        std::make_tuple(4.0, 226.0, 1024.0),      // ShareGPT input.
        std::make_tuple(4.0, 195.0, 1838.0),      // ShareGPT output.
        std::make_tuple(3380.0, 30000.0, 81000.0),  // LooGLE input.
        std::make_tuple(2.0, 15.0, 326.0),        // LooGLE output.
        std::make_tuple(684.0, 8374.0, 32000.0),  // OpenThoughts output.
        std::make_tuple(1.0, 342.0, 2000.0),      // Conversation output.
        std::make_tuple(1.0, 182.0, 2000.0)));    // Tool&Agent output.

TEST(BoundedLogNormalTest, DegenerateRangeReturnsConstant) {
  BoundedLogNormal dist(100.0, 100.0, 100.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(dist.Sample(rng), 100.0);
}

TEST(BoundedLogNormalTest, ConstructionIsDeterministic) {
  BoundedLogNormal a(4.0, 226.0, 1024.0);
  BoundedLogNormal b(4.0, 226.0, 1024.0);
  EXPECT_DOUBLE_EQ(a.mu(), b.mu());
  EXPECT_DOUBLE_EQ(a.sigma(), b.sigma());
}

}  // namespace
}  // namespace muxwise::sim
