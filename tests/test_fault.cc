#include "fault/injector.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/chunked_prefill.h"
#include "baselines/loongserve.h"
#include "baselines/static_disagg.h"
#include "engine_test_util.h"
#include "fault/fault_plan.h"
#include "fault/recovery.h"
#include "gpu/cluster.h"
#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "serve/frontend.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "workload/datasets.h"

namespace muxwise::fault {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

// ---------------------------------------------------------------- plans

TEST(FaultPlanTest, FluentBuilderAccumulatesEntries) {
  FaultPlan plan;
  plan.Crash(0, sim::Seconds(30), sim::Seconds(45))
      .Straggle(1, sim::Seconds(50), sim::Seconds(60), 2.0)
      .DropTransfers(sim::Seconds(0), sim::Seconds(120), 0.01);
  EXPECT_FALSE(plan.Empty());
  ASSERT_EQ(plan.crashes.size(), 1u);
  ASSERT_EQ(plan.stragglers.size(), 1u);
  ASSERT_EQ(plan.transfer_faults.size(), 1u);
  EXPECT_EQ(plan.crashes[0].recover_at, sim::Seconds(45));
  plan.Validate();  // Well-formed plan must not abort.
  const std::string text = plan.Describe();
  EXPECT_NE(text.find("crash"), std::string::npos);
}

TEST(FaultPlanDeathTest, ValidateRejectsInvertedStragglerWindow) {
  FaultPlan plan;
  plan.Straggle(0, sim::Seconds(10), sim::Seconds(5), 2.0);
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1), "");
}

TEST(FaultPlanDeathTest, ValidateRejectsRecoveryBeforeCrash) {
  FaultPlan plan;
  plan.Crash(0, sim::Seconds(10), sim::Seconds(5));
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1), "");
}

TEST(FaultPlanDeathTest, ValidateRejectsRecoveryAtTheCrashInstant) {
  // recover_at == at silently produced an always-down instance before
  // the strictly-later rule; regression-pin the rejection.
  FaultPlan plan;
  plan.Crash(0, sim::Seconds(10), sim::Seconds(10));
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1), "");
}

TEST(FaultPlanDeathTest, ValidateRejectsOverlappingCrashWindows) {
  // The second crash fires before the first recovery: the injected
  // event order would resurrect the instance with a stale recovery.
  FaultPlan plan;
  plan.Crash(0, sim::Seconds(10), sim::Seconds(40))
      .Crash(0, sim::Seconds(20), sim::Seconds(30));
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1), "");
}

TEST(FaultPlanDeathTest, ValidateRejectsCrashAfterNeverRecoveringCrash) {
  // A crash scheduled after a never-recovering crash of the same
  // instance can never fire against a live instance.
  FaultPlan plan;
  plan.Crash(0, sim::Seconds(10))  // kTimeNever: never recovers.
      .Crash(0, sim::Seconds(50), sim::Seconds(60));
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1), "");
}

TEST(FaultPlanTest, ValidateAcceptsSequentialCrashWindowsPerInstance) {
  FaultPlan plan;
  plan.Crash(0, sim::Seconds(10), sim::Seconds(20))
      .Crash(0, sim::Seconds(20), sim::Seconds(30))  // Back-to-back OK.
      .Crash(1, sim::Seconds(15), sim::Seconds(25))  // Other instance.
      .Crash(1, sim::Seconds(40));                   // Final, never back.
  plan.Validate();  // Must not abort.
}

// ------------------------------------------------- grey-failure plans

TEST(FaultPlanTest, GreyKindsBuildValidateAndDescribe) {
  // One well-formed entry per grey kind (and both link-targeted
  // flavours); a clean Validate() is the positive fixture the death
  // tests below are the negatives of.
  FaultPlan plan;
  plan.Zombie(1, sim::Seconds(5), sim::Seconds(10))
      .Flap(2, sim::Seconds(12), sim::Seconds(20), sim::Seconds(2), 0.5)
      .FlapLink(sim::Seconds(1), sim::Seconds(3), sim::Milliseconds(500), 0.6)
      .Degrade(0, sim::Seconds(4), sim::Seconds(9), 0.5, 0.7)
      .DegradeLink(sim::Seconds(10), sim::Seconds(15), 0.5)
      .Partition(1, sim::Seconds(21), sim::Seconds(25), /*drop_to=*/true,
                 /*drop_from=*/false)
      .Partition(2, sim::Seconds(21), sim::Seconds(25), /*drop_to=*/false,
                 /*drop_from=*/true);
  EXPECT_FALSE(plan.Empty());
  plan.Validate();  // Must not abort.
  const std::string text = plan.Describe();
  EXPECT_NE(text.find("zombie instance 1"), std::string::npos) << text;
  EXPECT_NE(text.find("flap link"), std::string::npos) << text;
  EXPECT_NE(text.find("degrade instance 0"), std::string::npos) << text;
  EXPECT_NE(text.find("router->replica"), std::string::npos) << text;
  EXPECT_NE(text.find("replica->router"), std::string::npos) << text;
}

TEST(FaultPlanDeathTest, ValidateRejectsInvertedZombieWindow) {
  FaultPlan plan;
  plan.Zombie(0, sim::Seconds(10), sim::Seconds(5));
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "inverted zombie window");
}

TEST(FaultPlanDeathTest, ValidateRejectsNeverEndingZombieWindow) {
  // A frozen device that never thaws strands its in-flight work, so the
  // run could never drain; the plan must say when the zombie ends.
  FaultPlan plan;
  plan.Zombie(2, sim::Seconds(10), sim::kTimeNever);
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "zombie window on instance 2 never ends");
}

TEST(FaultPlanDeathTest, ValidateRejectsOverlappingZombieWindows) {
  FaultPlan plan;
  plan.Zombie(0, sim::Seconds(5), sim::Seconds(15))
      .Zombie(0, sim::Seconds(10), sim::Seconds(20));
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "overlapping zombie windows on instance 0");
}

TEST(FaultPlanTest, ZombieWindowsOnDistinctInstancesMayOverlap) {
  FaultPlan plan;
  plan.Zombie(0, sim::Seconds(5), sim::Seconds(15))
      .Zombie(1, sim::Seconds(10), sim::Seconds(20));
  plan.Validate();  // Overlap is only a defect per target.
}

TEST(FaultPlanDeathTest, ValidateRejectsNonPositiveFlapPeriod) {
  FaultPlan plan;
  plan.Flap(0, sim::Seconds(5), sim::Seconds(10), sim::Seconds(0), 0.5);
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "flap period");
}

TEST(FaultPlanDeathTest, ValidateRejectsFlapDutyCycleAtTheBoundary) {
  // duty_up == 1 would be a no-op flap, duty_up == 0 a plain outage;
  // both are misuses of the kind, rejected rather than silently odd.
  FaultPlan plan;
  plan.Flap(0, sim::Seconds(5), sim::Seconds(10), sim::Seconds(1), 1.0);
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "flap duty cycle");
}

TEST(FaultPlanDeathTest, ValidateRejectsDegradeFactorOutsideUnitInterval) {
  FaultPlan plan;
  plan.Degrade(0, sim::Seconds(5), sim::Seconds(10), 1.5, 0.5);
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "degrade factors");
}

TEST(FaultPlanDeathTest, ValidateRejectsZeroDegradeFactor) {
  // Factor 0 is an outage, not a degradation (and divides by zero in
  // the wire-time model); the kind's domain is (0, 1].
  FaultPlan plan;
  plan.Degrade(0, sim::Seconds(5), sim::Seconds(10), 1.0, 0.0);
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "degrade factors");
}

TEST(FaultPlanDeathTest, ValidateRejectsLinkDegradeWithFlopsFactor) {
  FaultPlan plan;
  plan.degrades.push_back({0, /*link=*/true, sim::Seconds(5),
                           sim::Seconds(10), /*flops_factor=*/0.5,
                           /*bandwidth_factor=*/0.5});
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "link degrade carries flops_factor");
}

TEST(FaultPlanDeathTest, ValidateRejectsPartitionDroppingBothDirections) {
  FaultPlan plan;
  plan.Partition(1, sim::Seconds(5), sim::Seconds(10), /*drop_to=*/true,
                 /*drop_from=*/true);
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "drops both directions");
}

TEST(FaultPlanDeathTest, ValidateRejectsPartitionDroppingNeitherDirection) {
  FaultPlan plan;
  plan.Partition(1, sim::Seconds(5), sim::Seconds(10), /*drop_to=*/false,
                 /*drop_from=*/false);
  EXPECT_EXIT(plan.Validate(), ::testing::ExitedWithCode(1),
              "drops neither direction");
}

// ------------------------------------------------------------- deadlines

TEST(RecoveryPolicyTest, DisabledPolicyNeverExpires) {
  const workload::SloTargets slo;
  workload::RequestSpec spec;
  spec.input_tokens = 500;
  spec.output_tokens = 100;
  RecoveryPolicy policy;  // Disabled by default.
  EXPECT_EQ(RequestDeadline(sim::Seconds(1), spec, slo, policy),
            sim::kTimeNever);
}

TEST(RecoveryPolicyTest, DeadlineScalesWithRequestLength) {
  const workload::SloTargets slo;
  RecoveryPolicy policy;
  policy.enabled = true;
  workload::RequestSpec small;
  small.input_tokens = 100;
  small.output_tokens = 10;
  workload::RequestSpec large;
  large.input_tokens = 4000;
  large.output_tokens = 400;
  const sim::Time arrival = sim::Seconds(2);
  const sim::Time d_small = RequestDeadline(arrival, small, slo, policy);
  const sim::Time d_large = RequestDeadline(arrival, large, slo, policy);
  EXPECT_GT(d_small, arrival);
  EXPECT_GT(d_large, d_small);  // Longer requests earn more patience.
}

// ------------------------------------------------- interconnect faults

TEST(InterconnectFaultTest, PermanentLossExhaustsAttemptsWithBackoff) {
  sim::Simulator simulator;
  gpu::Interconnect link(&simulator, "test/link", 600e9, 0);
  gpu::Interconnect::FaultModel model;
  model.failure_probability = 0.999999;  // Every attempt is lost.
  model.max_attempts = 2;
  model.initial_backoff = sim::Milliseconds(2);
  link.EnableFaults(model, sim::Rng(7));
  sim::Time failed_at = -1;
  bool done_fired = false;
  link.Transfer(
      600e6, [&] { done_fired = true; }, [&] { failed_at = simulator.Now(); });
  simulator.Run();
  EXPECT_FALSE(done_fired);
  // Attempt 1 occupies the wire [0, 1 ms), backs off 2 ms; attempt 2
  // starts at 3 ms and fails permanently when its wire time ends.
  EXPECT_NEAR(sim::ToMilliseconds(failed_at), 4.0, 0.001);
  EXPECT_EQ(link.attempts_failed(), 2u);
  EXPECT_EQ(link.transfers_failed(), 1u);
  EXPECT_EQ(link.transfers_completed(), 0u);
  EXPECT_DOUBLE_EQ(link.bytes_transferred(), 0.0);  // Counted at success.
}

TEST(InterconnectFaultTest, LossyLinkConservesTransferAccounting) {
  sim::Simulator simulator;
  gpu::Interconnect link(&simulator, "test/link", 600e9, 0);
  gpu::Interconnect::FaultModel model;
  model.failure_probability = 0.5;
  model.max_attempts = 3;
  model.initial_backoff = sim::Microseconds(100);
  link.EnableFaults(model, sim::Rng(11));
  std::size_t done = 0, failed = 0;
  constexpr int kTransfers = 100;
  for (int i = 0; i < kTransfers; ++i) {
    link.Transfer(1e6, [&] { ++done; }, [&] { ++failed; });
  }
  simulator.Run();
  EXPECT_EQ(done + failed, static_cast<std::size_t>(kTransfers));
  EXPECT_GT(done, 0u);    // At p=0.5 with 3 attempts most succeed...
  EXPECT_GT(failed, 0u);  // ...but 100 transfers see some p^3 streaks.
  EXPECT_EQ(link.transfers_completed(), done);
  EXPECT_EQ(link.transfers_failed(), failed);
  EXPECT_DOUBLE_EQ(link.bytes_transferred(), 1e6 * static_cast<double>(done));
}

TEST(InterconnectFaultTest, UnarmedLinkBehaviorIsUnchanged) {
  // A link that never had EnableFaults() called must take the exact
  // fault-free path: same completion time, no failure accounting.
  sim::Simulator simulator;
  gpu::Interconnect link(&simulator, "test/link", 600e9,
                         sim::Microseconds(10));
  sim::Time done = -1;
  link.Transfer(600e6, [&] { done = simulator.Now(); });
  simulator.Run();
  EXPECT_NEAR(sim::ToMilliseconds(done), 1.01, 0.001);
  EXPECT_EQ(link.attempts_failed(), 0u);
  EXPECT_EQ(link.transfers_failed(), 0u);
}

// ------------------------------------------------------- gpu fault hooks

TEST(GpuFaultTest, StragglerSlowdownStretchesRealizedDurations) {
  sim::Simulator simulator;
  gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
  const gpu::StreamId stream = device.CreateStream(108);
  device.SetSlowdown(2.0);
  sim::Time done = -1;
  device.Launch(stream, gpu::Kernel::Memcpy(2.039e9),
                [&] { done = simulator.Now(); });
  simulator.Run();
  // The same memcpy takes ~1 ms at full speed (see test_cluster.cc).
  EXPECT_NEAR(sim::ToMilliseconds(done), 2.0, 0.05);
  device.SetSlowdown(1.0);
  EXPECT_DOUBLE_EQ(device.slowdown(), 1.0);
}

TEST(GpuFaultTest, AbortAllDropsInFlightCompletions) {
  sim::Simulator simulator;
  gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
  const gpu::StreamId stream = device.CreateStream(108);
  bool fired = false;
  device.Launch(stream, gpu::Kernel::Memcpy(2.039e9), [&] { fired = true; });
  simulator.ScheduleAt(sim::Microseconds(100),
                       [&] { EXPECT_EQ(device.AbortAll(), 1u); });
  simulator.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(device.kernels_aborted(), 1u);
}

// ------------------------------------------------------------- injector

TEST(FaultInjectorTest, DeliversPlanAndCountsSkippedWindows) {
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  baselines::ChunkedPrefillEngine::Options options;
  options.token_budget = 256;
  options.recovery.enabled = true;
  baselines::ChunkedPrefillEngine engine(&simulator, d, options);

  FaultPlan plan;
  plan.Crash(0, sim::Seconds(2), sim::Seconds(3))
      .Straggle(0, sim::Seconds(4), sim::Seconds(5), 2.0)
      .DropTransfers(sim::Seconds(0), sim::Seconds(10), 0.01);
  RecoveryPolicy policy;
  policy.enabled = true;
  FaultInjector injector(&simulator, plan, policy);
  injector.Arm(engine);

  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 41);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(engine.InFlight(), 0u);

  EXPECT_EQ(injector.crashes_injected(), 1u);
  EXPECT_EQ(injector.recoveries_injected(), 1u);
  EXPECT_EQ(injector.straggler_edges_injected(), 2u);
  EXPECT_EQ(injector.transfer_edges_injected(), 0u);
  EXPECT_EQ(injector.windows_skipped(), 1u);  // Chunked has no link.

  check::InvariantRegistry registry;
  injector.RegisterAudits(registry);
  EXPECT_TRUE(registry.RunAll().empty());
}

TEST(FaultInjectorTest, DeliversGreyEdgesAndSkipsLinklessLinkWindows) {
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  baselines::ChunkedPrefillEngine::Options options;
  options.token_budget = 256;
  options.recovery.enabled = true;
  baselines::ChunkedPrefillEngine engine(&simulator, d, options);

  FaultPlan plan;
  plan.Zombie(0, sim::Seconds(2), sim::Seconds(3))
      .Degrade(0, sim::Seconds(1), sim::Seconds(2), 0.8, 0.9)
      .Flap(0, sim::Seconds(4), sim::Seconds(5), sim::Milliseconds(500), 0.5)
      .Partition(0, sim::Seconds(6), sim::Seconds(7), /*drop_to=*/false,
                 /*drop_from=*/true)
      .FlapLink(sim::Seconds(1), sim::Seconds(2), sim::Milliseconds(500), 0.5)
      .DegradeLink(sim::Seconds(3), sim::Seconds(4), 0.5);
  RecoveryPolicy policy;
  policy.enabled = true;
  FaultInjector injector(&simulator, plan, policy);
  injector.Arm(engine);

  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 51);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(engine.InFlight(), 0u);

  EXPECT_EQ(injector.zombie_edges_injected(), 2u);   // Freeze + thaw.
  EXPECT_EQ(injector.degrade_edges_injected(), 2u);  // Begin + restore.
  // The 1 s instance flap at period 500 ms toggles twice: down/up pairs
  // at t=4.0 and t=4.5.
  EXPECT_EQ(injector.flap_edges_injected(), 4u);
  EXPECT_EQ(injector.partition_edges_injected(), 2u);  // Cut + heal.
  // Chunked has no inter-instance link: the link flap and link degrade
  // windows are dropped and counted, not silently half-armed.
  EXPECT_EQ(injector.windows_skipped(), 2u);

  check::InvariantRegistry registry;
  injector.RegisterAudits(registry);
  EXPECT_TRUE(registry.RunAll().empty());
}

// ----------------------------------------------------- engine recovery

TEST(ChunkedRecoveryTest, CrashAndRecoverRetriesLostWork) {
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  baselines::ChunkedPrefillEngine::Options options;
  options.token_budget = 256;
  options.recovery.enabled = true;
  baselines::ChunkedPrefillEngine engine(&simulator, d, options);

  FaultPlan plan;
  plan.Crash(0, sim::Seconds(2), sim::Seconds(4));
  FaultInjector injector(&simulator, plan, options.recovery);
  injector.Arm(engine);

  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 40, 2.0, 42);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(engine.InFlight(), 0u);
  EXPECT_GT(engine.crash_requeues(), 0u);  // The crash hit live work.
  const serve::GoodputSplit split = result.metrics.Split();
  EXPECT_EQ(split.total(), trace.requests.size());
  EXPECT_GT(split.attained, 0u);
}

TEST(ChunkedRecoveryTest, OutageBacklogShedsNewWork) {
  // During a permanent outage nothing admits, so queued KV demand
  // accumulates; once it crosses the shed threshold new arrivals are
  // rejected up front rather than joining a hopeless queue.
  const serve::Deployment d = Llama70bA100();
  double capacity = 0.0;
  {
    sim::Simulator probe;
    baselines::ChunkedPrefillEngine::Options defaults;
    defaults.token_budget = 256;
    baselines::ChunkedPrefillEngine probe_engine(&probe, d, defaults);
    capacity = static_cast<double>(probe_engine.pool().capacity_tokens());
  }
  sim::Simulator simulator;
  baselines::ChunkedPrefillEngine::Options options;
  options.token_budget = 256;
  options.recovery.enabled = true;
  // Shed once ~20K tokens of demand are queued (a fraction of the
  // trace's total), so the run sheds some arrivals but not all.
  options.recovery.shed_demand_factor = 20000.0 / capacity;
  baselines::ChunkedPrefillEngine engine(&simulator, d, options);

  FaultPlan plan;
  plan.Crash(0, sim::Milliseconds(1));  // Never recovers.
  FaultInjector injector(&simulator, plan, options.recovery);
  injector.Arm(engine);

  workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 80, 2.0, 43);
  workload::ResampleArrivalsPoisson(trace, 40.0, 43);  // Burst overload.
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);  // Shed requests are still notified.
  EXPECT_EQ(engine.InFlight(), 0u);
  EXPECT_GT(engine.shed_requests(), 0u);
  EXPECT_GT(engine.timed_out_requests(), 0u);  // The queued ones expire.
  const serve::GoodputSplit split = result.metrics.Split();
  EXPECT_EQ(split.shed, engine.shed_requests());
  EXPECT_EQ(split.attained, 0u);
  EXPECT_EQ(split.total(), trace.requests.size());
}

TEST(ChunkedRecoveryTest, PermanentOutageTimesOutEveryRequest) {
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  baselines::ChunkedPrefillEngine::Options options;
  options.token_budget = 256;
  options.recovery.enabled = true;
  baselines::ChunkedPrefillEngine engine(&simulator, d, options);

  FaultPlan plan;
  plan.Crash(0, sim::Milliseconds(1));  // Never recovers.
  FaultInjector injector(&simulator, plan, options.recovery);
  injector.Arm(engine);

  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 20, 2.0, 44);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);  // Deadlines reap everything.
  EXPECT_EQ(engine.InFlight(), 0u);
  const serve::GoodputSplit split = result.metrics.Split();
  EXPECT_EQ(split.attained, 0u);
  EXPECT_EQ(split.total(), trace.requests.size());
  EXPECT_GT(split.timed_out + split.shed, 0u);
}

TEST(StaticDisaggRecoveryTest, SurvivesCrashesOnBothDomains) {
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  baselines::StaticDisaggEngine::Options options;
  options.recovery.enabled = true;
  baselines::StaticDisaggEngine engine(&simulator, d, options);
  EXPECT_EQ(engine.NumFaultDomains(), 2u);

  FaultPlan plan;
  plan.Crash(0, sim::Seconds(2), sim::Seconds(3))   // Prefill instance.
      .Crash(1, sim::Seconds(6), sim::Seconds(7));  // Decode instance.
  FaultInjector injector(&simulator, plan, options.recovery);
  injector.Arm(engine);

  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 1.5, 45);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(engine.InFlight(), 0u);
  EXPECT_EQ(result.metrics.Split().total(), trace.requests.size());
}

TEST(LoongServeRecoveryTest, SurvivesCrashWithLossyResharding) {
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  baselines::LoongServeEngine::Options options;
  options.recovery.enabled = true;
  baselines::LoongServeEngine engine(&simulator, d, options);

  FaultPlan plan;
  plan.Crash(0, sim::Seconds(2), sim::Seconds(3))
      .DropTransfers(sim::Seconds(0), sim::Seconds(30), 0.05);
  FaultInjector injector(&simulator, plan, options.recovery);
  injector.Arm(engine);
  EXPECT_NE(engine.FaultableLink(), nullptr);

  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 1.5, 46);
  const auto result = testutil::RunTrace(simulator, engine, trace);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(engine.InFlight(), 0u);
  EXPECT_EQ(injector.transfer_edges_injected(), 2u);
  EXPECT_EQ(result.metrics.Split().total(), trace.requests.size());
}

// ------------------------------------------------- drive-loop guards

/** Schedules a zero-delay event loop forever; time never advances. */
class LivelockEngine : public serve::Engine {
 public:
  explicit LivelockEngine(sim::Simulator* sim) : sim_(sim) {}
  const char* name() const override { return "Livelock"; }
  void Enqueue(std::unique_ptr<serve::Request> request) override {
    held_.push_back(std::move(request));
    if (held_.size() == 1) Spin();
  }
  std::size_t InFlight() const override { return held_.size(); }

 private:
  void Spin() {
    sim_->ScheduleAfter(0, [this] { Spin(); });
  }
  sim::Simulator* sim_;
  std::vector<std::unique_ptr<serve::Request>> held_;
};

/** Accepts requests and never schedules or completes anything. */
class BlackHoleEngine : public serve::Engine {
 public:
  const char* name() const override { return "BlackHole"; }
  void Enqueue(std::unique_ptr<serve::Request> request) override {
    held_.push_back(std::move(request));
  }
  std::size_t InFlight() const override { return held_.size(); }

 private:
  std::vector<std::unique_ptr<serve::Request>> held_;
};

TEST(DriveScenarioTest, LivelockedEngineTerminatesWithDiagnostic) {
  sim::Simulator simulator;
  LivelockEngine engine(&simulator);
  serve::MetricsCollector metrics;
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 2, 1.0, 47);
  serve::Frontend frontend(&simulator, &engine, &trace, &metrics);
  frontend.Start();
  harness::RunConfig config;
  config.event_budget = 10'000;  // Small budget so the test is instant.
  const harness::DriveResult result =
      harness::DriveScenario(simulator, frontend, trace, config);
  EXPECT_FALSE(result.stable);
  EXPECT_NE(result.diagnostic.find("livelock"), std::string::npos)
      << result.diagnostic;
}

TEST(DriveScenarioTest, StalledEngineHitsDrainTimeoutWithDiagnostic) {
  sim::Simulator simulator;
  BlackHoleEngine engine;
  serve::MetricsCollector metrics;
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 3, 1.0, 48);
  serve::Frontend frontend(&simulator, &engine, &trace, &metrics);
  frontend.Start();
  const harness::DriveResult result =
      harness::DriveScenario(simulator, frontend, trace,
                             harness::RunConfig());
  EXPECT_FALSE(result.stable);
  EXPECT_NE(result.diagnostic.find("never reached a terminal state"),
            std::string::npos)
      << result.diagnostic;
}

TEST(DriveScenarioTest, HealthyRunIsStableWithNoDiagnostic) {
  sim::Simulator simulator;
  const serve::Deployment d = Llama70bA100();
  baselines::ChunkedPrefillEngine::Options options;
  options.token_budget = 256;
  baselines::ChunkedPrefillEngine engine(&simulator, d, options);
  serve::MetricsCollector metrics;
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 10, 2.0, 49);
  serve::Frontend frontend(&simulator, &engine, &trace, &metrics);
  frontend.Start();
  const harness::DriveResult result =
      harness::DriveScenario(simulator, frontend, trace,
                             harness::RunConfig());
  EXPECT_TRUE(result.stable);
  EXPECT_TRUE(result.diagnostic.empty()) << result.diagnostic;
}

}  // namespace
}  // namespace muxwise::fault
