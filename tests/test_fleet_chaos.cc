#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/time.h"
#include "workload/datasets.h"
#include "workload/slo.h"

namespace muxwise::harness {
namespace {

/**
 * The fleet acceptance chaos scenario (ISSUE 7): one of four replicas
 * killed at t=30 s — never recovering — under a Markov-modulated burst
 * whose burst phases run at 4x the calm arrival rate. The surviving
 * fleet must re-home the dead replica's orphans, keep every request
 * terminally accounted, degrade batch-first, and reproduce the exact
 * event stream on a second run.
 */
serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

workload::Trace BurstTrace() {
  workload::MmppOptions options;
  options.dataset = workload::Dataset::kShareGpt;
  options.calm_rate_per_second = 2.0;
  options.burst_multiplier = 4.0;
  options.mean_calm_seconds = 15.0;
  options.mean_burst_seconds = 10.0;
  options.duration_seconds = 60.0;
  options.class_mix = {0.3, 0.5, 0.2};
  return GenerateMmppTrace(options, 20260);
}

RunConfig FleetChaosConfig(bool failover) {
  RunConfig config;
  config.fleet.enabled = true;
  config.fleet.replicas = 4;
  config.fleet.failover = failover;
  config.fault_plan = fault::FaultPlan();
  config.fault_plan->Crash(1, sim::Seconds(30));  // Never recovers.
  return config;
}

class FleetChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
    trace_ = new workload::Trace(BurstTrace());
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
    delete trace_;
    trace_ = nullptr;
  }
  static core::ContentionEstimator* estimator_;
  static workload::Trace* trace_;
};

core::ContentionEstimator* FleetChaosTest::estimator_ = nullptr;
workload::Trace* FleetChaosTest::trace_ = nullptr;

TEST_F(FleetChaosTest, ReplicaLossUnderBurstKeepsEveryRequestAccounted) {
  const RunOutcome o = RunWorkload(EngineKind::kMuxWise, Llama70bA100(),
                                   *trace_, estimator_,
                                   FleetChaosConfig(/*failover=*/true));
  // RunWorkload already aborted if any invariant audit failed.
  EXPECT_TRUE(o.diagnostic.empty()) << o.diagnostic;
  ASSERT_TRUE(o.fleet_active);
  EXPECT_EQ(o.split.total(), o.total);  // Nothing stranded, ever.
  EXPECT_EQ(o.fleet.failovers, 1u);
  // The dead replica had work in its queues mid-burst; survivors took
  // it over rather than shedding it.
  EXPECT_GT(o.fleet.rehomed, 0u);
  EXPECT_EQ(o.fleet.rehomed,
            o.fleet.rehome_migrations + o.fleet.rehome_recomputes);
  EXPECT_GT(o.split.attained, 0u);

  // Batch-first degradation: the shrunken fleet sheds batch arrivals
  // while interactive keeps its attainment edge.
  const auto& interactive =
      o.per_class[workload::SloClassRank(workload::SloClass::kInteractive)];
  const auto& batch =
      o.per_class[workload::SloClassRank(workload::SloClass::kBatch)];
  EXPECT_GE(interactive.Attainment(), batch.Attainment());
}

TEST_F(FleetChaosTest, FailoverBeatsSheddingOnFleetGoodput) {
  // The negative twin: identical crash, re-homing disabled. Orphans of
  // the dead replica are shed (still terminally accounted — a fleet
  // must never strand a session), so attained goodput must be strictly
  // worse than the failover run's.
  const RunOutcome with_failover = RunWorkload(
      EngineKind::kMuxWise, Llama70bA100(), *trace_, estimator_,
      FleetChaosConfig(/*failover=*/true));
  const RunOutcome without = RunWorkload(EngineKind::kMuxWise,
                                         Llama70bA100(), *trace_, estimator_,
                                         FleetChaosConfig(/*failover=*/false));
  EXPECT_TRUE(without.diagnostic.empty()) << without.diagnostic;
  EXPECT_EQ(without.split.total(), without.total);
  EXPECT_GT(without.fleet.rehome_shed, 0u);  // Orphans shed, not lost.
  EXPECT_EQ(without.fleet.rehomed, 0u);
  EXPECT_GT(with_failover.split.attained, without.split.attained);
}

TEST_F(FleetChaosTest, FleetChaosRunsAreBitReproducible) {
  const DeterminismReport report =
      VerifyDeterminism(EngineKind::kMuxWise, Llama70bA100(), *trace_,
                        estimator_, FleetChaosConfig(/*failover=*/true));
  EXPECT_TRUE(report.deterministic) << report.mismatch;
}

}  // namespace
}  // namespace muxwise::harness
