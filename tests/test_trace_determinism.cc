#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

namespace muxwise::harness {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

/**
 * The tracing counterpart of test_determinism.cc: for every serving
 * engine, (a) attaching a recorder must not perturb the simulated event
 * stream, and (b) two traced runs must export byte-identical traces —
 * both the MUXT binary and the Chrome JSON.
 */
class TraceDeterminismTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }
  static core::ContentionEstimator* estimator_;
};

core::ContentionEstimator* TraceDeterminismTest::estimator_ = nullptr;

TEST_P(TraceDeterminismTest, TracingNeverPerturbsTheEventStream) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);

  const RunOutcome untraced =
      RunWorkload(GetParam(), Llama70bA100(), trace, estimator_);

  obs::TraceRecorder recorder;
  RunConfig config;
  config.trace = &recorder;
  const RunOutcome traced =
      RunWorkload(GetParam(), Llama70bA100(), trace, estimator_, config);

  // The disabled-tracing digest is the seed digest (tier-1 determinism
  // suite); the traced run must match it bit for bit.
  EXPECT_EQ(traced.event_digest, untraced.event_digest);
  EXPECT_EQ(traced.executed_events, untraced.executed_events);
  EXPECT_EQ(OutcomeDigest(traced), OutcomeDigest(untraced));
  EXPECT_GT(recorder.size(), 0u);
}

TEST_P(TraceDeterminismTest, DoubleRunsExportByteIdenticalTraces) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);

  auto run = [&] {
    auto recorder = std::make_unique<obs::TraceRecorder>();
    RunConfig config;
    config.trace = recorder.get();
    RunWorkload(GetParam(), Llama70bA100(), trace, estimator_, config);
    return recorder;
  };

  const auto first = run();
  const auto second = run();
  ASSERT_GT(first->size(), 0u);
  EXPECT_EQ(first->size(), second->size());
  EXPECT_EQ(obs::TraceDigest(*first), obs::TraceDigest(*second));
  EXPECT_EQ(obs::EncodeBinary(*first), obs::EncodeBinary(*second));
  EXPECT_EQ(obs::ExportChromeJson(*first), obs::ExportChromeJson(*second));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, TraceDeterminismTest,
    ::testing::Values(EngineKind::kMuxWise, EngineKind::kChunked,
                      EngineKind::kNanoFlow, EngineKind::kSglangPd,
                      EngineKind::kLoongServe, EngineKind::kWindServe,
                      EngineKind::kTemporal),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      switch (info.param) {
        case EngineKind::kMuxWise: return "MuxWise";
        case EngineKind::kChunked: return "Chunked";
        case EngineKind::kNanoFlow: return "NanoFlow";
        case EngineKind::kSglangPd: return "SglangPd";
        case EngineKind::kLoongServe: return "LoongServe";
        case EngineKind::kWindServe: return "WindServe";
        case EngineKind::kTemporal: return "Temporal";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace muxwise::harness
