#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

namespace muxwise::harness {
namespace {

// See TraceSamplingFrozenDigests below for the pinning contract.
constexpr std::uint64_t kFrozenUnsampledTraceDigest = 0xdc1476e73027d0b1ULL;
constexpr std::uint64_t kFrozenSampledTraceDigest = 0xe65d9fd07aea6c09ULL;

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

/**
 * The tracing counterpart of test_determinism.cc: for every serving
 * engine, (a) attaching a recorder must not perturb the simulated event
 * stream, and (b) two traced runs must export byte-identical traces —
 * both the MUXT binary and the Chrome JSON.
 */
class TraceDeterminismTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }
  static core::ContentionEstimator* estimator_;
};

core::ContentionEstimator* TraceDeterminismTest::estimator_ = nullptr;

TEST_P(TraceDeterminismTest, TracingNeverPerturbsTheEventStream) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);

  const RunOutcome untraced =
      RunWorkload(GetParam(), Llama70bA100(), trace, estimator_);

  obs::TraceRecorder recorder;
  RunConfig config;
  config.trace = &recorder;
  const RunOutcome traced =
      RunWorkload(GetParam(), Llama70bA100(), trace, estimator_, config);

  // The disabled-tracing digest is the seed digest (tier-1 determinism
  // suite); the traced run must match it bit for bit.
  EXPECT_EQ(traced.event_digest, untraced.event_digest);
  EXPECT_EQ(traced.executed_events, untraced.executed_events);
  EXPECT_EQ(OutcomeDigest(traced), OutcomeDigest(untraced));
  EXPECT_GT(recorder.size(), 0u);
}

TEST_P(TraceDeterminismTest, DoubleRunsExportByteIdenticalTraces) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);

  auto run = [&] {
    auto recorder = std::make_unique<obs::TraceRecorder>();
    RunConfig config;
    config.trace = recorder.get();
    RunWorkload(GetParam(), Llama70bA100(), trace, estimator_, config);
    return recorder;
  };

  const auto first = run();
  const auto second = run();
  ASSERT_GT(first->size(), 0u);
  EXPECT_EQ(first->size(), second->size());
  EXPECT_EQ(obs::TraceDigest(*first), obs::TraceDigest(*second));
  EXPECT_EQ(obs::EncodeBinary(*first), obs::EncodeBinary(*second));
  EXPECT_EQ(obs::ExportChromeJson(*first), obs::ExportChromeJson(*second));
}

TEST_P(TraceDeterminismTest, SpanSamplingNeverPerturbsTheEventStream) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);

  auto run = [&](std::uint64_t period) {
    auto recorder = std::make_unique<obs::TraceRecorder>(
        obs::TraceRecorder::Options{.span_sample_period = period});
    RunConfig config;
    config.trace = recorder.get();
    const RunOutcome outcome =
        RunWorkload(GetParam(), Llama70bA100(), trace, estimator_, config);
    return std::make_pair(std::move(recorder), outcome);
  };

  const auto [unsampled, full_outcome] = run(1);
  const auto [sampled, sampled_outcome] = run(4);
  // Sampling is a recorder-side filter: the simulated stream (and every
  // reported metric) is identical whatever the period.
  EXPECT_EQ(sampled_outcome.event_digest, full_outcome.event_digest);
  EXPECT_EQ(sampled_outcome.executed_events, full_outcome.executed_events);
  EXPECT_EQ(OutcomeDigest(sampled_outcome), OutcomeDigest(full_outcome));
  // It really thinned the span stream, and accounted for every skip.
  EXPECT_GT(sampled->sampled_out(), 0u);
  EXPECT_LT(sampled->size(), unsampled->size());
  EXPECT_EQ(sampled->size() + sampled->sampled_out(), unsampled->size());
  // The sampled stream is itself reproducible.
  EXPECT_EQ(obs::TraceDigest(*run(4).first), obs::TraceDigest(*sampled));
}

/**
 * Frozen trace digests for the MuxWise acceptance scenario, unsampled
 * and at 1-in-4 span sampling. Both streams are deterministic, so both
 * digests are pinned: a change to either means the instrumentation, the
 * binary encoding, or the sampling key changed — bump deliberately.
 */
TEST(TraceSamplingFrozenDigests, MuxWiseAcceptanceScenarioPinned) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);
  const serve::Deployment deployment = Llama70bA100();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);

  auto digest = [&](std::uint64_t period) {
    obs::TraceRecorder recorder(
        obs::TraceRecorder::Options{.span_sample_period = period});
    RunConfig config;
    config.trace = &recorder;
    RunWorkload(EngineKind::kMuxWise, deployment, trace, &estimator, config);
    return obs::TraceDigest(recorder);
  };

  EXPECT_EQ(digest(1), kFrozenUnsampledTraceDigest);
  EXPECT_EQ(digest(4), kFrozenSampledTraceDigest);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, TraceDeterminismTest,
    ::testing::Values(EngineKind::kMuxWise, EngineKind::kChunked,
                      EngineKind::kNanoFlow, EngineKind::kSglangPd,
                      EngineKind::kLoongServe, EngineKind::kWindServe,
                      EngineKind::kTemporal),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      switch (info.param) {
        case EngineKind::kMuxWise: return "MuxWise";
        case EngineKind::kChunked: return "Chunked";
        case EngineKind::kNanoFlow: return "NanoFlow";
        case EngineKind::kSglangPd: return "SglangPd";
        case EngineKind::kLoongServe: return "LoongServe";
        case EngineKind::kWindServe: return "WindServe";
        case EngineKind::kTemporal: return "Temporal";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace muxwise::harness
