#include "overload/controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/invariant_registry.h"
#include "kv/kv_pool.h"
#include "sim/time.h"
#include "workload/slo.h"

namespace muxwise::overload {
namespace {

using sim::Milliseconds;
using sim::Seconds;
using workload::SloClass;

Policy EnabledPolicy() {
  Policy policy;
  policy.enabled = true;
  return policy;
}

std::size_t AuditFailures(const check::InvariantRegistry& registry) {
  return registry.RunAll().size();
}

// ---------------------------------------------------------------- modes

TEST(ControllerModeTest, DisabledControllerNeverMoves) {
  Controller ctl{Policy{}};
  EXPECT_FALSE(ctl.Observe(Seconds(1), 0.99, Seconds(100)));
  EXPECT_EQ(ctl.mode(), Mode::kNormal);
  EXPECT_DOUBLE_EQ(ctl.PrefillScale(), 1.0);
  EXPECT_FALSE(ctl.DeferBatch());
  EXPECT_FALSE(ctl.PreemptionEligible());
  const auto decision = ctl.Admit(SloClass::kBatch, 1 << 20, Seconds(1), 0);
  EXPECT_EQ(decision.action, AdmissionDecision::Action::kAdmit);
}

TEST(ControllerModeTest, EscalatesImmediatelyOnEitherSignal) {
  Controller ctl{EnabledPolicy()};
  // Occupancy alone trips Pressure.
  EXPECT_TRUE(ctl.Observe(Seconds(1), 0.72, 0));
  EXPECT_EQ(ctl.mode(), Mode::kPressure);
  // Queue delay alone trips Shed, skipping Brownout (no dwell on the
  // way up — overload never waits).
  EXPECT_TRUE(ctl.Observe(Seconds(1) + Milliseconds(1), 0.72, Seconds(25)));
  EXPECT_EQ(ctl.mode(), Mode::kShed);
  EXPECT_EQ(ctl.mode_transitions(), 2u);
  EXPECT_EQ(ctl.mode_entries(Mode::kShed), 1u);
}

TEST(ControllerModeTest, DeEscalationIsDwellGatedAndOneRungAtATime) {
  Controller ctl{EnabledPolicy()};
  ASSERT_TRUE(ctl.Observe(Seconds(1), 0.96, 0));  // -> Shed.
  ASSERT_EQ(ctl.mode(), Mode::kShed);
  // Signals clear instantly, but the dwell (500 ms) has not elapsed.
  EXPECT_FALSE(ctl.Observe(Seconds(1) + Milliseconds(100), 0.10, 0));
  EXPECT_EQ(ctl.mode(), Mode::kShed);
  // After the dwell: one rung down, not straight to Normal.
  EXPECT_TRUE(ctl.Observe(Seconds(2), 0.10, 0));
  EXPECT_EQ(ctl.mode(), Mode::kBrownout);
  EXPECT_TRUE(ctl.Observe(Seconds(3), 0.10, 0));
  EXPECT_EQ(ctl.mode(), Mode::kPressure);
  EXPECT_TRUE(ctl.Observe(Seconds(4), 0.10, 0));
  EXPECT_EQ(ctl.mode(), Mode::kNormal);
}

TEST(ControllerModeTest, HysteresisBandHoldsTheMode) {
  Controller ctl{EnabledPolicy()};
  ASSERT_TRUE(ctl.Observe(Seconds(1), 0.72, 0));  // -> Pressure at 0.70.
  // 0.65 is below the 0.70 entry but above the 0.60 exit: no flap.
  EXPECT_FALSE(ctl.Observe(Seconds(5), 0.65, 0));
  EXPECT_EQ(ctl.mode(), Mode::kPressure);
  EXPECT_TRUE(ctl.Observe(Seconds(6), 0.55, 0));
  EXPECT_EQ(ctl.mode(), Mode::kNormal);
}

TEST(ControllerModeTest, PrefillScaleFollowsTheLadder) {
  Policy policy = EnabledPolicy();
  Controller ctl{policy};
  EXPECT_DOUBLE_EQ(ctl.PrefillScale(), policy.prefill_scale[0]);
  ctl.Observe(Seconds(1), 0.72, 0);
  EXPECT_DOUBLE_EQ(ctl.PrefillScale(), policy.prefill_scale[1]);
  ctl.Observe(Seconds(2), 0.86, 0);
  EXPECT_DOUBLE_EQ(ctl.PrefillScale(), policy.prefill_scale[2]);
  EXPECT_TRUE(ctl.DeferBatch());
  ctl.Observe(Seconds(3), 0.96, 0);
  EXPECT_DOUBLE_EQ(ctl.PrefillScale(), policy.prefill_scale[3]);
  EXPECT_TRUE(ctl.PreemptionEligible());
}

// ------------------------------------------------------------ admission

TEST(ControllerAdmitTest, BucketMathIsDeterministic) {
  Policy policy = EnabledPolicy();
  policy.bucket_rate_tokens_per_s[workload::SloClassRank(
      SloClass::kStandard)] = 1000.0;
  policy.bucket_capacity_tokens[workload::SloClassRank(
      SloClass::kStandard)] = 500.0;
  Controller ctl{policy};

  // Bucket starts full: 400 of 500 admits and leaves 100.
  auto first = ctl.Admit(SloClass::kStandard, 400, Seconds(1), 0);
  EXPECT_EQ(first.action, AdmissionDecision::Action::kAdmit);
  // 400 more: deficit 300 at 1000 tok/s -> retry in exactly 300 ms.
  auto second = ctl.Admit(SloClass::kStandard, 400, Seconds(1), 1);
  EXPECT_EQ(second.action, AdmissionDecision::Action::kDelay);
  EXPECT_EQ(second.retry_at, Seconds(1) + Milliseconds(300));
  // At the retry time the bucket has refilled to exactly the demand.
  auto third = ctl.Admit(SloClass::kStandard, 400, second.retry_at, 1);
  EXPECT_EQ(third.action, AdmissionDecision::Action::kAdmit);
  EXPECT_EQ(ctl.admitted(SloClass::kStandard), 2u);
  EXPECT_EQ(ctl.delayed(SloClass::kStandard), 1u);
}

TEST(ControllerAdmitTest, ZeroRateDisablesTheBucket) {
  Controller ctl{EnabledPolicy()};
  const auto decision =
      ctl.Admit(SloClass::kInteractive, 1 << 30, Seconds(1), 0);
  EXPECT_EQ(decision.action, AdmissionDecision::Action::kAdmit);
}

TEST(ControllerAdmitTest, BucketsAreIndependentPerClass) {
  Policy policy = EnabledPolicy();
  const int batch = workload::SloClassRank(SloClass::kBatch);
  policy.bucket_rate_tokens_per_s[batch] = 100.0;
  policy.bucket_capacity_tokens[batch] = 100.0;
  Controller ctl{policy};
  // Draining the batch bucket leaves interactive unlimited.
  EXPECT_EQ(ctl.Admit(SloClass::kBatch, 100, Seconds(1), 0).action,
            AdmissionDecision::Action::kAdmit);
  EXPECT_EQ(ctl.Admit(SloClass::kBatch, 100, Seconds(1), 1).action,
            AdmissionDecision::Action::kDelay);
  EXPECT_EQ(ctl.Admit(SloClass::kInteractive, 100, Seconds(1), 0).action,
            AdmissionDecision::Action::kAdmit);
}

TEST(ControllerAdmitTest, ModeLadderShedsBatchFirstInteractiveLast) {
  Controller ctl{EnabledPolicy()};
  ctl.Observe(Seconds(1), 0.86, 0);  // -> Brownout.
  // Brownout defers batch but leaves standard and interactive alone.
  EXPECT_EQ(ctl.Admit(SloClass::kBatch, 10, Seconds(1), 0).action,
            AdmissionDecision::Action::kDelay);
  EXPECT_EQ(ctl.Admit(SloClass::kStandard, 10, Seconds(1), 0).action,
            AdmissionDecision::Action::kAdmit);
  EXPECT_EQ(ctl.Admit(SloClass::kInteractive, 10, Seconds(1), 0).action,
            AdmissionDecision::Action::kAdmit);
  ctl.Observe(Seconds(2), 0.96, 0);  // -> Shed.
  EXPECT_EQ(ctl.Admit(SloClass::kBatch, 10, Seconds(2), 0).action,
            AdmissionDecision::Action::kShed);
  EXPECT_EQ(ctl.Admit(SloClass::kStandard, 10, Seconds(2), 0).action,
            AdmissionDecision::Action::kShed);
  // Interactive is never mode-shed, only bounded by the hard queue cap.
  EXPECT_EQ(ctl.Admit(SloClass::kInteractive, 10, Seconds(2), 0).action,
            AdmissionDecision::Action::kAdmit);
}

TEST(ControllerAdmitTest, HardQueueBoundShedsEveryClass) {
  Policy policy = EnabledPolicy();
  policy.max_queue_per_class = 8;
  Controller ctl{policy};
  EXPECT_EQ(ctl.Admit(SloClass::kInteractive, 10, Seconds(1), 8).action,
            AdmissionDecision::Action::kShed);
  EXPECT_EQ(ctl.Admit(SloClass::kInteractive, 10, Seconds(1), 7).action,
            AdmissionDecision::Action::kAdmit);
  EXPECT_EQ(ctl.shed(SloClass::kInteractive), 1u);
}

// ----------------------------------------------- preemption primitives

TEST(PreemptBeforeTest, OrdersByClassProgressCostThenId) {
  const VictimKey batch{SloClass::kBatch, 10, 5.0, 7};
  const VictimKey standard{SloClass::kStandard, 0, 0.0, 1};
  EXPECT_TRUE(PreemptBefore(batch, standard));   // Lowest class first.
  EXPECT_FALSE(PreemptBefore(standard, batch));

  const VictimKey early{SloClass::kBatch, 2, 9.0, 9};
  EXPECT_TRUE(PreemptBefore(early, batch));      // Least progress first.

  const VictimKey cheap{SloClass::kBatch, 10, 1.0, 9};
  EXPECT_TRUE(PreemptBefore(cheap, batch));      // Cheapest recompute.

  const VictimKey tie_low{SloClass::kBatch, 10, 5.0, 3};
  EXPECT_TRUE(PreemptBefore(tie_low, batch));    // Id tie-break.
  EXPECT_FALSE(PreemptBefore(batch, batch));     // Strict ordering.
}

TEST(PreemptBeforeTest, SortYieldsDeterministicVictimOrder) {
  std::vector<VictimKey> keys = {
      {SloClass::kInteractive, 0, 0.1, 4},
      {SloClass::kBatch, 5, 2.0, 3},
      {SloClass::kStandard, 0, 0.5, 2},
      {SloClass::kBatch, 0, 2.0, 1},
  };
  std::sort(keys.begin(), keys.end(), PreemptBefore);
  EXPECT_EQ(keys[0].request_id, 1);  // Batch, least progress.
  EXPECT_EQ(keys[1].request_id, 3);  // Batch, more progress.
  EXPECT_EQ(keys[2].request_id, 2);  // Standard.
  EXPECT_EQ(keys[3].request_id, 4);  // Interactive, preempted last.
}

TEST(ControllerSpillTest, SpillCheaperModelsTheRoundTrip) {
  Policy policy = EnabledPolicy();
  policy.spill_bandwidth_bytes_per_s = 1.0e9;
  policy.spill_latency = Milliseconds(1);
  Controller ctl{policy};
  // 1 GB each way at 1 GB/s plus 2 ms latency: 2.002 s round trip.
  EXPECT_TRUE(ctl.SpillCheaper(1.0e9, 3.0));
  EXPECT_FALSE(ctl.SpillCheaper(1.0e9, 1.0));

  policy.spill = false;
  Controller no_spill{policy};
  EXPECT_FALSE(no_spill.SpillCheaper(1.0, 1.0e9));
}

// ------------------------------------------------------- spill ledger

TEST(KvSpillLedgerTest, SpillFreesHbmAndRestoreReclaimsIt) {
  kv::KvPool pool(1000);
  ASSERT_TRUE(pool.TryReserve(600));
  pool.SpillReserved(400);
  EXPECT_EQ(pool.reserved_tokens(), 200);
  EXPECT_EQ(pool.free_tokens(), 800);  // Spilled pages left the HBM.
  EXPECT_EQ(pool.spilled_tokens(), 400);

  EXPECT_TRUE(pool.TryRestoreSpilled(400));
  EXPECT_EQ(pool.reserved_tokens(), 600);
  EXPECT_EQ(pool.spilled_tokens(), 0);
  EXPECT_EQ(pool.restored_total(), 400);
  pool.ReleaseReserved(600);

  check::InvariantRegistry registry;
  pool.RegisterAudits(registry);
  EXPECT_EQ(AuditFailures(registry), 0u);
}

TEST(KvSpillLedgerTest, RestoreFailsWhenTheHbmIsFull) {
  kv::KvPool pool(1000);
  ASSERT_TRUE(pool.TryReserve(1000));
  pool.SpillReserved(300);
  // 700 still reserved; restoring 300 fits exactly.
  ASSERT_TRUE(pool.TryReserve(300));  // Steal the freed room.
  EXPECT_FALSE(pool.TryRestoreSpilled(300));
  EXPECT_EQ(pool.spilled_tokens(), 300);  // Unchanged on failure.
  pool.ReleaseReserved(300);
  EXPECT_TRUE(pool.TryRestoreSpilled(300));
  pool.ReleaseReserved(1000);
}

TEST(KvSpillLedgerTest, DroppedSpillBalancesTheLedger) {
  kv::KvPool pool(1000);
  ASSERT_TRUE(pool.TryReserve(500));
  pool.SpillReserved(500);
  pool.DropSpilled(500);  // Crash path: pages on the host are lost.
  EXPECT_EQ(pool.spilled_tokens(), 0);
  EXPECT_EQ(pool.dropped_spill_total(), 500);
  EXPECT_EQ(pool.spilled_in_total(), 500);

  check::InvariantRegistry registry;
  pool.RegisterAudits(registry);
  EXPECT_EQ(AuditFailures(registry), 0u);
}

TEST(KvSpillLedgerTest, UnreturnedSpillFailsTheQuiescenceAudit) {
  kv::KvPool pool(1000);
  ASSERT_TRUE(pool.TryReserve(100));
  pool.SpillReserved(100);
  check::InvariantRegistry registry;
  pool.RegisterAudits(registry);
  // Quiescence demands every spilled page restored or dropped.
  EXPECT_GT(AuditFailures(registry), 0u);
  pool.DropSpilled(100);
  EXPECT_EQ(AuditFailures(registry), 0u);
}

}  // namespace
}  // namespace muxwise::overload
