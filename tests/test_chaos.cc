#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/time.h"
#include "workload/datasets.h"

namespace muxwise::harness {
namespace {

/**
 * The acceptance chaos scenario (ISSUE 2): an instance crash at t=30 s
 * recovering at t=45 s, a 1% transfer-loss window across the run, and
 * one straggler window — against every engine in the repository. Every
 * engine must terminate with every request terminally accounted, zero
 * invariant violations (RunWorkload aborts on any), and bit-identical
 * reruns.
 */
serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

fault::FaultPlan ChaosPlan() {
  fault::FaultPlan plan;
  plan.Crash(0, sim::Seconds(30), sim::Seconds(45))
      .DropTransfers(sim::Seconds(10), sim::Seconds(70), 0.01)
      .Straggle(1, sim::Seconds(50), sim::Seconds(60), 2.0);
  return plan;
}

class ChaosTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
    trace_ = new workload::Trace(
        workload::GenerateTrace(workload::Dataset::kShareGpt, 80, 1.0, 777));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
    delete trace_;
    trace_ = nullptr;
  }
  static core::ContentionEstimator* estimator_;
  static workload::Trace* trace_;
};

core::ContentionEstimator* ChaosTest::estimator_ = nullptr;
workload::Trace* ChaosTest::trace_ = nullptr;

TEST_P(ChaosTest, EveryRequestTerminallyAccountedUnderChaos) {
  RunConfig config;
  config.fault_plan = ChaosPlan();
  const RunOutcome o =
      RunWorkload(GetParam(), Llama70bA100(), *trace_, estimator_, config);
  // RunWorkload already aborted if any invariant audit failed.
  EXPECT_TRUE(o.diagnostic.empty()) << o.diagnostic;
  EXPECT_EQ(o.completed, o.total);  // Every request notified terminal.
  EXPECT_EQ(o.split.total(), o.total);
  EXPECT_GT(o.split.attained, 0u);  // Chaos degrades, not destroys.
}

TEST_P(ChaosTest, ChaosRunsAreBitReproducible) {
  RunConfig config;
  config.fault_plan = ChaosPlan();
  const DeterminismReport report = VerifyDeterminism(
      GetParam(), Llama70bA100(), *trace_, estimator_, config);
  EXPECT_TRUE(report.deterministic) << report.mismatch;
}

TEST_P(ChaosTest, DisabledFaultsLeaveOutcomeIdenticalToBaseline) {
  // A default RunConfig (no plan, recovery disabled) must produce the
  // same digest as one carrying recovery knobs that stay disabled —
  // the fault machinery is inert unless switched on.
  RunConfig baseline;
  RunConfig knobs;
  knobs.recovery.max_crash_retries = 7;
  knobs.recovery.shed_demand_factor = 9.0;
  const RunOutcome a =
      RunWorkload(GetParam(), Llama70bA100(), *trace_, estimator_, baseline);
  const RunOutcome b =
      RunWorkload(GetParam(), Llama70bA100(), *trace_, estimator_, knobs);
  EXPECT_EQ(OutcomeDigest(a), OutcomeDigest(b));
  EXPECT_EQ(a.event_digest, b.event_digest);
  EXPECT_EQ(a.split.timed_out + a.split.shed + a.split.failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ChaosTest,
    ::testing::Values(EngineKind::kMuxWise, EngineKind::kChunked,
                      EngineKind::kNanoFlow, EngineKind::kSglangPd,
                      EngineKind::kLoongServe, EngineKind::kWindServe,
                      EngineKind::kTemporal),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      switch (info.param) {
        case EngineKind::kMuxWise:
          return "MuxWise";
        case EngineKind::kChunked:
          return "Chunked";
        case EngineKind::kNanoFlow:
          return "NanoFlow";
        case EngineKind::kSglangPd:
          return "SglangPd";
        case EngineKind::kLoongServe:
          return "LoongServe";
        case EngineKind::kWindServe:
          return "WindServe";
        case EngineKind::kTemporal:
          return "Temporal";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace muxwise::harness
