#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "chaosfuzz/fuzz.h"

namespace muxwise::chaosfuzz {
namespace {

namespace fs = std::filesystem;

/**
 * Replays every checked-in chaos repro through the same checker the
 * campaign uses. Corpus entries are minimized repros of *fixed* bugs
 * plus per-kind grey-failure coverage, so each one must pass all chaos
 * properties (stable drain, ledger balance, double-run bit-identity,
 * clean audits) — any violation or crash here is a regression. CI also
 * replays the corpus via `chaosfuzz --replay`; this test keeps the
 * gate in plain `ctest` runs too.
 */

std::vector<fs::path> CorpusFiles() {
  const fs::path dir =
      fs::path(MUXWISE_SOURCE_DIR) / "tests" / "chaos_corpus";
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ChaosCorpusTest, CorpusIsPresentAndCoversEveryGreyKind) {
  const std::vector<fs::path> files = CorpusFiles();
  ASSERT_GE(files.size(), 4u) << "corpus went missing";
  // Filename convention from the corpus README: each grey kind keeps
  // at least one named coverage entry.
  const auto has = [&](const char* needle) {
    return std::any_of(files.begin(), files.end(), [&](const fs::path& p) {
      return p.filename().string().find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(has("zombie"));
  EXPECT_TRUE(has("flap"));
  EXPECT_TRUE(has("degrade"));
  EXPECT_TRUE(has("partition"));
}

TEST(ChaosCorpusTest, EveryEntryReplaysClean) {
  for (const fs::path& file : CorpusFiles()) {
    SCOPED_TRACE(file.filename().string());
    const Verdict verdict = ReplayFile(file.string());
    EXPECT_EQ(verdict.result, Verdict::Result::kPass) << verdict.detail;
  }
}

}  // namespace
}  // namespace muxwise::chaosfuzz
