#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "obs/trace.h"
#include "obs/trace_query.h"
#include "serve/deployment.h"
#include "sim/time.h"
#include "workload/datasets.h"

namespace muxwise::harness {
namespace {

/**
 * Behavioural assertions over exported traces (the paper's §3.2
 * mechanisms, checked on the timeline rather than through engine
 * internals). Each positive assertion has a negative twin that disables
 * the mechanism under test and checks the assertion would then fail —
 * guarding the queries themselves against vacuous passes.
 */
class TraceAssertionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Deploy()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }

  static serve::Deployment Deploy() {
    return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                   gpu::GpuSpec::A100());
  }

  static std::unique_ptr<obs::TraceRecorder> Run(EngineKind kind,
                                                 RunConfig config = {}) {
    const workload::Trace trace =
        workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);
    auto recorder = std::make_unique<obs::TraceRecorder>();
    config.trace = recorder.get();
    const RunOutcome outcome =
        RunWorkload(kind, Deploy(), trace, estimator_, config);
    EXPECT_TRUE(outcome.stable) << outcome.diagnostic;
    return recorder;
  }

  /**
   * Longest stall between decode iterations while decode work was
   * pending — the gap the paper's query-based synchronization plus
   * layer-wise prefill is designed to bound (decode never waits for a
   * whole prefill to finish).
   */
  static sim::Duration MaxPendingDecodeGap(const obs::TraceRecorder& r) {
    const std::vector<obs::Span> steps =
        obs::ExtractSpans(r, "engine/decode", "decode-step");
    sim::Duration worst = 0;
    for (const obs::Gap& gap : obs::ExtractGaps(steps)) {
      const double pending =
          obs::CounterValueAt(r, "engine/decode", "decode-pending", gap.begin);
      if (pending > 0.0) worst = std::max(worst, gap.duration());
    }
    return worst;
  }

  /**
   * Largest total SM allocation across any pair of concurrently
   * executing kernels on the decode (s0) and prefill (s1) streams that
   * were both launched under the same partition. A kernel launched
   * before a reconfiguration legitimately keeps its old grant while it
   * drains (the GPU model re-rates that window as oversubscription), so
   * pairs with a reconfig between their launches are skipped; within
   * one partition epoch, spatial exclusivity must hold exactly.
   */
  static int MaxSameEpochSmSum(const obs::TraceRecorder& r) {
    std::vector<sim::Time> reconfigs;
    for (const obs::Span& span :
         obs::ExtractSpans(r, "partition", "reconfig")) {
      reconfigs.push_back(span.begin);
    }
    std::sort(reconfigs.begin(), reconfigs.end());
    const auto same_epoch = [&](const obs::Span& a, const obs::Span& b) {
      const sim::Time lo = std::min(a.begin, b.begin);
      const sim::Time hi = std::max(a.begin, b.begin);
      const auto it = std::upper_bound(reconfigs.begin(), reconfigs.end(), lo);
      return it == reconfigs.end() || *it > hi;
    };

    const std::vector<obs::Span> decode =
        obs::ExtractSpans(r, "gpu/s0", "kernel");
    const std::vector<obs::Span> prefill =
        obs::ExtractSpans(r, "gpu/s1", "kernel");
    int worst = 0;
    std::size_t first_live = 0;
    for (const obs::Span& d : decode) {
      while (first_live < prefill.size() &&
             prefill[first_live].end <= d.begin) {
        ++first_live;
      }
      for (std::size_t j = first_live;
           j < prefill.size() && prefill[j].begin < d.end; ++j) {
        if (obs::Overlaps(d, prefill[j]) && same_epoch(d, prefill[j])) {
          worst = std::max(worst, static_cast<int>(d.value + prefill[j].value));
        }
      }
    }
    return worst;
  }

  static core::ContentionEstimator* estimator_;
};

core::ContentionEstimator* TraceAssertionTest::estimator_ = nullptr;

// ---------------------------------------------------------------------
// Assertion 1: decode-gap bound. With query-based sync and layer-wise
// prefill, MuxWise never stalls pending decodes for longer than the TBT
// target; with both disabled, decode waits out entire prefills and the
// stall blows past it.

TEST_F(TraceAssertionTest, MuxWiseBoundsDecodeGapsUnderPendingWork) {
  const auto recorder = Run(EngineKind::kMuxWise);
  const sim::Duration worst = MaxPendingDecodeGap(*recorder);
  EXPECT_GT(obs::ExtractSpans(*recorder, "engine/decode", "decode-step").size(),
            0u);
  EXPECT_LE(worst, Deploy().slo.tbt)
      << "worst pending-decode stall " << sim::ToMilliseconds(worst) << " ms";
}

TEST_F(TraceAssertionTest, DecodeGapAssertionFailsWithoutQuerySync) {
  core::MuxWiseEngine::Options options;
  options.query_sync = false;
  options.layerwise = false;
  RunConfig config;
  config.muxwise_options = options;
  const auto recorder = Run(EngineKind::kMuxWise, config);
  const sim::Duration worst = MaxPendingDecodeGap(*recorder);
  EXPECT_GT(worst, Deploy().slo.tbt)
      << "worst pending-decode stall " << sim::ToMilliseconds(worst) << " ms";
}

// ---------------------------------------------------------------------
// Assertion 2: partition-reconfiguration latency. Every green-context
// reconfiguration window on the partition track is exactly the modelled
// stream-sync cost, well under a millisecond; an inflated cost model
// breaks the bound.

TEST_F(TraceAssertionTest, PartitionReconfigurationsAreFast) {
  const auto recorder = Run(EngineKind::kMuxWise);
  const std::vector<obs::Span> reconfigs =
      obs::ExtractSpans(*recorder, "partition", "reconfig");
  ASSERT_GT(reconfigs.size(), 0u);
  for (const obs::Span& span : reconfigs) {
    EXPECT_EQ(span.duration(), sim::Microseconds(10));
    EXPECT_LE(span.duration(), sim::Milliseconds(1));
  }
}

TEST_F(TraceAssertionTest, ReconfigLatencyAssertionFailsWithSlowReconfig) {
  core::MuxWiseEngine::Options options;
  options.mux.reconfig_cost = sim::Milliseconds(5);
  RunConfig config;
  config.muxwise_options = options;
  const auto recorder = Run(EngineKind::kMuxWise, config);
  const std::vector<obs::Span> reconfigs =
      obs::ExtractSpans(*recorder, "partition", "reconfig");
  ASSERT_GT(reconfigs.size(), 0u);
  for (const obs::Span& span : reconfigs) {
    EXPECT_GT(span.duration(), sim::Milliseconds(1));
  }
}

// ---------------------------------------------------------------------
// Assertion 3: prefill/decode SM exclusivity. Spatial partitioning
// keeps concurrent kernels within the managed partition: when one
// phase goes idle, its context is parked at the minimum granularity
// (16 SMs) while the other takes the whole device, so the partition
// sums to at most sm_count + partition_granularity. The unmanaged
// (WindServe) baseline gives both streams the full device — every
// kernel overlap claims 2x the SMs, far past the managed bound (and,
// with no reconfigurations, every overlap is same-epoch).

TEST_F(TraceAssertionTest, SpatialPartitioningBoundsConcurrentSms) {
  const auto recorder = Run(EngineKind::kMuxWise);
  const gpu::GpuSpec spec = gpu::GpuSpec::A100();
  const int bound = spec.sm_count + spec.partition_granularity;

  const int worst = MaxSameEpochSmSum(*recorder);
  EXPECT_GT(worst, 0) << "no concurrent prefill/decode kernels traced";
  EXPECT_LE(worst, bound);

  // The programmed partition honours the same bound at every
  // reconfiguration (counters are resampled with each reconfig span).
  const std::vector<obs::Span> reconfigs =
      obs::ExtractSpans(*recorder, "partition", "reconfig");
  ASSERT_GT(reconfigs.size(), 0u);
  for (const obs::Span& span : reconfigs) {
    const double total =
        obs::CounterValueAt(*recorder, "partition", "decode-sms", span.begin) +
        obs::CounterValueAt(*recorder, "partition", "prefill-sms", span.begin);
    EXPECT_LE(total, bound);
  }
}

TEST_F(TraceAssertionTest, ExclusivityAssertionFailsForUnmanagedSharing) {
  const auto recorder = Run(EngineKind::kWindServe);
  const gpu::GpuSpec spec = gpu::GpuSpec::A100();
  const int bound = spec.sm_count + spec.partition_granularity;
  const int worst = MaxSameEpochSmSum(*recorder);
  EXPECT_GT(worst, bound);
  // Both streams report the whole device: the "partition" is 2x SMs.
  const double claimed =
      obs::CounterMax(*recorder, "partition", "decode-sms") +
      obs::CounterMax(*recorder, "partition", "prefill-sms");
  EXPECT_GT(claimed, bound);
}

// ---------------------------------------------------------------------
// Cross-cutting: the per-request critical path reconstructed from the
// trace matches the run's own end-to-end accounting.

TEST_F(TraceAssertionTest, CriticalPathsCoverEveryCompletedRequest) {
  const auto recorder = Run(EngineKind::kMuxWise);
  std::size_t complete = 0;
  for (std::int64_t id = 0; id < 30; ++id) {
    const obs::CriticalPath path = obs::RequestCriticalPath(*recorder, id);
    if (path.decode > 0) {
      EXPECT_GT(path.prefill, 0) << "request " << id;
      EXPECT_GT(path.total(), 0) << "request " << id;
      ++complete;
    }
  }
  EXPECT_GT(complete, 0u);
}

}  // namespace
}  // namespace muxwise::harness
