#include <gtest/gtest.h>

#include <cstddef>

#include "fault/fault_plan.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "overload/controller.h"
#include "serve/deployment.h"
#include "sim/time.h"
#include "workload/datasets.h"
#include "workload/slo.h"

namespace muxwise::harness {
namespace {

using workload::SloClass;

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

/**
 * The acceptance burst (ISSUE 5): a Markov-modulated ShareGPT trace
 * whose burst phases run at 4x the calm arrival rate, with a
 * 20/50/30 interactive/standard/batch mix.
 */
workload::Trace BurstTrace(double burst_multiplier) {
  workload::MmppOptions options;
  options.dataset = workload::Dataset::kShareGpt;
  options.calm_rate_per_second = 10.0;
  options.burst_multiplier = burst_multiplier;
  options.mean_calm_seconds = 15.0;
  options.mean_burst_seconds = 10.0;
  options.duration_seconds = 120.0;
  options.class_mix = {0.2, 0.5, 0.3};
  return GenerateMmppTrace(options, 20250);
}

/** Recovery deadlines on in every run, so both sides of the
 * control-on/off comparison reap hopeless work identically. */
RunConfig BurstConfig(bool control) {
  RunConfig config;
  config.recovery.enabled = true;
  config.overload.enabled = control;
  return config;
}

/** Goodput as the paper counts it: completions that met their TTFT
 * target, summed over the SLO classes. */
std::size_t SloGoodput(const RunOutcome& outcome) {
  std::size_t attained = 0;
  for (const serve::ClassMetrics& slice : outcome.per_class) {
    attained += slice.TtftAttained();
  }
  return attained;
}

class OverloadScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }
  static core::ContentionEstimator* estimator_;
};

core::ContentionEstimator* OverloadScenarioTest::estimator_ = nullptr;

TEST_F(OverloadScenarioTest, ControlRaisesGoodputUnderFourXBurst) {
  const workload::Trace trace = BurstTrace(4.0);
  const RunOutcome off = RunWorkload(EngineKind::kMuxWise, Llama70bA100(),
                                     trace, estimator_, BurstConfig(false));
  const RunOutcome on = RunWorkload(EngineKind::kMuxWise, Llama70bA100(),
                                    trace, estimator_, BurstConfig(true));
  ASSERT_TRUE(off.diagnostic.empty()) << off.diagnostic;
  ASSERT_TRUE(on.diagnostic.empty()) << on.diagnostic;
  EXPECT_TRUE(on.overload_active);
  EXPECT_FALSE(off.overload_active);
  EXPECT_GT(on.overload_mode_transitions, 0u);

  // Strictly higher SLO-attained goodput with the controller on.
  EXPECT_GT(SloGoodput(on), SloGoodput(off));

  // Interactive degrades last: attainment ordered by class priority.
  const auto& interactive =
      on.per_class[workload::SloClassRank(SloClass::kInteractive)];
  const auto& standard =
      on.per_class[workload::SloClassRank(SloClass::kStandard)];
  const auto& batch =
      on.per_class[workload::SloClassRank(SloClass::kBatch)];
  ASSERT_GT(interactive.split.total(), 0u);
  ASSERT_GT(standard.split.total(), 0u);
  ASSERT_GT(batch.split.total(), 0u);
  EXPECT_GE(interactive.Attainment(), standard.Attainment());
  EXPECT_GE(standard.Attainment(), batch.Attainment());

  // Every request is terminally accounted on both sides.
  EXPECT_EQ(off.split.total(), off.total);
  EXPECT_EQ(on.split.total(), on.total);
}

TEST_F(OverloadScenarioTest, BurstRunsAreBitReproducible) {
  const workload::Trace trace = BurstTrace(4.0);
  for (const bool control : {false, true}) {
    const DeterminismReport report =
        VerifyDeterminism(EngineKind::kMuxWise, Llama70bA100(), trace,
                          estimator_, BurstConfig(control));
    EXPECT_TRUE(report.deterministic)
        << "control=" << control << ": " << report.mismatch;
  }
}

TEST_F(OverloadScenarioTest, KvPressurePreemptionSpillsAndRestores) {
  // Standard-class LooGLE prompts are long, so their prefills hold the
  // pool while interactive ShareGPT heads arrive: KV pressure pauses
  // the batch and evicts victims whose recompute is expensive enough to
  // take the spill path. A small pool (high reserved headroom) makes
  // that pressure reachable within the 90 s trace. The run must finish
  // with the spill ledger balanced (RunWorkload aborts on any invariant
  // violation, including the decode-safe-preemption and spill-ledger
  // audits).
  workload::MmppOptions loogle;
  loogle.dataset = workload::Dataset::kLoogle;
  loogle.calm_rate_per_second = 1.0;
  loogle.burst_multiplier = 4.0;
  loogle.mean_calm_seconds = 12.0;
  loogle.mean_burst_seconds = 12.0;
  loogle.duration_seconds = 90.0;
  loogle.class_mix = {0.0, 0.8, 0.2};
  workload::MmppOptions sharegpt;
  sharegpt.dataset = workload::Dataset::kShareGpt;
  sharegpt.calm_rate_per_second = 6.0;
  sharegpt.burst_multiplier = 4.0;
  sharegpt.mean_calm_seconds = 12.0;
  sharegpt.mean_burst_seconds = 12.0;
  sharegpt.duration_seconds = 90.0;
  sharegpt.class_mix = {0.8, 0.2, 0.0};
  const workload::Trace trace = workload::MergeTraces(
      "spill-mix", {GenerateMmppTrace(loogle, 4407),
                    GenerateMmppTrace(sharegpt, 4408)});

  serve::Deployment deployment = Llama70bA100();
  deployment.memory_headroom = 0.65;
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  RunConfig config = BurstConfig(true);
  const RunOutcome outcome = RunWorkload(EngineKind::kMuxWise, deployment,
                                         trace, &estimator, config);
  ASSERT_TRUE(outcome.diagnostic.empty()) << outcome.diagnostic;
  EXPECT_GT(outcome.kv_spills, 0u);
  EXPECT_EQ(outcome.kv_restores, outcome.kv_spills);
  EXPECT_EQ(outcome.split.total(), outcome.total);
}

TEST_F(OverloadScenarioTest, BurstComposesWithGpuCrash) {
  // ISSUE 5 chaos composition: the 4x burst plus a PR-2 instance crash
  // in one scenario. Terminal accounting and bit-reproducibility must
  // survive the interaction of spill/restore with epoch bumps.
  const workload::Trace trace = BurstTrace(4.0);
  RunConfig config = BurstConfig(true);
  fault::FaultPlan plan;
  plan.Crash(0, sim::Seconds(30), sim::Seconds(45));
  config.fault_plan = plan;

  const RunOutcome outcome = RunWorkload(
      EngineKind::kMuxWise, Llama70bA100(), trace, estimator_, config);
  EXPECT_TRUE(outcome.diagnostic.empty()) << outcome.diagnostic;
  EXPECT_EQ(outcome.split.total(), outcome.total);
  EXPECT_GT(outcome.split.attained, 0u);

  const DeterminismReport report = VerifyDeterminism(
      EngineKind::kMuxWise, Llama70bA100(), trace, estimator_, config);
  EXPECT_TRUE(report.deterministic) << report.mismatch;
}

/**
 * Zero-behaviour-change gate: a config carrying every overload knob
 * with `enabled == false` must reproduce the default config's digests
 * exactly, on all seven engines.
 */
class OverloadDisabledTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(OverloadDisabledTest, DisabledKnobsLeaveDigestsIdentical) {
  const serve::Deployment deployment = Llama70bA100();
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 60, 1.0, 999);

  RunConfig baseline;
  RunConfig knobs;
  knobs.overload.enabled = false;
  knobs.overload.max_queue_per_class = 1;
  knobs.overload.bucket_rate_tokens_per_s = {1.0, 1.0, 1.0};
  knobs.overload.pressure_occupancy = 0.01;
  const RunOutcome a =
      RunWorkload(GetParam(), deployment, trace, &estimator, baseline);
  const RunOutcome b =
      RunWorkload(GetParam(), deployment, trace, &estimator, knobs);
  EXPECT_EQ(a.event_digest, b.event_digest);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(OutcomeDigest(a), OutcomeDigest(b));
  EXPECT_FALSE(b.overload_active);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, OverloadDisabledTest,
    ::testing::Values(EngineKind::kMuxWise, EngineKind::kChunked,
                      EngineKind::kNanoFlow, EngineKind::kSglangPd,
                      EngineKind::kLoongServe, EngineKind::kWindServe,
                      EngineKind::kTemporal),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      switch (info.param) {
        case EngineKind::kMuxWise:
          return "MuxWise";
        case EngineKind::kChunked:
          return "Chunked";
        case EngineKind::kNanoFlow:
          return "NanoFlow";
        case EngineKind::kSglangPd:
          return "SglangPd";
        case EngineKind::kLoongServe:
          return "LoongServe";
        case EngineKind::kWindServe:
          return "WindServe";
        case EngineKind::kTemporal:
          return "Temporal";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace muxwise::harness
