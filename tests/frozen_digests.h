#ifndef MUXWISE_TESTS_FROZEN_DIGESTS_H_
#define MUXWISE_TESTS_FROZEN_DIGESTS_H_

#include <cstdint>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

namespace muxwise::tests {

/**
 * The seven-engine acceptance scenario's frozen digests — recorded from
 * the seed BEFORE the channel refactor (PR 6) and re-enforced by every
 * structural change since. Shared by test_channel.cc (the sequential
 * regression) and test_parallel_sim.cc (which must reproduce the same
 * digests through the parallel kernel at every thread count): both
 * suites gate on one table, so the constants cannot drift apart.
 */
struct FrozenDigest {
  harness::EngineKind kind;
  std::uint64_t event_digest;
  std::size_t executed_events;
  std::uint64_t outcome_digest;
};

inline constexpr FrozenDigest kFrozenEngineDigests[] = {
    {harness::EngineKind::kMuxWise, 0xb8dab88ef03c0e36ull, 5768,
     0x64057339ff7e20ffull},
    {harness::EngineKind::kChunked, 0x600f439cd0e9b2a9ull, 5166,
     0xa79db285eba1ac92ull},
    {harness::EngineKind::kNanoFlow, 0x98d55bf27e747a59ull, 8710,
     0xc54972f3fb74e7bfull},
    {harness::EngineKind::kSglangPd, 0x7b797a7451b6eb90ull, 5014,
     0x50f684df4c6170f4ull},
    {harness::EngineKind::kLoongServe, 0x7c3cf241ee03682dull, 3912,
     0x6288a403b4628e89ull},
    {harness::EngineKind::kWindServe, 0x4af18835f365b17eull, 6196,
     0xec28858423c39dc5ull},
    {harness::EngineKind::kTemporal, 0x0cddefd2e724a299ull, 6260,
     0x7cd1c27674bb5f39ull},
};

/** The deployment the frozen digests were recorded against. */
inline serve::Deployment FrozenDeployment() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

/** The trace the frozen digests were recorded against. */
inline workload::Trace FrozenTrace() {
  return workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);
}

}  // namespace muxwise::tests

#endif  // MUXWISE_TESTS_FROZEN_DIGESTS_H_
