// Cross-engine integration tests: every serving system implemented in
// this repository replays the same traces on the same simulated
// hardware, and the relative behaviour the paper reports must hold.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/chunked_prefill.h"
#include "baselines/loongserve.h"
#include "baselines/static_disagg.h"
#include "core/estimator.h"
#include "core/muxwise_engine.h"
#include "engine_test_util.h"
#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace muxwise {
namespace {

serve::Deployment Llama70bA100() {
  return serve::Deployment::Make(llm::ModelConfig::Llama70B(),
                                 gpu::GpuSpec::A100());
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    estimator_ = new core::ContentionEstimator(
        core::ContentionEstimator::BuildOffline(Llama70bA100()));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
  }

  testutil::RunResult RunEngine(const std::string& which,
                                const workload::Trace& trace) {
    sim::Simulator simulator;
    const serve::Deployment d = Llama70bA100();
    std::unique_ptr<serve::Engine> engine;
    if (which == "muxwise") {
      engine = std::make_unique<core::MuxWiseEngine>(
          &simulator, d, *estimator_, core::MuxWiseEngine::Options());
    } else if (which == "chunked") {
      baselines::ChunkedPrefillEngine::Options options;
      options.token_budget =
          baselines::ChunkedPrefillEngine::TuneTokenBudget(d, d.slo.tbt);
      engine = std::make_unique<baselines::ChunkedPrefillEngine>(&simulator,
                                                                 d, options);
    } else if (which == "nanoflow") {
      baselines::ChunkedPrefillEngine::Options options;
      options.token_budget =
          baselines::ChunkedPrefillEngine::TuneTokenBudget(d, d.slo.tbt);
      options.nano_overlap = true;
      engine = std::make_unique<baselines::ChunkedPrefillEngine>(&simulator,
                                                                 d, options);
    } else if (which == "sglang-pd") {
      engine = std::make_unique<baselines::StaticDisaggEngine>(
          &simulator, d, baselines::StaticDisaggEngine::Options());
    } else {
      engine = std::make_unique<baselines::LoongServeEngine>(
          &simulator, d, baselines::LoongServeEngine::Options());
    }
    return testutil::RunTrace(simulator, *engine, trace);
  }

  static core::ContentionEstimator* estimator_;
};

core::ContentionEstimator* IntegrationTest::estimator_ = nullptr;

class AllEnginesTest : public IntegrationTest,
                       public ::testing::WithParamInterface<const char*> {};

TEST_P(AllEnginesTest, CompletesConversationTrace) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 60, 1.0, 41);
  const auto result = RunEngine(GetParam(), trace);
  EXPECT_TRUE(result.all_completed) << GetParam();
  EXPECT_EQ(result.metrics.completed(), trace.requests.size());
}

TEST_P(AllEnginesTest, CompletesShareGptTrace) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 80, 2.0, 42);
  const auto result = RunEngine(GetParam(), trace);
  EXPECT_TRUE(result.all_completed) << GetParam();
}

TEST_P(AllEnginesTest, CompletesLoogleTrace) {
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kLoogle, 16, 0.3, 43);
  const auto result = RunEngine(GetParam(), trace);
  EXPECT_TRUE(result.all_completed) << GetParam();
}

TEST_P(AllEnginesTest, EveryTokenAccountedFor) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kToolAgent, 50, 1.0, 44);
  std::int64_t expected = 0;
  for (const auto& spec : trace.requests) expected += spec.output_tokens;
  const auto result = RunEngine(GetParam(), trace);
  ASSERT_TRUE(result.all_completed) << GetParam();
  EXPECT_EQ(result.metrics.output_tokens(), expected) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Engines, AllEnginesTest,
                         ::testing::Values("muxwise", "chunked", "nanoflow",
                                           "sglang-pd", "loongserve"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           name.erase(std::remove(name.begin(), name.end(),
                                                  '-'),
                                      name.end());
                           return name;
                         });

TEST_F(IntegrationTest, MuxWiseBeatsChunkedTtftOnMultiTurn) {
  // The headline comparison (paper Fig. 14): on multi-turn traces with
  // long reused context, MuxWise delivers far better tail TTFT under
  // equal load.
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kToolAgent, 120, 2.5, 45);
  const auto mux = RunEngine("muxwise", trace);
  const auto chunked = RunEngine("chunked", trace);
  ASSERT_TRUE(mux.all_completed);
  ASSERT_TRUE(chunked.all_completed);
  EXPECT_LT(mux.metrics.Ttft().p99_ms, chunked.metrics.Ttft().p99_ms);
}

TEST_F(IntegrationTest, MuxWiseBeatsLoongServeOnMultiTurn) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 100, 1.5, 46);
  const auto mux = RunEngine("muxwise", trace);
  const auto loong = RunEngine("loongserve", trace);
  ASSERT_TRUE(mux.all_completed);
  ASSERT_TRUE(loong.all_completed);
  // LoongServe recomputes histories; MuxWise reuses them.
  EXPECT_LT(mux.metrics.Ttft().mean_ms, loong.metrics.Ttft().mean_ms);
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kConversation, 40, 1.0, 47);
  const auto a = RunEngine("muxwise", trace);
  const auto b = RunEngine("muxwise", trace);
  EXPECT_DOUBLE_EQ(a.metrics.Ttft().p99_ms, b.metrics.Ttft().p99_ms);
  EXPECT_DOUBLE_EQ(a.metrics.Tbt().p99_ms, b.metrics.Tbt().p99_ms);
  EXPECT_EQ(a.end_time, b.end_time);
}

}  // namespace
}  // namespace muxwise
