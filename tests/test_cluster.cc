#include "gpu/cluster.h"

#include <gtest/gtest.h>

#include <vector>

#include "gpu/gpu_spec.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace muxwise::gpu {
namespace {

using sim::Time;

TEST(InterconnectTest, TransferTakesLatencyPlusWireTime) {
  sim::Simulator simulator;
  Interconnect link(&simulator, "test/link", 600e9,
                    sim::Microseconds(10));
  Time done = -1;
  link.Transfer(600e6, [&] { done = simulator.Now(); });  // 1 ms of wire.
  simulator.Run();
  EXPECT_NEAR(sim::ToMilliseconds(done), 1.01, 0.001);
  EXPECT_DOUBLE_EQ(link.bytes_transferred(), 600e6);
  EXPECT_EQ(link.transfers_completed(), 1u);
}

TEST(InterconnectTest, TransfersQueueFifo) {
  sim::Simulator simulator;
  Interconnect link(&simulator, "test/link", 600e9, 0);
  Time first = -1, second = -1;
  link.Transfer(600e6, [&] { first = simulator.Now(); });    // 1 ms.
  link.Transfer(1200e6, [&] { second = simulator.Now(); });  // +2 ms.
  simulator.Run();
  EXPECT_NEAR(sim::ToMilliseconds(first), 1.0, 0.01);
  EXPECT_NEAR(sim::ToMilliseconds(second), 3.0, 0.01);
}

TEST(InterconnectTest, IdleLinkDoesNotInheritStaleSerialization) {
  // Regression: free_at_ used to advance monotonically without being
  // clamped to Now(), so a transfer issued long after the link went idle
  // inherited the stale serialization point instead of starting fresh.
  sim::Simulator simulator;
  Interconnect link(&simulator, "test/link", 600e9, 0);
  Time first = -1, second = -1;
  link.Transfer(600e6, [&] { first = simulator.Now(); });  // 1 ms of wire.
  simulator.ScheduleAt(sim::Seconds(1), [&] {
    link.Transfer(600e6, [&] { second = simulator.Now(); });
  });
  simulator.Run();
  EXPECT_NEAR(sim::ToMilliseconds(first), 1.0, 0.001);
  // The second transfer starts at t=1 s on an idle wire: one more 1 ms
  // of wire time, not queued behind the long-past first transfer.
  EXPECT_NEAR(sim::ToMilliseconds(second), 1001.0, 0.001);
}

TEST(InterconnectTest, BackToBackTransfersStillSerialize) {
  // Companion to the clamp regression: when the wire genuinely is busy,
  // serialization must be preserved exactly as before.
  sim::Simulator simulator;
  Interconnect link(&simulator, "test/link", 600e9, 0);
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) {
    link.Transfer(600e6, [&] { done.push_back(simulator.Now()); });
  }
  simulator.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(sim::ToMilliseconds(done[0]), 1.0, 0.001);
  EXPECT_NEAR(sim::ToMilliseconds(done[1]), 2.0, 0.001);
  EXPECT_NEAR(sim::ToMilliseconds(done[2]), 3.0, 0.001);
  EXPECT_DOUBLE_EQ(link.bytes_transferred(), 1800e6);
}

TEST(InterconnectTest, ZeroByteTransferStillHasLatency) {
  sim::Simulator simulator;
  Interconnect link(&simulator, "test/link", 600e9,
                    sim::Microseconds(10));
  Time done = -1;
  link.Transfer(0.0, [&] { done = simulator.Now(); });
  simulator.Run();
  EXPECT_EQ(done, sim::Microseconds(10));
}

TEST(ClusterTest, AllocatesInstancesWithinBudget) {
  sim::Simulator simulator;
  Cluster cluster(&simulator, GpuSpec::A100(), 8);
  Instance& prefill = cluster.AddInstance(4);
  Instance& decode = cluster.AddInstance(4);
  EXPECT_EQ(cluster.num_instances(), 2u);
  EXPECT_EQ(cluster.allocated_gpus(), 8);
  EXPECT_EQ(prefill.tp_degree, 4);
  EXPECT_EQ(decode.tp_degree, 4);
  EXPECT_NE(prefill.device.get(), decode.device.get());
  EXPECT_NEAR(prefill.TotalHbmCapacity(), 320e9, 1e6);
}

TEST(ClusterDeathTest, OverAllocationIsFatal) {
  sim::Simulator simulator;
  Cluster cluster(&simulator, GpuSpec::A100(), 8);
  cluster.AddInstance(8);
  EXPECT_EXIT(cluster.AddInstance(1), ::testing::ExitedWithCode(1),
              "over-allocated");
}

TEST(ClusterTest, InstancesRunIndependently) {
  sim::Simulator simulator;
  Cluster cluster(&simulator, GpuSpec::A100(), 8);
  Instance& a = cluster.AddInstance(4);
  Instance& b = cluster.AddInstance(4);
  const StreamId sa = a.device->CreateStream(108);
  const StreamId sb = b.device->CreateStream(108);
  Time done_a = -1, done_b = -1;
  // Identical memory-bound kernels on separate instances must not
  // contend (they are distinct physical GPUs).
  a.device->Launch(sa, Kernel::Memcpy(2.039e9),
                   [&] { done_a = simulator.Now(); });
  b.device->Launch(sb, Kernel::Memcpy(2.039e9),
                   [&] { done_b = simulator.Now(); });
  simulator.Run();
  EXPECT_NEAR(sim::ToMilliseconds(done_a), 1.0, 0.02);
  EXPECT_NEAR(sim::ToMilliseconds(done_b), 1.0, 0.02);
}

}  // namespace
}  // namespace muxwise::gpu
