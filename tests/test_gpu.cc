#include "gpu/gpu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gpu/gpu_spec.h"
#include "gpu/host.h"
#include "gpu/kernel.h"
#include "sim/simulator.h"

namespace muxwise::gpu {
namespace {

using sim::Milliseconds;
using sim::Seconds;
using sim::Time;

class GpuTest : public ::testing::Test {
 protected:
  sim::Simulator simulator_;
  GpuSpec spec_ = GpuSpec::A100();
};

TEST_F(GpuTest, SpecNumbersMatchDatasheets) {
  EXPECT_EQ(GpuSpec::A100().sm_count, 108);
  EXPECT_EQ(GpuSpec::H100().sm_count, 132);
  EXPECT_EQ(GpuSpec::H200().sm_count, 132);
  EXPECT_NEAR(GpuSpec::A100().PeakFlops(), 312e12, 1e9);
  EXPECT_NEAR(GpuSpec::H100().PeakFlops(), 989e12, 1e9);
  EXPECT_GT(GpuSpec::H200().hbm_bandwidth, GpuSpec::H100().hbm_bandwidth);
  EXPECT_NEAR(GpuSpec::H200().hbm_capacity, 141e9, 1e6);
}

TEST_F(GpuTest, ByNameRoundTrips) {
  EXPECT_EQ(GpuSpec::ByName("A100").name, "A100");
  EXPECT_EQ(GpuSpec::ByName("H100").name, "H100");
  EXPECT_EQ(GpuSpec::ByName("H200").name, "H200");
}

TEST_F(GpuTest, BandwidthCapSaturatesAtFraction) {
  const GpuSpec spec = GpuSpec::A100();
  // 60% of 108 SMs saturate; beyond that, full bandwidth.
  EXPECT_DOUBLE_EQ(spec.BandwidthCap(spec.sm_count), spec.hbm_bandwidth);
  EXPECT_DOUBLE_EQ(spec.BandwidthCap(108), spec.hbm_bandwidth);
  const double cap16 = spec.BandwidthCap(16);
  EXPECT_NEAR(cap16 / spec.hbm_bandwidth, 16.0 / (0.6 * 108), 1e-9);
  EXPECT_LT(cap16, spec.hbm_bandwidth);
}

TEST_F(GpuTest, AggregateSpecScalesLinearly) {
  const GpuSpec agg = GpuSpec::A100().Aggregate(8);
  EXPECT_EQ(agg.sm_count, 108 * 8);
  EXPECT_DOUBLE_EQ(agg.hbm_bandwidth, GpuSpec::A100().hbm_bandwidth * 8);
  EXPECT_DOUBLE_EQ(agg.max_interference, 0.0);
  // Exactly proportional bandwidth for whole-GPU groups.
  EXPECT_NEAR(agg.BandwidthCap(4 * 108) / agg.hbm_bandwidth, 0.5, 1e-12);
}

TEST_F(GpuTest, ComputeTimeScalesInverselyWithSms) {
  Gpu device(&simulator_, spec_);
  Kernel kernel = Kernel::Prefill(1e14, 0.0);
  const double t_full = device.ComputeTimeSeconds(kernel, 108);
  const double t_half = device.ComputeTimeSeconds(kernel, 54);
  EXPECT_GT(t_half, t_full * 1.5);  // Fewer SMs -> slower (superlinear
                                    // near saturation is fine).
  EXPECT_LT(t_half, t_full * 2.5);
}

TEST_F(GpuTest, SmallKernelsHaveLowEfficiency) {
  Gpu device(&simulator_, spec_);
  // Same total work, 100x smaller kernel achieves much less than 100x
  // shorter compute time per unit work at low work-per-SM.
  Kernel big = Kernel::Prefill(1e14, 0.0);
  Kernel small = Kernel::Prefill(1e11, 0.0);
  const double rate_big = big.flops / device.ComputeTimeSeconds(big, 108);
  const double rate_small =
      small.flops / device.ComputeTimeSeconds(small, 108);
  EXPECT_GT(rate_big, rate_small * 5.0);
}

TEST_F(GpuTest, MemoryBoundKernelTimeIsBytesOverBandwidth) {
  Gpu device(&simulator_, spec_);
  Kernel kernel = Kernel::Memcpy(20e9);
  const double t = device.SoloDurationSeconds(kernel, 108);
  EXPECT_NEAR(t, 20e9 / spec_.hbm_bandwidth, 1e-4);
}

TEST_F(GpuTest, SoloDurationIsRooflineMax) {
  Gpu device(&simulator_, spec_);
  Kernel kernel = Kernel::Decode(1e9, 20e9);  // Strongly memory-bound.
  kernel.overlap_alpha = 0.0;
  const double t = device.SoloDurationSeconds(kernel, 108);
  EXPECT_NEAR(t, 20e9 / spec_.hbm_bandwidth, 1e-3);
}

TEST_F(GpuTest, FixedTimeAddsToDuration) {
  Gpu device(&simulator_, spec_);
  Kernel kernel = Kernel::Memcpy(20e9);
  kernel.fixed_time = Milliseconds(3);
  const double with = device.SoloDurationSeconds(kernel, 108);
  kernel.fixed_time = 0;
  const double without = device.SoloDurationSeconds(kernel, 108);
  EXPECT_NEAR(with - without, 0.003, 1e-9);
}

TEST_F(GpuTest, Llama70bPrefillCalibration) {
  // Anchor from the paper (Fig. 6-a): a ~4K-token chunk of Llama-70B on
  // 8xA100 takes ~505 ms. Per-GPU share: 2*70e9*4096/8 FLOPs.
  Gpu device(&simulator_, spec_);
  Kernel kernel = Kernel::Prefill(2.0 * 70e9 * 4096 / 8, 17.5e9);
  const double t = device.SoloDurationSeconds(kernel, 108);
  EXPECT_GT(t, 0.35);
  EXPECT_LT(t, 0.65);
}

TEST_F(GpuTest, SingleKernelRunsForSoloDuration) {
  Gpu device(&simulator_, spec_);
  const StreamId stream = device.CreateStream(108);
  Kernel kernel = Kernel::Memcpy(2.039e9);  // 1 ms at full bandwidth.
  Time done = -1;
  device.Launch(stream, kernel, [&] { done = simulator_.Now(); });
  simulator_.Run();
  EXPECT_NEAR(sim::ToMilliseconds(done), 1.0, 0.05);
}

TEST_F(GpuTest, StreamExecutesInOrder) {
  Gpu device(&simulator_, spec_);
  const StreamId stream = device.CreateStream(108);
  std::vector<int> order;
  device.Launch(stream, Kernel::Memcpy(1e9), [&] { order.push_back(1); });
  device.Launch(stream, Kernel::Memcpy(1e9), [&] { order.push_back(2); });
  device.Launch(stream, Kernel::Memcpy(1e9), [&] { order.push_back(3); });
  EXPECT_EQ(device.StreamQueueDepth(stream), 2u);  // One running.
  simulator_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(device.StreamIdle(stream));
  EXPECT_EQ(device.kernels_completed(), 3u);
}

TEST_F(GpuTest, OnStreamDrainedFiresAfterQueuedWork) {
  Gpu device(&simulator_, spec_);
  const StreamId stream = device.CreateStream(108);
  Time kernel_done = -1, drained = -1;
  device.Launch(stream, Kernel::Memcpy(2e9),
                [&] { kernel_done = simulator_.Now(); });
  device.OnStreamDrained(stream, [&] { drained = simulator_.Now(); });
  simulator_.Run();
  EXPECT_EQ(drained, kernel_done);
}

TEST_F(GpuTest, OnStreamDrainedOnIdleStreamFiresImmediately) {
  Gpu device(&simulator_, spec_);
  const StreamId stream = device.CreateStream(108);
  bool fired = false;
  device.OnStreamDrained(stream, [&] { fired = true; });
  simulator_.Run();
  EXPECT_TRUE(fired);
}

TEST_F(GpuTest, ConcurrentStreamsShareBandwidth) {
  Gpu device(&simulator_, spec_);
  const StreamId a = device.CreateStream(54);
  const StreamId b = device.CreateStream(54);
  // Two memory-bound kernels, each would take 1 ms alone at its cap.
  Kernel kernel = Kernel::Memcpy(2.039e9);
  Time done_a = -1, done_b = -1;
  device.Launch(a, kernel, [&] { done_a = simulator_.Now(); });
  device.Launch(b, kernel, [&] { done_b = simulator_.Now(); });
  simulator_.Run();
  // Together they contend: each takes roughly 2x (plus interference).
  EXPECT_GT(sim::ToMilliseconds(done_a), 1.5);
  EXPECT_GT(sim::ToMilliseconds(done_b), 1.5);
  EXPECT_LT(sim::ToMilliseconds(done_a), 3.2);
}

TEST_F(GpuTest, CompletionFreesBandwidthForRemainingKernel) {
  Gpu device(&simulator_, spec_);
  const StreamId a = device.CreateStream(54);
  const StreamId b = device.CreateStream(54);
  Time done_small = -1, done_big = -1;
  device.Launch(a, Kernel::Memcpy(1e9), [&] { done_small = simulator_.Now(); });
  device.Launch(b, Kernel::Memcpy(20e9), [&] { done_big = simulator_.Now(); });
  simulator_.Run();
  // The big kernel finishes faster than if it were contended throughout.
  const double big_ms = sim::ToMilliseconds(done_big);
  EXPECT_LT(big_ms, 2.0 * 20e9 / spec_.hbm_bandwidth * 1e3);
  EXPECT_GT(big_ms, 20e9 / spec_.hbm_bandwidth * 1e3 * 0.9);
  EXPECT_LT(done_small, done_big);
}

TEST_F(GpuTest, InterferenceIsDeterministic) {
  auto run_once = [&]() {
    sim::Simulator simulator;
    Gpu device(&simulator, GpuSpec::A100());
    const StreamId a = device.CreateStream(64);
    const StreamId b = device.CreateStream(44);
    Time done = -1;
    device.Launch(a, Kernel::Prefill(5e12, 5e9), {});
    device.Launch(b, Kernel::Decode(5e11, 18e9),
                  [&] { done = simulator.Now(); });
    simulator.Run();
    return done;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(GpuTest, DecodeSlowdownUnderPrefillCotenantIsBounded) {
  // Paper Fig. 11: slowdown ranges from ~0 to ~30% across configs.
  for (int decode_sms = 16; decode_sms <= 96; decode_sms += 16) {
    sim::Simulator simulator;
    Gpu device(&simulator, GpuSpec::A100());
    const StreamId prefill = device.CreateStream(108 - decode_sms);
    const StreamId decode = device.CreateStream(decode_sms);
    Kernel decode_kernel = Kernel::Decode(7e11, 18e9);
    Kernel prefill_kernel = Kernel::Prefill(7e13, 18e9);
    const double solo = device.SoloDurationSeconds(decode_kernel, decode_sms);
    Time done = -1;
    device.Launch(prefill, prefill_kernel, {});
    device.Launch(decode, decode_kernel, [&] { done = simulator.Now(); });
    simulator.Run();
    const double slowdown = sim::ToSeconds(done) / solo;
    EXPECT_GE(slowdown, 0.99) << "decode_sms=" << decode_sms;
    EXPECT_LE(slowdown, 1.45) << "decode_sms=" << decode_sms;
  }
}

TEST_F(GpuTest, OversubscriptionScalesEffectiveSms) {
  // Two compute-bound kernels each granted the full device finish in
  // about twice their solo time (WindServe-style unmanaged streams).
  Gpu device(&simulator_, spec_);
  const StreamId a = device.CreateStream(108);
  const StreamId b = device.CreateStream(108);
  Kernel kernel = Kernel::Prefill(5e13, 0.0);
  const double solo = device.SoloDurationSeconds(kernel, 108);
  Time done_a = -1, done_b = -1;
  device.Launch(a, kernel, [&] { done_a = simulator_.Now(); });
  device.Launch(b, kernel, [&] { done_b = simulator_.Now(); });
  simulator_.Run();
  EXPECT_GT(sim::ToSeconds(done_a), 1.7 * solo);
  EXPECT_LT(sim::ToSeconds(done_b), 2.6 * solo);
}

TEST_F(GpuTest, ReconfigurationAppliesToNextKernel) {
  Gpu device(&simulator_, spec_);
  const StreamId stream = device.CreateStream(16);
  Kernel kernel = Kernel::Prefill(1e13, 0.0);
  const double t16 = device.SoloDurationSeconds(kernel, 16);
  const double t96 = device.SoloDurationSeconds(kernel, 96);
  Time first = -1, second = -1;
  device.Launch(stream, kernel, [&] { first = simulator_.Now(); });
  device.SetStreamSms(stream, 96);  // Running kernel keeps 16 SMs.
  device.Launch(stream, kernel, [&] { second = simulator_.Now(); });
  simulator_.Run();
  EXPECT_NEAR(sim::ToSeconds(first), t16, t16 * 0.01);
  EXPECT_NEAR(sim::ToSeconds(second) - sim::ToSeconds(first), t96,
              t96 * 0.01);
}

TEST_F(GpuTest, UtilizationIntegralTracksBusySms) {
  Gpu device(&simulator_, spec_);
  const StreamId stream = device.CreateStream(54);  // Half the device.
  Kernel kernel = Kernel::Prefill(1e13, 0.0);
  const double solo = device.SoloDurationSeconds(kernel, 54);
  device.Launch(stream, kernel, {});
  simulator_.Run();
  const double integral = device.SmUtilizationIntegral();
  EXPECT_NEAR(integral, solo * 1e9 * 0.5, solo * 1e9 * 0.02);
  EXPECT_NEAR(device.BusyTimeIntegral(), solo * 1e9, solo * 1e9 * 0.02);
}

TEST_F(GpuTest, BubbleRatioMeasuresStreamGaps) {
  Gpu device(&simulator_, spec_);
  const StreamId stream = device.CreateStream(108);
  Kernel kernel = Kernel::Memcpy(2.039e9);  // ~1 ms.
  device.Launch(stream, kernel, [&] {
    // Leave a ~1 ms gap, then run another 1 ms kernel.
    simulator_.ScheduleAfter(Milliseconds(1), [&] {
      device.Launch(stream, Kernel::Memcpy(2.039e9), {});
    });
  });
  simulator_.Run();
  const double ratio = device.stream_stats(stream).BubbleRatio();
  EXPECT_NEAR(ratio, 1.0 / 3.0, 0.05);
}

TEST(HostThreadTest, SerializesSubmissions) {
  sim::Simulator simulator;
  HostThread host(&simulator);
  Time first = -1, second = -1;
  host.Submit(Milliseconds(10), [&] { first = simulator.Now(); });
  host.Submit(Milliseconds(5), [&] { second = simulator.Now(); });
  EXPECT_EQ(host.busy_until(), Milliseconds(15));
  simulator.Run();
  EXPECT_EQ(first, Milliseconds(10));
  EXPECT_EQ(second, Milliseconds(15));
  EXPECT_EQ(host.total_busy(), Milliseconds(15));
}

TEST(HostThreadTest, IdleAfterWorkDrains) {
  sim::Simulator simulator;
  HostThread host(&simulator);
  host.Submit(Milliseconds(1), nullptr);
  EXPECT_FALSE(host.Idle());
  simulator.RunUntil(Milliseconds(2));
  EXPECT_TRUE(host.Idle());
}

}  // namespace
}  // namespace muxwise::gpu
