#include "serve/quantile_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace muxwise::serve {
namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Uniform01(std::uint64_t seed, std::uint64_t index) {
  const std::uint64_t bits = SplitMix64(SplitMix64(seed) ^ index);
  return (static_cast<double>(bits >> 11) + 0.5) * 0x1.0p-53;
}

/** Deterministic lognormal-ish latencies (ms): exp(mu + sigma * z). */
std::vector<double> LognormalSamples(std::size_t n, std::uint64_t seed) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u1 = Uniform01(seed, 2 * i);
    const double u2 = Uniform01(seed, 2 * i + 1);
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    out.push_back(std::exp(3.0 + 0.8 * z));  // Median ~20 ms.
  }
  return out;
}

double ExactPercentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, p);
}

TEST(QuantileSketchTest, EmptySketchReportsZeros) {
  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.Count(), 0u);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.Min(), 0.0);
  EXPECT_EQ(sketch.Max(), 0.0);
  EXPECT_EQ(sketch.Sum(), 0.0);
}

TEST(QuantileSketchTest, HandComputedFixtures) {
  QuantileSketch sketch;
  for (double v : {1.0, 2.0, 3.0, 4.0}) sketch.Add(v);
  // R-7 interpolation: rank (n-1)*p = 1.5 between 2 and 3.
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 4.0);
  // (n-1)*p = 3 * 0.99 = 2.97 between 3 and 4.
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.99), 3.97);
  EXPECT_DOUBLE_EQ(sketch.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(sketch.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(sketch.Min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Max(), 4.0);
}

TEST(QuantileSketchTest, SingleSampleIsEveryQuantile) {
  QuantileSketch sketch;
  sketch.Add(42.0);
  for (double p : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.Quantile(p), 42.0) << "p=" << p;
  }
}

TEST(QuantileSketchTest, ExactTierIsBitIdenticalToPercentileSorted) {
  const std::vector<double> samples = LognormalSamples(1000, 17);
  QuantileSketch sketch;
  for (double v : samples) sketch.Add(v);
  ASSERT_FALSE(sketch.overflowed());
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(sketch.Quantile(p), ExactPercentile(samples, p)) << "p=" << p;
  }
  const double sum = std::accumulate(samples.begin(), samples.end(), 0.0);
  EXPECT_EQ(sketch.Sum(), sum);  // Left-fold order reproduced exactly.
}

TEST(QuantileSketchTest, CountLessEqualMatchesCountIfOnExactTier) {
  const std::vector<double> samples = LognormalSamples(500, 3);
  QuantileSketch sketch;
  for (double v : samples) sketch.Add(v);
  for (double threshold : {5.0, 20.0, 60.0}) {
    const auto expected = static_cast<double>(std::count_if(
        samples.begin(), samples.end(),
        [threshold](double v) { return v <= threshold; }));
    EXPECT_EQ(sketch.CountLessEqual(threshold), expected);
  }
}

TEST(QuantileSketchTest, NegativeSamplesClampToZeroButMinStaysVisible) {
  QuantileSketch sketch;
  sketch.Add(-5.0);
  sketch.Add(10.0);
  EXPECT_DOUBLE_EQ(sketch.Min(), -5.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 10.0);
}

TEST(QuantileSketchTest, MergeOrderInvarianceOnExactTier) {
  const std::vector<double> a = LognormalSamples(300, 5);
  const std::vector<double> b = LognormalSamples(300, 6);
  const std::vector<double> c = LognormalSamples(300, 7);
  auto build = [](const std::vector<double>& samples) {
    QuantileSketch s;
    for (double v : samples) s.Add(v);
    return s;
  };
  QuantileSketch abc = build(a);
  abc.Merge(build(b));
  abc.Merge(build(c));
  QuantileSketch cba = build(c);
  cba.Merge(build(b));
  cba.Merge(build(a));
  EXPECT_EQ(abc.StateDigest(), cba.StateDigest());
  EXPECT_EQ(abc.Quantile(0.5), cba.Quantile(0.5));
  EXPECT_EQ(abc.Quantile(0.99), cba.Quantile(0.99));
  EXPECT_EQ(abc.Count(), cba.Count());
}

TEST(QuantileSketchTest, MergeOrderInvariancePastOverflow) {
  // Shards small enough to overflow their exact tiers, so the digest
  // must be stable across both histogram merge order and the shard
  // boundaries themselves.
  const std::vector<double> all = LognormalSamples(4000, 11);
  auto shard = [&all](std::size_t begin, std::size_t end) {
    QuantileSketch s(/*exact_capacity=*/256);
    for (std::size_t i = begin; i < end; ++i) s.Add(all[i]);
    return s;
  };
  QuantileSketch forward = shard(0, 1000);
  forward.Merge(shard(1000, 2500));
  forward.Merge(shard(2500, 4000));
  QuantileSketch backward = shard(2500, 4000);
  backward.Merge(shard(0, 1000));
  backward.Merge(shard(1000, 2500));
  QuantileSketch whole(/*exact_capacity=*/256);
  for (double v : all) whole.Add(v);
  EXPECT_TRUE(forward.overflowed());
  EXPECT_EQ(forward.StateDigest(), backward.StateDigest());
  EXPECT_EQ(forward.StateDigest(), whole.StateDigest());
  EXPECT_EQ(forward.Count(), 4000u);
  EXPECT_EQ(forward.Quantile(0.99), whole.Quantile(0.99));
}

TEST(QuantileSketchTest, InsertionOrderInvariancePastOverflow) {
  std::vector<double> samples = LognormalSamples(3000, 23);
  QuantileSketch ascending(/*exact_capacity=*/128);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double v : sorted) ascending.Add(v);
  QuantileSketch shuffled(/*exact_capacity=*/128);
  for (double v : samples) shuffled.Add(v);
  EXPECT_EQ(ascending.StateDigest(), shuffled.StateDigest());
}

TEST(QuantileSketchTest, HistogramTierAccuracyWithinBucketBound) {
  const std::vector<double> samples = LognormalSamples(100000, 41);
  QuantileSketch sketch(/*exact_capacity=*/1024);
  for (double v : samples) sketch.Add(v);
  ASSERT_TRUE(sketch.overflowed());
  // A bucket spans 1/32 of a binade, so mid-bucket estimates sit within
  // ~1.6% of the exact value; allow 2x slack for rank interpolation.
  for (double p : {0.5, 0.9, 0.99}) {
    const double exact = ExactPercentile(samples, p);
    const double approx = sketch.Quantile(p);
    EXPECT_NEAR(approx, exact, exact * 0.032) << "p=" << p;
  }
  EXPECT_EQ(sketch.Count(), samples.size());
  EXPECT_DOUBLE_EQ(
      sketch.Min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_DOUBLE_EQ(
      sketch.Max(), *std::max_element(samples.begin(), samples.end()));
}

TEST(QuantileSketchTest, CountLessEqualStaysMonotonePastOverflow) {
  const std::vector<double> samples = LognormalSamples(50000, 9);
  QuantileSketch sketch(/*exact_capacity=*/512);
  for (double v : samples) sketch.Add(v);
  ASSERT_TRUE(sketch.overflowed());
  double previous = -1.0;
  for (double threshold = 1.0; threshold <= 256.0; threshold *= 2.0) {
    const double count = sketch.CountLessEqual(threshold);
    EXPECT_GE(count, previous);
    previous = count;
    const auto exact = static_cast<double>(std::count_if(
        samples.begin(), samples.end(),
        [threshold](double v) { return v <= threshold; }));
    // Rank error is bounded by the population of the split bucket.
    EXPECT_NEAR(count, exact, static_cast<double>(samples.size()) * 0.02);
  }
  // At Max() the split bucket is interpolated, so the count lands just
  // shy of n; anything strictly above the top bucket covers everything.
  EXPECT_NEAR(sketch.CountLessEqual(sketch.Max()),
              static_cast<double>(samples.size()), 1.0);
  EXPECT_EQ(sketch.CountLessEqual(sketch.Max() * 2.0),
            static_cast<double>(samples.size()));
}

TEST(QuantileSketchTest, MemoryStaysBoundedPastOverflow) {
  QuantileSketch sketch(/*exact_capacity=*/256);
  const std::vector<double> samples = LognormalSamples(10000, 13);
  for (double v : samples) sketch.Add(v);
  ASSERT_TRUE(sketch.overflowed());
  const std::size_t bytes_at_overflow = sketch.MemoryBytes();
  for (int i = 0; i < 100000; ++i) {
    sketch.Add(samples[static_cast<std::size_t>(i) % samples.size()]);
  }
  EXPECT_EQ(sketch.MemoryBytes(), bytes_at_overflow);
}

TEST(QuantileSketchTest, SummarizeAgreesWithIndividualQueries) {
  const std::vector<double> samples = LognormalSamples(2000, 31);
  QuantileSketch sketch;
  for (double v : samples) sketch.Add(v);
  const LatencySummary summary = sketch.Summarize();
  EXPECT_EQ(summary.count, samples.size());
  EXPECT_EQ(summary.mean_ms, sketch.Mean());
  EXPECT_EQ(summary.p50_ms, sketch.Quantile(0.5));
  EXPECT_EQ(summary.p99_ms, sketch.Quantile(0.99));
}

}  // namespace
}  // namespace muxwise::serve
