#include "muxlint/muxlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace muxwise::muxlint {
namespace {

LintReport Lint(const std::string& path, const std::string& content) {
  LintReport report;
  LintContent(path, content, report);
  return report;
}

bool HasRule(const LintReport& report, const std::string& rule) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&rule](const Finding& f) { return f.rule == rule; });
}

TEST(MuxlintTest, FlagsWallClockUse) {
  const LintReport r = Lint(
      "src/foo.cc", "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "wall-clock");
  EXPECT_EQ(r.findings[0].line, 1);
}

TEST(MuxlintTest, FlagsCTimeCall) {
  EXPECT_TRUE(HasRule(Lint("src/foo.cc", "std::int64_t t = time(nullptr);\n"),
                      "wall-clock"));
}

TEST(MuxlintTest, DoesNotFlagIdentifiersContainingTime) {
  const LintReport r =
      Lint("src/foo.cc",
           "sim::Duration busy_time(0);\nauto x = last_time(a);\n");
  EXPECT_FALSE(HasRule(r, "wall-clock"));
}

TEST(MuxlintTest, SuppressionSilencesWallClock) {
  const LintReport r = Lint(
      "src/foo.cc",
      "auto t = std::chrono::steady_clock::now();  "
      "// muxlint: allow(wall-clock)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, SuppressionIsRuleSpecific) {
  // allow(raw-rand) must not silence a wall-clock finding.
  const LintReport r = Lint(
      "src/foo.cc",
      "auto t = std::chrono::steady_clock::now();  "
      "// muxlint: allow(raw-rand)\n");
  EXPECT_TRUE(HasRule(r, "wall-clock"));
}

TEST(MuxlintTest, FlagsRawRandOutsideRngModule) {
  EXPECT_TRUE(HasRule(Lint("src/serve/foo.cc", "int x = rand();\n"),
                      "raw-rand"));
  EXPECT_TRUE(HasRule(
      Lint("src/serve/foo.cc", "std::random_device rd;\n"), "raw-rand"));
  EXPECT_TRUE(HasRule(
      Lint("src/serve/foo.cc", "std::mt19937_64 engine;\n"), "raw-rand"));
}

TEST(MuxlintTest, ExemptsRngModuleFromRawRand) {
  EXPECT_FALSE(HasRule(
      Lint("src/sim/rng.cc", "std::mt19937_64 engine_;\n"), "raw-rand"));
}

TEST(MuxlintTest, FlagsPointerKeyedUnorderedContainers) {
  EXPECT_TRUE(HasRule(
      Lint("src/foo.h", "std::unordered_map<Node*, int> index_;\n"),
      "ptr-key-container"));
  EXPECT_TRUE(HasRule(
      Lint("src/foo.h", "std::unordered_set<const Node*> seen_;\n"),
      "ptr-key-container"));
}

TEST(MuxlintTest, AllowsValueOrIdKeyedUnorderedContainers) {
  const LintReport r = Lint(
      "src/foo.h",
      "std::unordered_map<EventId, std::weak_ptr<Event>> index_;\n"
      "std::unordered_map<std::string, Node*> by_name_;\n");
  EXPECT_FALSE(HasRule(r, "ptr-key-container"));
}

TEST(MuxlintTest, FlagsFloatingPointSimTime) {
  EXPECT_TRUE(HasRule(
      Lint("src/foo.cc", "double completion_time = 0.0;\n"),
      "float-sim-time"));
  EXPECT_TRUE(HasRule(Lint("src/foo.cc", "double deadline = 1.5;\n"),
                      "float-sim-time"));
  EXPECT_TRUE(HasRule(Lint("src/foo.cc", "float latency_ns = 0;\n"),
                      "float-sim-time"));
}

TEST(MuxlintTest, AllowsIntegerSimTimeAndPlainDoubles) {
  const LintReport r = Lint(
      "src/foo.cc",
      "sim::Time completion_time = 0;\n"
      "double drain_timeout_seconds = 600.0;\n"
      "double rate = 0.5;\n");
  EXPECT_FALSE(HasRule(r, "float-sim-time"));
}

TEST(MuxlintTest, FlagsBareAssert) {
  EXPECT_TRUE(HasRule(Lint("src/foo.cc", "assert(x > 0);\n"),
                      "bare-assert"));
}

TEST(MuxlintTest, AllowsStaticAssertAndGtestMacros) {
  const LintReport r = Lint(
      "src/foo.cc",
      "static_assert(sizeof(int) == 4);\nASSERT_EQ(a, b);\n");
  EXPECT_FALSE(HasRule(r, "bare-assert"));
}

TEST(MuxlintTest, IgnoresPatternsInCommentsAndStrings) {
  const LintReport r = Lint(
      "src/foo.cc",
      "// calls rand() internally, see std::chrono docs\n"
      "/* assert(false) would be wrong here */\n"
      "const char* s = \"std::random_device\";\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(MuxlintTest, TracksMultiLineBlockComments) {
  const LintReport r = Lint(
      "src/foo.cc",
      "/* start of a long comment\n"
      "   rand() inside it\n"
      "   end */\n"
      "int x = rand();\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 4);
}

TEST(MuxlintTest, RequiresIncludeGuardInHeaders) {
  const LintReport missing =
      Lint("src/foo.h", "#pragma once\nint f();\n");
  EXPECT_TRUE(HasRule(missing, "include-guard"));

  const LintReport good = Lint(
      "src/foo.h",
      "#ifndef MUXWISE_FOO_H_\n#define MUXWISE_FOO_H_\n"
      "int f();\n#endif  // MUXWISE_FOO_H_\n");
  EXPECT_FALSE(HasRule(good, "include-guard"));
}

TEST(MuxlintTest, IncludeGuardOnlyAppliesToHeaders) {
  EXPECT_FALSE(HasRule(Lint("src/foo.cc", "int f() { return 1; }\n"),
                       "include-guard"));
}

TEST(MuxlintTest, IncludeGuardSuppressionWorksFileWide) {
  const LintReport r = Lint(
      "src/foo.h",
      "// muxlint: allow(include-guard) -- generated header\n"
      "#pragma once\nint f();\n");
  EXPECT_FALSE(HasRule(r, "include-guard"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, JsonReportIsWellFormedAndComplete) {
  LintReport report;
  LintContent("src/a.cc", "int x = rand();\n", report);
  const std::string json = FormatJson(report);
  EXPECT_NE(json.find("\"rule\": \"raw-rand\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
}

TEST(MuxlintTest, FlagsEpochlessCallbackInFaultCapableLayers) {
  const LintReport r = Lint(
      "src/baselines/foo.cc",
      "host_->Submit(delay, [this, id] { OnDone(id); });\n");
  ASSERT_TRUE(HasRule(r, "dangling-callback"));
}

TEST(MuxlintTest, AcceptsEpochGuardedCallback) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "host_->Submit(delay, [this, id, e = epoch()] { OnDone(id); });\n"
      "link_->Transfer(bytes, [this, pe = p_epoch_] { Resume(); });\n");
  EXPECT_FALSE(HasRule(r, "dangling-callback"));
}

TEST(MuxlintTest, DanglingCallbackScopedToFaultCapableLayers) {
  // The same pattern outside src/baselines and src/core (layers without
  // crash epochs) is not a finding.
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "host_->Submit(delay, [this, id] { OnDone(id); });\n");
  EXPECT_FALSE(HasRule(r, "dangling-callback"));
}

TEST(MuxlintTest, DanglingCallbackIgnoresThislessLambdas) {
  const LintReport r = Lint(
      "src/baselines/foo.cc",
      "link_->Transfer(bytes, [&done] { done = true; });\n");
  EXPECT_FALSE(HasRule(r, "dangling-callback"));
}

TEST(MuxlintTest, DanglingCallbackSuppressible) {
  const LintReport r = Lint(
      "src/baselines/foo.cc",
      "host_->Submit(d, [this] { F(); });  "
      "// muxlint: allow(dangling-callback)\n");
  EXPECT_FALSE(HasRule(r, "dangling-callback"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, FlagsWallClockNamesInTraceLayer) {
  // In the observability layer a clock *name* is a finding even
  // without a call — one `steady_clock` anywhere poisons trace
  // reproducibility.
  EXPECT_TRUE(HasRule(
      Lint("src/obs/trace.cc", "using clock_t2 = std::chrono::system_clock;\n"),
      "trace-wall-clock"));
  EXPECT_TRUE(HasRule(
      Lint("tools/trace2json/main.cc", "std::int64_t t = clock();\n"),
      "trace-wall-clock"));
  EXPECT_TRUE(HasRule(
      Lint("tools/tracecap/main.cc",
           "clock_gettime(CLOCK_MONOTONIC, &ts);\n"),
      "trace-wall-clock"));
}

TEST(MuxlintTest, TraceWallClockScopedToTraceCode) {
  // Outside the trace layer only the repo-wide wall-clock rule (which
  // needs a call) applies; the name alone passes.
  const LintReport r =
      Lint("src/serve/foo.cc", "// mentions steady_clock by name\n"
                               "int steady_clock_like = 0;\n");
  EXPECT_FALSE(HasRule(r, "trace-wall-clock"));
}

TEST(MuxlintTest, FlagsPriorityQueueInSimulationSubstrate) {
  EXPECT_TRUE(HasRule(
      Lint("src/sim/foo.cc",
           "std::priority_queue<Ev, std::vector<Ev>, decltype(cmp)> q(cmp);\n"),
      "priority-queue"));
  EXPECT_TRUE(HasRule(
      Lint("src/gpu/foo.cc", "std::priority_queue<int> q;\n"),
      "priority-queue"));
}

TEST(MuxlintTest, PriorityQueueScopedToSimAndGpu) {
  // The kv radix tree legitimately uses one for LRU eviction ranking.
  EXPECT_FALSE(HasRule(
      Lint("src/kv/radix_tree.cc", "std::priority_queue<HeapEntry> heap;\n"),
      "priority-queue"));
}

TEST(MuxlintTest, PriorityQueueSuppressible) {
  const LintReport r = Lint(
      "src/sim/foo.cc",
      "std::priority_queue<int> q;  // muxlint: allow(priority-queue)\n");
  EXPECT_FALSE(HasRule(r, "priority-queue"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, FlagsDirectEventAllocation) {
  EXPECT_TRUE(HasRule(
      Lint("src/sim/foo.cc", "Event* e = new Event{when, id};\n"),
      "event-arena"));
  EXPECT_TRUE(HasRule(
      Lint("src/sim/foo.cc", "auto e = std::make_unique<Event>();\n"),
      "event-arena"));
  EXPECT_TRUE(HasRule(
      Lint("src/gpu/foo.cc", "delete pending_event;\n"), "event-arena"));
}

TEST(MuxlintTest, EventArenaIgnoresNonEventAllocationsAndOtherLayers) {
  // Unrelated allocations in scope, and Event allocations out of scope.
  EXPECT_FALSE(HasRule(
      Lint("src/sim/foo.cc", "auto s = std::make_unique<Stream>();\n"),
      "event-arena"));
  EXPECT_FALSE(HasRule(
      Lint("src/obs/foo.cc", "Event* e = new Event;\n"), "event-arena"));
  // `= delete;` declarations are not deletions of events.
  EXPECT_FALSE(HasRule(
      Lint("src/sim/foo.h", "Simulator(const Simulator&) = delete;\n"),
      "event-arena"));
}

TEST(MuxlintTest, EventArenaSuppressible) {
  const LintReport r = Lint(
      "src/sim/foo.cc",
      "Event* e = new Event;  // muxlint: allow(event-arena)\n");
  EXPECT_FALSE(HasRule(r, "event-arena"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, FlagsQueuePushesInServingLayers) {
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc", "waiting_.push_back(std::move(request));\n"),
      "unbounded-queue"));
  EXPECT_TRUE(HasRule(
      Lint("src/serve/foo.cc", "held_[key].push_back(index);\n"),
      "unbounded-queue"));
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc", "pending_completions_.emplace_back(r);\n"),
      "unbounded-queue"));
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc", "waiting_.push_front(std::move(r));\n"),
      "unbounded-queue"));
}

TEST(MuxlintTest, UnboundedQueueScopedToServingLayers) {
  // Queues outside the serving path (and non-member locals) are fine.
  EXPECT_FALSE(HasRule(
      Lint("src/sim/foo.cc", "waiting_.push_back(std::move(ev));\n"),
      "unbounded-queue"));
  EXPECT_FALSE(HasRule(
      Lint("src/core/foo.cc", "requeue.push_back(std::move(r));\n"),
      "unbounded-queue"));
  // Metric sample vectors merely contain a queue-ish word.
  EXPECT_FALSE(HasRule(
      Lint("src/serve/metrics.cc", "queue_delay_ms.push_back(ms);\n"),
      "unbounded-queue"));
}

TEST(MuxlintTest, UnboundedQueueSuppressible) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "waiting_.push_back(r);  // muxlint: allow(unbounded-queue)\n");
  EXPECT_FALSE(HasRule(r, "unbounded-queue"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, RulesListCoversEveryEmittableRule) {
  const auto rules = Rules();
  auto named = [&rules](const std::string& name) {
    return std::any_of(rules.begin(), rules.end(),
                       [&name](const RuleInfo& r) { return r.name == name; });
  };
  EXPECT_TRUE(named("wall-clock"));
  EXPECT_TRUE(named("raw-rand"));
  EXPECT_TRUE(named("ptr-key-container"));
  EXPECT_TRUE(named("float-sim-time"));
  EXPECT_TRUE(named("bare-assert"));
  EXPECT_TRUE(named("dangling-callback"));
  EXPECT_TRUE(named("trace-wall-clock"));
  EXPECT_TRUE(named("priority-queue"));
  EXPECT_TRUE(named("event-arena"));
  EXPECT_TRUE(named("unbounded-queue"));
  EXPECT_TRUE(named("include-guard"));
}

}  // namespace
}  // namespace muxwise::muxlint
