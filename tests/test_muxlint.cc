#include "muxlint/muxlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace muxwise::muxlint {
namespace {

LintReport Lint(const std::string& path, const std::string& content) {
  LintReport report;
  LintContent(path, content, report);
  return report;
}

bool HasRule(const LintReport& report, const std::string& rule) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&rule](const Finding& f) { return f.rule == rule; });
}

TEST(MuxlintTest, FlagsWallClockUse) {
  const LintReport r = Lint(
      "src/foo.cc", "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "wall-clock");
  EXPECT_EQ(r.findings[0].line, 1);
}

TEST(MuxlintTest, FlagsCTimeCall) {
  EXPECT_TRUE(HasRule(Lint("src/foo.cc", "std::int64_t t = time(nullptr);\n"),
                      "wall-clock"));
}

TEST(MuxlintTest, DoesNotFlagIdentifiersContainingTime) {
  const LintReport r =
      Lint("src/foo.cc",
           "sim::Duration busy_time(0);\nauto x = last_time(a);\n");
  EXPECT_FALSE(HasRule(r, "wall-clock"));
}

TEST(MuxlintTest, SuppressionSilencesWallClock) {
  const LintReport r = Lint(
      "src/foo.cc",
      "auto t = std::chrono::steady_clock::now();  "
      "// muxlint: allow(wall-clock)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, SuppressionIsRuleSpecific) {
  // allow(raw-rand) must not silence a wall-clock finding.
  const LintReport r = Lint(
      "src/foo.cc",
      "auto t = std::chrono::steady_clock::now();  "
      "// muxlint: allow(raw-rand)\n");
  EXPECT_TRUE(HasRule(r, "wall-clock"));
}

TEST(MuxlintTest, FlagsRawRandOutsideRngModule) {
  EXPECT_TRUE(HasRule(Lint("src/serve/foo.cc", "int x = rand();\n"),
                      "raw-rand"));
  EXPECT_TRUE(HasRule(
      Lint("src/serve/foo.cc", "std::random_device rd;\n"), "raw-rand"));
  EXPECT_TRUE(HasRule(
      Lint("src/serve/foo.cc", "std::mt19937_64 engine;\n"), "raw-rand"));
}

TEST(MuxlintTest, ExemptsRngModuleFromRawRand) {
  EXPECT_FALSE(HasRule(
      Lint("src/sim/rng.cc", "std::mt19937_64 engine_;\n"), "raw-rand"));
}

TEST(MuxlintTest, FlagsPointerKeyedUnorderedContainers) {
  EXPECT_TRUE(HasRule(
      Lint("src/foo.h", "std::unordered_map<Node*, int> index_;\n"),
      "ptr-key-container"));
  EXPECT_TRUE(HasRule(
      Lint("src/foo.h", "std::unordered_set<const Node*> seen_;\n"),
      "ptr-key-container"));
}

TEST(MuxlintTest, AllowsValueOrIdKeyedUnorderedContainers) {
  const LintReport r = Lint(
      "src/foo.h",
      "std::unordered_map<EventId, std::weak_ptr<Event>> index_;\n"
      "std::unordered_map<std::string, Node*> by_name_;\n");
  EXPECT_FALSE(HasRule(r, "ptr-key-container"));
}

TEST(MuxlintTest, FlagsFloatingPointSimTime) {
  EXPECT_TRUE(HasRule(
      Lint("src/foo.cc", "double completion_time = 0.0;\n"),
      "float-sim-time"));
  EXPECT_TRUE(HasRule(Lint("src/foo.cc", "double deadline = 1.5;\n"),
                      "float-sim-time"));
  EXPECT_TRUE(HasRule(Lint("src/foo.cc", "float latency_ns = 0;\n"),
                      "float-sim-time"));
}

TEST(MuxlintTest, AllowsIntegerSimTimeAndPlainDoubles) {
  const LintReport r = Lint(
      "src/foo.cc",
      "sim::Time completion_time = 0;\n"
      "double drain_timeout_seconds = 600.0;\n"
      "double rate = 0.5;\n");
  EXPECT_FALSE(HasRule(r, "float-sim-time"));
}

TEST(MuxlintTest, FlagsBareAssert) {
  EXPECT_TRUE(HasRule(Lint("src/foo.cc", "assert(x > 0);\n"),
                      "bare-assert"));
}

TEST(MuxlintTest, AllowsStaticAssertAndGtestMacros) {
  const LintReport r = Lint(
      "src/foo.cc",
      "static_assert(sizeof(int) == 4);\nASSERT_EQ(a, b);\n");
  EXPECT_FALSE(HasRule(r, "bare-assert"));
}

TEST(MuxlintTest, IgnoresPatternsInCommentsAndStrings) {
  const LintReport r = Lint(
      "src/foo.cc",
      "// calls rand() internally, see std::chrono docs\n"
      "/* assert(false) would be wrong here */\n"
      "const char* s = \"std::random_device\";\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(MuxlintTest, TracksMultiLineBlockComments) {
  const LintReport r = Lint(
      "src/foo.cc",
      "/* start of a long comment\n"
      "   rand() inside it\n"
      "   end */\n"
      "int x = rand();\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 4);
}

TEST(MuxlintTest, RequiresIncludeGuardInHeaders) {
  const LintReport missing =
      Lint("src/foo.h", "#pragma once\nint f();\n");
  EXPECT_TRUE(HasRule(missing, "include-guard"));

  const LintReport good = Lint(
      "src/foo.h",
      "#ifndef MUXWISE_FOO_H_\n#define MUXWISE_FOO_H_\n"
      "int f();\n#endif  // MUXWISE_FOO_H_\n");
  EXPECT_FALSE(HasRule(good, "include-guard"));
}

TEST(MuxlintTest, IncludeGuardOnlyAppliesToHeaders) {
  EXPECT_FALSE(HasRule(Lint("src/foo.cc", "int f() { return 1; }\n"),
                       "include-guard"));
}

TEST(MuxlintTest, IncludeGuardSuppressionWorksFileWide) {
  const LintReport r = Lint(
      "src/foo.h",
      "// muxlint: allow(include-guard) -- generated header\n"
      "#pragma once\nint f();\n");
  EXPECT_FALSE(HasRule(r, "include-guard"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, JsonReportIsWellFormedAndComplete) {
  LintReport report;
  LintContent("src/a.cc", "int x = rand();\n", report);
  const std::string json = FormatJson(report);
  EXPECT_NE(json.find("\"rule\": \"raw-rand\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
}

TEST(MuxlintTest, FlagsEpochlessCallbackInFaultCapableLayers) {
  const LintReport r = Lint(
      "src/baselines/foo.cc",
      "host_->Submit(delay, [this, id] { OnDone(id); });\n");
  ASSERT_TRUE(HasRule(r, "dangling-callback"));
}

TEST(MuxlintTest, AcceptsEpochGuardedCallback) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "host_->Submit(delay, [this, id, e = epoch()] { OnDone(id); });\n"
      "link_->Transfer(bytes, [this, pe = p_epoch_] { Resume(); });\n");
  EXPECT_FALSE(HasRule(r, "dangling-callback"));
}

TEST(MuxlintTest, DanglingCallbackScopedToFaultCapableLayers) {
  // The same pattern outside src/baselines and src/core (layers without
  // crash epochs) is not a finding.
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "host_->Submit(delay, [this, id] { OnDone(id); });\n");
  EXPECT_FALSE(HasRule(r, "dangling-callback"));
}

TEST(MuxlintTest, DanglingCallbackIgnoresThislessLambdas) {
  const LintReport r = Lint(
      "src/baselines/foo.cc",
      "link_->Transfer(bytes, [&done] { done = true; });\n");
  EXPECT_FALSE(HasRule(r, "dangling-callback"));
}

TEST(MuxlintTest, DanglingCallbackSuppressible) {
  const LintReport r = Lint(
      "src/baselines/foo.cc",
      "host_->Submit(d, [this] { F(); });  "
      "// muxlint: allow(dangling-callback)\n");
  EXPECT_FALSE(HasRule(r, "dangling-callback"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, FlagsWallClockNamesInTraceLayer) {
  // In the observability layer a clock *name* is a finding even
  // without a call — one `steady_clock` anywhere poisons trace
  // reproducibility.
  EXPECT_TRUE(HasRule(
      Lint("src/obs/trace.cc", "using clock_t2 = std::chrono::system_clock;\n"),
      "trace-wall-clock"));
  EXPECT_TRUE(HasRule(
      Lint("tools/trace2json/main.cc", "std::int64_t t = clock();\n"),
      "trace-wall-clock"));
  EXPECT_TRUE(HasRule(
      Lint("tools/tracecap/main.cc",
           "clock_gettime(CLOCK_MONOTONIC, &ts);\n"),
      "trace-wall-clock"));
}

TEST(MuxlintTest, TraceWallClockScopedToTraceCode) {
  // Outside the trace layer only the repo-wide wall-clock rule (which
  // needs a call) applies; the name alone passes.
  const LintReport r =
      Lint("src/serve/foo.cc", "// mentions steady_clock by name\n"
                               "int steady_clock_like = 0;\n");
  EXPECT_FALSE(HasRule(r, "trace-wall-clock"));
}

TEST(MuxlintTest, FlagsPriorityQueueInSimulationSubstrate) {
  EXPECT_TRUE(HasRule(
      Lint("src/sim/foo.cc",
           "std::priority_queue<Ev, std::vector<Ev>, decltype(cmp)> q(cmp);\n"),
      "priority-queue"));
  EXPECT_TRUE(HasRule(
      Lint("src/gpu/foo.cc", "std::priority_queue<int> q;\n"),
      "priority-queue"));
}

TEST(MuxlintTest, PriorityQueueScopedToSimAndGpu) {
  // The kv radix tree legitimately uses one for LRU eviction ranking.
  EXPECT_FALSE(HasRule(
      Lint("src/kv/radix_tree.cc", "std::priority_queue<HeapEntry> heap;\n"),
      "priority-queue"));
}

TEST(MuxlintTest, PriorityQueueSuppressible) {
  const LintReport r = Lint(
      "src/sim/foo.cc",
      "std::priority_queue<int> q;  // muxlint: allow(priority-queue)\n");
  EXPECT_FALSE(HasRule(r, "priority-queue"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, FlagsDirectEventAllocation) {
  EXPECT_TRUE(HasRule(
      Lint("src/sim/foo.cc", "Event* e = new Event{when, id};\n"),
      "event-arena"));
  EXPECT_TRUE(HasRule(
      Lint("src/sim/foo.cc", "auto e = std::make_unique<Event>();\n"),
      "event-arena"));
  EXPECT_TRUE(HasRule(
      Lint("src/gpu/foo.cc", "delete pending_event;\n"), "event-arena"));
}

TEST(MuxlintTest, EventArenaIgnoresNonEventAllocationsAndOtherLayers) {
  // Unrelated allocations in scope, and Event allocations out of scope.
  EXPECT_FALSE(HasRule(
      Lint("src/sim/foo.cc", "auto s = std::make_unique<Stream>();\n"),
      "event-arena"));
  EXPECT_FALSE(HasRule(
      Lint("src/obs/foo.cc", "Event* e = new Event;\n"), "event-arena"));
  // `= delete;` declarations are not deletions of events.
  EXPECT_FALSE(HasRule(
      Lint("src/sim/foo.h", "Simulator(const Simulator&) = delete;\n"),
      "event-arena"));
}

TEST(MuxlintTest, EventArenaSuppressible) {
  const LintReport r = Lint(
      "src/sim/foo.cc",
      "Event* e = new Event;  // muxlint: allow(event-arena)\n");
  EXPECT_FALSE(HasRule(r, "event-arena"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, FlagsQueuePushesInServingLayers) {
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc", "waiting_.push_back(std::move(request));\n"),
      "unbounded-queue"));
  EXPECT_TRUE(HasRule(
      Lint("src/serve/foo.cc", "held_[key].push_back(index);\n"),
      "unbounded-queue"));
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc", "pending_completions_.emplace_back(r);\n"),
      "unbounded-queue"));
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc", "waiting_.push_front(std::move(r));\n"),
      "unbounded-queue"));
}

TEST(MuxlintTest, UnboundedQueueScopedToServingLayers) {
  // Queues outside the serving path (and non-member locals) are fine.
  EXPECT_FALSE(HasRule(
      Lint("src/sim/foo.cc", "waiting_.push_back(std::move(ev));\n"),
      "unbounded-queue"));
  EXPECT_FALSE(HasRule(
      Lint("src/core/foo.cc", "requeue.push_back(std::move(r));\n"),
      "unbounded-queue"));
  // Metric sample vectors merely contain a queue-ish word.
  EXPECT_FALSE(HasRule(
      Lint("src/serve/metrics.cc", "queue_delay_ms.push_back(ms);\n"),
      "unbounded-queue"));
}

TEST(MuxlintTest, FlagsSampleAccumulationInMetricLayers) {
  EXPECT_TRUE(HasRule(
      Lint("src/serve/metrics.cc", "queue_delay_ms.push_back(ms);\n"),
      "unbounded-samples"));
  EXPECT_TRUE(HasRule(
      Lint("src/serve/metrics.cc", "ttft_samples_.push_back(v);\n"),
      "unbounded-samples"));
  EXPECT_TRUE(HasRule(
      Lint("src/route/fleet_router.cc", "failover_latency_.emplace_back(d);\n"),
      "unbounded-samples"));
  EXPECT_TRUE(HasRule(
      Lint("src/serve/metrics.cc", "per_class_[cls].e2e_ms.push_back(v);\n"),
      "unbounded-samples"));
}

TEST(MuxlintTest, UnboundedSamplesScopedToMetricLayers) {
  // The sketch-backed metrics layer owns the rule's scope; the same
  // pattern elsewhere (harness subsamples, tests) is deliberate.
  EXPECT_FALSE(HasRule(
      Lint("src/harness/streaming.cc", "ttft_subsample_ms.push_back(v);\n"),
      "unbounded-samples"));
  // Non-sample vectors in scope stay clean.
  EXPECT_FALSE(HasRule(
      Lint("src/serve/engine.cc", "token_times.push_back(now);\n"),
      "unbounded-samples"));
  EXPECT_FALSE(HasRule(
      Lint("src/route/fleet_router.cc", "replicas_.push_back(std::move(r));\n"),
      "unbounded-samples"));
}

TEST(MuxlintTest, UnboundedSamplesSuppressible) {
  const LintReport r = Lint(
      "src/serve/metrics.cc",
      "ttft_samples_.push_back(v);  // muxlint: allow(unbounded-samples)\n");
  EXPECT_FALSE(HasRule(r, "unbounded-samples"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, UnboundedQueueSuppressible) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "waiting_.push_back(r);  // muxlint: allow(unbounded-queue)\n");
  EXPECT_FALSE(HasRule(r, "unbounded-queue"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, RulesListCoversEveryEmittableRule) {
  const auto rules = Rules();
  auto named = [&rules](const std::string& name) {
    return std::any_of(rules.begin(), rules.end(),
                       [&name](const RuleInfo& r) { return r.name == name; });
  };
  EXPECT_TRUE(named("wall-clock"));
  EXPECT_TRUE(named("raw-rand"));
  EXPECT_TRUE(named("ptr-key-container"));
  EXPECT_TRUE(named("float-sim-time"));
  EXPECT_TRUE(named("bare-assert"));
  EXPECT_TRUE(named("dangling-callback"));
  EXPECT_TRUE(named("trace-wall-clock"));
  EXPECT_TRUE(named("priority-queue"));
  EXPECT_TRUE(named("event-arena"));
  EXPECT_TRUE(named("unbounded-queue"));
  EXPECT_TRUE(named("unbounded-samples"));
  EXPECT_TRUE(named("include-guard"));
}


// --- CodePortion / SplitLine edge cases (comment & string stripping) ---

TEST(MuxlintTest, CommentMarkersInsideStringLiteralsAreInert) {
  // A "//" inside a string must not truncate the rest of the line:
  // the rand() call after the literal is live code.
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "Log(\"see http://docs // not a comment\"); int x = rand();\n");
  EXPECT_TRUE(HasRule(r, "raw-rand"));
}

TEST(MuxlintTest, BlockCommentOpenerInsideStringLiteralIsInert) {
  // A "/*" inside a string must not put the scanner into block-comment
  // state; the next line is still live code.
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "const char* s = \"/* still a string\";\n"
      "int x = rand();\n");
  ASSERT_TRUE(HasRule(r, "raw-rand"));
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(MuxlintTest, BlockCommentOpeningAndClosingOnOneLine) {
  // Code after the close is live; code inside is not.
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "int a = /* rand() in comment */ 0; int b = rand();\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "raw-rand");
}

TEST(MuxlintTest, BackToBackBlockCommentsOnOneLine) {
  const LintReport clean = Lint(
      "src/serve/foo.cc",
      "/* one */ /* rand() two */ int x = 0;\n");
  EXPECT_TRUE(clean.findings.empty());
  const LintReport hit = Lint(
      "src/serve/foo.cc",
      "/* one */ int x = rand(); /* two */\n");
  EXPECT_TRUE(HasRule(hit, "raw-rand"));
}

TEST(MuxlintTest, EscapedQuotesDoNotUnbalanceStringStripping) {
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "const char* s = \"a \\\" // b\"; int x = rand();\n");
  EXPECT_TRUE(HasRule(r, "raw-rand"));
}

// --- Pragma audit: comment-aware parsing and stale-allow ---

TEST(MuxlintTest, PragmaInsideStringLiteralIsNotASuppression) {
  // The pragma text lives in a string literal, so the wall-clock
  // finding on the same line must NOT be suppressed — and no
  // stale-allow can fire either (no pragma was parsed).
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "const char* doc = \"// muxlint: allow(wall-clock)\"; "
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(HasRule(r, "wall-clock"));
  EXPECT_FALSE(HasRule(r, "stale-allow"));
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(MuxlintTest, MidCommentMentionOfPragmaSyntaxIsNotASuppression) {
  // Prose that merely mentions the pragma mid-sentence is not parsed;
  // only a pragma at the start of the comment counts.
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "int x = 0;  // sites carry `// muxlint: allow(unbounded-queue)`\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(MuxlintTest, StaleAllowFiresWhenPragmaSuppressesNothing) {
  const LintReport r = Lint(
      "src/serve/foo.cc", "int x = 0;  // muxlint: allow(wall-clock)\n");
  ASSERT_TRUE(HasRule(r, "stale-allow"));
  EXPECT_EQ(r.findings[0].line, 1);
}

TEST(MuxlintTest, StaleAllowFiresOnUnknownRuleName) {
  // A typo'd rule name silences nothing forever; that is exactly the
  // failure mode the audit exists for.
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "auto t = std::chrono::steady_clock::now();  "
      "// muxlint: allow(wallclock)\n");
  EXPECT_TRUE(HasRule(r, "wall-clock"));   // Not suppressed.
  EXPECT_TRUE(HasRule(r, "stale-allow"));  // And the pragma is dead.
}

TEST(MuxlintTest, LiveAllowIsNotStale) {
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "auto t = std::chrono::steady_clock::now();  "
      "// muxlint: allow(wall-clock)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, StaleAllowPerNameInAMixedList) {
  // allow(wall-clock, raw-rand) where only wall-clock fires: the
  // raw-rand half of the pragma is stale.
  const LintReport r = Lint(
      "src/serve/foo.cc",
      "auto t = std::chrono::steady_clock::now();  "
      "// muxlint: allow(wall-clock, raw-rand)\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "stale-allow");
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, AllowAllIsStaleOnlyWhenNothingSuppressed) {
  const LintReport live = Lint(
      "src/serve/foo.cc",
      "auto t = std::chrono::steady_clock::now();  "
      "// muxlint: allow(all)\n");
  EXPECT_TRUE(live.findings.empty());
  const LintReport stale = Lint(
      "src/serve/foo.cc", "int x = 0;  // muxlint: allow(all)\n");
  EXPECT_TRUE(HasRule(stale, "stale-allow"));
}

TEST(MuxlintTest, SuppressedCountsBrokenOutPerRule) {
  LintReport report;
  LintContent("src/core/foo.cc",
              "waiting_.push_back(r);  // muxlint: allow(unbounded-queue)\n"
              "gated_.push_back(r);  // muxlint: allow(unbounded-queue)\n"
              "auto t = std::chrono::steady_clock::now();  "
              "// muxlint: allow(wall-clock)\n",
              report);
  EXPECT_EQ(report.suppressed, 3u);
  EXPECT_EQ(report.suppressed_by_rule.at("unbounded-queue"), 2u);
  EXPECT_EQ(report.suppressed_by_rule.at("wall-clock"), 1u);
  const std::string json = FormatJson(report);
  EXPECT_NE(json.find("\"suppressed_by_rule\""), std::string::npos);
  EXPECT_NE(json.find("\"unbounded-queue\": 2"), std::string::npos);
}

// --- Layering: the declared module DAG over src/ ---

TEST(MuxlintTest, LayeringFlagsBackEdgeInclude) {
  const LintReport r = Lint(
      "src/sim/foo.cc", "#include \"core/muxwise_engine.h\"\n");
  ASSERT_TRUE(HasRule(r, "layering"));
  EXPECT_NE(r.findings[0].message.find("back-edge"), std::string::npos);
}

TEST(MuxlintTest, LayeringAcceptsDownwardAndIntraBandIncludes) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "#include \"sim/simulator.h\"\n"      // Downward.
      "#include \"overload/controller.h\"\n"  // Downward (band 3 < 5).
      "#include \"baselines/chunked.h\"\n"    // Intra-band.
      "#include <vector>\n"                     // System, out of scope.
      "#include \"core/dispatcher.h\"\n");    // Same module.
  EXPECT_FALSE(HasRule(r, "layering"));
}

TEST(MuxlintTest, LayeringFlagsObsIncludingServe) {
  EXPECT_TRUE(HasRule(
      Lint("src/obs/trace.cc", "#include \"serve/engine.h\"\n"),
      "layering"));
}

TEST(MuxlintTest, LayeringOnlyAppliesToSrcModules) {
  // Tools and tests may include anything.
  EXPECT_FALSE(HasRule(
      Lint("tools/benchrun/main.cc", "#include \"harness/runner.h\"\n"),
      "layering"));
  EXPECT_FALSE(HasRule(
      Lint("tests/test_foo.cc", "#include \"core/muxwise_engine.h\"\n"),
      "layering"));
}

TEST(MuxlintTest, LayeringIgnoresCommentedOutIncludes) {
  const LintReport r = Lint(
      "src/sim/foo.cc", "// #include \"core/muxwise_engine.h\"\n");
  EXPECT_FALSE(HasRule(r, "layering"));
}

// --- Mutable namespace-scope state ---

TEST(MuxlintTest, FlagsMutableNamespaceScopeGlobal) {
  const LintReport r = Lint(
      "src/sim/foo.cc",
      "namespace muxwise::sim {\n"
      "std::atomic<LogLevel> g_log_level{LogLevel::kWarn};\n"
      "}\n");
  ASSERT_TRUE(HasRule(r, "mutable-global"));
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(MuxlintTest, MutableGlobalFlagsStaticAndPlainDefinitions) {
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc",
           "namespace muxwise::core {\nstatic int g_count = 0;\n}\n"),
      "mutable-global"));
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc",
           "namespace muxwise::core {\nint g_flag;\n}\n"),
      "mutable-global"));
}

TEST(MuxlintTest, MutableGlobalIgnoresConstants) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "namespace muxwise::core {\n"
      "constexpr int kMax = 8;\n"
      "const char* const kName = \"x\";\n"
      "inline constexpr double kRate = 0.5;\n"
      "}\n");
  EXPECT_FALSE(HasRule(r, "mutable-global"));
}

TEST(MuxlintTest, MutableGlobalIgnoresLocalsAndMembers) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "namespace muxwise::core {\n"
      "struct State { int count = 0; };\n"       // Class member.
      "void F() { int local = 0; (void)local; }\n"  // Function local.
      "class Engine {\n"
      " private:\n"
      "  int inflight_ = 0;\n"                   // Class member.
      "};\n"
      "}\n");
  EXPECT_FALSE(HasRule(r, "mutable-global"));
}

TEST(MuxlintTest, MutableGlobalIgnoresMultiLineSignatureContinuations) {
  // A defaulted parameter on a continuation line looks like a
  // declaration; the statement-start gate must keep it out.
  const LintReport r = Lint(
      "src/harness/foo.h",
      "#ifndef MUXWISE_HARNESS_FOO_H_\n"
      "#define MUXWISE_HARNESS_FOO_H_\n"
      "namespace muxwise::harness {\n"
      "void Run(int a,\n"
      "         std::uint64_t arrival_seed = 2024);\n"
      "}\n"
      "#endif  // MUXWISE_HARNESS_FOO_H_\n");
  EXPECT_FALSE(HasRule(r, "mutable-global"));
}

TEST(MuxlintTest, MutableGlobalScopedToSrc) {
  EXPECT_FALSE(HasRule(
      Lint("tests/test_foo.cc",
           "namespace muxwise {\nint g_fixture_count = 0;\n}\n"),
      "mutable-global"));
}

// --- Shard safety: instance-key tracking and annotations ---

TEST(MuxlintTest, ShardSafetyFlagsUnannotatedCrossInstanceFunction) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "namespace muxwise::core {\n"
      "void CrossTalk() {\n"
      "  cluster_->instance(0).host->Submit(1);\n"
      "  cluster_->instance(1).device->Run();\n"
      "}\n"
      "}\n");
  ASSERT_TRUE(HasRule(r, "shard-safety"));
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(MuxlintTest, ShardSafetyAcceptsChannelEntryAnnotation) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "namespace muxwise::core {\n"
      "MUX_CHANNEL_ENTRY void Blessed() {\n"
      "  cluster_->instance(0).host->Submit(1);\n"
      "  cluster_->instance(1).host->Submit(1);\n"
      "}\n"
      "}\n");
  EXPECT_FALSE(HasRule(r, "shard-safety"));
}

TEST(MuxlintTest, ShardSafetyFlagsShardLocalViolation) {
  const LintReport r = Lint(
      "src/baselines/foo.cc",
      "namespace muxwise::baselines {\n"
      "MUX_SHARD_LOCAL void Sneaky() {\n"
      "  cluster_->instance(0).host->Submit(1);\n"
      "  cluster_->instance(d).host->Submit(1);\n"
      "}\n"
      "}\n");
  ASSERT_TRUE(HasRule(r, "shard-safety"));
  EXPECT_NE(r.findings[0].message.find("MUX_SHARD_LOCAL"),
            std::string::npos);
}

TEST(MuxlintTest, ShardSafetyAcceptsSingleInstanceFunctions) {
  // One key — a bound alias reused many times — is shard-local in
  // practice even without the annotation.
  const LintReport r = Lint(
      "src/baselines/foo.cc",
      "namespace muxwise::baselines {\n"
      "void PumpPrefill() {\n"
      "  gpu::Instance& instance = cluster_->instance(0);\n"
      "  instance.host->Submit(1);\n"
      "  instance.device->Run();\n"
      "}\n"
      "void Straggle(std::size_t domain) {\n"
      "  cluster_->instance(domain).device->Slow();\n"
      "}\n"
      "}\n");
  EXPECT_FALSE(HasRule(r, "shard-safety"));
}

TEST(MuxlintTest, ShardSafetyCountsEachAddInstanceDistinct) {
  // Wiring two instances is a cross-shard act: the constructor must be
  // a declared channel entry point.
  const LintReport r = Lint(
      "src/baselines/foo.cc",
      "namespace muxwise::baselines {\n"
      "void Wire() {\n"
      "  prefill_ = &cluster_->AddInstance(4);\n"
      "  decode_ = &cluster_->AddInstance(4);\n"
      "}\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, "shard-safety"));
}

TEST(MuxlintTest, ShardSafetyScopedToEngineLayers) {
  const LintReport r = Lint(
      "src/gpu/foo.cc",
      "namespace muxwise::gpu {\n"
      "void Touch() {\n"
      "  cluster_->instance(0).host->Submit(1);\n"
      "  cluster_->instance(1).host->Submit(1);\n"
      "}\n"
      "}\n");
  EXPECT_FALSE(HasRule(r, "shard-safety"));
}

TEST(MuxlintTest, ShardSafetyFlagsKernelMultiShardFunction) {
  // In src/sim the vocabulary changes: reaching into several entries of
  // the per-shard simulator table is the cross-shard act.
  const LintReport r = Lint(
      "src/sim/foo.cc",
      "namespace muxwise::sim {\n"
      "void Leak() {\n"
      "  shards_[0]->Step();\n"
      "  shards_[best]->Step();\n"
      "}\n"
      "}\n");
  ASSERT_TRUE(HasRule(r, "shard-safety"));
  EXPECT_NE(r.findings[0].message.find("event-loop shards"),
            std::string::npos);
}

TEST(MuxlintTest, ShardSafetyAcceptsAnnotatedKernelCrossing) {
  const LintReport r = Lint(
      "src/sim/foo.cc",
      "namespace muxwise::sim {\n"
      "MUX_CHANNEL_ENTRY void Drain() {\n"
      "  shards_[d.dst]->ScheduleAt(d.when, fn);\n"
      "  shards_[0]->Step();\n"
      "}\n"
      "MUX_SHARD_LOCAL void Slice(ShardId s) {\n"
      "  counts_[s] = shards_[s]->RunBefore(end, budget);\n"
      "}\n"
      "void Accessor(ShardId s) { return *shards_[s]; }\n"
      "}\n");
  EXPECT_FALSE(HasRule(r, "shard-safety"));
}

TEST(MuxlintTest, ShardSafetyFlagsEngineShardHandleCoupling) {
  // Grabbing two shard-local simulator handles couples shards exactly
  // like touching two instances.
  const LintReport r = Lint(
      "src/core/foo.cc",
      "namespace muxwise::core {\n"
      "void Hop() {\n"
      "  psim_->shard(0).ScheduleAfter(d, fn);\n"
      "  psim_->shard(1).ScheduleAfter(d, fn);\n"
      "}\n"
      "}\n");
  ASSERT_TRUE(HasRule(r, "shard-safety"));
}

TEST(MuxlintTest, ShardSafetySuppressibleOnSignatureLine) {
  const LintReport r = Lint(
      "src/core/foo.cc",
      "namespace muxwise::core {\n"
      "void Legacy() {  // muxlint: allow(shard-safety)\n"
      "  cluster_->instance(0).host->Submit(1);\n"
      "  cluster_->instance(1).host->Submit(1);\n"
      "}\n"
      "}\n");
  EXPECT_FALSE(HasRule(r, "shard-safety"));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MuxlintTest, DanglingCallbackCoversTypedSend) {
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc",
           "link_->Send<std::int64_t>(b, id, [this](std::int64_t) {});\n"),
      "dangling-callback"));
  EXPECT_FALSE(HasRule(
      Lint("src/core/foo.cc",
           "link_->Send<std::int64_t>(b, id, "
           "[this, e = epoch()](std::int64_t) {});\n"),
      "dangling-callback"));
}

// --- Baseline: grandfathered findings ---

TEST(MuxlintTest, BaselineSuffixMatchRemovesGrandfatheredFindings) {
  LintReport report;
  LintContent("/abs/path/src/sim/logging.cc",
              "namespace muxwise::sim {\nint g_level = 1;\n}\n", report);
  ASSERT_TRUE(HasRule(report, "mutable-global"));
  ApplyBaseline({{"mutable-global", "src/sim/logging.cc"}}, report);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.baselined, 1u);
}

TEST(MuxlintTest, BaselineIsRuleSpecific) {
  LintReport report;
  LintContent("src/sim/logging.cc",
              "namespace muxwise::sim {\nint g_level = 1;\n}\n", report);
  ApplyBaseline({{"wall-clock", "src/sim/logging.cc"}}, report);
  EXPECT_TRUE(HasRule(report, "mutable-global"));
  EXPECT_EQ(report.baselined, 0u);
}

TEST(MuxlintTest, BaselineRoundTripsThroughFormatAndLoad) {
  LintReport report;
  LintContent("/repo/src/sim/logging.cc",
              "namespace muxwise::sim {\nint g_level = 1;\n}\n", report);
  const std::string text = FormatBaseline(report);
  EXPECT_NE(text.find("mutable-global src/sim/logging.cc"),
            std::string::npos);

  const std::string path =
      ::testing::TempDir() + "/muxlint_baseline_roundtrip.txt";
  {
    std::ofstream out(path);
    out << text;
  }
  std::vector<BaselineEntry> entries;
  std::vector<std::string> errors;
  ASSERT_TRUE(LoadBaseline(path, entries, errors));
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "mutable-global");
  EXPECT_EQ(entries[0].path, "src/sim/logging.cc");
  ApplyBaseline(entries, report);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.baselined, 1u);
}

TEST(MuxlintTest, LoadBaselineReportsMissingFileAndMalformedLines) {
  std::vector<BaselineEntry> entries;
  std::vector<std::string> errors;
  EXPECT_FALSE(LoadBaseline("/nonexistent/baseline.txt", entries, errors));
  EXPECT_EQ(errors.size(), 1u);

  const std::string path = ::testing::TempDir() + "/muxlint_baseline_bad.txt";
  {
    std::ofstream out(path);
    out << "# comment\n\nmalformed-no-path\nwall-clock src/a.cc\n";
  }
  entries.clear();
  errors.clear();
  EXPECT_TRUE(LoadBaseline(path, entries, errors));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "wall-clock");
  EXPECT_EQ(errors.size(), 1u);  // The malformed line is surfaced.
}

// --- LintTree: traversal robustness ---

namespace fs = std::filesystem;

void WriteFile(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  out << content;
}

TEST(MuxlintTest, LintTreeSkipsBuildAndGitDirectories) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "muxlint_tree_skip";
  fs::remove_all(root);
  WriteFile(root / "src" / "serve" / "ok.cc", "int x = rand();\n");
  WriteFile(root / "build" / "copy.cc", "int x = rand();\n");
  WriteFile(root / ".git" / "hook.cc", "int x = rand();\n");
  WriteFile(root / "nested" / "build" / "gen.cc", "int x = rand();\n");

  LintReport report;
  EXPECT_TRUE(LintTree({root.string()}, report));
  EXPECT_EQ(report.files_scanned, 1u);  // Only src/serve/ok.cc.
  EXPECT_TRUE(report.errors.empty());
  fs::remove_all(root);
}

TEST(MuxlintTest, LintTreeSurfacesMissingRoots) {
  LintReport report;
  EXPECT_FALSE(LintTree({"/nonexistent/muxlint/root"}, report));
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("/nonexistent/muxlint/root"),
            std::string::npos);
  // The failure shows up in every rendering, not just the exit code.
  EXPECT_NE(FormatText(report).find("error"), std::string::npos);
  EXPECT_NE(FormatJson(report).find("\"errors\""), std::string::npos);
}

// --- SARIF output ---

TEST(MuxlintTest, SarifReportIsWellFormed) {
  LintReport report;
  LintContent("src/a.cc", "int x = rand();\n", report);
  const std::string sarif = FormatSarif(report);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"muxlint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"raw-rand\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  EXPECT_NE(sarif.find("\"executionSuccessful\": true"),
            std::string::npos);
  // Every known rule is declared in the driver's rule table.
  for (const RuleInfo& rule : Rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule.name + "\""),
              std::string::npos)
        << rule.name;
  }
}

TEST(MuxlintTest, SarifMarksFailedInvocations) {
  LintReport report;
  report.errors.push_back("somewhere: unreadable");
  const std::string sarif = FormatSarif(report);
  EXPECT_NE(sarif.find("\"executionSuccessful\": false"),
            std::string::npos);
  EXPECT_NE(sarif.find("somewhere: unreadable"), std::string::npos);
}

// --- Docs stay in sync with the rule registry ---

TEST(MuxlintTest, RulesListCoversProjectRulesWithTiers) {
  const auto rules = Rules();
  auto tier_of = [&rules](const std::string& name) -> std::string {
    for (const RuleInfo& r : rules) {
      if (r.name == name) return r.tier;
    }
    return "<missing>";
  };
  EXPECT_EQ(tier_of("wall-clock"), "line");
  EXPECT_EQ(tier_of("include-guard"), "file");
  EXPECT_EQ(tier_of("stale-allow"), "file");
  EXPECT_EQ(tier_of("layering"), "project");
  EXPECT_EQ(tier_of("mutable-global"), "project");
  EXPECT_EQ(tier_of("shard-safety"), "project");
}

#ifdef MUXWISE_SOURCE_DIR
TEST(MuxlintTest, ReadmeRuleTableMatchesRuleRegistry) {
  // README.md carries a rule table between muxlint-rules markers,
  // generated from `muxlint --list-rules`; it must list exactly the
  // rules Rules() knows, in order, with matching tiers and summaries.
  std::ifstream in(std::string(MUXWISE_SOURCE_DIR) + "/README.md");
  ASSERT_TRUE(in.good()) << "README.md not found";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string readme = buffer.str();

  const std::size_t begin = readme.find("<!-- muxlint-rules-begin -->");
  const std::size_t end = readme.find("<!-- muxlint-rules-end -->");
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  ASSERT_LT(begin, end);
  const std::string table = readme.substr(begin, end - begin);

  std::string expected;
  for (const RuleInfo& rule : Rules()) {
    expected += "| `" + rule.name + "` | " + rule.tier + " | " +
                rule.summary + " |\n";
  }
  // Every generated row appears verbatim, in order.
  std::size_t cursor = 0;
  std::stringstream rows(expected);
  std::string row;
  while (std::getline(rows, row)) {
    const std::size_t pos = table.find(row, cursor);
    ASSERT_NE(pos, std::string::npos) << "missing/out-of-order row: " << row;
    cursor = pos + row.size();
  }
  // And no row for a rule that no longer exists: count table rows
  // (lines whose trimmed form starts a `rule` cell; indentation-proof).
  std::size_t row_count = 0;
  std::stringstream table_lines(table);
  std::string table_line;
  while (std::getline(table_lines, table_line)) {
    const std::size_t first = table_line.find_first_not_of(" \t");
    if (first != std::string::npos &&
        table_line.compare(first, 3, "| `") == 0) {
      ++row_count;
    }
  }
  EXPECT_EQ(row_count, Rules().size());
}
#endif  // MUXWISE_SOURCE_DIR

}  // namespace
}  // namespace muxwise::muxlint
