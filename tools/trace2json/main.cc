// trace2json: converts a MUXT binary trace (written by tracecap or
// obs::WriteBinaryFile) into Chrome trace_event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Usage: trace2json in.bin [out.json]
//   With no output path, the JSON goes to stdout.

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/trace_export.h"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: trace2json in.bin [out.json]\n");
    return 2;
  }
  const std::string in_path = argv[1];

  muxwise::obs::DecodedTrace decoded;
  if (!muxwise::obs::ReadBinaryFile(in_path, decoded)) {
    std::fprintf(stderr, "failed to read MUXT trace from %s\n",
                 in_path.c_str());
    return 1;
  }

  const std::string json = muxwise::obs::ExportChromeJson(decoded);
  if (argc == 3) {
    std::ofstream out(argv[2], std::ios::binary);
    out << json;
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", argv[2]);
      return 1;
    }
  } else {
    std::fwrite(json.data(), 1, json.size(), stdout);
  }
  return 0;
}
