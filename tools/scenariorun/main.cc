// scenariorun: runs declarative scenario files (scenarios/*.json) and
// gates what CI cares about.
//
//   scenariorun scenarios/foo.json             one run, print the report
//   scenariorun --matrix scenarios/*.json      determinism matrix: every
//                                              scenario twice at threads=1
//                                              and once at threads=4; all
//                                              three digests must agree
//   scenariorun --rss-ceiling-mb=N ...         gate peak RSS
//   scenariorun --rss-baseline=out.json --rss-growth-max=R
//                                              gate peak RSS against a
//                                              previous invocation's --out
//                                              artifact (the O(1)-memory
//                                              scale-comparison gate)
//   scenariorun --out=FILE ...                 write the outcome artifact
//
// Streaming scenarios additionally run the sketch-vs-exact accuracy
// gate: the full-population sketch's p50/p99 must sit within a relative
// tolerance of the exact quantiles of the deterministic 1-in-K
// subsample (--p50-tolerance / --p99-tolerance, defaults 5% / 10%).
//
// Exit status: 0 when every scenario ran and every requested gate held.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "harness/json.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/streaming.h"
#include "serve/quantile_sketch.h"

namespace muxwise {
namespace {

struct Options {
  bool matrix = false;
  int override_threads = 0;  // 0 = scenario's own setting.
  double rss_ceiling_mb = 0.0;
  std::string rss_baseline_path;
  double rss_growth_max = 0.0;
  double p50_tolerance = 0.05;
  double p99_tolerance = 0.10;
  std::string out_path;
  std::vector<std::string> scenarios;
};

struct ScenarioReport {
  std::string name;
  std::string path;
  std::string kind;  // "trace" or "streaming"
  std::string engine;
  bool ok = true;
  std::vector<std::string> failures;

  bool stable = false;
  std::uint64_t completed = 0;
  std::uint64_t total = 0;
  std::uint64_t event_digest = 0;
  std::uint64_t outcome_digest = 0;
  std::uint64_t metrics_state_digest = 0;
  std::size_t metric_bytes = 0;
  double ttft_p50_sketch = 0.0;
  double ttft_p99_sketch = 0.0;
  double ttft_p50_exact = 0.0;
  double ttft_p99_exact = 0.0;
  double peak_rss_mb = 0.0;
};

double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB -> MiB
#endif
  }
#endif
  return 0.0;
}

std::string Hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool ParseArgs(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--matrix") {
      options.matrix = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.override_threads = std::atoi(value_of("--threads=").c_str());
    } else if (arg.rfind("--rss-ceiling-mb=", 0) == 0) {
      options.rss_ceiling_mb =
          std::atof(value_of("--rss-ceiling-mb=").c_str());
    } else if (arg.rfind("--rss-baseline=", 0) == 0) {
      options.rss_baseline_path = value_of("--rss-baseline=");
    } else if (arg.rfind("--rss-growth-max=", 0) == 0) {
      options.rss_growth_max =
          std::atof(value_of("--rss-growth-max=").c_str());
    } else if (arg.rfind("--p50-tolerance=", 0) == 0) {
      options.p50_tolerance = std::atof(value_of("--p50-tolerance=").c_str());
    } else if (arg.rfind("--p99-tolerance=", 0) == 0) {
      options.p99_tolerance = std::atof(value_of("--p99-tolerance=").c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      options.out_path = value_of("--out=");
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "scenariorun: unknown flag %s\n", arg.c_str());
      return false;
    } else {
      options.scenarios.push_back(arg);
    }
  }
  if (options.scenarios.empty()) {
    std::fprintf(stderr, "scenariorun: no scenario files given\n");
    return false;
  }
  return true;
}

/** Peak RSS recorded in a previous invocation's --out artifact (the
 * max across its scenarios); <= 0 when absent/unreadable. */
double BaselinePeakRssMb(const std::string& path, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open RSS baseline " + path;
    return 0.0;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  harness::json::Value root;
  if (!harness::json::Parse(text, root, error)) return 0.0;
  const harness::json::Value* scenarios = root.Find("scenarios");
  if (scenarios == nullptr || !scenarios->IsArray()) {
    error = "RSS baseline has no scenarios array";
    return 0.0;
  }
  double peak = 0.0;
  for (const harness::json::Value& entry : scenarios->array) {
    peak = std::max(
        peak, harness::json::GetNumber(entry.Find("peak_rss_mb"), 0.0));
  }
  if (peak <= 0.0) error = "RSS baseline records no peak_rss_mb";
  return peak;
}

void RunTraceScenario(const harness::ScenarioSpec& spec, const Options& options,
                      ScenarioReport& report) {
  if (options.matrix) {
    // Two sequential runs pin bit-reproducibility; the threads=4 run
    // pins thread-count invariance of the same event stream (and of
    // the sketch states folded into the outcome digest).
    harness::ScenarioSpec seq = spec;
    seq.config.threads = 1;
    harness::ScenarioSpec par = spec;
    par.config.threads = 4;
    const harness::RunOutcome first = harness::RunScenario(seq);
    const harness::RunOutcome second = harness::RunScenario(seq);
    const harness::RunOutcome threaded = harness::RunScenario(par);
    report.stable = first.stable;
    report.completed = first.completed;
    report.total = first.total;
    report.event_digest = first.event_digest;
    report.outcome_digest = harness::OutcomeDigest(first);
    report.metrics_state_digest = first.metrics_state_digest;
    if (second.event_digest != first.event_digest ||
        harness::OutcomeDigest(second) != report.outcome_digest) {
      report.failures.push_back("double run diverged: " +
                                Hex(report.outcome_digest) + " vs " +
                                Hex(harness::OutcomeDigest(second)));
    }
    if (threaded.event_digest != first.event_digest ||
        harness::OutcomeDigest(threaded) != report.outcome_digest) {
      report.failures.push_back("threads=4 run diverged: " +
                                Hex(report.outcome_digest) + " vs " +
                                Hex(harness::OutcomeDigest(threaded)));
    }
    if (threaded.metrics_state_digest != first.metrics_state_digest) {
      report.failures.push_back("sketch state diverged across thread counts");
    }
    return;
  }

  harness::ScenarioSpec run = spec;
  if (options.override_threads > 0) {
    run.config.threads = options.override_threads;
  }
  const harness::RunOutcome outcome = harness::RunScenario(run);
  report.stable = outcome.stable;
  report.completed = outcome.completed;
  report.total = outcome.total;
  report.event_digest = outcome.event_digest;
  report.outcome_digest = harness::OutcomeDigest(outcome);
  report.metrics_state_digest = outcome.metrics_state_digest;
  report.ttft_p50_sketch = outcome.ttft.p50_ms;
  report.ttft_p99_sketch = outcome.ttft.p99_ms;
  if (!outcome.stable) {
    report.failures.push_back("unstable: " + outcome.diagnostic);
  }
}

void RunStreamingScenarioReport(const harness::ScenarioSpec& spec,
                                const Options& options,
                                ScenarioReport& report) {
  auto run_once = [&spec] { return harness::RunStreamingScenario(spec); };

  const harness::StreamingOutcome outcome = run_once();
  report.stable = outcome.stable;
  report.completed = outcome.completed;
  report.total = outcome.total;
  report.event_digest = outcome.event_digest;
  report.outcome_digest = outcome.event_digest;
  report.metrics_state_digest = outcome.metrics_state_digest;
  report.metric_bytes = outcome.metric_bytes;
  report.ttft_p50_sketch = outcome.ttft_sketch.Quantile(0.5);
  report.ttft_p99_sketch = outcome.ttft_sketch.Quantile(0.99);
  if (!outcome.stable) {
    report.failures.push_back("unstable: " + outcome.diagnostic);
  }

  if (options.matrix) {
    const harness::StreamingOutcome second = run_once();
    if (second.event_digest != outcome.event_digest ||
        second.metrics_state_digest != outcome.metrics_state_digest) {
      report.failures.push_back("double run diverged");
    }
    return;
  }

  // Sketch-vs-exact accuracy gate on the deterministic 1-in-K
  // subsample. The subsample is itself a random draw from the same
  // population, so the tolerances bound sketch quantization + sampling
  // noise together.
  if (!outcome.ttft_subsample_ms.empty()) {
    std::vector<double> exact = outcome.ttft_subsample_ms;
    report.ttft_p50_exact = serve::Percentile(exact, 0.5);
    report.ttft_p99_exact = serve::Percentile(exact, 0.99);
    auto check = [&report](const char* label, double sketch_value,
                           double exact_value, double tolerance) {
      const double scale = std::max(std::abs(exact_value), 1e-9);
      const double relative = std::abs(sketch_value - exact_value) / scale;
      if (relative > tolerance) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s accuracy: sketch %.3f ms vs exact %.3f ms "
                      "(%.2f%% > %.2f%% tolerance)",
                      label, sketch_value, exact_value, relative * 100.0,
                      tolerance * 100.0);
        report.failures.push_back(buf);
      }
    };
    check("p50", report.ttft_p50_sketch, report.ttft_p50_exact,
          options.p50_tolerance);
    check("p99", report.ttft_p99_sketch, report.ttft_p99_exact,
          options.p99_tolerance);
  }
}

bool WriteArtifact(const std::string& path,
                   const std::vector<ScenarioReport>& reports) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "{\n  \"schema_version\": 1,\n  \"scenarios\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const ScenarioReport& r = reports[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"name\": \"" << harness::json::Escape(r.name) << "\",\n";
    out << "      \"path\": \"" << harness::json::Escape(r.path) << "\",\n";
    out << "      \"kind\": \"" << r.kind << "\",\n";
    out << "      \"engine\": \"" << harness::json::Escape(r.engine)
        << "\",\n";
    out << "      \"ok\": " << (r.ok ? "true" : "false") << ",\n";
    out << "      \"stable\": " << (r.stable ? "true" : "false") << ",\n";
    out << "      \"completed\": " << r.completed << ",\n";
    out << "      \"total\": " << r.total << ",\n";
    out << "      \"event_digest\": \"" << Hex(r.event_digest) << "\",\n";
    out << "      \"outcome_digest\": \"" << Hex(r.outcome_digest) << "\",\n";
    out << "      \"metrics_state_digest\": \"" << Hex(r.metrics_state_digest)
        << "\",\n";
    out << "      \"metric_bytes\": " << r.metric_bytes << ",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "      \"ttft_p50_sketch_ms\": %.6g,\n"
                  "      \"ttft_p99_sketch_ms\": %.6g,\n"
                  "      \"ttft_p50_exact_ms\": %.6g,\n"
                  "      \"ttft_p99_exact_ms\": %.6g,\n"
                  "      \"peak_rss_mb\": %.2f,\n",
                  r.ttft_p50_sketch, r.ttft_p99_sketch, r.ttft_p50_exact,
                  r.ttft_p99_exact, r.peak_rss_mb);
    out << buf;
    out << "      \"failures\": [";
    for (std::size_t j = 0; j < r.failures.size(); ++j) {
      out << (j == 0 ? "" : ", ") << "\""
          << harness::json::Escape(r.failures[j]) << "\"";
    }
    out << "]\n    }";
  }
  if (!reports.empty()) out << "\n  ";
  out << "]\n}\n";
  return static_cast<bool>(out);
}

int Main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, options)) return 2;

  std::vector<ScenarioReport> reports;
  bool all_ok = true;
  for (const std::string& path : options.scenarios) {
    ScenarioReport report;
    report.path = path;
    const harness::ScenarioParseResult parsed =
        harness::LoadScenarioFile(path);
    if (!parsed.ok()) {
      report.name = path;
      report.kind = "invalid";
      report.failures.push_back("parse: " + parsed.error);
      report.ok = false;
      all_ok = false;
      reports.push_back(report);
      std::fprintf(stderr, "FAIL %s\n  %s\n", path.c_str(),
                   parsed.error.c_str());
      continue;
    }
    const harness::ScenarioSpec& spec = *parsed.spec;
    report.name = spec.name;
    report.engine = harness::EngineKindName(spec.engine);
    report.kind = spec.IsStreaming() ? "streaming" : "trace";

    if (spec.IsStreaming()) {
      RunStreamingScenarioReport(spec, options, report);
    } else {
      RunTraceScenario(spec, options, report);
    }
    report.peak_rss_mb = PeakRssMb();

    if (options.rss_ceiling_mb > 0.0 &&
        report.peak_rss_mb > options.rss_ceiling_mb) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "peak RSS %.1f MiB exceeds ceiling %.1f MiB",
                    report.peak_rss_mb, options.rss_ceiling_mb);
      report.failures.push_back(buf);
    }
    if (!options.rss_baseline_path.empty() && options.rss_growth_max > 0.0) {
      std::string error;
      const double baseline =
          BaselinePeakRssMb(options.rss_baseline_path, error);
      if (baseline <= 0.0) {
        report.failures.push_back("RSS baseline unusable: " + error);
      } else if (report.peak_rss_mb > baseline * options.rss_growth_max) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "peak RSS %.1f MiB exceeds %.2fx the %.1f MiB "
                      "baseline — metric memory is not O(1) in request count",
                      report.peak_rss_mb, options.rss_growth_max, baseline);
        report.failures.push_back(buf);
      }
    }

    report.ok = report.failures.empty();
    all_ok = all_ok && report.ok;
    std::printf("%s %s [%s/%s] digest %s  %llu/%llu completed  rss %.1f MiB\n",
                report.ok ? "ok  " : "FAIL", report.name.c_str(),
                report.kind.c_str(), report.engine.c_str(),
                Hex(report.outcome_digest).c_str(),
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.total),
                report.peak_rss_mb);
    for (const std::string& failure : report.failures) {
      std::printf("     - %s\n", failure.c_str());
    }
    reports.push_back(report);
  }

  if (!options.out_path.empty() &&
      !WriteArtifact(options.out_path, reports)) {
    std::fprintf(stderr, "scenariorun: cannot write %s\n",
                 options.out_path.c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace muxwise

int main(int argc, char** argv) { return muxwise::Main(argc, argv); }
