// benchrun: the canonical benchmark driver + regression gate.
//
// Run mode measures the simcore microbenchmarks (and, with --bench-dir,
// a named subset of the bench/ paper-figure binaries) and writes a
// schema-versioned JSON report; diff mode (`benchdiff`) compares two
// reports and exits non-zero on any digest change or a median wall-time
// regression beyond the threshold.
//
// Usage:
//   benchrun [--smoke|--full] [--repeat=N] [--filter=substr]
//            [--bench-dir=DIR] [--scenarios=DIR] [--out=FILE] [--list]
//   benchrun --diff BASE.json CANDIDATE.json
//            [--threshold=0.10] [--no-wall] [--allow-missing]
//
// --scenarios=DIR sweeps every scenario DSL file in DIR as a
// "scenario.<name>" bench row (digest = the run's outcome digest), so
// checked-in scenarios — including the chaos ones — ride the same
// gated digest/wall pipeline as the simcore rows.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchrun/report.h"
#include "benchrun/scenarios.h"
#include "benchrun/simcore.h"

namespace {

using muxwise::benchrun::BenchReport;
using muxwise::benchrun::BenchResult;
using muxwise::benchrun::DiffOptions;
using muxwise::benchrun::DiffResult;
using muxwise::benchrun::MachineInfo;
using muxwise::benchrun::SimcoreOptions;

/** bench/ binaries worth running from the driver, by suite. */
const std::vector<std::string>& SmokeExternalBenches() {
  static const std::vector<std::string> kBenches = {
      "bench_fig03_resource_demand",
      "bench_tab02_predictor_accuracy",
  };
  return kBenches;
}

const std::vector<std::string>& FullExternalBenches() {
  static const std::vector<std::string> kBenches = {
      "bench_fig03_resource_demand",  "bench_fig05_cache_hit_rate",
      "bench_fig06_chunked_dilemma",  "bench_tab02_predictor_accuracy",
      "bench_fig11_contention_profile", "bench_fig13_trace_stats",
      "bench_fig14_realworld",        "bench_fig15_slo_goodput",
      "bench_fig16_h100_h200",        "bench_fig17_synthetic",
      "bench_fig18_partition_dynamics", "bench_fig19_bubble_ablation",
      "bench_fig20_preemption_cdf",   "bench_sec45_overheads",
      "bench_sec6_variants",          "bench_chaos_goodput",
  };
  return kBenches;
}

// Wall time is the measured quantity in a benchmark driver.
namespace chr = std::chrono;  // muxlint: allow(wall-clock)

double NowMs() {
  const auto t = chr::steady_clock::now().time_since_epoch();
  return chr::duration<double, std::milli>(t).count();
}

/** Runs one bench/ executable, discarding its stdout. */
BenchResult RunExternalBench(const std::string& dir,
                             const std::string& name) {
  BenchResult result;
  result.name = "extern." + name;
  const std::string command = dir + "/" + name + " > /dev/null 2>&1";
  result.note = command;
  const double start = NowMs();
  const int status = std::system(command.c_str());
  result.wall_ms.push_back(NowMs() - start);
  result.wall_ms_median = result.wall_ms[0];
  result.ok = status == 0;
  if (!result.ok) {
    result.note += " (exit status " + std::to_string(status) + ")";
  }
  return result;
}

bool HasPrefixArg(const std::string& arg, const std::string& prefix,
                  std::string* value) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  benchrun [--smoke|--full] [--repeat=N] [--filter=substr]\n"
      "           [--bench-dir=DIR] [--out=FILE] [--list]\n"
      "  benchrun --diff BASE.json CANDIDATE.json [--threshold=0.10]\n"
      "           [--no-wall] [--allow-missing]\n");
  return 2;
}

int RunDiff(const std::vector<std::string>& args) {
  DiffOptions options;
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    std::string value;
    if (HasPrefixArg(arg, "--threshold=", &value)) {
      options.wall_regression_threshold = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--no-wall") {
      options.check_wall = false;
    } else if (arg == "--allow-missing") {
      options.require_coverage = false;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) return Usage();

  BenchReport base, candidate;
  std::string error;
  if (!LoadReport(files[0], base, error)) {
    std::fprintf(stderr, "benchdiff: baseline %s: %s\n", files[0].c_str(),
                 error.c_str());
    return 2;
  }
  if (!LoadReport(files[1], candidate, error)) {
    std::fprintf(stderr, "benchdiff: candidate %s: %s\n", files[1].c_str(),
                 error.c_str());
    return 2;
  }

  const DiffResult diff = DiffReports(base, candidate, options);
  for (const std::string& note : diff.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const std::string& failure : diff.failures) {
    std::printf("FAIL: %s\n", failure.c_str());
  }
  if (!diff.ok()) {
    std::printf("benchdiff: %zu failure(s) vs %s\n", diff.failures.size(),
                files[0].c_str());
    return 1;
  }
  std::printf("benchdiff: ok (%zu baseline benches compared)\n",
              base.benches.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  if (!args.empty() && args[0] == "--diff") {
    return RunDiff({args.begin() + 1, args.end()});
  }

  SimcoreOptions options;
  options.smoke = true;  // Default suite; --full widens it.
  std::string suite = "smoke";
  std::string filter;
  std::string bench_dir;
  std::string scenarios_dir;
  std::string out_path;
  bool list_only = false;

  for (const std::string& arg : args) {
    std::string value;
    if (arg == "--smoke") {
      options.smoke = true;
      suite = "smoke";
    } else if (arg == "--full") {
      options.smoke = false;
      suite = "full";
      options.repeat = 3;  // Full workloads are ~10x larger.
    } else if (arg == "--list") {
      list_only = true;
    } else if (HasPrefixArg(arg, "--repeat=", &value)) {
      options.repeat = std::atoi(value.c_str());
      if (options.repeat < 1) return Usage();
    } else if (HasPrefixArg(arg, "--filter=", &value)) {
      filter = value;
    } else if (HasPrefixArg(arg, "--bench-dir=", &value)) {
      bench_dir = value;
    } else if (HasPrefixArg(arg, "--scenarios=", &value)) {
      scenarios_dir = value;
    } else if (HasPrefixArg(arg, "--out=", &value)) {
      out_path = value;
    } else {
      return Usage();
    }
  }

  std::vector<std::string> names = muxwise::benchrun::SimcoreBenchNames();
  const std::vector<std::string>& external =
      options.smoke ? SmokeExternalBenches() : FullExternalBenches();

  if (list_only) {
    for (const std::string& name : names) std::printf("%s\n", name.c_str());
    for (const std::string& name : external) {
      std::printf("extern.%s\n", name.c_str());
    }
    return 0;
  }

  BenchReport report;
  report.suite = suite;
  report.repeat = options.repeat;
  report.machine = MachineInfo::Detect();

  bool all_ok = true;
  for (const std::string& name : names) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    std::printf("[bench] %-22s ...", name.c_str());
    std::fflush(stdout);
    BenchResult result = muxwise::benchrun::RunSimcoreBench(name, options);
    std::printf(" %9.2f ms  %12.0f ev/s  %10llu events  %016llx%s\n",
                result.wall_ms_median, result.events_per_sec,
                static_cast<unsigned long long>(result.sim_events),
                static_cast<unsigned long long>(result.digest),
                result.ok ? "" : "  FAILED");
    if (!result.ok) {
      all_ok = false;
      if (!result.note.empty()) {
        std::fprintf(stderr, "  %s\n", result.note.c_str());
      }
    }
    report.benches.push_back(std::move(result));
  }

  if (!scenarios_dir.empty()) {
    for (BenchResult& result :
         muxwise::benchrun::RunScenarioBenches(scenarios_dir, options)) {
      if (!filter.empty() && result.name.find(filter) == std::string::npos) {
        continue;
      }
      std::printf("[bench] %-38s ... %9.2f ms  %10llu events  %016llx%s\n",
                  result.name.c_str(), result.wall_ms_median,
                  static_cast<unsigned long long>(result.sim_events),
                  static_cast<unsigned long long>(result.digest),
                  result.ok ? "" : "  FAILED");
      if (!result.ok) {
        all_ok = false;
        if (!result.note.empty()) {
          std::fprintf(stderr, "  %s\n", result.note.c_str());
        }
      }
      report.benches.push_back(std::move(result));
    }
  }

  if (!bench_dir.empty()) {
    for (const std::string& name : external) {
      const std::string full = "extern." + name;
      if (!filter.empty() && full.find(filter) == std::string::npos) continue;
      std::printf("[bench] %-38s ...", full.c_str());
      std::fflush(stdout);
      BenchResult result = RunExternalBench(bench_dir, name);
      std::printf(" %9.2f ms%s\n", result.wall_ms_median,
                  result.ok ? "" : "  FAILED");
      if (!result.ok) all_ok = false;
      report.benches.push_back(std::move(result));
    }
  }

  if (report.benches.empty()) {
    std::fprintf(stderr, "benchrun: filter matched no benchmarks\n");
    return 2;
  }

  if (!out_path.empty()) {
    if (!muxwise::benchrun::SaveReport(out_path, report)) {
      std::fprintf(stderr, "benchrun: failed to write %s\n",
                   out_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu benches, suite=%s, repeat=%d)\n",
                out_path.c_str(), report.benches.size(), suite.c_str(),
                options.repeat);
  }
  return all_ok ? 0 : 1;
}
