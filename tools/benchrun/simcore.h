#ifndef MUXWISE_TOOLS_BENCHRUN_SIMCORE_H_
#define MUXWISE_TOOLS_BENCHRUN_SIMCORE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace muxwise::benchrun {

/**
 * One measured benchmark: per-repetition wall times plus the
 * deterministic witnesses (simulated-event count and event-stream
 * digest) that must be bit-identical across repetitions, runs, and —
 * for the regression gate — across commits.
 */
struct BenchResult {
  std::string name;
  std::vector<double> wall_ms;   // One entry per repetition.
  double wall_ms_median = 0.0;
  std::uint64_t sim_events = 0;  // Simulated events per repetition.
  double events_per_sec = 0.0;   // sim_events / median wall time.
  std::uint64_t digest = 0;      // Event-stream digest (0 = none).
  bool ok = true;
  std::string note;
};

/** Knobs shared by every simcore microbenchmark. */
struct SimcoreOptions {
  /** Smoke mode shrinks workloads ~10x for CI gating. */
  bool smoke = false;

  /** Repetitions; the reported wall time is the median. */
  int repeat = 5;
};

/**
 * Names of the built-in simulator-substrate microbenchmarks:
 *
 *   simcore.events      raw event-queue throughput (self-rescheduling
 *                       actors with interleaved schedule/cancel churn)
 *   simcore.storm       same-tick event storms exercising the heap's
 *                       FIFO tie-break path
 *   simcore.launches    Gpu kernel launch/complete/re-rate churn across
 *                       concurrent streams
 *   simcore.acceptance  end-to-end acceptance scenario: every engine
 *                       replayed over the standard ShareGPT trace
 *   overload.goodput    1x/2x/4x MMPP bursts on MuxWise with overload
 *                       control on/off vs chunked-prefill and static
 *                       disaggregation; digests fold SLO-attained
 *                       goodput
 *   fleet.goodput       the MMPP burst through the fleet router at
 *                       1/2/4 replicas, with and without a mid-run
 *                       replica crash; digests fold attained goodput
 *                       and the re-home/shed counters
 *   simcore.parallel.tN the sharded parallel kernel: one fixed 8-shard
 *                       ring workload with cross-shard channel traffic
 *                       run at N = 1/2/4 worker threads. The three rows
 *                       must agree on event count and merged digest
 *                       (thread-count determinism, gated by benchdiff);
 *                       their events_per_sec ratio is the kernel's
 *                       measured speedup
 */
std::vector<std::string> SimcoreBenchNames();

/**
 * Runs one named simcore benchmark. The simulated work is identical
 * across repetitions (asserted via event counts and digests), so only
 * wall time varies. Unknown names return ok = false.
 */
BenchResult RunSimcoreBench(const std::string& name,
                            const SimcoreOptions& options);

/** Median of `samples` (by copy; 0.0 for empty input). */
double Median(std::vector<double> samples);

}  // namespace muxwise::benchrun

#endif  // MUXWISE_TOOLS_BENCHRUN_SIMCORE_H_
