#include "benchrun/report.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "harness/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sched.h>
#endif

namespace muxwise::benchrun {

namespace {

// JSON parsing/escaping comes from the shared harness::json library;
// the aliases keep this file's call sites unchanged.
using JsonValue = harness::json::Value;
using harness::json::GetNumber;
using harness::json::GetString;
const auto& JsonEscape = harness::json::Escape;

std::string HexDigest(std::uint64_t digest) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

MachineInfo MachineInfo::Detect() {
  MachineInfo info;
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) == 0) info.host = host;
#endif
#if defined(__clang__)
  info.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  info.compiler = std::string("gcc ") + __VERSION__;
#else
  info.compiler = "unknown";
#endif
#if defined(NDEBUG)
  info.build_type = "release";
#else
  info.build_type = "debug";
#endif
  info.hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  // Prefer the affinity mask: in a cgroup-limited container,
  // hardware_concurrency() may report the host's full core count while
  // the process is pinned to far fewer — and it may also return 0 when
  // detection fails. Either way `cpus` must reflect what a parallel run
  // can actually use, with a floor of 1.
#if defined(__linux__)
  cpu_set_t affinity;
  CPU_ZERO(&affinity);
  if (sched_getaffinity(0, sizeof(affinity), &affinity) == 0) {
    info.cpus = CPU_COUNT(&affinity);
  }
#endif
  if (info.cpus <= 0) info.cpus = info.hw_threads;
  if (info.cpus <= 0) info.cpus = 1;
  return info;
}

std::string ToJson(const BenchReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << report.schema_version << ",\n";
  out << "  \"suite\": \"" << JsonEscape(report.suite) << "\",\n";
  out << "  \"repeat\": " << report.repeat << ",\n";
  out << "  \"machine\": {\n";
  out << "    \"host\": \"" << JsonEscape(report.machine.host) << "\",\n";
  out << "    \"compiler\": \"" << JsonEscape(report.machine.compiler)
      << "\",\n";
  out << "    \"build_type\": \"" << JsonEscape(report.machine.build_type)
      << "\",\n";
  out << "    \"cpus\": " << report.machine.cpus << ",\n";
  out << "    \"hw_threads\": " << report.machine.hw_threads << "\n";
  out << "  },\n";
  out << "  \"benches\": [";
  for (std::size_t i = 0; i < report.benches.size(); ++i) {
    const BenchResult& b = report.benches[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"name\": \"" << JsonEscape(b.name) << "\",\n";
    out << "      \"ok\": " << (b.ok ? "true" : "false") << ",\n";
    out << "      \"wall_ms\": [";
    for (std::size_t j = 0; j < b.wall_ms.size(); ++j) {
      out << (j == 0 ? "" : ", ") << FormatDouble(b.wall_ms[j]);
    }
    out << "],\n";
    out << "      \"wall_ms_median\": " << FormatDouble(b.wall_ms_median)
        << ",\n";
    out << "      \"sim_events\": " << b.sim_events << ",\n";
    out << "      \"events_per_sec\": " << FormatDouble(b.events_per_sec)
        << ",\n";
    out << "      \"digest\": \"" << HexDigest(b.digest) << "\",\n";
    out << "      \"note\": \"" << JsonEscape(b.note) << "\"\n";
    out << "    }";
  }
  if (!report.benches.empty()) out << "\n  ";
  out << "]\n}\n";
  return out.str();
}

bool FromJson(const std::string& json, BenchReport& report,
              std::string& error) {
  JsonValue root;
  if (!harness::json::Parse(json, root, error)) return false;
  if (root.type != JsonValue::Type::kObject) {
    error = "report root is not an object";
    return false;
  }
  const int version =
      static_cast<int>(GetNumber(root.Find("schema_version"), -1));
  if (version != BenchReport::kSchemaVersion) {
    error = "unsupported schema_version " + std::to_string(version) +
            " (expected " + std::to_string(BenchReport::kSchemaVersion) + ")";
    return false;
  }
  report.schema_version = version;
  report.suite = GetString(root.Find("suite"));
  report.repeat = static_cast<int>(GetNumber(root.Find("repeat")));
  if (const JsonValue* machine = root.Find("machine");
      machine != nullptr && machine->type == JsonValue::Type::kObject) {
    report.machine.host = GetString(machine->Find("host"));
    report.machine.compiler = GetString(machine->Find("compiler"));
    report.machine.build_type = GetString(machine->Find("build_type"));
    report.machine.cpus = static_cast<int>(GetNumber(machine->Find("cpus")));
    // hw_threads joined the schema with the parallel kernel; older
    // reports simply leave it 0 (absent ≠ schema mismatch).
    report.machine.hw_threads =
        static_cast<int>(GetNumber(machine->Find("hw_threads")));
  }
  report.benches.clear();
  const JsonValue* benches = root.Find("benches");
  if (benches == nullptr || benches->type != JsonValue::Type::kArray) {
    error = "report has no benches array";
    return false;
  }
  for (const JsonValue& entry : benches->array) {
    if (entry.type != JsonValue::Type::kObject) {
      error = "bench entry is not an object";
      return false;
    }
    BenchResult b;
    b.name = GetString(entry.Find("name"));
    if (b.name.empty()) {
      error = "bench entry without a name";
      return false;
    }
    const JsonValue* ok = entry.Find("ok");
    b.ok = ok == nullptr || ok->type != JsonValue::Type::kBool || ok->boolean;
    if (const JsonValue* wall = entry.Find("wall_ms");
        wall != nullptr && wall->type == JsonValue::Type::kArray) {
      for (const JsonValue& v : wall->array) b.wall_ms.push_back(v.number);
    }
    b.wall_ms_median = GetNumber(entry.Find("wall_ms_median"));
    b.sim_events =
        static_cast<std::uint64_t>(GetNumber(entry.Find("sim_events")));
    b.events_per_sec = GetNumber(entry.Find("events_per_sec"));
    const std::string digest = GetString(entry.Find("digest"));
    b.digest = digest.empty()
                   ? 0
                   : static_cast<std::uint64_t>(
                         std::strtoull(digest.c_str(), nullptr, 16));
    b.note = GetString(entry.Find("note"));
    report.benches.push_back(std::move(b));
  }
  return true;
}

bool LoadReport(const std::string& path, BenchReport& report,
                std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromJson(buffer.str(), report, error);
}

bool SaveReport(const std::string& path, const BenchReport& report) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << ToJson(report);
  return static_cast<bool>(out);
}

DiffResult DiffReports(const BenchReport& base, const BenchReport& candidate,
                       const DiffOptions& options) {
  DiffResult result;
  std::map<std::string, const BenchResult*> candidates;
  for (const BenchResult& b : candidate.benches) candidates[b.name] = &b;

  for (const BenchResult& b : base.benches) {
    const auto it = candidates.find(b.name);
    if (it == candidates.end()) {
      const std::string msg =
          b.name + ": present in baseline but missing from candidate";
      if (options.require_coverage) {
        result.failures.push_back(msg);
      } else {
        result.notes.push_back(msg);
      }
      continue;
    }
    const BenchResult& c = *it->second;
    candidates.erase(it);

    if (!c.ok) {
      result.failures.push_back(b.name + ": candidate run reported failure" +
                                (c.note.empty() ? "" : " (" + c.note + ")"));
      continue;
    }
    if (b.digest != c.digest) {
      result.failures.push_back(
          b.name + ": event digest drifted (" + HexDigest(b.digest) + " -> " +
          HexDigest(c.digest) + "); the simulated work itself changed");
    }
    if (b.sim_events != c.sim_events) {
      result.failures.push_back(
          b.name + ": simulated event count drifted (" +
          std::to_string(b.sim_events) + " -> " +
          std::to_string(c.sim_events) + ")");
    }
    if (options.check_wall && b.wall_ms_median > 0.0) {
      const double ratio = c.wall_ms_median / b.wall_ms_median;
      if (ratio > 1.0 + options.wall_regression_threshold) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s: wall-time regression %.1f%% (%.3f ms -> %.3f ms, "
                      "threshold %.0f%%)",
                      b.name.c_str(), (ratio - 1.0) * 100.0, b.wall_ms_median,
                      c.wall_ms_median,
                      options.wall_regression_threshold * 100.0);
        result.failures.push_back(buf);
      } else if (ratio < 0.9) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%s: improved %.1f%% (%.3f -> %.3f ms)",
                      b.name.c_str(), (1.0 - ratio) * 100.0, b.wall_ms_median,
                      c.wall_ms_median);
        result.notes.push_back(buf);
      }
    }
  }
  for (const auto& [name, bench] : candidates) {
    result.notes.push_back(name + ": new bench (no baseline)");
    (void)bench;
  }
  return result;
}

}  // namespace muxwise::benchrun
