#ifndef MUXWISE_TOOLS_BENCHRUN_REPORT_H_
#define MUXWISE_TOOLS_BENCHRUN_REPORT_H_

#include <string>
#include <vector>

#include "benchrun/simcore.h"

namespace muxwise::benchrun {

/** Host/toolchain metadata stamped into every report. */
struct MachineInfo {
  std::string host;
  std::string compiler;
  std::string build_type;

  /**
   * CPUs actually available to this process (Linux: the scheduling
   * affinity mask, so cgroup/container limits are respected), floor 1.
   * This is the number that decides whether parallel-kernel speedup
   * claims are meaningful on the recording machine.
   */
  int cpus = 0;

  /**
   * std::thread::hardware_concurrency() — the machine's full thread
   * count, ignoring affinity limits. Recorded separately so a report
   * from a pinned container (cpus < hw_threads) is recognizable.
   */
  int hw_threads = 0;

  /** Fills in the current process's metadata. */
  static MachineInfo Detect();
};

/**
 * A full benchrun report: schema-versioned so `benchdiff` can refuse
 * files it does not understand instead of mis-diffing them.
 */
struct BenchReport {
  static constexpr int kSchemaVersion = 1;

  int schema_version = kSchemaVersion;
  std::string suite;  // "smoke" | "full" | "custom".
  int repeat = 0;
  MachineInfo machine;
  std::vector<BenchResult> benches;
};

/** Serializes a report as pretty-printed JSON (stable field order). */
std::string ToJson(const BenchReport& report);

/**
 * Parses a report previously produced by ToJson. Returns false (with
 * `error` set) on malformed input or a schema-version mismatch.
 */
bool FromJson(const std::string& json, BenchReport& report,
              std::string& error);

/** Reads and parses a report file. */
bool LoadReport(const std::string& path, BenchReport& report,
                std::string& error);

/** Writes a report file. Returns false on I/O failure. */
bool SaveReport(const std::string& path, const BenchReport& report);

/** Knobs for DiffReports (the `benchdiff` gate). */
struct DiffOptions {
  /** Fail when candidate median wall time exceeds base by this factor. */
  double wall_regression_threshold = 0.10;

  /** Compare wall times at all (digests are always compared). */
  bool check_wall = true;

  /** Treat a baseline bench missing from the candidate as a failure. */
  bool require_coverage = true;
};

/** Outcome of diffing a candidate report against a baseline. */
struct DiffResult {
  std::vector<std::string> failures;
  std::vector<std::string> notes;  // Informational (improvements, extras).

  bool ok() const { return failures.empty(); }
};

/**
 * Diffs `candidate` against `base` bench-by-bench (matched by name):
 * any digest or simulated-event-count change fails (the work itself
 * drifted — a correctness signal, not a performance one), and a median
 * wall-time regression beyond the threshold fails. New benches only in
 * the candidate are noted, never failed.
 */
DiffResult DiffReports(const BenchReport& base, const BenchReport& candidate,
                       const DiffOptions& options = DiffOptions());

}  // namespace muxwise::benchrun

#endif  // MUXWISE_TOOLS_BENCHRUN_REPORT_H_
