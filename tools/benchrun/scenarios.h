#ifndef MUXWISE_TOOLS_BENCHRUN_SCENARIOS_H_
#define MUXWISE_TOOLS_BENCHRUN_SCENARIOS_H_

#include <string>
#include <vector>

#include "benchrun/simcore.h"

namespace muxwise::benchrun {

/**
 * Runs every scenario DSL file (`*.json`) directly under `dir` as a
 * benchmark: `repeat` timed repetitions each, named
 * "scenario.<scenario-name>", with the run's OutcomeDigest (streaming:
 * event digest) and executed-event count as the deterministic
 * witnesses. Routed through the same benchdiff gate as the simcore
 * rows, this pins every checked-in scenario's digest — including the
 * chaos ones — against the frozen baseline on each push. Files are
 * visited in sorted order so reports are stable; a scenario that fails
 * to parse or run yields ok = false with the reason in `note`.
 */
std::vector<BenchResult> RunScenarioBenches(const std::string& dir,
                                            const SimcoreOptions& options);

}  // namespace muxwise::benchrun

#endif  // MUXWISE_TOOLS_BENCHRUN_SCENARIOS_H_
