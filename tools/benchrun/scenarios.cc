#include "benchrun/scenarios.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/streaming.h"

namespace muxwise::benchrun {

namespace {

// Wall time is the measured quantity here.
namespace chr = std::chrono;  // muxlint: allow(wall-clock)

double NowMs() {
  const auto t = chr::steady_clock::now().time_since_epoch();
  return chr::duration<double, std::milli>(t).count();
}

}  // namespace

std::vector<BenchResult> RunScenarioBenches(const std::string& dir,
                                            const SimcoreOptions& options) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<BenchResult> results;
  if (ec) {
    BenchResult result;
    result.name = "scenario.<dir>";
    result.ok = false;
    result.note = dir + ": " + ec.message();
    results.push_back(std::move(result));
    return results;
  }

  for (const std::string& path : paths) {
    BenchResult result;
    const harness::ScenarioParseResult parsed =
        harness::LoadScenarioFile(path);
    if (!parsed.ok()) {
      result.name = "scenario." + path;
      result.ok = false;
      result.note = parsed.error;
      results.push_back(std::move(result));
      continue;
    }
    const harness::ScenarioSpec& spec = *parsed.spec;
    result.name = "scenario." + spec.name;
    for (int rep = 0; rep < options.repeat; ++rep) {
      const double start = NowMs();
      std::uint64_t digest = 0;
      std::uint64_t events = 0;
      bool stable = false;
      std::string diagnostic;
      if (spec.IsStreaming()) {
        const harness::StreamingOutcome outcome =
            harness::RunStreamingScenario(spec);
        digest = outcome.event_digest;
        events = outcome.executed_events;
        stable = outcome.stable;
        diagnostic = outcome.diagnostic;
      } else {
        const harness::RunOutcome outcome = harness::RunScenario(spec);
        digest = harness::OutcomeDigest(outcome);
        events = outcome.executed_events;
        stable = outcome.stable;
        diagnostic = outcome.diagnostic;
      }
      result.wall_ms.push_back(NowMs() - start);
      if (!stable) {
        result.ok = false;
        result.note = "unstable: " + diagnostic;
      }
      if (rep == 0) {
        result.digest = digest;
        result.sim_events = events;
      } else if (digest != result.digest || events != result.sim_events) {
        result.ok = false;
        result.note = "nondeterministic across repetitions";
      }
    }
    result.wall_ms_median = Median(result.wall_ms);
    if (result.wall_ms_median > 0.0) {
      result.events_per_sec = static_cast<double>(result.sim_events) /
                              (result.wall_ms_median / 1000.0);
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace muxwise::benchrun
