#include "benchrun/simcore.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "core/estimator.h"
#include "fault/fault_plan.h"
#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "gpu/kernel.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/parallel_simulator.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "workload/datasets.h"

namespace muxwise::benchrun {

namespace {

/** Mixes one value into a running order-sensitive digest. */
std::uint64_t MixDigest(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

// Wall time is the measured quantity in a benchmark driver.
namespace chr = std::chrono;  // muxlint: allow(wall-clock)

double NowMs() {
  const auto t = chr::steady_clock::now().time_since_epoch();
  return chr::duration<double, std::milli>(t).count();
}

struct OneRun {
  std::uint64_t sim_events = 0;
  std::uint64_t digest = 0;
};

/**
 * Raw event-queue throughput: `actors` self-rescheduling callbacks with
 * deterministic, distinct delays, plus schedule-then-cancel churn on
 * every 8th firing so the cancellation path stays on the profile.
 */
OneRun DriveEvents(std::size_t target_events, int actors) {
  sim::Simulator simulator;
  std::size_t fired = 0;
  std::vector<std::function<void()>> bodies(
      static_cast<std::size_t>(actors));
  for (int a = 0; a < actors; ++a) {
    bodies[static_cast<std::size_t>(a)] = [&, a] {
      ++fired;
      if (fired >= target_events) return;
      if (fired % 8 == 0) {
        // Schedule-and-cancel: a completion re-rated away, the hottest
        // cancellation pattern in gpu::Gpu.
        const sim::EventId doomed =
            simulator.ScheduleAfter(sim::Microseconds(500), [] {});
        simulator.Cancel(doomed);
      }
      const sim::Duration delay =
          sim::Nanoseconds(1 + (static_cast<sim::Duration>(fired % 97) *
                                (a + 1)));
      simulator.ScheduleAfter(delay, bodies[static_cast<std::size_t>(a)]);
    };
  }
  for (int a = 0; a < actors; ++a) {
    simulator.ScheduleAfter(sim::Nanoseconds(a + 1),
                            bodies[static_cast<std::size_t>(a)]);
  }
  simulator.Run();
  return OneRun{simulator.ExecutedEvents(), simulator.EventDigest()};
}

/**
 * Same-tick storms: every round schedules `width` events at one shared
 * timestamp (insertion order defines execution order), and the last of
 * them opens the next round — the adversarial case for the heap's
 * same-timestamp FIFO tie-break.
 */
OneRun DriveStorm(std::size_t rounds, std::size_t width) {
  sim::Simulator simulator;
  std::size_t round = 0;
  std::function<void()> start_round = [&] {
    if (round >= rounds) return;
    ++round;
    const sim::Time when = simulator.Now() + sim::Microseconds(10);
    for (std::size_t i = 0; i + 1 < width; ++i) {
      simulator.ScheduleAt(when, [] {});
    }
    simulator.ScheduleAt(when, [&] { start_round(); });
  };
  start_round();
  simulator.Run();
  return OneRun{simulator.ExecutedEvents(), simulator.EventDigest()};
}

/**
 * Kernel launch/complete churn: four streams with distinct SM grants
 * chain mixed prefill/decode/fused kernels, forcing an HBM
 * re-arbitration of every co-running kernel on each boundary.
 */
OneRun DriveLaunches(std::size_t target_launches) {
  sim::Simulator simulator;
  gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
  const int total_sms = device.spec().sm_count;
  const gpu::StreamId s0 = device.CreateStream(total_sms / 2);
  const gpu::StreamId s1 = device.CreateStream(total_sms / 4);
  const gpu::StreamId s2 = device.CreateStream(total_sms / 8);
  const gpu::StreamId s3 = device.CreateStream(total_sms / 8);
  const gpu::StreamId streams[] = {s0, s1, s2, s3};

  std::size_t launched = 0;
  std::function<void(int)> chain = [&](int lane) {
    if (launched >= target_launches) return;
    ++launched;
    const std::size_t n = launched;
    gpu::Kernel kernel;
    switch (n % 3) {
      case 0:
        kernel = gpu::Kernel::Prefill(2e12 + 1e9 * static_cast<double>(n % 7),
                                      1e9);
        break;
      case 1:
        kernel = gpu::Kernel::Decode(5e10, 4e9 + 1e6 * static_cast<double>(n % 13));
        break;
      default:
        kernel = gpu::Kernel::Fused(8e11, 2e9);
        break;
    }
    device.Launch(streams[lane % 4], std::move(kernel),
                  [&chain, lane] { chain(lane); });
  };
  for (int lane = 0; lane < 4; ++lane) chain(lane);
  simulator.Run();
  return OneRun{simulator.ExecutedEvents(), simulator.EventDigest()};
}

/**
 * End-to-end acceptance scenario: every serving engine replays the
 * standard ShareGPT trace (the tracecap scenario, scaled). Digest folds
 * each engine's event-stream digest and event count in a fixed order.
 */
OneRun DriveAcceptance(int num_requests) {
  static const serve::Deployment deployment = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  static const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kShareGpt, num_requests, 2.0, 901);

  constexpr harness::EngineKind kEngines[] = {
      harness::EngineKind::kMuxWise,    harness::EngineKind::kChunked,
      harness::EngineKind::kNanoFlow,   harness::EngineKind::kSglangPd,
      harness::EngineKind::kLoongServe, harness::EngineKind::kWindServe,
      harness::EngineKind::kTemporal,
  };
  OneRun run;
  run.digest = 0x243f6a8885a308d3ULL;
  for (harness::EngineKind kind : kEngines) {
    const harness::RunOutcome outcome =
        harness::RunWorkload(kind, deployment, trace, &estimator);
    run.sim_events += outcome.executed_events;
    run.digest = MixDigest(run.digest, outcome.event_digest);
    run.digest = MixDigest(
        run.digest, static_cast<std::uint64_t>(outcome.executed_events));
  }
  return run;
}

/**
 * Overload goodput sweep (ISSUE 5): a Markov-modulated ShareGPT burst
 * at 1x/2x/4x the calm arrival rate, replayed on MuxWise with overload
 * control on and off, on chunked-prefill, and on static disaggregation.
 * The digest folds each run's event digest and its SLO-attained
 * goodput, so a control regression (fewer TTFT-attained completions)
 * shows up as a digest change even when raw event counts hold steady.
 */
OneRun DriveOverloadGoodput(double duration_seconds) {
  static const serve::Deployment deployment = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  static const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);

  OneRun run;
  run.digest = 0x452821e638d01377ULL;
  for (const double multiplier : {1.0, 2.0, 4.0}) {
    workload::MmppOptions options;
    options.dataset = workload::Dataset::kShareGpt;
    options.calm_rate_per_second = 10.0;
    options.burst_multiplier = multiplier;
    options.mean_calm_seconds = 15.0;
    options.mean_burst_seconds = 10.0;
    options.duration_seconds = duration_seconds;
    options.class_mix = {0.2, 0.5, 0.3};
    const workload::Trace trace = GenerateMmppTrace(options, 20250);

    struct Arm {
      harness::EngineKind kind;
      bool control;
    };
    constexpr Arm kArms[] = {
        {harness::EngineKind::kMuxWise, true},
        {harness::EngineKind::kMuxWise, false},
        {harness::EngineKind::kChunked, false},
        {harness::EngineKind::kSglangPd, false},
    };
    for (const Arm& arm : kArms) {
      harness::RunConfig config;
      config.recovery.enabled = true;
      config.overload.enabled = arm.control;
      const harness::RunOutcome outcome = harness::RunWorkload(
          arm.kind, deployment, trace, &estimator, config);
      std::uint64_t goodput = 0;
      for (const serve::ClassMetrics& slice : outcome.per_class) {
        goodput += slice.TtftAttained();
      }
      if (outcome.per_class.empty()) goodput = outcome.split.attained;
      run.sim_events += outcome.executed_events;
      run.digest = MixDigest(run.digest, outcome.event_digest);
      run.digest = MixDigest(run.digest, goodput);
    }
  }
  return run;
}

/**
 * Fleet goodput scaling (ISSUE 7): the MMPP burst replayed through the
 * fleet router at 1/2/4 replicas, each with and without a replica
 * crash at t=30 s (never recovering). The digest folds every run's
 * event digest, SLO-attained goodput, and re-home counters, so a
 * routing or failover regression — fewer attained completions, orphans
 * shed instead of re-homed — shows up as a digest change.
 */
OneRun DriveFleetGoodput(double duration_seconds) {
  static const serve::Deployment deployment = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  static const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);

  workload::MmppOptions options;
  options.dataset = workload::Dataset::kShareGpt;
  options.calm_rate_per_second = 2.0;
  options.burst_multiplier = 4.0;
  options.mean_calm_seconds = 15.0;
  options.mean_burst_seconds = 10.0;
  options.duration_seconds = duration_seconds;
  options.class_mix = {0.3, 0.5, 0.2};
  const workload::Trace trace = GenerateMmppTrace(options, 20260);

  OneRun run;
  run.digest = 0x13198a2e03707344ULL;
  for (const std::size_t replicas : {1, 2, 4}) {
    for (const bool crash : {false, true}) {
      harness::RunConfig config;
      config.fleet.enabled = true;
      config.fleet.replicas = replicas;
      if (crash) {
        config.fault_plan = fault::FaultPlan();
        // A fleet of one has no survivor: the crash arm then measures
        // the total-outage shed path instead of failover.
        config.fault_plan->Crash(replicas > 1 ? 1 : 0, sim::Seconds(30));
      }
      const harness::RunOutcome outcome =
          harness::RunWorkload(harness::EngineKind::kMuxWise, deployment,
                               trace, &estimator, config);
      std::uint64_t goodput = 0;
      for (const serve::ClassMetrics& slice : outcome.per_class) {
        goodput += slice.TtftAttained();
      }
      run.sim_events += outcome.executed_events;
      run.digest = MixDigest(run.digest, outcome.event_digest);
      run.digest = MixDigest(run.digest, goodput);
      run.digest = MixDigest(
          run.digest, static_cast<std::uint64_t>(outcome.fleet.rehomed));
      run.digest = MixDigest(
          run.digest, static_cast<std::uint64_t>(outcome.fleet.fleet_shed));
    }
  }
  return run;
}

/**
 * Sharded-kernel throughput (ISSUE 8): eight event-loop shards joined
 * in a ring of ShardChannels (latencies 20/27/34 us — the 20 us minimum
 * is the lookahead window), each running the simcore.events
 * self-rescheduling actor at nanosecond granularity and forwarding a
 * token around the ring every 16th firing. Thousands of shard-local
 * events fit in every window, so window execution dominates barrier
 * cost and thread scaling is visible. The workload is identical for
 * every `threads` setting — the t1/t2/t4 bench rows must report the
 * same event count and merged digest, making thread-count determinism a
 * gated property of the benchmark suite, while their events_per_sec
 * ratio measures kernel speedup.
 */
OneRun DriveParallel(int threads, std::size_t rounds_per_shard) {
  constexpr std::size_t kShards = 8;
  sim::ParallelSimulator::Options options;
  options.shards = kShards;
  options.threads = threads;
  sim::ParallelSimulator psim(options);

  std::vector<std::unique_ptr<sim::ShardChannel>> ring;
  ring.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    ring.push_back(std::make_unique<sim::ShardChannel>(
        &psim, "bench/ring" + std::to_string(s),
        static_cast<sim::ShardId>(s),
        static_cast<sim::ShardId>((s + 1) % kShards),
        sim::Microseconds(20 + 7 * static_cast<sim::Duration>(s % 3))));
  }

  // Per-shard firing counters, cache-line padded: worker threads bump
  // adjacent shards' counters concurrently, and false sharing here
  // would charge a memory-system tax to the very scaling this bench
  // exists to measure.
  struct alignas(64) ShardCounter {
    std::size_t fired = 0;
  };
  std::vector<ShardCounter> counters(kShards);
  std::vector<std::function<void()>> bodies(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    bodies[s] = [&psim, &ring, &bodies, &counters, rounds_per_shard, s] {
      std::size_t& fired = counters[s].fired;
      ++fired;
      if (fired >= rounds_per_shard) return;
      if (fired % 16 == 0) {
        // Token hop: delivered to shard (s+1)%kShards at the barrier,
        // where it runs that shard's actor body once.
        const std::size_t next = (s + 1) % kShards;
        ring[s]->Post([&bodies, next] { bodies[next](); });
      }
      const sim::Duration delay = sim::Nanoseconds(
          200 + static_cast<sim::Duration>(fired % 97) *
                    static_cast<sim::Duration>(s + 1));
      psim.shard(static_cast<sim::ShardId>(s))
          .ScheduleAfter(delay, bodies[s]);
    };
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    psim.shard(static_cast<sim::ShardId>(s))
        .ScheduleAfter(sim::Nanoseconds(static_cast<sim::Duration>(s + 1)),
                       bodies[s]);
  }
  psim.Run();
  return OneRun{psim.ExecutedEvents(), psim.EventDigest()};
}

BenchResult Measure(const std::string& name, const SimcoreOptions& options,
                    const std::function<OneRun()>& body) {
  BenchResult result;
  result.name = name;
  const int reps = std::max(1, options.repeat);
  for (int rep = 0; rep < reps; ++rep) {
    const double start = NowMs();
    const OneRun run = body();
    result.wall_ms.push_back(NowMs() - start);
    if (rep == 0) {
      result.sim_events = run.sim_events;
      result.digest = run.digest;
    } else if (run.sim_events != result.sim_events ||
               run.digest != result.digest) {
      result.ok = false;
      result.note = "nondeterministic: repetition " + std::to_string(rep) +
                    " diverged from repetition 0";
    }
  }
  result.wall_ms_median = Median(result.wall_ms);
  if (result.wall_ms_median > 0.0) {
    result.events_per_sec = static_cast<double>(result.sim_events) /
                            (result.wall_ms_median / 1e3);
  }
  return result;
}

}  // namespace

double Median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

std::vector<std::string> SimcoreBenchNames() {
  return {"simcore.events",      "simcore.storm",
          "simcore.launches",    "simcore.acceptance",
          "overload.goodput",    "fleet.goodput",
          "simcore.parallel.t1", "simcore.parallel.t2",
          "simcore.parallel.t4"};
}

BenchResult RunSimcoreBench(const std::string& name,
                            const SimcoreOptions& options) {
  if (name == "simcore.events") {
    const std::size_t target = options.smoke ? 200'000 : 2'000'000;
    return Measure(name, options, [target] { return DriveEvents(target, 64); });
  }
  if (name == "simcore.storm") {
    const std::size_t rounds = options.smoke ? 400 : 4'000;
    return Measure(name, options,
                   [rounds] { return DriveStorm(rounds, 256); });
  }
  if (name == "simcore.launches") {
    const std::size_t target = options.smoke ? 20'000 : 200'000;
    return Measure(name, options, [target] { return DriveLaunches(target); });
  }
  if (name == "simcore.acceptance") {
    const int requests = options.smoke ? 20 : 45;
    return Measure(name, options,
                   [requests] { return DriveAcceptance(requests); });
  }
  if (name == "overload.goodput") {
    const double duration = options.smoke ? 30.0 : 120.0;
    return Measure(name, options,
                   [duration] { return DriveOverloadGoodput(duration); });
  }
  if (name == "fleet.goodput") {
    const double duration = options.smoke ? 40.0 : 90.0;
    return Measure(name, options,
                   [duration] { return DriveFleetGoodput(duration); });
  }
  if (name == "simcore.parallel.t1" || name == "simcore.parallel.t2" ||
      name == "simcore.parallel.t4") {
    // One workload, three thread counts: t1 is the inline reference
    // interleaving, t2/t4 must reproduce its digest bit-for-bit while
    // (on a multi-core host) raising events_per_sec.
    const int threads = name.back() - '0';
    const std::size_t rounds = options.smoke ? 30'000 : 300'000;
    return Measure(name, options,
                   [threads, rounds] { return DriveParallel(threads, rounds); });
  }
  BenchResult unknown;
  unknown.name = name;
  unknown.ok = false;
  unknown.note = "unknown simcore benchmark";
  return unknown;
}

}  // namespace muxwise::benchrun
