// tracecap: runs one traced serving scenario and writes the trace as a
// MUXT binary (convert with trace2json). Because tracing never touches
// the event stream, the captured run is bit-identical to an untraced
// one — the tool prints both digests so CI can assert as much.
//
// Usage: tracecap [engine] [out.bin]
//   engine  one of: muxwise chunked nanoflow sglang-pd loongserve
//           windserve temporal            (default: muxwise)
//   out.bin output path                   (default: trace.bin)

#include <cstdio>
#include <string>

#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

namespace {

bool ParseEngine(const std::string& name, muxwise::harness::EngineKind* out) {
  using muxwise::harness::EngineKind;
  if (name == "muxwise") *out = EngineKind::kMuxWise;
  else if (name == "chunked") *out = EngineKind::kChunked;
  else if (name == "nanoflow") *out = EngineKind::kNanoFlow;
  else if (name == "sglang-pd") *out = EngineKind::kSglangPd;
  else if (name == "loongserve") *out = EngineKind::kLoongServe;
  else if (name == "windserve") *out = EngineKind::kWindServe;
  else if (name == "temporal") *out = EngineKind::kTemporal;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace harness = muxwise::harness;
  namespace obs = muxwise::obs;
  namespace core = muxwise::core;
  namespace serve = muxwise::serve;
  namespace llm = muxwise::llm;
  namespace gpu = muxwise::gpu;
  namespace workload = muxwise::workload;

  harness::EngineKind kind = harness::EngineKind::kMuxWise;
  std::string out_path = "trace.bin";
  if (argc > 1 && !ParseEngine(argv[1], &kind)) {
    std::fprintf(stderr,
                 "unknown engine '%s' (want muxwise|chunked|nanoflow|"
                 "sglang-pd|loongserve|windserve|temporal)\n",
                 argv[1]);
    return 2;
  }
  if (argc > 2) out_path = argv[2];

  const serve::Deployment deployment = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(deployment);
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 30, 2.0, 901);

  obs::TraceRecorder recorder;
  harness::RunConfig config;
  config.trace = &recorder;
  const harness::RunOutcome traced =
      harness::RunWorkload(kind, deployment, trace, &estimator, config);

  const harness::RunOutcome untraced = harness::RunWorkload(
      kind, deployment, trace, &estimator, harness::RunConfig());

  if (!obs::WriteBinaryFile(out_path, recorder)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("engine            %s\n", traced.engine.c_str());
  std::printf("requests          %zu/%zu completed\n", traced.completed,
              traced.total);
  std::printf("trace events      %zu (%zu dropped)\n", recorder.size(),
              recorder.dropped());
  std::printf("trace digest      %016llx\n",
              static_cast<unsigned long long>(obs::TraceDigest(recorder)));
  std::printf("event digest      %016llx (traced)\n",
              static_cast<unsigned long long>(traced.event_digest));
  std::printf("event digest      %016llx (untraced)\n",
              static_cast<unsigned long long>(untraced.event_digest));
  std::printf("wrote             %s\n", out_path.c_str());

  if (traced.event_digest != untraced.event_digest ||
      traced.executed_events != untraced.executed_events) {
    std::fprintf(stderr, "tracing perturbed the simulated event stream\n");
    return 1;
  }
  return 0;
}
