#ifndef MUXWISE_TOOLS_CHAOSFUZZ_FUZZ_H_
#define MUXWISE_TOOLS_CHAOSFUZZ_FUZZ_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/json.h"
#include "harness/scenario.h"

namespace muxwise::chaosfuzz {

/**
 * Deterministic property-based chaos campaign over the scenario DSL.
 *
 * A campaign crosses seeded random FaultPlans (all seven fault kinds)
 * with a base scenario file and checks every run against the repo's
 * robustness properties: the run drains, every request reaches exactly
 * one terminal state (ledger balance), a double run is bit-identical,
 * and the end-of-run invariant audits hold (a violated audit panics,
 * which the fork-isolated checker reports as a crash). A failing plan
 * is shrunk — drop faults, narrow windows, soften magnitudes, binary-
 * search onsets — to a minimal still-failing plan, and emitted as a
 * self-contained scenario JSON repro that `chaosfuzz --replay` (and
 * the checked-in tests/chaos_corpus/ regression suite) re-runs.
 *
 * Everything is seed-determined: the same seed yields the same plans,
 * the same verdicts, and a byte-identical minimized repro.
 */

/** Bounds of one generated plan. */
struct PlanShape {
  /** Fault windows live inside [1, horizon_seconds). */
  double horizon_seconds = 60.0;

  /** Instance indices targeted (mapped onto fault domains mod N). */
  std::size_t instances = 3;

  /** Fault entries drawn per plan (at least 1). */
  std::size_t max_faults = 4;
};

/**
 * Generates a Validate-clean plan from `seed`: every draw comes from a
 * forked sim::Rng, entries that would collide (overlapping windows on
 * one target) are re-drawn a bounded number of times, and all times
 * land on a millisecond grid so the plan round-trips exactly through
 * the scenario DSL.
 */
fault::FaultPlan GeneratePlan(std::uint64_t seed, const PlanShape& shape);

/** The plan as a scenario-DSL "faults" object (empty arrays omitted). */
harness::json::Value PlanToJson(const fault::FaultPlan& plan);

/**
 * Self-contained repro: `base_doc` (a parsed scenario object) with its
 * "name" and "faults" members replaced. Deterministic serialization —
 * the byte-identity the regression corpus relies on.
 */
std::string MakeReproText(const harness::json::Value& base_doc,
                          const fault::FaultPlan& plan,
                          const std::string& name);

struct Verdict {
  enum class Result {
    kPass = 0,
    kViolation = 1,  // A property failed; `detail` says which.
    kCrash = 2,      // Invariant panic / signal in the child.
    kInvalid = 3,    // Plan did not survive the DSL round-trip.
  };
  Result result = Result::kPass;
  std::string detail;

  bool Failed() const {
    return result == Result::kViolation || result == Result::kCrash;
  }
};

/**
 * Runs `spec` in a forked child (POSIX; in-process elsewhere) and
 * checks the chaos properties: stable drain, ledger balance
 * (split.total() == total), and double-run digest equality. Audit
 * panics abort the child and come back as kCrash. The child's stdio is
 * silenced; replay a repro to see the underlying diagnostics.
 */
Verdict CheckScenario(const harness::ScenarioSpec& spec);

/**
 * Round-trips `plan` through the scenario DSL against `base_doc`
 * (serialize, re-parse, run) and checks it. The round-trip is the
 * point: a verdict earned here is a verdict the emitted repro file
 * reproduces byte-for-byte.
 */
Verdict CheckPlan(const harness::json::Value& base_doc,
                  const fault::FaultPlan& plan);

struct ShrinkResult {
  fault::FaultPlan plan;
  std::size_t attempts = 0;  // Candidate evaluations spent.
  Verdict verdict;           // Verdict of the minimized plan.
};

/** Does this candidate plan still fail? (Shrink keeps failing ones.) */
using FailurePredicate = std::function<bool(const fault::FaultPlan&)>;

/**
 * Greedy deterministic shrink of a failing plan, in a fixed pass
 * order: (1) drop whole fault entries to a fixpoint, (2) halve window
 * durations from the right and binary-search the latest still-failing
 * onset, (3) soften magnitudes toward their identity (slowdown -> 1,
 * drop probability -> 0, degrade factors -> 1, flap duty -> mostly
 * up). Same plan + same predicate => same minimized plan, always.
 * The verdict field of the result is left kPass; campaign callers use
 * Shrink() below, which re-checks the minimized plan.
 */
ShrinkResult ShrinkWith(const fault::FaultPlan& plan,
                        const FailurePredicate& fails);

/**
 * ShrinkWith against the real checker: every candidate is judged
 * through CheckPlan's DSL round-trip, so the minimized plan's failure
 * is reproducible from its emitted JSON. `verdict` carries the
 * minimized plan's (still-failing) verdict.
 */
ShrinkResult Shrink(const harness::json::Value& base_doc,
                    const fault::FaultPlan& plan);

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::size_t runs = 50;
  PlanShape shape;
  std::string out_dir = ".";  // Where minimized repros are written.
  bool shrink = true;
};

struct CampaignFailure {
  std::uint64_t seed = 0;
  Verdict verdict;          // Of the minimized (or original) plan.
  std::string repro_path;   // Emitted repro file.
  std::size_t shrink_attempts = 0;
};

struct CampaignResult {
  std::size_t runs = 0;
  std::vector<CampaignFailure> failures;
  std::string error;  // Non-empty when the campaign could not start.

  bool ok() const { return error.empty() && failures.empty(); }
};

/**
 * Runs `options.runs` seeded plans against the scenario at
 * `scenario_path`. Per-run seeds are derived from `options.seed`, so
 * a campaign is exactly repeatable. Progress lines go to `log` (may
 * be nullptr). The estimator cache is warmed in-process first, so
 * forked children inherit the profile instead of re-profiling.
 */
CampaignResult RunCampaign(const std::string& scenario_path,
                           const CampaignOptions& options, std::FILE* log);

/**
 * Replays one repro/corpus scenario file: parse and CheckScenario.
 * Corpus entries are minimized repros of *fixed* bugs, so replay must
 * pass — a failure here is a regression.
 */
Verdict ReplayFile(const std::string& path);

}  // namespace muxwise::chaosfuzz

#endif  // MUXWISE_TOOLS_CHAOSFUZZ_FUZZ_H_
