#include "chaosfuzz/fuzz.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "harness/runner.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace muxwise::chaosfuzz {

namespace json = harness::json;

namespace {

// ---------------------------------------------------------------------------
// Millisecond grid. Generated and shrunk times/magnitudes are snapped
// so plans round-trip exactly through the scenario DSL's *_seconds
// doubles, keeping repro files both readable and faithful.
// ---------------------------------------------------------------------------

double Round3(double x) { return std::round(x * 1000.0) / 1000.0; }
double Round2(double x) { return std::round(x * 100.0) / 100.0; }

sim::Time SnapMs(sim::Time t) { return (t / 1'000'000) * 1'000'000; }

/** Uniform draw snapped to the millisecond grid. */
double DrawSeconds(sim::Rng& rng, double lo, double hi) {
  return Round3(rng.Uniform(lo, hi));
}

/**
 * Seconds-on-the-grid to sim::Time. sim::Seconds truncates, so
 * 7.123 * 1e9 (stored as 7122999999.99…) would land 1 ns off the
 * millisecond grid; building from a rounded millisecond count is
 * exact for every value the generator draws.
 */
sim::Time GridTime(double seconds) {
  return sim::Milliseconds(
      static_cast<double>(std::llround(seconds * 1000.0)));
}

void AddRandomFault(fault::FaultPlan& plan, sim::Rng& rng,
                    const PlanShape& shape) {
  const double h = shape.horizon_seconds;
  const auto inst = static_cast<std::size_t>(rng.UniformInt(
      0, static_cast<std::int64_t>(shape.instances) - 1));
  switch (rng.UniformInt(0, 6)) {
    case 0: {  // Crash (always recovers, so runs always drain).
      const double at = DrawSeconds(rng, 1.0, 0.6 * h);
      const double dur = DrawSeconds(rng, 0.5, 0.3 * h);
      plan.Crash(inst, GridTime(at), GridTime(at + dur));
      break;
    }
    case 1: {  // Straggler.
      const double from = DrawSeconds(rng, 1.0, 0.7 * h);
      const double dur = DrawSeconds(rng, 0.5, 0.25 * h);
      plan.Straggle(inst, GridTime(from), GridTime(from + dur),
                    Round2(rng.Uniform(1.25, 6.0)));
      break;
    }
    case 2: {  // Transfer-loss window.
      const double from = DrawSeconds(rng, 1.0, 0.7 * h);
      const double dur = DrawSeconds(rng, 0.5, 0.25 * h);
      plan.DropTransfers(GridTime(from), GridTime(from + dur),
                         Round2(rng.Uniform(0.05, 0.8)));
      break;
    }
    case 3: {  // Zombie.
      const double from = DrawSeconds(rng, 1.0, 0.6 * h);
      const double dur = DrawSeconds(rng, 0.5, 0.2 * h);
      plan.Zombie(inst, GridTime(from), GridTime(from + dur));
      break;
    }
    case 4: {  // Flap (heartbeat path, or the fleet link).
      const bool link = rng.Bernoulli(0.3);
      const double from = DrawSeconds(rng, 1.0, 0.6 * h);
      const double dur = DrawSeconds(rng, 1.0, 0.3 * h);
      const double period = Round3(rng.Uniform(0.2, 2.5));
      const double duty = Round2(rng.Uniform(0.2, 0.8));
      if (link) {
        plan.FlapLink(GridTime(from), GridTime(from + dur),
                      GridTime(period), duty);
      } else {
        plan.Flap(inst, GridTime(from), GridTime(from + dur),
                  GridTime(period), duty);
      }
      break;
    }
    case 5: {  // Degrade (instance compute/HBM, or the fleet link).
      const bool link = rng.Bernoulli(0.3);
      const double from = DrawSeconds(rng, 1.0, 0.6 * h);
      const double dur = DrawSeconds(rng, 0.5, 0.25 * h);
      const double ff = Round2(rng.Uniform(0.3, 0.95));
      const double bf = Round2(rng.Uniform(0.3, 0.95));
      if (link) {
        plan.DegradeLink(GridTime(from), GridTime(from + dur), bf);
      } else {
        plan.Degrade(inst, GridTime(from), GridTime(from + dur), ff,
                     bf);
      }
      break;
    }
    default: {  // Asymmetric partition (one direction only).
      const bool drop_to = rng.Bernoulli(0.5);
      const double from = DrawSeconds(rng, 1.0, 0.6 * h);
      const double dur = DrawSeconds(rng, 0.5, 0.2 * h);
      plan.Partition(inst, GridTime(from), GridTime(from + dur),
                     drop_to, !drop_to);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// JSON helpers over the insertion-ordered object representation.
// ---------------------------------------------------------------------------

json::Value Num(double v) {
  json::Value out;
  out.type = json::Value::Type::kNumber;
  out.number = v;
  return out;
}

json::Value Str(const std::string& s) {
  json::Value out;
  out.type = json::Value::Type::kString;
  out.string = s;
  return out;
}

json::Value Bool(bool b) {
  json::Value out;
  out.type = json::Value::Type::kBool;
  out.boolean = b;
  return out;
}

json::Value Obj() {
  json::Value out;
  out.type = json::Value::Type::kObject;
  return out;
}

json::Value Arr() {
  json::Value out;
  out.type = json::Value::Type::kArray;
  return out;
}

void SetKey(json::Value& object, const std::string& key, json::Value value) {
  for (auto& [k, v] : object.object) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object.object.emplace_back(key, std::move(value));
}

double Secs(sim::Time t) { return Round3(sim::ToSeconds(t)); }

}  // namespace

fault::FaultPlan GeneratePlan(std::uint64_t seed, const PlanShape& shape) {
  sim::Rng rng = sim::Rng(seed).Fork("chaosfuzz-plan");
  fault::FaultPlan plan;
  // Transfer-loss stream seed; bounded so it survives a JSON double.
  plan.seed =
      static_cast<std::uint64_t>(rng.UniformInt(1, 1'000'000'000'000));
  const std::int64_t n = rng.UniformInt(
      1, static_cast<std::int64_t>(std::max<std::size_t>(1, shape.max_faults)));
  for (std::int64_t i = 0; i < n; ++i) {
    // Re-draw entries that would collide (overlap on one target); the
    // retry budget keeps generation total, and since every draw comes
    // from the same forked stream the outcome is seed-determined.
    for (int attempt = 0; attempt < 16; ++attempt) {
      fault::FaultPlan candidate = plan;
      AddRandomFault(candidate, rng, shape);
      if (candidate.Check().empty()) {
        plan = std::move(candidate);
        break;
      }
    }
  }
  if (plan.Empty()) {  // All retries collided; never hand back a no-op.
    plan.Straggle(0, sim::Seconds(1.0), sim::Seconds(2.0), 2.0);
  }
  return plan;
}

json::Value PlanToJson(const fault::FaultPlan& plan) {
  json::Value faults = Obj();
  SetKey(faults, "seed", Num(static_cast<double>(plan.seed)));
  if (!plan.crashes.empty()) {
    json::Value arr = Arr();
    for (const fault::CrashEvent& c : plan.crashes) {
      json::Value e = Obj();
      SetKey(e, "instance", Num(static_cast<double>(c.instance)));
      SetKey(e, "at_seconds", Num(Secs(c.at)));
      if (c.recover_at != sim::kTimeNever) {
        SetKey(e, "recover_at_seconds", Num(Secs(c.recover_at)));
      }
      arr.array.push_back(std::move(e));
    }
    SetKey(faults, "crashes", std::move(arr));
  }
  if (!plan.stragglers.empty()) {
    json::Value arr = Arr();
    for (const fault::StragglerWindow& w : plan.stragglers) {
      json::Value e = Obj();
      SetKey(e, "instance", Num(static_cast<double>(w.instance)));
      SetKey(e, "from_seconds", Num(Secs(w.from)));
      SetKey(e, "to_seconds", Num(Secs(w.to)));
      SetKey(e, "slowdown", Num(w.slowdown));
      arr.array.push_back(std::move(e));
    }
    SetKey(faults, "stragglers", std::move(arr));
  }
  if (!plan.transfer_faults.empty()) {
    json::Value arr = Arr();
    for (const fault::TransferFaultWindow& w : plan.transfer_faults) {
      json::Value e = Obj();
      SetKey(e, "from_seconds", Num(Secs(w.from)));
      SetKey(e, "to_seconds", Num(Secs(w.to)));
      SetKey(e, "probability", Num(w.failure_probability));
      arr.array.push_back(std::move(e));
    }
    SetKey(faults, "transfer_drops", std::move(arr));
  }
  if (!plan.zombies.empty()) {
    json::Value arr = Arr();
    for (const fault::ZombieWindow& w : plan.zombies) {
      json::Value e = Obj();
      SetKey(e, "instance", Num(static_cast<double>(w.instance)));
      SetKey(e, "from_seconds", Num(Secs(w.from)));
      SetKey(e, "to_seconds", Num(Secs(w.to)));
      arr.array.push_back(std::move(e));
    }
    SetKey(faults, "zombies", std::move(arr));
  }
  if (!plan.flaps.empty()) {
    json::Value arr = Arr();
    for (const fault::FlapWindow& w : plan.flaps) {
      json::Value e = Obj();
      SetKey(e, "instance", Num(static_cast<double>(w.instance)));
      SetKey(e, "link", Bool(w.link));
      SetKey(e, "from_seconds", Num(Secs(w.from)));
      SetKey(e, "to_seconds", Num(Secs(w.to)));
      SetKey(e, "period_seconds", Num(Secs(w.period)));
      SetKey(e, "duty_up", Num(w.duty_up));
      arr.array.push_back(std::move(e));
    }
    SetKey(faults, "flaps", std::move(arr));
  }
  if (!plan.degrades.empty()) {
    json::Value arr = Arr();
    for (const fault::DegradeWindow& w : plan.degrades) {
      json::Value e = Obj();
      SetKey(e, "instance", Num(static_cast<double>(w.instance)));
      SetKey(e, "link", Bool(w.link));
      SetKey(e, "from_seconds", Num(Secs(w.from)));
      SetKey(e, "to_seconds", Num(Secs(w.to)));
      SetKey(e, "flops_factor", Num(w.flops_factor));
      SetKey(e, "bandwidth_factor", Num(w.bandwidth_factor));
      arr.array.push_back(std::move(e));
    }
    SetKey(faults, "degrades", std::move(arr));
  }
  if (!plan.partitions.empty()) {
    json::Value arr = Arr();
    for (const fault::PartitionWindow& w : plan.partitions) {
      json::Value e = Obj();
      SetKey(e, "instance", Num(static_cast<double>(w.instance)));
      SetKey(e, "from_seconds", Num(Secs(w.from)));
      SetKey(e, "to_seconds", Num(Secs(w.to)));
      SetKey(e, "drop_to_replica", Bool(w.drop_to_replica));
      SetKey(e, "drop_from_replica", Bool(w.drop_from_replica));
      arr.array.push_back(std::move(e));
    }
    SetKey(faults, "partitions", std::move(arr));
  }
  return faults;
}

std::string MakeReproText(const json::Value& base_doc,
                          const fault::FaultPlan& plan,
                          const std::string& name) {
  json::Value doc = base_doc;
  SetKey(doc, "name", Str(name));
  SetKey(doc, "faults", PlanToJson(plan));
  return json::Dump(doc) + "\n";
}

// ---------------------------------------------------------------------------
// Property checking, fork-isolated.
// ---------------------------------------------------------------------------

namespace {

std::string Hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

Verdict CheckScenarioInProcess(const harness::ScenarioSpec& spec) {
  Verdict v;
  const harness::RunOutcome first = harness::RunScenario(spec);
  if (!first.stable) {
    v.result = Verdict::Result::kViolation;
    v.detail = "unstable: " + first.diagnostic;
    return v;
  }
  if (first.split.total() != first.total) {
    v.result = Verdict::Result::kViolation;
    v.detail = "terminal ledger unbalanced: attained " +
               std::to_string(first.split.attained) + " + timed_out " +
               std::to_string(first.split.timed_out) + " + shed " +
               std::to_string(first.split.shed) + " + failed " +
               std::to_string(first.split.failed) + " != total " +
               std::to_string(first.total);
    return v;
  }
  const harness::RunOutcome second = harness::RunScenario(spec);
  if (second.event_digest != first.event_digest ||
      second.executed_events != first.executed_events ||
      harness::OutcomeDigest(second) != harness::OutcomeDigest(first)) {
    v.result = Verdict::Result::kViolation;
    v.detail = "double run diverged: events " + Hex16(first.event_digest) +
               "/" + std::to_string(first.executed_events) + " vs " +
               Hex16(second.event_digest) + "/" +
               std::to_string(second.executed_events) + ", outcome " +
               Hex16(harness::OutcomeDigest(first)) + " vs " +
               Hex16(harness::OutcomeDigest(second));
    return v;
  }
  return v;
}

}  // namespace

Verdict CheckScenario(const harness::ScenarioSpec& spec) {
#if defined(__unix__) || defined(__APPLE__)
  int fds[2];
  if (pipe(fds) != 0) return CheckScenarioInProcess(spec);
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return CheckScenarioInProcess(spec);
  }
  if (pid == 0) {
    close(fds[0]);
    // Silence the child: a violated invariant audit panics loudly
    // before aborting, and a campaign runs hundreds of children.
    const int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      dup2(devnull, 1);
      dup2(devnull, 2);
    }
    const Verdict v = CheckScenarioInProcess(spec);
    if (!v.detail.empty()) {
      ssize_t ignored =
          write(fds[1], v.detail.data(), v.detail.size());
      (void)ignored;
    }
    close(fds[1]);
    _exit(v.result == Verdict::Result::kPass ? 0 : 1);
  }
  close(fds[1]);
  std::string detail;
  char buf[512];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    detail.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  Verdict v;
  if (WIFEXITED(status)) {
    if (WEXITSTATUS(status) == 0) return v;
    v.result = Verdict::Result::kViolation;
    v.detail = detail.empty() ? "property violation" : detail;
    return v;
  }
  v.result = Verdict::Result::kCrash;
  v.detail = "child terminated by signal " +
             std::to_string(WIFSIGNALED(status) ? WTERMSIG(status) : -1) +
             " (invariant panic or crash; replay the repro for details)";
  return v;
#else
  return CheckScenarioInProcess(spec);
#endif
}

Verdict CheckPlan(const json::Value& base_doc, const fault::FaultPlan& plan) {
  const std::string text = MakeReproText(base_doc, plan, "chaosfuzz-candidate");
  const harness::ScenarioParseResult parsed =
      harness::ParseScenarioJson(text, "chaosfuzz-candidate");
  if (!parsed.ok()) {
    Verdict v;
    v.result = Verdict::Result::kInvalid;
    v.detail = parsed.error;
    return v;
  }
  return CheckScenario(*parsed.spec);
}

// ---------------------------------------------------------------------------
// Shrinking.
// ---------------------------------------------------------------------------

namespace {

constexpr sim::Duration kMinWindow = sim::Milliseconds(10);

template <typename T>
bool DropPass(std::vector<T> fault::FaultPlan::* member,
              fault::FaultPlan& best, const auto& fails) {
  bool any = false;
  for (std::size_t i = 0; i < (best.*member).size();) {
    fault::FaultPlan candidate = best;
    auto& entries = candidate.*member;
    entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
    if (!candidate.Empty() && fails(candidate)) {
      best = std::move(candidate);
      any = true;
    } else {
      ++i;
    }
  }
  return any;
}

/**
 * Narrows one window greedily: halve the duration from the right while
 * the failure persists, then binary-search the latest still-failing
 * onset. `mutate(plan, from, to)` rewrites the window in a candidate.
 */
template <typename Mutate>
void ShrinkWindow(fault::FaultPlan& best, sim::Time from, sim::Time to,
                  const Mutate& mutate, const auto& fails) {
  while (to - from > 2 * kMinWindow) {
    const sim::Time mid = SnapMs(from + (to - from) / 2);
    if (mid <= from || mid >= to) break;
    fault::FaultPlan candidate = best;
    mutate(candidate, from, mid);
    if (!fails(candidate)) break;
    best = std::move(candidate);
    to = mid;
  }
  sim::Time lo = from;
  sim::Time hi = to - kMinWindow;
  while (hi - lo > sim::Milliseconds(20)) {
    const sim::Time mid = SnapMs(lo + (hi - lo) / 2);
    if (mid <= lo || mid >= hi) break;
    fault::FaultPlan candidate = best;
    mutate(candidate, mid, to);
    if (fails(candidate)) {
      best = std::move(candidate);
      lo = mid;
    } else {
      hi = mid;
    }
  }
}

/** Moves one magnitude toward its identity while the failure holds. */
template <typename Get, typename Set>
void SoftenMagnitude(fault::FaultPlan& best, double identity, const Get& get,
                     const Set& set, const auto& fails) {
  for (int iter = 0; iter < 8; ++iter) {
    const double current = get(best);
    const double next = Round2((current + identity) / 2.0);
    if (next == current) break;
    fault::FaultPlan candidate = best;
    set(candidate, next);
    if (!fails(candidate)) break;
    best = std::move(candidate);
  }
}

}  // namespace

ShrinkResult ShrinkWith(const fault::FaultPlan& plan,
                        const FailurePredicate& predicate) {
  ShrinkResult result;
  result.plan = plan;
  fault::FaultPlan& best = result.plan;
  const auto fails = [&](const fault::FaultPlan& candidate) {
    ++result.attempts;
    return predicate(candidate);
  };

  // Pass 1: drop whole entries, kinds in fixed order, to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    changed |= DropPass(&fault::FaultPlan::crashes, best, fails);
    changed |= DropPass(&fault::FaultPlan::stragglers, best, fails);
    changed |= DropPass(&fault::FaultPlan::transfer_faults, best, fails);
    changed |= DropPass(&fault::FaultPlan::zombies, best, fails);
    changed |= DropPass(&fault::FaultPlan::flaps, best, fails);
    changed |= DropPass(&fault::FaultPlan::degrades, best, fails);
    changed |= DropPass(&fault::FaultPlan::partitions, best, fails);
  }

  // Pass 2: narrow the surviving windows.
  for (std::size_t i = 0; i < best.stragglers.size(); ++i) {
    ShrinkWindow(best, best.stragglers[i].from, best.stragglers[i].to,
                 [i](fault::FaultPlan& p, sim::Time f, sim::Time t) {
                   p.stragglers[i].from = f;
                   p.stragglers[i].to = t;
                 },
                 fails);
  }
  for (std::size_t i = 0; i < best.transfer_faults.size(); ++i) {
    ShrinkWindow(best, best.transfer_faults[i].from,
                 best.transfer_faults[i].to,
                 [i](fault::FaultPlan& p, sim::Time f, sim::Time t) {
                   p.transfer_faults[i].from = f;
                   p.transfer_faults[i].to = t;
                 },
                 fails);
  }
  for (std::size_t i = 0; i < best.zombies.size(); ++i) {
    ShrinkWindow(best, best.zombies[i].from, best.zombies[i].to,
                 [i](fault::FaultPlan& p, sim::Time f, sim::Time t) {
                   p.zombies[i].from = f;
                   p.zombies[i].to = t;
                 },
                 fails);
  }
  for (std::size_t i = 0; i < best.flaps.size(); ++i) {
    ShrinkWindow(best, best.flaps[i].from, best.flaps[i].to,
                 [i](fault::FaultPlan& p, sim::Time f, sim::Time t) {
                   p.flaps[i].from = f;
                   p.flaps[i].to = t;
                 },
                 fails);
  }
  for (std::size_t i = 0; i < best.degrades.size(); ++i) {
    ShrinkWindow(best, best.degrades[i].from, best.degrades[i].to,
                 [i](fault::FaultPlan& p, sim::Time f, sim::Time t) {
                   p.degrades[i].from = f;
                   p.degrades[i].to = t;
                 },
                 fails);
  }
  for (std::size_t i = 0; i < best.partitions.size(); ++i) {
    ShrinkWindow(best, best.partitions[i].from, best.partitions[i].to,
                 [i](fault::FaultPlan& p, sim::Time f, sim::Time t) {
                   p.partitions[i].from = f;
                   p.partitions[i].to = t;
                 },
                 fails);
  }

  // Pass 3: soften magnitudes toward their identity.
  for (std::size_t i = 0; i < best.stragglers.size(); ++i) {
    SoftenMagnitude(
        best, 1.0,
        [i](const fault::FaultPlan& p) { return p.stragglers[i].slowdown; },
        [i](fault::FaultPlan& p, double v) { p.stragglers[i].slowdown = v; },
        fails);
  }
  for (std::size_t i = 0; i < best.transfer_faults.size(); ++i) {
    SoftenMagnitude(best, 0.0,
                    [i](const fault::FaultPlan& p) {
                      return p.transfer_faults[i].failure_probability;
                    },
                    [i](fault::FaultPlan& p, double v) {
                      p.transfer_faults[i].failure_probability = v;
                    },
                    fails);
  }
  for (std::size_t i = 0; i < best.degrades.size(); ++i) {
    if (!best.degrades[i].link) {
      SoftenMagnitude(
          best, 1.0,
          [i](const fault::FaultPlan& p) {
            return p.degrades[i].flops_factor;
          },
          [i](fault::FaultPlan& p, double v) {
            p.degrades[i].flops_factor = v;
          },
          fails);
    }
    SoftenMagnitude(
        best, 1.0,
        [i](const fault::FaultPlan& p) {
          return p.degrades[i].bandwidth_factor;
        },
        [i](fault::FaultPlan& p, double v) {
          p.degrades[i].bandwidth_factor = v;
        },
        fails);
  }
  for (std::size_t i = 0; i < best.flaps.size(); ++i) {
    // Higher duty_up is a milder flap (mostly up).
    SoftenMagnitude(
        best, 0.9,
        [i](const fault::FaultPlan& p) { return p.flaps[i].duty_up; },
        [i](fault::FaultPlan& p, double v) { p.flaps[i].duty_up = v; },
        fails);
  }

  return result;
}

ShrinkResult Shrink(const json::Value& base_doc,
                    const fault::FaultPlan& plan) {
  ShrinkResult result = ShrinkWith(plan, [&](const fault::FaultPlan& c) {
    return CheckPlan(base_doc, c).Failed();
  });
  result.verdict = CheckPlan(base_doc, result.plan);
  ++result.attempts;
  return result;
}

// ---------------------------------------------------------------------------
// Campaign and replay drivers.
// ---------------------------------------------------------------------------

namespace {

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

CampaignResult RunCampaign(const std::string& scenario_path,
                           const CampaignOptions& options, std::FILE* log) {
  CampaignResult result;
  std::string text;
  if (!ReadFile(scenario_path, text)) {
    result.error = "cannot read " + scenario_path;
    return result;
  }
  json::Value doc;
  std::string json_error;
  if (!json::Parse(text, doc, json_error)) {
    result.error = scenario_path + ": " + json_error;
    return result;
  }
  const harness::ScenarioParseResult parsed =
      harness::ParseScenarioJson(text, scenario_path);
  if (!parsed.ok()) {
    result.error = parsed.error;
    return result;
  }
  if (parsed.spec->IsStreaming()) {
    result.error = scenario_path + ": streaming scenarios are not fuzzable";
    return result;
  }

  // Warm the per-process estimator cache so every forked child
  // inherits the offline profile instead of re-profiling it.
  (void)harness::RunScenario(*parsed.spec);

  std::filesystem::create_directories(options.out_dir);
  for (std::size_t i = 0; i < options.runs; ++i) {
    ++result.runs;
    const std::uint64_t seed = options.seed * 1'000'003ULL + i;
    const fault::FaultPlan plan = GeneratePlan(seed, options.shape);
    const Verdict verdict = CheckPlan(doc, plan);
    if (!verdict.Failed()) {
      if (log != nullptr) {
        std::fprintf(log, "ok   seed %llu\n",
                     static_cast<unsigned long long>(seed));
      }
      continue;
    }
    CampaignFailure failure;
    failure.seed = seed;
    failure.verdict = verdict;
    fault::FaultPlan minimized = plan;
    if (options.shrink) {
      ShrinkResult shrunk = Shrink(doc, plan);
      failure.shrink_attempts = shrunk.attempts;
      if (shrunk.verdict.Failed()) {
        minimized = std::move(shrunk.plan);
        failure.verdict = shrunk.verdict;
      }
    }
    const std::string repro_name =
        parsed.spec->name + "-chaos-seed" + std::to_string(seed);
    failure.repro_path = options.out_dir + "/chaos_repro_seed" +
                         std::to_string(seed) + ".json";
    std::ofstream out(failure.repro_path, std::ios::binary);
    out << MakeReproText(doc, minimized, repro_name);
    if (log != nullptr) {
      std::fprintf(log, "FAIL seed %llu: %s\n     repro %s (%zu shrink runs)\n",
                   static_cast<unsigned long long>(seed),
                   failure.verdict.detail.c_str(), failure.repro_path.c_str(),
                   failure.shrink_attempts);
    }
    result.failures.push_back(std::move(failure));
  }
  return result;
}

Verdict ReplayFile(const std::string& path) {
  std::string text;
  Verdict v;
  if (!ReadFile(path, text)) {
    v.result = Verdict::Result::kInvalid;
    v.detail = "cannot read " + path;
    return v;
  }
  const harness::ScenarioParseResult parsed =
      harness::ParseScenarioJson(text, path);
  if (!parsed.ok()) {
    v.result = Verdict::Result::kInvalid;
    v.detail = parsed.error;
    return v;
  }
  return CheckScenario(*parsed.spec);
}

}  // namespace muxwise::chaosfuzz
