// chaosfuzz: deterministic property-based chaos campaigns over the
// scenario DSL.
//
//   chaosfuzz --campaign=scenarios/foo.json [--runs=N] [--seed=S]
//             [--out-dir=DIR] [--max-faults=K] [--horizon-seconds=H]
//             [--instances=I] [--no-shrink]
//       Runs N seeded random FaultPlans (all seven fault kinds)
//       against the scenario and checks each against the robustness
//       properties (stable drain, terminal-ledger balance, double-run
//       digest equality, invariant audits). Failing plans are shrunk
//       to a minimal repro and written to DIR as self-contained
//       scenario files. Exit 0 iff every run passed.
//
//   chaosfuzz --replay FILE...
//       Replays repro/corpus scenario files through the same property
//       checker. Corpus entries are minimized repros of *fixed* bugs,
//       so replay must pass; exit 0 iff every file passed.
//
// Everything is seed-determined: the same seed yields the same plans,
// the same verdicts, and byte-identical minimized repros.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaosfuzz/fuzz.h"

namespace muxwise {
namespace {

int Main(int argc, char** argv) {
  std::string campaign_scenario;
  std::vector<std::string> replay_files;
  bool replay = false;
  chaosfuzz::CampaignOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--campaign=", 0) == 0) {
      campaign_scenario = value_of("--campaign=");
    } else if (arg == "--replay") {
      replay = true;
    } else if (arg.rfind("--runs=", 0) == 0) {
      options.runs =
          static_cast<std::size_t>(std::atoll(value_of("--runs=").c_str()));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed =
          static_cast<std::uint64_t>(std::atoll(value_of("--seed=").c_str()));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      options.out_dir = value_of("--out-dir=");
    } else if (arg.rfind("--max-faults=", 0) == 0) {
      options.shape.max_faults = static_cast<std::size_t>(
          std::atoll(value_of("--max-faults=").c_str()));
    } else if (arg.rfind("--horizon-seconds=", 0) == 0) {
      options.shape.horizon_seconds =
          std::atof(value_of("--horizon-seconds=").c_str());
    } else if (arg.rfind("--instances=", 0) == 0) {
      options.shape.instances = static_cast<std::size_t>(
          std::atoll(value_of("--instances=").c_str()));
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "chaosfuzz: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      replay_files.push_back(arg);
    }
  }

  if (replay) {
    if (replay_files.empty()) {
      std::fprintf(stderr, "chaosfuzz: --replay needs scenario files\n");
      return 2;
    }
    bool all_ok = true;
    for (const std::string& path : replay_files) {
      const chaosfuzz::Verdict v = chaosfuzz::ReplayFile(path);
      const bool ok = v.result == chaosfuzz::Verdict::Result::kPass;
      all_ok = all_ok && ok;
      std::printf("%s %s%s%s\n", ok ? "ok  " : "FAIL", path.c_str(),
                  v.detail.empty() ? "" : ": ", v.detail.c_str());
    }
    return all_ok ? 0 : 1;
  }

  if (campaign_scenario.empty()) {
    std::fprintf(stderr,
                 "chaosfuzz: need --campaign=SCENARIO or --replay FILE...\n");
    return 2;
  }
  if (options.runs < 1 || options.shape.max_faults < 1 ||
      options.shape.instances < 1 || options.shape.horizon_seconds <= 2.0) {
    std::fprintf(stderr, "chaosfuzz: invalid campaign bounds\n");
    return 2;
  }
  const chaosfuzz::CampaignResult result =
      chaosfuzz::RunCampaign(campaign_scenario, options, stdout);
  if (!result.error.empty()) {
    std::fprintf(stderr, "chaosfuzz: %s\n", result.error.c_str());
    return 2;
  }
  std::printf("%zu/%zu runs passed\n", result.runs - result.failures.size(),
              result.runs);
  return result.failures.empty() ? 0 : 1;
}

}  // namespace
}  // namespace muxwise

int main(int argc, char** argv) { return muxwise::Main(argc, argv); }
