#include "muxlint/muxlint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace muxwise::muxlint {

namespace {

/** A line-scoped rule: a regex matched against comment-stripped code. */
struct LineRule {
  std::string name;
  std::string summary;
  std::regex pattern;
  // Substring of the path that exempts a file from the rule (the one
  // place the pattern is legitimate), empty when none.
  std::string exempt_path;
  // When non-empty the rule only applies to paths containing one of
  // these substrings — for conventions local to one layer.
  std::vector<std::string> apply_paths;
};

const std::vector<LineRule>& LineRules() {
  static const std::vector<LineRule>* rules = new std::vector<LineRule>{
      {"wall-clock",
       "wall-clock time breaks bit-reproducibility; use "
       "sim::Simulator::Now() / sim::Time",
       std::regex(R"(std::chrono|\b(time|gettimeofday|clock_gettime|ctime|gmtime|localtime)\s*\()"),
       ""},
      {"raw-rand",
       "raw/global randomness is unseeded or platform-dependent; draw "
       "from a named sim::Rng stream",
       std::regex(R"(\b(rand|srand|rand_r|drand48)\s*\(|std::random_device|std::mt19937|std::minstd_rand|std::default_random_engine)"),
       "sim/rng"},
      {"ptr-key-container",
       "pointer-keyed unordered container iterates in address order, "
       "which differs across runs; key by a stable id or use an ordered "
       "container",
       std::regex(R"(unordered_map\s*<\s*[^,<>]*\*[^,<>]*,|unordered_set\s*<\s*[^<>]*\*[^<>]*>)"),
       ""},
      {"float-sim-time",
       "simulated time must use sim::Time / sim::Duration (integer "
       "nanoseconds), not floating point",
       std::regex(R"(\b(double|float)\s+[A-Za-z_]\w*(_ns|_time|_when|_deadline)\b|\b(double|float)\s+(when|deadline)\b)"),
       ""},
      {"bare-assert",
       "use MUX_CHECK (always-on, reports through sim::Panic) instead "
       "of assert()",
       std::regex(R"((^|[^\w])assert\s*\()"), ""},
      // HostThread::Submit and Channel::Transfer/Send completions cannot
      // be cancelled, so in fault-capable engine layers a lambda that
      // captures raw `this` without also capturing the crash epoch will
      // fire against post-crash state. Heuristic: the capture list must
      // sit on the call's line (multi-line captures escape the rule).
      {"dangling-callback",
       "completion callback captures raw `this` with no epoch guard; a "
       "crash cannot revoke it — capture `e = epoch()` and bail when "
       "stale",
       std::regex(
           R"(\b(Submit|Transfer|Send)\s*(<[^<>;]*>)?\s*\(.*\[(?=[^\]]*\bthis\b)(?![^\]]*epoch)[^\]]*\])"),
       "",
       {"src/baselines", "src/core"}},
      // The observability layer exports traces that must be
      // byte-identical across runs; a wall-clock timestamp anywhere in
      // it (even in tooling that only formats events) silently breaks
      // that without perturbing the simulation. Stricter than the
      // repo-wide wall-clock rule: clock *names* are findings, not just
      // calls.
      {"trace-wall-clock",
       "trace events and trace tooling must stamp sim::Time only; any "
       "wall-clock source makes exported traces non-reproducible",
       std::regex(
           R"(\b(system_clock|steady_clock|high_resolution_clock|file_clock|utc_clock)\b|\b(strftime|mktime|timegm|clock)\s*\(|\bstruct\s+(timespec|timeval)\b|\bCLOCK_[A-Z_]+\b|__rdtsc)"),
       "",
       {"src/obs", "tools/trace2json", "tools/tracecap"}},
      // The event queue is an index-stable binary heap over a pooled
      // arena with monotonic tie-break ids (FIFO within a tick). A
      // std::priority_queue — almost always instantiated with a lambda
      // comparator — reintroduces the comparator-call-heavy slow path
      // and loses the documented same-tick ordering contract.
      {"priority-queue",
       "std::priority_queue (lambda-comparator event queues) is banned "
       "in the simulation substrate; schedule through sim::Simulator's "
       "pooled binary heap, which guarantees FIFO same-tick ordering",
       std::regex(R"(std::priority_queue\b)"),
       "",
       {"src/sim", "src/gpu"}},
      // Overload control (ISSUE 5) makes every request queue in the
      // serving path bounded: admission enforces a hard per-class queue
      // bound before anything reaches an engine queue. A bare push into
      // a queue-named member reintroduces an unbounded buffer that
      // defeats that back-pressure. Sites whose boundedness is enforced
      // elsewhere (admission-checked entry points, net-zero requeues,
      // same-event drains) carry `// muxlint: allow(unbounded-queue)`
      // with a justification.
      {"unbounded-queue",
       "push into a queue-named member without an admission bound; "
       "overload control requires every serving-path queue to be "
       "bounded — justify with an allow() if boundedness is enforced "
       "elsewhere",
       std::regex(
           R"(\b[a-z]*(waiting|queue|pending|held|gated|backlog)[a-z_]*_(\s*\[[^\]]*\])?\s*\.\s*(push_back|push_front|emplace_back|emplace_front)\s*\()"),
       "",
       {"src/serve", "src/core"}},
      // The metrics layer (ISSUE 9) replaced full-sample percentile
      // vectors with fixed-footprint quantile sketches so million-
      // request runs hold O(1) metric memory. A push into a latency- or
      // sample-named vector reintroduces per-request accumulation that
      // grows with the request count; record into a
      // serve::QuantileSketch instead, or allow() a buffer whose bound
      // is enforced elsewhere (per-replica stats, fixed subsamples).
      {"unbounded-samples",
       "per-request sample accumulation in a latency/sample-named "
       "vector; metric memory must stay O(1) at streaming scale — "
       "record into a serve::QuantileSketch, or allow() a buffer whose "
       "bound is enforced elsewhere",
       std::regex(
           R"(\b[a-z_]*(latenc|sampl|ttft|tbt|e2e|delay|_ms)[a-z_]*(\s*\[[^\]]*\])?\s*\.\s*(push_back|emplace_back)\s*\()"),
       "",
       {"src/serve", "src/route"}},
      // Event records live in the Simulator's arena/free-list so ids
      // recycle deterministically and steady-state scheduling never
      // allocates; heap-allocating them directly bypasses both.
      {"event-arena",
       "sim event objects must come from the Simulator's pooled arena; "
       "direct new/delete or make_unique/make_shared of Event records "
       "bypasses the free list",
       std::regex(
           R"(\bnew\s+(sim::)?(Simulator::)?Event\b|\bdelete\s+[^;=]*[Ee]vent\b|\bmake_(unique|shared)\s*<\s*(sim::)?(Simulator::)?Event\b)"),
       "",
       {"src/sim", "src/gpu"}},
  };
  return *rules;
}

// --- Layering: the declared dependency DAG over src/ modules. ---
//
// A module may include same-band or lower-band modules; an include
// whose target sits in a HIGHER band is a back-edge finding. The bands
// were measured from the real include graph and then frozen, so the
// rule documents the architecture and stops regressions:
//
//   band 0: check, sim          (substrate: invariants + event loop)
//   band 1: obs                 (tracing over the substrate)
//   band 2: gpu, kv, llm, workload   (device, memory, model, traffic)
//   band 3: serve, overload     (serving abstractions + admission)
//   band 4: fault               (injection drives engines via serve)
//   band 5: baselines, core     (engines; core consumes overload)
//   band 6: route               (fleet router over replica engines)
//   band 7: harness             (scenario runner over everything)
//
// Note the refinement over the coarse sketch "core/serve < overload":
// overload is a *library* the MuxWise engine consumes (admission
// gates, spill policy), so it sits BELOW core, not above it.
const std::map<std::string, int>& LayerBands() {
  static const std::map<std::string, int>* bands = new std::map<std::string, int>{
      {"check", 0}, {"sim", 0},
      {"obs", 1},
      {"gpu", 2},   {"kv", 2}, {"llm", 2}, {"workload", 2},
      {"serve", 3}, {"overload", 3},
      {"fault", 4},
      {"baselines", 5}, {"core", 5},
      {"route", 6},
      {"harness", 7},
  };
  return *bands;
}

/** The src/ module a path belongs to, or "" when not under src/. */
std::string SrcModule(const std::string& path) {
  std::size_t pos = path.rfind("/src/");
  std::size_t start;
  if (pos != std::string::npos) {
    start = pos + 5;
  } else if (path.rfind("src/", 0) == 0) {
    start = 4;
  } else {
    return "";
  }
  const std::size_t slash = path.find('/', start);
  if (slash == std::string::npos) return "";
  return path.substr(start, slash - start);
}

bool IsHeader(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

/**
 * Rule names named by a `// muxlint: allow(a, b)` pragma in `comment`.
 * The pragma must sit at the START of the comment (leading whitespace
 * aside) — that is how every real suppression is written, and it keeps
 * prose that merely *mentions* the pragma syntax mid-sentence (such as
 * this very comment) from being parsed as a suppression.
 */
std::vector<std::string> ParseAllowances(const std::string& comment) {
  std::vector<std::string> allowed;
  static const std::regex kAllow(R"(^\s*muxlint:\s*allow\(([^)]*)\))");
  std::smatch match;
  if (std::regex_search(comment, match, kAllow)) {
    std::stringstream ss(match[1].str());
    std::string name;
    while (std::getline(ss, name, ',')) {
      name.erase(0, name.find_first_not_of(" \t"));
      name.erase(name.find_last_not_of(" \t") + 1);
      if (!name.empty()) allowed.push_back(name);
    }
  }
  return allowed;
}

bool Allows(const std::vector<std::string>& allowed, const std::string& rule) {
  return std::find(allowed.begin(), allowed.end(), rule) != allowed.end() ||
         std::find(allowed.begin(), allowed.end(), "all") != allowed.end();
}

/**
 * Splits one line into its live-code portion (string/char literal
 * bodies blanked, comments removed — what rule regexes see) and its
 * comment portion (what allow() pragma parsing sees; pragma-shaped
 * text inside a string literal must stay inert). `in_block_comment`
 * carries the block-comment state across lines.
 */
void SplitLine(const std::string& line, bool& in_block_comment,
               std::string& code, std::string& comment) {
  code.clear();
  comment.clear();
  code.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      } else {
        comment.push_back(line[i]);
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      comment.append(line.substr(i + 2));
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      code.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        code.push_back(' ');  // Keep columns, hide content.
        ++i;
      }
      if (i < line.size()) code.push_back(quote);
      continue;
    }
    code.push_back(c);
  }
}

std::string Trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

/**
 * Checks the file-scoped include-guard convention: a header's first two
 * code lines are `#ifndef MUXWISE_...` / `#define MUXWISE_...` and its
 * last code line is `#endif`. Returns the problem ("" when compliant).
 */
std::string IncludeGuardProblem(const std::vector<std::string>& code_lines,
                                std::string& excerpt) {
  std::vector<std::string> code;
  for (const std::string& line : code_lines) {
    const std::string trimmed = Trim(line);
    if (!trimmed.empty()) code.push_back(trimmed);
  }
  excerpt = code.empty() ? "" : code.front();
  if (code.size() < 3) return "header has no include guard";
  if (code[0].rfind("#ifndef MUXWISE_", 0) != 0) {
    return "header must open with a MUXWISE_-prefixed include guard";
  }
  if (code[1].rfind("#define MUXWISE_", 0) != 0) {
    return "#ifndef guard is not followed by its #define";
  }
  if (code.back().rfind("#endif", 0) != 0) {
    return "include guard is never closed by a trailing #endif";
  }
  return "";
}

// --- Symbol-table-lite: mutable namespace-scope state detection. ---

const std::regex& GlobalDeclPattern() {
  // TYPE [template-args] [&*] NAME [= init | {init}] ;  on one line.
  static const std::regex* pattern = new std::regex(
      R"(^\s*(?:(?:static|inline|thread_local)\s+)*[A-Za-z_][\w:]*(?:\s*<[^;]*>)?(?:\s*[&*])*\s+([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;\s*$)");
  return *pattern;
}

bool LooksLikeMutableGlobal(const std::string& code) {
  static const std::regex* kExclude = new std::regex(
      R"(\b(const|constexpr|constinit|consteval|using|typedef|extern|template|friend|operator|return|namespace|class|struct|enum|union|static_assert)\b)");
  if (std::regex_search(code, *kExclude)) return false;
  const std::string trimmed = Trim(code);
  if (trimmed.empty() || trimmed[0] == '#') return false;
  return std::regex_match(code, GlobalDeclPattern());
}

// --- Shard-safety: instance-key collection over function regions. ---
//
// `MUX_SHARD_LOCAL` / `MUX_CHANNEL_ENTRY` (src/sim/channel.h) mark the
// blessed surface: a channel-entry function may touch many instances
// (it IS the crossing); everything else must stay on one shard, with
// cross-instance interaction riding sim::Channel. The pass tracks
// every function region in src/core and src/baselines, collects the
// distinct instance expressions it touches — `instance(<arg>)` keyed
// by the normalised argument, one synthetic key per `AddInstance(...)`
// call, plus `shard(<arg>)` keys for code that grabs shard-local
// simulator handles — and flags regions reaching two or more keys
// without a MUX_CHANNEL_ENTRY annotation.
//
// The parallel kernel itself (src/sim) is held to the same contract in
// its own vocabulary: there the keys are `shards_[<expr>]` subscripts,
// so any kernel function that reaches into several shards' event
// queues must be one of the blessed crossing points (mailbox drain,
// the merge, Step's global-minimum pick) and carry the annotation.

struct FunctionRegion {
  int start_line = 0;            // 1-based line of the opening brace.
  std::size_t open_depth = 0;    // Scope-stack depth before the brace.
  bool channel_entry = false;
  bool shard_local = false;
  std::set<std::string> instance_keys;
  int synthetic = 0;             // AddInstance() counter.
};

void CollectInstanceKeys(const std::string& code, bool kernel_scope,
                         FunctionRegion& region) {
  const auto normalise = [](std::string key) {
    key.erase(std::remove_if(key.begin(), key.end(),
                             [](char c) { return c == ' ' || c == '\t'; }),
              key.end());
    return key;
  };
  if (kernel_scope) {
    // Kernel vocabulary: a shard is touched by subscripting the
    // per-shard simulator table.
    static const std::regex* kShards =
        new std::regex(R"(\bshards_\s*\[\s*([^\[\]]*?)\s*\])");
    auto begin = std::sregex_iterator(code.begin(), code.end(), *kShards);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      region.instance_keys.insert("shards#" + normalise((*it)[1].str()));
    }
    return;
  }
  static const std::regex* kInstance =
      new std::regex(R"(\binstance\s*\(\s*([^()]*?)\s*\))");
  auto begin = std::sregex_iterator(code.begin(), code.end(), *kInstance);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    region.instance_keys.insert(normalise((*it)[1].str()));
  }
  // Engine code that grabs shard-local simulator handles couples shards
  // exactly like touching the instances themselves.
  static const std::regex* kShardHandle =
      new std::regex(R"(\bshard\s*\(\s*([^()]*?)\s*\))");
  auto hbegin = std::sregex_iterator(code.begin(), code.end(), *kShardHandle);
  for (auto it = hbegin; it != std::sregex_iterator(); ++it) {
    region.instance_keys.insert("shard#" + normalise((*it)[1].str()));
  }
  static const std::regex* kAdd = new std::regex(R"(\bAddInstance\s*\()");
  auto abegin = std::sregex_iterator(code.begin(), code.end(), *kAdd);
  for (auto it = abegin; it != std::sregex_iterator(); ++it) {
    region.instance_keys.insert("added#" + std::to_string(region.synthetic++));
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool InAnyScope(const std::string& path,
                const std::vector<std::string>& scopes) {
  return std::any_of(scopes.begin(), scopes.end(),
                     [&path](const std::string& scope) {
                       return path.find(scope) != std::string::npos;
                     });
}

/** Strips everything before the last repo anchor so baselines written
 * from absolute ctest paths still read repo-relative. */
std::string RepoRelative(const std::string& path) {
  for (const char* anchor : {"/src/", "/tools/", "/tests/", "/bench/"}) {
    const std::size_t pos = path.rfind(anchor);
    if (pos != std::string::npos) return path.substr(pos + 1);
  }
  return path;
}

}  // namespace

std::vector<RuleInfo> Rules() {
  std::vector<RuleInfo> rules;
  for (const LineRule& rule : LineRules()) {
    rules.push_back(RuleInfo{rule.name, rule.summary, "line"});
  }
  rules.push_back(RuleInfo{
      "include-guard",
      "headers open with #ifndef MUXWISE_... / #define and close with "
      "#endif",
      "file"});
  rules.push_back(RuleInfo{
      "stale-allow",
      "a muxlint: allow() pragma that suppresses nothing on its line is "
      "dead and hides future regressions; remove it or fix the rule name",
      "file"});
  rules.push_back(RuleInfo{
      "layering",
      "an #include crossing the declared module DAG backwards (lower "
      "band including a higher band) inverts the architecture; see "
      "DESIGN.md for the band assignment",
      "project"});
  rules.push_back(RuleInfo{
      "mutable-global",
      "mutable namespace-scope state is shared across (future) event-"
      "loop shards and breaks run isolation; scope it to an object or "
      "make it constexpr",
      "project"});
  rules.push_back(RuleInfo{
      "shard-safety",
      "a function touching multiple distinct GPU instances — or, in "
      "the parallel kernel, multiple event-loop shards — outside a "
      "MUX_CHANNEL_ENTRY point couples shards directly; route the "
      "interaction through sim::Channel or a ShardChannel",
      "project"});
  return rules;
}

void LintContent(const std::string& path, const std::string& content,
                 LintReport& report) {
  ++report.files_scanned;

  std::vector<std::string> raw_lines;
  {
    std::stringstream ss(content);
    std::string line;
    while (std::getline(ss, line)) raw_lines.push_back(line);
  }

  const std::size_t n = raw_lines.size();
  std::vector<std::string> code_lines(n);
  std::vector<std::vector<std::string>> allowances(n);
  std::vector<std::set<std::string>> used(n);

  // An allowance is "used" when it silenced a finding on its line; the
  // wildcard `all` is credited as "all". Unused allowances become
  // stale-allow findings at the end of the scan.
  auto emit = [&](std::size_t line_idx, const std::string& rule,
                  const std::string& message, const std::string& excerpt) {
    const std::vector<std::string>& allowed = allowances[line_idx];
    if (Allows(allowed, rule)) {
      ++report.suppressed;
      ++report.suppressed_by_rule[rule];
      if (std::find(allowed.begin(), allowed.end(), rule) != allowed.end()) {
        used[line_idx].insert(rule);
      } else {
        used[line_idx].insert("all");
      }
      return;
    }
    report.findings.push_back(Finding{path, static_cast<int>(line_idx) + 1,
                                      rule, message, excerpt});
  };

  // Pass 1: split lines, collect allowances.
  int guard_allow_line = -1;
  {
    bool in_block_comment = false;
    std::string comment;
    for (std::size_t i = 0; i < n; ++i) {
      SplitLine(raw_lines[i], in_block_comment, code_lines[i], comment);
      allowances[i] = ParseAllowances(comment);
      if (guard_allow_line < 0 && Allows(allowances[i], "include-guard")) {
        guard_allow_line = static_cast<int>(i);
      }
    }
  }

  // Pass 2: line rules + layering over the code portions.
  const std::string module = SrcModule(path);
  const auto& bands = LayerBands();
  const auto band_it = bands.find(module);
  const int file_band = band_it != bands.end() ? band_it->second : -1;
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"]+)\")");

  for (std::size_t i = 0; i < n; ++i) {
    const std::string& code = code_lines[i];
    for (const LineRule& rule : LineRules()) {
      if (!rule.exempt_path.empty() &&
          path.find(rule.exempt_path) != std::string::npos) {
        continue;
      }
      if (!rule.apply_paths.empty() && !InAnyScope(path, rule.apply_paths)) {
        continue;
      }
      if (!std::regex_search(code, rule.pattern)) continue;
      emit(i, rule.name, rule.summary, Trim(raw_lines[i]));
    }

    if (file_band >= 0) {
      // Qualify via the code portion (so a commented-out include stays
      // inert) but read the target from the raw line — SplitLine blanks
      // string-literal bodies, which is exactly where the path lives.
      std::smatch m;
      if (!Trim(code).empty() && Trim(code)[0] == '#' &&
          std::regex_search(raw_lines[i], m, kInclude)) {
        const std::string target = m[1].str();
        const std::size_t slash = target.find('/');
        if (slash != std::string::npos) {
          const auto it = bands.find(target.substr(0, slash));
          if (it != bands.end() && it->second > file_band) {
            emit(i, "layering",
                 "back-edge: " + module + " (band " +
                     std::to_string(file_band) + ") must not include " +
                     it->first + " (band " + std::to_string(it->second) +
                     "); the dependency DAG only points downward",
                 Trim(raw_lines[i]));
          }
        }
      }
    }
  }

  // Pass 3: scope tracking for mutable-global and shard-safety.
  //
  // The scope stack classifies each brace as namespace ('n'), class
  // ('c'), or block ('b' — function bodies, control flow, lambdas,
  // brace initialisers). Classification reads the code accumulated
  // since the last `{`, `}`, or `;`. Preprocessor lines are skipped —
  // they never open scopes here and #if arms would unbalance the
  // count.
  const bool check_globals = file_band >= 0;
  const bool kernel_scope = InAnyScope(path, {"src/sim"});
  const bool check_shards =
      kernel_scope || InAnyScope(path, {"src/core", "src/baselines"});
  if (check_globals || check_shards) {
    static const std::regex kNamespace(R"(\bnamespace\b)");
    static const std::regex kClassLike(R"(\b(class|struct|union|enum)\b)");
    std::vector<char> scopes;
    std::string pending;
    std::vector<FunctionRegion> regions;  // Innermost last.

    auto at_namespace_scope = [&scopes] {
      return std::all_of(scopes.begin(), scopes.end(),
                         [](char s) { return s == 'n'; });
    };
    auto at_type_scope = [&scopes] {
      return std::all_of(scopes.begin(), scopes.end(),
                         [](char s) { return s == 'n' || s == 'c'; });
    };

    for (std::size_t i = 0; i < n; ++i) {
      const std::string& code = code_lines[i];
      const std::string trimmed = Trim(code);
      if (!trimmed.empty() && trimmed[0] == '#') continue;

      // Only a line that STARTS a statement can be a one-line variable
      // declaration; a non-empty pending accumulator means this line
      // continues a multi-line signature (e.g. a defaulted parameter
      // `int seed = 2024);`), which the declaration regex must not see.
      if (check_globals && at_namespace_scope() && !scopes.empty() &&
          Trim(pending).empty() && LooksLikeMutableGlobal(code)) {
        emit(i, "mutable-global",
             "mutable namespace-scope state in module '" + module +
                 "': shared across event-loop shards and across runs; "
                 "scope it to an owning object or make it constexpr",
             Trim(raw_lines[i]));
      }

      if (check_shards && !regions.empty()) {
        CollectInstanceKeys(code, kernel_scope, regions.back());
      }

      for (char c : code) {
        if (c == '{') {
          char kind = 'b';
          if (std::regex_search(pending, kNamespace)) {
            kind = 'n';
          } else if (std::regex_search(pending, kClassLike)) {
            kind = 'c';
          }
          if (check_shards && kind == 'b' && at_type_scope()) {
            FunctionRegion region;
            region.start_line = static_cast<int>(i) + 1;
            region.open_depth = scopes.size();
            region.channel_entry =
                pending.find("MUX_CHANNEL_ENTRY") != std::string::npos;
            region.shard_local =
                pending.find("MUX_SHARD_LOCAL") != std::string::npos;
            regions.push_back(region);
          }
          scopes.push_back(kind);
          pending.clear();
        } else if (c == '}') {
          if (!scopes.empty()) scopes.pop_back();
          pending.clear();
          if (!regions.empty() && scopes.size() <= regions.back().open_depth) {
            const FunctionRegion region = regions.back();
            regions.pop_back();
            const std::size_t keys = region.instance_keys.size();
            const std::size_t line_idx =
                static_cast<std::size_t>(region.start_line) - 1;
            const std::string what = kernel_scope
                                         ? "event-loop shards"
                                         : "distinct GPU instances";
            if (region.shard_local && keys > 1) {
              emit(line_idx, "shard-safety",
                   "function declared MUX_SHARD_LOCAL touches " +
                       std::to_string(keys) + " " + what +
                       "; a shard-local function must stay on one",
                   Trim(raw_lines[line_idx]));
            } else if (!region.channel_entry && !region.shard_local &&
                       keys > 1) {
              emit(line_idx, "shard-safety",
                   "function touches " + std::to_string(keys) + " " + what +
                       " without MUX_CHANNEL_ENTRY; cross-shard "
                       "interaction must ride a channel "
                       "(or annotate the blessed entry point)",
                   Trim(raw_lines[line_idx]));
            }
          }
        } else if (c == ';') {
          pending.clear();
        } else {
          pending.push_back(c);
        }
      }
      pending.push_back(' ');  // Line break separates tokens.
    }
  }

  // File-scoped include-guard check.
  if (IsHeader(path)) {
    std::string excerpt;
    const std::string problem = IncludeGuardProblem(code_lines, excerpt);
    if (!problem.empty()) {
      if (guard_allow_line >= 0) {
        ++report.suppressed;
        ++report.suppressed_by_rule["include-guard"];
        used[guard_allow_line].insert("include-guard");
      } else {
        report.findings.push_back(
            Finding{path, 1, "include-guard", problem, excerpt});
      }
    }
  }

  // Pass 4: stale-allow — every pragma name that silenced nothing. The
  // finding is deliberately NOT suppressible via allow(all): the stale
  // wildcard would otherwise silence its own audit. Only an explicit
  // allow(stale-allow) quiets it.
  auto emit_stale = [&](std::size_t line_idx, const std::string& message) {
    const std::vector<std::string>& allowed = allowances[line_idx];
    if (std::find(allowed.begin(), allowed.end(), "stale-allow") !=
        allowed.end()) {
      ++report.suppressed;
      ++report.suppressed_by_rule["stale-allow"];
      return;
    }
    report.findings.push_back(Finding{path, static_cast<int>(line_idx) + 1,
                                      "stale-allow", message,
                                      Trim(raw_lines[line_idx])});
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& name : allowances[i]) {
      if (name == "stale-allow") continue;  // Meta-suppression, never stale.
      if (used[i].count(name)) continue;
      if (name == "all" && !used[i].empty()) continue;
      emit_stale(i, "allow(" + name +
                        ") suppresses nothing on this line; remove the "
                        "stale pragma (or fix its rule name) so real "
                        "regressions are not silenced later");
    }
  }
}

bool LintFile(const std::string& path, LintReport& report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    report.errors.push_back(path + ": unreadable");
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  LintContent(path, buffer.str(), report);
  return true;
}

bool LintTree(const std::vector<std::string>& roots, LintReport& report) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  bool ok = true;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      report.errors.push_back(root + ": not a file or directory");
      ok = false;
      continue;
    }
    fs::recursive_directory_iterator it(root, ec);
    if (ec) {
      report.errors.push_back(root + ": " + ec.message());
      ok = false;
      continue;
    }
    const fs::recursive_directory_iterator end;
    while (it != end) {
      const fs::path entry = it->path();
      std::error_code type_ec;
      if (it->is_directory(type_ec)) {
        // Generated trees are never lint subjects: build/ holds copies
        // of headers (duplicate findings) and .git/ holds packfiles.
        const std::string name = entry.filename().string();
        if (name == "build" || name == ".git") {
          it.disable_recursion_pending();
        }
      } else if (!type_ec && it->is_regular_file(type_ec)) {
        const std::string p = entry.string();
        if (p.ends_with(".h") || p.ends_with(".hpp") || p.ends_with(".cc") ||
            p.ends_with(".cpp")) {
          files.push_back(p);
        }
      }
      if (type_ec) {
        report.errors.push_back(entry.string() + ": " + type_ec.message());
        ok = false;
      }
      // The increment itself can fail (permission loss, racing
      // deletion); the pre-fix code never checked this and silently
      // reported a partial scan as complete.
      it.increment(ec);
      if (ec) {
        report.errors.push_back(root + ": traversal stopped: " +
                                ec.message());
        ok = false;
        break;
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    if (!LintFile(file, report)) ok = false;
  }
  return ok;
}

bool LoadBaseline(const std::string& path, std::vector<BaselineEntry>& entries,
                  std::vector<std::string>& errors) {
  std::ifstream in(path);
  if (!in) {
    errors.push_back(path + ": baseline unreadable");
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::size_t space = trimmed.find(' ');
    if (space == std::string::npos) {
      errors.push_back(path + ": malformed baseline line: " + trimmed);
      continue;
    }
    entries.push_back(BaselineEntry{trimmed.substr(0, space),
                                    Trim(trimmed.substr(space + 1))});
  }
  return true;
}

void ApplyBaseline(const std::vector<BaselineEntry>& entries,
                   LintReport& report) {
  auto matches = [&entries](const Finding& f) {
    return std::any_of(entries.begin(), entries.end(),
                       [&f](const BaselineEntry& e) {
                         return e.rule == f.rule && f.file.ends_with(e.path);
                       });
  };
  const auto mid = std::stable_partition(
      report.findings.begin(), report.findings.end(),
      [&matches](const Finding& f) { return !matches(f); });
  report.baselined += static_cast<std::size_t>(
      std::distance(mid, report.findings.end()));
  report.findings.erase(mid, report.findings.end());
}

std::string FormatBaseline(const LintReport& report) {
  std::set<std::string> lines;
  for (const Finding& f : report.findings) {
    lines.insert(f.rule + " " + RepoRelative(f.file));
  }
  std::ostringstream out;
  out << "# muxlint baseline: grandfathered findings, one `rule path` per\n"
         "# line (path is a suffix match). Regenerate with\n"
         "#   muxlint --write-baseline=tools/muxlint/baseline.txt src tests\n"
         "# Shrink it when you fix a finding; never grow it silently.\n";
  for (const std::string& line : lines) out << line << "\n";
  return out.str();
}

std::string FormatText(const LintReport& report) {
  std::ostringstream out;
  for (const Finding& f : report.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n    " << f.excerpt << "\n";
  }
  for (const std::string& error : report.errors) {
    out << "muxlint: error: " << error << "\n";
  }
  out << "muxlint: " << report.findings.size() << " finding(s), "
      << report.suppressed << " suppressed, " << report.baselined
      << " baselined, " << report.files_scanned << " file(s) scanned";
  if (!report.errors.empty()) {
    out << ", " << report.errors.size() << " error(s)";
  }
  out << "\n";
  return out.str();
}

std::string FormatJson(const LintReport& report) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
        << "\", \"message\": \"" << JsonEscape(f.message)
        << "\", \"excerpt\": \"" << JsonEscape(f.excerpt) << "\"}";
  }
  if (!report.findings.empty()) out << "\n  ";
  out << "],\n";
  out << "  \"suppressed\": " << report.suppressed << ",\n";
  out << "  \"suppressed_by_rule\": {";
  {
    bool first = true;
    for (const auto& [rule, count] : report.suppressed_by_rule) {
      out << (first ? "" : ", ") << "\"" << JsonEscape(rule)
          << "\": " << count;
      first = false;
    }
  }
  out << "},\n";
  out << "  \"baselined\": " << report.baselined << ",\n";
  out << "  \"errors\": [";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << JsonEscape(report.errors[i])
        << "\"";
  }
  out << "],\n";
  out << "  \"files_scanned\": " << report.files_scanned << "\n}\n";
  return out.str();
}

std::string FormatSarif(const LintReport& report) {
  std::ostringstream out;
  out << "{\n"
         "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"muxlint\",\n"
         "          \"informationUri\": "
         "\"https://example.invalid/muxwise/tools/muxlint\",\n"
         "          \"rules\": [";
  const std::vector<RuleInfo> rules = Rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "            {\"id\": \"" << JsonEscape(rules[i].name)
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i].summary) << "\"}}";
  }
  out << "\n          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\"ruleId\": \"" << JsonEscape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << JsonEscape(f.message) << "\"}, \"locations\": [{"
        << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << JsonEscape(RepoRelative(f.file)) << "\"}, \"region\": {"
        << "\"startLine\": " << f.line << "}}}]}";
  }
  if (!report.findings.empty()) out << "\n      ";
  out << "],\n"
         "      \"invocations\": [\n"
         "        {\n"
         "          \"executionSuccessful\": "
      << (report.errors.empty() ? "true" : "false")
      << ",\n          \"toolExecutionNotifications\": [";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "            {\"level\": \"error\", \"message\": {\"text\": \""
        << JsonEscape(report.errors[i]) << "\"}}";
  }
  if (!report.errors.empty()) out << "\n          ";
  out << "]\n"
         "        }\n"
         "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return out.str();
}

}  // namespace muxwise::muxlint
