#include "muxlint/muxlint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace muxwise::muxlint {

namespace {

/** A line-scoped rule: a regex matched against comment-stripped code. */
struct LineRule {
  std::string name;
  std::string summary;
  std::regex pattern;
  // Substring of the path that exempts a file from the rule (the one
  // place the pattern is legitimate), empty when none.
  std::string exempt_path;
  // When non-empty the rule only applies to paths containing one of
  // these substrings — for conventions local to one layer.
  std::vector<std::string> apply_paths;
};

const std::vector<LineRule>& LineRules() {
  static const std::vector<LineRule>* rules = new std::vector<LineRule>{
      {"wall-clock",
       "wall-clock time breaks bit-reproducibility; use "
       "sim::Simulator::Now() / sim::Time",
       std::regex(R"(std::chrono|\b(time|gettimeofday|clock_gettime|ctime|gmtime|localtime)\s*\()"),
       ""},
      {"raw-rand",
       "raw/global randomness is unseeded or platform-dependent; draw "
       "from a named sim::Rng stream",
       std::regex(R"(\b(rand|srand|rand_r|drand48)\s*\(|std::random_device|std::mt19937|std::minstd_rand|std::default_random_engine)"),
       "sim/rng"},
      {"ptr-key-container",
       "pointer-keyed unordered container iterates in address order, "
       "which differs across runs; key by a stable id or use an ordered "
       "container",
       std::regex(R"(unordered_map\s*<\s*[^,<>]*\*[^,<>]*,|unordered_set\s*<\s*[^<>]*\*[^<>]*>)"),
       ""},
      {"float-sim-time",
       "simulated time must use sim::Time / sim::Duration (integer "
       "nanoseconds), not floating point",
       std::regex(R"(\b(double|float)\s+[A-Za-z_]\w*(_ns|_time|_when|_deadline)\b|\b(double|float)\s+(when|deadline)\b)"),
       ""},
      {"bare-assert",
       "use MUX_CHECK (always-on, reports through sim::Panic) instead "
       "of assert()",
       std::regex(R"((^|[^\w])assert\s*\()"), ""},
      // HostThread::Submit / Interconnect::Transfer completions cannot be
      // cancelled, so in fault-capable engine layers a lambda that
      // captures raw `this` without also capturing the crash epoch will
      // fire against post-crash state. Heuristic: the capture list must
      // sit on the call's line (multi-line captures escape the rule).
      {"dangling-callback",
       "completion callback captures raw `this` with no epoch guard; a "
       "crash cannot revoke it — capture `e = epoch()` and bail when "
       "stale",
       std::regex(
           R"(\b(Submit|Transfer)\s*\(.*\[(?=[^\]]*\bthis\b)(?![^\]]*epoch)[^\]]*\])"),
       "",
       {"src/baselines", "src/core"}},
      // The observability layer exports traces that must be
      // byte-identical across runs; a wall-clock timestamp anywhere in
      // it (even in tooling that only formats events) silently breaks
      // that without perturbing the simulation. Stricter than the
      // repo-wide wall-clock rule: clock *names* are findings, not just
      // calls.
      {"trace-wall-clock",
       "trace events and trace tooling must stamp sim::Time only; any "
       "wall-clock source makes exported traces non-reproducible",
       std::regex(
           R"(\b(system_clock|steady_clock|high_resolution_clock|file_clock|utc_clock)\b|\b(strftime|mktime|timegm|clock)\s*\(|\bstruct\s+(timespec|timeval)\b|\bCLOCK_[A-Z_]+\b|__rdtsc)"),
       "",
       {"src/obs", "tools/trace2json", "tools/tracecap"}},
      // The event queue is an index-stable binary heap over a pooled
      // arena with monotonic tie-break ids (FIFO within a tick). A
      // std::priority_queue — almost always instantiated with a lambda
      // comparator — reintroduces the comparator-call-heavy slow path
      // and loses the documented same-tick ordering contract.
      {"priority-queue",
       "std::priority_queue (lambda-comparator event queues) is banned "
       "in the simulation substrate; schedule through sim::Simulator's "
       "pooled binary heap, which guarantees FIFO same-tick ordering",
       std::regex(R"(std::priority_queue\b)"),
       "",
       {"src/sim", "src/gpu"}},
      // Overload control (ISSUE 5) makes every request queue in the
      // serving path bounded: admission enforces a hard per-class queue
      // bound before anything reaches an engine queue. A bare push into
      // a queue-named member reintroduces an unbounded buffer that
      // defeats that back-pressure. Sites whose boundedness is enforced
      // elsewhere (admission-checked entry points, net-zero requeues,
      // same-event drains) carry `// muxlint: allow(unbounded-queue)`
      // with a justification.
      {"unbounded-queue",
       "push into a queue-named member without an admission bound; "
       "overload control requires every serving-path queue to be "
       "bounded — justify with an allow() if boundedness is enforced "
       "elsewhere",
       std::regex(
           R"(\b[a-z]*(waiting|queue|pending|held|gated|backlog)[a-z_]*_(\s*\[[^\]]*\])?\s*\.\s*(push_back|push_front|emplace_back|emplace_front)\s*\()"),
       "",
       {"src/serve", "src/core"}},
      // Event records live in the Simulator's arena/free-list so ids
      // recycle deterministically and steady-state scheduling never
      // allocates; heap-allocating them directly bypasses both.
      {"event-arena",
       "sim event objects must come from the Simulator's pooled arena; "
       "direct new/delete or make_unique/make_shared of Event records "
       "bypasses the free list",
       std::regex(
           R"(\bnew\s+(sim::)?(Simulator::)?Event\b|\bdelete\s+[^;=]*[Ee]vent\b|\bmake_(unique|shared)\s*<\s*(sim::)?(Simulator::)?Event\b)"),
       "",
       {"src/sim", "src/gpu"}},
  };
  return *rules;
}

bool IsHeader(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

/** Rule names named by `// muxlint: allow(a, b)` pragmas on this line. */
std::vector<std::string> ParseAllowances(const std::string& line) {
  std::vector<std::string> allowed;
  static const std::regex kAllow(R"(muxlint:\s*allow\(([^)]*)\))");
  auto begin = std::sregex_iterator(line.begin(), line.end(), kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string names = (*it)[1].str();
    std::stringstream ss(names);
    std::string name;
    while (std::getline(ss, name, ',')) {
      name.erase(0, name.find_first_not_of(" \t"));
      name.erase(name.find_last_not_of(" \t") + 1);
      if (!name.empty()) allowed.push_back(name);
    }
  }
  return allowed;
}

bool Allows(const std::vector<std::string>& allowed, const std::string& rule) {
  return std::find(allowed.begin(), allowed.end(), rule) != allowed.end() ||
         std::find(allowed.begin(), allowed.end(), "all") != allowed.end();
}

/**
 * Strips comments and blanks out string/char literal bodies from one
 * line, so rule regexes only see live code. `in_block_comment` carries
 * the block-comment state across lines.
 */
std::string CodePortion(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        out.push_back(' ');  // Keep columns, hide content.
        ++i;
      }
      if (i < line.size()) out.push_back(quote);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string Trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

/**
 * Checks the file-scoped include-guard convention: a header's first two
 * code lines are `#ifndef MUXWISE_...` / `#define MUXWISE_...` and its
 * last code line is `#endif`.
 */
void CheckIncludeGuard(const std::string& path,
                       const std::vector<std::string>& code_lines,
                       bool suppressed, LintReport& report) {
  std::vector<std::pair<int, std::string>> code;  // (1-based line, text).
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string trimmed = Trim(code_lines[i]);
    if (!trimmed.empty()) code.emplace_back(static_cast<int>(i) + 1, trimmed);
  }
  std::string problem;
  if (code.size() < 3) {
    problem = "header has no include guard";
  } else if (code[0].second.rfind("#ifndef MUXWISE_", 0) != 0) {
    problem = "header must open with a MUXWISE_-prefixed include guard";
  } else if (code[1].second.rfind("#define MUXWISE_", 0) != 0) {
    problem = "#ifndef guard is not followed by its #define";
  } else if (code.back().second.rfind("#endif", 0) != 0) {
    problem = "include guard is never closed by a trailing #endif";
  }
  if (problem.empty()) return;
  if (suppressed) {
    ++report.suppressed;
    return;
  }
  report.findings.push_back(Finding{path, 1, "include-guard", problem,
                                    code.empty() ? "" : code[0].second});
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::vector<RuleInfo> Rules() {
  std::vector<RuleInfo> rules;
  for (const LineRule& rule : LineRules()) {
    rules.push_back(RuleInfo{rule.name, rule.summary});
  }
  rules.push_back(RuleInfo{
      "include-guard",
      "headers open with #ifndef MUXWISE_... / #define and close with "
      "#endif"});
  return rules;
}

void LintContent(const std::string& path, const std::string& content,
                 LintReport& report) {
  ++report.files_scanned;

  std::vector<std::string> raw_lines;
  {
    std::stringstream ss(content);
    std::string line;
    while (std::getline(ss, line)) raw_lines.push_back(line);
  }

  bool guard_suppressed = false;
  bool in_block_comment = false;
  std::vector<std::string> code_lines;
  code_lines.reserve(raw_lines.size());

  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& raw = raw_lines[i];
    const std::vector<std::string> allowed = ParseAllowances(raw);
    if (Allows(allowed, "include-guard")) guard_suppressed = true;
    const std::string code = CodePortion(raw, in_block_comment);
    code_lines.push_back(code);

    for (const LineRule& rule : LineRules()) {
      if (!rule.exempt_path.empty() &&
          path.find(rule.exempt_path) != std::string::npos) {
        continue;
      }
      if (!rule.apply_paths.empty() &&
          std::none_of(rule.apply_paths.begin(), rule.apply_paths.end(),
                       [&path](const std::string& scope) {
                         return path.find(scope) != std::string::npos;
                       })) {
        continue;
      }
      if (!std::regex_search(code, rule.pattern)) continue;
      if (Allows(allowed, rule.name)) {
        ++report.suppressed;
        continue;
      }
      report.findings.push_back(Finding{path, static_cast<int>(i) + 1,
                                        rule.name, rule.summary, Trim(raw)});
    }
  }

  if (IsHeader(path)) {
    CheckIncludeGuard(path, code_lines, guard_suppressed, report);
  }
}

bool LintFile(const std::string& path, LintReport& report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  LintContent(path, buffer.str(), report);
  return true;
}

bool LintTree(const std::vector<std::string>& roots, LintReport& report) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  bool ok = true;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      ok = false;
      continue;
    }
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      const std::string p = it->path().string();
      if (p.ends_with(".h") || p.ends_with(".hpp") || p.ends_with(".cc") ||
          p.ends_with(".cpp")) {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    if (!LintFile(file, report)) ok = false;
  }
  return ok;
}

std::string FormatText(const LintReport& report) {
  std::ostringstream out;
  for (const Finding& f : report.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n    " << f.excerpt << "\n";
  }
  out << "muxlint: " << report.findings.size() << " finding(s), "
      << report.suppressed << " suppressed, " << report.files_scanned
      << " file(s) scanned\n";
  return out.str();
}

std::string FormatJson(const LintReport& report) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
        << "\", \"message\": \"" << JsonEscape(f.message)
        << "\", \"excerpt\": \"" << JsonEscape(f.excerpt) << "\"}";
  }
  if (!report.findings.empty()) out << "\n  ";
  out << "],\n";
  out << "  \"suppressed\": " << report.suppressed << ",\n";
  out << "  \"files_scanned\": " << report.files_scanned << "\n}\n";
  return out.str();
}

}  // namespace muxwise::muxlint
