#ifndef MUXWISE_TOOLS_MUXLINT_MUXLINT_H_
#define MUXWISE_TOOLS_MUXLINT_MUXLINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace muxwise::muxlint {

/** One determinism- or convention-breaking pattern found in a file. */
struct Finding {
  std::string file;
  int line = 0;          // 1-based.
  std::string rule;      // Rule name, e.g. "wall-clock".
  std::string message;   // Why the pattern is a problem.
  std::string excerpt;   // The offending source line, trimmed.
};

/** Aggregate result of linting one or more files. */
struct LintReport {
  std::vector<Finding> findings;
  std::size_t suppressed = 0;     // Findings silenced by allow() pragmas.
  std::size_t files_scanned = 0;
};

/** Static description of one lint rule (see Rules()). */
struct RuleInfo {
  std::string name;
  std::string summary;
};

/** Every rule muxlint knows, for --list-rules and the docs. */
std::vector<RuleInfo> Rules();

/**
 * Lints one file's `content` (as if read from `path`; the path selects
 * path-scoped exemptions such as raw RNG use inside src/sim/rng) and
 * appends findings to `report`.
 *
 * A finding on a line carrying `// muxlint: allow(<rule>)` (or
 * `allow(all)`) is counted in `report.suppressed` instead; the
 * file-scoped rule `include-guard` is suppressed by an allow() comment
 * anywhere in the file.
 */
void LintContent(const std::string& path, const std::string& content,
                 LintReport& report);

/** Reads and lints one file on disk. Returns false if unreadable. */
bool LintFile(const std::string& path, LintReport& report);

/**
 * Lints every .h/.hpp/.cc/.cpp file under each root (files are
 * accepted too), in sorted path order so output is deterministic.
 * Returns false if any root is missing or a file was unreadable.
 */
bool LintTree(const std::vector<std::string>& roots, LintReport& report);

/** Renders findings as "file:line: [rule] message" lines. */
std::string FormatText(const LintReport& report);

/** Renders the full report as a machine-readable JSON document. */
std::string FormatJson(const LintReport& report);

}  // namespace muxwise::muxlint

#endif  // MUXWISE_TOOLS_MUXLINT_MUXLINT_H_
