#ifndef MUXWISE_TOOLS_MUXLINT_MUXLINT_H_
#define MUXWISE_TOOLS_MUXLINT_MUXLINT_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace muxwise::muxlint {

/** One determinism- or convention-breaking pattern found in a file. */
struct Finding {
  std::string file;
  int line = 0;          // 1-based.
  std::string rule;      // Rule name, e.g. "wall-clock".
  std::string message;   // Why the pattern is a problem.
  std::string excerpt;   // The offending source line, trimmed.
};

/** Aggregate result of linting one or more files. */
struct LintReport {
  std::vector<Finding> findings;
  std::size_t suppressed = 0;     // Findings silenced by allow() pragmas.
  std::map<std::string, std::size_t> suppressed_by_rule;
  std::size_t baselined = 0;      // Findings grandfathered by a baseline.
  std::size_t files_scanned = 0;
  // Traversal/read failures (missing root, unreadable file, directory
  // iteration error). Non-empty errors mean coverage was incomplete, so
  // callers must not treat an empty findings list as a clean bill.
  std::vector<std::string> errors;
};

/** Static description of one lint rule (see Rules()). */
struct RuleInfo {
  std::string name;
  std::string summary;
  // "line": regex over one comment-stripped line. "file": whole-file
  // convention. "project": cross-cutting architectural pass (include
  // layering, global state, shard safety).
  std::string tier;
};

/** Every rule muxlint knows, for --list-rules and the docs. */
std::vector<RuleInfo> Rules();

/**
 * Lints one file's `content` (as if read from `path`; the path selects
 * path-scoped exemptions such as raw RNG use inside src/sim/rng) and
 * appends findings to `report`.
 *
 * A finding on a line carrying `// muxlint: allow(<rule>)` (or
 * `allow(all)`) is counted in `report.suppressed` (and per rule in
 * `suppressed_by_rule`) instead; the file-scoped rule `include-guard`
 * is suppressed by an allow() comment anywhere in the file. Pragmas are
 * recognised only inside comments — pragma-shaped text in a string
 * literal is inert. An allowance that silences nothing on its line is
 * itself a finding (`stale-allow`).
 */
void LintContent(const std::string& path, const std::string& content,
                 LintReport& report);

/** Reads and lints one file on disk. Returns false if unreadable. */
bool LintFile(const std::string& path, LintReport& report);

/**
 * Lints every .h/.hpp/.cc/.cpp file under each root (files are
 * accepted too), in sorted path order so output is deterministic.
 * Directories named `build` or `.git` are skipped at any depth.
 * Returns false if any root was missing, a file was unreadable, or
 * directory traversal failed part-way; the specific failures are
 * recorded in `report.errors`.
 */
bool LintTree(const std::vector<std::string>& roots, LintReport& report);

/**
 * One grandfathered finding: `rule` plus a path suffix. A finding is
 * baselined when its rule matches and its file path ends with `path`
 * (suffix match, so baselines written repo-relative apply to absolute
 * ctest invocations too).
 */
struct BaselineEntry {
  std::string rule;
  std::string path;
};

/**
 * Parses a baseline file: one `rule path` pair per line, `#` comments
 * and blank lines ignored. Returns false (and records into `errors`)
 * if the file cannot be read.
 */
bool LoadBaseline(const std::string& path, std::vector<BaselineEntry>& entries,
                  std::vector<std::string>& errors);

/**
 * Removes findings matched by `entries` from the report, counting them
 * in `report.baselined`. The gate therefore fails only on findings
 * that are neither suppressed in-source nor grandfathered.
 */
void ApplyBaseline(const std::vector<BaselineEntry>& entries,
                   LintReport& report);

/**
 * Renders the report's current findings as baseline-file lines
 * (`rule path`, sorted, deduplicated, paths normalised repo-relative).
 */
std::string FormatBaseline(const LintReport& report);

/** Renders findings as "file:line: [rule] message" lines. */
std::string FormatText(const LintReport& report);

/** Renders the full report as a machine-readable JSON document. */
std::string FormatJson(const LintReport& report);

/** Renders the report as a SARIF 2.1.0 log (one run, one result per finding). */
std::string FormatSarif(const LintReport& report);

}  // namespace muxwise::muxlint

#endif  // MUXWISE_TOOLS_MUXLINT_MUXLINT_H_
