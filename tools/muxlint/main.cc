// muxlint — determinism and convention linter for the muxwise tree.
//
// The simulator's core claim (src/sim/simulator.h) is that every
// experiment is bit-reproducible; a stray wall-clock read, unseeded
// RNG, or pointer-keyed iteration anywhere in src/ silently breaks
// that. This binary enforces the conventions statically and runs as a
// ctest over src/ and tests/.
//
// Usage: muxlint [--json] [--out=FILE] [--list-rules] PATH...
// Exits 1 when findings exist (suppressions via
// `// muxlint: allow(<rule>)` do not count).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "muxlint/muxlint.h"

int main(int argc, char** argv) {
  using namespace muxwise::muxlint;

  bool json = false;
  bool list_rules = false;
  std::string out_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: muxlint [--json] [--out=FILE] [--list-rules] "
                   "PATH...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "muxlint: unknown flag " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }

  if (list_rules) {
    for (const RuleInfo& rule : Rules()) {
      std::cout << rule.name << ": " << rule.summary << "\n";
    }
    return 0;
  }
  if (roots.empty()) {
    std::cerr << "muxlint: no paths given (try --help)\n";
    return 2;
  }

  LintReport report;
  const bool io_ok = LintTree(roots, report);
  const std::string rendered =
      json ? FormatJson(report) : FormatText(report);
  if (out_path.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "muxlint: cannot write " << out_path << "\n";
      return 2;
    }
    out << rendered;
  }
  if (!io_ok) {
    std::cerr << "muxlint: some paths were missing or unreadable\n";
    return 2;
  }
  return report.findings.empty() ? 0 : 1;
}
