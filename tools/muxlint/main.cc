// muxlint — determinism, convention, and architecture linter for the
// muxwise tree.
//
// The simulator's core claim (src/sim/simulator.h) is that every
// experiment is bit-reproducible; a stray wall-clock read, unseeded
// RNG, or pointer-keyed iteration anywhere in src/ silently breaks
// that. On top of the line-scoped rules, project-aware passes enforce
// the module layering DAG, ban mutable namespace-scope state, and
// check shard safety (cross-instance interaction rides sim::Channel).
// This binary enforces all of it statically and runs as a ctest over
// src/ and tests/.
//
// Usage: muxlint [--json] [--sarif] [--out=FILE] [--sarif-out=FILE]
//                [--baseline=FILE] [--write-baseline=FILE]
//                [--list-rules] PATH...
// Exits 1 when non-baselined findings exist (suppressions via
// `// muxlint: allow(<rule>)` do not count), 2 on IO errors.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "muxlint/muxlint.h"

namespace {

bool WriteOrFail(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "muxlint: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace muxwise::muxlint;

  bool json = false;
  bool sarif = false;
  bool list_rules = false;
  std::string out_path;
  std::string sarif_out_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--sarif-out=", 0) == 0) {
      sarif_out_path = arg.substr(12);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: muxlint [--json] [--sarif] [--out=FILE] "
                   "[--sarif-out=FILE] [--baseline=FILE] "
                   "[--write-baseline=FILE] [--list-rules] PATH...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "muxlint: unknown flag " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }

  if (list_rules) {
    for (const RuleInfo& rule : Rules()) {
      std::cout << rule.name << " [" << rule.tier << "]: " << rule.summary
                << "\n";
    }
    return 0;
  }
  if (roots.empty()) {
    std::cerr << "muxlint: no paths given (try --help)\n";
    return 2;
  }

  LintReport report;
  bool io_ok = LintTree(roots, report);

  // --write-baseline captures the PRE-baseline findings (the point is
  // to regenerate the grandfather list); --baseline then filters what
  // the gate sees.
  if (!write_baseline_path.empty()) {
    if (!WriteOrFail(write_baseline_path, FormatBaseline(report))) return 2;
  }
  if (!baseline_path.empty()) {
    std::vector<BaselineEntry> entries;
    if (!LoadBaseline(baseline_path, entries, report.errors)) io_ok = false;
    ApplyBaseline(entries, report);
  }

  const std::string rendered = sarif  ? FormatSarif(report)
                               : json ? FormatJson(report)
                                      : FormatText(report);
  if (out_path.empty()) {
    std::cout << rendered;
  } else if (!WriteOrFail(out_path, rendered)) {
    return 2;
  }
  if (!sarif_out_path.empty() &&
      !WriteOrFail(sarif_out_path, FormatSarif(report))) {
    return 2;
  }
  if (!io_ok) {
    std::cerr << "muxlint: some paths were missing or unreadable\n";
    return 2;
  }
  return report.findings.empty() ? 0 : 1;
}
