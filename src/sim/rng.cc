#include "sim/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logging.h"

namespace muxwise::sim {

namespace {

/** 64-bit FNV-1a hash used to derive fork seeds from labels. */
std::uint64_t HashLabel(std::uint64_t seed, const std::string& label) {
  std::uint64_t h = 14695981039346656037ULL ^ seed;
  for (char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  // Avalanche (splitmix64 finalizer) so nearby labels diverge fully.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

Rng Rng::Fork(const std::string& label) const {
  return Rng(HashLabel(seed_, label));
}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  MUX_CHECK(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::Exponential(double mean) {
  MUX_CHECK(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

bool Rng::Bernoulli(double p) {
  return std::bernoulli_distribution(std::clamp(p, 0.0, 1.0))(engine_);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  MUX_CHECK(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  MUX_CHECK(total > 0.0);
  double x = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

BoundedLogNormal::BoundedLogNormal(double min, double mean, double max)
    : min_(min), max_(max), target_mean_(mean) {
  MUX_CHECK(min > 0.0);
  MUX_CHECK(min <= mean && mean <= max);
  if (min_ == max_) {
    mu_ = std::log(min_);
    sigma_ = 0.0;
    return;
  }
  // Heuristic spread: +/-2 sigma spans the [min, max] range in log space.
  sigma_ = std::log(max / min) / 4.0;
  mu_ = std::log(mean) - 0.5 * sigma_ * sigma_;
  // Clamping shifts the realized mean, so calibrate mu with a short
  // fixed-seed Monte Carlo loop. Deterministic by construction.
  constexpr int kIterations = 10;
  constexpr int kSamples = 4096;
  for (int iter = 0; iter < kIterations; ++iter) {
    Rng probe(0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(iter));
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      sum += std::clamp(probe.LogNormal(mu_, sigma_), min_, max_);
    }
    const double realized = sum / kSamples;
    const double ratio = target_mean_ / realized;
    if (std::abs(ratio - 1.0) < 1e-3) break;
    // Damped multiplicative update in log space.
    mu_ += 0.8 * std::log(ratio);
  }
}

double BoundedLogNormal::Sample(Rng& rng) const {
  if (sigma_ == 0.0) return min_;
  return std::clamp(rng.LogNormal(mu_, sigma_), min_, max_);
}

}  // namespace muxwise::sim
