#ifndef MUXWISE_SIM_SHARD_H_
#define MUXWISE_SIM_SHARD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace muxwise::sim {

class ParallelSimulator;

/**
 * Identifies one event-loop shard of a ParallelSimulator. The partition
 * map is by GPU instance: gpu::Cluster assigns every instance the shard
 * id equal to its instance index, so "instance i" and "shard i" name
 * the same slice of the event space.
 */
using ShardId = std::uint32_t;

/** Sentinel: not on any shard (coordinator context / unannotated). */
inline constexpr ShardId kNoShard = 0xffffffffu;

/**
 * Globally ordered event id: the shard index in the high 16 bits, the
 * shard-local monotonic serial in the low 48. Shard 0 ids equal the
 * sequential Simulator's ids exactly, which is what makes a
 * single-shard ParallelSimulator's merged digest bit-identical to the
 * plain Simulator's. Comparing global ids orders same-timestamp events
 * first by shard, then by each shard's FIFO serial — the documented
 * cross-shard tie-break.
 */
constexpr std::uint64_t GlobalEventId(ShardId shard, std::uint64_t local_id) {
  return (static_cast<std::uint64_t>(shard) << 48) | local_id;
}

/** Number of low bits reserved for the shard-local serial. */
inline constexpr int kShardLocalIdBits = 48;

/**
 * A typed cross-shard crossing: the only way an event on shard `src`
 * may cause an event on shard `dst`. Posts are staged into a per-channel
 * mailbox during a lookahead window and drained by the coordinator at
 * the window barrier in deterministic (arrival time, sender shard,
 * per-sender sequence) order, so the merged event stream is independent
 * of thread count.
 *
 * The channel's `latency` is its conservative contract: every crossing
 * takes at least this long, which is what lets the kernel run shards
 * `min latency` ahead of each other without risking causality.
 * Registering a channel whose latency is below the ParallelSimulator's
 * declared lookahead is a fatal configuration error.
 */
class ShardChannel {
 public:
  ShardChannel(ParallelSimulator* psim, std::string name, ShardId src,
               ShardId dst, Duration latency);

  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  const std::string& name() const { return name_; }
  ShardId src() const { return src_; }
  ShardId dst() const { return dst_; }
  Duration latency() const { return latency_; }

  /**
   * Posts `fn` to run on the destination shard at
   * src.Now() + latency + extra_delay. Must be called from the source
   * shard (its event callbacks, or the coordinator before a run).
   */
  void Post(std::function<void()> fn) { Post(0, std::move(fn)); }
  void Post(Duration extra_delay, std::function<void()> fn);

  /** Messages staged but not yet delivered to the destination shard. */
  std::size_t staged() const { return staged_.size(); }

  /** Messages delivered (scheduled onto the destination shard). */
  std::size_t delivered() const { return delivered_; }

 private:
  friend class ParallelSimulator;

  /** One staged crossing, ordered by (when, sender sequence) at drain. */
  struct Staged {
    Time when = 0;
    std::uint64_t seq = 0;  // GlobalEventId(src, per-src send serial).
    std::function<void()> fn;
  };

  ParallelSimulator* psim_;
  std::string name_;
  ShardId src_;
  ShardId dst_;
  Duration latency_;
  std::vector<Staged> staged_;
  std::size_t delivered_ = 0;
};

}  // namespace muxwise::sim

#endif  // MUXWISE_SIM_SHARD_H_
