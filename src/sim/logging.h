#ifndef MUXWISE_SIM_LOGGING_H_
#define MUXWISE_SIM_LOGGING_H_

#include <sstream>
#include <string>

namespace muxwise::sim {

/** Severity levels for the library logger. */
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/**
 * Process-wide log threshold. Messages below the threshold are dropped.
 * Tests and benches default to kWarn so output stays machine-readable.
 */
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/** Emits one log line to stderr if `level` passes the threshold. */
void LogMessage(LogLevel level, const std::string& message);

/**
 * Aborts the process with a diagnostic. Used for internal invariant
 * violations (the simulator itself is broken), never for user errors.
 */
[[noreturn]] void Panic(const std::string& message);

/**
 * Terminates with exit(1) and a diagnostic. Used for unusable
 * configurations supplied by the caller (bad arguments, impossible
 * topology), mirroring the fatal()/panic() split in gem5.
 */
[[noreturn]] void Fatal(const std::string& message);

namespace internal {

/** Stream-style message builder used by the MUX_LOG macros. */
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace muxwise::sim

#define MUX_LOG_DEBUG \
  ::muxwise::sim::internal::LogLine(::muxwise::sim::LogLevel::kDebug, __FILE__, __LINE__)
#define MUX_LOG_INFO \
  ::muxwise::sim::internal::LogLine(::muxwise::sim::LogLevel::kInfo, __FILE__, __LINE__)
#define MUX_LOG_WARN \
  ::muxwise::sim::internal::LogLine(::muxwise::sim::LogLevel::kWarn, __FILE__, __LINE__)
#define MUX_LOG_ERROR \
  ::muxwise::sim::internal::LogLine(::muxwise::sim::LogLevel::kError, __FILE__, __LINE__)

/** Checks an invariant of the simulator itself; aborts on failure. */
#define MUX_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::muxwise::sim::Panic(std::string("MUX_CHECK failed: ") + #cond +      \
                            " at " + __FILE__ + ":" + std::to_string(__LINE__)); \
    }                                                                        \
  } while (false)

#endif  // MUXWISE_SIM_LOGGING_H_
