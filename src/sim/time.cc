#include "sim/time.h"

#include <cstdio>

namespace muxwise::sim {

std::string FormatDuration(Duration d) {
  char buf[64];
  const double abs = d < 0 ? -static_cast<double>(d) : static_cast<double>(d);
  if (abs >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(d) / 1e9);
  } else if (abs >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(d) / 1e6);
  } else if (abs >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(d) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace muxwise::sim
