#ifndef MUXWISE_SIM_RNG_H_
#define MUXWISE_SIM_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace muxwise::sim {

/**
 * Deterministic random number stream.
 *
 * Every source of randomness in the repository draws from a named Rng so
 * that all experiments are exactly reproducible. Streams derived with
 * Fork() are statistically independent but fully determined by the parent
 * seed and the fork label, so adding a consumer never perturbs another
 * consumer's draws.
 */
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /** Derives an independent child stream keyed by `label`. */
  Rng Fork(const std::string& label) const;

  /** Uniform double in [0, 1). */
  double Uniform();

  /** Uniform double in [lo, hi). */
  double Uniform(double lo, double hi);

  /** Uniform integer in [lo, hi] inclusive. */
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /** Exponential with the given mean (> 0). */
  double Exponential(double mean);

  /** Standard normal draw. */
  double Normal(double mean, double stddev);

  /** Log-normal with the given underlying mu/sigma. */
  double LogNormal(double mu, double sigma);

  /** Bernoulli draw with probability p of true. */
  bool Bernoulli(double p);

  /** Picks an index in [0, weights.size()) proportionally to weights. */
  std::size_t WeightedIndex(const std::vector<double>& weights);

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/**
 * Log-normal distribution clamped to [min, max] and calibrated so that the
 * post-clamp mean approximates `mean`.
 *
 * Table 1 of the paper reports only min/mean/max for each workload metric;
 * a clamped log-normal is the standard heavy-tailed reconstruction for
 * token-length distributions and is what we use to synthesize every
 * dataset. Calibration runs a short deterministic fixed-seed Monte Carlo
 * at construction, so two instances with equal parameters behave
 * identically.
 */
class BoundedLogNormal {
 public:
  BoundedLogNormal(double min, double mean, double max);

  /** Draws one calibrated, clamped sample using the caller's stream. */
  double Sample(Rng& rng) const;

  double min() const { return min_; }
  double max() const { return max_; }
  double target_mean() const { return target_mean_; }
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double min_;
  double max_;
  double target_mean_;
  double mu_;
  double sigma_;
};

}  // namespace muxwise::sim

#endif  // MUXWISE_SIM_RNG_H_
