#include "sim/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace muxwise::sim {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (level < GetLogLevel()) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

void Panic(const std::string& message) {
  std::fprintf(stderr, "[PANIC] %s\n", message.c_str());
  std::abort();
}

void Fatal(const std::string& message) {
  std::fprintf(stderr, "[FATAL] %s\n", message.c_str());
  std::exit(1);
}

namespace internal {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << file << ":" << line << ": ";
}

LogLine::~LogLine() { LogMessage(level_, stream_.str()); }

}  // namespace internal

}  // namespace muxwise::sim
