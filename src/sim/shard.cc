#include "sim/shard.h"

#include <utility>

#include "sim/parallel_simulator.h"

namespace muxwise::sim {

ShardChannel::ShardChannel(ParallelSimulator* psim, std::string name,
                           ShardId src, ShardId dst, Duration latency)
    : psim_(psim),
      name_(std::move(name)),
      src_(src),
      dst_(dst),
      latency_(latency) {
  psim_->RegisterChannel(this);
}

void ShardChannel::Post(Duration extra_delay, std::function<void()> fn) {
  psim_->StageSend(this, extra_delay, std::move(fn));
}

}  // namespace muxwise::sim
