#include "sim/channel.h"

#include <algorithm>
#include <utility>

#include "sim/backoff.h"
#include "sim/logging.h"

namespace muxwise::sim {

Channel::Channel(Simulator* simulator, std::string name,
                 double bandwidth_bytes_per_s, Duration latency)
    : sim_(simulator),
      name_(std::move(name)),
      bandwidth_(bandwidth_bytes_per_s),
      latency_(latency) {
  MUX_CHECK(sim_ != nullptr);
  MUX_CHECK(bandwidth_ > 0.0);
}

Channel::Channel(Simulator* simulator, std::string name)
    : sim_(simulator), name_(std::move(name)) {
  MUX_CHECK(sim_ != nullptr);
}

void Channel::EnableFaults(FaultModel model, Rng rng) {
  MUX_CHECK(model.failure_probability >= 0.0 &&
            model.failure_probability < 1.0);
  MUX_CHECK(model.max_attempts >= 1);
  MUX_CHECK(model.initial_backoff >= 0);
  fault_model_ = model;
  fault_rng_.emplace(std::move(rng));
}

void Channel::SetFailureProbability(double p) {
  MUX_CHECK(p >= 0.0 && p < 1.0);
  MUX_CHECK(fault_rng_.has_value());
  fault_model_.failure_probability = p;
}

void Channel::SetBandwidthScale(double scale) {
  MUX_CHECK(scale > 0.0 && scale <= 1.0);
  bandwidth_scale_ = scale;
}

void Channel::Transfer(double bytes, std::function<void()> done,
                       std::function<void()> failed) {
  MUX_CHECK(bytes >= 0.0);
  MUX_CHECK(bandwidth_ > 0.0);  // Control-only channels cannot Transfer.
  StartAttempt(bytes, 1, std::move(done), std::move(failed));
}

void Channel::StartAttempt(double bytes, int attempt,
                           std::function<void()> done,
                           std::function<void()> failed) {
  const Duration wire_time = latency_ + static_cast<Duration>(
      bytes / (bandwidth_ * bandwidth_scale_) * 1e9);
  // Clamp: a link that has been idle since free_at_ passed must not make
  // the next transfer inherit that stale serialization point.
  free_at_ = std::max(free_at_, sim_->Now()) + wire_time;
  // Draw per-attempt loss up front (deterministic given the seeded
  // stream); an unarmed or zero-probability link consumes no randomness
  // and takes the exact same single-event path as before faults existed.
  // A flapped-down link loses the attempt without drawing, so the armed
  // stream's draw sequence is identical with and without the flap.
  const bool lost = !link_up_ ||
                    (fault_rng_.has_value() &&
                     fault_model_.failure_probability > 0.0 &&
                     fault_rng_->Bernoulli(fault_model_.failure_probability));
  if (!lost) {
    auto finish = [this, bytes, done = std::move(done)] {
      bytes_transferred_ += bytes;
      ++transfers_completed_;
      if (done) done();
    };
    sim_->ScheduleAt(free_at_, std::move(finish));
    return;
  }
  // The attempt occupied the wire for its full duration before being
  // detected as lost (worst-case model: corruption found at the CRC on
  // the far side), then the caller backs off before retrying.
  if (attempt >= fault_model_.max_attempts) {
    auto give_up = [this, failed = std::move(failed)] {
      ++attempts_failed_;
      ++transfers_failed_;
      if (failed) failed();
    };
    sim_->ScheduleAt(free_at_, std::move(give_up));
    return;
  }
  const Duration backoff = BackoffDelay(
      ExponentialBackoff{fault_model_.initial_backoff, 2.0, kTimeNever},
      attempt);
  auto retry = [this, bytes, attempt, done = std::move(done),
                failed = std::move(failed)]() mutable {
    ++attempts_failed_;
    StartAttempt(bytes, attempt + 1, std::move(done), std::move(failed));
  };
  sim_->ScheduleAt(free_at_ + backoff, std::move(retry));
}

}  // namespace muxwise::sim
