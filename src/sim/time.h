#ifndef MUXWISE_SIM_TIME_H_
#define MUXWISE_SIM_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace muxwise::sim {

/**
 * Simulated time, measured in integer nanoseconds since simulation start.
 *
 * Integer nanoseconds keep the event queue deterministic across platforms
 * (no floating-point tie-break ambiguity) while still resolving the
 * microsecond-scale effects the model cares about (green-context
 * reconfiguration, kernel launch latency).
 */
using Time = std::int64_t;

/** Duration type; same representation as Time. */
using Duration = std::int64_t;

inline constexpr Time kTimeZero = 0;
inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/** Constructs a duration from nanoseconds. */
constexpr Duration Nanoseconds(std::int64_t n) { return n; }

/** Constructs a duration from microseconds. */
constexpr Duration Microseconds(double us) {
  return static_cast<Duration>(us * 1e3);
}

/** Constructs a duration from milliseconds. */
constexpr Duration Milliseconds(double ms) {
  return static_cast<Duration>(ms * 1e6);
}

/** Constructs a duration from seconds. */
constexpr Duration Seconds(double s) { return static_cast<Duration>(s * 1e9); }

/** Converts a duration to fractional microseconds. */
constexpr double ToMicroseconds(Duration d) { return static_cast<double>(d) / 1e3; }

/** Converts a duration to fractional milliseconds. */
constexpr double ToMilliseconds(Duration d) { return static_cast<double>(d) / 1e6; }

/** Converts a duration to fractional seconds. */
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }

/** Renders a duration as a human-readable string, e.g. "12.34ms". */
std::string FormatDuration(Duration d);

}  // namespace muxwise::sim

#endif  // MUXWISE_SIM_TIME_H_
