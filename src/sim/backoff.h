#ifndef MUXWISE_SIM_BACKOFF_H_
#define MUXWISE_SIM_BACKOFF_H_

#include "sim/time.h"

namespace muxwise::sim {

/**
 * Deterministic exponential backoff with a cap — the one retry-pacing
 * policy shared by every layer that re-offers work after a transient
 * failure: interconnect transfer retries (sim::Channel), overload
 * admission deferrals (overload::Controller), and fleet-router session
 * re-homing (route::FleetRouter).
 *
 * The delay before attempt k (1-based) is initial * multiplier^(k-1),
 * clamped to `cap`. No jitter: retries in a deterministic simulator must
 * replay bit-identically, so spreading load is the caller's seed-stream
 * problem, not this helper's.
 */
struct ExponentialBackoff {
  /** Delay before the first retry (attempt 1). */
  Duration initial = Milliseconds(2);

  /** Geometric growth factor per attempt, >= 1. */
  double multiplier = 2.0;

  /** Upper bound on any single delay; kTimeNever means uncapped. */
  Duration cap = kTimeNever;
};

/**
 * Delay before retry `attempt` (1-based: attempt 1 waits `initial`).
 * Doubling (multiplier == 2) is computed by repeated integer doubling —
 * bit-identical to the historical Channel retry loop — and any other
 * multiplier by repeated scaled multiplication. Saturates at `cap`
 * (overflow-safe: once the running delay passes the cap it stops
 * growing). `attempt < 1` is treated as attempt 1.
 */
Duration BackoffDelay(const ExponentialBackoff& policy, int attempt);

}  // namespace muxwise::sim

#endif  // MUXWISE_SIM_BACKOFF_H_
