#include "sim/parallel_simulator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/logging.h"

namespace muxwise::sim {

namespace {

/** Same order-sensitive fold as Simulator::FoldDigest. */
std::uint64_t MixDigest(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/** Time addition saturating at kTimeNever (b >= 0). */
Time SatAddTime(Time a, Duration b) {
  if (a == kTimeNever || b >= kTimeNever - a) return kTimeNever;
  return a + b;
}

/**
 * The shard whose window slice this thread is executing, kNoShard in
 * coordinator context. ShardChannel::Post uses it to enforce that a
 * send really originates on the channel's source shard.
 */
ShardId& CurrentShardSlot() {
  static thread_local ShardId current = kNoShard;
  return current;
}

}  // namespace

ParallelSimulator::ParallelSimulator(Options options) : options_(options) {
  if (options_.shards == 0) {
    Fatal("ParallelSimulator requires at least one shard");
  }
  if (options_.threads < 1) {
    Fatal("ParallelSimulator requires threads >= 1");
  }
  if (options_.lookahead < 0) {
    Fatal("ParallelSimulator lookahead must be non-negative");
  }
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  logs_.resize(options_.shards);
  send_seq_.assign(options_.shards, 0);
  if (shards_.size() > 1) {
    // Multi-shard mode records every shard's execution so window
    // barriers can merge the global stream. The single-shard fast path
    // skips logging entirely: its digest IS the shard's digest.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->SetExecutionLog(&logs_[s]);
    }
  }
}

ParallelSimulator::~ParallelSimulator() { StopWorkers(); }

Simulator& ParallelSimulator::shard(ShardId s) {
  MUX_CHECK(s < shards_.size());
  return *shards_[s];
}

const Simulator& ParallelSimulator::shard(ShardId s) const {
  MUX_CHECK(s < shards_.size());
  return *shards_[s];
}

Duration ParallelSimulator::Lookahead() const {
  if (options_.lookahead > 0) return options_.lookahead;
  Duration bound = kTimeNever;
  for (const ShardChannel* channel : channels_) {
    bound = std::min(bound, channel->latency_);
  }
  return bound;
}

MUX_CHANNEL_ENTRY void ParallelSimulator::RegisterChannel(
    ShardChannel* channel) {
  if (sequential_fast_path()) {
    Fatal("ShardChannel '" + channel->name_ +
          "': a single-shard ParallelSimulator has no cross-shard "
          "surface to register against");
  }
  if (channel->src_ >= shards_.size() || channel->dst_ >= shards_.size()) {
    Fatal("ShardChannel '" + channel->name_ + "' endpoint out of range (" +
          std::to_string(channel->src_) + " -> " +
          std::to_string(channel->dst_) + " with " +
          std::to_string(shards_.size()) + " shards)");
  }
  if (channel->src_ == channel->dst_) {
    Fatal("ShardChannel '" + channel->name_ +
          "' must cross two distinct shards; same-shard work schedules "
          "directly on its simulator");
  }
  if (channel->latency_ <= 0) {
    Fatal("ShardChannel '" + channel->name_ +
          "' needs a positive latency: a zero-latency crossing leaves "
          "no conservative lookahead window");
  }
  if (options_.lookahead > 0 && channel->latency_ < options_.lookahead) {
    Fatal("ShardChannel '" + channel->name_ + "' latency " +
          FormatDuration(channel->latency_) +
          " is below the declared lookahead " +
          FormatDuration(options_.lookahead) +
          "; the window protocol would miss its deliveries");
  }
  channels_.push_back(channel);
}

MUX_CHANNEL_ENTRY void ParallelSimulator::StageSend(ShardChannel* channel,
                                                    Duration extra_delay,
                                                    std::function<void()> fn) {
  MUX_CHECK(fn != nullptr);
  MUX_CHECK(extra_delay >= 0);
  const ShardId current = CurrentShardSlot();
  // A send must originate on the channel's source shard (or from the
  // coordinator before/between runs — scenario setup).
  MUX_CHECK(current == kNoShard || current == channel->src_);
  const ShardId src = channel->src_;
  const Time when =
      shards_[src]->Now() + channel->latency_ + extra_delay;
  channel->staged_.push_back(ShardChannel::Staged{
      when, GlobalEventId(src, ++send_seq_[src]), std::move(fn)});
}

MUX_CHANNEL_ENTRY void ParallelSimulator::DrainMailboxes() {
  struct Delivery {
    ShardId dst = 0;
    Time when = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  std::vector<Delivery> deliveries;
  for (ShardChannel* channel : channels_) {
    for (ShardChannel::Staged& msg : channel->staged_) {
      deliveries.push_back(
          Delivery{channel->dst_, msg.when, msg.seq, std::move(msg.fn)});
    }
    channel->delivered_ += channel->staged_.size();
    channel->staged_.clear();
  }
  if (deliveries.empty()) return;
  // Deterministic drain order per destination: (arrival time, sender
  // sequence). The sequence embeds the sender shard in its high bits,
  // so same-tick arrivals order by (src shard, per-src send serial) —
  // and the destination's FIFO tie-break then preserves exactly this
  // order among same-tick deliveries.
  std::sort(deliveries.begin(), deliveries.end(),
            [](const Delivery& a, const Delivery& b) {
              if (a.dst != b.dst) return a.dst < b.dst;
              if (a.when != b.when) return a.when < b.when;
              return a.seq < b.seq;
            });
  for (Delivery& d : deliveries) {
    // Conservative-lookahead guarantee: a message can never arrive in a
    // destination shard's past.
    MUX_CHECK(d.when >= shards_[d.dst]->Now());
    shards_[d.dst]->ScheduleAt(d.when, std::move(d.fn));
  }
}

MUX_SHARD_LOCAL void ParallelSimulator::RunShardSlice(ShardId s, Time w_end,
                                                      std::size_t budget) {
  ShardId& current = CurrentShardSlot();
  current = s;
  counts_[s] = shards_[s]->RunBefore(w_end, budget);
  current = kNoShard;
}

void ParallelSimulator::ExecuteWindow(Time w_end, std::size_t budget) {
  const std::size_t k = shards_.size();
  counts_.assign(k, 0);
  const int wanted = std::min<int>(options_.threads, static_cast<int>(k));
  if (wanted <= 1) {
    // Reference interleaving: shards run inline in ascending order.
    // Thread-count invariance holds because window slices are
    // independent — the same per-shard streams emerge in any order.
    for (std::size_t s = 0; s < k; ++s) {
      RunShardSlice(static_cast<ShardId>(s), w_end, budget);
    }
  } else {
    EnsureWorkers(wanted);
    const int stride = static_cast<int>(workers_.size());
    RunOnWorkers([this, w_end, budget, stride](int worker_id) {
      for (std::size_t s = static_cast<std::size_t>(worker_id);
           s < shards_.size(); s += static_cast<std::size_t>(stride)) {
        RunShardSlice(static_cast<ShardId>(s), w_end, budget);
      }
    });
  }
  ++windows_;
}

void ParallelSimulator::MergeExecutionLogs() {
  const std::size_t k = shards_.size();
  cursors_.assign(k, 0);
  while (true) {
    std::size_t best = k;
    Time best_when = 0;
    std::uint64_t best_gid = 0;
    for (std::size_t s = 0; s < k; ++s) {
      if (cursors_[s] >= logs_[s].size()) continue;
      const Simulator::ExecutedEvent& e = logs_[s][cursors_[s]];
      const std::uint64_t gid = GlobalEventId(static_cast<ShardId>(s), e.id);
      if (best == k || e.when < best_when ||
          (e.when == best_when && gid < best_gid)) {
        best = s;
        best_when = e.when;
        best_gid = gid;
      }
    }
    if (best == k) break;
    ++cursors_[best];
    merged_digest_ = MixDigest(merged_digest_,
                               static_cast<std::uint64_t>(best_when));
    merged_digest_ = MixDigest(merged_digest_, best_gid);
    ++merged_events_;
  }
  for (std::vector<Simulator::ExecutedEvent>& log : logs_) log.clear();
}

Time ParallelSimulator::NextGlobalEventTime() const {
  Time m = kTimeNever;
  for (const std::unique_ptr<Simulator>& sh : shards_) {
    m = std::min(m, sh->NextEventTime());
  }
  return m;
}

MUX_CHANNEL_ENTRY std::size_t ParallelSimulator::RunWindows(
    Time until, std::size_t max_events) {
  std::size_t total = 0;
  // A batched run supersedes any window a Step() sequence left open; a
  // later Step() must re-barrier rather than trust the stale bound.
  step_window_end_ = kTimeZero;
  while (true) {
    DrainMailboxes();
    const Time m = NextGlobalEventTime();
    if (m == kTimeNever || m > until) break;
    if (total >= max_events) {
      // Budget exhausted with work still pending: shard clocks stay at
      // their last executed events (the sequential RunUntil contract).
      now_ = MaxShardNow();
      return total;
    }
    const std::size_t remaining = max_events - total;
    const Time w_end =
        std::min(SatAddTime(m, Lookahead()), SatAddTime(until, 1));
    ExecuteWindow(w_end, remaining);
    MergeExecutionLogs();
    for (std::size_t c : counts_) total += c;
  }
  if (until == kTimeNever) {
    now_ = MaxShardNow();
  } else {
    for (const std::unique_ptr<Simulator>& sh : shards_) {
      sh->AdvanceTo(until);
    }
    now_ = until;
  }
  return total;
}

std::size_t ParallelSimulator::RunOnShardZero(
    const std::function<std::size_t()>& fn) {
  if (options_.threads <= 1) {
    ShardId& current = CurrentShardSlot();
    current = 0;
    const std::size_t n = fn();
    current = kNoShard;
    return n;
  }
  // Host the sequential algorithm on a worker thread: identical event
  // semantics and digest, but the hand-off is a real cross-thread one —
  // the TSan proof that engine state is shard-confined.
  EnsureWorkers(1);
  std::size_t n = 0;
  RunOnWorkers([this, &fn, &n](int worker_id) {
    if (worker_id != 0) return;
    ShardId& current = CurrentShardSlot();
    current = 0;
    n = fn();
    current = kNoShard;
  });
  return n;
}

std::size_t ParallelSimulator::Run() {
  if (sequential_fast_path()) {
    const std::size_t n = RunOnShardZero([this] { return shards_[0]->Run(); });
    now_ = shards_[0]->Now();
    return n;
  }
  return RunWindows(kTimeNever, std::numeric_limits<std::size_t>::max());
}

std::size_t ParallelSimulator::RunUntil(Time until) {
  MUX_CHECK(until >= now_);
  if (sequential_fast_path()) {
    const std::size_t n =
        RunOnShardZero([this, until] { return shards_[0]->RunUntil(until); });
    now_ = shards_[0]->Now();
    return n;
  }
  return RunWindows(until, std::numeric_limits<std::size_t>::max());
}

std::size_t ParallelSimulator::RunUntil(Time until, std::size_t max_events) {
  MUX_CHECK(until >= now_);
  if (sequential_fast_path()) {
    const std::size_t n = RunOnShardZero([this, until, max_events] {
      return shards_[0]->RunUntil(until, max_events);
    });
    now_ = shards_[0]->Now();
    return n;
  }
  return RunWindows(until, max_events);
}

MUX_CHANNEL_ENTRY bool ParallelSimulator::Step() {
  if (sequential_fast_path()) {
    const bool stepped = shards_[0]->Step();
    now_ = shards_[0]->Now();
    return stepped;
  }
  // Replay the window protocol one event at a time. The barrier
  // (mailbox drain + new lookahead window) fires exactly when the
  // earliest pending event crosses the current window bound — the same
  // point RunWindows drains — so destination shards see deliveries
  // scheduled in the same order, local event ids match, and the merged
  // digest is bit-identical to a batched run.
  Time m = NextGlobalEventTime();
  if (m == kTimeNever || m >= step_window_end_) {
    DrainMailboxes();
    m = NextGlobalEventTime();
    if (m == kTimeNever) {
      step_window_end_ = kTimeZero;
      return false;
    }
    step_window_end_ = SatAddTime(m, Lookahead());
  }
  // The globally earliest event: minimum (when, GlobalEventId). Shards
  // tie-break by index because the shard id occupies the gid's high
  // bits — the same order the window merge emits.
  std::size_t best = shards_.size();
  Time best_when = kTimeNever;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Time t = shards_[s]->NextEventTime();
    if (t < best_when) {
      best_when = t;
      best = s;
    }
  }
  MUX_CHECK(best < shards_.size());
  ShardId& current = CurrentShardSlot();
  current = static_cast<ShardId>(best);
  shards_[best]->Step();
  current = kNoShard;
  MergeExecutionLogs();
  now_ = std::max(now_, shards_[best]->Now());
  return true;
}

bool ParallelSimulator::Empty() const {
  for (const std::unique_ptr<Simulator>& sh : shards_) {
    if (!sh->Empty()) return false;
  }
  for (const ShardChannel* channel : channels_) {
    if (!channel->staged_.empty()) return false;
  }
  return true;
}

std::size_t ParallelSimulator::PendingEvents() const {
  std::size_t pending = 0;
  for (const std::unique_ptr<Simulator>& sh : shards_) {
    pending += sh->PendingEvents();
  }
  for (const ShardChannel* channel : channels_) {
    pending += channel->staged_.size();
  }
  return pending;
}

std::size_t ParallelSimulator::ExecutedEvents() const {
  std::size_t executed = 0;
  for (const std::unique_ptr<Simulator>& sh : shards_) {
    executed += sh->ExecutedEvents();
  }
  return executed;
}

std::uint64_t ParallelSimulator::EventDigest() const {
  if (sequential_fast_path()) return shards_[0]->EventDigest();
  return merged_digest_;
}

std::size_t ParallelSimulator::cross_shard_posts() const {
  std::size_t posts = 0;
  for (const ShardChannel* channel : channels_) {
    posts += channel->delivered_ + channel->staged_.size();
  }
  return posts;
}

void ParallelSimulator::RegisterAudits(
    check::InvariantRegistry& registry) const {
  for (const std::unique_ptr<Simulator>& sh : shards_) {
    sh->RegisterAudits(registry);
  }
  registry.Register(
      "ParallelSimulator", "mailbox-causality",
      [this](check::AuditContext& ctx) {
        for (const ShardChannel* channel : channels_) {
          for (const ShardChannel::Staged& msg : channel->staged_) {
            ctx.Check(msg.when >= shards_[channel->dst_]->Now(),
                      "staged message on '" + channel->name_ + "' at t=" +
                          std::to_string(msg.when) +
                          " precedes the destination shard's clock");
          }
        }
      });
  if (!sequential_fast_path()) {
    registry.Register(
        "ParallelSimulator", "merged-stream-complete",
        [this](check::AuditContext& ctx) {
          std::size_t logged = 0;
          for (const std::vector<Simulator::ExecutedEvent>& log : logs_) {
            logged += log.size();
          }
          std::size_t executed = 0;
          for (const std::unique_ptr<Simulator>& sh : shards_) {
            executed += sh->ExecutedEvents();
          }
          ctx.Check(merged_events_ + logged == executed,
                    "merged stream holds " + std::to_string(merged_events_) +
                        " events (+" + std::to_string(logged) +
                        " unmerged) but shards executed " +
                        std::to_string(executed) +
                        "; some execution bypassed the kernel");
        });
  }
}

void ParallelSimulator::EnsureWorkers(int count) {
  while (static_cast<int>(workers_.size()) < count) {
    const int id = static_cast<int>(workers_.size());
    // Capture the current generation on the coordinator so a worker
    // spawned between dispatches never mistakes an old job for new.
    const std::uint64_t start_generation = generation_;
    workers_.emplace_back(
        [this, id, start_generation] { WorkerLoop(id, start_generation); });
  }
}

void ParallelSimulator::RunOnWorkers(const std::function<void(int)>& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    pending_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
}

void ParallelSimulator::WorkerLoop(int worker_id,
                                   std::uint64_t seen_generation) {
  while (true) {
    std::function<void(int)> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    job(worker_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_workers_;
      if (pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelSimulator::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

Time ParallelSimulator::MaxShardNow() const {
  Time latest = kTimeZero;
  for (const std::unique_ptr<Simulator>& sh : shards_) {
    latest = std::max(latest, sh->Now());
  }
  return latest;
}

}  // namespace muxwise::sim
