#ifndef MUXWISE_SIM_SIMULATOR_H_
#define MUXWISE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/invariant_registry.h"
#include "sim/time.h"

namespace muxwise::sim {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/**
 * Discrete-event simulator core.
 *
 * Single-threaded by design: all model components (GPU streams, serving
 * engines, workload frontends) interact solely by scheduling callbacks on
 * one Simulator, which executes them in (time, insertion-order) order.
 * That total order makes every experiment bit-reproducible.
 */
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /** Current simulated time. */
  Time Now() const { return now_; }

  /**
   * Schedules `cb` to run at absolute time `when` (>= Now()).
   * Returns a handle usable with Cancel().
   */
  EventId ScheduleAt(Time when, Callback cb);

  /** Schedules `cb` to run `delay` after the current time. */
  EventId ScheduleAfter(Duration delay, Callback cb);

  /**
   * Cancels a pending event. Safe to call with an id that already fired
   * or was already cancelled (both are no-ops returning false).
   */
  bool Cancel(EventId id);

  /** Runs until the event queue drains. Returns events executed. */
  std::size_t Run();

  /**
   * Runs all events with timestamp <= `until`, then sets Now() to `until`
   * (even if the queue drained earlier). Returns events executed.
   */
  std::size_t RunUntil(Time until);

  /**
   * Like RunUntil(until), but executes at most `max_events` events — the
   * guard that lets a driver terminate a livelocked scenario (e.g. a
   * zero-delay event loop that never advances time) with a diagnostic
   * instead of spinning forever. When the budget ends the run early,
   * Now() stays at the last executed event's time rather than advancing
   * to `until`. Returns events executed.
   */
  std::size_t RunUntil(Time until, std::size_t max_events);

  /** Executes exactly one event if any is pending. Returns true if so. */
  bool Step();

  /** True when no live events remain. */
  bool Empty() const { return live_events_ == 0; }

  /** Number of events pending (excludes cancelled tombstones). */
  std::size_t PendingEvents() const { return live_events_; }

  /** Total events executed since construction. */
  std::size_t ExecutedEvents() const { return executed_; }

  /**
   * Order-sensitive digest of the executed event stream: a hash folded
   * over (when, id) of every event fired so far. Two runs of the same
   * scenario must produce identical digests — the witness the harness's
   * determinism verifier compares. Any reordering, dropped event, or
   * timing change perturbs it.
   */
  std::uint64_t EventDigest() const { return digest_; }

  /**
   * Registers event-queue consistency audits: the live-event count
   * matches the index, and no pending event precedes Now().
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

 private:
  struct Event {
    Time when = 0;
    EventId id = kInvalidEventId;
    Callback callback;
    bool cancelled = false;
  };

  struct EventOrder {
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->when != b->when) return a->when > b->when;
      return a->id > b->id;  // FIFO among same-time events.
    }
  };

  /** Pops the next live event, or nullptr if the queue is drained. */
  std::shared_ptr<Event> PopNext();

  /** Folds one executed event into the stream digest. */
  void FoldDigest(const Event& event);

  Time now_ = kTimeZero;
  EventId next_id_ = 1;
  std::size_t executed_ = 0;
  std::uint64_t digest_ = 0x9e3779b97f4a7c15ULL;
  std::size_t live_events_ = 0;
  std::priority_queue<std::shared_ptr<Event>,
                      std::vector<std::shared_ptr<Event>>, EventOrder>
      queue_;
  // Cancellation needs id -> event lookup; entries self-remove on fire.
  std::unordered_map<EventId, std::weak_ptr<Event>> index_map_;
};

}  // namespace muxwise::sim

#endif  // MUXWISE_SIM_SIMULATOR_H_
