#ifndef MUXWISE_SIM_SIMULATOR_H_
#define MUXWISE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/invariant_registry.h"
#include "sim/time.h"

namespace muxwise::sim {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/**
 * Discrete-event simulator core.
 *
 * Single-threaded by design: all model components (GPU streams, serving
 * engines, workload frontends) interact solely by scheduling callbacks on
 * one Simulator, which executes them in (time, insertion-order) order.
 * That total order makes every experiment bit-reproducible.
 *
 * Performance structure (the hottest loop in the codebase):
 *
 *  - Event records live in a pooled arena (`pool_`) recycled through a
 *    free list, so steady-state scheduling allocates nothing.
 *  - The ready queue is a hand-rolled binary min-heap of POD entries
 *    (when, id, slot). Comparisons read only the entry — no pointer
 *    chasing, no reference counting — and the monotonic id doubles as
 *    the FIFO tie-break serial for same-timestamp events *and* as the
 *    staleness witness for cancelled entries (a heap entry whose id no
 *    longer matches its pool slot is a tombstone, skipped on pop).
 *  - Cancellation looks the id up in a flat open-addressing table
 *    (linear probing, backward-shift deletion) instead of a node-based
 *    std::unordered_map.
 *
 * None of this changes observable ordering: events still execute in
 * exactly (when, id) order, so event-stream digests are bit-identical
 * to the earlier std::priority_queue implementation.
 */
class Simulator {
 public:
  using Callback = std::function<void()>;

  /**
   * One executed event as captured by SetExecutionLog: exactly the
   * (when, id) pair folded into EventDigest, in execution order.
   */
  struct ExecutedEvent {
    Time when = 0;
    EventId id = kInvalidEventId;
  };

  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /** Current simulated time. */
  Time Now() const { return now_; }

  /**
   * Schedules `cb` to run at absolute time `when` (>= Now()).
   * Returns a handle usable with Cancel().
   */
  EventId ScheduleAt(Time when, Callback cb);

  /** Schedules `cb` to run `delay` after the current time. */
  EventId ScheduleAfter(Duration delay, Callback cb);

  /**
   * Cancels a pending event. Safe to call with an id that already fired
   * or was already cancelled (both are no-ops returning false).
   */
  bool Cancel(EventId id);

  /** Runs until the event queue drains. Returns events executed. */
  std::size_t Run();

  /**
   * Runs all events with timestamp <= `until`, then sets Now() to `until`
   * (even if the queue drained earlier). Returns events executed.
   */
  std::size_t RunUntil(Time until);

  /**
   * Like RunUntil(until), but executes at most `max_events` events — the
   * guard that lets a driver terminate a livelocked scenario (e.g. a
   * zero-delay event loop that never advances time) with a diagnostic
   * instead of spinning forever. When the budget ends the run early,
   * Now() stays at the last executed event's time rather than advancing
   * to `until`. Returns events executed.
   */
  std::size_t RunUntil(Time until, std::size_t max_events);

  /**
   * Runs all events with timestamp strictly before `until`, leaving
   * Now() at the last executed event's time (it never force-advances to
   * `until`). This is the parallel kernel's window primitive: a shard
   * executes its slice of a lookahead window [start, until) and the
   * coordinator aligns clocks at the barrier via AdvanceTo(). Executes
   * at most `max_events` (the livelock guard). Returns events executed.
   */
  std::size_t RunBefore(Time until, std::size_t max_events);

  /**
   * Advances Now() to `t` without executing anything. Fatal if an event
   * earlier than `t` is still pending — advancing past it would violate
   * causality. Used by the parallel kernel to align shard clocks at a
   * window barrier.
   */
  void AdvanceTo(Time t);

  /**
   * Timestamp of the earliest pending event, kTimeNever when drained.
   * Non-const: discards cancelled tombstones on its way to the answer.
   */
  Time NextEventTime();

  /** Executes exactly one event if any is pending. Returns true if so. */
  bool Step();

  /** True when no live events remain. */
  bool Empty() const { return live_events_ == 0; }

  /** Number of events pending (excludes cancelled tombstones). */
  std::size_t PendingEvents() const { return live_events_; }

  /** Total events executed since construction. */
  std::size_t ExecutedEvents() const { return executed_; }

  /**
   * Order-sensitive digest of the executed event stream: a hash folded
   * over (when, id) of every event fired so far. Two runs of the same
   * scenario must produce identical digests — the witness the harness's
   * determinism verifier compares. Any reordering, dropped event, or
   * timing change perturbs it.
   */
  std::uint64_t EventDigest() const { return digest_; }

  /**
   * Attaches (or detaches, with nullptr) an execution log: every event
   * executed from then on appends its (when, id) pair. The parallel
   * kernel merges per-shard logs into the global event stream at window
   * barriers; recording never changes execution order or the digest.
   * The log is owned by the caller and must outlive the attachment.
   */
  void SetExecutionLog(std::vector<ExecutedEvent>* log) { log_ = log; }

  /**
   * Registers event-queue consistency audits: the live-event count
   * matches the arena scan, no pending event precedes Now(), and the
   * cancellation index agrees with the arena.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

 private:
  /**
   * Pooled event record. A slot whose `id` is kInvalidEventId is free
   * (linked through `next_free`); Cancel() frees the slot immediately,
   * which implicitly tombstones the heap entry still pointing at it.
   */
  struct Event {
    Time when = 0;
    EventId id = kInvalidEventId;
    Callback callback;
    std::uint32_t next_free = kNoFreeSlot;
  };

  /** Heap entry: everything a comparison or a staleness check needs. */
  struct HeapEntry {
    Time when = 0;
    EventId id = kInvalidEventId;  // Monotonic FIFO tie-break serial.
    std::uint32_t slot = 0;
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  /** Strict (when, id) ordering — same-time events run in schedule order. */
  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.id < b.id;
  }

  /**
   * Flat open-addressing id -> slot map (linear probing, backward-shift
   * deletion). Allocation-free at steady state; kInvalidEventId marks an
   * empty cell.
   */
  class IdIndex {
   public:
    void Insert(EventId id, std::uint32_t slot);

    /** Removes `id`, storing its slot. False when absent. */
    bool Erase(EventId id, std::uint32_t* slot);

    std::size_t size() const { return size_; }

   private:
    struct Cell {
      EventId id = kInvalidEventId;
      std::uint32_t slot = 0;
    };

    void Grow();

    std::vector<Cell> cells_;
    std::size_t size_ = 0;
  };

  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t slot);

  void HeapPush(const HeapEntry& entry);
  void HeapPopTop();

  /**
   * Discards stale heap tombstones, returning the live minimum entry
   * (nullptr when drained). The returned pointer is invalidated by any
   * schedule/pop.
   */
  const HeapEntry* PeekLive();

  /**
   * Pops the heap minimum (which must be live) and executes it:
   * advances Now(), folds the digest, releases the slot, and invokes
   * the callback (the callback may freely schedule or cancel).
   */
  void ExecuteTop();

  /** Folds one executed event into the stream digest. */
  void FoldDigest(Time when, EventId id);

  Time now_ = kTimeZero;
  EventId next_id_ = 1;
  std::size_t executed_ = 0;
  std::uint64_t digest_ = 0x9e3779b97f4a7c15ULL;
  std::size_t live_events_ = 0;
  std::vector<ExecutedEvent>* log_ = nullptr;

  std::vector<Event> pool_;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::vector<HeapEntry> heap_;
  IdIndex index_;
};

}  // namespace muxwise::sim

#endif  // MUXWISE_SIM_SIMULATOR_H_
