#include "sim/simulator.h"

#include <utility>

#include "sim/logging.h"

namespace muxwise::sim {

EventId Simulator::ScheduleAt(Time when, Callback cb) {
  MUX_CHECK(when >= now_);
  MUX_CHECK(cb != nullptr);
  auto event = std::make_shared<Event>();
  event->when = when;
  event->id = next_id_++;
  event->callback = std::move(cb);
  const EventId id = event->id;
  index_map_[id] = event;
  queue_.push(std::move(event));
  ++live_events_;
  return id;
}

EventId Simulator::ScheduleAfter(Duration delay, Callback cb) {
  MUX_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  auto it = index_map_.find(id);
  if (it == index_map_.end()) return false;
  auto event = it->second.lock();
  index_map_.erase(it);
  if (!event || event->cancelled) return false;
  event->cancelled = true;
  MUX_CHECK(live_events_ > 0);
  --live_events_;
  return true;
}

std::shared_ptr<Simulator::Event> Simulator::PopNext() {
  while (!queue_.empty()) {
    auto event = queue_.top();
    queue_.pop();
    if (event->cancelled) continue;
    index_map_.erase(event->id);
    return event;
  }
  return nullptr;
}

bool Simulator::Step() {
  auto event = PopNext();
  if (!event) return false;
  MUX_CHECK(event->when >= now_);
  now_ = event->when;
  MUX_CHECK(live_events_ > 0);
  --live_events_;
  ++executed_;
  event->callback();
  return true;
}

std::size_t Simulator::Run() {
  std::size_t n = 0;
  while (Step()) ++n;
  return n;
}

std::size_t Simulator::RunUntil(Time until) {
  MUX_CHECK(until >= now_);
  std::size_t n = 0;
  while (true) {
    auto event = PopNext();
    if (!event) break;
    if (event->when > until) {
      // Reinsert: it stays pending for a later RunUntil/Run call.
      index_map_[event->id] = event;
      queue_.push(std::move(event));
      break;
    }
    now_ = event->when;
    MUX_CHECK(live_events_ > 0);
    --live_events_;
    ++executed_;
    ++n;
    event->callback();
  }
  now_ = until;
  return n;
}

}  // namespace muxwise::sim
