#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace muxwise::sim {

EventId Simulator::ScheduleAt(Time when, Callback cb) {
  MUX_CHECK(when >= now_);
  MUX_CHECK(cb != nullptr);
  auto event = std::make_shared<Event>();
  event->when = when;
  event->id = next_id_++;
  event->callback = std::move(cb);
  const EventId id = event->id;
  index_map_[id] = event;
  queue_.push(std::move(event));
  ++live_events_;
  return id;
}

EventId Simulator::ScheduleAfter(Duration delay, Callback cb) {
  MUX_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  auto it = index_map_.find(id);
  if (it == index_map_.end()) return false;
  auto event = it->second.lock();
  index_map_.erase(it);
  if (!event || event->cancelled) return false;
  event->cancelled = true;
  MUX_CHECK(live_events_ > 0);
  --live_events_;
  return true;
}

std::shared_ptr<Simulator::Event> Simulator::PopNext() {
  while (!queue_.empty()) {
    auto event = queue_.top();
    queue_.pop();
    if (event->cancelled) continue;
    index_map_.erase(event->id);
    return event;
  }
  return nullptr;
}

void Simulator::FoldDigest(const Event& event) {
  // Boost-style hash fold over (when, id); order-sensitive by design.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  digest_ = mix(digest_, static_cast<std::uint64_t>(event.when));
  digest_ = mix(digest_, event.id);
}

bool Simulator::Step() {
  auto event = PopNext();
  if (!event) return false;
  MUX_CHECK(event->when >= now_);
  now_ = event->when;
  MUX_CHECK(live_events_ > 0);
  --live_events_;
  ++executed_;
  FoldDigest(*event);
  event->callback();
  return true;
}

std::size_t Simulator::Run() {
  std::size_t n = 0;
  while (Step()) ++n;
  return n;
}

std::size_t Simulator::RunUntil(Time until) {
  MUX_CHECK(until >= now_);
  std::size_t n = 0;
  while (true) {
    auto event = PopNext();
    if (!event) break;
    if (event->when > until) {
      // Reinsert: it stays pending for a later RunUntil/Run call.
      index_map_[event->id] = event;
      queue_.push(std::move(event));
      break;
    }
    now_ = event->when;
    MUX_CHECK(live_events_ > 0);
    --live_events_;
    ++executed_;
    ++n;
    FoldDigest(*event);
    event->callback();
  }
  now_ = until;
  return n;
}

std::size_t Simulator::RunUntil(Time until, std::size_t max_events) {
  MUX_CHECK(until >= now_);
  std::size_t n = 0;
  while (n < max_events) {
    auto event = PopNext();
    if (!event) {
      now_ = until;
      return n;
    }
    if (event->when > until) {
      // Reinsert: it stays pending for a later RunUntil/Run call.
      index_map_[event->id] = event;
      queue_.push(std::move(event));
      now_ = until;
      return n;
    }
    now_ = event->when;
    MUX_CHECK(live_events_ > 0);
    --live_events_;
    ++executed_;
    ++n;
    FoldDigest(*event);
    event->callback();
  }
  // Budget exhausted mid-stream: Now() stays at the last event's time so
  // the caller can see where the scenario stalled.
  return n;
}

void Simulator::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "Simulator", "event-queue-consistency",
      [this](check::AuditContext& ctx) {
        // Every pending (non-cancelled) event holds an index entry;
        // entries self-remove on fire and on Cancel().
        std::size_t live = 0;
        Time min_when = kTimeNever;
        for (const auto& [id, weak] : index_map_) {
          auto event = weak.lock();
          if (!ctx.Check(event != nullptr,
                         "index entry " + std::to_string(id) +
                             " outlived its event")) {
            continue;
          }
          if (event->cancelled) continue;
          ++live;
          min_when = std::min(min_when, event->when);
        }
        ctx.Check(live == live_events_,
                  "live-event count " + std::to_string(live_events_) +
                      " disagrees with index scan " + std::to_string(live));
        if (live > 0) {
          ctx.Check(min_when >= now_,
                    "pending event at t=" + std::to_string(min_when) +
                        " precedes Now()=" + std::to_string(now_));
        }
      });
  registry.Register("Simulator", "time-monotonic",
                    [this](check::AuditContext& ctx) {
                      ctx.Check(now_ >= kTimeZero,
                                "Now()=" + std::to_string(now_) +
                                    " ran backwards past simulation start");
                    });
}

}  // namespace muxwise::sim
