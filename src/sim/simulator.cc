#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace muxwise::sim {

namespace {

/** Mixes a 64-bit key (splitmix64 finalizer) for the id index. */
std::uint64_t HashId(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

// --- IdIndex ---------------------------------------------------------------

void Simulator::IdIndex::Grow() {
  const std::size_t capacity = cells_.empty() ? 64 : cells_.size() * 2;
  std::vector<Cell> old = std::move(cells_);
  cells_.assign(capacity, Cell{});
  const std::size_t mask = capacity - 1;
  for (const Cell& cell : old) {
    if (cell.id == kInvalidEventId) continue;
    std::size_t i = HashId(cell.id) & mask;
    while (cells_[i].id != kInvalidEventId) i = (i + 1) & mask;
    cells_[i] = cell;
  }
}

void Simulator::IdIndex::Insert(EventId id, std::uint32_t slot) {
  // Keep the load factor under 3/4 so probe chains stay short.
  if (cells_.empty() || (size_ + 1) * 4 >= cells_.size() * 3) Grow();
  const std::size_t mask = cells_.size() - 1;
  std::size_t i = HashId(id) & mask;
  while (cells_[i].id != kInvalidEventId) i = (i + 1) & mask;
  cells_[i].id = id;
  cells_[i].slot = slot;
  ++size_;
}

bool Simulator::IdIndex::Erase(EventId id, std::uint32_t* slot) {
  if (size_ == 0) return false;
  const std::size_t mask = cells_.size() - 1;
  std::size_t i = HashId(id) & mask;
  while (cells_[i].id != id) {
    if (cells_[i].id == kInvalidEventId) return false;
    i = (i + 1) & mask;
  }
  *slot = cells_[i].slot;
  --size_;
  // Backward-shift deletion: close the probe chain without tombstones.
  std::size_t hole = i;
  std::size_t probe = i;
  while (true) {
    probe = (probe + 1) & mask;
    if (cells_[probe].id == kInvalidEventId) break;
    const std::size_t home = HashId(cells_[probe].id) & mask;
    // `probe`'s entry may fill the hole iff its home position does not
    // lie in the (cyclic) open interval (hole, probe].
    const bool movable = hole <= probe ? (home <= hole || home > probe)
                                       : (home <= hole && home > probe);
    if (movable) {
      cells_[hole] = cells_[probe];
      hole = probe;
    }
  }
  cells_[hole] = Cell{};
  return true;
}

// --- Event arena -----------------------------------------------------------

std::uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    return slot;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size()) - 1;
}

void Simulator::FreeSlot(std::uint32_t slot) {
  Event& event = pool_[slot];
  event.id = kInvalidEventId;
  event.callback = nullptr;
  event.next_free = free_head_;
  free_head_ = slot;
}

// --- Binary heap -----------------------------------------------------------

void Simulator::HeapPush(const HeapEntry& entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::HeapPopTop() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t least =
        (right < n && Before(heap_[right], heap_[left])) ? right : left;
    if (!Before(heap_[least], heap_[i])) break;
    std::swap(heap_[i], heap_[least]);
    i = least;
  }
}

const Simulator::HeapEntry* Simulator::PeekLive() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_[0];
    // A cancelled event freed its slot; the slot's id no longer matches
    // (freed, or already recycled by a newer event), marking the entry
    // as a tombstone.
    if (pool_[top.slot].id == top.id) return &top;
    HeapPopTop();
  }
  return nullptr;
}

// --- Scheduling API --------------------------------------------------------

EventId Simulator::ScheduleAt(Time when, Callback cb) {
  MUX_CHECK(when >= now_);
  MUX_CHECK(cb != nullptr);
  const std::uint32_t slot = AllocSlot();
  Event& event = pool_[slot];
  event.when = when;
  event.id = next_id_++;
  event.callback = std::move(cb);
  index_.Insert(event.id, slot);
  HeapPush(HeapEntry{when, event.id, slot});
  ++live_events_;
  return event.id;
}

EventId Simulator::ScheduleAfter(Duration delay, Callback cb) {
  MUX_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  std::uint32_t slot = 0;
  if (!index_.Erase(id, &slot)) return false;
  MUX_CHECK(pool_[slot].id == id);
  // Freeing the slot releases the callback now and implicitly turns the
  // heap entry into a tombstone discarded on its way to the top.
  FreeSlot(slot);
  MUX_CHECK(live_events_ > 0);
  --live_events_;
  return true;
}

void Simulator::FoldDigest(Time when, EventId id) {
  // Boost-style hash fold over (when, id); order-sensitive by design.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  digest_ = mix(digest_, static_cast<std::uint64_t>(when));
  digest_ = mix(digest_, id);
}

void Simulator::ExecuteTop() {
  const HeapEntry entry = heap_[0];
  HeapPopTop();
  Event& event = pool_[entry.slot];
  MUX_CHECK(event.when >= now_);
  now_ = event.when;
  // Detach the callback and release the slot *before* invoking, so the
  // callback can schedule (possibly reusing this slot) or cancel freely.
  Callback callback = std::move(event.callback);
  std::uint32_t indexed_slot = 0;
  const bool indexed = index_.Erase(entry.id, &indexed_slot);
  MUX_CHECK(indexed);
  FreeSlot(entry.slot);
  MUX_CHECK(live_events_ > 0);
  --live_events_;
  ++executed_;
  FoldDigest(entry.when, entry.id);
  if (log_ != nullptr) log_->push_back(ExecutedEvent{entry.when, entry.id});
  callback();
}

bool Simulator::Step() {
  if (PeekLive() == nullptr) return false;
  ExecuteTop();
  return true;
}

std::size_t Simulator::Run() {
  std::size_t n = 0;
  while (Step()) ++n;
  return n;
}

std::size_t Simulator::RunUntil(Time until) {
  MUX_CHECK(until >= now_);
  std::size_t n = 0;
  while (true) {
    const HeapEntry* top = PeekLive();
    if (top == nullptr || top->when > until) break;
    ExecuteTop();
    ++n;
  }
  now_ = until;
  return n;
}

std::size_t Simulator::RunUntil(Time until, std::size_t max_events) {
  MUX_CHECK(until >= now_);
  std::size_t n = 0;
  while (n < max_events) {
    const HeapEntry* top = PeekLive();
    if (top == nullptr || top->when > until) {
      now_ = until;
      return n;
    }
    ExecuteTop();
    ++n;
  }
  // Budget exhausted mid-stream: Now() stays at the last event's time so
  // the caller can see where the scenario stalled.
  return n;
}

std::size_t Simulator::RunBefore(Time until, std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events) {
    const HeapEntry* top = PeekLive();
    if (top == nullptr || top->when >= until) break;
    ExecuteTop();
    ++n;
  }
  return n;
}

void Simulator::AdvanceTo(Time t) {
  MUX_CHECK(t >= now_);
  const HeapEntry* top = PeekLive();
  MUX_CHECK(top == nullptr || top->when >= t);
  now_ = t;
}

Time Simulator::NextEventTime() {
  const HeapEntry* top = PeekLive();
  return top == nullptr ? kTimeNever : top->when;
}

void Simulator::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "Simulator", "event-queue-consistency",
      [this](check::AuditContext& ctx) {
        // Every live event owns exactly one arena slot (cancelled events
        // free their slot immediately), and the cancellation index holds
        // exactly the live ids.
        std::size_t live = 0;
        Time min_when = kTimeNever;
        for (const Event& event : pool_) {
          if (event.id == kInvalidEventId) continue;
          ++live;
          min_when = std::min(min_when, event.when);
          ctx.Check(event.callback != nullptr,
                    "live event " + std::to_string(event.id) +
                        " lost its callback");
        }
        ctx.Check(live == live_events_,
                  "live-event count " + std::to_string(live_events_) +
                      " disagrees with arena scan " + std::to_string(live));
        ctx.Check(index_.size() == live_events_,
                  "cancellation index holds " + std::to_string(index_.size()) +
                      " ids for " + std::to_string(live_events_) +
                      " live events");
        if (live > 0) {
          ctx.Check(min_when >= now_,
                    "pending event at t=" + std::to_string(min_when) +
                        " precedes Now()=" + std::to_string(now_));
        }
      });
  registry.Register("Simulator", "time-monotonic",
                    [this](check::AuditContext& ctx) {
                      ctx.Check(now_ >= kTimeZero,
                                "Now()=" + std::to_string(now_) +
                                    " ran backwards past simulation start");
                    });
}

}  // namespace muxwise::sim
