#ifndef MUXWISE_SIM_CHANNEL_H_
#define MUXWISE_SIM_CHANNEL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "sim/rng.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "sim/time.h"

/**
 * Shard-boundary annotations, read by tools/muxlint's shard-safety pass.
 *
 * The parallel-simulation roadmap (ROADMAP item 2) partitions the event
 * loop by GPU instance. That is only safe if every cross-instance
 * interaction flows through an explicit sim::Channel, because a channel
 * crossing is where a sharded kernel inserts its synchronisation point.
 * The macros expand to nothing at compile time; they exist so the
 * analyzer can tell blessed cross-shard surfaces from accidental ones:
 *
 *  - MUX_SHARD_LOCAL marks a function that touches at most one GPU
 *    instance. muxlint flags it if it ever references two.
 *  - MUX_CHANNEL_ENTRY marks a deliberate cross-shard entry point — a
 *    function allowed to touch several instances because it *is* the
 *    channel discipline (constructors wiring a cluster, fault injection
 *    fan-out, channel completion handlers).
 *
 * Any unannotated function in src/core or src/baselines that references
 * two distinct instances is a muxlint `shard-safety` finding.
 */
#define MUX_SHARD_LOCAL
#define MUX_CHANNEL_ENTRY

namespace muxwise::sim {

/**
 * The one conduit for cross-instance interactions: interconnect
 * transfers (KV migration, spill/restore over host links), and
 * cluster-level control callbacks between shards.
 *
 * Clocked transfers model a FIFO point-to-point wire: transfers queue
 * behind each other; duration is latency + bytes / bandwidth. The idle
 * marker is clamped to Now() at enqueue time, so a transfer issued long
 * after the link went idle starts immediately instead of inheriting
 * stale serialization state, and bytes/completion counters advance only
 * when the bytes actually land (never at enqueue).
 *
 * Control deliveries (`Deliver`) are same-tick hand-offs between
 * shards: they run inline today — the simulator is single-threaded, so
 * routing them through the channel changes no event ordering and no
 * digest — but they are counted, named, and statically enforceable,
 * which is exactly the surface a sharded event loop later turns into a
 * bounded-lookahead queue crossing.
 *
 * With EnableFaults() armed, each transfer attempt may be lost with the
 * model's probability (drawn from a seeded sim::Rng — deterministic).
 * Lost attempts retry with exponential backoff, re-occupying the wire,
 * up to max_attempts; after that the transfer permanently fails and the
 * caller's `failed` callback fires instead of `done`.
 */
class Channel {
 public:
  /** Deterministic per-attempt failure model for an armed channel. */
  struct FaultModel {
    /** Per-attempt loss probability; retuned live by the injector. */
    double failure_probability = 0.0;

    /** Total attempts per transfer (first try included), >= 1. */
    int max_attempts = 4;

    /**
     * Backoff before attempt k+1: initial_backoff * 2^(k-1), uncapped
     * (computed via the shared sim::BackoffDelay helper).
     */
    Duration initial_backoff = Milliseconds(2);
  };

  /** A clocked channel: FIFO wire with the given delay model. */
  Channel(Simulator* simulator, std::string name,
          double bandwidth_bytes_per_s, Duration latency);

  /**
   * A control-only channel (no wire model). Deliver() works; calling
   * Transfer() on it is a fatal error.
   */
  Channel(Simulator* simulator, std::string name);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const std::string& name() const { return name_; }

  /**
   * Arms the channel's failure model with a seeded stream. Unarmed
   * channels (the default) draw no randomness and schedule no retry
   * events, so fault-free runs stay bit-identical to a build without
   * this feature.
   */
  void EnableFaults(FaultModel model, Rng rng);

  /** Retunes the armed per-attempt loss probability (fault windows). */
  void SetFailureProbability(double p);

  /**
   * Link flap: while down, every transfer attempt is deterministically
   * lost (no randomness drawn, so an armed fault stream is unperturbed)
   * after occupying the wire — retries back off as usual and a transfer
   * whose attempts all land inside the down phase permanently fails.
   * Works on unarmed channels; up (the default) is digest-neutral.
   */
  void SetLinkUp(bool up) { link_up_ = up; }
  bool link_up() const { return link_up_; }

  /**
   * Silent degradation: wire time uses bandwidth * scale, scale in
   * (0, 1]. 1.0 (the default) is bit-neutral — multiplying a double by
   * 1.0 is exact.
   */
  void SetBandwidthScale(double scale);
  double bandwidth_scale() const { return bandwidth_scale_; }

  /**
   * Enqueues a clocked transfer; `done` fires when the bytes have
   * landed. If the armed fault model exhausts its attempts, `failed`
   * (when provided) fires instead — the permanent-failure path.
   */
  void Transfer(double bytes, std::function<void()> done,
                std::function<void()> failed = {});

  /**
   * Typed transfer: carries `payload` across the wire and hands it to
   * exactly one of the two receivers. The payload is owned by the
   * channel while in flight, so the sender can release its side
   * immediately — the shape a sharded kernel needs, since the receiving
   * shard must not reach back into sender state.
   */
  template <typename Payload>
  void Send(double bytes, Payload payload,
            std::function<void(Payload)> delivered,
            std::function<void(Payload)> failed = {}) {
    auto box = std::make_shared<Payload>(std::move(payload));
    Transfer(
        bytes,
        [box, delivered = std::move(delivered)] {
          if (delivered) delivered(std::move(*box));
        },
        [box, failed = std::move(failed)] {
          if (failed) failed(std::move(*box));
        });
  }

  /**
   * Same-tick cross-shard control delivery: runs `fn` immediately (the
   * simulator is single-threaded; no event is scheduled, so digests are
   * unchanged) while making the crossing explicit and counted. Every
   * cluster-level callback that hops between instances routes through
   * here rather than calling the other shard directly.
   */
  MUX_CHANNEL_ENTRY void Deliver(const std::function<void()>& fn) {
    ++deliveries_;
    if (fn) fn();
  }

  /** Total bytes that actually landed (retries count once, on success). */
  double bytes_transferred() const { return bytes_transferred_; }

  /** Number of completed transfers. */
  std::size_t transfers_completed() const { return transfers_completed_; }

  /** Attempts lost and retried (transient failures). */
  std::size_t attempts_failed() const { return attempts_failed_; }

  /** Transfers that exhausted their attempts (permanent failures). */
  std::size_t transfers_failed() const { return transfers_failed_; }

  /** Same-tick control deliveries routed through this channel. */
  std::size_t deliveries() const { return deliveries_; }

  /** The wire's fixed latency term (0 on control-only channels). */
  Duration latency() const { return latency_; }

  /**
   * Declares which shards this channel crosses — the partition-map
   * metadata a sharded kernel reads to derive its lookahead bound.
   * kNoShard on either side means "any shard" (a fabric link shared by
   * all instance pairs, or a host-tier endpoint outside the partition).
   * Annotation never changes behaviour on the sequential simulator.
   */
  void AnnotateShards(ShardId src_shard, ShardId dst_shard) {
    src_shard_ = src_shard;
    dst_shard_ = dst_shard;
    shard_annotated_ = true;
  }

  /** True once AnnotateShards has declared the crossing. */
  bool shard_annotated() const { return shard_annotated_; }
  ShardId src_shard() const { return src_shard_; }
  ShardId dst_shard() const { return dst_shard_; }

 private:
  /** Occupies the wire for one attempt and schedules its landing. */
  void StartAttempt(double bytes, int attempt, std::function<void()> done,
                    std::function<void()> failed);

  Simulator* sim_;
  std::string name_;
  double bandwidth_ = 0.0;  // 0 marks a control-only channel.
  double bandwidth_scale_ = 1.0;  // Degrade factor, (0, 1].
  bool link_up_ = true;           // Flap state; down loses every attempt.
  Duration latency_ = 0;
  Time free_at_ = 0;
  double bytes_transferred_ = 0.0;
  std::size_t transfers_completed_ = 0;
  std::size_t attempts_failed_ = 0;
  std::size_t transfers_failed_ = 0;
  std::size_t deliveries_ = 0;
  ShardId src_shard_ = kNoShard;
  ShardId dst_shard_ = kNoShard;
  bool shard_annotated_ = false;
  FaultModel fault_model_;
  std::optional<Rng> fault_rng_;
};

}  // namespace muxwise::sim

#endif  // MUXWISE_SIM_CHANNEL_H_
