#include "sim/backoff.h"

#include "sim/logging.h"

namespace muxwise::sim {

Duration BackoffDelay(const ExponentialBackoff& policy, int attempt) {
  MUX_CHECK(policy.initial >= 0);
  MUX_CHECK(policy.multiplier >= 1.0);
  Duration delay = policy.initial;
  if (delay >= policy.cap) return policy.cap;
  for (int i = 1; i < attempt; ++i) {
    // Doubling stays in integer arithmetic so the shared helper is
    // bit-identical to the retry loop it replaced in sim::Channel.
    const Duration next =
        policy.multiplier == 2.0
            ? delay * 2
            : static_cast<Duration>(static_cast<double>(delay) *
                                    policy.multiplier);
    if (next >= policy.cap || next < delay) return policy.cap;
    delay = next;
  }
  return delay;
}

}  // namespace muxwise::sim
