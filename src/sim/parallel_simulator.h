#ifndef MUXWISE_SIM_PARALLEL_SIMULATOR_H_
#define MUXWISE_SIM_PARALLEL_SIMULATOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "check/invariant_registry.h"
#include "sim/channel.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace muxwise::sim {

/**
 * Sharded discrete-event simulation kernel with conservative lookahead.
 *
 * The event space is partitioned into per-shard sim::Simulator
 * instances (one per GPU instance, by convention — see gpu::Cluster's
 * partition map), each keeping the PR 4 pooled arena + POD min-heap.
 * Shards only interact through ShardChannel crossings, whose declared
 * minimum latency L is the lookahead bound: if the globally earliest
 * pending event sits at time m, every shard can safely execute its
 * events in the window [m, m + L) in parallel, because any cross-shard
 * send issued at s >= m arrives at s + latency >= m + L — beyond the
 * window. At the window barrier the coordinator drains every mailbox
 * in deterministic (arrival time, sender shard, per-sender sequence)
 * order and merges the per-shard execution logs into one global event
 * stream ordered by (when, GlobalEventId). The merged stream — and its
 * digest — is therefore a pure function of the scenario, identical at
 * every thread count.
 *
 * Determinism argument, in three pieces:
 *  1. Each shard's execution within a window is the sequential
 *     Simulator algorithm — deterministic in isolation, and window
 *     boundaries never reorder a shard's own events.
 *  2. Mailbox drains happen only at barriers, on the coordinator, in a
 *     total order independent of which thread ran which shard.
 *  3. The merged digest folds the (when, GlobalEventId)-sorted
 *     interleaving, which windows already emit in globally sorted
 *     order (window i+1 starts at or after window i's end).
 *
 * A single-shard ParallelSimulator collapses to the sequential fast
 * path: no windows, no barriers, no mailboxes — calls delegate to the
 * one underlying Simulator (hosted on a worker thread when threads > 1,
 * which preserves the algorithm and digest bit-for-bit while proving
 * shard confinement under TSan), and EventDigest() is that shard's
 * digest exactly.
 *
 * Threading contract: the public API is coordinator-only (call it from
 * one thread, as with Simulator). Worker threads exist solely to
 * execute window slices; all cross-thread hand-off is mutex/condvar
 * ordered, so TSan-instrumented runs are clean by construction.
 */
class ParallelSimulator {
 public:
  struct Options {
    /** Number of event-loop shards (>= 1). */
    std::size_t shards = 1;

    /**
     * Worker threads for window execution, clamped to the shard count.
     * 1 runs shards inline on the coordinator in shard order — the
     * reference interleaving every other thread count must reproduce.
     */
    int threads = 1;

    /**
     * Declared conservative lookahead. 0 (the default) derives the
     * window bound from the minimum registered ShardChannel latency;
     * a positive value pins it, and registering a channel faster than
     * the declaration is then a fatal configuration error.
     */
    Duration lookahead = 0;
  };

  explicit ParallelSimulator(Options options);
  ~ParallelSimulator();

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  /** The shard-local simulator; schedule intra-shard events directly. */
  Simulator& shard(ShardId s);
  const Simulator& shard(ShardId s) const;

  std::size_t num_shards() const { return shards_.size(); }
  int threads() const { return options_.threads; }

  /** True when single-shard: no windows, no barriers, no mailboxes. */
  bool sequential_fast_path() const { return shards_.size() == 1; }

  /**
   * The conservative window bound: the declared lookahead when pinned,
   * else the minimum registered ShardChannel latency (kTimeNever with
   * no channels — independent shards, one unbounded window).
   */
  Duration Lookahead() const;

  /** Barrier time of the latest completed window (or run horizon). */
  Time Now() const { return now_; }

  /** Runs until every shard and every mailbox drains. */
  std::size_t Run();

  /**
   * Runs all events with timestamp <= `until` across all shards, then
   * aligns every shard clock (and Now()) to `until` — the parallel
   * equivalent of Simulator::RunUntil.
   */
  std::size_t RunUntil(Time until);

  /**
   * Like RunUntil, with a livelock budget. The budget is re-checked at
   * window barriers, and each shard's window slice is individually
   * capped by the remainder, so a run may overshoot `max_events` by up
   * to one window — deterministically. When the budget cuts the run
   * short, shard clocks stay at their last executed event.
   */
  std::size_t RunUntil(Time until, std::size_t max_events);

  /**
   * Executes the globally earliest pending event — minimum (when,
   * GlobalEventId) across shards. Steps replay the window protocol one
   * event at a time: mailboxes drain exactly where RunWindows would
   * place the barrier, so a run driven entirely by Step() produces the
   * same merged stream — and digest — as a batched Run().
   */
  bool Step();

  /** True when every shard is drained and no mailbox holds a message. */
  bool Empty() const;

  /** Pending events across shards, staged mailbox messages included. */
  std::size_t PendingEvents() const;

  /** Total events executed across all shards. */
  std::size_t ExecutedEvents() const;

  /**
   * Order-sensitive digest of the merged event stream. Single-shard:
   * the underlying Simulator's digest, bit-for-bit. Multi-shard: the
   * same fold over the (when, GlobalEventId)-merged stream — identical
   * at every thread count.
   */
  std::uint64_t EventDigest() const;

  /** Lookahead windows executed (0 on the sequential fast path). */
  std::size_t windows_executed() const { return windows_; }

  /** Cross-shard messages posted through registered channels. */
  std::size_t cross_shard_posts() const;

  /**
   * Registers every shard's event-queue audits plus the kernel's own:
   * staged messages never precede their destination clock, and the
   * merged stream accounts for every executed event.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

 private:
  friend class ShardChannel;

  /** Validates and adopts a channel (called from its constructor). */
  void RegisterChannel(ShardChannel* channel);

  /** Stages one cross-shard send into the channel's mailbox. */
  void StageSend(ShardChannel* channel, Duration extra_delay,
                 std::function<void()> fn);

  /** Drains all mailboxes into destination shards, in global order. */
  void DrainMailboxes();

  /** Runs one window [*, w_end) on every shard, budget per shard. */
  void ExecuteWindow(Time w_end, std::size_t budget);

  /** Executes shard `s`'s slice of the current window. */
  void RunShardSlice(ShardId s, Time w_end, std::size_t budget);

  /** Merges per-shard execution logs into the global digest. */
  void MergeExecutionLogs();

  /** The multi-shard window loop shared by Run / RunUntil. */
  std::size_t RunWindows(Time until, std::size_t max_events);

  /** Earliest pending event time across all shards (mailboxes aside). */
  Time NextGlobalEventTime() const;

  /** Runs `fn` with shard 0 current (on the worker when threaded). */
  std::size_t RunOnShardZero(const std::function<std::size_t()>& fn);

  void EnsureWorkers(int count);
  void RunOnWorkers(const std::function<void(int)>& job);
  void WorkerLoop(int worker_id, std::uint64_t seen_generation);
  void StopWorkers();

  Time MaxShardNow() const;

  Options options_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::vector<Simulator::ExecutedEvent>> logs_;
  std::vector<std::uint64_t> send_seq_;
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> cursors_;
  std::vector<ShardChannel*> channels_;
  Time now_ = kTimeZero;
  std::uint64_t merged_digest_ = 0x9e3779b97f4a7c15ULL;
  std::size_t merged_events_ = 0;
  std::size_t windows_ = 0;

  // Step()'s replay of the window protocol: the current window's end
  // bound. A step whose earliest event reaches it fires the barrier
  // (mailbox drain + fresh lookahead window) first, matching where
  // RunWindows drains — kTimeZero forces a barrier on the next step.
  Time step_window_end_ = kTimeZero;

  // Worker pool: generation-stamped jobs under one mutex. Workers are
  // spawned lazily on the first threaded run and joined on destruction.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::function<void(int)> job_;
  std::uint64_t generation_ = 0;
  int pending_workers_ = 0;
  bool stop_ = false;
};

}  // namespace muxwise::sim

#endif  // MUXWISE_SIM_PARALLEL_SIMULATOR_H_
