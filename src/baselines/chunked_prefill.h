#ifndef MUXWISE_BASELINES_CHUNKED_PREFILL_H_
#define MUXWISE_BASELINES_CHUNKED_PREFILL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "fault/fault_aware.h"
#include "fault/recovery.h"
#include "gpu/cluster.h"
#include "kv/kv_pool.h"
#include "llm/cost_model.h"
#include "serve/deployment.h"
#include "serve/engine.h"
#include "sim/simulator.h"

namespace muxwise::baselines {

/**
 * SARATHI-style chunked prefill on an aggregated instance (paper §2.3.2):
 * prefill is split into chunks capped by a token budget and fused with
 * the running decode batch, one iteration at a time, on the full device.
 *
 * With `Options::nano_overlap` the engine becomes the NanoFlow baseline:
 * every fused iteration is split into nano-batches executed on two
 * concurrent streams, improving intra-iteration compute/memory overlap
 * at the price of duplicated weight streaming per nano-batch and
 * unmanaged contention between the streams (paper §4.2.1).
 *
 * Failure recovery (when Options::recovery is enabled): the single
 * instance is fault domain 0. A crash aborts the in-flight iteration,
 * drops the KV pool, and re-enqueues every admitted request at the head
 * of the waiting queue for recomputation; admission sheds new work when
 * queued demand exceeds the policy factor of pool capacity; waiting
 * requests whose SLO-derived deadline passes are abandoned.
 */
class ChunkedPrefillEngine : public fault::FaultAwareEngine {
 public:
  struct Options {
    /** SARATHI token budget: chunk tokens + decode batch size. */
    int token_budget = 256;

    /** Cap on the decode batch size. */
    int max_decode_batch = 256;

    /** NanoFlow mode. */
    bool nano_overlap = false;
    int nano_batches = 2;

    /** Failure recovery; disabled by default (fault-free runs). */
    fault::RecoveryPolicy recovery;
  };

  ChunkedPrefillEngine(sim::Simulator* simulator,
                       const serve::Deployment& deployment, Options options);
  ~ChunkedPrefillEngine() override;

  const char* name() const override {
    return options_.nano_overlap ? "NanoFlow" : "Chunked";
  }
  void Enqueue(std::unique_ptr<serve::Request> request) override;
  std::size_t InFlight() const override { return in_flight_; }
  void RegisterAudits(check::InvariantRegistry& registry) const override;

  void InjectCrash(std::size_t domain) override;
  void InjectRecovery(std::size_t domain) override;
  void InjectStraggler(std::size_t domain, double slowdown) override;

  /**
   * Forwards the tracer to the device ("gpu/") and pool ("kv"); fused
   * iterations become "iteration" spans on "engine/iteration".
   */
  void AttachTracer(obs::Tracer tracer) override;

  /**
   * Offline token-budget tuning following SARATHI-Serve: the largest
   * budget whose fused iteration (with a representative decode batch of
   * `decode_batch` sequences at `decode_context` tokens and the chunk
   * attending `chunk_context` cached tokens) still meets `tbt_target`.
   */
  static int TuneTokenBudget(const serve::Deployment& deployment,
                             sim::Duration tbt_target, int decode_batch = 32,
                             std::int64_t decode_context = 1024,
                             std::int64_t chunk_context = 1024);

  const kv::KvPool& pool() const { return *pool_; }
  gpu::Gpu& device() { return *device_; }

  /** Completed fused iterations (diagnostics). */
  std::size_t iterations() const { return iterations_; }

 private:
  void PumpAdmissions();
  void MaybeStartIteration();
  void OnIterationDone();

  /** Deadline event: reaps request `id` if it is still waiting. */
  void OnDeadline(std::int64_t id);

  sim::Simulator* sim_;
  serve::Deployment deployment_;
  Options options_;

  std::unique_ptr<gpu::Gpu> device_;
  std::unique_ptr<gpu::HostThread> host_;
  std::unique_ptr<kv::KvPool> pool_;
  std::unique_ptr<llm::CostModel> cost_;

  gpu::StreamId stream_ = 0;
  gpu::StreamId nano_stream_ = 0;  // Second stream for NanoFlow overlap.

  std::deque<std::unique_ptr<serve::Request>> waiting_;
  std::deque<std::unique_ptr<serve::Request>> prefilling_;
  std::vector<std::unique_ptr<serve::Request>> decoding_;

  bool iteration_in_flight_ = false;
  int nano_outstanding_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t iterations_ = 0;

  /** KV demand (input + output tokens) of everything in waiting_. */
  std::int64_t waiting_demand_ = 0;

  // Chunks included in the in-flight iteration: (request, chunk tokens).
  std::vector<std::pair<serve::Request*, std::int64_t>> inflight_chunks_;
};

}  // namespace muxwise::baselines

#endif  // MUXWISE_BASELINES_CHUNKED_PREFILL_H_
