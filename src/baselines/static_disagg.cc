#include "baselines/static_disagg.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace muxwise::baselines {

struct StaticDisaggEngine::Job {
  std::unique_ptr<serve::Request> request;

  // Prefill-instance accounting.
  kv::KvPool::PrefixLease p_lease;
  std::int64_t p_reserved = 0;

  // Decode-instance accounting.
  kv::KvPool::PrefixLease d_lease;
  std::int64_t d_reserved = 0;
  std::int64_t d_cached = 0;
};

StaticDisaggEngine::StaticDisaggEngine(sim::Simulator* simulator,
                                       const serve::Deployment& deployment,
                                       Options options)
    : sim_(simulator), deployment_(deployment), options_(options) {
  MUX_CHECK(options_.prefill_tp + options_.decode_tp <= deployment_.num_gpus);
  cluster_ = std::make_unique<gpu::Cluster>(sim_, deployment_.gpu,
                                            deployment_.num_gpus);
  gpu::Instance& prefill = cluster_->AddInstance(options_.prefill_tp);
  gpu::Instance& decode = cluster_->AddInstance(options_.decode_tp);
  prefill_pool_ =
      std::make_unique<kv::KvPool>(deployment_.PoolTokens(options_.prefill_tp));
  decode_pool_ =
      std::make_unique<kv::KvPool>(deployment_.PoolTokens(options_.decode_tp));
  prefill_cost_ = std::make_unique<llm::CostModel>(
      deployment_.model, options_.prefill_tp, deployment_.gpu);
  decode_cost_ = std::make_unique<llm::CostModel>(
      deployment_.model, options_.decode_tp, deployment_.gpu);
  prefill_stream_ = prefill.device->CreateStream(deployment_.gpu.sm_count);
  decode_stream_ = decode.device->CreateStream(deployment_.gpu.sm_count);
}

StaticDisaggEngine::~StaticDisaggEngine() = default;

void StaticDisaggEngine::Enqueue(std::unique_ptr<serve::Request> request) {
  ++in_flight_;
  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  waiting_.push_back(std::move(job));
  PumpPrefill();
}

void StaticDisaggEngine::PumpPrefill() {
  if (prefill_in_flight_ || waiting_.empty()) return;

  // Pack a FIFO prefill batch within token/request limits, admitting
  // each member to the prefill pool.
  std::vector<llm::SeqWork> work;
  std::int64_t batch_tokens = 0;
  while (!waiting_.empty() &&
         static_cast<int>(prefill_batch_.size()) <
             options_.prefill_batch_requests &&
         batch_tokens < options_.prefill_batch_tokens) {
    Job& job = *waiting_.front();
    serve::Request& req = *job.request;
    kv::KvPool::PrefixLease lease =
        prefill_pool_->AcquirePrefix(req.spec->prompt, sim_->Now());
    const std::int64_t cached =
        std::min(lease.matched_tokens, req.spec->input_tokens - 1);
    const std::int64_t need = req.spec->input_tokens - cached;
    if (!prefill_pool_->TryReserve(need)) {
      prefill_pool_->ReleasePrefix(lease);
      break;
    }
    job.p_lease = lease;
    job.p_reserved = need;
    req.cached_tokens = cached;
    req.prefill_tokens = need;
    req.phase = serve::Phase::kPrefill;
    req.prefill_start = sim_->Now();
    work.push_back(llm::SeqWork{need, cached});
    batch_tokens += need;
    prefill_batch_.push_back(std::move(waiting_.front()));
    waiting_.pop_front();
  }
  if (prefill_batch_.empty()) return;

  prefill_in_flight_ = true;
  const gpu::Kernel kernel = prefill_cost_->PrefillPhase(work);
  gpu::Instance& instance = cluster_->instance(0);
  // Piecewise per-layer CUDA graphs, as in modern SGLang.
  const sim::Duration launch = prefill_cost_->PrefillLayerLaunch() *
                               deployment_.model.num_layers;
  instance.host->Submit(launch, [this, kernel] {
    cluster_->instance(0).device->Launch(prefill_stream_, kernel,
                                         [this] { OnPrefillBatchDone(); });
  });
}

void StaticDisaggEngine::OnPrefillBatchDone() {
  const sim::Time now = sim_->Now();
  std::vector<std::unique_ptr<Job>> finished_batch =
      std::move(prefill_batch_);
  prefill_batch_.clear();
  prefill_in_flight_ = false;

  std::vector<std::unique_ptr<serve::Request>> completed;
  for (auto& job : finished_batch) {
    serve::Request& req = *job->request;
    req.EmitToken(now);  // First token comes out of prefill.
    // Cache the prompt KV on the prefill instance for future turns.
    prefill_pool_->CommitSequence(req.spec->prompt, now);
    prefill_pool_->ReleaseReserved(job->p_reserved);
    job->p_reserved = 0;
    prefill_pool_->ReleasePrefix(job->p_lease);

    if (req.DecodeFinished()) {
      // Single-token output: completes without touching the decode side.
      req.phase = serve::Phase::kDone;
      req.completion = now;
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      completed.push_back(std::move(job->request));
      continue;
    }
    req.phase = serve::Phase::kDecode;
    migrating_.push_back(std::move(job));
  }
  for (auto& req : completed) NotifyComplete(std::move(req));
  TryMoveToDecode();
  PumpPrefill();
}

void StaticDisaggEngine::TryMoveToDecode() {
  while (!migrating_.empty() &&
         decoding_.size() < static_cast<std::size_t>(
                                options_.max_decode_batch)) {
    Job& job = *migrating_.front();
    serve::Request& req = *job.request;
    kv::KvPool::PrefixLease lease =
        decode_pool_->AcquirePrefix(req.spec->prompt, sim_->Now());
    // The decode instance needs the full prompt context resident.
    const std::int64_t cached = lease.matched_tokens;
    const std::int64_t need =
        (req.spec->input_tokens - cached) + req.spec->output_tokens;
    if (!decode_pool_->TryReserve(need)) {
      decode_pool_->ReleasePrefix(lease);
      break;
    }
    job.d_lease = lease;
    job.d_cached = cached;
    job.d_reserved = need;
    auto owned = std::move(migrating_.front());
    migrating_.pop_front();

    const double migrate_bytes =
        static_cast<double>(req.spec->input_tokens - cached) *
        deployment_.model.KvBytesPerToken();
    Job* raw = owned.get();
    decoding_.push_back(std::move(owned));
    cluster_->link().Transfer(migrate_bytes, [this, raw] {
      raw->request->progress = 1;  // Marker: KV landed, decodable.
      MaybeStartDecodeIteration();
    });
  }
}

void StaticDisaggEngine::MaybeStartDecodeIteration() {
  if (decode_in_flight_) return;
  std::vector<std::int64_t> ctx;
  for (const auto& job : decoding_) {
    if (job->request->progress == 1) {  // Migration complete.
      ctx.push_back(job->request->spec->input_tokens +
                    job->request->generated);
    }
  }
  if (ctx.empty()) return;
  decode_in_flight_ = true;
  const gpu::Kernel kernel = decode_cost_->DecodeIteration(ctx);
  cluster_->instance(1).host->Submit(
      decode_cost_->DecodeGraphLaunch(), [this, kernel] {
        cluster_->instance(1).device->Launch(
            decode_stream_, kernel, [this] { OnDecodeIterationDone(); });
      });
}

void StaticDisaggEngine::OnDecodeIterationDone() {
  decode_in_flight_ = false;
  const sim::Time now = sim_->Now();
  std::vector<std::unique_ptr<Job>> still;
  std::vector<std::unique_ptr<serve::Request>> completed;
  still.reserve(decoding_.size());
  for (auto& job : decoding_) {
    serve::Request& req = *job->request;
    if (req.progress != 1) {  // Still migrating; not part of the batch.
      still.push_back(std::move(job));
      continue;
    }
    req.EmitToken(now);
    if (req.DecodeFinished()) {
      Finish(job.get());
      completed.push_back(std::move(job->request));
    } else {
      still.push_back(std::move(job));
    }
  }
  decoding_ = std::move(still);
  for (auto& req : completed) NotifyComplete(std::move(req));
  TryMoveToDecode();
  MaybeStartDecodeIteration();
  PumpPrefill();
}

void StaticDisaggEngine::Finish(Job* job) {
  const sim::Time now = sim_->Now();
  serve::Request& req = *job->request;
  req.phase = serve::Phase::kDone;
  req.completion = now;
  decode_pool_->ReleaseReserved(job->d_reserved);
  job->d_reserved = 0;
  decode_pool_->CommitSequence(req.spec->full_seq, now);
  decode_pool_->ReleasePrefix(job->d_lease);

  // Ship the generated KV back so the prefill instance can serve the
  // next turn of this session from cache.
  const double back_bytes = static_cast<double>(req.generated) *
                            deployment_.model.KvBytesPerToken();
  const kv::TokenSeq full = req.spec->full_seq;
  cluster_->link().Transfer(back_bytes, [this, full] {
    prefill_pool_->CommitSequence(full, sim_->Now());
  });

  MUX_CHECK(in_flight_ > 0);
  --in_flight_;
}

void StaticDisaggEngine::RegisterAudits(
    check::InvariantRegistry& registry) const {
  registry.Register(
      "StaticDisaggEngine", "quiescent-scheduler",
      [this](check::AuditContext& ctx) {
        ctx.Check(in_flight_ == 0, std::to_string(in_flight_) +
                                       " requests still in flight");
        ctx.Check(waiting_.empty(), "waiting queue not drained");
        ctx.Check(migrating_.empty(), "jobs stuck migrating P -> D");
        ctx.Check(decoding_.empty(), "decode batch not drained");
        ctx.Check(prefill_batch_.empty(), "prefill batch not drained");
        ctx.Check(!prefill_in_flight_ && !decode_in_flight_,
                  "phase iteration still outstanding");
      });
  prefill_pool_->RegisterAudits(registry);
  decode_pool_->RegisterAudits(registry);
  cluster_->RegisterAudits(registry);
}

}  // namespace muxwise::baselines
