#include "baselines/static_disagg.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace muxwise::baselines {

struct StaticDisaggEngine::Job {
  std::unique_ptr<serve::Request> request;

  // Prefill-instance accounting.
  kv::KvPool::PrefixLease p_lease;
  std::int64_t p_reserved = 0;

  // Decode-instance accounting.
  kv::KvPool::PrefixLease d_lease;
  std::int64_t d_reserved = 0;
  std::int64_t d_cached = 0;
};

MUX_CHANNEL_ENTRY
StaticDisaggEngine::StaticDisaggEngine(sim::Simulator* simulator,
                                       const serve::Deployment& deployment,
                                       Options options)
    : fault::FaultAwareEngine(simulator, deployment.slo, options.recovery),
      sim_(simulator),
      deployment_(deployment),
      options_(options) {
  MUX_CHECK(options_.prefill_tp + options_.decode_tp <= deployment_.num_gpus);
  cluster_ = std::make_unique<gpu::Cluster>(sim_, deployment_.gpu,
                                            deployment_.num_gpus);
  gpu::Instance& prefill = cluster_->AddInstance(options_.prefill_tp);
  gpu::Instance& decode = cluster_->AddInstance(options_.decode_tp);
  prefill_pool_ =
      std::make_unique<kv::KvPool>(deployment_.PoolTokens(options_.prefill_tp));
  decode_pool_ =
      std::make_unique<kv::KvPool>(deployment_.PoolTokens(options_.decode_tp));
  prefill_cost_ = std::make_unique<llm::CostModel>(
      deployment_.model, options_.prefill_tp, deployment_.gpu);
  decode_cost_ = std::make_unique<llm::CostModel>(
      deployment_.model, options_.decode_tp, deployment_.gpu);
  prefill_stream_ = prefill.device->CreateStream(deployment_.gpu.sm_count);
  decode_stream_ = decode.device->CreateStream(deployment_.gpu.sm_count);
}

StaticDisaggEngine::~StaticDisaggEngine() = default;

void StaticDisaggEngine::Enqueue(std::unique_ptr<serve::Request> request) {
  if (FaultsEnabled()) {
    if (ShedNow(waiting_demand_ + DemandTokens(*request),
                prefill_pool_->capacity_tokens())) {
      MarkTerminal(*request, serve::Outcome::kShed);
      NotifyComplete(std::move(request));
      return;
    }
    request->deadline = DeadlineFor(*request);
    sim_->ScheduleAt(request->deadline,
                     [this, id = request->spec->id] { OnDeadline(id); });
    waiting_demand_ += DemandTokens(*request);
  }
  ++in_flight_;
  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  waiting_.push_back(std::move(job));
  PumpPrefill();
}

void StaticDisaggEngine::OnDeadline(std::int64_t id) {
  // Reap from the queues that hold no instance state: waiting_ (never
  // admitted) and migrating_ (prefill accounting already released,
  // decode not yet acquired). Work holding KV runs to completion.
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if ((*it)->request->spec->id != id) continue;
    auto job = std::move(*it);
    waiting_.erase(it);
    waiting_demand_ -= DemandTokens(*job->request);
    MarkTerminal(*job->request, serve::Outcome::kTimedOut);
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    NotifyComplete(std::move(job->request));
    return;
  }
  for (auto it = migrating_.begin(); it != migrating_.end(); ++it) {
    if ((*it)->request->spec->id != id) continue;
    auto job = std::move(*it);
    migrating_.erase(it);
    MarkTerminal(*job->request, serve::Outcome::kTimedOut);
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    NotifyComplete(std::move(job->request));
    return;
  }
}

MUX_SHARD_LOCAL void StaticDisaggEngine::PumpPrefill() {
  if (DomainDown(0)) return;
  if (prefill_in_flight_ || waiting_.empty()) return;

  // Pack a FIFO prefill batch within token/request limits, admitting
  // each member to the prefill pool.
  std::vector<llm::SeqWork> work;
  std::int64_t batch_tokens = 0;
  while (!waiting_.empty() &&
         static_cast<int>(prefill_batch_.size()) <
             options_.prefill_batch_requests &&
         batch_tokens < options_.prefill_batch_tokens) {
    Job& job = *waiting_.front();
    serve::Request& req = *job.request;
    kv::KvPool::PrefixLease lease =
        prefill_pool_->AcquirePrefix(req.spec->prompt, sim_->Now());
    const std::int64_t cached =
        std::min(lease.matched_tokens, req.spec->input_tokens - 1);
    // A crash-retried request (generated > 0, KV lost) also recomputes
    // the tokens it had already emitted.
    const std::int64_t need =
        (req.spec->input_tokens - cached) + req.generated;
    if (!prefill_pool_->TryReserve(need)) {
      prefill_pool_->ReleasePrefix(lease);
      break;
    }
    job.p_lease = lease;
    job.p_reserved = need;
    req.cached_tokens = cached;
    req.prefill_tokens = need;
    req.phase = serve::Phase::kPrefill;
    req.prefill_start = sim_->Now();
    if (FaultsEnabled()) waiting_demand_ -= DemandTokens(req);
    work.push_back(llm::SeqWork{need, cached});
    batch_tokens += need;
    prefill_batch_.push_back(std::move(waiting_.front()));
    waiting_.pop_front();
  }
  if (prefill_batch_.empty()) return;

  prefill_in_flight_ = true;
  ++prefill_batch_serial_;
  tracer_.SpanBegin("engine/prefill", "prefill-chunk",
                    static_cast<std::int64_t>(prefill_batch_serial_),
                    static_cast<double>(work.size()));
  const gpu::Kernel kernel = prefill_cost_->PrefillPhase(work);
  gpu::Instance& instance = cluster_->instance(0);
  // Piecewise per-layer CUDA graphs, as in modern SGLang.
  const sim::Duration launch = prefill_cost_->PrefillLayerLaunch() *
                               deployment_.model.num_layers;
  // Uncancellable submission: a prefill crash bumps p_epoch_ so
  // callbacks from the dead generation fall through.
  instance.host->Submit(launch, [this, kernel, pe = p_epoch_] {
    if (pe != p_epoch_) return;
    cluster_->instance(0).device->Launch(prefill_stream_, kernel,
                                         [this, pe] {
                                           if (pe != p_epoch_) return;
                                           OnPrefillBatchDone();
                                         });
  });
}

void StaticDisaggEngine::OnPrefillBatchDone() {
  // One prefill batch in flight at a time: the live serial is the last.
  tracer_.SpanEnd("engine/prefill", "prefill-chunk",
                  static_cast<std::int64_t>(prefill_batch_serial_));
  const sim::Time now = sim_->Now();
  std::vector<std::unique_ptr<Job>> finished_batch =
      std::move(prefill_batch_);
  prefill_batch_.clear();
  prefill_in_flight_ = false;

  std::vector<std::unique_ptr<serve::Request>> completed;
  for (auto& job : finished_batch) {
    serve::Request& req = *job->request;
    req.EmitToken(now);  // First token comes out of prefill.
    // Cache the prompt KV on the prefill instance for future turns.
    prefill_pool_->CommitSequence(req.spec->prompt, now);
    prefill_pool_->ReleaseReserved(job->p_reserved);
    job->p_reserved = 0;
    prefill_pool_->ReleasePrefix(job->p_lease);

    if (req.DecodeFinished()) {
      // Single-token output: completes without touching the decode side.
      req.phase = serve::Phase::kDone;
      req.completion = now;
      req.outcome = serve::Outcome::kCompleted;
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      completed.push_back(std::move(job->request));
      continue;
    }
    req.phase = serve::Phase::kDecode;
    migrating_.push_back(std::move(job));
  }
  for (auto& req : completed) NotifyComplete(std::move(req));
  // Prefill-side completion hands off to the decode shard through the
  // cluster control channel; the same-tick delivery keeps the event
  // stream identical while making the shard crossing explicit.
  cluster_->control().Deliver([this] { TryMoveToDecode(); });
  PumpPrefill();
}

void StaticDisaggEngine::TryMoveToDecode() {
  if (DomainDown(1)) return;
  while (!migrating_.empty() &&
         decoding_.size() < static_cast<std::size_t>(
                                options_.max_decode_batch)) {
    Job& job = *migrating_.front();
    serve::Request& req = *job.request;
    kv::KvPool::PrefixLease lease =
        decode_pool_->AcquirePrefix(req.spec->prompt, sim_->Now());
    // The decode instance needs the full prompt context resident.
    const std::int64_t cached = lease.matched_tokens;
    const std::int64_t need =
        (req.spec->input_tokens - cached) + req.spec->output_tokens;
    if (!decode_pool_->TryReserve(need)) {
      decode_pool_->ReleasePrefix(lease);
      break;
    }
    job.d_lease = lease;
    job.d_cached = cached;
    job.d_reserved = need;
    auto owned = std::move(migrating_.front());
    migrating_.pop_front();

    const double migrate_bytes =
        static_cast<double>(req.spec->input_tokens + req.generated -
                            cached) *
        deployment_.model.KvBytesPerToken();
    // Identify the job by request id, not pointer: a crash on either
    // side can retire the job (and even readmit the same request) while
    // the transfer is in flight, so the callback re-resolves it and the
    // captured epochs fence off dead generations.
    const std::int64_t id = req.spec->id;
    decoding_.push_back(std::move(owned));
    cluster_->link().Send<std::int64_t>(
        migrate_bytes, id,
        [this, pe = p_epoch_, de = d_epoch_](std::int64_t moved_id) {
          if (pe != p_epoch_ || de != d_epoch_) return;
          for (auto& job : decoding_) {
            if (job->request->spec->id == moved_id) {
              job->request->progress = 1;  // Marker: KV landed, decodable.
              break;
            }
          }
          MaybeStartDecodeIteration();
        },
        [this, pe = p_epoch_, de = d_epoch_](std::int64_t moved_id) {
          if (pe != p_epoch_ || de != d_epoch_) return;
          OnMigrationFailed(moved_id);
        });
  }
}

void StaticDisaggEngine::OnMigrationFailed(std::int64_t id) {
  for (auto it = decoding_.begin(); it != decoding_.end(); ++it) {
    if ((*it)->request->spec->id != id) continue;
    auto job = std::move(*it);
    decoding_.erase(it);
    decode_pool_->ReleaseReserved(job->d_reserved);
    job->d_reserved = 0;
    decode_pool_->ReleasePrefix(job->d_lease);
    job->d_lease = {};
    job->d_cached = 0;
    std::vector<std::unique_ptr<Job>> lost;
    lost.push_back(std::move(job));
    RecycleLost(std::move(lost));
    return;
  }
}

MUX_SHARD_LOCAL void StaticDisaggEngine::MaybeStartDecodeIteration() {
  if (DomainDown(1)) return;
  if (decode_in_flight_) return;
  std::vector<std::int64_t> ctx;
  for (const auto& job : decoding_) {
    if (job->request->progress == 1) {  // Migration complete.
      ctx.push_back(job->request->spec->input_tokens +
                    job->request->generated);
    }
  }
  if (ctx.empty()) return;
  decode_in_flight_ = true;
  ++decode_step_serial_;
  tracer_.SpanBegin("engine/decode", "decode-step",
                    static_cast<std::int64_t>(decode_step_serial_),
                    static_cast<double>(ctx.size()));
  const gpu::Kernel kernel = decode_cost_->DecodeIteration(ctx);
  cluster_->instance(1).host->Submit(
      decode_cost_->DecodeGraphLaunch(), [this, kernel, de = d_epoch_] {
        if (de != d_epoch_) return;
        cluster_->instance(1).device->Launch(
            decode_stream_, kernel, [this, de] {
              if (de != d_epoch_) return;
              OnDecodeIterationDone();
            });
      });
}

void StaticDisaggEngine::OnDecodeIterationDone() {
  decode_in_flight_ = false;
  // One decode iteration in flight at a time: the live serial is the
  // last one started.
  tracer_.SpanEnd("engine/decode", "decode-step",
                  static_cast<std::int64_t>(decode_step_serial_));
  const sim::Time now = sim_->Now();
  std::vector<std::unique_ptr<Job>> still;
  std::vector<std::unique_ptr<serve::Request>> completed;
  still.reserve(decoding_.size());
  for (auto& job : decoding_) {
    serve::Request& req = *job->request;
    if (req.progress != 1) {  // Still migrating; not part of the batch.
      still.push_back(std::move(job));
      continue;
    }
    req.EmitToken(now);
    if (req.DecodeFinished()) {
      Finish(job.get());
      completed.push_back(std::move(job->request));
    } else {
      still.push_back(std::move(job));
    }
  }
  decoding_ = std::move(still);
  tracer_.Counter("engine/decode", "decode-pending",
                  static_cast<double>(decoding_.size()));
  for (auto& req : completed) NotifyComplete(std::move(req));
  TryMoveToDecode();
  MaybeStartDecodeIteration();
  // Decode-side drain may unblock prefill admission on the other
  // instance: a cross-shard notification, routed via the channel.
  cluster_->control().Deliver([this] { PumpPrefill(); });
}

void StaticDisaggEngine::Finish(Job* job) {
  const sim::Time now = sim_->Now();
  serve::Request& req = *job->request;
  req.phase = serve::Phase::kDone;
  req.completion = now;
  req.outcome = serve::Outcome::kCompleted;
  decode_pool_->ReleaseReserved(job->d_reserved);
  job->d_reserved = 0;
  decode_pool_->CommitSequence(req.spec->full_seq, now);
  decode_pool_->ReleasePrefix(job->d_lease);

  // Ship the generated KV back so the prefill instance can serve the
  // next turn of this session from cache.
  const double back_bytes = static_cast<double>(req.generated) *
                            deployment_.model.KvBytesPerToken();
  // Losing this warm-up (prefill crash, or the link giving up) only
  // costs a future cache hit, so the failure path is a no-op.
  cluster_->link().Send<kv::TokenSeq>(
      back_bytes, req.spec->full_seq,
      [this, pe = p_epoch_](kv::TokenSeq full) {
        if (pe != p_epoch_) return;
        prefill_pool_->CommitSequence(full, sim_->Now());
      });

  MUX_CHECK(in_flight_ > 0);
  --in_flight_;
}

void StaticDisaggEngine::RecycleLost(
    std::vector<std::unique_ptr<Job>> lost) {
  // Jobs arrive with their pool accounting already released; decide
  // retry vs. terminal, push retries back in age order, then notify.
  std::vector<std::unique_ptr<serve::Request>> dead;
  std::vector<std::unique_ptr<Job>> requeue;
  for (auto& job : lost) {
    serve::Request& req = *job->request;
    if (!PrepareRetry(req)) {
      MarkTerminal(req, serve::Outcome::kFailed);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      dead.push_back(std::move(job->request));
    } else if (DeadlinePassed(req)) {
      // Its deadline event fired while it was admitted; reap it now.
      MarkTerminal(req, serve::Outcome::kTimedOut);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      dead.push_back(std::move(job->request));
    } else {
      waiting_demand_ += DemandTokens(req);
      requeue.push_back(std::move(job));
    }
  }
  for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
    waiting_.push_front(std::move(*it));
  }
  for (auto& req : dead) NotifyComplete(std::move(req));
  PumpPrefill();
}

MUX_CHANNEL_ENTRY void StaticDisaggEngine::InjectCrash(std::size_t domain) {
  if (domain == 0) {
    MarkDown(0, true);
    ++p_epoch_;
    cluster_->instance(0).device->AbortAll();
    prefill_in_flight_ = false;

    // Lost to a prefill crash, oldest first: mid-migration requests
    // (their transfer source vanished), requests parked awaiting decode
    // admission (their KV lives only in the dead prefill cache), and
    // the aborted prefill batch.
    std::vector<std::unique_ptr<Job>> lost;
    std::vector<std::unique_ptr<Job>> keep;
    for (auto& job : decoding_) {
      if (job->request->progress == 0) {
        decode_pool_->ReleaseReserved(job->d_reserved);
        job->d_reserved = 0;
        decode_pool_->ReleasePrefix(job->d_lease);
        job->d_lease = {};
        job->d_cached = 0;
        lost.push_back(std::move(job));
      } else {
        keep.push_back(std::move(job));
      }
    }
    decoding_ = std::move(keep);
    for (auto& job : migrating_) lost.push_back(std::move(job));
    migrating_.clear();
    for (auto& job : prefill_batch_) {
      prefill_pool_->ReleaseReserved(job->p_reserved);
      job->p_reserved = 0;
      prefill_pool_->ReleasePrefix(job->p_lease);
      job->p_lease = {};
      lost.push_back(std::move(job));
    }
    prefill_batch_.clear();
    prefill_pool_->Clear();
    RecycleLost(std::move(lost));
    return;
  }
  if (domain == 1) {
    MarkDown(1, true);
    ++d_epoch_;
    cluster_->instance(1).device->AbortAll();
    decode_in_flight_ = false;

    // Every decoding request (migrated or mid-migration) lost its
    // decode-side KV; migrating_ jobs hold nothing on this instance and
    // simply wait for recovery (or their deadline).
    std::vector<std::unique_ptr<Job>> lost;
    for (auto& job : decoding_) {
      decode_pool_->ReleaseReserved(job->d_reserved);
      job->d_reserved = 0;
      decode_pool_->ReleasePrefix(job->d_lease);
      job->d_lease = {};
      job->d_cached = 0;
      job->request->progress = 0;
      lost.push_back(std::move(job));
    }
    decoding_.clear();
    decode_pool_->Clear();
    RecycleLost(std::move(lost));
    return;
  }
}

void StaticDisaggEngine::InjectRecovery(std::size_t domain) {
  if (domain == 0) {
    MarkDown(0, false);
    PumpPrefill();
  } else if (domain == 1) {
    MarkDown(1, false);
    TryMoveToDecode();
    MaybeStartDecodeIteration();
  }
}

MUX_SHARD_LOCAL void StaticDisaggEngine::InjectStraggler(std::size_t domain,
                                                          double slowdown) {
  if (domain >= cluster_->num_instances()) return;
  cluster_->instance(domain).device->SetSlowdown(slowdown);
}

MUX_CHANNEL_ENTRY void StaticDisaggEngine::AttachTracer(obs::Tracer tracer) {
  fault::FaultAwareEngine::AttachTracer(tracer);
  cluster_->instance(0).device->SetTracer(tracer, "gpu0/");
  cluster_->instance(1).device->SetTracer(tracer, "gpu1/");
  prefill_pool_->set_tracer(tracer, "kv/p");
  decode_pool_->set_tracer(tracer, "kv/d");
}

void StaticDisaggEngine::RegisterAudits(
    check::InvariantRegistry& registry) const {
  registry.Register(
      "StaticDisaggEngine", "quiescent-scheduler",
      [this](check::AuditContext& ctx) {
        ctx.Check(in_flight_ == 0, std::to_string(in_flight_) +
                                       " requests still in flight");
        ctx.Check(waiting_.empty(), "waiting queue not drained");
        ctx.Check(migrating_.empty(), "jobs stuck migrating P -> D");
        ctx.Check(decoding_.empty(), "decode batch not drained");
        ctx.Check(prefill_batch_.empty(), "prefill batch not drained");
        ctx.Check(!prefill_in_flight_ && !decode_in_flight_,
                  "phase iteration still outstanding");
        ctx.Check(waiting_demand_ == 0,
                  "queued-demand accounting leaked " +
                      std::to_string(waiting_demand_) + " tokens");
      });
  prefill_pool_->RegisterAudits(registry);
  decode_pool_->RegisterAudits(registry);
  cluster_->RegisterAudits(registry);
}

}  // namespace muxwise::baselines
