#include "baselines/loongserve.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "sim/logging.h"

namespace muxwise::baselines {

LoongServeEngine::LoongServeEngine(sim::Simulator* simulator,
                                   const serve::Deployment& deployment,
                                   Options options)
    : fault::FaultAwareEngine(simulator, deployment.slo, options.recovery),
      sim_(simulator),
      deployment_(deployment),
      options_(options) {
  const gpu::GpuSpec aggregate =
      deployment_.gpu.Aggregate(deployment_.num_gpus);
  device_ = std::make_unique<gpu::Gpu>(sim_, aggregate);
  host_ = std::make_unique<gpu::HostThread>(sim_);
  link_ = std::make_unique<sim::Channel>(
      sim_, "loongserve/reshard", deployment_.gpu.nvlink_bandwidth,
      sim::Microseconds(10));
  // Elastic re-sharding moves KV between whichever instance groups the
  // scale decision picks: an any-to-any crossing in the partition map.
  link_->AnnotateShards(sim::kNoShard, sim::kNoShard);
  cost_by_tp_.resize(static_cast<std::size_t>(deployment_.num_gpus) + 1);
  for (int k = 1; k <= deployment_.num_gpus; ++k) {
    cost_by_tp_[static_cast<std::size_t>(k)] = std::make_unique<llm::CostModel>(
        deployment_.model, k, deployment_.gpu);
  }
  pool_capacity_ = deployment_.PoolTokens(deployment_.num_gpus);
  decode_gpus_ = options_.min_decode_gpus;
  const int per_gpu_sms = deployment_.gpu.sm_count;
  prefill_stream_ = device_->CreateStream(
      (deployment_.num_gpus - decode_gpus_) * per_gpu_sms);
  decode_stream_ = device_->CreateStream(decode_gpus_ * per_gpu_sms);
}

LoongServeEngine::~LoongServeEngine() = default;

gpu::Kernel LoongServeEngine::GroupKernel(const gpu::Kernel& per_gpu,
                                          int k) const {
  gpu::Kernel kernel = per_gpu;
  kernel.flops *= k;  // Aggregate-device kernels carry group-total work.
  kernel.bytes *= k;
  return kernel;
}

void LoongServeEngine::Enqueue(std::unique_ptr<serve::Request> request) {
  if (FaultsEnabled()) {
    if (ShedNow(waiting_demand_ + DemandTokens(*request), pool_capacity_)) {
      MarkTerminal(*request, serve::Outcome::kShed);
      NotifyComplete(std::move(request));
      return;
    }
    request->deadline = DeadlineFor(*request);
    sim_->ScheduleAt(request->deadline,
                     [this, id = request->spec->id] { OnDeadline(id); });
    waiting_demand_ += DemandTokens(*request);
  }
  ++in_flight_;
  waiting_.push_back(std::move(request));
  PumpPrefill();
}

void LoongServeEngine::OnDeadline(std::int64_t id) {
  // Only waiting requests are reaped; admitted work runs to completion.
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if ((*it)->spec->id != id) continue;
    auto request = std::move(*it);
    waiting_.erase(it);
    waiting_demand_ -= DemandTokens(*request);
    MarkTerminal(*request, serve::Outcome::kTimedOut);
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    NotifyComplete(std::move(request));
    return;
  }
}

void LoongServeEngine::PumpPrefill() {
  if (DomainDown(0)) return;
  if (prefill_in_flight_ || waiting_.empty()) return;
  const int prefill_gpus = deployment_.num_gpus - decode_gpus_;
  if (prefill_gpus <= 0) return;

  std::vector<llm::SeqWork> work;
  std::int64_t batch_tokens = 0;
  while (!waiting_.empty() &&
         static_cast<int>(prefill_batch_.size()) <
             options_.prefill_batch_requests &&
         batch_tokens < options_.prefill_batch_tokens) {
    serve::Request& req = *waiting_.front();
    // No cross-request reuse: the whole input is recomputed each turn.
    const std::int64_t need =
        req.spec->input_tokens + req.spec->output_tokens;
    if (pool_used_ + need > pool_capacity_) break;
    pool_used_ += need;
    req.cached_tokens = 0;
    req.prefill_tokens = req.spec->input_tokens;
    req.reserved_tokens = need;
    req.phase = serve::Phase::kPrefill;
    req.prefill_start = sim_->Now();
    if (FaultsEnabled()) waiting_demand_ -= DemandTokens(req);
    work.push_back(llm::SeqWork{req.spec->input_tokens, 0});
    batch_tokens += req.spec->input_tokens;
    prefill_batch_.push_back(std::move(waiting_.front()));
    waiting_.pop_front();
  }
  if (prefill_batch_.empty()) return;

  prefill_in_flight_ = true;
  ++prefill_batch_serial_;
  tracer_.SpanBegin("engine/prefill", "prefill-chunk",
                    static_cast<std::int64_t>(prefill_batch_serial_),
                    static_cast<double>(work.size()));
  const llm::CostModel& cost =
      *cost_by_tp_[static_cast<std::size_t>(prefill_gpus)];
  gpu::Kernel kernel = GroupKernel(cost.PrefillPhase(work), prefill_gpus);
  device_->SetStreamSms(prefill_stream_,
                        prefill_gpus * deployment_.gpu.sm_count);
  const sim::Duration launch =
      cost.PrefillLayerLaunch() * deployment_.model.num_layers;
  // Uncancellable submissions: a crash bumps the epoch so callbacks
  // from the dead generation fall through.
  host_->Submit(launch, [this, kernel, e = epoch()] {
    if (e != epoch()) return;
    device_->Launch(prefill_stream_, kernel, [this, e] {
      if (e != epoch()) return;
      OnPrefillBatchDone();
    });
  });
}

void LoongServeEngine::OnPrefillBatchDone() {
  const sim::Time now = sim_->Now();
  prefill_in_flight_ = false;
  // One prefill batch in flight at a time: the live serial is the last.
  tracer_.SpanEnd("engine/prefill", "prefill-chunk",
                  static_cast<std::int64_t>(prefill_batch_serial_));
  // Detach the batch first: NotifyComplete can re-enter Enqueue, which
  // may start refilling prefill_batch_.
  std::vector<std::unique_ptr<serve::Request>> batch =
      std::move(prefill_batch_);
  prefill_batch_.clear();
  std::vector<std::unique_ptr<serve::Request>> completed;
  for (auto& req : batch) {
    req->EmitToken(now);
    if (req->DecodeFinished()) {
      req->phase = serve::Phase::kDone;
      req->completion = now;
      req->outcome = serve::Outcome::kCompleted;
      pool_used_ -= req->reserved_tokens;
      req->reserved_tokens = 0;
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      completed.push_back(std::move(req));
    } else {
      req->phase = serve::Phase::kDecode;
      decoding_.push_back(std::move(req));
    }
  }
  for (auto& req : completed) NotifyComplete(std::move(req));
  MaybeStartDecodeIteration();
  PumpPrefill();
}

int LoongServeEngine::ChooseDecodeGpus(
    const std::vector<std::int64_t>& ctx) const {
  for (int k = options_.min_decode_gpus; k <= deployment_.num_gpus; ++k) {
    const llm::CostModel& cost = *cost_by_tp_[static_cast<std::size_t>(k)];
    const gpu::Kernel kernel = GroupKernel(cost.DecodeIteration(ctx), k);
    const double seconds = device_->SoloDurationSeconds(
        kernel, k * deployment_.gpu.sm_count);
    const sim::Duration total = static_cast<sim::Duration>(seconds * 1e9) +
                                cost.DecodeGraphLaunch();
    if (total <= deployment_.slo.tbt) return k;
  }
  return deployment_.num_gpus;
}

void LoongServeEngine::MaybeStartDecodeIteration() {
  if (DomainDown(0)) return;
  if (decode_in_flight_ || resharding_ || decoding_.empty()) return;

  std::vector<std::int64_t> ctx;
  ctx.reserve(decoding_.size());
  std::int64_t total_ctx = 0;
  for (const auto& req : decoding_) {
    ctx.push_back(req->spec->input_tokens + req->generated);
    total_ctx += ctx.back();
  }

  const int wanted = ChooseDecodeGpus(ctx);
  if (wanted != decode_gpus_) {
    // Elastic re-sharding: move the proportional share of decode KV.
    const double moved_bytes =
        static_cast<double>(total_ctx) * deployment_.model.KvBytesPerToken() *
        std::abs(wanted - decode_gpus_) /
        static_cast<double>(deployment_.num_gpus);
    decode_gpus_ = wanted;
    device_->SetStreamSms(decode_stream_,
                          decode_gpus_ * deployment_.gpu.sm_count);
    const int prefill_gpus =
        std::max(1, deployment_.num_gpus - decode_gpus_);
    device_->SetStreamSms(prefill_stream_,
                          prefill_gpus * deployment_.gpu.sm_count);
    resharding_ = true;
    tracer_.Instant("partition", "reshard",
                    static_cast<std::int64_t>(++reshard_serial_),
                    static_cast<double>(decode_gpus_));
    // A permanently failed re-shard resolves the same way: the group
    // re-derives its sharding on the next iteration, so both outcomes
    // just release the stall (the failure already paid its retries).
    auto resume = [this, e = epoch()] {
      if (e != epoch()) return;
      resharding_ = false;
      MaybeStartDecodeIteration();
    };
    link_->Transfer(moved_bytes, resume, resume);
    return;
  }

  decode_in_flight_ = true;
  ++decode_step_serial_;
  tracer_.SpanBegin("engine/decode", "decode-step",
                    static_cast<std::int64_t>(decode_step_serial_),
                    static_cast<double>(ctx.size()));
  const llm::CostModel& cost =
      *cost_by_tp_[static_cast<std::size_t>(decode_gpus_)];
  const gpu::Kernel kernel =
      GroupKernel(cost.DecodeIteration(ctx), decode_gpus_);
  host_->Submit(cost.DecodeGraphLaunch(), [this, kernel, e = epoch()] {
    if (e != epoch()) return;
    device_->Launch(decode_stream_, kernel, [this, e] {
      if (e != epoch()) return;
      OnDecodeIterationDone();
    });
  });
}

void LoongServeEngine::OnDecodeIterationDone() {
  decode_in_flight_ = false;
  // One decode iteration in flight at a time: the live serial is the
  // last one started.
  tracer_.SpanEnd("engine/decode", "decode-step",
                  static_cast<std::int64_t>(decode_step_serial_));
  const sim::Time now = sim_->Now();
  std::vector<std::unique_ptr<serve::Request>> still;
  std::vector<std::unique_ptr<serve::Request>> completed;
  still.reserve(decoding_.size());
  for (auto& req : decoding_) {
    req->EmitToken(now);
    if (req->DecodeFinished()) {
      req->phase = serve::Phase::kDone;
      req->completion = now;
      req->outcome = serve::Outcome::kCompleted;
      // KV released immediately — the adaptivity/reuse trade-off.
      pool_used_ -= req->reserved_tokens;
      req->reserved_tokens = 0;
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      completed.push_back(std::move(req));
    } else {
      still.push_back(std::move(req));
    }
  }
  decoding_ = std::move(still);
  if (tracer_.enabled()) {
    tracer_.Counter("engine/decode", "decode-pending",
                    static_cast<double>(decoding_.size()));
    tracer_.Counter("kv", "used-tokens", static_cast<double>(pool_used_));
  }
  for (auto& req : completed) NotifyComplete(std::move(req));
  MaybeStartDecodeIteration();
  PumpPrefill();
}

void LoongServeEngine::InjectCrash(std::size_t domain) {
  if (domain != 0) return;
  MarkDown(0, true);
  BumpEpoch();  // Invalidate in-flight host/device/link callbacks.
  device_->AbortAll();
  prefill_in_flight_ = false;
  decode_in_flight_ = false;
  resharding_ = false;

  // Everything admitted lost its (sequence-parallel sharded) KV.
  std::vector<std::unique_ptr<serve::Request>> lost;
  for (auto& req : prefill_batch_) lost.push_back(std::move(req));
  prefill_batch_.clear();
  for (auto& req : decoding_) lost.push_back(std::move(req));
  decoding_.clear();

  std::vector<std::unique_ptr<serve::Request>> dead;
  std::vector<std::unique_ptr<serve::Request>> requeue;
  for (auto& req : lost) {
    pool_used_ -= req->reserved_tokens;
    req->reserved_tokens = 0;
    if (!PrepareRetry(*req)) {
      MarkTerminal(*req, serve::Outcome::kFailed);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      dead.push_back(std::move(req));
    } else if (DeadlinePassed(*req)) {
      MarkTerminal(*req, serve::Outcome::kTimedOut);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      dead.push_back(std::move(req));
    } else {
      waiting_demand_ += DemandTokens(*req);
      requeue.push_back(std::move(req));
    }
  }
  for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
    waiting_.push_front(std::move(*it));
  }
  for (auto& req : dead) NotifyComplete(std::move(req));
}

void LoongServeEngine::InjectRecovery(std::size_t domain) {
  if (domain != 0) return;
  MarkDown(0, false);
  PumpPrefill();
  MaybeStartDecodeIteration();
}

void LoongServeEngine::InjectStraggler(std::size_t domain, double slowdown) {
  if (domain != 0) return;
  device_->SetSlowdown(slowdown);
}

void LoongServeEngine::AttachTracer(obs::Tracer tracer) {
  fault::FaultAwareEngine::AttachTracer(tracer);
  device_->SetTracer(tracer, "gpu/");
}

void LoongServeEngine::RegisterAudits(
    check::InvariantRegistry& registry) const {
  registry.Register(
      "LoongServeEngine", "quiescent-scheduler",
      [this](check::AuditContext& ctx) {
        ctx.Check(in_flight_ == 0, std::to_string(in_flight_) +
                                       " requests still in flight");
        ctx.Check(waiting_.empty(), "waiting queue not drained");
        ctx.Check(prefill_batch_.empty(), "prefill batch not drained");
        ctx.Check(decoding_.empty(), "decode batch not drained");
        ctx.Check(!prefill_in_flight_ && !decode_in_flight_,
                  "phase iteration still outstanding");
        ctx.Check(waiting_demand_ == 0,
                  "queued-demand accounting leaked " +
                      std::to_string(waiting_demand_) + " tokens");
      });
  registry.Register(
      "LoongServeEngine", "token-pool", [this](check::AuditContext& ctx) {
        ctx.Check(pool_used_ >= 0, "negative pool usage");
        ctx.Check(pool_used_ <= pool_capacity_,
                  "pool used " + std::to_string(pool_used_) +
                      " exceeds capacity " + std::to_string(pool_capacity_));
        ctx.Check(pool_used_ == 0,
                  "leaked " + std::to_string(pool_used_) +
                      " pool tokens at quiescence");
      });
  device_->RegisterAudits(registry);
}

}  // namespace muxwise::baselines
