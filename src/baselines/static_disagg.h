#ifndef MUXWISE_BASELINES_STATIC_DISAGG_H_
#define MUXWISE_BASELINES_STATIC_DISAGG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "fault/fault_aware.h"
#include "fault/recovery.h"
#include "gpu/cluster.h"
#include "sim/channel.h"
#include "kv/kv_pool.h"
#include "llm/cost_model.h"
#include "serve/deployment.h"
#include "serve/engine.h"
#include "sim/simulator.h"

namespace muxwise::baselines {

/**
 * Static disaggregation in the style of SGLang-PD (paper §4.1): a
 * prefill instance and a decode instance, P:D = 1:1 with TP = 4 each on
 * an 8-GPU server. Unlike DistServe, KV caches are shared across phases
 * and requests: each instance keeps its own radix-tree pool, prompt KV
 * migrates P→D over NVLink after prefill, and generated KV is copied
 * back so the prefill instance can reuse full histories in later turns.
 *
 * Its structural costs, which the paper's evaluation surfaces: each
 * pool is roughly half the aggregated size (lower hit rate, Fig. 5),
 * and compute is statically split (idle decode GPUs during prefill
 * bursts and vice versa, Fig. 4-a).
 *
 * Failure recovery (when Options::recovery is enabled): the prefill
 * instance is fault domain 0 and the decode instance domain 1, failing
 * independently — the distinguishing hazard of static disaggregation.
 * A prefill crash loses the prefill cache, the in-flight batch, and
 * every migration in flight (the transfer source is gone); a decode
 * crash loses every decoding request, which re-enters the pipeline from
 * the top (usually cheap — the prefill cache still holds its prompt).
 * P->D migrations retry with backoff on transfer loss and re-enqueue
 * the request when the link gives up permanently. Each instance keeps
 * its own crash epoch so a fault on one side never invalidates the
 * other side's in-flight callbacks.
 */
class StaticDisaggEngine : public fault::FaultAwareEngine {
 public:
  struct Options {
    int prefill_tp = 4;
    int decode_tp = 4;
    int max_decode_batch = 256;
    /** Max new tokens packed into one prefill batch. */
    std::int64_t prefill_batch_tokens = 8192;
    int prefill_batch_requests = 8;

    /** Failure recovery; disabled by default (fault-free runs). */
    fault::RecoveryPolicy recovery;
  };

  StaticDisaggEngine(sim::Simulator* simulator,
                     const serve::Deployment& deployment, Options options);
  ~StaticDisaggEngine() override;

  const char* name() const override { return "SGLang-PD"; }
  void Enqueue(std::unique_ptr<serve::Request> request) override;
  std::size_t InFlight() const override { return in_flight_; }
  void RegisterAudits(check::InvariantRegistry& registry) const override;

  std::size_t NumFaultDomains() const override { return 2; }
  void InjectCrash(std::size_t domain) override;
  void InjectRecovery(std::size_t domain) override;
  void InjectStraggler(std::size_t domain, double slowdown) override;
  sim::Channel* FaultableLink() override { return &cluster_->link(); }

  /**
   * Forwards the tracer to both instance devices ("gpu0/", "gpu1/") and
   * pools ("kv/p", "kv/d"); prefill batches and decode iterations
   * become "prefill-chunk" / "decode-step" engine spans.
   */
  void AttachTracer(obs::Tracer tracer) override;

  const kv::KvPool& prefill_pool() const { return *prefill_pool_; }
  const kv::KvPool& decode_pool() const { return *decode_pool_; }
  gpu::Gpu& prefill_device() { return *cluster_->instance(0).device; }
  gpu::Gpu& decode_device() { return *cluster_->instance(1).device; }

 private:
  struct Job;  // One request moving through the P -> D pipeline.

  void PumpPrefill();
  void OnPrefillBatchDone();
  void TryMoveToDecode();
  void MaybeStartDecodeIteration();
  void OnDecodeIterationDone();
  void Finish(Job* job);

  /** Deadline event: reaps `id` from waiting_ or migrating_. */
  void OnDeadline(std::int64_t id);

  /** The link gave up on `id`'s P->D migration; requeue or fail it. */
  void OnMigrationFailed(std::int64_t id);

  /** Releases a crash-lost job's accounting and requeues or kills it. */
  void RecycleLost(std::vector<std::unique_ptr<Job>> lost);

  sim::Simulator* sim_;
  serve::Deployment deployment_;
  Options options_;

  std::unique_ptr<gpu::Cluster> cluster_;
  std::unique_ptr<kv::KvPool> prefill_pool_;
  std::unique_ptr<kv::KvPool> decode_pool_;
  std::unique_ptr<llm::CostModel> prefill_cost_;
  std::unique_ptr<llm::CostModel> decode_cost_;

  gpu::StreamId prefill_stream_ = 0;
  gpu::StreamId decode_stream_ = 0;

  std::deque<std::unique_ptr<Job>> waiting_;
  std::deque<std::unique_ptr<Job>> migrating_;  // Awaiting D admission.
  std::vector<std::unique_ptr<Job>> decoding_;
  std::vector<std::unique_ptr<Job>> prefill_batch_;

  bool prefill_in_flight_ = false;
  bool decode_in_flight_ = false;
  std::size_t in_flight_ = 0;
  std::uint64_t prefill_batch_serial_ = 0;
  std::uint64_t decode_step_serial_ = 0;

  /** KV demand (input + output tokens) of everything in waiting_. */
  std::int64_t waiting_demand_ = 0;

  // Per-instance crash epochs (see FaultAwareEngine's epoch pattern;
  // two instances fail independently, so one shared epoch would let a
  // prefill crash strand the decode side's in-flight iteration).
  std::uint64_t p_epoch_ = 0;
  std::uint64_t d_epoch_ = 0;
};

}  // namespace muxwise::baselines

#endif  // MUXWISE_BASELINES_STATIC_DISAGG_H_
