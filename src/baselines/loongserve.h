#ifndef MUXWISE_BASELINES_LOONGSERVE_H_
#define MUXWISE_BASELINES_LOONGSERVE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "fault/fault_aware.h"
#include "fault/recovery.h"
#include "gpu/cluster.h"
#include "sim/channel.h"
#include "llm/cost_model.h"
#include "serve/deployment.h"
#include "serve/engine.h"
#include "sim/simulator.h"

namespace muxwise::baselines {

/**
 * Dynamic disaggregation in the style of LoongServe (paper §2.3.1):
 * whole GPUs are re-assigned between the prefill and decode phases at
 * runtime via elastic sequence parallelism.
 *
 * Modeled on an aggregate device where a group of k (of n) GPUs is a
 * stream holding k/n of the SMs and bandwidth. The decode group is
 * sized to the smallest GPU count meeting the TBT target; the rest
 * serves prefill. Re-sizing the decode group re-shards its KV, paid as
 * an NVLink transfer that stalls the next decode iteration.
 *
 * The structural cost the paper highlights: to stay elastic, LoongServe
 * releases KV when a request completes, so multi-turn sessions
 * recompute their entire history (no cross-request reuse).
 *
 * Failure recovery (when Options::recovery is enabled): the elastic
 * group is one fault domain — a crash of any member poisons the whole
 * sequence-parallel shard set, so everything admitted is lost and
 * re-enqueued. Re-shard traffic rides the engine's own interconnect,
 * which is the engine's FaultableLink().
 */
class LoongServeEngine : public fault::FaultAwareEngine {
 public:
  struct Options {
    int max_decode_batch = 256;
    /** Minimum GPUs pinned to decode while any request is decoding. */
    int min_decode_gpus = 1;
    /** Max new tokens packed into one prefill batch. */
    std::int64_t prefill_batch_tokens = 16384;
    int prefill_batch_requests = 8;

    /** Failure recovery; disabled by default (fault-free runs). */
    fault::RecoveryPolicy recovery;
  };

  LoongServeEngine(sim::Simulator* simulator,
                   const serve::Deployment& deployment, Options options);
  ~LoongServeEngine() override;

  const char* name() const override { return "LoongServe"; }
  void Enqueue(std::unique_ptr<serve::Request> request) override;
  std::size_t InFlight() const override { return in_flight_; }
  void RegisterAudits(check::InvariantRegistry& registry) const override;

  void InjectCrash(std::size_t domain) override;
  void InjectRecovery(std::size_t domain) override;
  void InjectStraggler(std::size_t domain, double slowdown) override;
  sim::Channel* FaultableLink() override { return link_.get(); }

  /**
   * Forwards the tracer to the aggregate device ("gpu/"); prefill
   * batches and decode iterations become engine spans, KV usage a "kv"
   * counter, and elastic re-shards "reshard" instants on "partition".
   */
  void AttachTracer(obs::Tracer tracer) override;

  gpu::Gpu& device() { return *device_; }
  int decode_gpus() const { return decode_gpus_; }

 private:
  void PumpPrefill();

  /** Deadline event: reaps request `id` if it is still waiting. */
  void OnDeadline(std::int64_t id);
  void OnPrefillBatchDone();
  void MaybeStartDecodeIteration();
  void OnDecodeIterationDone();

  /** Smallest decode GPU count meeting the TBT target for `ctx`. */
  int ChooseDecodeGpus(const std::vector<std::int64_t>& ctx) const;

  /** Builds a group-total kernel for a k-GPU group. */
  gpu::Kernel GroupKernel(const gpu::Kernel& per_gpu, int k) const;

  sim::Simulator* sim_;
  serve::Deployment deployment_;
  Options options_;

  std::unique_ptr<gpu::Gpu> device_;  // Aggregate of num_gpus GPUs.
  std::unique_ptr<gpu::HostThread> host_;
  std::unique_ptr<sim::Channel> link_;
  std::vector<std::unique_ptr<llm::CostModel>> cost_by_tp_;  // [1..n].

  gpu::StreamId prefill_stream_ = 0;
  gpu::StreamId decode_stream_ = 0;

  // Simple token-count pool: no radix tree, no cross-request reuse.
  std::int64_t pool_capacity_ = 0;
  std::int64_t pool_used_ = 0;

  std::deque<std::unique_ptr<serve::Request>> waiting_;
  std::vector<std::unique_ptr<serve::Request>> prefill_batch_;
  std::vector<std::unique_ptr<serve::Request>> decoding_;

  bool prefill_in_flight_ = false;
  bool decode_in_flight_ = false;
  bool resharding_ = false;
  int decode_gpus_ = 1;
  std::size_t in_flight_ = 0;
  std::uint64_t prefill_batch_serial_ = 0;
  std::uint64_t decode_step_serial_ = 0;
  std::uint64_t reshard_serial_ = 0;

  /** KV demand (input + output tokens) of everything in waiting_. */
  std::int64_t waiting_demand_ = 0;
};

}  // namespace muxwise::baselines

#endif  // MUXWISE_BASELINES_LOONGSERVE_H_
