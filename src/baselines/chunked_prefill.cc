#include "baselines/chunked_prefill.h"

#include <algorithm>
#include <utility>

#include "serve/admission.h"
#include "sim/logging.h"

namespace muxwise::baselines {

ChunkedPrefillEngine::ChunkedPrefillEngine(
    sim::Simulator* simulator, const serve::Deployment& deployment,
    Options options)
    : fault::FaultAwareEngine(simulator, deployment.slo, options.recovery),
      sim_(simulator),
      deployment_(deployment),
      options_(options) {
  MUX_CHECK(options_.token_budget >= 1);
  device_ = std::make_unique<gpu::Gpu>(sim_, deployment_.gpu);
  host_ = std::make_unique<gpu::HostThread>(sim_);
  pool_ = std::make_unique<kv::KvPool>(
      deployment_.PoolTokens(deployment_.num_gpus));
  cost_ = std::make_unique<llm::CostModel>(deployment_.model,
                                           deployment_.num_gpus,
                                           deployment_.gpu);
  stream_ = device_->CreateStream(deployment_.gpu.sm_count);
  nano_stream_ = device_->CreateStream(deployment_.gpu.sm_count);
}

ChunkedPrefillEngine::~ChunkedPrefillEngine() = default;

void ChunkedPrefillEngine::Enqueue(std::unique_ptr<serve::Request> request) {
  if (FaultsEnabled()) {
    // Shed before any bookkeeping: a rejected request never counts as
    // in flight and never touches the queues, so the (possibly
    // reentrant) completion notification sees consistent state.
    if (ShedNow(waiting_demand_ + DemandTokens(*request),
                pool_->capacity_tokens())) {
      MarkTerminal(*request, serve::Outcome::kShed);
      NotifyComplete(std::move(request));
      return;
    }
    request->deadline = DeadlineFor(*request);
    sim_->ScheduleAt(request->deadline,
                     [this, id = request->spec->id] { OnDeadline(id); });
    waiting_demand_ += DemandTokens(*request);
  }
  ++in_flight_;
  waiting_.push_back(std::move(request));
  PumpAdmissions();
  MaybeStartIteration();
}

void ChunkedPrefillEngine::OnDeadline(std::int64_t id) {
  // Only waiting requests are reaped: work that won admission always
  // runs to completion (abandoning half-computed KV helps nobody).
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if ((*it)->spec->id != id) continue;
    auto request = std::move(*it);
    waiting_.erase(it);
    waiting_demand_ -= DemandTokens(*request);
    MarkTerminal(*request, serve::Outcome::kTimedOut);
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    NotifyComplete(std::move(request));
    return;
  }
}

void ChunkedPrefillEngine::PumpAdmissions() {
  if (DomainDown(0)) return;
  // FIFO admission: stop at the first request the pool cannot hold or
  // when the running set reaches the decode batch cap.
  while (!waiting_.empty() &&
         prefilling_.size() + decoding_.size() <
             static_cast<std::size_t>(options_.max_decode_batch)) {
    serve::Request& head = *waiting_.front();
    if (!serve::AdmitToPool(*pool_, head, sim_->Now())) break;
    head.phase = serve::Phase::kPrefill;
    head.prefill_start = sim_->Now();
    if (FaultsEnabled()) waiting_demand_ -= DemandTokens(head);
    prefilling_.push_back(std::move(waiting_.front()));
    waiting_.pop_front();
  }
}

void ChunkedPrefillEngine::MaybeStartIteration() {
  if (DomainDown(0)) return;
  if (iteration_in_flight_) return;
  if (prefilling_.empty() && decoding_.empty()) return;

  // Budget: decode tokens first (one per running sequence), remainder
  // goes to prefill chunks, packed FIFO across requests (SARATHI).
  std::int64_t budget_left =
      std::max<std::int64_t>(0, options_.token_budget -
                                    static_cast<std::int64_t>(
                                        decoding_.size()));
  std::vector<llm::SeqWork> chunks;
  inflight_chunks_.clear();
  for (auto& req : prefilling_) {
    if (budget_left <= 0) break;
    const std::int64_t remaining = req->prefill_tokens - req->progress;
    MUX_CHECK(remaining > 0);
    const std::int64_t take = std::min(budget_left, remaining);
    // The chunk attends everything already in the cache for this
    // request: the reused prefix plus previously processed chunks.
    chunks.push_back(llm::SeqWork{take, req->cached_tokens + req->progress});
    inflight_chunks_.emplace_back(req.get(), take);
    budget_left -= take;
  }

  std::vector<std::int64_t> decode_ctx;
  decode_ctx.reserve(decoding_.size());
  for (const auto& req : decoding_) {
    decode_ctx.push_back(req->spec->input_tokens + req->generated);
  }

  if (chunks.empty() && decode_ctx.empty()) return;
  iteration_in_flight_ = true;
  ++iterations_;
  tracer_.SpanBegin("engine/iteration", "iteration",
                    static_cast<std::int64_t>(iterations_),
                    static_cast<double>(chunks.size() + decode_ctx.size()));

  // Pure-decode iterations take the efficient CUDA-graph decode path;
  // only iterations carrying a chunk pay the fused-GEMM execution.
  const gpu::Kernel fused = chunks.empty()
                                ? cost_->DecodeIteration(decode_ctx)
                                : cost_->FusedChunk(chunks, decode_ctx);

  if (!options_.nano_overlap) {
    // The host submission cannot be cancelled; a crash bumps the epoch
    // so callbacks from the dead device generation fall through.
    host_->Submit(cost_->DecodeGraphLaunch(), [this, fused, e = epoch()] {
      if (e != epoch()) return;
      device_->Launch(stream_, fused, [this, e] {
        if (e != epoch()) return;
        OnIterationDone();
      });
    });
    return;
  }

  // NanoFlow: split into nano-batches on two concurrent streams. Each
  // nano-batch re-streams the full weights but overlaps better.
  const int n = std::max(2, options_.nano_batches);
  nano_outstanding_ = n;
  const double kv_bytes = std::max(
      0.0, fused.bytes - cost_->WeightBytesPerGpu());
  for (int i = 0; i < n; ++i) {
    gpu::Kernel nano = fused;
    nano.flops = fused.flops / n;
    nano.bytes = cost_->WeightBytesPerGpu() + kv_bytes / n;
    nano.fixed_time = fused.fixed_time / n;
    nano.overlap_alpha = 0.05;  // Operator-level overlap, NanoFlow's win.
    static const gpu::KernelTagId kNanoTag = gpu::InternKernelTag("nano");
    nano.tag = kNanoTag;
    const gpu::StreamId target = (i % 2 == 0) ? stream_ : nano_stream_;
    host_->Submit(cost_->DecodeGraphLaunch(),
                  [this, target, nano, e = epoch()] {
                    if (e != epoch()) return;
                    device_->Launch(target, nano, [this, e] {
                      if (e != epoch()) return;
                      if (--nano_outstanding_ == 0) OnIterationDone();
                    });
                  });
  }
}

void ChunkedPrefillEngine::OnIterationDone() {
  iteration_in_flight_ = false;
  // One fused iteration in flight at a time: the live serial is the
  // last one started.
  tracer_.SpanEnd("engine/iteration", "iteration",
                  static_cast<std::int64_t>(iterations_));
  const sim::Time now = sim_->Now();
  // Completions are only handed back once engine state is consistent:
  // NotifyComplete can synchronously re-enter Enqueue with the next
  // turn of the finished request's session.
  std::vector<std::unique_ptr<serve::Request>> completed;

  // Decode side: every running sequence emitted one token.
  std::vector<std::unique_ptr<serve::Request>> still_decoding;
  still_decoding.reserve(decoding_.size());
  for (auto& req : decoding_) {
    req->EmitToken(now);
    if (req->DecodeFinished()) {
      req->phase = serve::Phase::kDone;
      req->completion = now;
      req->outcome = serve::Outcome::kCompleted;
      serve::FinishInPool(*pool_, *req, now);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      completed.push_back(std::move(req));
    } else {
      still_decoding.push_back(std::move(req));
    }
  }
  decoding_ = std::move(still_decoding);
  tracer_.Counter("engine/decode", "decode-pending",
                  static_cast<double>(decoding_.size()));

  // Prefill side: advance chunk progress; completed prefills produce
  // their first token now and join the decode batch.
  for (auto& [req, take] : inflight_chunks_) {
    req->progress += take;
    MUX_CHECK(req->progress <= req->prefill_tokens);
  }
  inflight_chunks_.clear();
  while (!prefilling_.empty() &&
         prefilling_.front()->progress >= prefilling_.front()->prefill_tokens) {
    auto req = std::move(prefilling_.front());
    prefilling_.pop_front();
    req->EmitToken(now);  // First token.
    if (req->DecodeFinished()) {
      // Degenerate single-token outputs finish at prefill.
      req->phase = serve::Phase::kDone;
      req->completion = now;
      req->outcome = serve::Outcome::kCompleted;
      serve::FinishInPool(*pool_, *req, now);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      completed.push_back(std::move(req));
    } else {
      req->phase = serve::Phase::kDecode;
      decoding_.push_back(std::move(req));
    }
  }

  for (auto& req : completed) NotifyComplete(std::move(req));
  PumpAdmissions();
  MaybeStartIteration();
}

void ChunkedPrefillEngine::InjectCrash(std::size_t domain) {
  if (domain != 0) return;
  MarkDown(0, true);
  BumpEpoch();  // Invalidate every in-flight host/device callback.
  device_->AbortAll();
  iteration_in_flight_ = false;
  nano_outstanding_ = 0;
  inflight_chunks_.clear();

  // Every admitted request just lost its KV. Collect them in admission
  // order, release their pool accounting, then drop the whole pool —
  // reused prefixes cached on the dead instance are gone too.
  std::vector<std::unique_ptr<serve::Request>> lost;
  for (auto& req : prefilling_) lost.push_back(std::move(req));
  prefilling_.clear();
  for (auto& req : decoding_) lost.push_back(std::move(req));
  decoding_.clear();
  for (auto& req : lost) serve::AbandonInPool(*pool_, *req);
  pool_->Clear();

  std::vector<std::unique_ptr<serve::Request>> dead;
  std::vector<std::unique_ptr<serve::Request>> requeue;
  for (auto& req : lost) {
    if (!PrepareRetry(*req)) {
      MarkTerminal(*req, serve::Outcome::kFailed);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      dead.push_back(std::move(req));
    } else if (DeadlinePassed(*req)) {
      // Its deadline event already fired while it was admitted; reap at
      // requeue instead of waiting forever.
      MarkTerminal(*req, serve::Outcome::kTimedOut);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      dead.push_back(std::move(req));
    } else {
      waiting_demand_ += DemandTokens(*req);
      requeue.push_back(std::move(req));
    }
  }
  // Requeues go ahead of fresh arrivals — they are the oldest work —
  // preserving their relative admission order.
  for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
    waiting_.push_front(std::move(*it));
  }
  for (auto& req : dead) NotifyComplete(std::move(req));
}

void ChunkedPrefillEngine::InjectRecovery(std::size_t domain) {
  if (domain != 0) return;
  MarkDown(0, false);
  PumpAdmissions();
  MaybeStartIteration();
}

void ChunkedPrefillEngine::InjectStraggler(std::size_t domain,
                                           double slowdown) {
  if (domain != 0) return;
  device_->SetSlowdown(slowdown);
}

void ChunkedPrefillEngine::AttachTracer(obs::Tracer tracer) {
  fault::FaultAwareEngine::AttachTracer(tracer);
  device_->SetTracer(tracer, "gpu/");
  pool_->set_tracer(tracer, "kv");
}

int ChunkedPrefillEngine::TuneTokenBudget(const serve::Deployment& deployment,
                                          sim::Duration tbt_target,
                                          int decode_batch,
                                          std::int64_t decode_context,
                                          std::int64_t chunk_context) {
  sim::Simulator scratch;
  gpu::Gpu device(&scratch, deployment.gpu);
  llm::CostModel cost(deployment.model, deployment.num_gpus, deployment.gpu);
  const std::vector<std::int64_t> decode_ctx(
      static_cast<std::size_t>(decode_batch), decode_context);

  int best = 64;  // Smallest practical budget.
  for (int budget = 64; budget <= 8192; budget *= 2) {
    const std::int64_t chunk = std::max<std::int64_t>(1, budget - decode_batch);
    const gpu::Kernel fused = cost.FusedChunk(
        {llm::SeqWork{chunk, chunk_context}}, decode_ctx);
    const double seconds = device.SoloDurationSeconds(
        fused, deployment.gpu.sm_count);
    // Keep a tuning margin: runtime batches, all-reduce jitter and
    // launch serialization push the realized tail above the calibrated
    // point, so operators tune below the raw target.
    const sim::Duration budgeted =
        static_cast<sim::Duration>(0.85 * static_cast<double>(tbt_target));
    if (static_cast<sim::Duration>(seconds * 1e9) +
            cost.DecodeGraphLaunch() <=
        budgeted) {
      best = budget;
    }
  }
  return best;
}

void ChunkedPrefillEngine::RegisterAudits(
    check::InvariantRegistry& registry) const {
  registry.Register(
      "ChunkedPrefillEngine", "quiescent-scheduler",
      [this](check::AuditContext& ctx) {
        ctx.Check(in_flight_ == 0, std::to_string(in_flight_) +
                                       " requests still in flight");
        ctx.Check(waiting_.empty(), "waiting queue not drained");
        ctx.Check(prefilling_.empty(), "prefill queue not drained");
        ctx.Check(decoding_.empty(), "decode batch not drained");
        ctx.Check(!iteration_in_flight_, "iteration still outstanding");
        ctx.Check(nano_outstanding_ == 0,
                  "nano-batches still outstanding");
        ctx.Check(inflight_chunks_.empty(), "chunks of a dead iteration");
        ctx.Check(waiting_demand_ == 0,
                  "queued-demand accounting leaked " +
                      std::to_string(waiting_demand_) + " tokens");
      });
  pool_->RegisterAudits(registry);
  device_->RegisterAudits(registry);
}

}  // namespace muxwise::baselines
