#ifndef MUXWISE_OVERLOAD_CONTROLLER_H_
#define MUXWISE_OVERLOAD_CONTROLLER_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/backoff.h"
#include "sim/time.h"
#include "workload/slo.h"

namespace muxwise::overload {

/**
 * Serving pressure modes, ordered by severity. The controller walks
 * this ladder with hysteresis: each mode is entered at a high-water
 * signal and only left at a lower low-water signal after a minimum
 * dwell, so bursty signals cannot flap the system between modes.
 */
enum class Mode : std::uint8_t {
  kNormal = 0,
  kPressure = 1,
  kBrownout = 2,
  kShed = 3,
};

inline constexpr int kNumModes = 4;

const char* ModeName(Mode mode);

/**
 * Policy knobs for the overload-control layer. Everything is inert
 * until `enabled` is set, which keeps event streams bit-identical to a
 * build without the subsystem (the same contract FaultPlan honours).
 *
 * Defaults express the design intent — shed batch first, interactive
 * last; degrade chunk budgets before dropping anything — and are tuned
 * for the Llama-70B / 8xA100 acceptance deployment.
 */
struct Policy {
  bool enabled = false;

  // --- SLO-class admission: deterministic token buckets -------------
  // Refill rate (KV-demand tokens/s) and burst capacity per class,
  // indexed by SloClassRank. A zero rate disables the bucket for that
  // class (admission then only reacts to brownout modes).
  std::array<double, workload::kNumSloClasses> bucket_rate_tokens_per_s = {
      0.0, 0.0, 0.0};
  std::array<double, workload::kNumSloClasses> bucket_capacity_tokens = {
      0.0, 0.0, 0.0};

  /** A bucket-gated request waits for refill at most this long. */
  sim::Duration max_admission_delay = sim::Seconds(30);

  /** Hard per-class pending-queue bound (delay/shed beyond it). */
  std::size_t max_queue_per_class = 4096;

  // --- Brownout state machine ---------------------------------------
  // Entry thresholds (either signal trips the mode) and strictly lower
  // exit thresholds (both signals must clear to leave it).
  double pressure_occupancy = 0.70;
  double pressure_exit_occupancy = 0.60;
  double brownout_occupancy = 0.85;
  double brownout_exit_occupancy = 0.75;
  double shed_occupancy = 0.95;
  double shed_exit_occupancy = 0.87;
  sim::Duration pressure_queue_delay = sim::Seconds(2);
  sim::Duration brownout_queue_delay = sim::Seconds(8);
  sim::Duration shed_queue_delay = sim::Seconds(20);

  /** Minimum time spent in a mode before de-escalating. */
  sim::Duration min_dwell = sim::Milliseconds(500);

  // --- Graceful degradation -----------------------------------------
  /** Prefill token-budget scale per mode (Normal..Shed). */
  std::array<double, kNumModes> prefill_scale = {1.0, 0.75, 0.5, 0.35};

  /** Modes >= this defer new batch-class admissions. */
  Mode defer_batch_at = Mode::kBrownout;

  /** Modes >= this shed standard-class arrivals; batch sheds one
   * rung earlier, interactive only at kShed with the queue also over
   * its hard bound. */
  Mode shed_standard_at = Mode::kShed;

  // --- Decode-safe preemption / KV spill ----------------------------
  bool preemption = true;

  /** Allow spill-to-host (otherwise every victim recomputes). */
  bool spill = true;

  /** Host link modelling for KV spill/restore transfers. */
  double spill_bandwidth_bytes_per_s = 24.0e9;  // ~PCIe 4.0 x16 effective
  sim::Duration spill_latency = sim::Microseconds(25);

  /** Victims preempted per admission failure (bounds the work). */
  int max_victims_per_pump = 4;
};

/**
 * One admission verdict. kDelay carries the deterministic time at
 * which the request's class bucket will have refilled enough to admit
 * it (the engine re-offers it then).
 */
struct AdmissionDecision {
  enum class Action : std::uint8_t { kAdmit, kDelay, kShed };
  Action action = Action::kAdmit;
  sim::Time retry_at = 0;
};

/**
 * Deterministic overload controller: per-class token buckets plus the
 * Normal -> Pressure -> Brownout -> Shed hysteresis ladder. Pure state
 * machine over simulated time — no randomness, no wall clock — so runs
 * are bit-reproducible.
 */
class Controller {
 public:
  explicit Controller(const Policy& policy);

  const Policy& policy() const { return policy_; }
  bool enabled() const { return policy_.enabled; }
  Mode mode() const { return mode_; }

  /**
   * Feeds the control signals (KV occupancy in [0,1], queue delay of
   * the oldest pending request) and advances the mode ladder. Returns
   * true when the mode changed. Escalation is immediate; de-escalation
   * steps one rung at a time after `min_dwell`.
   */
  bool Observe(sim::Time now, double kv_occupancy,
               sim::Duration queue_delay);

  /**
   * Class-aware admission. Draws `demand_tokens` from the class bucket
   * when available; otherwise delays until the bucket refills (shedding
   * instead once the wait exceeds max_admission_delay or the class
   * queue is over its hard bound). Mode overrides: batch defers at
   * defer_batch_at and sheds one rung below shed_standard_at; standard
   * sheds at shed_standard_at; interactive is only shed when the hard
   * queue bound is also exceeded.
   */
  AdmissionDecision Admit(workload::SloClass slo_class,
                          std::int64_t demand_tokens, sim::Time now,
                          std::size_t queued_in_class);

  /** Current prefill token-budget scale (1.0 in Normal). */
  double PrefillScale() const;

  /** True while new batch-class work should wait in the queue. */
  bool DeferBatch() const;

  /** True when KV-pressure preemption may run (Pressure or worse). */
  bool PreemptionEligible() const;

  /** True when spilled requests should be pulled back (Normal/Pressure). */
  bool RestoreEligible() const { return mode_ <= Mode::kPressure; }

  /**
   * Spill-vs-recompute decision for one victim: models the round trip
   * over the host link against redoing `recompute_seconds` of prefill.
   */
  bool SpillCheaper(double spill_bytes, double recompute_seconds) const;

  /**
   * Shared backoff policy for brownout admission deferrals: the first
   * rung is max(min_dwell, 100 ms) — the historical constant re-offer
   * delay — doubling per attempt up to max_admission_delay. The
   * controller itself only issues rung 1 (Admit is stateless per call);
   * callers that track attempts (the fleet router) climb the ladder.
   */
  sim::ExponentialBackoff DeferralBackoff() const;

  // --- Introspection for audits, traces, and outcomes ---------------
  std::size_t mode_transitions() const { return mode_transitions_; }
  std::size_t mode_entries(Mode mode) const {
    return mode_entries_[static_cast<int>(mode)];
  }
  std::size_t admitted(workload::SloClass c) const {
    return admitted_[workload::SloClassRank(c)];
  }
  std::size_t delayed(workload::SloClass c) const {
    return delayed_[workload::SloClassRank(c)];
  }
  std::size_t shed(workload::SloClass c) const {
    return shed_[workload::SloClassRank(c)];
  }

 private:
  /** Refills `bucket` up to its capacity for the elapsed time. */
  void Refill(int rank, sim::Time now);

  /** Severity the raw signals ask for, ignoring hysteresis. */
  Mode TargetMode(double kv_occupancy, sim::Duration queue_delay) const;

  /** True once the signals are below the exit thresholds of `mode`. */
  bool BelowExit(Mode mode, double kv_occupancy,
                 sim::Duration queue_delay) const;

  Policy policy_;
  Mode mode_ = Mode::kNormal;
  sim::Time mode_since_ = 0;

  std::array<double, workload::kNumSloClasses> bucket_level_;
  std::array<sim::Time, workload::kNumSloClasses> bucket_refilled_at_;

  std::size_t mode_transitions_ = 0;
  std::array<std::size_t, kNumModes> mode_entries_ = {1, 0, 0, 0};
  std::array<std::size_t, workload::kNumSloClasses> admitted_ = {0, 0, 0};
  std::array<std::size_t, workload::kNumSloClasses> delayed_ = {0, 0, 0};
  std::array<std::size_t, workload::kNumSloClasses> shed_ = {0, 0, 0};
};

/**
 * Victim-selection key for decode-safe preemption: lower-priority
 * classes go first, then least prefill progress, then the cheapest
 * recompute (Eq.1 estimate), with the request id as the deterministic
 * tie-break. Candidates must be prefill-phase — decode-holding
 * requests are never eligible.
 */
struct VictimKey {
  workload::SloClass slo_class = workload::SloClass::kStandard;
  std::int64_t progress_layers = 0;
  double recompute_seconds = 0.0;
  std::int64_t request_id = 0;
};

/** True when `a` should be preempted before `b`. */
bool PreemptBefore(const VictimKey& a, const VictimKey& b);

}  // namespace muxwise::overload

#endif  // MUXWISE_OVERLOAD_CONTROLLER_H_
