#include "overload/controller.h"

#include <algorithm>
#include <cmath>

#include "sim/backoff.h"
#include "sim/logging.h"

namespace muxwise::overload {

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kNormal:
      return "normal";
    case Mode::kPressure:
      return "pressure";
    case Mode::kBrownout:
      return "brownout";
    case Mode::kShed:
      return "shed";
  }
  return "unknown";
}

Controller::Controller(const Policy& policy) : policy_(policy) {
  for (int rank = 0; rank < workload::kNumSloClasses; ++rank) {
    // Buckets start full so a calm-start trace admits its head-of-line
    // burst unchanged.
    bucket_level_[rank] = policy_.bucket_capacity_tokens[rank];
    bucket_refilled_at_[rank] = 0;
  }
}

void Controller::Refill(int rank, sim::Time now) {
  const double rate = policy_.bucket_rate_tokens_per_s[rank];
  if (rate <= 0.0) return;
  const sim::Duration elapsed = now - bucket_refilled_at_[rank];
  if (elapsed <= 0) return;
  bucket_level_[rank] =
      std::min(policy_.bucket_capacity_tokens[rank],
               bucket_level_[rank] + rate * sim::ToSeconds(elapsed));
  bucket_refilled_at_[rank] = now;
}

Mode Controller::TargetMode(double kv_occupancy,
                            sim::Duration queue_delay) const {
  if (kv_occupancy >= policy_.shed_occupancy ||
      queue_delay >= policy_.shed_queue_delay) {
    return Mode::kShed;
  }
  if (kv_occupancy >= policy_.brownout_occupancy ||
      queue_delay >= policy_.brownout_queue_delay) {
    return Mode::kBrownout;
  }
  if (kv_occupancy >= policy_.pressure_occupancy ||
      queue_delay >= policy_.pressure_queue_delay) {
    return Mode::kPressure;
  }
  return Mode::kNormal;
}

bool Controller::BelowExit(Mode mode, double kv_occupancy,
                           sim::Duration queue_delay) const {
  switch (mode) {
    case Mode::kNormal:
      return false;  // Nothing below normal.
    case Mode::kPressure:
      return kv_occupancy < policy_.pressure_exit_occupancy &&
             queue_delay < policy_.pressure_queue_delay;
    case Mode::kBrownout:
      return kv_occupancy < policy_.brownout_exit_occupancy &&
             queue_delay < policy_.brownout_queue_delay;
    case Mode::kShed:
      return kv_occupancy < policy_.shed_exit_occupancy &&
             queue_delay < policy_.shed_queue_delay;
  }
  return false;
}

bool Controller::Observe(sim::Time now, double kv_occupancy,
                         sim::Duration queue_delay) {
  if (!policy_.enabled) return false;
  const Mode target = TargetMode(kv_occupancy, queue_delay);
  if (target > mode_) {
    // Escalate immediately — overload does not wait for a dwell.
    mode_ = target;
    mode_since_ = now;
    ++mode_transitions_;
    ++mode_entries_[static_cast<int>(mode_)];
    return true;
  }
  if (target < mode_ && now - mode_since_ >= policy_.min_dwell &&
      BelowExit(mode_, kv_occupancy, queue_delay)) {
    // De-escalate one rung at a time so recovery is gradual.
    mode_ = static_cast<Mode>(static_cast<int>(mode_) - 1);
    mode_since_ = now;
    ++mode_transitions_;
    ++mode_entries_[static_cast<int>(mode_)];
    return true;
  }
  return false;
}

AdmissionDecision Controller::Admit(workload::SloClass slo_class,
                                    std::int64_t demand_tokens,
                                    sim::Time now,
                                    std::size_t queued_in_class) {
  AdmissionDecision decision;
  if (!policy_.enabled) {
    decision.action = AdmissionDecision::Action::kAdmit;
    return decision;
  }
  const int rank = workload::SloClassRank(slo_class);

  // Hard bound: no class queue grows without limit, interactive
  // included — this is the backstop behind the bounded-queue audit.
  if (queued_in_class >= policy_.max_queue_per_class) {
    decision.action = AdmissionDecision::Action::kShed;
    ++shed_[rank];
    return decision;
  }

  // Mode overrides: batch is shed one rung before standard; standard
  // sheds at shed_standard_at; interactive is never mode-shed.
  if (slo_class == workload::SloClass::kBatch &&
      mode_ >= policy_.shed_standard_at) {
    decision.action = AdmissionDecision::Action::kShed;
    ++shed_[rank];
    return decision;
  }
  if (slo_class == workload::SloClass::kStandard &&
      mode_ >= policy_.shed_standard_at) {
    decision.action = AdmissionDecision::Action::kShed;
    ++shed_[rank];
    return decision;
  }
  if (slo_class == workload::SloClass::kBatch &&
      mode_ >= policy_.defer_batch_at) {
    // Brownout parks batch arrivals; the engine sheds them if the
    // deferral outlives max_admission_delay. The re-offer delay is the
    // first rung of the shared backoff policy (DeferralBackoff), so it
    // paces identically to the other deterministic retry paths.
    decision.action = AdmissionDecision::Action::kDelay;
    decision.retry_at = now + sim::BackoffDelay(DeferralBackoff(), 1);
    ++delayed_[rank];
    return decision;
  }

  // Token bucket (disabled for the class when its rate is zero).
  const double rate = policy_.bucket_rate_tokens_per_s[rank];
  if (rate > 0.0) {
    Refill(rank, now);
    const double demand = static_cast<double>(demand_tokens);
    if (bucket_level_[rank] < demand) {
      const double deficit = demand - bucket_level_[rank];
      const double wait_seconds = deficit / rate;
      decision.action = AdmissionDecision::Action::kDelay;
      decision.retry_at =
          now + std::max<sim::Duration>(
                    sim::Milliseconds(1),
                    static_cast<sim::Duration>(
                        std::ceil(wait_seconds * 1e9)));
      ++delayed_[rank];
      return decision;
    }
    bucket_level_[rank] -= demand;
  }

  decision.action = AdmissionDecision::Action::kAdmit;
  ++admitted_[rank];
  return decision;
}

double Controller::PrefillScale() const {
  if (!policy_.enabled) return 1.0;
  return policy_.prefill_scale[static_cast<int>(mode_)];
}

bool Controller::DeferBatch() const {
  return policy_.enabled && mode_ >= policy_.defer_batch_at;
}

bool Controller::PreemptionEligible() const {
  return policy_.enabled && policy_.preemption && mode_ >= Mode::kPressure;
}

sim::ExponentialBackoff Controller::DeferralBackoff() const {
  sim::ExponentialBackoff backoff;
  backoff.initial =
      std::max<sim::Duration>(policy_.min_dwell, sim::Milliseconds(100));
  backoff.multiplier = 2.0;
  backoff.cap = policy_.max_admission_delay;
  return backoff;
}

bool Controller::SpillCheaper(double spill_bytes,
                              double recompute_seconds) const {
  if (!policy_.spill) return false;
  if (policy_.spill_bandwidth_bytes_per_s <= 0.0) return false;
  // The victim's pages cross the host link twice (out now, back on
  // restore); recompute pays the prefill roofline again instead.
  const double round_trip =
      2.0 * spill_bytes / policy_.spill_bandwidth_bytes_per_s +
      2.0 * sim::ToSeconds(policy_.spill_latency);
  return round_trip < recompute_seconds;
}

bool PreemptBefore(const VictimKey& a, const VictimKey& b) {
  const int rank_a = workload::SloClassRank(a.slo_class);
  const int rank_b = workload::SloClassRank(b.slo_class);
  if (rank_a != rank_b) return rank_a > rank_b;  // Lowest class first.
  if (a.progress_layers != b.progress_layers) {
    return a.progress_layers < b.progress_layers;  // Least progress first.
  }
  if (a.recompute_seconds != b.recompute_seconds) {
    return a.recompute_seconds < b.recompute_seconds;  // Cheapest redo.
  }
  return a.request_id < b.request_id;  // Deterministic tie-break.
}

}  // namespace muxwise::overload
