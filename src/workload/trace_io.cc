#include "workload/trace_io.h"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "kv/token_seq.h"
#include "sim/logging.h"

namespace muxwise::workload {

namespace {

/** Minimal scanner for the fixed JSON-lines schema WriteTrace emits. */
class LineScanner {
 public:
  LineScanner(const std::string& line, int line_number)
      : line_(line), line_number_(line_number) {}

  /** Positions after `"key":`; fatal if the key is missing. */
  void Seek(const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line_.find(needle);
    if (at == std::string::npos) {
      sim::Fatal("trace parse error at line " +
                 std::to_string(line_number_) + ": missing key '" + key +
                 "'");
    }
    pos_ = at + needle.size();
  }

  /** As Seek, but reports absence instead of dying (optional keys). */
  bool TrySeek(const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line_.find(needle);
    if (at == std::string::npos) return false;
    pos_ = at + needle.size();
    return true;
  }

  double Number() {
    SkipSpace();
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(line_.substr(pos_), &consumed);
    } catch (...) {
      sim::Fatal("trace parse error at line " +
                 std::to_string(line_number_) + ": expected number");
    }
    pos_ += consumed;
    return value;
  }

  std::int64_t Integer() { return static_cast<std::int64_t>(Number()); }

  void Expect(char c) {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != c) {
      sim::Fatal("trace parse error at line " +
                 std::to_string(line_number_) + ": expected '" +
                 std::string(1, c) + "'");
    }
    ++pos_;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < line_.size() && line_[pos_] == c;
  }

 private:
  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& line_;
  int line_number_;
  std::size_t pos_ = 0;
};

}  // namespace

void WriteTrace(const Trace& trace, std::ostream& out) {
  // Full round-trip precision for arrival timestamps.
  out.precision(17);
  out << "{\"trace\":\"" << trace.name << "\",\"requests\":"
      << trace.requests.size() << "}\n";
  for (const RequestSpec& spec : trace.requests) {
    // Offset in the session stream where generated tokens begin.
    std::int64_t gen_begin = 0;
    for (const kv::TokenSpan& span : spec.full_seq) {
      if (span.stream == spec.session) gen_begin = span.end;
    }
    gen_begin -= spec.output_tokens;

    out << "{\"id\":" << spec.id << ",\"arrival_s\":" << spec.arrival_seconds
        << ",\"session\":" << spec.session << ",\"turn\":" << spec.session_seq
        << ",\"output\":" << spec.output_tokens
        << ",\"reused\":" << spec.reused_tokens
        << ",\"gen_begin\":" << gen_begin;
    // Optional key: standard-class requests omit it, so traces written
    // before SLO classes existed stay byte-identical on round trip.
    if (spec.slo_class != SloClass::kStandard) {
      out << ",\"class\":" << SloClassRank(spec.slo_class);
    }
    out << ",\"prompt\":[";
    for (std::size_t i = 0; i < spec.prompt.size(); ++i) {
      const kv::TokenSpan& span = spec.prompt[i];
      if (i > 0) out << ",";
      out << "[" << span.stream << "," << span.begin << "," << span.end
          << "]";
    }
    out << "]}\n";
  }
}

void WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) sim::Fatal("cannot open trace file for writing: " + path);
  WriteTrace(trace, out);
  if (!out) sim::Fatal("failed writing trace file: " + path);
}

Trace ReadTrace(std::istream& in) {
  Trace trace;
  std::string line;
  int line_number = 0;

  // Header.
  if (!std::getline(in, line)) sim::Fatal("trace file is empty");
  ++line_number;
  {
    LineScanner scanner(line, line_number);
    const std::string needle = "\"trace\":\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) sim::Fatal("trace file missing header");
    const std::size_t end = line.find('"', at + needle.size());
    trace.name = line.substr(at + needle.size(), end - at - needle.size());
  }

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    LineScanner scanner(line, line_number);
    RequestSpec spec;
    scanner.Seek("id");
    spec.id = scanner.Integer();
    scanner.Seek("arrival_s");
    spec.arrival_seconds = scanner.Number();
    scanner.Seek("session");
    spec.session = scanner.Integer();
    scanner.Seek("turn");
    spec.session_seq = static_cast<int>(scanner.Integer());
    scanner.Seek("output");
    spec.output_tokens = scanner.Integer();
    scanner.Seek("reused");
    spec.reused_tokens = scanner.Integer();
    scanner.Seek("gen_begin");
    const std::int64_t gen_begin = scanner.Integer();
    if (scanner.TrySeek("class")) {
      const std::int64_t rank = scanner.Integer();
      if (rank < 0 || rank >= kNumSloClasses) {
        sim::Fatal("trace parse error at line " +
                   std::to_string(line_number) + ": bad SLO class " +
                   std::to_string(rank));
      }
      spec.slo_class = static_cast<SloClass>(rank);
    }
    scanner.Seek("prompt");
    scanner.Expect('[');
    while (!scanner.Peek(']')) {
      scanner.Expect('[');
      kv::TokenSpan span;
      span.stream = scanner.Integer();
      scanner.Expect(',');
      span.begin = scanner.Integer();
      scanner.Expect(',');
      span.end = scanner.Integer();
      scanner.Expect(']');
      kv::AppendSpan(spec.prompt, span);
      if (scanner.Peek(',')) scanner.Expect(',');
    }
    spec.input_tokens = kv::SeqLength(spec.prompt);
    spec.full_seq = spec.prompt;
    kv::AppendSpan(spec.full_seq,
                   kv::TokenSpan{spec.session, gen_begin,
                                 gen_begin + spec.output_tokens});
    trace.requests.push_back(std::move(spec));
  }
  return trace;
}

Trace ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) sim::Fatal("cannot open trace file: " + path);
  return ReadTrace(in);
}

}  // namespace muxwise::workload
