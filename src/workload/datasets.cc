#include "workload/datasets.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "sim/logging.h"
#include "sim/rng.h"

namespace muxwise::workload {

namespace {

/** Stream id 0 is reserved for shared system prompts. */
constexpr std::int64_t kSystemStream = 0;

/** Rough seconds-per-output-token used to pace multi-turn clients. */
constexpr double kExpectedTpotSeconds = 0.03;

struct SessionPlan {
  double start_seconds = 0.0;
  int turns = 1;
};

int SampleTurns(const DatasetParams& params, sim::Rng& rng) {
  if (params.max_turns <= 1) return 1;
  const double extra_mean = std::max(0.0, params.mean_turns - 1.0);
  const int turns =
      1 + static_cast<int>(std::floor(rng.Exponential(extra_mean)));
  return std::clamp(turns, 1, params.max_turns);
}

/**
 * Expands session start times into per-turn requests. Stops at
 * `request_cap` requests when the cap is positive.
 */
Trace BuildFromSessions(const DatasetParams& params,
                        const std::vector<SessionPlan>& sessions,
                        int request_cap, sim::Rng& rng) {
  const sim::BoundedLogNormal new_dist(params.new_min, params.new_mean,
                                       params.new_max);
  const sim::BoundedLogNormal out_dist(params.out_min, params.out_mean,
                                       params.out_max);
  Trace trace;
  trace.name = DatasetName(params.dataset);

  std::int64_t next_session_stream = kSystemStream + 1;
  for (const SessionPlan& plan : sessions) {
    const std::int64_t stream = next_session_stream++;
    std::int64_t history = 0;  // Tokens already in this session's stream.
    double arrival = plan.start_seconds;
    for (int turn = 0; turn < plan.turns; ++turn) {
      const std::int64_t new_tokens =
          std::max<std::int64_t>(1, std::llround(new_dist.Sample(rng)));
      const std::int64_t out_tokens =
          std::max<std::int64_t>(1, std::llround(out_dist.Sample(rng)));
      const std::int64_t total = params.system_prompt_tokens + history +
                                 new_tokens + out_tokens;
      if (total > params.max_context_tokens) break;

      RequestSpec spec;
      spec.session = stream;
      spec.session_seq = turn;
      spec.arrival_seconds = arrival;
      if (params.system_prompt_tokens > 0) {
        AppendSpan(spec.prompt,
                   kv::TokenSpan{kSystemStream, 0, params.system_prompt_tokens});
      }
      if (history > 0) {
        AppendSpan(spec.prompt, kv::TokenSpan{stream, 0, history});
      }
      AppendSpan(spec.prompt,
                 kv::TokenSpan{stream, history, history + new_tokens});
      spec.full_seq = spec.prompt;
      AppendSpan(spec.full_seq,
                 kv::TokenSpan{stream, history + new_tokens,
                               history + new_tokens + out_tokens});
      spec.input_tokens = kv::SeqLength(spec.prompt);
      spec.reused_tokens = params.system_prompt_tokens + history;
      spec.output_tokens = out_tokens;
      trace.requests.push_back(std::move(spec));

      history += new_tokens + out_tokens;
      arrival += out_tokens * kExpectedTpotSeconds +
                 rng.Exponential(params.think_seconds);
      if (request_cap > 0 &&
          trace.requests.size() >= static_cast<std::size_t>(request_cap)) {
        break;
      }
    }
    if (request_cap > 0 &&
        trace.requests.size() >= static_cast<std::size_t>(request_cap)) {
      break;
    }
  }

  std::stable_sort(trace.requests.begin(), trace.requests.end(),
                   [](const RequestSpec& a, const RequestSpec& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    trace.requests[i].id = static_cast<std::int64_t>(i);
  }
  return trace;
}

}  // namespace

const char* DatasetName(Dataset dataset) {
  switch (dataset) {
    case Dataset::kShareGpt:
      return "ShareGPT";
    case Dataset::kLoogle:
      return "LooGLE";
    case Dataset::kOpenThoughts:
      return "OpenThoughts";
    case Dataset::kConversation:
      return "Conversation";
    case Dataset::kToolAgent:
      return "Tool&Agent";
  }
  return "?";
}

DatasetParams DatasetParams::For(Dataset dataset) {
  DatasetParams p;
  p.dataset = dataset;
  switch (dataset) {
    case Dataset::kShareGpt:
      // Table 1: input 4/226/1024, output 4/195/1838, single turn.
      p.new_min = 4, p.new_mean = 226, p.new_max = 1024;
      p.out_min = 4, p.out_mean = 195, p.out_max = 1838;
      break;
    case Dataset::kLoogle:
      // Table 1: input 3380/30k/81k, output 2/15/326.
      p.new_min = 3380, p.new_mean = 30000, p.new_max = 81000;
      p.out_min = 2, p.out_mean = 15, p.out_max = 326;
      break;
    case Dataset::kOpenThoughts:
      // Table 1: input 311/709/4633 including a 243-token shared system
      // prompt; output 684/8374/32k.
      p.system_prompt_tokens = 243;
      p.new_min = 68, p.new_mean = 466, p.new_max = 4390;
      p.out_min = 684, p.out_mean = 8374, p.out_max = 32000;
      break;
    case Dataset::kConversation:
      // Table 1: input 891/7538/123k, output 1/342/2000, reused mean
      // 4496. Mean turns solves (T-1)/2 * (new + out) = reused_mean.
      p.new_min = 600, p.new_mean = 3042, p.new_max = 20000;
      p.out_min = 1, p.out_mean = 342, p.out_max = 2000;
      // Request-weighted reuse is length-biased (long sessions contribute
      // more turns), so the mean turn count sits below the naive
      // (T-1)/2 solution.
      p.mean_turns = 2.6;
      p.max_turns = 10;
      break;
    case Dataset::kToolAgent:
      // Table 1: input 891/8596/123k, output 1/182/2000, reused mean 4905.
      p.new_min = 600, p.new_mean = 3691, p.new_max = 20000;
      p.out_min = 1, p.out_mean = 182, p.out_max = 2000;
      p.mean_turns = 2.6;
      p.max_turns = 10;
      break;
  }
  return p;
}

Trace GenerateTrace(Dataset dataset, int num_requests, double rate_per_second,
                    std::uint64_t seed) {
  return GenerateTraceWithParams(DatasetParams::For(dataset), num_requests,
                                 rate_per_second, seed);
}

Trace GenerateTraceWithParams(const DatasetParams& params, int num_requests,
                              double rate_per_second, std::uint64_t seed) {
  MUX_CHECK(num_requests > 0);
  MUX_CHECK(rate_per_second > 0.0);
  sim::Rng rng(seed);
  sim::Rng arrivals = rng.Fork("arrivals");
  sim::Rng lengths = rng.Fork("lengths");

  const double session_rate =
      rate_per_second / std::max(1.0, params.mean_turns);
  std::vector<SessionPlan> sessions;
  double t = 0.0;
  // Oversubscribe sessions; BuildFromSessions trims at the cap.
  const int session_budget = num_requests * 2 + 16;
  for (int i = 0; i < session_budget; ++i) {
    t += arrivals.Exponential(1.0 / session_rate);
    sessions.push_back(SessionPlan{t, SampleTurns(params, arrivals)});
  }
  return BuildFromSessions(params, sessions, num_requests, lengths);
}

Trace GenerateBurstyTrace(Dataset dataset, double base_rate_per_second,
                          double duration_seconds, double max_spike,
                          std::uint64_t seed) {
  MUX_CHECK(base_rate_per_second > 0.0);
  MUX_CHECK(duration_seconds > 0.0);
  MUX_CHECK(max_spike >= 1.0);
  const DatasetParams params = DatasetParams::For(dataset);
  sim::Rng rng(seed);
  sim::Rng arrivals = rng.Fork("bursty-arrivals");
  sim::Rng lengths = rng.Fork("bursty-lengths");

  const double bucket = 10.0;  // Seconds of piecewise-constant rate.
  const double session_rate =
      base_rate_per_second / std::max(1.0, params.mean_turns);
  std::vector<SessionPlan> sessions;
  for (double t0 = 0.0; t0 < duration_seconds; t0 += bucket) {
    double multiplier = std::exp(arrivals.Normal(0.0, 0.4));
    if (arrivals.Bernoulli(0.05)) {
      multiplier *= arrivals.Uniform(3.0, max_spike);
    }
    const double expected = session_rate * multiplier * bucket;
    // Poisson count via sequential exponential gaps.
    double acc = arrivals.Exponential(1.0);
    while (acc < expected) {
      const double start = t0 + arrivals.Uniform(0.0, bucket);
      sessions.push_back(SessionPlan{start, SampleTurns(params, arrivals)});
      acc += arrivals.Exponential(1.0);
    }
  }
  std::sort(sessions.begin(), sessions.end(),
            [](const SessionPlan& a, const SessionPlan& b) {
              return a.start_seconds < b.start_seconds;
            });
  Trace trace = BuildFromSessions(params, sessions, /*request_cap=*/-1,
                                  lengths);
  trace.name = std::string(DatasetName(dataset)) + "-bursty";
  return trace;
}

Trace GenerateMmppTrace(const MmppOptions& options, std::uint64_t seed) {
  MUX_CHECK(options.calm_rate_per_second > 0.0);
  MUX_CHECK(options.burst_multiplier >= 1.0);
  MUX_CHECK(options.mean_calm_seconds > 0.0);
  MUX_CHECK(options.mean_burst_seconds > 0.0);
  MUX_CHECK(options.duration_seconds > 0.0);
  const DatasetParams params = DatasetParams::For(options.dataset);
  sim::Rng rng(seed);
  sim::Rng phases = rng.Fork("mmpp-phases");
  sim::Rng arrivals = rng.Fork("mmpp-arrivals");
  sim::Rng lengths = rng.Fork("mmpp-lengths");
  sim::Rng classes = rng.Fork("mmpp-classes");

  const double session_rate =
      options.calm_rate_per_second / std::max(1.0, params.mean_turns);
  std::vector<SessionPlan> sessions;
  bool burst = false;
  double t = 0.0;
  double phase_end = phases.Exponential(options.mean_calm_seconds);
  while (t < options.duration_seconds) {
    const double rate =
        session_rate * (burst ? options.burst_multiplier : 1.0);
    const double next = t + arrivals.Exponential(1.0 / rate);
    if (next >= phase_end) {
      // Poisson arrivals are memoryless, so the pending gap can simply
      // be restarted at the modulating chain's phase boundary.
      t = phase_end;
      burst = !burst;
      phase_end += phases.Exponential(burst ? options.mean_burst_seconds
                                            : options.mean_calm_seconds);
      continue;
    }
    t = next;
    if (t >= options.duration_seconds) break;
    sessions.push_back(SessionPlan{t, SampleTurns(params, arrivals)});
  }
  // Sessions were emitted in time order, as BuildFromSessions expects.
  Trace trace = BuildFromSessions(params, sessions, /*request_cap=*/-1,
                                  lengths);
  trace.name = std::string(DatasetName(options.dataset)) + "-mmpp";

  std::vector<double> weights(options.class_mix.begin(),
                              options.class_mix.end());
  double total_weight = 0.0;
  for (double w : weights) {
    MUX_CHECK(w >= 0.0);
    total_weight += w;
  }
  MUX_CHECK(total_weight > 0.0);
  // One class draw per session, in first-arrival order (the request
  // list is already arrival-sorted), so every turn of a session shares
  // its class and the assignment is reproducible.
  std::unordered_map<std::int64_t, SloClass> session_class;
  for (RequestSpec& spec : trace.requests) {
    auto it = session_class.find(spec.session);
    if (it == session_class.end()) {
      it = session_class
               .emplace(spec.session,
                        static_cast<SloClass>(classes.WeightedIndex(weights)))
               .first;
    }
    spec.slo_class = it->second;
  }
  return trace;
}

Trace MergeTraces(const std::string& name, std::vector<Trace> traces) {
  Trace merged;
  merged.name = name;
  // Re-map session streams so sessions from different traces never
  // collide (stream 0 stays the shared system-prompt stream).
  std::int64_t stream_base = 0;
  for (Trace& trace : traces) {
    std::int64_t max_stream = 0;
    for (RequestSpec& spec : trace.requests) {
      auto remap = [&](kv::TokenSeq& seq) {
        for (kv::TokenSpan& span : seq) {
          if (span.stream != 0) span.stream += stream_base;
        }
      };
      remap(spec.prompt);
      remap(spec.full_seq);
      if (spec.session != 0) spec.session += stream_base;
      max_stream = std::max(max_stream, spec.session);
      merged.requests.push_back(std::move(spec));
    }
    stream_base = max_stream + 1;
  }
  std::stable_sort(merged.requests.begin(), merged.requests.end(),
                   [](const RequestSpec& a, const RequestSpec& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  for (std::size_t i = 0; i < merged.requests.size(); ++i) {
    merged.requests[i].id = static_cast<std::int64_t>(i);
  }
  return merged;
}

void ResampleArrivalsPoisson(Trace& trace, double rate_per_second,
                             std::uint64_t seed) {
  MUX_CHECK(rate_per_second > 0.0);
  sim::Rng rng(seed);
  double t = 0.0;
  // Keep the existing (session-consistent) order; only respace gaps.
  for (RequestSpec& spec : trace.requests) {
    t += rng.Exponential(1.0 / rate_per_second);
    spec.arrival_seconds = t;
  }
}

}  // namespace muxwise::workload
