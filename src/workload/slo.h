#ifndef MUXWISE_WORKLOAD_SLO_H_
#define MUXWISE_WORKLOAD_SLO_H_

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace muxwise::workload {

/**
 * Priority class attached to a request for overload control. Under
 * pressure the serving layer sheds batch work first and interactive
 * work last; with overload control disabled the class is inert.
 */
enum class SloClass : std::uint8_t {
  kInteractive = 0,
  kStandard = 1,
  kBatch = 2,
};

inline constexpr int kNumSloClasses = 3;

/** Stable rank for scheduling: lower rank is served / shed later. */
inline int SloClassRank(SloClass slo_class) {
  return static_cast<int>(slo_class);
}

inline const char* SloClassName(SloClass slo_class) {
  switch (slo_class) {
    case SloClass::kInteractive:
      return "interactive";
    case SloClass::kStandard:
      return "standard";
    case SloClass::kBatch:
      return "batch";
  }
  return "unknown";
}

/**
 * Service-level objectives for one deployment.
 *
 * Following the paper (§4.1): the goodput gate is the 99th-percentile
 * time-between-tokens (TBT, stricter than TPOT); TTFT is reported as a
 * latency distribution. Defaults: 50 ms TBT for Llama-8B, 100 ms for
 * Llama-70B and larger; TTFT 500 ms (chatbot-style).
 */
struct SloTargets {
  sim::Duration ttft = sim::Milliseconds(500);
  sim::Duration tbt = sim::Milliseconds(100);

  /**
   * Length scaling of the TTFT target: a 30K-token LooGLE prompt cannot
   * share a 500 ms deadline with a 200-token chat turn, which is also
   * why the paper evaluates preemption on TTFT *per token* (§4.4.3).
   */
  sim::Duration ttft_per_token = sim::Microseconds(400);

  /** Percentile at which attainment is judged (0.99 in the paper). */
  double percentile = 0.99;

  /** Absolute TTFT target for a request with `input_tokens` prompt. */
  sim::Duration TtftTargetFor(std::int64_t input_tokens) const {
    return ttft + input_tokens * ttft_per_token;
  }

  static SloTargets ForModel(const std::string& model_name) {
    SloTargets slo;
    if (model_name == "Llama-8B") {
      slo.tbt = sim::Milliseconds(50);
    } else {
      slo.tbt = sim::Milliseconds(100);
    }
    return slo;
  }
};

}  // namespace muxwise::workload

#endif  // MUXWISE_WORKLOAD_SLO_H_
