#ifndef MUXWISE_WORKLOAD_REQUEST_SPEC_H_
#define MUXWISE_WORKLOAD_REQUEST_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kv/token_seq.h"
#include "workload/slo.h"

namespace muxwise::workload {

/**
 * Immutable description of one request in a trace.
 *
 * `prompt` is the full model input (reused context plus new tokens) as a
 * compressed token sequence; `full_seq` appends the tokens the request
 * will generate, i.e. what gets committed to the KV cache on completion
 * so later turns of the session can reuse it.
 */
struct RequestSpec {
  std::int64_t id = 0;

  /** Arrival time offset from trace start, seconds. */
  double arrival_seconds = 0.0;

  /** Conversation session (equals the token stream id). */
  std::int64_t session = 0;

  /** Position of this turn within its session (0-based). */
  int session_seq = 0;

  kv::TokenSeq prompt;
  kv::TokenSeq full_seq;

  /** Total prompt tokens (== SeqLength(prompt)). */
  std::int64_t input_tokens = 0;

  /**
   * Tokens of the prompt that repeat earlier context (prior turns or a
   * shared system prompt) — the generator's ground truth, independent of
   * what a particular engine's cache manages to retain.
   */
  std::int64_t reused_tokens = 0;

  /** Output tokens the request generates. */
  std::int64_t output_tokens = 0;

  /**
   * Overload-control priority class. Defaults to standard so existing
   * traces and generators are unaffected.
   */
  SloClass slo_class = SloClass::kStandard;

  /** Prompt tokens that are new relative to the session history. */
  std::int64_t NewTokens() const { return input_tokens - reused_tokens; }
};

/** Aggregate length statistics, for calibration against paper Table 1. */
struct LengthStats {
  std::int64_t min = 0;
  double mean = 0.0;
  std::int64_t max = 0;
};

/** One generated workload trace. */
struct Trace {
  std::string name;
  std::vector<RequestSpec> requests;

  LengthStats InputStats() const;
  LengthStats OutputStats() const;
  LengthStats ReusedStats() const;

  /** Requests per second averaged over the whole trace. */
  double MeanRate() const;

  /** Duration from first to last arrival, seconds. */
  double SpanSeconds() const;

  /** Request counts per `bucket_seconds` bucket (Fig. 13 rate curve). */
  std::vector<double> RateCurve(double bucket_seconds) const;
};

}  // namespace muxwise::workload

#endif  // MUXWISE_WORKLOAD_REQUEST_SPEC_H_
