#ifndef MUXWISE_WORKLOAD_DATASETS_H_
#define MUXWISE_WORKLOAD_DATASETS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/request_spec.h"
#include "workload/slo.h"

namespace muxwise::workload {

/**
 * Identifies one of the five workloads of paper Table 1. The generators
 * synthesize token-length distributions (clamped log-normals) calibrated
 * to the table's min/mean/max, plus the structural properties that
 * matter to scheduling: multi-turn context accumulation for Conversation
 * and Tool&Agent, and the shared system prompt of OpenThoughts.
 */
enum class Dataset {
  kShareGpt,      // Chatbot: moderate input, moderate output, single turn.
  kLoogle,        // Long-context understanding: huge input, tiny output.
  kOpenThoughts,  // Reasoning: short input, very long output, shared sys.
  kConversation,  // Real-world multi-turn chat (Mooncake-style).
  kToolAgent,     // Real-world multi-turn tool/agent (Mooncake-style).
};

const char* DatasetName(Dataset dataset);

/** Tunable generator parameters; defaults reproduce Table 1. */
struct DatasetParams {
  Dataset dataset = Dataset::kShareGpt;

  // Per-turn new-token distribution (min/mean/max).
  double new_min = 0, new_mean = 0, new_max = 0;
  // Output-token distribution.
  double out_min = 0, out_mean = 0, out_max = 0;

  // Multi-turn structure (1 turn for single-turn datasets).
  double mean_turns = 1.0;
  int max_turns = 1;

  /** Mean client think time between a response and the next turn, s. */
  double think_seconds = 5.0;

  /** Shared system prompt length (OpenThoughts), 0 otherwise. */
  std::int64_t system_prompt_tokens = 0;

  /** Hard cap on a session's total context. */
  std::int64_t max_context_tokens = 123000;

  static DatasetParams For(Dataset dataset);
};

/**
 * Generates `num_requests` requests with Poisson arrivals at
 * `rate_per_second` (session-level arrivals; turns within a session
 * follow completion-plus-think-time pacing). Deterministic in `seed`.
 */
Trace GenerateTrace(Dataset dataset, int num_requests, double rate_per_second,
                    std::uint64_t seed);

/** As GenerateTrace but with explicit parameter overrides. */
Trace GenerateTraceWithParams(const DatasetParams& params, int num_requests,
                              double rate_per_second, std::uint64_t seed);

/**
 * Generates a bursty "real-world" trace (paper Fig. 13): the session
 * arrival rate is modulated per 10-second bucket with occasional spikes
 * up to `max_spike`x the base rate.
 */
Trace GenerateBurstyTrace(Dataset dataset, double base_rate_per_second,
                          double duration_seconds, double max_spike,
                          std::uint64_t seed);

/**
 * Markov-modulated Poisson arrivals: a two-state continuous-time chain
 * alternates between a calm phase (session rate `calm_rate_per_second`)
 * and a burst phase (`burst_multiplier` times that), with exponential
 * sojourns in each. The overload-control evaluation drives admission
 * and brownout with these traces because — unlike the per-bucket
 * modulation of GenerateBurstyTrace — bursts arrive as sustained
 * correlated pressure, not ten-second blips.
 *
 * Each session draws one SLO class from `class_mix` (weights over
 * interactive/standard/batch, normalized internally), so every turn of
 * a conversation shares its class. Deterministic in `seed`.
 */
struct MmppOptions {
  Dataset dataset = Dataset::kShareGpt;
  double calm_rate_per_second = 1.0;  // Session arrivals/s, calm phase.
  double burst_multiplier = 4.0;      // Burst rate = calm rate x this.
  double mean_calm_seconds = 30.0;    // Mean sojourn in the calm phase.
  double mean_burst_seconds = 8.0;    // Mean sojourn in the burst phase.
  double duration_seconds = 120.0;    // Arrival horizon.
  std::array<double, kNumSloClasses> class_mix = {0.3, 0.5, 0.2};
};

Trace GenerateMmppTrace(const MmppOptions& options, std::uint64_t seed);

/**
 * Interleaves several traces into one (re-sorting by arrival time and
 * re-numbering ids). Used for the 50/50 ShareGPT+LooGLE preemption
 * study (paper Fig. 20).
 */
Trace MergeTraces(const std::string& name, std::vector<Trace> traces);

/** Replaces arrival timestamps with a fresh Poisson process (Fig. 15). */
void ResampleArrivalsPoisson(Trace& trace, double rate_per_second,
                             std::uint64_t seed);

}  // namespace muxwise::workload

#endif  // MUXWISE_WORKLOAD_DATASETS_H_
