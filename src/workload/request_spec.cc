#include "workload/request_spec.h"

#include <algorithm>
#include <cmath>

namespace muxwise::workload {

namespace {

template <typename Getter>
LengthStats ComputeStats(const std::vector<RequestSpec>& requests,
                         Getter getter) {
  LengthStats stats;
  if (requests.empty()) return stats;
  stats.min = getter(requests.front());
  double sum = 0.0;
  for (const RequestSpec& r : requests) {
    const std::int64_t v = getter(r);
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    sum += static_cast<double>(v);
  }
  stats.mean = sum / static_cast<double>(requests.size());
  return stats;
}

}  // namespace

LengthStats Trace::InputStats() const {
  return ComputeStats(requests,
                      [](const RequestSpec& r) { return r.input_tokens; });
}

LengthStats Trace::OutputStats() const {
  return ComputeStats(requests,
                      [](const RequestSpec& r) { return r.output_tokens; });
}

LengthStats Trace::ReusedStats() const {
  return ComputeStats(requests,
                      [](const RequestSpec& r) { return r.reused_tokens; });
}

double Trace::MeanRate() const {
  const double span = SpanSeconds();
  if (span <= 0.0 || requests.empty()) return 0.0;
  return static_cast<double>(requests.size()) / span;
}

double Trace::SpanSeconds() const {
  if (requests.empty()) return 0.0;
  double lo = requests.front().arrival_seconds;
  double hi = lo;
  for (const RequestSpec& r : requests) {
    lo = std::min(lo, r.arrival_seconds);
    hi = std::max(hi, r.arrival_seconds);
  }
  return hi - lo;
}

std::vector<double> Trace::RateCurve(double bucket_seconds) const {
  std::vector<double> curve;
  if (requests.empty() || bucket_seconds <= 0.0) return curve;
  const double span = SpanSeconds();
  const std::size_t buckets =
      static_cast<std::size_t>(std::ceil(span / bucket_seconds)) + 1;
  curve.assign(buckets, 0.0);
  for (const RequestSpec& r : requests) {
    const std::size_t b =
        static_cast<std::size_t>(r.arrival_seconds / bucket_seconds);
    if (b < curve.size()) curve[b] += 1.0 / bucket_seconds;
  }
  return curve;
}

}  // namespace muxwise::workload
