#ifndef MUXWISE_WORKLOAD_TRACE_IO_H_
#define MUXWISE_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "workload/request_spec.h"

namespace muxwise::workload {

/**
 * Serializes a trace as JSON Lines: a header object
 *   {"trace": <name>, "requests": <n>}
 * followed by one object per request, e.g.
 *   {"id":3,"arrival_s":1.25,"session":7,"turn":0,"output":120,
 *    "prompt":[[0,0,243],[7,0,512]]}
 * `prompt` lists [stream, begin, end) token spans; the generated
 * continuation is implied (session stream, input..input+output).
 *
 * The format is stable, diff-friendly, and hand-editable, so recorded
 * workloads can be checked in and replayed across versions.
 */
void WriteTrace(const Trace& trace, std::ostream& out);

/** WriteTrace to a file; fatal on I/O failure. */
void WriteTraceFile(const Trace& trace, const std::string& path);

/**
 * Parses a trace written by WriteTrace. Fatal on malformed input with
 * a line-numbered diagnostic (the format is machine-generated; a parse
 * failure means the file was corrupted or hand-edited incorrectly).
 */
Trace ReadTrace(std::istream& in);

/** ReadTrace from a file; fatal if unreadable. */
Trace ReadTraceFile(const std::string& path);

}  // namespace muxwise::workload

#endif  // MUXWISE_WORKLOAD_TRACE_IO_H_
