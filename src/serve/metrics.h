#ifndef MUXWISE_SERVE_METRICS_H_
#define MUXWISE_SERVE_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant_registry.h"
#include "serve/quantile_sketch.h"
#include "serve/request.h"
#include "sim/time.h"
#include "workload/slo.h"

namespace muxwise::serve {

/**
 * Percentile over a sample vector (p in [0,1]); 0 for empty input.
 * Linear interpolation between closest ranks (the "exclusive of the
 * copy-and-sort" form of R-7): rank p * (n - 1) splits into its floor
 * and ceiling neighbours, blended by the fractional part — so p50 of
 * {1, 2} is 1.5, not 1 or 2, and a single sample is every percentile.
 */
double Percentile(std::vector<double> samples, double p);

/**
 * Mean/p50/p99 of one latency population (zeros when empty). Kept for
 * callers that already hold a sample vector; the metrics pipeline
 * itself summarises through QuantileSketch::Summarize(), which returns
 * bit-identical values on the exact tier without copying per call.
 */
LatencySummary Summarize(const std::vector<double>& samples_ms);

/**
 * Goodput split by terminal disposition (paper's goodput, degraded by
 * faults): only `attained` requests carry latency samples and count
 * toward throughput; the other three are the failure-recovery layer's
 * degraded outcomes.
 */
struct GoodputSplit {
  std::size_t attained = 0;
  std::size_t timed_out = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;

  std::size_t total() const { return attained + timed_out + shed + failed; }
};

/**
 * Per-SLO-class slice of the goodput split plus the queue-delay and
 * TTFT populations the overload-control evaluation reports
 * (interactive must degrade last: attainment ordered interactive >=
 * standard >= batch under overload). TTFT attainment against the
 * per-prompt target slo.TtftTargetFor(prompt) is counted at ingest by
 * MetricsCollector (against its bound SLO), so the slice stays O(1)
 * in requests instead of keeping a (TTFT, prompt-tokens) pair per
 * request.
 */
struct ClassMetrics {
  GoodputSplit split;

  /** Queue delay (arrival -> prefill start) of attained requests, ms. */
  QuantileSketch queue_delay;

  /** TTFT of attained requests, ms. */
  QuantileSketch ttft;

  /** Attained requests whose TTFT met slo.TtftTargetFor(prompt). */
  std::size_t ttft_attained = 0;

  /** p99 queue delay (exact below the sketch's exact-tier capacity). */
  double QueueDelayP99() const { return queue_delay.Quantile(0.99); }

  std::size_t TtftAttained() const { return ttft_attained; }

  /** TtftAttained / total arrivals of the class (1.0 when empty). */
  double Attainment() const;
};

/**
 * Collects per-request latency stamps and derives the evaluation
 * metrics of the paper: TTFT, TBT (per-token gaps, strict), TPOT
 * (per-request average), E2E, token throughput, and TBT SLO attainment.
 *
 * Populations live in QuantileSketch instances: exact (bit-identical
 * to the historical full-sample path) below the sketch's exact-tier
 * capacity, bounded-error histograms past it — so memory is O(1) in
 * the number of requests and 10^7-request scenarios stream through
 * without accumulating samples.
 *
 * Requests arriving with a degraded Outcome (timed-out / shed / failed)
 * are tallied in the goodput split but contribute no latency samples:
 * they never produced the tokens the SLO populations measure.
 */
class MetricsCollector {
 public:
  /** Collects against the default SLO targets. */
  MetricsCollector() = default;

  /**
   * Binds the SLO whose per-prompt TTFT targets the per-class
   * attainment counters are judged against at ingest (normally the
   * deployment's SLO).
   */
  explicit MetricsCollector(const workload::SloTargets& slo) : slo_(slo) {}

  /** Ingests a finished request's timing record. */
  void OnRequestComplete(const Request& request);

  /** Attained requests (== completed()) plus the degraded outcomes. */
  GoodputSplit Split() const;

  /** Per-SLO-class slice (classes default to standard when unset). */
  const ClassMetrics& ClassSlice(workload::SloClass slo_class) const {
    return per_class_[workload::SloClassRank(slo_class)];
  }

  /** True once any non-standard class has been reported (i.e. the
   * per-class split says more than the aggregate). */
  bool HasClassMix() const;

  /** Every OnRequestComplete call, over all terminal outcomes. */
  std::size_t notified() const {
    return completed_ + timed_out_ + shed_ + failed_;
  }

  std::size_t completed() const { return completed_; }
  std::int64_t output_tokens() const { return output_tokens_; }
  std::int64_t input_tokens() const { return input_tokens_; }

  LatencySummary Ttft() const { return ttft_.Summarize(); }
  LatencySummary Tbt() const { return tbt_.Summarize(); }
  LatencySummary Tpot() const { return tpot_.Summarize(); }
  LatencySummary E2e() const { return e2e_.Summarize(); }

  /**
   * TTFT normalized per prompt token (paper §4.4.3 preemption study).
   */
  LatencySummary TtftPerToken() const { return ttft_per_token_.Summarize(); }

  /** Population sketches (CDF plots, digest keying, accuracy gates). */
  const QuantileSketch& ttft_sketch() const { return ttft_; }
  const QuantileSketch& ttft_per_token_sketch() const {
    return ttft_per_token_;
  }
  const QuantileSketch& tbt_sketch() const { return tbt_; }
  const QuantileSketch& tpot_sketch() const { return tpot_; }
  const QuantileSketch& e2e_sketch() const { return e2e_; }

  /** Fraction of token gaps within the TBT target. */
  double TbtAttainment(sim::Duration tbt_target) const;

  /** True if P99 TBT and the attainment percentile meet `slo`. */
  bool MeetsSlo(const workload::SloTargets& slo) const;

  /** Output tokens per second over [t0, t1]. */
  double TokenThroughput(sim::Time t0, sim::Time t1) const;

  /** Completed requests per second over [t0, t1]. */
  double RequestThroughput(sim::Time t0, sim::Time t1) const;

  /**
   * Registers latency-sanity audits: every population minimum is
   * non-negative, no request completed earlier than its first token
   * (E2E >= TTFT, checked at ingest), and the per-population sample
   * counts agree with `completed()`.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

 private:
  workload::SloTargets slo_;

  std::size_t completed_ = 0;
  std::size_t timed_out_ = 0;
  std::size_t shed_ = 0;
  std::size_t failed_ = 0;
  std::int64_t output_tokens_ = 0;
  std::int64_t input_tokens_ = 0;

  /** Requests whose E2E came out below their TTFT (must stay 0). */
  std::size_t e2e_before_ttft_ = 0;

  QuantileSketch ttft_;
  QuantileSketch ttft_per_token_;
  QuantileSketch tbt_;
  QuantileSketch tpot_;
  QuantileSketch e2e_;

  std::array<ClassMetrics, workload::kNumSloClasses> per_class_;
};

}  // namespace muxwise::serve

#endif  // MUXWISE_SERVE_METRICS_H_
