#ifndef MUXWISE_SERVE_METRICS_H_
#define MUXWISE_SERVE_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/invariant_registry.h"
#include "serve/request.h"
#include "sim/time.h"
#include "workload/slo.h"

namespace muxwise::serve {

/**
 * Percentile over a sample vector (p in [0,1]); 0 for empty input.
 * Linear interpolation between closest ranks (the "exclusive of the
 * copy-and-sort" form of R-7): rank p * (n - 1) splits into its floor
 * and ceiling neighbours, blended by the fractional part — so p50 of
 * {1, 2} is 1.5, not 1 or 2, and a single sample is every percentile.
 */
double Percentile(std::vector<double> samples, double p);

/** Percentile over already ascending-sorted samples (no copy). */
double PercentileSorted(const std::vector<double>& sorted, double p);

/** Summary statistics of one latency population, milliseconds. */
struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t count = 0;
};

/**
 * Mean/p50/p99 of one latency population (zeros when empty). The
 * single summarisation path shared by MetricsCollector and the fleet
 * router's failover-latency reporting.
 */
LatencySummary Summarize(const std::vector<double>& samples_ms);

/**
 * Goodput split by terminal disposition (paper's goodput, degraded by
 * faults): only `attained` requests carry latency samples and count
 * toward throughput; the other three are the failure-recovery layer's
 * degraded outcomes.
 */
struct GoodputSplit {
  std::size_t attained = 0;
  std::size_t timed_out = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;

  std::size_t total() const { return attained + timed_out + shed + failed; }
};

/**
 * Per-SLO-class slice of the goodput split plus the queue-delay and
 * TTFT-attainment populations the overload-control evaluation reports
 * (interactive must degrade last: attainment ordered interactive >=
 * standard >= batch under overload).
 */
struct ClassMetrics {
  GoodputSplit split;

  /** Queue delay (arrival -> prefill start) of attained requests, ms. */
  std::vector<double> queue_delay_ms;

  /** (TTFT ms, prompt tokens) pairs of attained requests. */
  std::vector<std::pair<double, std::int64_t>> ttft;

  /** p99 queue delay via the sort-once PercentileSorted path. */
  double QueueDelayP99() const;

  /** Attained requests whose TTFT met slo.TtftTargetFor(prompt). */
  std::size_t TtftAttained(const workload::SloTargets& slo) const;

  /** TtftAttained / total arrivals of the class (1.0 when empty). */
  double Attainment(const workload::SloTargets& slo) const;
};

/**
 * Collects per-request latency stamps and derives the evaluation
 * metrics of the paper: TTFT, TBT (per-token gaps, strict), TPOT
 * (per-request average), E2E, token throughput, and TBT SLO attainment.
 *
 * Requests arriving with a degraded Outcome (timed-out / shed / failed)
 * are tallied in the goodput split but contribute no latency samples:
 * they never produced the tokens the SLO populations measure.
 */
class MetricsCollector {
 public:
  /** Ingests a finished request's timing record. */
  void OnRequestComplete(const Request& request);

  /** Attained requests (== completed()) plus the degraded outcomes. */
  GoodputSplit Split() const;

  /** Per-SLO-class slice (classes default to standard when unset). */
  const ClassMetrics& ClassSlice(workload::SloClass slo_class) const {
    return per_class_[workload::SloClassRank(slo_class)];
  }

  /** True once any non-standard class has been reported (i.e. the
   * per-class split says more than the aggregate). */
  bool HasClassMix() const;

  /** Every OnRequestComplete call, over all terminal outcomes. */
  std::size_t notified() const {
    return completed_ + timed_out_ + shed_ + failed_;
  }

  std::size_t completed() const { return completed_; }
  std::int64_t output_tokens() const { return output_tokens_; }
  std::int64_t input_tokens() const { return input_tokens_; }

  LatencySummary Ttft() const;
  LatencySummary Tbt() const;   // Pooled over every token gap.
  LatencySummary Tpot() const;  // Per-request averages.
  LatencySummary E2e() const;

  /**
   * TTFT normalized per prompt token (paper §4.4.3 preemption study).
   */
  LatencySummary TtftPerToken() const;

  /** Raw per-token TTFT samples (ms) for CDF plots. */
  const std::vector<double>& ttft_per_token_samples_ms() const {
    return ttft_per_token_ms_;
  }

  /** Fraction of token gaps within the TBT target. */
  double TbtAttainment(sim::Duration tbt_target) const;

  /** True if P99 TBT and the attainment percentile meet `slo`. */
  bool MeetsSlo(const workload::SloTargets& slo) const;

  /** Output tokens per second over [t0, t1]. */
  double TokenThroughput(sim::Time t0, sim::Time t1) const;

  /** Completed requests per second over [t0, t1]. */
  double RequestThroughput(sim::Time t0, sim::Time t1) const;

  /**
   * Registers latency-sanity audits: every recorded sample is
   * non-negative, each request completed no earlier than its first
   * token (E2E >= TTFT, recorded pairwise in completion order), and
   * the per-population sample counts agree with `completed()`.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

 private:
  std::size_t completed_ = 0;
  std::size_t timed_out_ = 0;
  std::size_t shed_ = 0;
  std::size_t failed_ = 0;
  std::int64_t output_tokens_ = 0;
  std::int64_t input_tokens_ = 0;

  std::vector<double> ttft_ms_;
  std::vector<double> ttft_per_token_ms_;
  std::vector<double> tbt_ms_;
  std::vector<double> tpot_ms_;
  std::vector<double> e2e_ms_;

  std::array<ClassMetrics, workload::kNumSloClasses> per_class_;
};

}  // namespace muxwise::serve

#endif  // MUXWISE_SERVE_METRICS_H_
