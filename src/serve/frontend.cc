#include "serve/frontend.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace muxwise::serve {

Frontend::Frontend(sim::Simulator* simulator, Engine* engine,
                   const workload::Trace* trace, MetricsCollector* metrics)
    : sim_(simulator), engine_(engine), trace_(trace), metrics_(metrics) {
  MUX_CHECK(sim_ != nullptr && engine_ != nullptr && trace_ != nullptr);
  states_.assign(trace_->requests.size(), State::kPending);
  for (std::size_t i = 0; i < trace_->requests.size(); ++i) {
    index_by_id_[trace_->requests[i].id] = i;
  }
  engine_->set_on_complete(
      [this](std::unique_ptr<Request> request) {
        OnComplete(std::move(request));
      });
}

void Frontend::Start() {
  for (std::size_t i = 0; i < trace_->requests.size(); ++i) {
    const sim::Time when =
        sim::Seconds(trace_->requests[i].arrival_seconds);
    sim_->ScheduleAt(std::max(sim_->Now(), when),
                     [this, i] { OnArrival(i); });
  }
}

bool Frontend::PredecessorDone(const workload::RequestSpec& spec) const {
  if (spec.session_seq == 0) return true;
  auto it = session_completed_turns_.find(spec.session);
  const int done = it == session_completed_turns_.end() ? 0 : it->second;
  return done >= spec.session_seq;
}

void Frontend::OnArrival(std::size_t index) {
  MUX_CHECK(states_[index] == State::kPending);
  states_[index] = State::kArrived;
  const workload::RequestSpec& spec = trace_->requests[index];
  if (PredecessorDone(spec)) {
    Dispatch(index);
  } else {
    held_[spec.session].push_back(  // muxlint: allow(unbounded-queue) —
                                    // holds at most the session's future
                                    // turns, bounded by the finite trace.
        index);
  }
}

void Frontend::Dispatch(std::size_t index) {
  MUX_CHECK(states_[index] == State::kArrived);
  states_[index] = State::kDispatched;
  ++dispatched_;
  auto request = std::make_unique<Request>(&trace_->requests[index]);
  request->arrival = sim_->Now();
  engine_->Enqueue(std::move(request));
}

void Frontend::OnComplete(std::unique_ptr<Request> request) {
  const std::int64_t id = request->spec->id;
  auto it = index_by_id_.find(id);
  MUX_CHECK(it != index_by_id_.end());
  const std::size_t index = it->second;
  MUX_CHECK(states_[index] == State::kDispatched);
  states_[index] = State::kCompleted;
  ++completed_;
  last_completion_ = sim_->Now();
  if (metrics_ != nullptr) metrics_->OnRequestComplete(*request);

  // Release the next held turn of this session, if its time has come.
  const workload::RequestSpec& spec = *request->spec;
  int& done = session_completed_turns_[spec.session];
  done = std::max(done, spec.session_seq + 1);
  auto held_it = held_.find(spec.session);
  if (held_it != held_.end()) {
    auto& queue = held_it->second;
    // Dispatch every held request whose predecessors are now complete
    // (normally just the next turn).
    std::vector<std::size_t> ready;
    for (auto qi = queue.begin(); qi != queue.end();) {
      if (PredecessorDone(trace_->requests[*qi])) {
        ready.push_back(*qi);
        qi = queue.erase(qi);
      } else {
        ++qi;
      }
    }
    for (std::size_t r : ready) Dispatch(r);
  }
}

}  // namespace muxwise::serve
