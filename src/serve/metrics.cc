#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logging.h"

namespace muxwise::serve {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  MUX_CHECK(p >= 0.0 && p <= 1.0);
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, p);
}

LatencySummary Summarize(const std::vector<double>& samples_ms) {
  LatencySummary s;
  s.count = samples_ms.size();
  if (samples_ms.empty()) return s;
  s.mean_ms = std::accumulate(samples_ms.begin(), samples_ms.end(), 0.0) /
              static_cast<double>(samples_ms.size());
  // Sort one copy and take both percentiles from it; identical values
  // to per-percentile Percentile() calls, at one sort instead of two.
  std::vector<double> sorted = samples_ms;
  std::sort(sorted.begin(), sorted.end());
  s.p50_ms = PercentileSorted(sorted, 0.50);
  s.p99_ms = PercentileSorted(sorted, 0.99);
  return s;
}

double ClassMetrics::QueueDelayP99() const {
  std::vector<double> sorted = queue_delay_ms;
  std::sort(sorted.begin(), sorted.end());
  return PercentileSorted(sorted, 0.99);
}

std::size_t ClassMetrics::TtftAttained(
    const workload::SloTargets& slo) const {
  std::size_t ok = 0;
  for (const auto& [ttft_ms, input_tokens] : ttft) {
    if (ttft_ms <= sim::ToMilliseconds(slo.TtftTargetFor(input_tokens))) {
      ++ok;
    }
  }
  return ok;
}

double ClassMetrics::Attainment(const workload::SloTargets& slo) const {
  if (split.total() == 0) return 1.0;
  return static_cast<double>(TtftAttained(slo)) /
         static_cast<double>(split.total());
}

void MetricsCollector::OnRequestComplete(const Request& request) {
  // A request must reach a terminal state before it is reported; a
  // kRetrying request is still owned by its engine's recovery path.
  MUX_CHECK(request.outcome != Outcome::kRetrying);
  ClassMetrics& slice =
      per_class_[workload::SloClassRank(request.spec->slo_class)];
  switch (request.outcome) {
    case Outcome::kTimedOut:
      ++timed_out_;
      ++slice.split.timed_out;
      return;
    case Outcome::kShed:
      ++shed_;
      ++slice.split.shed;
      return;
    case Outcome::kFailed:
      ++failed_;
      ++slice.split.failed;
      return;
    default:
      break;  // kCompleted — and kRunning, for fault-oblivious engines.
  }
  MUX_CHECK(request.completion >= 0);
  MUX_CHECK(request.first_token >= 0);
  ++completed_;
  ++slice.split.attained;
  if (request.prefill_start >= request.arrival) {
    slice.queue_delay_ms.push_back(
        sim::ToMilliseconds(request.prefill_start - request.arrival));
  }
  slice.ttft.emplace_back(sim::ToMilliseconds(request.Ttft()),
                          request.spec->input_tokens);
  output_tokens_ += request.generated;
  input_tokens_ += request.spec->input_tokens;

  const double ttft_ms = sim::ToMilliseconds(request.Ttft());
  ttft_ms_.push_back(ttft_ms);
  ttft_per_token_ms_.push_back(
      ttft_ms / std::max<std::int64_t>(1, request.spec->input_tokens));
  e2e_ms_.push_back(sim::ToMilliseconds(request.E2e()));

  // Per-token gaps after the first token are the TBT population.
  for (std::size_t i = 1; i < request.token_times.size(); ++i) {
    tbt_ms_.push_back(sim::ToMilliseconds(request.token_times[i] -
                                          request.token_times[i - 1]));
  }
  if (request.generated > 1) {
    tpot_ms_.push_back(
        sim::ToMilliseconds(request.completion - request.first_token) /
        static_cast<double>(request.generated - 1));
  }
}

GoodputSplit MetricsCollector::Split() const {
  GoodputSplit split;
  split.attained = completed_;
  split.timed_out = timed_out_;
  split.shed = shed_;
  split.failed = failed_;
  return split;
}

bool MetricsCollector::HasClassMix() const {
  using workload::SloClass;
  return ClassSlice(SloClass::kInteractive).split.total() > 0 ||
         ClassSlice(SloClass::kBatch).split.total() > 0;
}

LatencySummary MetricsCollector::Ttft() const { return Summarize(ttft_ms_); }
LatencySummary MetricsCollector::Tbt() const { return Summarize(tbt_ms_); }
LatencySummary MetricsCollector::Tpot() const { return Summarize(tpot_ms_); }
LatencySummary MetricsCollector::E2e() const { return Summarize(e2e_ms_); }

LatencySummary MetricsCollector::TtftPerToken() const {
  return Summarize(ttft_per_token_ms_);
}

double MetricsCollector::TbtAttainment(sim::Duration tbt_target) const {
  if (tbt_ms_.empty()) return 1.0;
  const double target_ms = sim::ToMilliseconds(tbt_target);
  const std::size_t ok = static_cast<std::size_t>(std::count_if(
      tbt_ms_.begin(), tbt_ms_.end(),
      [target_ms](double v) { return v <= target_ms; }));
  return static_cast<double>(ok) / static_cast<double>(tbt_ms_.size());
}

bool MetricsCollector::MeetsSlo(const workload::SloTargets& slo) const {
  return TbtAttainment(slo.tbt) >= slo.percentile;
}

double MetricsCollector::TokenThroughput(sim::Time t0, sim::Time t1) const {
  const double span = sim::ToSeconds(t1 - t0);
  if (span <= 0.0) return 0.0;
  return static_cast<double>(output_tokens_ + input_tokens_) / span;
}

double MetricsCollector::RequestThroughput(sim::Time t0, sim::Time t1) const {
  const double span = sim::ToSeconds(t1 - t0);
  if (span <= 0.0) return 0.0;
  return static_cast<double>(completed_) / span;
}

void MetricsCollector::RegisterAudits(
    check::InvariantRegistry& registry) const {
  registry.Register(
      "Metrics", "latency-sanity", [this](check::AuditContext& ctx) {
        auto non_negative = [&ctx](const std::vector<double>& samples,
                                   const char* population) {
          for (double s : samples) {
            if (!ctx.Check(s >= 0.0, std::string("negative ") + population +
                                         " sample")) {
              break;  // One report per population is enough.
            }
          }
        };
        non_negative(ttft_ms_, "TTFT");
        non_negative(ttft_per_token_ms_, "TTFT-per-token");
        non_negative(tbt_ms_, "TBT");
        non_negative(tpot_ms_, "TPOT");
        non_negative(e2e_ms_, "E2E");
        // OnRequestComplete appends one TTFT and one E2E per request,
        // so the populations pair up elementwise.
        for (std::size_t i = 0; i < ttft_ms_.size() && i < e2e_ms_.size();
             ++i) {
          if (!ctx.Check(e2e_ms_[i] >= ttft_ms_[i],
                         "request completed before its first token "
                         "(E2E < TTFT at index " +
                             std::to_string(i) + ")")) {
            break;
          }
        }
      });
  registry.Register(
      "Metrics", "sample-counts", [this](check::AuditContext& ctx) {
        ctx.Check(ttft_ms_.size() == completed_,
                  "TTFT sample count disagrees with completed requests");
        ctx.Check(e2e_ms_.size() == completed_,
                  "E2E sample count disagrees with completed requests");
        ctx.Check(ttft_per_token_ms_.size() == completed_,
                  "TTFT-per-token count disagrees with completed requests");
        ctx.Check(tpot_ms_.size() <= completed_,
                  "more TPOT samples than completed requests");
        ctx.Check(output_tokens_ >= 0 && input_tokens_ >= 0,
                  "negative token counters");
      });
  registry.Register(
      "Metrics", "terminal-accounting", [this](check::AuditContext& ctx) {
        // Degraded outcomes never contribute latency samples, so the
        // split's attained slice alone must carry every sample.
        const GoodputSplit split = Split();
        ctx.Check(split.attained == completed_,
                  "attained slice disagrees with completed counter");
        ctx.Check(split.total() == notified(),
                  "goodput split loses requests: " +
                      std::to_string(split.total()) + " split vs " +
                      std::to_string(notified()) + " notified");
        // The per-class slices partition the aggregate split exactly.
        std::size_t class_total = 0;
        std::size_t class_attained = 0;
        for (const ClassMetrics& slice : per_class_) {
          class_total += slice.split.total();
          class_attained += slice.split.attained;
          ctx.Check(slice.ttft.size() == slice.split.attained,
                    "class TTFT population disagrees with its split");
          ctx.Check(slice.queue_delay_ms.size() <= slice.split.attained,
                    "more class queue-delay samples than attained");
        }
        ctx.Check(class_total == notified(),
                  "per-class splits lose requests");
        ctx.Check(class_attained == completed_,
                  "per-class attained disagrees with aggregate");
      });
}

}  // namespace muxwise::serve
