#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace muxwise::serve {

double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, p);
}

LatencySummary Summarize(const std::vector<double>& samples_ms) {
  QuantileSketch sketch;
  for (double s : samples_ms) sketch.Add(s);
  return sketch.Summarize();
}

double ClassMetrics::Attainment() const {
  if (split.total() == 0) return 1.0;
  return static_cast<double>(ttft_attained) /
         static_cast<double>(split.total());
}

void MetricsCollector::OnRequestComplete(const Request& request) {
  // A request must reach a terminal state before it is reported; a
  // kRetrying request is still owned by its engine's recovery path.
  MUX_CHECK(request.outcome != Outcome::kRetrying);
  ClassMetrics& slice =
      per_class_[workload::SloClassRank(request.spec->slo_class)];
  switch (request.outcome) {
    case Outcome::kTimedOut:
      ++timed_out_;
      ++slice.split.timed_out;
      return;
    case Outcome::kShed:
      ++shed_;
      ++slice.split.shed;
      return;
    case Outcome::kFailed:
      ++failed_;
      ++slice.split.failed;
      return;
    default:
      break;  // kCompleted — and kRunning, for fault-oblivious engines.
  }
  MUX_CHECK(request.completion >= 0);
  MUX_CHECK(request.first_token >= 0);
  ++completed_;
  ++slice.split.attained;
  if (request.prefill_start >= request.arrival) {
    slice.queue_delay.Add(
        sim::ToMilliseconds(request.prefill_start - request.arrival));
  }
  output_tokens_ += request.generated;
  input_tokens_ += request.spec->input_tokens;

  const double ttft_ms = sim::ToMilliseconds(request.Ttft());
  const double e2e_ms = sim::ToMilliseconds(request.E2e());
  slice.ttft.Add(ttft_ms);
  // Attainment against the per-prompt target is judged here, while the
  // prompt length is still in hand — the sketch keeps only the TTFT
  // population, not per-request (latency, tokens) pairs.
  if (ttft_ms <=
      sim::ToMilliseconds(slo_.TtftTargetFor(request.spec->input_tokens))) {
    ++slice.ttft_attained;
  }
  ttft_.Add(ttft_ms);
  ttft_per_token_.Add(
      ttft_ms / static_cast<double>(
                    std::max<std::int64_t>(1, request.spec->input_tokens)));
  e2e_.Add(e2e_ms);
  if (e2e_ms < ttft_ms) ++e2e_before_ttft_;

  // Per-token gaps after the first token are the TBT population.
  for (std::size_t i = 1; i < request.token_times.size(); ++i) {
    tbt_.Add(sim::ToMilliseconds(request.token_times[i] -
                                 request.token_times[i - 1]));
  }
  if (request.generated > 1) {
    tpot_.Add(
        sim::ToMilliseconds(request.completion - request.first_token) /
        static_cast<double>(request.generated - 1));
  }
}

GoodputSplit MetricsCollector::Split() const {
  GoodputSplit split;
  split.attained = completed_;
  split.timed_out = timed_out_;
  split.shed = shed_;
  split.failed = failed_;
  return split;
}

bool MetricsCollector::HasClassMix() const {
  using workload::SloClass;
  return ClassSlice(SloClass::kInteractive).split.total() > 0 ||
         ClassSlice(SloClass::kBatch).split.total() > 0;
}

double MetricsCollector::TbtAttainment(sim::Duration tbt_target) const {
  if (tbt_.empty()) return 1.0;
  const double target_ms = sim::ToMilliseconds(tbt_target);
  return tbt_.CountLessEqual(target_ms) /
         static_cast<double>(tbt_.Count());
}

bool MetricsCollector::MeetsSlo(const workload::SloTargets& slo) const {
  return TbtAttainment(slo.tbt) >= slo.percentile;
}

double MetricsCollector::TokenThroughput(sim::Time t0, sim::Time t1) const {
  const double span = sim::ToSeconds(t1 - t0);
  if (span <= 0.0) return 0.0;
  return static_cast<double>(output_tokens_ + input_tokens_) / span;
}

double MetricsCollector::RequestThroughput(sim::Time t0, sim::Time t1) const {
  const double span = sim::ToSeconds(t1 - t0);
  if (span <= 0.0) return 0.0;
  return static_cast<double>(completed_) / span;
}

void MetricsCollector::RegisterAudits(
    check::InvariantRegistry& registry) const {
  registry.Register(
      "Metrics", "latency-sanity", [this](check::AuditContext& ctx) {
        auto non_negative = [&ctx](const QuantileSketch& sketch,
                                   const char* population) {
          ctx.Check(sketch.empty() || sketch.Min() >= 0.0,
                    std::string("negative ") + population + " sample");
        };
        non_negative(ttft_, "TTFT");
        non_negative(ttft_per_token_, "TTFT-per-token");
        non_negative(tbt_, "TBT");
        non_negative(tpot_, "TPOT");
        non_negative(e2e_, "E2E");
        // OnRequestComplete compares each request's E2E against its
        // TTFT at ingest; the violation counter must have stayed zero.
        ctx.Check(e2e_before_ttft_ == 0,
                  "requests completed before their first token "
                  "(E2E < TTFT for " +
                      std::to_string(e2e_before_ttft_) + " requests)");
      });
  registry.Register(
      "Metrics", "sample-counts", [this](check::AuditContext& ctx) {
        ctx.Check(ttft_.Count() == completed_,
                  "TTFT sample count disagrees with completed requests");
        ctx.Check(e2e_.Count() == completed_,
                  "E2E sample count disagrees with completed requests");
        ctx.Check(ttft_per_token_.Count() == completed_,
                  "TTFT-per-token count disagrees with completed requests");
        ctx.Check(tpot_.Count() <= completed_,
                  "more TPOT samples than completed requests");
        ctx.Check(output_tokens_ >= 0 && input_tokens_ >= 0,
                  "negative token counters");
      });
  registry.Register(
      "Metrics", "terminal-accounting", [this](check::AuditContext& ctx) {
        // Degraded outcomes never contribute latency samples, so the
        // split's attained slice alone must carry every sample.
        const GoodputSplit split = Split();
        ctx.Check(split.attained == completed_,
                  "attained slice disagrees with completed counter");
        ctx.Check(split.total() == notified(),
                  "goodput split loses requests: " +
                      std::to_string(split.total()) + " split vs " +
                      std::to_string(notified()) + " notified");
        // The per-class slices partition the aggregate split exactly.
        std::size_t class_total = 0;
        std::size_t class_attained = 0;
        for (const ClassMetrics& slice : per_class_) {
          class_total += slice.split.total();
          class_attained += slice.split.attained;
          ctx.Check(slice.ttft.Count() == slice.split.attained,
                    "class TTFT population disagrees with its split");
          ctx.Check(slice.queue_delay.Count() <= slice.split.attained,
                    "more class queue-delay samples than attained");
          ctx.Check(slice.ttft_attained <= slice.ttft.Count(),
                    "more attained TTFTs than TTFT samples");
        }
        ctx.Check(class_total == notified(),
                  "per-class splits lose requests");
        ctx.Check(class_attained == completed_,
                  "per-class attained disagrees with aggregate");
      });
}

}  // namespace muxwise::serve
