#ifndef MUXWISE_SERVE_REQUEST_H_
#define MUXWISE_SERVE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "kv/kv_pool.h"
#include "sim/time.h"
#include "workload/request_spec.h"

namespace muxwise::serve {

/** Lifecycle phase of an in-flight request. */
enum class Phase {
  kQueued,   // Accepted by the engine, waiting for prefill.
  kPrefill,  // Prefill (possibly chunked / layer-wise) in progress.
  kDecode,   // Generating tokens.
  kDone,
};

/**
 * Terminal (or recovery) disposition of a request. Engines without
 * fault handling leave the default; the metrics layer treats kRunning
 * at completion as attained, so legacy engines keep their accounting.
 */
enum class Outcome {
  kRunning,    // In flight; no fault has touched it.
  kRetrying,   // Re-enqueued after losing KV state to an instance crash.
  kCompleted,  // Every output token delivered (attained).
  kTimedOut,   // Abandoned: its TTFT/TPOT-derived deadline passed.
  kShed,       // Rejected at admission under overload or outage.
  kFailed,     // Permanently failed (crash-retry budget spent).
};

inline bool IsTerminalOutcome(Outcome outcome) {
  return outcome == Outcome::kCompleted || outcome == Outcome::kTimedOut ||
         outcome == Outcome::kShed || outcome == Outcome::kFailed;
}

inline const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kRunning:
      return "running";
    case Outcome::kRetrying:
      return "retrying";
    case Outcome::kCompleted:
      return "completed";
    case Outcome::kTimedOut:
      return "timed-out";
    case Outcome::kShed:
      return "shed";
    case Outcome::kFailed:
      return "failed";
  }
  return "?";
}

/**
 * Runtime state of one request inside a serving engine, wrapping its
 * immutable workload::RequestSpec and collecting the latency stamps the
 * evaluation reports (TTFT, per-token TBT, E2E, TPOT).
 */
struct Request {
  const workload::RequestSpec* spec = nullptr;

  Phase phase = Phase::kQueued;

  sim::Time arrival = 0;          // Reached the engine queue.
  sim::Time prefill_start = -1;   // First prefill compute began.
  sim::Time first_token = -1;     // Prefill completed (TTFT stamp).
  sim::Time completion = -1;

  /** Time each generated token became visible (includes first token). */
  std::vector<sim::Time> token_times;

  /** Tokens generated so far. */
  std::int64_t generated = 0;

  /** Prefix tokens served from the KV cache at admission. */
  std::int64_t cached_tokens = 0;

  /** Prompt tokens this engine actually has to compute. */
  std::int64_t prefill_tokens = 0;

  /** Working-set tokens reserved in the pool for this request. */
  std::int64_t reserved_tokens = 0;

  /** Pin on the reused prefix (held until completion). */
  kv::KvPool::PrefixLease lease;

  // --- Failure-recovery state (see src/fault/) ---
  Outcome outcome = Outcome::kRunning;

  /** Absolute give-up time; kTimeNever when no recovery policy is set. */
  sim::Time deadline = sim::kTimeNever;

  /** Times this request was re-enqueued after an instance crash. */
  int crash_retries = 0;

  // --- Engine scratch (meaning is engine-specific) ---
  std::int64_t progress = 0;  // Prefill tokens or layers completed.

  explicit Request(const workload::RequestSpec* s) : spec(s) {}

  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  std::int64_t output_target() const { return spec->output_tokens; }

  /** Records a token emission at `now`. */
  void EmitToken(sim::Time now) {
    if (first_token < 0) first_token = now;
    token_times.push_back(now);
    ++generated;
  }

  bool DecodeFinished() const { return generated >= output_target(); }

  sim::Duration Ttft() const { return first_token - arrival; }
  sim::Duration E2e() const { return completion - arrival; }
};

}  // namespace muxwise::serve

#endif  // MUXWISE_SERVE_REQUEST_H_
