#ifndef MUXWISE_SERVE_FRONTEND_H_
#define MUXWISE_SERVE_FRONTEND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "serve/engine.h"
#include "serve/metrics.h"
#include "sim/simulator.h"
#include "workload/request_spec.h"

namespace muxwise::serve {

/**
 * Replays a workload trace into an engine.
 *
 * Clients in multi-turn workloads cannot send turn k+1 before reading
 * the response to turn k, so the frontend holds a session's next request
 * until its predecessor completes (its arrival timestamp is a lower
 * bound). Completions are fed to a MetricsCollector and released back to
 * the caller's bookkeeping.
 */
class Frontend {
 public:
  Frontend(sim::Simulator* simulator, Engine* engine,
           const workload::Trace* trace, MetricsCollector* metrics);

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /** Schedules every arrival; call once before Simulator::Run(). */
  void Start();

  std::size_t dispatched() const { return dispatched_; }
  std::size_t completed() const { return completed_; }
  bool AllCompleted() const {
    return completed_ == trace_->requests.size();
  }

  /** Time the last request completed (0 if none yet). */
  sim::Time last_completion() const { return last_completion_; }

 private:
  void OnArrival(std::size_t index);
  void Dispatch(std::size_t index);
  void OnComplete(std::unique_ptr<Request> request);

  /** True when every earlier turn of the request's session completed. */
  bool PredecessorDone(const workload::RequestSpec& spec) const;

  sim::Simulator* sim_;
  Engine* engine_;
  const workload::Trace* trace_;
  MetricsCollector* metrics_;

  enum class State { kPending, kArrived, kDispatched, kCompleted };
  std::vector<State> states_;
  std::map<std::int64_t, int> session_completed_turns_;
  // session -> indices of arrived-but-held requests.
  std::map<std::int64_t, std::vector<std::size_t>> held_;
  std::map<std::int64_t, std::size_t> index_by_id_;

  std::size_t dispatched_ = 0;
  std::size_t completed_ = 0;
  sim::Time last_completion_ = 0;
};

}  // namespace muxwise::serve

#endif  // MUXWISE_SERVE_FRONTEND_H_
