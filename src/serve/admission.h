#ifndef MUXWISE_SERVE_ADMISSION_H_
#define MUXWISE_SERVE_ADMISSION_H_

#include "kv/kv_pool.h"
#include "serve/request.h"
#include "sim/time.h"

namespace muxwise::serve {

/**
 * Admits a request into a pool: pins the longest cached prefix of its
 * prompt and reserves working space for the tokens it will compute (the
 * uncached prompt remainder plus every output token).
 *
 * A request re-admitted after an instance crash (generated > 0 with its
 * KV state lost) must also recompute the tokens it had already emitted,
 * so its prefill span grows to (uncached prompt + generated); the
 * reservation is unchanged since output_tokens bounds the regenerated
 * plus remaining output working set.
 *
 * Returns false — leaving the pool untouched — when the space cannot be
 * found even after LRU eviction; the caller keeps the request queued.
 */
bool AdmitToPool(kv::KvPool& pool, Request& request, sim::Time now);

/**
 * Completes a request's pool accounting: releases its working
 * reservation, commits the full sequence (prompt + generated tokens)
 * into the cache for later reuse, and drops the prefix pin.
 */
void FinishInPool(kv::KvPool& pool, Request& request, sim::Time now);

/**
 * Aborts a request's pool accounting without caching anything (used
 * when an engine drops or migrates a request).
 */
void AbandonInPool(kv::KvPool& pool, Request& request);

}  // namespace muxwise::serve

#endif  // MUXWISE_SERVE_ADMISSION_H_
