#ifndef MUXWISE_SERVE_QUANTILE_SKETCH_H_
#define MUXWISE_SERVE_QUANTILE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace muxwise::serve {

/** Percentile over already ascending-sorted samples (no copy). */
double PercentileSorted(const std::vector<double>& sorted, double p);

/** Summary statistics of one latency population, milliseconds. */
struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t count = 0;
};

/**
 * Deterministic, mergeable quantile sketch with two tiers.
 *
 * Up to `exact_capacity` samples live in an exact buffer: quantiles are
 * the R-7 PercentileSorted values, bit-identical to the historical
 * sort-a-copy path, and the running `Sum()` reproduces the left-fold
 * `std::accumulate` over insertion order exactly. Past the capacity the
 * buffer collapses into a fixed-layout log-linear histogram (HDR-style:
 * one binade per double exponent, split into 2^kSubBucketBits linear
 * sub-buckets by the top mantissa bits). Bucketing is pure integer bit
 * manipulation on the IEEE-754 representation — no logs, no FP rounding
 * — so the histogram state is a platform-stable pure function of the
 * inserted multiset: identical at any insertion order, merge order, or
 * thread count. Memory is O(exact_capacity + kNumBuckets) regardless of
 * how many samples are added; the histogram is allocated lazily, so
 * small populations never pay for it.
 *
 * Histogram-tier quantiles carry a bounded relative value error: a
 * bucket spans a 1/32 slice of its binade, so the mid-bucket estimate
 * is within ~1.6% of any sample in the bucket (rank placement itself is
 * exact). Estimates are clamped to the exactly-tracked [Min, Max].
 *
 * `StateDigest()` hashes the canonical state (sorted value bits on the
 * exact tier; occupied bucket runs plus min/max past it), so equal
 * multisets produce equal digests no matter how they were assembled —
 * the property that lets sketch state key into the run digests.
 */
class QuantileSketch {
 public:
  static constexpr std::size_t kDefaultExactCapacity = 32768;

  /** Sub-buckets per power-of-two binade (as a bit count). */
  static constexpr int kSubBucketBits = 5;

  QuantileSketch() = default;
  explicit QuantileSketch(std::size_t exact_capacity)
      : exact_capacity_(exact_capacity) {}

  /** Inserts one sample. Negative samples are clamped to 0 (latencies
   * are non-negative; the pre-clamp minimum stays visible via Min()). */
  void Add(double value);

  /** Folds `other` in. Equal combined multisets yield equal states. */
  void Merge(const QuantileSketch& other);

  std::size_t Count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /** Left-fold running sum in insertion order (merge adds sums). */
  double Sum() const { return sum_; }
  double Mean() const;

  /** Smallest / largest inserted sample (0 when empty); exact on both
   * tiers. */
  double Min() const;
  double Max() const;

  /**
   * Quantile for p in [0, 1] (0 when empty). Exact tier: the R-7
   * linear-interpolation value of PercentileSorted. Histogram tier:
   * the same rank arithmetic over bucket midpoints.
   */
  double Quantile(double p) const;

  /**
   * Samples <= threshold. Exact tier: an integer count, identical to
   * std::count_if. Histogram tier: full buckets below the threshold
   * plus a linear fraction of the bucket containing it.
   */
  double CountLessEqual(double threshold) const;

  /** mean / p50 / p99 / count in one call (one sort, not two). */
  LatencySummary Summarize() const;

  /**
   * Order-invariant digest of the sketch state: equal multisets give
   * equal digests at any insertion order, merge order, or thread count.
   */
  std::uint64_t StateDigest() const;

  /** True once the exact tier spilled into the histogram. */
  bool overflowed() const { return overflowed_; }

  /** Heap + object footprint witness for bounded-memory assertions. */
  std::size_t MemoryBytes() const;

 private:
  void EnsureSorted() const;
  void CollapseToHistogram();
  void AddToHistogram(double value);

  std::size_t exact_capacity_ = kDefaultExactCapacity;

  // Exact tier. Mutable so const queries can sort in place instead of
  // copying per call; queries are not thread-safe against each other
  // (collection and reporting are single-threaded phases).
  mutable std::vector<double> exact_;
  mutable bool sorted_ = true;

  // Histogram tier: empty until the first overflow, then kNumBuckets
  // counters (bucket 0 holds zero/underflow, the last holds overflow).
  std::vector<std::uint64_t> buckets_;

  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool overflowed_ = false;
};

}  // namespace muxwise::serve

#endif  // MUXWISE_SERVE_QUANTILE_SKETCH_H_
