#include "serve/admission.h"

#include <algorithm>

#include "sim/logging.h"

namespace muxwise::serve {

bool AdmitToPool(kv::KvPool& pool, Request& request, sim::Time now) {
  MUX_CHECK(request.reserved_tokens == 0);
  kv::KvPool::PrefixLease lease =
      pool.AcquirePrefix(request.spec->prompt, now);
  // Even a fully cached prompt recomputes its last token so the model
  // can produce the next one (standard radix-cache semantics).
  const std::int64_t cached =
      std::min(lease.matched_tokens, request.spec->input_tokens - 1);
  const std::int64_t need =
      (request.spec->input_tokens - cached) + request.spec->output_tokens;
  if (!pool.TryReserve(need)) {
    pool.ReleasePrefix(lease);
    return false;
  }
  request.lease = lease;
  request.cached_tokens = cached;
  // Crash recovery: tokens generated before the KV was lost must be
  // recomputed by the recovery prefill (generated == 0 for the common
  // first admission, leaving the span at the uncached prompt).
  request.prefill_tokens =
      (request.spec->input_tokens - cached) + request.generated;
  request.reserved_tokens = need;
  return true;
}

void FinishInPool(kv::KvPool& pool, Request& request, sim::Time now) {
  pool.ReleaseReserved(request.reserved_tokens);
  request.reserved_tokens = 0;
  pool.CommitSequence(request.spec->full_seq, now);
  pool.ReleasePrefix(request.lease);
}

void AbandonInPool(kv::KvPool& pool, Request& request) {
  pool.ReleaseReserved(request.reserved_tokens);
  request.reserved_tokens = 0;
  pool.ReleasePrefix(request.lease);
}

}  // namespace muxwise::serve
