#include "serve/quantile_sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/logging.h"

namespace muxwise::serve {

namespace {

// Histogram layout: one bucket run per IEEE-754 binade between 2^-32
// and 2^32 (biased exponents 991..1055), each split into 32 linear
// sub-buckets by the top 5 mantissa bits. Bucket 0 collects zero,
// negatives-after-clamp, and underflow; the last bucket collects
// overflow. 2082 fixed counters total (~16 KiB) — the O(1) memory
// behind million-request populations.
constexpr int kSubBits = QuantileSketch::kSubBucketBits;
constexpr std::uint64_t kSub = 1ULL << kSubBits;
constexpr std::uint64_t kMinBiasedExp = 991;   // 2^-32
constexpr std::uint64_t kMaxBiasedExp = 1055;  // binade [2^32, 2^33)
constexpr std::size_t kNumLogLinear =
    static_cast<std::size_t>(kMaxBiasedExp - kMinBiasedExp + 1) * kSub;
constexpr std::size_t kNumBuckets = kNumLogLinear + 2;

std::size_t BucketIndex(double v) {
  if (v <= 0.0) return 0;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  const std::uint64_t biased = bits >> 52;  // Sign bit is 0 here.
  if (biased < kMinBiasedExp) return 0;
  if (biased > kMaxBiasedExp) return kNumBuckets - 1;
  const std::uint64_t sub = (bits >> (52 - kSubBits)) & (kSub - 1);
  return 1 + static_cast<std::size_t>((biased - kMinBiasedExp) * kSub + sub);
}

/** Lower edge of log-linear bucket `idx` (valid up to kNumLogLinear+1,
 * which yields the exclusive upper edge of the last log-linear run). */
double BucketLowerEdge(std::size_t idx) {
  const std::uint64_t linear = static_cast<std::uint64_t>(idx - 1);
  const std::uint64_t biased = kMinBiasedExp + linear / kSub;
  const std::uint64_t sub = linear % kSub;
  return std::bit_cast<double>((biased << 52) | (sub << (52 - kSubBits)));
}

std::uint64_t MixState(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  MUX_CHECK(p >= 0.0 && p <= 1.0);
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void QuantileSketch::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
  const double stored = value < 0.0 ? 0.0 : value;
  if (!overflowed_) {
    if (exact_.size() < exact_capacity_) {
      exact_.push_back(stored);
      sorted_ = false;
      return;
    }
    CollapseToHistogram();
  }
  AddToHistogram(stored);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
  if (!overflowed_ && !other.overflowed_ &&
      exact_.size() + other.exact_.size() <= exact_capacity_) {
    exact_.insert(exact_.end(), other.exact_.begin(), other.exact_.end());
    sorted_ = false;
    return;
  }
  // Combined population exceeds the exact tier: every sample from both
  // sides lands in the histogram, so the final state depends only on
  // the combined multiset, never on the merge order.
  if (!overflowed_) CollapseToHistogram();
  if (other.overflowed_) {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
  } else {
    for (double v : other.exact_) ++buckets_[BucketIndex(v)];
  }
}

double QuantileSketch::Mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double QuantileSketch::Min() const { return count_ == 0 ? 0.0 : min_; }
double QuantileSketch::Max() const { return count_ == 0 ? 0.0 : max_; }

double QuantileSketch::Quantile(double p) const {
  if (count_ == 0) return 0.0;
  MUX_CHECK(p >= 0.0 && p <= 1.0);
  if (!overflowed_) {
    EnsureSorted();
    return PercentileSorted(exact_, p);
  }
  // Same R-7 rank arithmetic as PercentileSorted, over bucket
  // midpoints: walk the cumulative counts once for the two neighbour
  // ranks and blend by the fractional rank.
  const double idx = p * static_cast<double>(count_ - 1);
  const std::uint64_t lo_rank = static_cast<std::uint64_t>(std::floor(idx));
  const std::uint64_t hi_rank = static_cast<std::uint64_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo_rank);
  const double clamp_lo = min_ < 0.0 ? 0.0 : min_;
  double lo_value = max_;
  double hi_value = max_;
  bool lo_found = false;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    cumulative += buckets_[b];
    double rep;
    if (b == 0) {
      rep = 0.0;
    } else if (b == kNumBuckets - 1) {
      rep = max_;
    } else {
      rep = 0.5 * (BucketLowerEdge(b) + BucketLowerEdge(b + 1));
    }
    rep = std::min(std::max(rep, clamp_lo), max_);
    if (!lo_found && cumulative > lo_rank) {
      lo_value = rep;
      lo_found = true;
    }
    if (cumulative > hi_rank) {
      hi_value = rep;
      break;
    }
  }
  return lo_value * (1.0 - frac) + hi_value * frac;
}

double QuantileSketch::CountLessEqual(double threshold) const {
  if (count_ == 0) return 0.0;
  if (!overflowed_) {
    EnsureSorted();
    const auto it =
        std::upper_bound(exact_.begin(), exact_.end(), threshold);
    return static_cast<double>(it - exact_.begin());
  }
  if (threshold < 0.0) return 0.0;
  const std::size_t idx = BucketIndex(threshold);
  double total = 0.0;
  for (std::size_t b = 0; b < idx; ++b) {
    total += static_cast<double>(buckets_[b]);
  }
  if (idx == 0 || idx == kNumBuckets - 1) {
    // Zero bucket: all samples are <= any non-negative threshold.
    // Overflow bucket: the threshold clears every bounded bucket.
    total += static_cast<double>(buckets_[idx]);
  } else if (buckets_[idx] > 0) {
    const double lo = BucketLowerEdge(idx);
    const double hi = BucketLowerEdge(idx + 1);
    const double frac = (threshold - lo) / (hi - lo);
    total += static_cast<double>(buckets_[idx]) *
             std::min(std::max(frac, 0.0), 1.0);
  }
  return total;
}

LatencySummary QuantileSketch::Summarize() const {
  LatencySummary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean_ms = Mean();
  if (!overflowed_) {
    // One sort, both percentiles — the historical Summarize() contract.
    EnsureSorted();
    s.p50_ms = PercentileSorted(exact_, 0.50);
    s.p99_ms = PercentileSorted(exact_, 0.99);
  } else {
    s.p50_ms = Quantile(0.50);
    s.p99_ms = Quantile(0.99);
  }
  return s;
}

std::uint64_t QuantileSketch::StateDigest() const {
  std::uint64_t h = 0x51ce7c45a1ca1e5bULL;  // Fixed sketch-state seed.
  h = MixState(h, static_cast<std::uint64_t>(count_));
  h = MixState(h, overflowed_ ? 1 : 0);
  if (count_ == 0) return h;
  // The running sum is excluded on purpose: FP addition is not
  // associative, so it is the one field whose bits can depend on merge
  // order. Everything hashed here is a pure function of the multiset.
  h = MixState(h, std::bit_cast<std::uint64_t>(min_));
  h = MixState(h, std::bit_cast<std::uint64_t>(max_));
  if (!overflowed_) {
    EnsureSorted();
    for (double v : exact_) h = MixState(h, std::bit_cast<std::uint64_t>(v));
    return h;
  }
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    h = MixState(h, static_cast<std::uint64_t>(b));
    h = MixState(h, buckets_[b]);
  }
  return h;
}

std::size_t QuantileSketch::MemoryBytes() const {
  return sizeof(*this) + exact_.capacity() * sizeof(double) +
         buckets_.capacity() * sizeof(std::uint64_t);
}

void QuantileSketch::EnsureSorted() const {
  if (sorted_) return;
  std::sort(exact_.begin(), exact_.end());
  sorted_ = true;
}

void QuantileSketch::CollapseToHistogram() {
  buckets_.assign(kNumBuckets, 0);
  for (double v : exact_) ++buckets_[BucketIndex(v)];
  exact_.clear();
  exact_.shrink_to_fit();
  sorted_ = true;
  overflowed_ = true;
}

void QuantileSketch::AddToHistogram(double value) {
  ++buckets_[BucketIndex(value)];
}

}  // namespace muxwise::serve
