#ifndef MUXWISE_SERVE_ENGINE_H_
#define MUXWISE_SERVE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "check/invariant_registry.h"
#include "obs/trace.h"
#include "serve/request.h"

namespace muxwise::sim {
class Channel;
}  // namespace muxwise::sim

namespace muxwise::serve {

/**
 * Abstract serving engine. A Frontend feeds requests in; the engine
 * schedules them onto its simulated instance(s) and hands each finished
 * request back through the completion callback.
 */
class Engine {
 public:
  using CompletionCallback = std::function<void(std::unique_ptr<Request>)>;

  virtual ~Engine() = default;

  virtual const char* name() const = 0;

  /** Accepts a request at its (simulated) arrival time. */
  virtual void Enqueue(std::unique_ptr<Request> request) = 0;

  /** Requests accepted but not yet completed (stability diagnostics). */
  virtual std::size_t InFlight() const = 0;

  /**
   * Registers this engine's invariant audits (its pools, devices, and
   * scheduler bookkeeping) with the harness's registry. Audits run when
   * the scenario has quiesced — after the event queue drained — so
   * overrides may assert end-state properties such as empty queues.
   */
  virtual void RegisterAudits(check::InvariantRegistry& registry) const {
    (void)registry;
  }

  // --- Fault-injection surface (see src/fault/injector.h) ---
  //
  // A fault domain is an independently failing unit: one instance for
  // aggregated engines, the prefill/decode instances for disaggregated
  // ones. The FaultInjector maps a plan's instance indices onto domains
  // modulo NumFaultDomains() so one plan drives heterogeneous engines.
  // The defaults make every engine fault-oblivious (injections no-op).

  virtual std::size_t NumFaultDomains() const { return 1; }

  /** Instance `domain` crashes: in-flight work aborts, its KV is lost. */
  virtual void InjectCrash(std::size_t domain) { (void)domain; }

  /** Instance `domain` rejoins with an empty KV pool. */
  virtual void InjectRecovery(std::size_t domain) { (void)domain; }

  /** Kernels on `domain` run `slowdown`x slower (1.0 ends the window). */
  virtual void InjectStraggler(std::size_t domain, double slowdown) {
    (void)domain;
    (void)slowdown;
  }

  // --- Grey-failure surface (defaults: fault-oblivious no-ops) ---

  /**
   * Zombie: `domain` keeps answering heartbeats/control but its kernel
   * completions stall (frozen=true freezes the device, retaining
   * partial progress; frozen=false thaws it).
   */
  virtual void InjectZombie(std::size_t domain, bool frozen) {
    (void)domain;
    (void)frozen;
  }

  /**
   * Silent capacity degradation: `domain`'s effective FLOPs and HBM
   * bandwidth scale by the factors in (0, 1]; (1.0, 1.0) ends the
   * window. Planner predictions are deliberately unaffected.
   */
  virtual void InjectDegrade(std::size_t domain, double flops_factor,
                             double bandwidth_factor) {
    (void)domain;
    (void)flops_factor;
    (void)bandwidth_factor;
  }

  /**
   * Asymmetric partition of `domain`: drop_to cuts router->replica
   * delivery, drop_from cuts replica->router heartbeats. (false, false)
   * heals. Meaningful only for routed engines; single-instance engines
   * have no control plane to partition and ignore it.
   */
  virtual void InjectPartition(std::size_t domain, bool drop_to,
                               bool drop_from) {
    (void)domain;
    (void)drop_to;
    (void)drop_from;
  }

  /**
   * Monotone work-progress watermark (e.g. kernels completed). A
   * health tracker distinguishes a zombie from a busy instance by
   * watching this advance while work is in flight. 0 for engines
   * without one (zombie detection then cannot see them).
   */
  virtual std::uint64_t ProgressWatermark() const { return 0; }

  /**
   * The channel transfer faults apply to; nullptr when the engine has
   * none. All cross-instance transfers ride sim::Channel, so the
   * injector arms the channel's deterministic loss model directly.
   */
  virtual sim::Channel* FaultableLink() { return nullptr; }

  /**
   * Attaches a tracing handle. Overrides forward the tracer to the
   * engine's devices and pools; the base keeps it for the lifecycle
   * spans emitted at completion. Tracing must never change simulated
   * behaviour: implementations may only observe, never schedule.
   */
  virtual void AttachTracer(obs::Tracer tracer) { tracer_ = tracer; }

  void set_on_complete(CompletionCallback cb) { on_complete_ = std::move(cb); }

 protected:
  void NotifyComplete(std::unique_ptr<Request> request) {
    if (tracer_.enabled() && request != nullptr) {
      TraceRequestLifecycle(*request);
    }
    if (on_complete_) on_complete_(std::move(request));
  }

  obs::Tracer tracer_;

 private:
  /**
   * Rebuilds the request's lifecycle timeline (queued -> prefill ->
   * decode -> terminal) from its timestamps as retroactive complete
   * spans on the "request" track, keyed by the stable spec id. Emitted
   * at completion so every engine gets lifecycle tracing for free.
   */
  void TraceRequestLifecycle(const Request& request) const {
    const std::int64_t id = request.spec != nullptr ? request.spec->id : -1;
    if (request.prefill_start >= request.arrival) {
      tracer_.Complete("request", "queued", id, request.arrival,
                       request.prefill_start - request.arrival);
      if (request.first_token >= request.prefill_start) {
        tracer_.Complete("request", "prefill", id, request.prefill_start,
                         request.first_token - request.prefill_start);
        if (request.completion >= request.first_token) {
          tracer_.Complete("request", "decode", id, request.first_token,
                           request.completion - request.first_token);
        }
      }
    }
    const Outcome terminal = request.outcome == Outcome::kRunning
                                 ? Outcome::kCompleted
                                 : request.outcome;
    tracer_.Instant("request", OutcomeName(terminal), id,
                    static_cast<double>(request.generated));
  }

  CompletionCallback on_complete_;
};

}  // namespace muxwise::serve

#endif  // MUXWISE_SERVE_ENGINE_H_
