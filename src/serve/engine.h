#ifndef MUXWISE_SERVE_ENGINE_H_
#define MUXWISE_SERVE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "check/invariant_registry.h"
#include "serve/request.h"

namespace muxwise::gpu {
class Interconnect;
}  // namespace muxwise::gpu

namespace muxwise::serve {

/**
 * Abstract serving engine. A Frontend feeds requests in; the engine
 * schedules them onto its simulated instance(s) and hands each finished
 * request back through the completion callback.
 */
class Engine {
 public:
  using CompletionCallback = std::function<void(std::unique_ptr<Request>)>;

  virtual ~Engine() = default;

  virtual const char* name() const = 0;

  /** Accepts a request at its (simulated) arrival time. */
  virtual void Enqueue(std::unique_ptr<Request> request) = 0;

  /** Requests accepted but not yet completed (stability diagnostics). */
  virtual std::size_t InFlight() const = 0;

  /**
   * Registers this engine's invariant audits (its pools, devices, and
   * scheduler bookkeeping) with the harness's registry. Audits run when
   * the scenario has quiesced — after the event queue drained — so
   * overrides may assert end-state properties such as empty queues.
   */
  virtual void RegisterAudits(check::InvariantRegistry& registry) const {
    (void)registry;
  }

  // --- Fault-injection surface (see src/fault/injector.h) ---
  //
  // A fault domain is an independently failing unit: one instance for
  // aggregated engines, the prefill/decode instances for disaggregated
  // ones. The FaultInjector maps a plan's instance indices onto domains
  // modulo NumFaultDomains() so one plan drives heterogeneous engines.
  // The defaults make every engine fault-oblivious (injections no-op).

  virtual std::size_t NumFaultDomains() const { return 1; }

  /** Instance `domain` crashes: in-flight work aborts, its KV is lost. */
  virtual void InjectCrash(std::size_t domain) { (void)domain; }

  /** Instance `domain` rejoins with an empty KV pool. */
  virtual void InjectRecovery(std::size_t domain) { (void)domain; }

  /** Kernels on `domain` run `slowdown`x slower (1.0 ends the window). */
  virtual void InjectStraggler(std::size_t domain, double slowdown) {
    (void)domain;
    (void)slowdown;
  }

  /** The link transfer faults apply to; nullptr when the engine has none. */
  virtual gpu::Interconnect* FaultableLink() { return nullptr; }

  void set_on_complete(CompletionCallback cb) { on_complete_ = std::move(cb); }

 protected:
  void NotifyComplete(std::unique_ptr<Request> request) {
    if (on_complete_) on_complete_(std::move(request));
  }

 private:
  CompletionCallback on_complete_;
};

}  // namespace muxwise::serve

#endif  // MUXWISE_SERVE_ENGINE_H_
