#include "serve/deployment.h"

#include <string>

#include "sim/logging.h"

namespace muxwise::serve {

Deployment Deployment::Make(const llm::ModelConfig& model,
                            const gpu::GpuSpec& gpu, int num_gpus) {
  Deployment d;
  d.model = model;
  d.gpu = gpu;
  d.num_gpus = num_gpus;
  d.slo = workload::SloTargets::ForModel(model.name);
  return d;
}

std::int64_t Deployment::PoolTokens(int tp_degree,
                                    double extra_graph_fraction) const {
  MUX_CHECK(tp_degree >= 1);
  const double total_hbm = gpu.hbm_capacity * tp_degree;
  const double graphs =
      total_hbm * (graph_memory_fraction + extra_graph_fraction);
  const double available = total_hbm * (1.0 - memory_headroom) -
                           model.WeightBytes() - graphs;
  if (available <= 0.0) {
    sim::Fatal("model " + model.name + " does not fit on " +
               std::to_string(tp_degree) + "x " + gpu.name);
  }
  return static_cast<std::int64_t>(available / model.KvBytesPerToken());
}

std::vector<int> Deployment::SmPartitionOptions() const {
  std::vector<int> options;
  const int grain = gpu.partition_granularity;
  // Multiplexed options must leave the co-resident context at least its
  // minimum SM allocation — 6 configurations on A100, 7 on H100 (§3.3.2).
  for (int sms = grain; sms + gpu.min_partition_sms <= gpu.sm_count;
       sms += grain) {
    options.push_back(sms);
  }
  // The full device is always a valid allocation (no multiplexing).
  if (options.empty() || options.back() != gpu.sm_count) {
    options.push_back(gpu.sm_count);
  }
  return options;
}

}  // namespace muxwise::serve
