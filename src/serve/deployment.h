#ifndef MUXWISE_SERVE_DEPLOYMENT_H_
#define MUXWISE_SERVE_DEPLOYMENT_H_

#include <cstdint>
#include <vector>

#include "gpu/gpu_spec.h"
#include "llm/model_config.h"
#include "workload/slo.h"

namespace muxwise::serve {

/**
 * A (model, server) deployment: what the paper calls an "LLM-machine
 * pair". Provides the derived quantities every engine needs — KV pool
 * sizing after weights and CUDA-graph memory, and the green-context SM
 * partition options at 16-SM granularity (6 on A100, 7 on H100, §3.3.2).
 */
struct Deployment {
  llm::ModelConfig model;
  gpu::GpuSpec gpu;
  int num_gpus = 8;
  workload::SloTargets slo;

  /** Fraction of HBM kept free for activations / allocator slack. */
  double memory_headroom = 0.08;

  /** CUDA-graph memory as a fraction of total HBM (paper §4.5: 6.2%). */
  double graph_memory_fraction = 0.03;

  static Deployment Make(const llm::ModelConfig& model,
                         const gpu::GpuSpec& gpu, int num_gpus = 8);

  /**
   * KV pool capacity in tokens for an instance of `tp_degree` GPUs
   * hosting a full model replica. Fatal if the weights don't fit.
   */
  std::int64_t PoolTokens(int tp_degree,
                          double extra_graph_fraction = 0.0) const;

  /**
   * SM allocations available to green-context partitioning:
   * {granularity, 2*granularity, ...} strictly below the full device,
   * plus the full device itself.
   */
  std::vector<int> SmPartitionOptions() const;
};

}  // namespace muxwise::serve

#endif  // MUXWISE_SERVE_DEPLOYMENT_H_
