#ifndef MUXWISE_GPU_GPU_SPEC_H_
#define MUXWISE_GPU_GPU_SPEC_H_

#include <string>

namespace muxwise::gpu {

/**
 * Static description of one physical GPU.
 *
 * Numbers follow the public datasheets for the three server GPUs the
 * paper evaluates on (A100-80GB SXM, H100-80GB SXM5, H200-141GB SXM5).
 * Compute is dense BF16 without sparsity.
 */
struct GpuSpec {
  std::string name;

  /** Number of streaming multiprocessors. */
  int sm_count = 0;

  /** Peak dense BF16 FLOP/s contributed by one SM. */
  double flops_per_sm = 0.0;

  /** HBM bandwidth in bytes/s. */
  double hbm_bandwidth = 0.0;

  /** HBM capacity in bytes. */
  double hbm_capacity = 0.0;

  /** Per-GPU NVLink bandwidth in bytes/s (unidirectional). */
  double nvlink_bandwidth = 0.0;

  /**
   * Fraction of SMs needed to saturate HBM bandwidth. A partition with
   * fewer SMs can draw at most sms / (fraction * sm_count) of peak
   * bandwidth — the reason decode still needs a non-trivial SM share
   * even though it is memory-bound (paper Fig. 3-b).
   */
  double bw_saturation_sm_fraction = 0.6;

  /**
   * Ground-truth ceiling for the multiplexing interference term
   * (paper §3.3: <= 20% on A100, <= 30% on H100-class parts). The
   * serving systems cannot observe this; MuxWise must learn it by
   * profiling.
   */
  double max_interference = 0.0;

  /** Green-context SM mask granularity (16 on Hopper and newer). */
  int partition_granularity = 16;

  /**
   * Minimum SMs a co-resident green context must keep: 8 before Hopper,
   * 16 on H100+ where kernels use thread block clusters (paper §3.3.2 —
   * this is what yields 6 partition configurations on A100 and 7 on
   * H100).
   */
  int min_partition_sms = 8;

  /** Total peak FLOP/s of the device. */
  double PeakFlops() const { return sm_count * flops_per_sm; }

  /** Maximum HBM bandwidth reachable with `sms` allocated SMs. */
  double BandwidthCap(int sms) const;

  /**
   * Spec of `n` of these GPUs treated as one aggregate device, used to
   * model engines that re-partition whole GPUs between phases
   * (LoongServe's elastic groups). SM counts, bandwidth and capacity
   * scale linearly; bandwidth caps become exactly proportional (a group
   * of k GPUs owns k/n of aggregate bandwidth) and cross-stream
   * interference is disabled — distinct physical GPUs do not contend.
   */
  GpuSpec Aggregate(int n) const;

  static GpuSpec A100();
  static GpuSpec H100();
  static GpuSpec H200();

  /** Looks a spec up by name ("A100"/"H100"/"H200"); fatal on unknown. */
  static GpuSpec ByName(const std::string& name);
};

}  // namespace muxwise::gpu

#endif  // MUXWISE_GPU_GPU_SPEC_H_
