#ifndef MUXWISE_GPU_KERNEL_H_
#define MUXWISE_GPU_KERNEL_H_

#include <cstdint>
#include <string_view>

#include "sim/time.h"

namespace muxwise::gpu {

/**
 * Interned kernel-label id. Workload layers (llm::CostModel, the
 * engines) generate millions of kernels per experiment; carrying an
 * interned id instead of a std::string keeps Kernel trivially movable
 * and removes a string copy from every launch. 0 means untagged.
 */
using KernelTagId = std::uint32_t;
inline constexpr KernelTagId kUntaggedKernel = 0;

/**
 * Interns `name` into the process-wide kernel-tag table, returning its
 * stable id. Deterministic: ids depend only on first-intern order,
 * which the (single-threaded) simulation fixes. Intern once at setup
 * (e.g. in a constructor), not per kernel.
 */
KernelTagId InternKernelTag(std::string_view name);

/** Name for an interned tag ("" for kUntaggedKernel / unknown ids). */
std::string_view KernelTagName(KernelTagId id);

/** Broad classification used by the execution and interference models. */
enum class KernelKind {
  kPrefill,   // GEMM-dominated prefill (whole layer or layer group).
  kDecode,    // Memory-bound batched decode iteration.
  kFused,     // Chunked-prefill fused chunk + decode iteration.
  kComm,      // Collective / KV migration traffic modeled on-device.
  kOther,
};

const char* KernelKindName(KernelKind kind);

/**
 * One unit of GPU work, expressed as per-GPU effective resource demands.
 *
 * For a tensor-parallel group the llm layer divides total model work by
 * the TP degree before building kernels, so a Kernel always describes
 * what one physical GPU executes. Duration emerges from the roofline in
 * Gpu::ComputeTime / bandwidth arbitration, never from a fixed latency
 * table, so SM partitioning and contention affect it faithfully.
 */
struct Kernel {
  KernelKind kind = KernelKind::kOther;

  /** Model FLOPs this kernel must execute on this GPU. */
  double flops = 0.0;

  /** HBM bytes this kernel must move on this GPU. */
  double bytes = 0.0;

  /**
   * Serial time that neither more SMs nor more bandwidth can hide:
   * collective latency, kernel tail effects. Added to the roofline term.
   */
  sim::Duration fixed_time = 0;

  /**
   * Compute-saturation half-point: FLOPs-per-SM at which the kernel
   * reaches half its peak efficiency. GEMM-heavy prefill kernels need a
   * lot of work per SM to saturate (the paper's 4K-token budget effect);
   * decode GEMV pipelines reach their modest compute needs quickly.
   */
  double saturation_half_flops_per_sm = 1e11;

  /**
   * Token-based saturation for GEMM kernels: when `work_items` (the
   * tokens the kernel processes) is set, efficiency follows
   * peak * items / (items + saturation_half_items) instead of the
   * FLOPs-per-SM curve. GEMM efficiency is governed by the row count of
   * the activations matrix, which is why a 4K-token budget saturates an
   * 8xA100 Llama-70B deployment regardless of model width (paper
   * Fig. 6-a).
   */
  double work_items = 0.0;
  double saturation_half_items = 550.0;

  /**
   * Compute executed at a fixed fraction of peak, additive to the GEMM
   * component: attention over cached KV (FlashAttention-style kernels
   * whose efficiency does not depend on the new-token count). Keeping
   * it separate is what makes the paper's Eq. 1 linear feature set
   * (sum n^2, sum n*r, sum n, 1) fit tightly.
   */
  double stream_flops = 0.0;
  double stream_efficiency = 0.40;

  /** Peak achievable fraction of SM throughput (MFU ceiling). */
  double peak_efficiency = 0.55;

  /**
   * Intra-kernel compute/memory overlap imperfection: duration is
   * max(compute, memory) + overlap_alpha * min(compute, memory). Pure
   * GEMM or pure streaming kernels overlap nearly perfectly; fused
   * chunk+decode kernels interleave heterogeneous phases and overlap
   * worse — the gap NanoFlow's nano-batching narrows (paper §4.2.1).
   */
  double overlap_alpha = 0.1;

  /** Interned label for traces and debugging (see InternKernelTag). */
  KernelTagId tag = kUntaggedKernel;

  /** Returns defaults tuned for a prefill / GEMM-bound kernel. */
  static Kernel Prefill(double flops, double bytes);

  /** Returns defaults tuned for a memory-bound decode iteration. */
  static Kernel Decode(double flops, double bytes);

  /** Returns defaults for a fused chunked-prefill iteration. */
  static Kernel Fused(double flops, double bytes);

  /** Pure data movement (migration, weight reload). */
  static Kernel Memcpy(double bytes);
};

}  // namespace muxwise::gpu

#endif  // MUXWISE_GPU_KERNEL_H_
