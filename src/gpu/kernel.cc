#include "gpu/kernel.h"

#include <map>
#include <string>
#include <vector>

namespace muxwise::gpu {

namespace {

/** Process-wide tag tables; index 0 is reserved for "untagged". */
struct TagTables {
  std::vector<std::string> names{""};
  std::map<std::string, KernelTagId, std::less<>> index;
};

TagTables& Tags() {
  static TagTables* tables = new TagTables;
  return *tables;
}

}  // namespace

KernelTagId InternKernelTag(std::string_view name) {
  if (name.empty()) return kUntaggedKernel;
  TagTables& tables = Tags();
  const auto it = tables.index.find(name);
  if (it != tables.index.end()) return it->second;
  const auto id = static_cast<KernelTagId>(tables.names.size());
  tables.names.emplace_back(name);
  tables.index.emplace(std::string(name), id);
  return id;
}

std::string_view KernelTagName(KernelTagId id) {
  const TagTables& tables = Tags();
  if (id >= tables.names.size()) return {};
  return tables.names[id];
}

const char* KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kPrefill:
      return "prefill";
    case KernelKind::kDecode:
      return "decode";
    case KernelKind::kFused:
      return "fused";
    case KernelKind::kComm:
      return "comm";
    case KernelKind::kOther:
      return "other";
  }
  return "?";
}

Kernel Kernel::Prefill(double flops, double bytes) {
  Kernel k;
  k.kind = KernelKind::kPrefill;
  k.flops = flops;
  k.bytes = bytes;
  k.saturation_half_flops_per_sm = 1e11;
  k.peak_efficiency = 0.55;
  return k;
}

Kernel Kernel::Decode(double flops, double bytes) {
  Kernel k;
  k.kind = KernelKind::kDecode;
  k.flops = flops;
  k.bytes = bytes;
  // Decode compute is a thin GEMV pipeline that hides under the weight
  // stream as soon as a modest number of SMs is available; its duration
  // is governed by the bandwidth the SM allocation can pull, which is
  // what makes Eq. 2 of the paper near-linear in (sum r_i, bs).
  k.saturation_half_flops_per_sm = 2e9;
  k.peak_efficiency = 0.8;
  return k;
}

Kernel Kernel::Fused(double flops, double bytes) {
  Kernel k = Prefill(flops, bytes);
  k.kind = KernelKind::kFused;
  // Serially fusing a GEMM-bound chunk with a memory-bound decode batch
  // in one kernel overlaps their resource use imperfectly.
  k.overlap_alpha = 0.2;
  return k;
}

Kernel Kernel::Memcpy(double bytes) {
  Kernel k;
  k.kind = KernelKind::kComm;
  k.flops = 0.0;
  k.bytes = bytes;
  k.peak_efficiency = 1.0;
  return k;
}

}  // namespace muxwise::gpu
