#include "gpu/kernel.h"

namespace muxwise::gpu {

const char* KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kPrefill:
      return "prefill";
    case KernelKind::kDecode:
      return "decode";
    case KernelKind::kFused:
      return "fused";
    case KernelKind::kComm:
      return "comm";
    case KernelKind::kOther:
      return "other";
  }
  return "?";
}

Kernel Kernel::Prefill(double flops, double bytes) {
  Kernel k;
  k.kind = KernelKind::kPrefill;
  k.flops = flops;
  k.bytes = bytes;
  k.saturation_half_flops_per_sm = 1e11;
  k.peak_efficiency = 0.55;
  return k;
}

Kernel Kernel::Decode(double flops, double bytes) {
  Kernel k;
  k.kind = KernelKind::kDecode;
  k.flops = flops;
  k.bytes = bytes;
  // Decode compute is a thin GEMV pipeline that hides under the weight
  // stream as soon as a modest number of SMs is available; its duration
  // is governed by the bandwidth the SM allocation can pull, which is
  // what makes Eq. 2 of the paper near-linear in (sum r_i, bs).
  k.saturation_half_flops_per_sm = 2e9;
  k.peak_efficiency = 0.8;
  return k;
}

Kernel Kernel::Fused(double flops, double bytes) {
  Kernel k = Prefill(flops, bytes);
  k.kind = KernelKind::kFused;
  // Serially fusing a GEMM-bound chunk with a memory-bound decode batch
  // in one kernel overlaps their resource use imperfectly.
  k.overlap_alpha = 0.2;
  return k;
}

Kernel Kernel::Memcpy(double bytes) {
  Kernel k;
  k.kind = KernelKind::kComm;
  k.flops = 0.0;
  k.bytes = bytes;
  k.peak_efficiency = 1.0;
  return k;
}

}  // namespace muxwise::gpu
