#ifndef MUXWISE_GPU_GPU_H_
#define MUXWISE_GPU_GPU_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "check/invariant_registry.h"
#include "gpu/gpu_spec.h"
#include "gpu/kernel.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace muxwise::gpu {

/** Identifies a stream (and its green-context SM allocation) on a Gpu. */
using StreamId = int;

/** Accounting per stream, used for bubble-ratio analysis (paper §4.4.2). */
struct StreamStats {
  sim::Duration busy_time = 0;          // Time with a kernel executing.
  sim::Time first_activity = sim::kTimeNever;
  sim::Time last_activity = 0;
  std::size_t kernels_completed = 0;

  /** Fraction of the active window [first, last] with no kernel running. */
  double BubbleRatio() const;
};

/**
 * Execution model for one GPU (representing every GPU of a symmetric
 * tensor-parallel group; kernels carry per-GPU work).
 *
 * Duration of a kernel emerges from a roofline:
 *   max(compute_time(sms), bytes / allocated_bandwidth) + fixed_time
 * where HBM bandwidth is arbitrated max-min among concurrently running
 * kernels, shrunk by a deterministic interference factor whenever more
 * than one stream is active (the "unmanaged contention" of paper §3.3).
 * Running kernels are re-rated whenever the active set changes, in the
 * style of processor-sharing queues.
 *
 * Streams follow CUDA semantics: in-order, one kernel executing at a
 * time, concurrent across streams. Each stream is bound to a
 * green-context SM allocation that can be reconfigured at any time and
 * takes effect for subsequently started kernels. If the running streams'
 * allocations oversubscribe the device (possible when a caller opts out
 * of partition management, e.g. the WindServe variant), effective SMs
 * are scaled proportionally.
 */
class Gpu {
 public:
  using Callback = std::function<void()>;

  Gpu(sim::Simulator* simulator, GpuSpec spec);

  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  /** Creates a stream with an initial SM allocation (0 < sms <= total). */
  StreamId CreateStream(int sms);

  /**
   * Reconfigures the stream's green context. Takes effect when the next
   * kernel starts; the currently running kernel keeps its SMs, matching
   * green-context semantics (reconfiguration costs a stream sync, which
   * callers model as host time).
   */
  void SetStreamSms(StreamId stream, int sms);

  int StreamSms(StreamId stream) const;

  /**
   * Enqueues a kernel. `on_complete` (optional) fires after the kernel
   * finishes and the stream has advanced.
   */
  void Launch(StreamId stream, Kernel kernel, Callback on_complete = {});

  /**
   * Invokes `fn` once everything currently enqueued on the stream has
   * completed (immediately if the stream is idle). Models recording a
   * CUDA event at the current tail.
   */
  void OnStreamDrained(StreamId stream, Callback fn);

  /** True when the stream has no running or queued kernels. */
  bool StreamIdle(StreamId stream) const;

  /** Number of queued (not yet started) kernels on the stream. */
  std::size_t StreamQueueDepth(StreamId stream) const;

  const GpuSpec& spec() const { return spec_; }
  sim::Simulator* simulator() const { return sim_; }

  const StreamStats& stream_stats(StreamId stream) const;

  /**
   * Integral of (allocated busy SMs / total SMs) dt since construction,
   * in nanoseconds of "full-device time". Utilization over an interval is
   * (integral(t1) - integral(t0)) / (t1 - t0); callers snapshot it.
   */
  double SmUtilizationIntegral() const;

  /** Integral of "at least one kernel running" time, ns. */
  double BusyTimeIntegral() const;

  /** Solo compute time (seconds) of a kernel on `sms` SMs. */
  double ComputeTimeSeconds(const Kernel& kernel, int sms) const;

  /**
   * Ground-truth duration (seconds) the kernel would take running alone
   * on `sms` SMs — the quantity the solo-run predictor approximates.
   */
  double SoloDurationSeconds(const Kernel& kernel, int sms) const;

  /** Total kernels completed on this device. */
  std::size_t kernels_completed() const { return kernels_completed_; }

  /**
   * Straggler injection: stretches every running and future kernel by
   * `factor` (>= 1). Running kernels are re-rated immediately, keeping
   * the progress they already made. Predictions (SoloDurationSeconds)
   * are deliberately unaffected — a straggler is precisely the gap
   * between the planner's model and the device's reality.
   */
  void SetSlowdown(double factor);
  double slowdown() const { return slowdown_; }

  /**
   * Zombie injection: freezing the device advances every running
   * kernel's progress up to now, cancels its completion event, and
   * stops the clock for it — launches still queue and start (the device
   * accepts work; it just never finishes any), which is exactly what
   * makes a zombie look busy. Thawing re-rates from the retained
   * progress. Idempotent; predictions are unaffected.
   */
  void SetFrozen(bool frozen);
  bool frozen() const { return frozen_; }

  /**
   * Silent degradation: effective FLOPs and the HBM bandwidth pool/cap
   * scale by factors in (0, 1] for running and future kernels (applied
   * in Rerate only — SoloDurationSeconds stays at spec, the same
   * model/reality gap as SetSlowdown). (1.0, 1.0) restores the device.
   */
  void SetDegrade(double flops_factor, double bandwidth_factor);
  double degrade_flops_factor() const { return degrade_flops_; }
  double degrade_bandwidth_factor() const { return degrade_bandwidth_; }

  /**
   * Crash injection: aborts every running and queued kernel on every
   * stream. Completion events are cancelled and their callbacks dropped
   * — exactly the dangling-callback hazard engines must guard against
   * (see tools/muxlint's dangling-callback rule). Busy-time accounting
   * accrues up to now; aborted kernels never count as completed.
   * Returns the number of kernels aborted.
   */
  std::size_t AbortAll();

  /** Total kernels aborted by AbortAll() (diagnostics). */
  std::size_t kernels_aborted() const { return kernels_aborted_; }

  /**
   * Registers per-stream accounting audits: SM grants within device
   * bounds, busy-time accounting inside each stream's activity window,
   * and kernel-completion counters in agreement.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

  /**
   * Attaches a tracer. Kernel execute windows become spans named
   * "kernel" on track `<prefix>s<stream>` (id = a device-wide launch
   * serial, value = the green-context SM grant), HBM arbitration shares
   * become "hbm-share" counters on the same track, and aborts emit
   * "kernel-abort" instants. Purely observational: attaching never
   * schedules events or changes kernel timing.
   */
  void SetTracer(obs::Tracer tracer, std::string track_prefix);

 private:
  /**
   * Completion callbacks for one kernel. Almost every kernel carries
   * zero or one callback; the inline primary slot avoids the vector
   * allocation std::vector<Callback> paid on every Launch, and the
   * overflow vector only materializes for OnStreamDrained pile-ups.
   */
  class CallbackChain {
   public:
    void Add(Callback cb) {
      if (primary_ == nullptr) {
        primary_ = std::move(cb);
      } else {
        overflow_.push_back(std::move(cb));
      }
    }

    /** Runs the callbacks in Add() order. */
    void Invoke() {
      if (primary_) primary_();
      for (Callback& cb : overflow_) cb();
    }

   private:
    Callback primary_;
    std::vector<Callback> overflow_;
  };

  struct QueuedKernel {
    Kernel kernel;
    CallbackChain on_complete;
  };

  struct RunningKernel {
    Kernel kernel;
    CallbackChain on_complete;
    std::uint64_t serial = 0;  // Device-wide launch serial (trace id).
    int granted_sms = 0;      // Green-context grant when it started.
    double fraction_done = 0.0;
    sim::Time last_update = 0;
    sim::Duration current_total = 0;  // Full duration under current rates.
    sim::EventId completion = sim::kInvalidEventId;
  };

  /** Sentinel for a not-yet-interned trace label cache entry. */
  static constexpr std::uint32_t kLabelUnset = 0xffffffffu;

  struct Stream {
    int sms = 0;
    std::deque<QueuedKernel> queue;
    std::optional<RunningKernel> running;
    StreamStats stats;
    // Lazily interned trace track index (rebuilt on SetTracer). Lazy
    // interning keeps the recorder's intern-table order identical to the
    // uncached per-event path, so traces stay bit-reproducible.
    std::uint32_t track_label = kLabelUnset;
  };

  /** Demand/allocation scratch row for one Rerate() pass. */
  struct Rated {
    StreamId id;
    double compute_seconds;
    double demand;  // Desired bytes/s, capped by the SM bandwidth cap.
    double alloc = 0.0;
  };

  Stream& GetStream(StreamId id);
  const Stream& GetStream(StreamId id) const;

  /** Starts the next queued kernel on `id` if the stream is free. */
  void TryStart(StreamId id);

  /** Handles completion of the running kernel on `id`. */
  void Complete(StreamId id);

  /**
   * Re-derives every running kernel's duration from current SM grants
   * and bandwidth arbitration, advancing progress first. O(active
   * streams) per call: idle streams are never visited.
   */
  void Rerate();

  /** Deterministic interference factor for the current active set. */
  double InterferenceFactor();

  /** Advances the utilization integrals up to now. */
  void AdvanceIntegrals();

  /** Trace track for one stream (empty when tracing is off). */
  std::string StreamTrack(StreamId id) const;

  /** Marks `id` active/idle in the sorted active-stream index. */
  void MarkActive(StreamId id);
  void MarkIdle(StreamId id);

  /** Cached intern of the stream's trace track. */
  std::uint32_t TrackLabel(StreamId id);

  /** Cached intern of a trace event name into `*cache`. */
  std::uint32_t NameLabel(std::uint32_t* cache, std::string_view name);

  sim::Simulator* sim_;
  GpuSpec spec_;
  std::vector<Stream> streams_;
  std::size_t kernels_completed_ = 0;
  std::size_t kernels_aborted_ = 0;
  std::uint64_t next_kernel_serial_ = 0;
  double slowdown_ = 1.0;  // Straggler stretch factor (>= 1).
  bool frozen_ = false;    // Zombie: completions stalled, progress kept.
  double degrade_flops_ = 1.0;      // Silent FLOPs derating, (0, 1].
  double degrade_bandwidth_ = 1.0;  // Silent HBM derating, (0, 1].

  // Streams with a running kernel, ascending id. Rerate, interference
  // hashing and the utilization integrals walk this instead of scanning
  // every stream; ascending order preserves the exact demand-vector
  // construction order of the full-scan implementation.
  std::vector<StreamId> active_streams_;

  // Reusable scratch for Rerate()/InterferenceFactor(); cleared, never
  // shrunk, so steady-state re-arbitration does not allocate.
  std::vector<Rated> rated_scratch_;
  std::vector<std::uint64_t> parts_scratch_;

  obs::Tracer tracer_;
  std::string track_prefix_;
  // Lazily interned event-name indices (see Stream::track_label).
  std::uint32_t kernel_name_label_ = kLabelUnset;
  std::uint32_t hbm_name_label_ = kLabelUnset;
  std::uint32_t abort_name_label_ = kLabelUnset;

  // Utilization accounting.
  sim::Time integral_updated_at_ = 0;
  double sm_utilization_integral_ = 0.0;  // sum over dt of busy_sms/total.
  double busy_time_integral_ = 0.0;       // dt where >=1 kernel runs.
};

}  // namespace muxwise::gpu

#endif  // MUXWISE_GPU_GPU_H_
