#include "gpu/cluster.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace muxwise::gpu {

Cluster::Cluster(sim::Simulator* simulator, GpuSpec spec, int total_gpus)
    : sim_(simulator), spec_(std::move(spec)), total_gpus_(total_gpus) {
  MUX_CHECK(sim_ != nullptr);
  MUX_CHECK(total_gpus_ > 0);
  // Migration rides the per-GPU NVLink; latency covers handshake cost.
  link_ = std::make_unique<sim::Channel>(sim_, "cluster/nvlink",
                                         spec_.nvlink_bandwidth,
                                         sim::Microseconds(10));
  control_ = std::make_unique<sim::Channel>(sim_, "cluster/control");
}

Instance& Cluster::AddInstance(int tp_degree) {
  MUX_CHECK(tp_degree > 0);
  if (allocated_gpus_ + tp_degree > total_gpus_) {
    sim::Fatal("cluster over-allocated: " + std::to_string(allocated_gpus_) +
               " + " + std::to_string(tp_degree) + " > " +
               std::to_string(total_gpus_));
  }
  allocated_gpus_ += tp_degree;
  auto instance = std::make_unique<Instance>();
  instance->device = std::make_unique<Gpu>(sim_, spec_);
  instance->host = std::make_unique<HostThread>(sim_);
  instance->tp_degree = tp_degree;
  instances_.push_back(std::move(instance));
  return *instances_.back();
}

void Cluster::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "Cluster", "gpu-conservation", [this](check::AuditContext& ctx) {
        ctx.Check(allocated_gpus_ <= total_gpus_,
                  "allocated " + std::to_string(allocated_gpus_) +
                      " GPUs of " + std::to_string(total_gpus_));
        int sum = 0;
        for (const auto& instance : instances_) {
          ctx.Check(instance->tp_degree >= 1,
                    "instance with non-positive TP degree");
          sum += instance->tp_degree;
        }
        ctx.Check(sum == allocated_gpus_,
                  "instance TP degrees sum to " + std::to_string(sum) +
                      ", allocation bookkeeping says " +
                      std::to_string(allocated_gpus_));
      });
  for (const auto& instance : instances_) {
    instance->device->RegisterAudits(registry);
  }
}

}  // namespace muxwise::gpu
