#include "gpu/cluster.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace muxwise::gpu {

Cluster::Cluster(sim::Simulator* simulator, GpuSpec spec, int total_gpus)
    : sim_(simulator), spec_(std::move(spec)), total_gpus_(total_gpus) {
  MUX_CHECK(sim_ != nullptr);
  MUX_CHECK(total_gpus_ > 0);
  // Migration rides the per-GPU NVLink; latency covers handshake cost.
  link_ = std::make_unique<sim::Channel>(sim_, "cluster/nvlink",
                                         spec_.nvlink_bandwidth,
                                         sim::Microseconds(10));
  control_ = std::make_unique<sim::Channel>(sim_, "cluster/control");
  // Fabric links are shared by every instance pair: annotate them as
  // any-to-any crossings so the shard partition map stays complete.
  link_->AnnotateShards(sim::kNoShard, sim::kNoShard);
  control_->AnnotateShards(sim::kNoShard, sim::kNoShard);
}

Instance& Cluster::AddInstance(int tp_degree) {
  MUX_CHECK(tp_degree > 0);
  if (allocated_gpus_ + tp_degree > total_gpus_) {
    sim::Fatal("cluster over-allocated: " + std::to_string(allocated_gpus_) +
               " + " + std::to_string(tp_degree) + " > " +
               std::to_string(total_gpus_));
  }
  allocated_gpus_ += tp_degree;
  auto instance = std::make_unique<Instance>();
  instance->device = std::make_unique<Gpu>(sim_, spec_);
  instance->host = std::make_unique<HostThread>(sim_);
  instance->tp_degree = tp_degree;
  // Partition map: instance i is event-loop shard i.
  instance->shard = static_cast<sim::ShardId>(instances_.size());
  instances_.push_back(std::move(instance));
  return *instances_.back();
}

void Cluster::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "Cluster", "gpu-conservation", [this](check::AuditContext& ctx) {
        ctx.Check(allocated_gpus_ <= total_gpus_,
                  "allocated " + std::to_string(allocated_gpus_) +
                      " GPUs of " + std::to_string(total_gpus_));
        int sum = 0;
        for (const auto& instance : instances_) {
          ctx.Check(instance->tp_degree >= 1,
                    "instance with non-positive TP degree");
          sum += instance->tp_degree;
        }
        ctx.Check(sum == allocated_gpus_,
                  "instance TP degrees sum to " + std::to_string(sum) +
                      ", allocation bookkeeping says " +
                      std::to_string(allocated_gpus_));
      });
  registry.Register(
      "Cluster", "shard-partition-map", [this](check::AuditContext& ctx) {
        // Instance i must be shard i — dense, unique, in creation
        // order — or the parallel kernel's partition map is ambiguous.
        for (std::size_t i = 0; i < instances_.size(); ++i) {
          ctx.Check(instances_[i]->shard == static_cast<sim::ShardId>(i),
                    "instance " + std::to_string(i) + " carries shard id " +
                        std::to_string(instances_[i]->shard) +
                        "; the partition map must be instance i = shard i");
        }
      });
  for (const auto& instance : instances_) {
    instance->device->RegisterAudits(registry);
  }
}

}  // namespace muxwise::gpu
