#include "gpu/cluster.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace muxwise::gpu {

Interconnect::Interconnect(sim::Simulator* simulator,
                           double bandwidth_bytes_per_s, sim::Duration latency)
    : sim_(simulator), bandwidth_(bandwidth_bytes_per_s), latency_(latency) {
  MUX_CHECK(sim_ != nullptr);
  MUX_CHECK(bandwidth_ > 0.0);
}

void Interconnect::EnableFaults(FaultModel model, sim::Rng rng) {
  MUX_CHECK(model.failure_probability >= 0.0 &&
            model.failure_probability < 1.0);
  MUX_CHECK(model.max_attempts >= 1);
  MUX_CHECK(model.initial_backoff >= 0);
  fault_model_ = model;
  fault_rng_.emplace(std::move(rng));
}

void Interconnect::SetFailureProbability(double p) {
  MUX_CHECK(p >= 0.0 && p < 1.0);
  MUX_CHECK(fault_rng_.has_value());
  fault_model_.failure_probability = p;
}

void Interconnect::Transfer(double bytes, std::function<void()> done,
                            std::function<void()> failed) {
  MUX_CHECK(bytes >= 0.0);
  StartAttempt(bytes, 1, std::move(done), std::move(failed));
}

void Interconnect::StartAttempt(double bytes, int attempt,
                                std::function<void()> done,
                                std::function<void()> failed) {
  const sim::Duration wire_time =
      latency_ + static_cast<sim::Duration>(bytes / bandwidth_ * 1e9);
  // Clamp: a link that has been idle since free_at_ passed must not make
  // the next transfer inherit that stale serialization point.
  free_at_ = std::max(free_at_, sim_->Now()) + wire_time;
  // Draw per-attempt loss up front (deterministic given the seeded
  // stream); an unarmed or zero-probability link consumes no randomness
  // and takes the exact same single-event path as before faults existed.
  const bool lost = fault_rng_.has_value() &&
                    fault_model_.failure_probability > 0.0 &&
                    fault_rng_->Bernoulli(fault_model_.failure_probability);
  if (!lost) {
    auto finish = [this, bytes, done = std::move(done)] {
      bytes_transferred_ += bytes;
      ++transfers_completed_;
      if (done) done();
    };
    sim_->ScheduleAt(free_at_, std::move(finish));
    return;
  }
  // The attempt occupied the wire for its full duration before being
  // detected as lost (worst-case model: corruption found at the CRC on
  // the far side), then the caller backs off before retrying.
  if (attempt >= fault_model_.max_attempts) {
    auto give_up = [this, failed = std::move(failed)] {
      ++attempts_failed_;
      ++transfers_failed_;
      if (failed) failed();
    };
    sim_->ScheduleAt(free_at_, std::move(give_up));
    return;
  }
  sim::Duration backoff = fault_model_.initial_backoff;
  for (int i = 1; i < attempt; ++i) backoff *= 2;
  auto retry = [this, bytes, attempt, done = std::move(done),
                failed = std::move(failed)]() mutable {
    ++attempts_failed_;
    StartAttempt(bytes, attempt + 1, std::move(done), std::move(failed));
  };
  sim_->ScheduleAt(free_at_ + backoff, std::move(retry));
}

Cluster::Cluster(sim::Simulator* simulator, GpuSpec spec, int total_gpus)
    : sim_(simulator), spec_(std::move(spec)), total_gpus_(total_gpus) {
  MUX_CHECK(sim_ != nullptr);
  MUX_CHECK(total_gpus_ > 0);
  // Migration rides the per-GPU NVLink; latency covers handshake cost.
  link_ = std::make_unique<Interconnect>(sim_, spec_.nvlink_bandwidth,
                                         sim::Microseconds(10));
}

Instance& Cluster::AddInstance(int tp_degree) {
  MUX_CHECK(tp_degree > 0);
  if (allocated_gpus_ + tp_degree > total_gpus_) {
    sim::Fatal("cluster over-allocated: " + std::to_string(allocated_gpus_) +
               " + " + std::to_string(tp_degree) + " > " +
               std::to_string(total_gpus_));
  }
  allocated_gpus_ += tp_degree;
  auto instance = std::make_unique<Instance>();
  instance->device = std::make_unique<Gpu>(sim_, spec_);
  instance->host = std::make_unique<HostThread>(sim_);
  instance->tp_degree = tp_degree;
  instances_.push_back(std::move(instance));
  return *instances_.back();
}

void Cluster::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "Cluster", "gpu-conservation", [this](check::AuditContext& ctx) {
        ctx.Check(allocated_gpus_ <= total_gpus_,
                  "allocated " + std::to_string(allocated_gpus_) +
                      " GPUs of " + std::to_string(total_gpus_));
        int sum = 0;
        for (const auto& instance : instances_) {
          ctx.Check(instance->tp_degree >= 1,
                    "instance with non-positive TP degree");
          sum += instance->tp_degree;
        }
        ctx.Check(sum == allocated_gpus_,
                  "instance TP degrees sum to " + std::to_string(sum) +
                      ", allocation bookkeeping says " +
                      std::to_string(allocated_gpus_));
      });
  for (const auto& instance : instances_) {
    instance->device->RegisterAudits(registry);
  }
}

}  // namespace muxwise::gpu
