#ifndef MUXWISE_GPU_CLUSTER_H_
#define MUXWISE_GPU_CLUSTER_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/invariant_registry.h"
#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "gpu/host.h"
#include "sim/channel.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace muxwise::gpu {

/**
 * A FIFO point-to-point link used for KV-cache migration between
 * disaggregated instances — now a named sim::Channel (the wire model,
 * fault machinery, and counters live there). The alias remains because
 * "interconnect" is the hardware-shaped name for a clocked inter-GPU
 * channel; new code may use sim::Channel directly.
 */
using Interconnect = sim::Channel;

/**
 * One serving instance: a symmetric tensor-parallel group of `tp_degree`
 * GPUs simulated as a single Gpu executing per-GPU work, plus the host
 * thread that launches onto it.
 */
struct Instance {
  std::unique_ptr<Gpu> device;
  std::unique_ptr<HostThread> host;
  int tp_degree = 0;

  /**
   * The event-loop shard this instance's events belong to — the
   * partition map of the parallel simulation kernel (ROADMAP item 2):
   * instance i is shard i, assigned at AddInstance. Sequential runs
   * carry the id inertly.
   */
  sim::ShardId shard = sim::kNoShard;

  /** Aggregate HBM capacity across the group, bytes. */
  double TotalHbmCapacity() const {
    return device->spec().hbm_capacity * tp_degree;
  }
};

/**
 * An 8-GPU (by default) single server carved into one or more
 * tensor-parallel instances, mirroring the paper's testbeds. Aggregated
 * serving uses one instance of degree 8; SGLang-PD uses two of degree 4;
 * LoongServe re-partitions dynamically (modeled by its engine on top of
 * instances it requests here).
 */
class Cluster {
 public:
  Cluster(sim::Simulator* simulator, GpuSpec spec, int total_gpus);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /** Adds a TP group of `tp_degree` GPUs; fatal if over-allocated. */
  Instance& AddInstance(int tp_degree);

  Instance& instance(std::size_t i) { return *instances_[i]; }
  const Instance& instance(std::size_t i) const { return *instances_[i]; }
  std::size_t num_instances() const { return instances_.size(); }

  const GpuSpec& spec() const { return spec_; }
  int total_gpus() const { return total_gpus_; }
  int allocated_gpus() const { return allocated_gpus_; }
  sim::Simulator* simulator() const { return sim_; }

  /** NVLink fabric used for inter-instance KV migration. */
  sim::Channel& link() { return *link_; }

  /**
   * The control channel for cluster-level callbacks: every same-tick
   * hand-off between instances (prefill batch done -> decode admission,
   * decode drain -> prefill pump) is delivered through here instead of
   * one shard calling into another directly. Deliveries run inline, so
   * the event stream is identical to a direct call — but the crossing
   * is explicit, counted, and enforceable by muxlint's shard-safety
   * rule, which is the prerequisite for sharding the event loop.
   */
  sim::Channel& control() { return *control_; }

  /**
   * The natural conservative lookahead for sharding this cluster by
   * instance: every cross-instance interaction rides link() or
   * control(), and the NVLink fabric's fixed latency is the minimum
   * cross-shard event delay a sharded kernel may exploit.
   */
  sim::Duration ShardLookaheadBound() const { return link_->latency(); }

  /**
   * Registers GPU-conservation audits (instances never over-allocate
   * the server, allocation bookkeeping adds up) and every instance
   * device's own audits.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

 private:
  sim::Simulator* sim_;
  GpuSpec spec_;
  int total_gpus_;
  int allocated_gpus_ = 0;
  std::vector<std::unique_ptr<Instance>> instances_;
  std::unique_ptr<sim::Channel> link_;
  std::unique_ptr<sim::Channel> control_;
};

}  // namespace muxwise::gpu

#endif  // MUXWISE_GPU_CLUSTER_H_
