#ifndef MUXWISE_GPU_CLUSTER_H_
#define MUXWISE_GPU_CLUSTER_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/invariant_registry.h"
#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "gpu/host.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace muxwise::gpu {

/**
 * A FIFO point-to-point link used for KV-cache migration between
 * disaggregated instances. Transfers queue behind each other; duration
 * is latency + bytes / bandwidth. The idle marker is clamped to Now()
 * at enqueue time, so a transfer issued long after the link went idle
 * starts immediately instead of inheriting stale serialization state,
 * and bytes/completion counters advance only when the bytes actually
 * land (never at enqueue).
 *
 * With EnableFaults() armed, each attempt may be lost with the model's
 * probability (drawn from a seeded sim::Rng — deterministic). Lost
 * attempts retry with exponential backoff, re-occupying the wire, up to
 * max_attempts; after that the transfer permanently fails and the
 * caller's `failed` callback fires instead of `done`.
 */
class Interconnect {
 public:
  /** Deterministic per-attempt failure model for an armed link. */
  struct FaultModel {
    /** Per-attempt loss probability; retuned live by the injector. */
    double failure_probability = 0.0;

    /** Total attempts per transfer (first try included), >= 1. */
    int max_attempts = 4;

    /** Backoff before attempt k+1: initial_backoff * 2^(k-1). */
    sim::Duration initial_backoff = sim::Milliseconds(2);
  };

  Interconnect(sim::Simulator* simulator, double bandwidth_bytes_per_s,
               sim::Duration latency);

  /**
   * Arms the link's failure model with a seeded stream. Unarmed links
   * (the default) draw no randomness and schedule no retry events, so
   * fault-free runs stay bit-identical to a build without this feature.
   */
  void EnableFaults(FaultModel model, sim::Rng rng);

  /** Retunes the armed per-attempt loss probability (fault windows). */
  void SetFailureProbability(double p);

  /**
   * Enqueues a transfer; `done` fires when the bytes have landed. If the
   * armed fault model exhausts its attempts, `failed` (when provided)
   * fires instead — the permanent-failure path.
   */
  void Transfer(double bytes, std::function<void()> done,
                std::function<void()> failed = {});

  /** Total bytes that actually landed (retries count once, on success). */
  double bytes_transferred() const { return bytes_transferred_; }

  /** Number of completed transfers. */
  std::size_t transfers_completed() const { return transfers_completed_; }

  /** Attempts lost and retried (transient failures). */
  std::size_t attempts_failed() const { return attempts_failed_; }

  /** Transfers that exhausted their attempts (permanent failures). */
  std::size_t transfers_failed() const { return transfers_failed_; }

 private:
  /** Occupies the wire for one attempt and schedules its landing. */
  void StartAttempt(double bytes, int attempt, std::function<void()> done,
                    std::function<void()> failed);

  sim::Simulator* sim_;
  double bandwidth_;
  sim::Duration latency_;
  sim::Time free_at_ = 0;
  double bytes_transferred_ = 0.0;
  std::size_t transfers_completed_ = 0;
  std::size_t attempts_failed_ = 0;
  std::size_t transfers_failed_ = 0;
  FaultModel fault_model_;
  std::optional<sim::Rng> fault_rng_;
};

/**
 * One serving instance: a symmetric tensor-parallel group of `tp_degree`
 * GPUs simulated as a single Gpu executing per-GPU work, plus the host
 * thread that launches onto it.
 */
struct Instance {
  std::unique_ptr<Gpu> device;
  std::unique_ptr<HostThread> host;
  int tp_degree = 0;

  /** Aggregate HBM capacity across the group, bytes. */
  double TotalHbmCapacity() const {
    return device->spec().hbm_capacity * tp_degree;
  }
};

/**
 * An 8-GPU (by default) single server carved into one or more
 * tensor-parallel instances, mirroring the paper's testbeds. Aggregated
 * serving uses one instance of degree 8; SGLang-PD uses two of degree 4;
 * LoongServe re-partitions dynamically (modeled by its engine on top of
 * instances it requests here).
 */
class Cluster {
 public:
  Cluster(sim::Simulator* simulator, GpuSpec spec, int total_gpus);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /** Adds a TP group of `tp_degree` GPUs; fatal if over-allocated. */
  Instance& AddInstance(int tp_degree);

  Instance& instance(std::size_t i) { return *instances_[i]; }
  const Instance& instance(std::size_t i) const { return *instances_[i]; }
  std::size_t num_instances() const { return instances_.size(); }

  const GpuSpec& spec() const { return spec_; }
  int total_gpus() const { return total_gpus_; }
  int allocated_gpus() const { return allocated_gpus_; }
  sim::Simulator* simulator() const { return sim_; }

  /** NVLink fabric used for inter-instance KV migration. */
  Interconnect& link() { return *link_; }

  /**
   * Registers GPU-conservation audits (instances never over-allocate
   * the server, allocation bookkeeping adds up) and every instance
   * device's own audits.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

 private:
  sim::Simulator* sim_;
  GpuSpec spec_;
  int total_gpus_;
  int allocated_gpus_ = 0;
  std::vector<std::unique_ptr<Instance>> instances_;
  std::unique_ptr<Interconnect> link_;
};

}  // namespace muxwise::gpu

#endif  // MUXWISE_GPU_CLUSTER_H_
