#ifndef MUXWISE_GPU_HOST_H_
#define MUXWISE_GPU_HOST_H_

#include <functional>

#include "sim/simulator.h"
#include "sim/time.h"

namespace muxwise::gpu {

/**
 * Models the single CPU thread that issues work to a GPU.
 *
 * Kernel and graph launches are asynchronous on the device but occupy
 * the host for their launch latency, serializing with each other. This
 * is the mechanism behind the paper's launch-latency bubbles (§3.2.2):
 * while the host is busy launching a long prefill, it cannot launch the
 * next decode iteration.
 */
class HostThread {
 public:
  explicit HostThread(sim::Simulator* simulator) : sim_(simulator) {}

  HostThread(const HostThread&) = delete;
  HostThread& operator=(const HostThread&) = delete;

  /**
   * Occupies the host for `cost` (after any previously submitted work)
   * and then runs `fn`. Returns the completion time of this submission.
   */
  sim::Time Submit(sim::Duration cost, std::function<void()> fn) {
    const sim::Time start = std::max(sim_->Now(), busy_until_);
    busy_until_ = start + cost;
    if (fn) sim_->ScheduleAt(busy_until_, std::move(fn));
    total_busy_ += cost;
    return busy_until_;
  }

  /** Time at which all submitted host work completes. */
  sim::Time busy_until() const { return busy_until_; }

  /** True when the host thread has no pending work. */
  bool Idle() const { return busy_until_ <= sim_->Now(); }

  /** Cumulative host time spent launching. */
  sim::Duration total_busy() const { return total_busy_; }

 private:
  sim::Simulator* sim_;
  sim::Time busy_until_ = 0;
  sim::Duration total_busy_ = 0;
};

}  // namespace muxwise::gpu

#endif  // MUXWISE_GPU_HOST_H_
