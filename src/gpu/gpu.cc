#include "gpu/gpu.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/logging.h"

namespace muxwise::gpu {

namespace {

/** Minimum modeled kernel duration (tail/wave quantization). */
constexpr sim::Duration kMinKernelTime = sim::Microseconds(2);

/** Mixes a 64-bit value (splitmix64 finalizer). */
std::uint64_t Mix(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/** Coarse log2 bucket of a positive quantity (0 for <= 0). */
int Log2Bucket(double x) {
  if (x <= 1.0) return 0;
  return static_cast<int>(std::log2(x));
}

}  // namespace

double StreamStats::BubbleRatio() const {
  if (first_activity >= last_activity) return 0.0;
  const double window = static_cast<double>(last_activity - first_activity);
  const double idle = window - static_cast<double>(busy_time);
  return std::max(0.0, idle / window);
}

Gpu::Gpu(sim::Simulator* simulator, GpuSpec spec)
    : sim_(simulator), spec_(std::move(spec)) {
  MUX_CHECK(sim_ != nullptr);
  MUX_CHECK(spec_.sm_count > 0);
}

StreamId Gpu::CreateStream(int sms) {
  MUX_CHECK(sms > 0 && sms <= spec_.sm_count);
  Stream stream;
  stream.sms = sms;
  streams_.push_back(std::move(stream));
  return static_cast<StreamId>(streams_.size()) - 1;
}

Gpu::Stream& Gpu::GetStream(StreamId id) {
  MUX_CHECK(id >= 0 && static_cast<std::size_t>(id) < streams_.size());
  return streams_[static_cast<std::size_t>(id)];
}

const Gpu::Stream& Gpu::GetStream(StreamId id) const {
  MUX_CHECK(id >= 0 && static_cast<std::size_t>(id) < streams_.size());
  return streams_[static_cast<std::size_t>(id)];
}

void Gpu::SetStreamSms(StreamId stream, int sms) {
  MUX_CHECK(sms > 0 && sms <= spec_.sm_count);
  GetStream(stream).sms = sms;
}

int Gpu::StreamSms(StreamId stream) const { return GetStream(stream).sms; }

void Gpu::Launch(StreamId stream, Kernel kernel, Callback on_complete) {
  Stream& s = GetStream(stream);
  QueuedKernel q;
  q.kernel = std::move(kernel);
  if (on_complete) q.on_complete.Add(std::move(on_complete));
  s.queue.push_back(std::move(q));
  TryStart(stream);
}

void Gpu::OnStreamDrained(StreamId stream, Callback fn) {
  MUX_CHECK(fn != nullptr);
  Stream& s = GetStream(stream);
  if (!s.queue.empty()) {
    s.queue.back().on_complete.Add(std::move(fn));
  } else if (s.running.has_value()) {
    s.running->on_complete.Add(std::move(fn));
  } else {
    sim_->ScheduleAfter(0, std::move(fn));
  }
}

bool Gpu::StreamIdle(StreamId stream) const {
  const Stream& s = GetStream(stream);
  return !s.running.has_value() && s.queue.empty();
}

std::size_t Gpu::StreamQueueDepth(StreamId stream) const {
  return GetStream(stream).queue.size();
}

const StreamStats& Gpu::stream_stats(StreamId stream) const {
  return GetStream(stream).stats;
}

void Gpu::SetTracer(obs::Tracer tracer, std::string track_prefix) {
  tracer_ = tracer;
  track_prefix_ = std::move(track_prefix);
  // Label caches bind to a recorder's intern tables; drop them so the
  // next emit re-interns against the new recorder.
  for (Stream& s : streams_) s.track_label = kLabelUnset;
  kernel_name_label_ = kLabelUnset;
  hbm_name_label_ = kLabelUnset;
  abort_name_label_ = kLabelUnset;
}

std::string Gpu::StreamTrack(StreamId id) const {
  return track_prefix_ + "s" + std::to_string(id);
}

std::uint32_t Gpu::TrackLabel(StreamId id) {
  Stream& s = GetStream(id);
  if (s.track_label == kLabelUnset) {
    s.track_label = tracer_.recorder()->InternTrack(StreamTrack(id));
  }
  return s.track_label;
}

std::uint32_t Gpu::NameLabel(std::uint32_t* cache, std::string_view name) {
  if (*cache == kLabelUnset) {
    *cache = tracer_.recorder()->InternName(name);
  }
  return *cache;
}

void Gpu::MarkActive(StreamId id) {
  const auto it =
      std::lower_bound(active_streams_.begin(), active_streams_.end(), id);
  MUX_CHECK(it == active_streams_.end() || *it != id);
  active_streams_.insert(it, id);
}

void Gpu::MarkIdle(StreamId id) {
  const auto it =
      std::lower_bound(active_streams_.begin(), active_streams_.end(), id);
  MUX_CHECK(it != active_streams_.end() && *it == id);
  active_streams_.erase(it);
}

double Gpu::SmUtilizationIntegral() const {
  // Include the un-flushed tail up to now.
  double extra = 0.0;
  const double dt = static_cast<double>(sim_->Now() - integral_updated_at_);
  if (dt > 0.0) {
    int busy_sms = 0;
    for (const StreamId id : active_streams_) {
      busy_sms += streams_[static_cast<std::size_t>(id)].running->granted_sms;
    }
    busy_sms = std::min(busy_sms, spec_.sm_count);
    extra = dt * busy_sms / spec_.sm_count;
  }
  return sm_utilization_integral_ + extra;
}

double Gpu::BusyTimeIntegral() const {
  double extra = 0.0;
  const double dt = static_cast<double>(sim_->Now() - integral_updated_at_);
  if (dt > 0.0 && !active_streams_.empty()) extra = dt;
  return busy_time_integral_ + extra;
}

double Gpu::ComputeTimeSeconds(const Kernel& kernel, int sms) const {
  MUX_CHECK(sms > 0);
  double total = 0.0;
  if (kernel.flops > 0.0) {
    double efficiency;
    if (kernel.work_items > 0.0 && kernel.saturation_half_items > 0.0) {
      // GEMM saturation by activation rows (tokens).
      efficiency = kernel.peak_efficiency * kernel.work_items /
                   (kernel.work_items + kernel.saturation_half_items);
    } else {
      const double work_per_sm = kernel.flops / sms;
      efficiency = kernel.peak_efficiency * work_per_sm /
                   (work_per_sm + kernel.saturation_half_flops_per_sm);
    }
    total += kernel.flops / (sms * spec_.flops_per_sm * efficiency);
  }
  if (kernel.stream_flops > 0.0) {
    total += kernel.stream_flops /
             (sms * spec_.flops_per_sm * kernel.stream_efficiency);
  }
  return total;
}

double Gpu::SoloDurationSeconds(const Kernel& kernel, int sms) const {
  const double compute = ComputeTimeSeconds(kernel, sms);
  const double bandwidth = spec_.BandwidthCap(sms);
  const double memory = kernel.bytes > 0.0 ? kernel.bytes / bandwidth : 0.0;
  return std::max(compute, memory) +
         kernel.overlap_alpha * std::min(compute, memory) +
         sim::ToSeconds(kernel.fixed_time);
}

void Gpu::AdvanceIntegrals() {
  const sim::Time now = sim_->Now();
  const double dt = static_cast<double>(now - integral_updated_at_);
  if (dt > 0.0) {
    int busy_sms = 0;
    for (const StreamId id : active_streams_) {
      busy_sms += streams_[static_cast<std::size_t>(id)].running->granted_sms;
    }
    busy_sms = std::min(busy_sms, spec_.sm_count);
    sm_utilization_integral_ += dt * busy_sms / spec_.sm_count;
    if (!active_streams_.empty()) busy_time_integral_ += dt;
  }
  integral_updated_at_ = now;
}

void Gpu::TryStart(StreamId id) {
  Stream& s = GetStream(id);
  if (s.running.has_value() || s.queue.empty()) return;
  AdvanceIntegrals();

  RunningKernel run;
  run.kernel = std::move(s.queue.front().kernel);
  run.on_complete = std::move(s.queue.front().on_complete);
  s.queue.pop_front();
  run.serial = next_kernel_serial_++;
  run.granted_sms = s.sms;
  run.fraction_done = 0.0;
  run.last_update = sim_->Now();
  run.current_total = 0;  // Assigned by Rerate().
  s.running = std::move(run);
  MarkActive(id);

  if (tracer_.enabled()) {
    tracer_.SpanBegin(
        obs::SpanLabel{TrackLabel(id), NameLabel(&kernel_name_label_, "kernel")},
        static_cast<std::int64_t>(s.running->serial),
        static_cast<double>(s.running->granted_sms));
  }

  s.stats.first_activity = std::min(s.stats.first_activity, sim_->Now());
  Rerate();
}

void Gpu::Complete(StreamId id) {
  Stream& s = GetStream(id);
  MUX_CHECK(s.running.has_value());
  AdvanceIntegrals();

  RunningKernel finished = std::move(*s.running);
  s.running.reset();
  MarkIdle(id);
  // Rerate() already accrued busy time up to the last re-rating point;
  // account for the final uninterrupted stretch here.
  s.stats.busy_time += sim_->Now() - finished.last_update;
  s.stats.last_activity = sim_->Now();
  ++s.stats.kernels_completed;
  ++kernels_completed_;

  if (tracer_.enabled()) {
    tracer_.SpanEnd(
        obs::SpanLabel{TrackLabel(id), NameLabel(&kernel_name_label_, "kernel")},
        static_cast<std::int64_t>(finished.serial));
  }

  // Start the next kernel on this stream (if any), then re-rate everyone.
  TryStart(id);
  Rerate();

  finished.on_complete.Invoke();
}

double Gpu::InterferenceFactor() {
  if (active_streams_.size() < 2) return 0.0;
  // Deterministic but configuration-dependent: hash the multiset of
  // (kind, SM-grant bucket, byte-volume bucket) descriptors. The serving
  // layer cannot query this; it must be learned by profiling, mirroring
  // the unmanaged memory-bandwidth contention of real GPUs (paper §3.3.1).
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  std::vector<std::uint64_t>& parts = parts_scratch_;
  parts.clear();
  for (const StreamId id : active_streams_) {
    const RunningKernel& run = *streams_[static_cast<std::size_t>(id)].running;
    const int grain = std::max(1, spec_.partition_granularity);
    std::uint64_t p = static_cast<std::uint64_t>(run.kernel.kind);
    p = p * 1315423911ULL + static_cast<std::uint64_t>(run.granted_sms / grain);
    p = p * 1315423911ULL +
        static_cast<std::uint64_t>(Log2Bucket(run.kernel.bytes));
    p = p * 1315423911ULL +
        static_cast<std::uint64_t>(Log2Bucket(run.kernel.flops));
    parts.push_back(Mix(p));
  }
  std::sort(parts.begin(), parts.end());  // Order-independent.
  for (std::uint64_t p : parts) h = Mix(h ^ p);
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  return spec_.max_interference * 0.7 * u;
}

void Gpu::Rerate() {
  AdvanceIntegrals();
  const sim::Time now = sim_->Now();

  if (active_streams_.empty()) return;
  if (frozen_) {
    // Zombie freeze: bank each running kernel's progress under the old
    // rate, then stop its clock — cancel the completion and zero
    // current_total, so the thaw-time Rerate advances nothing across
    // the frozen span and reschedules from the banked fraction.
    for (const StreamId id : active_streams_) {
      Stream& s = streams_[static_cast<std::size_t>(id)];
      RunningKernel& run = *s.running;
      if (run.current_total > 0) {
        const double elapsed = static_cast<double>(now - run.last_update);
        run.fraction_done = std::min(
            1.0,
            run.fraction_done + elapsed / static_cast<double>(run.current_total));
        s.stats.busy_time += now - run.last_update;
      }
      run.last_update = now;
      run.current_total = 0;
      if (run.completion != sim::kInvalidEventId) {
        sim_->Cancel(run.completion);
        run.completion = sim::kInvalidEventId;
      }
    }
    return;
  }
  int total_granted = 0;
  for (const StreamId id : active_streams_) {
    total_granted += streams_[static_cast<std::size_t>(id)].running->granted_sms;
  }

  // Oversubscription (no partition management): scale effective SMs.
  const double sm_scale =
      total_granted > spec_.sm_count
          ? static_cast<double>(spec_.sm_count) / total_granted
          : 1.0;

  const double interference = InterferenceFactor();
  double pool = spec_.hbm_bandwidth * degrade_bandwidth_ * (1.0 - interference);
  // Unmanaged SM oversubscription (plain streams, no green contexts)
  // interleaves thread blocks of unrelated kernels, thrashing caches:
  // effective bandwidth drops beyond the fair-share loss. Managed
  // partitions never oversubscribe, so this penalizes only engines
  // that skip partition management (WindServe-style, §6).
  if (sm_scale < 1.0) {
    pool *= 1.0 - 0.4 * (1.0 - sm_scale);
  }

  // First pass: advance progress and compute demands.
  std::vector<Rated>& rated = rated_scratch_;
  rated.clear();
  for (const StreamId id : active_streams_) {
    Stream& s = streams_[static_cast<std::size_t>(id)];
    RunningKernel& run = *s.running;
    // Advance fractional progress under the old rate.
    if (run.current_total > 0) {
      const double elapsed = static_cast<double>(now - run.last_update);
      run.fraction_done = std::min(
          1.0, run.fraction_done + elapsed / static_cast<double>(run.current_total));
      s.stats.busy_time += now - run.last_update;
    }
    run.last_update = now;

    const int eff_sms = std::max(
        1, static_cast<int>(std::floor(run.granted_sms * sm_scale)));
    Rated r;
    r.id = id;
    r.compute_seconds = ComputeTimeSeconds(run.kernel, eff_sms) / degrade_flops_;
    const double cap = spec_.BandwidthCap(eff_sms) * degrade_bandwidth_;
    if (run.kernel.bytes <= 0.0) {
      r.demand = 0.0;
    } else if (r.compute_seconds <= 0.0) {
      r.demand = cap;  // Pure memory mover: takes whatever it can.
    } else {
      r.demand = std::min(run.kernel.bytes / r.compute_seconds, cap);
    }
    rated.push_back(r);
  }

  // Max-min bandwidth allocation within the (interference-shrunk) pool.
  std::sort(rated.begin(), rated.end(),
            [](const Rated& a, const Rated& b) { return a.demand < b.demand; });
  std::size_t remaining = rated.size();
  for (Rated& r : rated) {
    const double fair = pool / static_cast<double>(remaining);
    r.alloc = std::min(r.demand, fair);
    pool -= r.alloc;
    --remaining;
  }

  // Second pass: derive durations and (re)schedule completions.
  for (const Rated& r : rated) {
    Stream& s = streams_[static_cast<std::size_t>(r.id)];
    RunningKernel& run = *s.running;
    if (tracer_.enabled()) {
      tracer_.Counter(
          obs::SpanLabel{TrackLabel(r.id), NameLabel(&hbm_name_label_, "hbm-share")},
          r.alloc);
    }
    const double memory_seconds =
        (run.kernel.bytes > 0.0 && r.alloc > 0.0)
            ? run.kernel.bytes / r.alloc
            : (run.kernel.bytes > 0.0 ? 1e9 : 0.0);
    const double seconds =
        (std::max(r.compute_seconds, memory_seconds) +
         run.kernel.overlap_alpha *
             std::min(r.compute_seconds, memory_seconds) +
         sim::ToSeconds(run.kernel.fixed_time)) *
        slowdown_;
    run.current_total =
        std::max(kMinKernelTime, static_cast<sim::Duration>(seconds * 1e9));
    const double left = std::max(0.0, 1.0 - run.fraction_done);
    const sim::Duration time_left = std::max<sim::Duration>(
        1, static_cast<sim::Duration>(left * static_cast<double>(run.current_total)));
    if (run.completion != sim::kInvalidEventId) sim_->Cancel(run.completion);
    const StreamId id = r.id;
    run.completion =
        sim_->ScheduleAfter(time_left, [this, id] { Complete(id); });
  }
}

void Gpu::SetSlowdown(double factor) {
  MUX_CHECK(factor >= 1.0);
  if (factor == slowdown_) return;
  slowdown_ = factor;
  Rerate();  // Running kernels stretch (or recover) immediately.
}

void Gpu::SetFrozen(bool frozen) {
  if (frozen == frozen_) return;
  frozen_ = frozen;
  // Freeze banks progress and cancels completions; thaw re-rates from
  // the banked fractions and reschedules them.
  Rerate();
}

void Gpu::SetDegrade(double flops_factor, double bandwidth_factor) {
  MUX_CHECK(flops_factor > 0.0 && flops_factor <= 1.0);
  MUX_CHECK(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0);
  if (flops_factor == degrade_flops_ &&
      bandwidth_factor == degrade_bandwidth_) {
    return;
  }
  degrade_flops_ = flops_factor;
  degrade_bandwidth_ = bandwidth_factor;
  Rerate();  // Running kernels re-rate under the degraded roofline.
}

std::size_t Gpu::AbortAll() {
  AdvanceIntegrals();
  const sim::Time now = sim_->Now();
  std::size_t aborted = 0;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = streams_[i];
    if (s.running.has_value()) {
      if (s.running->completion != sim::kInvalidEventId) {
        sim_->Cancel(s.running->completion);
      }
      // The partial execution still occupied the stream.
      s.stats.busy_time += now - s.running->last_update;
      s.stats.last_activity = now;
      if (tracer_.enabled()) {
        const auto id = static_cast<StreamId>(i);
        const auto serial = static_cast<std::int64_t>(s.running->serial);
        tracer_.SpanEnd(
            obs::SpanLabel{TrackLabel(id),
                           NameLabel(&kernel_name_label_, "kernel")},
            serial);
        tracer_.Instant(
            obs::SpanLabel{TrackLabel(id),
                           NameLabel(&abort_name_label_, "kernel-abort")},
            serial);
      }
      s.running.reset();
      ++aborted;
    }
    aborted += s.queue.size();
    s.queue.clear();
  }
  active_streams_.clear();
  kernels_aborted_ += aborted;
  return aborted;
}

void Gpu::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "Gpu", "stream-partitions", [this](check::AuditContext& ctx) {
        for (std::size_t i = 0; i < streams_.size(); ++i) {
          const Stream& s = streams_[i];
          ctx.Check(s.sms >= 1 && s.sms <= spec_.sm_count,
                    "stream " + std::to_string(i) + " SM grant " +
                        std::to_string(s.sms) + " outside [1, " +
                        std::to_string(spec_.sm_count) + "]");
        }
      });
  registry.Register(
      "Gpu", "stream-accounting", [this](check::AuditContext& ctx) {
        std::size_t completed = 0;
        for (std::size_t i = 0; i < streams_.size(); ++i) {
          const StreamStats& stats = streams_[i].stats;
          const std::string label = "stream " + std::to_string(i) + " ";
          ctx.Check(stats.busy_time >= 0, label + "negative busy time");
          completed += stats.kernels_completed;
          if (stats.kernels_completed == 0) continue;
          ctx.Check(stats.first_activity <= stats.last_activity,
                    label + "activity window inverted");
          ctx.Check(stats.busy_time <=
                        stats.last_activity - stats.first_activity,
                    label + "busy time exceeds its activity window");
        }
        ctx.Check(completed == kernels_completed_,
                  "per-stream kernel counts sum to " +
                      std::to_string(completed) + ", device counted " +
                      std::to_string(kernels_completed_));
      });
  registry.Register(
      "Gpu", "active-stream-index", [this](check::AuditContext& ctx) {
        // The sorted active-stream index must hold exactly the streams
        // with a running kernel; Rerate and the utilization integrals
        // trust it instead of scanning every stream.
        std::vector<StreamId> expect;
        for (std::size_t i = 0; i < streams_.size(); ++i) {
          if (streams_[i].running.has_value()) {
            expect.push_back(static_cast<StreamId>(i));
          }
        }
        ctx.Check(expect == active_streams_,
                  "active-stream index holds " +
                      std::to_string(active_streams_.size()) +
                      " streams, device scan finds " +
                      std::to_string(expect.size()) + " running kernels");
      });
}

}  // namespace muxwise::gpu
