#include "gpu/gpu_spec.h"

#include <algorithm>

#include "sim/logging.h"

namespace muxwise::gpu {

double GpuSpec::BandwidthCap(int sms) const {
  const double saturating_sms = bw_saturation_sm_fraction * sm_count;
  if (saturating_sms <= 0.0) return hbm_bandwidth;
  const double share = std::min(1.0, sms / saturating_sms);
  return hbm_bandwidth * share;
}

GpuSpec GpuSpec::Aggregate(int n) const {
  MUX_CHECK(n >= 1);
  GpuSpec agg = *this;
  agg.name = name + "x" + std::to_string(n);
  agg.sm_count = sm_count * n;
  agg.hbm_bandwidth = hbm_bandwidth * n;
  agg.hbm_capacity = hbm_capacity * n;
  agg.bw_saturation_sm_fraction = 1.0;
  agg.max_interference = 0.0;
  agg.partition_granularity = sm_count;  // Whole GPUs.
  return agg;
}

GpuSpec GpuSpec::A100() {
  GpuSpec spec;
  spec.name = "A100";
  spec.sm_count = 108;
  spec.flops_per_sm = 312e12 / 108.0;  // 312 TFLOP/s dense BF16.
  spec.hbm_bandwidth = 2.039e12;       // 2039 GB/s.
  spec.hbm_capacity = 80e9;
  spec.nvlink_bandwidth = 600e9;       // NVLink3, paper testbed.
  spec.max_interference = 0.20;
  spec.partition_granularity = 16;
  spec.min_partition_sms = 8;  // Pre-Hopper: no thread block clusters.
  return spec;
}

GpuSpec GpuSpec::H100() {
  GpuSpec spec;
  spec.name = "H100";
  spec.sm_count = 132;
  spec.flops_per_sm = 989e12 / 132.0;  // 989 TFLOP/s dense BF16.
  spec.hbm_bandwidth = 3.35e12;        // 3350 GB/s.
  spec.hbm_capacity = 80e9;
  spec.nvlink_bandwidth = 900e9;       // NVLink4.
  spec.max_interference = 0.30;
  spec.partition_granularity = 16;
  spec.min_partition_sms = 16;  // Thread block clusters need 16 SMs.
  return spec;
}

GpuSpec GpuSpec::H200() {
  GpuSpec spec = H100();
  spec.name = "H200";
  spec.hbm_bandwidth = 4.8e12;   // 4800 GB/s.
  spec.hbm_capacity = 141e9;
  spec.max_interference = 0.30;
  return spec;
}

GpuSpec GpuSpec::ByName(const std::string& name) {
  if (name == "A100") return A100();
  if (name == "H100") return H100();
  if (name == "H200") return H200();
  sim::Fatal("unknown GPU spec: " + name);
}

}  // namespace muxwise::gpu
