#ifndef MUXWISE_ROUTE_FLEET_ROUTER_H_
#define MUXWISE_ROUTE_FLEET_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/estimator.h"
#include "core/muxwise_engine.h"
#include "fault/fault_aware.h"
#include "overload/controller.h"
#include "route/affinity.h"
#include "route/health.h"
#include "serve/deployment.h"
#include "serve/metrics.h"
#include "sim/backoff.h"
#include "sim/channel.h"
#include "sim/simulator.h"

namespace muxwise::route {

/** Knobs of the fleet router (all deterministic; no wall clock). */
struct FleetOptions {
  /** Routing through a fleet is opt-in: disabled keeps single-replica
   * event streams bit-identical to builds without this subsystem. */
  bool enabled = false;

  /** Replica count; each replica is one full MuxWiseEngine instance
   * owning its own slice of the cluster (its own gpu::Cluster). */
  std::size_t replicas = 1;

  HealthPolicy health;

  /**
   * Re-home orphans of a dead replica onto survivors. Off, orphans are
   * shed at failover (the negative twin the chaos tests compare
   * against) — still terminally accounted, never stranded.
   */
  bool failover = true;

  /** Deterministic pacing of re-home attempts, climbed per crash
   * retry of the request (shared sim::BackoffDelay helper). */
  sim::ExponentialBackoff rehome_backoff{sim::Milliseconds(10), 2.0,
                                         sim::Seconds(2)};

  /**
   * Allow KV re-migration of a re-homed request's durable prefix over
   * the fleet host link when the PR 5 spill-vs-recompute cost model
   * says the wire is cheaper than recomputing it; off, every re-home
   * recomputes.
   */
  bool migration = true;

  /** Fleet host-tier link the re-migrated KV pages ride. */
  double link_bandwidth_bytes_per_s = 24.0e9;
  sim::Duration link_latency = sim::Microseconds(25);

  /** Prompt tokens hashed into the cache-affinity key. */
  std::int64_t affinity_prefix_tokens = 256;

  /**
   * Fleet-level degradation ladder: the overload mode ladder of PR 5
   * generalized to lost capacity. With live fraction f of the fleet's
   * non-parked basis, mode is kShed when f < shed_below, kBrownout
   * when f < brownout_below, kPressure when f < pressure_below, else
   * kNormal. Batch arrivals are shed from kPressure (batch-first),
   * standard from kBrownout; interactive is only shed on total outage.
   */
  double pressure_below = 1.0;
  double brownout_below = 0.75;
  double shed_below = 0.5;

  // --- Deterministic autoscale (off by default) ---------------------

  /** Evaluate replica scale-up/down at heartbeat ticks. */
  bool autoscale = false;
  std::size_t min_replicas = 1;

  /** Demand/capacity utilisation bounds driving scale decisions. */
  double scale_down_util = 0.35;
  double scale_up_util = 0.85;

  /** Consecutive low-utilisation beats before draining a replica. */
  int scale_dwell_beats = 4;
};

/** Router-level counters surfaced to the harness and tests. */
struct FleetStats {
  std::size_t replicas = 0;
  std::vector<std::size_t> routed_per_replica;

  /** Dispatches served by the affinity table / session home map. */
  std::size_t affinity_hits = 0;
  std::size_t session_hits = 0;

  /** Orphans re-homed off dead replicas, split by KV strategy. */
  std::size_t rehomed = 0;
  std::size_t rehome_migrations = 0;
  std::size_t rehome_recomputes = 0;
  std::size_t rehome_shed = 0;    // Failover off, or no survivor.
  std::size_t rehome_failed = 0;  // Crash-retry budget spent.

  /** Arrivals shed by the fleet degradation ladder (or total outage). */
  std::size_t fleet_shed = 0;

  std::size_t failovers = 0;
  /** Zombie verdicts that reached Down (watermark-stall failovers). */
  std::size_t zombie_downs = 0;
  std::size_t health_transitions = 0;
  std::size_t mode_transitions = 0;
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;

  /** Crash signal -> Down declaration, per failover, milliseconds. */
  serve::LatencySummary failover_latency;
};

/**
 * Deterministic fleet router in front of N MuxWiseEngine replicas on
 * one shared simulator (paper §2.1's fleet deployment of multiplexed
 * instances). Dispatch prefers cache affinity — the prefix-hash table
 * first, then the session's last good home, then least pending KV
 * demand — and a per-replica health state machine driven by
 * fault-injector signals and heartbeat deadlines detects crashes:
 * when a replica is declared Down, its queued orphans are re-homed to
 * survivors under a bounded retry budget with deterministic backoff,
 * each choosing between KV re-migration over the fleet host link and
 * recomputation via the overload controller's spill-vs-recompute cost
 * model. A shrunken fleet degrades through the overload mode ladder,
 * shedding batch-class arrivals first.
 *
 * The router is itself a serve::Engine: the harness swaps it in where
 * a single engine would sit, and fault domains map 1:1 onto replicas.
 */
class FleetRouter : public fault::FaultAwareEngine {
 public:
  FleetRouter(sim::Simulator* simulator, const serve::Deployment& deployment,
              const core::ContentionEstimator& estimator,
              core::MuxWiseEngine::Options engine_options,
              FleetOptions options);
  ~FleetRouter() override;

  const char* name() const override { return "FleetRouter"; }
  void Enqueue(std::unique_ptr<serve::Request> request) override;
  std::size_t InFlight() const override { return in_flight_; }
  void RegisterAudits(check::InvariantRegistry& registry) const override;

  std::size_t NumFaultDomains() const override { return replicas_.size(); }
  void InjectCrash(std::size_t domain) override;
  void InjectRecovery(std::size_t domain) override;
  void InjectStraggler(std::size_t domain, double slowdown) override;
  void InjectZombie(std::size_t domain, bool frozen) override;
  void InjectDegrade(std::size_t domain, double flops_factor,
                     double bandwidth_factor) override;
  void InjectPartition(std::size_t domain, bool drop_to,
                       bool drop_from) override;
  sim::Channel* FaultableLink() override { return link_.get(); }

  /**
   * Router-level tracing only ("route" track instants for dispatch,
   * re-home, health transitions, mode changes) plus the lifecycle
   * spans the base emits at completion. The tracer is deliberately not
   * forwarded to replicas: their engine/gpu/kv tracks share names and
   * ids, and interleaved same-name spans from N instances would break
   * span pairing in trace queries.
   */
  void AttachTracer(obs::Tracer tracer) override {
    serve::Engine::AttachTracer(tracer);
  }

  FleetStats Stats() const;
  overload::Mode fleet_mode() const { return mode_; }
  std::size_t num_replicas() const { return replicas_.size(); }
  const core::MuxWiseEngine& replica(std::size_t r) const {
    return *replicas_[r].engine;
  }
  core::MuxWiseEngine& replica(std::size_t r) { return *replicas_[r].engine; }
  ReplicaHealth replica_health(std::size_t r) const {
    return health_.state(r);
  }
  SuspectReason replica_suspect_reason(std::size_t r) const {
    return health_.reason(r);
  }
  bool replica_parked(std::size_t r) const { return replicas_[r].parked; }
  bool replica_draining(std::size_t r) const { return replicas_[r].draining; }

 private:
  struct Replica {
    std::unique_ptr<core::MuxWiseEngine> engine;
    std::int64_t pending_demand = 0;  // Routed, not yet terminal.
    std::size_t routed = 0;
    bool draining = false;  // Autoscale: finishing, takes no new work.
    bool parked = false;    // Autoscale: drained and out of rotation.
  };

  /** An orphan between extraction and re-enqueue (backoff/wire). */
  struct RehomeEntry {
    std::unique_ptr<serve::Request> request;
    std::size_t target = 0;
    bool migrating = false;
  };

  bool Routable(std::size_t r) const;
  std::optional<std::size_t> ChooseReplica(const serve::Request& request,
                                           std::uint64_t key);
  void Dispatch(std::unique_ptr<serve::Request> request, std::size_t r);
  void OnReplicaComplete(std::size_t r,
                         std::unique_ptr<serve::Request> request);
  void Terminal(std::unique_ptr<serve::Request> request,
                serve::Outcome outcome);

  bool HeartbeatNeeded() const;
  void EnsureHeartbeat();
  void OnHeartbeat();
  void DeclareDown(std::size_t r, sim::Time now);
  void Rehome(std::unique_ptr<serve::Request> request);
  void FinishRehome(std::int64_t id, bool migrated);
  void UpdateFleetMode();
  void MaybeAutoscale();

  serve::Deployment deployment_;
  core::ContentionEstimator estimator_;
  FleetOptions options_;

  std::vector<Replica> replicas_;
  HealthTracker health_;
  AffinityTable affinity_;

  /** Session -> replica its latest turn was dispatched to (the
   * instance accumulating this session's KV, in flight or not). */
  std::map<std::int64_t, std::size_t> session_home_;

  /** Fleet host-tier link re-migrated KV rides (also the injector's
   * FaultableLink, so transfer-fault windows hit re-migrations). */
  std::unique_ptr<sim::Channel> link_;

  /** Spill-vs-recompute cost model (PR 5), tuned to the fleet link. */
  std::unique_ptr<overload::Controller> costing_;

  std::vector<RehomeEntry> rehoming_;
  std::size_t in_flight_ = 0;
  bool heartbeat_scheduled_ = false;

  /**
   * Latched by the first grey injection (zombie/partition). While set,
   * heartbeats also tick whenever work is in flight, so the zombie
   * watermark is sampled; non-grey runs never set it, keeping their
   * heartbeat dormancy — and event streams — bit-identical.
   */
  bool grey_active_ = false;
  overload::Mode mode_ = overload::Mode::kNormal;
  int low_util_beats_ = 0;

  double kv_bytes_per_token_ = 0.0;
  std::int64_t pool_capacity_tokens_ = 0;

  FleetStats stats_;
  serve::QuantileSketch failover_latency_;
};

}  // namespace muxwise::route

#endif  // MUXWISE_ROUTE_FLEET_ROUTER_H_
