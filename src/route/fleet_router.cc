#include "route/fleet_router.h"

#include <algorithm>
#include <string>
#include <utility>

#include "kv/token_seq.h"
#include "llm/cost_model.h"
#include "sim/logging.h"
#include "workload/slo.h"

namespace muxwise::route {

FleetRouter::FleetRouter(sim::Simulator* simulator,
                         const serve::Deployment& deployment,
                         const core::ContentionEstimator& estimator,
                         core::MuxWiseEngine::Options engine_options,
                         FleetOptions options)
    : fault::FaultAwareEngine(simulator, deployment.slo,
                             engine_options.recovery),
      deployment_(deployment),
      estimator_(estimator),
      options_(options),
      health_(options.health, options.replicas) {
  MUX_CHECK(options_.replicas >= 1);
  MUX_CHECK(options_.min_replicas >= 1);
  MUX_CHECK(options_.affinity_prefix_tokens > 0);
  replicas_.reserve(options_.replicas);
  for (std::size_t r = 0; r < options_.replicas; ++r) {
    Replica replica;
    replica.engine = std::make_unique<core::MuxWiseEngine>(
        simulator, deployment, estimator_, engine_options);
    replica.engine->set_on_complete(
        [this, r](std::unique_ptr<serve::Request> request) {
          OnReplicaComplete(r, std::move(request));
        });
    replicas_.push_back(std::move(replica));
  }
  pool_capacity_tokens_ = replicas_[0].engine->pool().capacity_tokens();

  const llm::CostModel cost(deployment_.model, deployment_.num_gpus,
                            deployment_.gpu);
  kv_bytes_per_token_ =
      cost.KvBytesPerTokenPerGpu() * static_cast<double>(deployment_.num_gpus);

  link_ = std::make_unique<sim::Channel>(simulator, "fleet-host-link",
                                         options_.link_bandwidth_bytes_per_s,
                                         options_.link_latency);
  // Re-home migrations hop between arbitrary replica shards over the
  // shared host tier: an any-to-any crossing in the partition map.
  link_->AnnotateShards(sim::kNoShard, sim::kNoShard);

  // The re-home migrate-vs-recompute decision reuses the overload
  // controller's spill cost model verbatim, tuned to the fleet link:
  // a durable prefix is worth migrating exactly when its pages cross
  // the host tier faster than the survivor could recompute them.
  overload::Policy costing_policy;
  costing_policy.spill = true;
  costing_policy.spill_bandwidth_bytes_per_s =
      options_.link_bandwidth_bytes_per_s;
  costing_policy.spill_latency = options_.link_latency;
  costing_ = std::make_unique<overload::Controller>(costing_policy);
}

FleetRouter::~FleetRouter() = default;

bool FleetRouter::Routable(std::size_t r) const {
  const Replica& replica = replicas_[r];
  if (replica.parked || replica.draining) return false;
  // Asymmetric partition, router->replica direction cut: the replica
  // looks alive (its heartbeats arrive) but new dispatches cannot
  // reach it. Unroutable without being failed over.
  if (health_.unreachable(r)) return false;
  // The FSM state is the router's knowledge: a crashed replica stays
  // routable until heartbeat misses declare it Down, so the detection
  // window's misrouted arrivals queue there and ride the failover.
  return health_.state(r) != ReplicaHealth::kDown;
}

std::optional<std::size_t> FleetRouter::ChooseReplica(
    const serve::Request& request, std::uint64_t key) {
  if (const auto hit = affinity_.Lookup(key);
      hit.has_value() && Routable(*hit)) {
    ++stats_.affinity_hits;
    return hit;
  }
  if (const auto it = session_home_.find(request.spec->session);
      it != session_home_.end() && Routable(it->second)) {
    ++stats_.session_hits;
    return it->second;
  }
  // Least-loaded fallback: prefer healthier states, then least pending
  // KV demand, then lowest index — a total order, so deterministic.
  std::optional<std::size_t> best;
  int best_preference = 0;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (!Routable(r)) continue;
    int preference = 0;
    switch (health_.state(r)) {
      case ReplicaHealth::kHealthy:
        preference = 0;
        break;
      case ReplicaHealth::kRecovering:
        preference = 1;
        break;
      default:  // kSuspect: answering slowly, last resort.
        preference = 2;
        break;
    }
    if (!best.has_value() || preference < best_preference ||
        (preference == best_preference &&
         replicas_[r].pending_demand < replicas_[*best].pending_demand)) {
      best = r;
      best_preference = preference;
    }
  }
  return best;
}

void FleetRouter::Dispatch(std::unique_ptr<serve::Request> request,
                           std::size_t r) {
  const std::uint64_t key = PrefixAffinityKey(
      request->spec->prompt, options_.affinity_prefix_tokens);
  affinity_.Record(key, r);
  // Dispatch-time, not completion-time: a multi-turn client's next
  // turn can arrive while the previous one is still in flight, and it
  // must follow the replica that is building this session's KV.
  session_home_[request->spec->session] = r;
  Replica& replica = replicas_[r];
  replica.pending_demand += DemandTokens(*request);
  ++replica.routed;
  tracer_.Instant("route", "dispatch", request->spec->id,
                  static_cast<double>(r));
  // May complete synchronously (replica-level shed): OnReplicaComplete
  // re-enters through the completion callback, after the accounting
  // above, so the books stay balanced.
  replica.engine->Enqueue(std::move(request));
  // A grey fleet watches progress while work is in flight: this
  // dispatch may be the first work a zombie can stall, so the watermark
  // sampler must be ticking.
  if (grey_active_) EnsureHeartbeat();
}

void FleetRouter::Enqueue(std::unique_ptr<serve::Request> request) {
  EnsureHeartbeat();
  const workload::SloClass slo_class = request->spec->slo_class;
  // Fleet degradation: a shrunken fleet sheds batch first, standard
  // next; interactive only when no replica is routable at all.
  const bool mode_shed =
      (slo_class == workload::SloClass::kBatch &&
       mode_ >= overload::Mode::kPressure) ||
      (slo_class == workload::SloClass::kStandard &&
       mode_ >= overload::Mode::kBrownout);
  const std::uint64_t key = PrefixAffinityKey(
      request->spec->prompt, options_.affinity_prefix_tokens);
  const std::optional<std::size_t> target =
      mode_shed ? std::nullopt : ChooseReplica(*request, key);
  if (!target.has_value()) {
    ++stats_.fleet_shed;
    tracer_.Instant("route", "fleet-shed", request->spec->id,
                    static_cast<double>(static_cast<int>(mode_)));
    MarkTerminal(*request, serve::Outcome::kShed);
    NotifyComplete(std::move(request));
    return;
  }
  ++in_flight_;
  Dispatch(std::move(request), *target);
}

void FleetRouter::OnReplicaComplete(std::size_t r,
                                    std::unique_ptr<serve::Request> request) {
  Replica& replica = replicas_[r];
  const std::int64_t demand = DemandTokens(*request);
  MUX_CHECK(replica.pending_demand >= demand);
  replica.pending_demand -= demand;
  MUX_CHECK(in_flight_ > 0);
  --in_flight_;
  // May synchronously re-enter Enqueue with the session's next turn.
  NotifyComplete(std::move(request));
}

void FleetRouter::Terminal(std::unique_ptr<serve::Request> request,
                           serve::Outcome outcome) {
  MarkTerminal(*request, outcome);
  MUX_CHECK(in_flight_ > 0);
  --in_flight_;
  NotifyComplete(std::move(request));
}

bool FleetRouter::HeartbeatNeeded() const {
  // The heartbeat is dormant at every fleet fixed point, so quiesced
  // scenarios drain their event queues and terminate: it ticks only
  // while some replica's FSM can still move, orphans are in transit,
  // a drain is pending, or (with autoscale) work is in flight.
  if (!rehoming_.empty()) return true;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (replicas_[r].parked) continue;
    if (replicas_[r].draining) return true;
    if (!health_.Stable(r)) return true;
    // Grey runs: a zombie only betrays itself through a frozen
    // watermark, so keep sampling any replica with work in flight.
    if (grey_active_ && options_.health.zombie_detection &&
        replicas_[r].engine->InFlight() > 0) {
      return true;
    }
  }
  return options_.autoscale && in_flight_ > 0;
}

void FleetRouter::EnsureHeartbeat() {
  if (heartbeat_scheduled_ || !HeartbeatNeeded()) return;
  heartbeat_scheduled_ = true;
  fault_sim_->ScheduleAfter(options_.health.heartbeat_interval,
                            [this] { OnHeartbeat(); });
}

void FleetRouter::OnHeartbeat() {
  heartbeat_scheduled_ = false;
  const sim::Time now = fault_sim_->Now();
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (replicas_[r].parked) continue;
    // Zombie detection first: sample the replica's work-progress
    // watermark, then let the deadline FSM take its ordinary beat.
    if (grey_active_ && options_.health.zombie_detection) {
      const HealthTracker::Transition verdict = health_.ObserveProgress(
          r, replicas_[r].engine->ProgressWatermark(),
          replicas_[r].engine->InFlight(), now);
      if (verdict.changed) {
        ++stats_.health_transitions;
        tracer_.Instant("route", HealthName(verdict.to),
                        static_cast<std::int64_t>(r),
                        static_cast<double>(verdict.from));
        if (verdict.to == ReplicaHealth::kDown) {
          ++stats_.zombie_downs;
          DeclareDown(r, now);
        }
      }
    }
    const HealthTracker::Transition transition = health_.Beat(r, now);
    if (!transition.changed) continue;
    ++stats_.health_transitions;
    tracer_.Instant("route", HealthName(transition.to),
                    static_cast<std::int64_t>(r),
                    static_cast<double>(transition.from));
    if (transition.to == ReplicaHealth::kDown) DeclareDown(r, now);
  }
  if (options_.autoscale) MaybeAutoscale();
  UpdateFleetMode();
  EnsureHeartbeat();
}

void FleetRouter::DeclareDown(std::size_t r, sim::Time now) {
  ++stats_.failovers;
  // Every detection path timestamps its outage (crash signal, partition
  // silence onset, zombie stall onset); the guard is belt-and-braces.
  if (health_.crash_signal_at(r) != sim::kTimeNever) {
    failover_latency_.Add(
        sim::ToMilliseconds(now - health_.crash_signal_at(r)));
  }
  // The dead replica's cache is gone: evict its affinity entries and
  // session homes so nothing re-pins to cold state after it rejoins.
  affinity_.EvictReplica(r);
  std::erase_if(session_home_,
                [r](const auto& entry) { return entry.second == r; });
  Replica& replica = replicas_[r];
  std::vector<std::unique_ptr<serve::Request>> orphans =
      replica.engine->ExtractForRehoming();
  for (const auto& orphan : orphans) {
    const std::int64_t demand = DemandTokens(*orphan);
    MUX_CHECK(replica.pending_demand >= demand);
    replica.pending_demand -= demand;
  }
  tracer_.Instant("route", "failover", static_cast<std::int64_t>(r),
                  static_cast<double>(orphans.size()));
  if (!options_.failover) {
    // Negative twin: stranded sessions are shed, never silently lost.
    for (auto& orphan : orphans) {
      ++stats_.rehome_shed;
      Terminal(std::move(orphan), serve::Outcome::kShed);
    }
    return;
  }
  for (auto& orphan : orphans) Rehome(std::move(orphan));
}

void FleetRouter::Rehome(std::unique_ptr<serve::Request> request) {
  ++stats_.rehomed;
  if (DeadlinePassed(*request)) {
    Terminal(std::move(request), serve::Outcome::kTimedOut);
    return;
  }
  if (!PrepareRetry(*request)) {
    ++stats_.rehome_failed;
    Terminal(std::move(request), serve::Outcome::kFailed);
    return;
  }
  const std::uint64_t key = PrefixAffinityKey(
      request->spec->prompt, options_.affinity_prefix_tokens);
  const std::optional<std::size_t> target = ChooseReplica(*request, key);
  if (!target.has_value()) {
    ++stats_.rehome_shed;
    Terminal(std::move(request), serve::Outcome::kShed);
    return;
  }

  // Per-request KV strategy: the durable prior-turn prefix lives in
  // the fleet host tier, so the survivor can either pull it over the
  // link or recompute it; the spill cost model arbitrates.
  const std::int64_t durable = request->spec->reused_tokens;
  double bytes = 0.0;
  bool migrate = false;
  if (options_.migration && durable > 0) {
    bytes = kv_bytes_per_token_ * static_cast<double>(durable);
    const double recompute_seconds = sim::ToSeconds(estimator_.PredictPrefill(
        {llm::SeqWork{durable, 0}}, deployment_.gpu.sm_count));
    // A silently degraded link stretches the effective wire time; feed
    // the costing the equivalent byte count so migration loses exactly
    // when the degraded wire is slower than recomputing (scale 1.0 is
    // exact, so fault-free decisions are bit-identical).
    const double wire_bytes = bytes / link_->bandwidth_scale();
    migrate = costing_->SpillCheaper(wire_bytes, recompute_seconds);
  }

  const sim::Duration delay =
      sim::BackoffDelay(options_.rehome_backoff, request->crash_retries);
  const std::int64_t id = request->spec->id;
  tracer_.Instant("route", migrate ? "rehome-migrate" : "rehome-recompute",
                  id, static_cast<double>(*target));
  rehoming_.push_back(RehomeEntry{std::move(request), *target, migrate});
  if (migrate) {
    ++stats_.rehome_migrations;
    fault_sim_->ScheduleAfter(delay, [this, id, bytes] {
      link_->Send<std::int64_t>(
          bytes, id,
          [this](std::int64_t request_id) { FinishRehome(request_id, true); },
          // Wire failure (armed transfer-fault window): fall back to
          // recomputing on the target instead of abandoning the orphan.
          [this](std::int64_t request_id) {
            FinishRehome(request_id, false);
          });
    });
  } else {
    ++stats_.rehome_recomputes;
    fault_sim_->ScheduleAfter(delay,
                              [this, id] { FinishRehome(id, false); });
  }
}

void FleetRouter::FinishRehome(std::int64_t id, bool migrated) {
  const auto it = std::find_if(
      rehoming_.begin(), rehoming_.end(), [id](const RehomeEntry& entry) {
        return entry.request->spec->id == id;
      });
  MUX_CHECK(it != rehoming_.end());
  RehomeEntry entry = std::move(*it);
  rehoming_.erase(it);
  if (!Routable(entry.target)) {
    // The target died while the orphan was in transit: pick again,
    // burning another rung of the retry budget.
    Rehome(std::move(entry.request));
    return;
  }
  if (migrated) {
    replicas_[entry.target].engine->WarmCachePrefix(kv::SeqPrefix(
        entry.request->spec->prompt, entry.request->spec->reused_tokens));
  }
  Dispatch(std::move(entry.request), entry.target);
}

void FleetRouter::UpdateFleetMode() {
  std::size_t basis = 0;
  std::size_t live = 0;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    // Parked/draining replicas left the rotation voluntarily; they are
    // not lost capacity, so the degradation ladder ignores them.
    if (replicas_[r].parked || replicas_[r].draining) continue;
    ++basis;
    if (health_.state(r) != ReplicaHealth::kDown) ++live;
  }
  overload::Mode next = overload::Mode::kNormal;
  if (basis > 0) {
    const double fraction =
        static_cast<double>(live) / static_cast<double>(basis);
    if (fraction < options_.shed_below) {
      next = overload::Mode::kShed;
    } else if (fraction < options_.brownout_below) {
      next = overload::Mode::kBrownout;
    } else if (fraction < options_.pressure_below) {
      next = overload::Mode::kPressure;
    }
  } else {
    next = overload::Mode::kShed;
  }
  if (next != mode_) {
    ++stats_.mode_transitions;
    tracer_.Instant("route", "fleet-mode", static_cast<std::int64_t>(next),
                    static_cast<double>(static_cast<int>(mode_)));
    mode_ = next;
  }
}

void FleetRouter::MaybeAutoscale() {
  // Park any drained replica first (its last in-flight work finished).
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    Replica& replica = replicas_[r];
    if (replica.draining && replica.engine->InFlight() == 0) {
      replica.draining = false;
      replica.parked = true;
      ++stats_.scale_downs;
      tracer_.Instant("route", "scale-down", static_cast<std::int64_t>(r));
    }
  }
  std::size_t serving = 0;
  std::int64_t demand = 0;
  bool draining = false;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (replicas_[r].parked) continue;
    if (replicas_[r].draining) {
      draining = true;
      continue;
    }
    ++serving;
    demand += replicas_[r].pending_demand;
  }
  if (serving == 0) return;
  const double utilization =
      static_cast<double>(demand) /
      (static_cast<double>(serving) *
       static_cast<double>(pool_capacity_tokens_));
  if (utilization > options_.scale_up_util) {
    low_util_beats_ = 0;
    // Cancel an in-progress drain before spinning a parked replica up.
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (replicas_[r].draining) {
        replicas_[r].draining = false;
        ++stats_.scale_ups;
        tracer_.Instant("route", "scale-up", static_cast<std::int64_t>(r));
        return;
      }
    }
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (replicas_[r].parked) {
        replicas_[r].parked = false;
        ++stats_.scale_ups;
        tracer_.Instant("route", "scale-up", static_cast<std::int64_t>(r));
        return;
      }
    }
    return;
  }
  if (utilization < options_.scale_down_util) {
    if (++low_util_beats_ < options_.scale_dwell_beats) return;
    low_util_beats_ = 0;
    if (draining || serving <= options_.min_replicas) return;
    // Drain the highest-index healthy replica (deterministic choice).
    for (std::size_t i = replicas_.size(); i-- > 0;) {
      if (Routable(i) && health_.state(i) == ReplicaHealth::kHealthy) {
        replicas_[i].draining = true;
        tracer_.Instant("route", "drain", static_cast<std::int64_t>(i));
        return;
      }
    }
    return;
  }
  low_util_beats_ = 0;
}

void FleetRouter::InjectCrash(std::size_t domain) {
  if (domain >= replicas_.size()) return;
  replicas_[domain].engine->InjectCrash(0);
  health_.OnCrashSignal(domain, fault_sim_->Now());
  EnsureHeartbeat();
}

void FleetRouter::InjectRecovery(std::size_t domain) {
  if (domain >= replicas_.size()) return;
  replicas_[domain].engine->InjectRecovery(0);
  health_.OnRecoverySignal(domain);
  EnsureHeartbeat();
}

void FleetRouter::InjectStraggler(std::size_t domain, double slowdown) {
  if (domain >= replicas_.size()) return;
  replicas_[domain].engine->InjectStraggler(0, slowdown);
  if (health_.OnStragglerSignal(domain, slowdown)) {
    ++stats_.health_transitions;
    tracer_.Instant("route", HealthName(health_.state(domain)),
                    static_cast<std::int64_t>(domain), slowdown);
  }
  EnsureHeartbeat();
}

void FleetRouter::InjectZombie(std::size_t domain, bool frozen) {
  if (domain >= replicas_.size()) return;
  // Freeze the replica's device: heartbeats keep answering (the engine
  // is alive), kernel completions stall. Only the watermark tells.
  replicas_[domain].engine->InjectZombie(0, frozen);
  grey_active_ = true;
  EnsureHeartbeat();
}

void FleetRouter::InjectDegrade(std::size_t domain, double flops_factor,
                                double bandwidth_factor) {
  if (domain >= replicas_.size()) return;
  // Silent capacity loss: no health signal fires — the replica is
  // merely slower, and only observable symptoms (straggling latency,
  // missed deadlines) may eventually surface it.
  replicas_[domain].engine->InjectDegrade(0, flops_factor, bandwidth_factor);
}

void FleetRouter::InjectPartition(std::size_t domain, bool drop_to,
                                  bool drop_from) {
  if (domain >= replicas_.size()) return;
  grey_active_ = true;
  const HealthTracker::Transition t = health_.OnPartitionSignal(
      domain, drop_to, drop_from, fault_sim_->Now());
  if (t.changed) {
    ++stats_.health_transitions;
    tracer_.Instant("route", HealthName(t.to),
                    static_cast<std::int64_t>(domain),
                    static_cast<double>(t.from));
  }
  EnsureHeartbeat();
}

void FleetRouter::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "FleetRouter", "quiescent-router", [this](check::AuditContext& audit) {
        audit.Check(in_flight_ == 0,
                    "router in-flight should drain to zero, have " +
                        std::to_string(in_flight_));
        audit.Check(rehoming_.empty(),
                    "no orphan should still be re-homing at quiescence");
        audit.Check(!heartbeat_scheduled_,
                    "heartbeat should go dormant at quiescence");
        for (std::size_t r = 0; r < replicas_.size(); ++r) {
          audit.Check(replicas_[r].pending_demand == 0,
                      "replica " + std::to_string(r) +
                          " pending demand should drain to zero, have " +
                          std::to_string(replicas_[r].pending_demand));
        }
      });
  for (const Replica& replica : replicas_) {
    replica.engine->RegisterAudits(registry);
  }
}

FleetStats FleetRouter::Stats() const {
  FleetStats stats = stats_;
  stats.replicas = replicas_.size();
  stats.routed_per_replica.reserve(replicas_.size());
  for (const Replica& replica : replicas_) {
    stats.routed_per_replica.push_back(replica.routed);
  }
  stats.failover_latency = failover_latency_.Summarize();
  return stats;
}

}  // namespace muxwise::route
