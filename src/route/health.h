#ifndef MUXWISE_ROUTE_HEALTH_H_
#define MUXWISE_ROUTE_HEALTH_H_

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace muxwise::route {

/**
 * Router-side view of one replica, driven by heartbeat deadlines on
 * the sim clock:
 *
 *             misses >= suspect     misses >= down
 *   Healthy ------------------> Suspect ---------> Down
 *      ^  ^                        |                 |
 *      |  | straggle cleared /     | (more misses)   | good beat
 *      |  |  probation served      v                 v
 *      |  +--------------------- (stays) <----- Recovering
 *      +-------------------------------------------(probation beats)
 *
 * Suspect is also entered directly on a straggler signal (the replica
 * answers, slowly); it returns to Healthy when the slowdown clears.
 * Down is the edge that triggers failover — it fires once per outage.
 *
 * Grey failures widen the Suspect entry set beyond "slow": a replica
 * can be *lying* (answering heartbeats while its work-progress
 * watermark is frozen — a zombie, detected by ObserveProgress) or
 * *unreachable* (an asymmetric partition cut the router->replica
 * direction while its heartbeats still arrive). A zombie that stays
 * stalled is declared Down and *held* there — its good heartbeats are
 * the lie, so they must not walk it back to Recovering until the
 * watermark moves again. Suspect exit takes `suspect_exit_beats`
 * consecutive good beats (hysteresis), so a flapping replica dwells in
 * Suspect instead of thrashing Healthy <-> Suspect.
 */
enum class ReplicaHealth : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDown = 2,
  kRecovering = 3,
};

const char* HealthName(ReplicaHealth state);

/** Why a replica is (or last was) Suspect — slow, lying, unreachable. */
enum class SuspectReason : std::uint8_t {
  kNone = 0,
  kSlow = 1,         // Straggler signal: answers, slowly.
  kLying = 2,        // Zombie: answers, watermark frozen with work queued.
  kUnreachable = 3,  // Partition: we cannot reach it, it can reach us.
  kMisses = 4,       // Deadline path: missed heartbeats.
};

const char* SuspectReasonName(SuspectReason reason);

struct HealthPolicy {
  /** Heartbeat cadence; every transition happens on a beat. */
  sim::Duration heartbeat_interval = sim::Milliseconds(500);

  /** Consecutive missed beats before Healthy -> Suspect. */
  int suspect_after_misses = 1;

  /** Consecutive missed beats before Suspect -> Down (failover). */
  int down_after_misses = 2;

  /** Good beats a Recovering replica serves before Healthy again. */
  int recovery_probation_beats = 2;

  /**
   * Consecutive good beats before Suspect clears back to Healthy (flap
   * hysteresis). 1 reproduces the pre-grey FSM exactly: the first good
   * beat clears a non-pinned Suspect.
   */
  int suspect_exit_beats = 1;

  /** Zombie detection via work-progress watermarks (ObserveProgress). */
  bool zombie_detection = true;

  /** Stalled-watermark beats (work in flight) before Suspect (lying). */
  int zombie_after_beats = 2;

  /** Stalled-watermark beats before Down — the zombie failover edge. */
  int zombie_down_beats = 4;

  /** React to asymmetric-partition signals (off = the blind twin). */
  bool partition_detection = true;
};

/**
 * Per-replica health state machine. Pure state over sim time: the
 * router owns the heartbeat events and calls Beat() per replica per
 * tick; crash/recovery/straggler/partition signals from
 * fault::FaultInjector arrive between beats and only change what the
 * next beat observes, and the zombie watermark is sampled by the router
 * each beat through ObserveProgress(). Everything is deterministic —
 * no wall clock, no randomness.
 */
class HealthTracker {
 public:
  HealthTracker(const HealthPolicy& policy, std::size_t replicas);

  std::size_t size() const { return states_.size(); }
  ReplicaHealth state(std::size_t r) const { return states_[r].state; }
  bool alive(std::size_t r) const { return states_[r].alive; }
  bool straggling(std::size_t r) const { return states_[r].straggling; }
  SuspectReason reason(std::size_t r) const { return states_[r].reason; }

  /** Partition flags (set only while partition_detection is on). */
  bool silenced(std::size_t r) const { return states_[r].silenced; }
  bool unreachable(std::size_t r) const { return states_[r].unreachable; }

  /** Time of the outage signal behind the current detection (latency
   * accounting): crash signal, partition silence onset, or the first
   * stalled-watermark beat of a zombie. */
  sim::Time crash_signal_at(std::size_t r) const {
    return states_[r].crash_signal_at;
  }

  /** Replica stopped answering heartbeats (crash injected). */
  void OnCrashSignal(std::size_t r, sim::Time now);

  /** Replica answers heartbeats again; beats drive the FSM forward. */
  void OnRecoverySignal(std::size_t r);

  /**
   * Straggler signal: slowdown > 1 marks the replica Suspect (alive but
   * slow — routed to only as a last resort); slowdown == 1 clears it.
   * Returns true when the visible state changed.
   */
  bool OnStragglerSignal(std::size_t r, double slowdown);

  struct Transition {
    bool changed = false;
    ReplicaHealth from = ReplicaHealth::kHealthy;
    ReplicaHealth to = ReplicaHealth::kHealthy;
  };

  /**
   * Asymmetric-partition signal. drop_from silences the replica->router
   * direction: the replica is alive but its heartbeats stop arriving,
   * so misses accumulate toward Down exactly as for a crash (silence
   * onset timestamps the outage for failover latency). drop_to cuts
   * router->replica delivery: heartbeats still arrive, so the replica
   * is marked unreachable and pinned Suspect — alive, not routable,
   * never failed over. (false, false) heals both directions. Ignored
   * entirely when partition_detection is off (the blind twin).
   */
  Transition OnPartitionSignal(std::size_t r, bool drop_to, bool drop_from,
                               sim::Time now);

  /**
   * Work-progress watermark sample for one beat. A watermark frozen
   * across `zombie_after_beats` beats while `in_flight` work is queued
   * marks the replica Suspect (lying); across `zombie_down_beats` it is
   * declared Down and held — good heartbeats cannot walk a lying
   * replica back to Recovering until the watermark moves again (the
   * fence a real fleet applies to a zombie). A watermark that advances,
   * or an idle replica (nothing to progress — indistinguishable from
   * healthy), resets the stall clock and lifts the verdict. No-op when
   * zombie_detection is off (the blind twin). Call before Beat().
   */
  Transition ObserveProgress(std::size_t r, std::uint64_t watermark,
                             std::size_t in_flight, sim::Time now);

  /** One heartbeat evaluation of replica `r`. */
  Transition Beat(std::size_t r, sim::Time now);

  /**
   * True when `r` can make no further progress without a new signal —
   * the router stops ticking heartbeats once every replica is stable
   * and no work is in flight, so quiesced scenarios terminate.
   */
  bool Stable(std::size_t r) const;

 private:
  struct State {
    ReplicaHealth state = ReplicaHealth::kHealthy;
    bool alive = true;
    bool straggling = false;
    bool silenced = false;     // Partition: replica->router dropped.
    bool unreachable = false;  // Partition: router->replica dropped.
    int misses = 0;
    int probation = 0;
    int good_beats = 0;   // Consecutive good beats while Suspect.
    int stall_beats = 0;  // Consecutive frozen-watermark beats.
    bool watermark_seen = false;
    std::uint64_t last_watermark = 0;
    SuspectReason reason = SuspectReason::kNone;
    sim::Time crash_signal_at = sim::kTimeNever;
  };

  Transition To(State& s, ReplicaHealth next);

  HealthPolicy policy_;
  std::vector<State> states_;
};

}  // namespace muxwise::route

#endif  // MUXWISE_ROUTE_HEALTH_H_
