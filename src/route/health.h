#ifndef MUXWISE_ROUTE_HEALTH_H_
#define MUXWISE_ROUTE_HEALTH_H_

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace muxwise::route {

/**
 * Router-side view of one replica, driven by heartbeat deadlines on
 * the sim clock:
 *
 *             misses >= suspect     misses >= down
 *   Healthy ------------------> Suspect ---------> Down
 *      ^  ^                        |                 |
 *      |  | straggle cleared /     | (more misses)   | good beat
 *      |  |  probation served      v                 v
 *      |  +--------------------- (stays) <----- Recovering
 *      +-------------------------------------------(probation beats)
 *
 * Suspect is also entered directly on a straggler signal (the replica
 * answers, slowly); it returns to Healthy when the slowdown clears.
 * Down is the edge that triggers failover — it fires once per outage.
 */
enum class ReplicaHealth : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDown = 2,
  kRecovering = 3,
};

const char* HealthName(ReplicaHealth state);

struct HealthPolicy {
  /** Heartbeat cadence; every transition happens on a beat. */
  sim::Duration heartbeat_interval = sim::Milliseconds(500);

  /** Consecutive missed beats before Healthy -> Suspect. */
  int suspect_after_misses = 1;

  /** Consecutive missed beats before Suspect -> Down (failover). */
  int down_after_misses = 2;

  /** Good beats a Recovering replica serves before Healthy again. */
  int recovery_probation_beats = 2;
};

/**
 * Per-replica health state machine. Pure state over sim time: the
 * router owns the heartbeat events and calls Beat() per replica per
 * tick; crash/recovery/straggler signals from fault::FaultInjector
 * arrive between beats and only change what the next beat observes.
 * Everything is deterministic — no wall clock, no randomness.
 */
class HealthTracker {
 public:
  HealthTracker(const HealthPolicy& policy, std::size_t replicas);

  std::size_t size() const { return states_.size(); }
  ReplicaHealth state(std::size_t r) const { return states_[r].state; }
  bool alive(std::size_t r) const { return states_[r].alive; }
  bool straggling(std::size_t r) const { return states_[r].straggling; }

  /** Time of the crash signal behind the current outage (latency). */
  sim::Time crash_signal_at(std::size_t r) const {
    return states_[r].crash_signal_at;
  }

  /** Replica stopped answering heartbeats (crash injected). */
  void OnCrashSignal(std::size_t r, sim::Time now);

  /** Replica answers heartbeats again; beats drive the FSM forward. */
  void OnRecoverySignal(std::size_t r);

  /**
   * Straggler signal: slowdown > 1 marks the replica Suspect (alive but
   * slow — routed to only as a last resort); slowdown == 1 clears it.
   * Returns true when the visible state changed.
   */
  bool OnStragglerSignal(std::size_t r, double slowdown);

  struct Transition {
    bool changed = false;
    ReplicaHealth from = ReplicaHealth::kHealthy;
    ReplicaHealth to = ReplicaHealth::kHealthy;
  };

  /** One heartbeat evaluation of replica `r`. */
  Transition Beat(std::size_t r, sim::Time now);

  /**
   * True when `r` can make no further progress without a new signal —
   * the router stops ticking heartbeats once every replica is stable
   * and no work is in flight, so quiesced scenarios terminate.
   */
  bool Stable(std::size_t r) const;

 private:
  struct State {
    ReplicaHealth state = ReplicaHealth::kHealthy;
    bool alive = true;
    bool straggling = false;
    int misses = 0;
    int probation = 0;
    sim::Time crash_signal_at = sim::kTimeNever;
  };

  Transition To(State& s, ReplicaHealth next);

  HealthPolicy policy_;
  std::vector<State> states_;
};

}  // namespace muxwise::route

#endif  // MUXWISE_ROUTE_HEALTH_H_
