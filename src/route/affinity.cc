#include "route/affinity.h"

namespace muxwise::route {

namespace {

/** splitmix64 finalizer: cheap, well-mixed, and stable across runs. */
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t PrefixAffinityKey(const kv::TokenSeq& prompt,
                                std::int64_t prefix_tokens) {
  const std::int64_t len = SeqLength(prompt);
  const kv::TokenSeq prefix =
      SeqPrefix(prompt, prefix_tokens < len ? prefix_tokens : len);
  std::uint64_t key = 0x517cc1b727220a95ull;
  for (const kv::TokenSpan& span : prefix) {
    key = Mix(key ^ static_cast<std::uint64_t>(span.stream));
    key = Mix(key ^ static_cast<std::uint64_t>(span.begin));
    key = Mix(key ^ static_cast<std::uint64_t>(span.end));
  }
  return key;
}

void AffinityTable::EvictReplica(std::size_t replica) {
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second == replica) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace muxwise::route
